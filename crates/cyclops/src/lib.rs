//! # Cyclops
//!
//! A full reproduction of **"Cyclops: An FSO-based Wireless Link for VR
//! Headsets"** (SIGCOMM 2022): a free-space-optical 10/25 Gbps link between a
//! ceiling transmitter and a VR headset, kept aligned by a learning-based
//! tracking-and-pointing (TP) mechanism — plus the simulated bench (optics,
//! galvos, headset tracking, motion rigs) the original authors had in
//! hardware.
//!
//! ## Quickstart
//!
//! ```
//! use cyclops::prelude::*;
//!
//! // Commission a 10G system: build the bench, learn the galvo models on
//! // the grid board (§4.1), learn the VR-space mapping (§4.2).
//! let mut system = CyclopsSystem::commission(&SystemConfig::fast_10g(42));
//!
//! // Move the headset; the TP controller re-points from tracking alone.
//! let pose = Pose::translation(Vec3::new(0.08, -0.05, 1.8));
//! system.move_headset(pose);
//! let report = system.track();
//! system.point(&report);
//! assert!(system.link_up());
//! ```
//!
//! The sub-crates are re-exported under [`geom`], [`optics`], [`vrh`],
//! [`solver`], [`core`] and [`link`]; the curated surface lives in
//! [`prelude`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use cyclops_core as core;
pub use cyclops_geom as geom;
pub use cyclops_link as link;
pub use cyclops_optics as optics;
pub use cyclops_solver as solver;
pub use cyclops_vrh as vrh;

pub mod prelude;
pub mod system;

pub use system::{CommissioningReport, CyclopsSystem, SystemConfig};
