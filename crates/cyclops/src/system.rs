//! High-level system API: commission, track, point.
//!
//! [`CyclopsSystem::commission`] runs the paper's full deployment procedure
//! (§4, Fig 6) end to end:
//!
//! 1. build the bench (hidden-truth hardware) from a seed;
//! 2. **stage 1** — calibrate both galvo assemblies on the grid board,
//!    fitting the model `G` for each (§4.1);
//! 3. **stage 2** — collect exhaustively-aligned placements and jointly fit
//!    the 12 K-space→VR-space mapping parameters (§4.2);
//! 4. hand back a ready [`TpController`] plus a [`CommissioningReport`]
//!    carrying the Table-2-style error statistics.

use cyclops_core::deployment::{Deployment, DeploymentConfig};
use cyclops_core::kspace::{self, BoardConfig};
use cyclops_core::mapping::{self, MappingSample};
use cyclops_core::tp::{TpConfig, TpController};
use cyclops_geom::pose::Pose;
use cyclops_link::control::ControlPlaneConfig;
use cyclops_link::engine::{EngineConfig, FirstReport, SessionBuilder, SingleTx};
use cyclops_link::simulator::{LinkSimConfig, LinkSimulator};
use cyclops_solver::stats::ResidualStats;
use cyclops_vrh::motion::Motion;
use cyclops_vrh::tracking::TrackerConfig;

/// Configuration for commissioning a system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The bench/hardware configuration.
    pub deployment: DeploymentConfig,
    /// The K-space calibration board.
    pub board: BoardConfig,
    /// Number of §4.2 mapping placements (the paper uses ~30).
    pub mapping_samples: usize,
    /// Tracking-system characteristics.
    pub tracker: TrackerConfig,
    /// TP controller timing.
    pub tp: TpConfig,
    /// "Manual measurement" accuracy of the deployment-time initial guess
    /// (metres, radians).
    pub rough_guess: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's 10G prototype, full-size training.
    pub fn paper_10g(seed: u64) -> SystemConfig {
        SystemConfig {
            deployment: DeploymentConfig::paper_10g(seed),
            board: BoardConfig::default(),
            mapping_samples: 30,
            tracker: TrackerConfig::default(),
            tp: TpConfig::default(),
            rough_guess: (0.05, 0.08),
            seed,
        }
    }

    /// The paper's 25G prototype (§5.3.1).
    pub fn paper_25g(seed: u64) -> SystemConfig {
        SystemConfig {
            deployment: DeploymentConfig::paper_25g(seed),
            ..SystemConfig::paper_10g(seed)
        }
    }

    /// A reduced-budget 10G commissioning for examples/doc tests: a smaller
    /// board and fewer mapping placements (seconds instead of tens of
    /// seconds), at slightly reduced accuracy.
    pub fn fast_10g(seed: u64) -> SystemConfig {
        SystemConfig {
            board: BoardConfig {
                cols: 10,
                rows: 8,
                cell_m: 0.0508,
            },
            mapping_samples: 12,
            ..SystemConfig::paper_10g(seed)
        }
    }

    /// Builds a commissioning config from a registry hardware profile
    /// (`cyclops_link::registry`): the profile's optical design and galvo
    /// non-idealities over the paper's assembly tolerances, the profile's
    /// headset tracker, and the fast training budget (the CLI's default).
    pub fn from_profile(hw: &cyclops_link::registry::HardwareProfile, seed: u64) -> SystemConfig {
        SystemConfig {
            deployment: hw.deployment_config(seed),
            tracker: hw.tracker(),
            ..SystemConfig::fast_10g(seed)
        }
    }
}

/// Training diagnostics (the numbers behind Table 2).
#[derive(Debug, Clone)]
pub struct CommissioningReport {
    /// Stage-1 board-hit error of the TX model (metres).
    pub kspace_tx: ResidualStats,
    /// Stage-1 board-hit error of the RX model (metres).
    pub kspace_rx: ResidualStats,
    /// Combined (stage 1+2) Lemma-1 error on the TX side (metres).
    pub combined_tx: ResidualStats,
    /// Combined error on the RX side (metres).
    pub combined_rx: ResidualStats,
    /// Number of mapping placements actually aligned and used.
    pub mapping_samples_used: usize,
}

/// A commissioned Cyclops link: bench + trained controller.
#[derive(Debug, Clone)]
pub struct CyclopsSystem {
    /// The simulated bench (plays the role of the physical hardware).
    pub dep: Deployment,
    /// The trained TP controller.
    pub ctl: TpController,
    /// Training diagnostics.
    pub report: CommissioningReport,
    /// Tracker configuration used for reports.
    pub tracker: TrackerConfig,
    /// Control-plane configuration for simulations built from this system:
    /// fault injection plus ARQ/dead-reckoning/re-acquisition mitigations.
    /// `None` (the default) keeps the legacy reliable-channel path.
    pub control: Option<ControlPlaneConfig>,
    /// The mapping training set (kept for evaluation).
    pub mapping_samples: Vec<MappingSample>,
}

impl CyclopsSystem {
    /// Runs the full §4 deployment procedure. Takes seconds for
    /// [`SystemConfig::paper_10g`]-scale training.
    pub fn commission(cfg: &SystemConfig) -> CyclopsSystem {
        let mut dep = Deployment::new(&cfg.deployment);
        let (tx_tr, tx_rig, rx_tr, rx_rig) =
            kspace::train_both(&dep, &cfg.board, cfg.seed).expect("stage-1 K-space training");
        let (init_tx, init_rx) = mapping::rough_initial_guess(
            &dep,
            &tx_rig,
            &rx_rig,
            cfg.rough_guess.0,
            cfg.rough_guess.1,
            cfg.seed.wrapping_add(7),
        );
        let mt = mapping::train_with(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            cfg.mapping_samples,
            cfg.seed.wrapping_add(9),
            &cfg.tracker,
        );
        let (combined_tx, combined_rx) = mt.trained.combined_errors(&mt.samples);
        let report = CommissioningReport {
            kspace_tx: tx_tr.train_error,
            kspace_rx: rx_tr.train_error,
            combined_tx,
            combined_rx,
            mapping_samples_used: mt.samples.len(),
        };
        let v0 = dep.voltages();
        let ctl = TpController::new(mt.trained, cfg.tp, [v0.0, v0.1, v0.2, v0.3]);
        CyclopsSystem {
            dep,
            ctl,
            report,
            tracker: cfg.tracker,
            control: None,
            mapping_samples: mt.samples,
        }
    }

    /// Moves the headset to a new true pose.
    pub fn move_headset(&mut self, pose: Pose) {
        self.dep.set_headset_pose(pose);
    }

    /// Takes one (noisy) tracking report of the current pose.
    pub fn track(&mut self) -> Pose {
        mapping::noisy_report(&mut self.dep, &self.tracker)
    }

    /// Runs the pointing function on a report and applies the voltages.
    /// Returns the TP latency (seconds).
    pub fn point(&mut self, reported: &Pose) -> f64 {
        let cmd = self.ctl.on_report(reported);
        let settle = self.dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        cmd.latency_s + settle
    }

    /// Received power right now (dBm).
    pub fn received_power_dbm(&mut self) -> f64 {
        self.dep.received_power_dbm()
    }

    /// Whether the optical link currently closes.
    pub fn link_up(&mut self) -> bool {
        self.dep.link_up()
    }

    /// Consumes the system into a 1 ms-slot link simulator over a motion.
    pub fn into_simulator<M: Motion>(self, motion: M) -> LinkSimulator<M> {
        let cfg = LinkSimConfig {
            tracker: self.tracker,
            control: self.control,
            ..Default::default()
        };
        LinkSimulator::new(self.dep, self.ctl, motion, cfg)
    }

    /// Consumes the system into a pre-seeded engine [`SessionBuilder`] over
    /// a motion — the builder-first counterpart of
    /// [`CyclopsSystem::into_simulator`], construction-identical per seed.
    /// Chain further calls (e.g.
    /// [`telemetry`](SessionBuilder::telemetry)) before `.build()`.
    pub fn into_session_builder<M: Motion>(self, motion: M) -> SessionBuilder<M, SingleTx> {
        let cfg = EngineConfig {
            tracker: self.tracker,
            control: self.control,
            ..EngineConfig::default()
        };
        cyclops_link::engine::LinkSession::builder(motion)
            .deployment(self.dep, self.ctl)
            .config(cfg)
            .first_report(FirstReport::AfterPeriod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    #[test]
    fn fast_commissioning_produces_working_system() {
        let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(99));
        assert!(sys.report.mapping_samples_used >= 8);
        assert!(sys.report.kspace_tx.mean < 5e-3);
        // Track-and-point closes the link at a new pose.
        sys.move_headset(Pose::translation(v3(0.1, -0.08, 1.85)));
        let rep = sys.track();
        let latency = sys.point(&rep);
        assert!(
            latency < 10e-3,
            "latency {latency} (includes slew for a large initial move)"
        );
        assert!(sys.link_up(), "power {}", sys.received_power_dbm());
    }

    #[test]
    fn system_converts_to_simulator() {
        use cyclops_vrh::motion::StaticPose;
        let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(100));
        let pose = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut sim = sys.into_simulator(StaticPose(pose));
        let recs = sim.run(0.5);
        assert_eq!(recs.len(), 500);
        let up = recs.iter().filter(|r| r.link_up).count();
        assert!(up > 495, "up slots {up}");
    }
}
