//! Curated re-exports for typical use.
//!
//! ```
//! use cyclops::prelude::*;
//! ```

pub use crate::system::{CommissioningReport, CyclopsSystem, SystemConfig};

pub use cyclops_geom::pose::{Pose, Pose6};
pub use cyclops_geom::quat::Quat;
pub use cyclops_geom::ray::Ray;
pub use cyclops_geom::vec3::Vec3;

pub use cyclops_optics::amplifier::Edfa;
pub use cyclops_optics::beam::BeamState;
pub use cyclops_optics::coupling::{CouplingModel, LinkDesign, ReceiverGeometry};
pub use cyclops_optics::galvo::{GalvoError, GalvoParams, GalvoSim, GalvoSimConfig};
pub use cyclops_optics::sfp::SfpSpec;

pub use cyclops_core::deployment::{Deployment, DeploymentConfig};
pub use cyclops_core::gprime::{gprime, gprime_default};
pub use cyclops_core::kspace::{BoardConfig, KspaceError};
pub use cyclops_core::pointing::{pointing, pointing_default};
pub use cyclops_core::tolerance::{lateral_tolerance, rx_angular_tolerance, tx_angular_tolerance};
pub use cyclops_core::tp::{TpConfig, TpController};

pub use cyclops_vrh::motion::{
    ArbitraryMotion, LinearRail, Motion, RotationStage, StaticPose, TracePlayback,
};
pub use cyclops_vrh::traces::{HeadTrace, TraceGenConfig};
pub use cyclops_vrh::tracking::{TrackerConfig, TrackingReport, VrhTracker};

pub use cyclops_link::channel::{
    EnvChannel, EnvStage, Environment, FogStage, HumanOccluderStage, RainStage, RfChannel,
    ScintillationStage,
};
pub use cyclops_link::control::{
    ArqConfig, ControlLink, ControlPlaneConfig, ControlStats, DeadReckoningConfig, FaultPlan,
    FlapSchedule, ReacqConfig,
};
pub use cyclops_link::engine::{
    run_fleet, run_fleet_mixed, run_fleet_rollup, EngineConfig, EngineConfigError, EngineSlot,
    FallbackPolicy, FirstReport, FleetConfig, FleetConfigBuilder, FleetPool, FleetRollup,
    FleetRollupAcc, FleetSummary, LinkPolicy, LinkSession, RfStats, SessionBuilder, SessionReport,
    SessionStats, TxInstallation,
};
pub use cyclops_link::handover::{HandoverSystem, Occluder, TxUnit};
pub use cyclops_link::multi_tx::MultiTxSimulator;
pub use cyclops_link::registry::{
    galvo_profile, galvo_profiles, headset_profile, headset_profiles, sfp_profile, sfp_profiles,
    GalvoProfile, GalvoProfileDef, HardwareProfile, HardwareProfileBuilder, HeadsetProfile,
    HeadsetProfileDef, RegistryError, SfpProfile, SfpProfileDef,
};
pub use cyclops_link::sched::{
    run_fleet_scheduled, run_fleet_with_scheduler, GrantEngine, GrantSet, GreedyMaxMargin,
    ProportionalFair, SchedConfig, SchedCtx, SchedPolicy, SchedRollup, SchedSessionStats,
    SessionSlotState, StaticPartition, TxScheduler,
};
pub use cyclops_link::simulator::{LinkSimConfig, LinkSimulator, SlotRecord};
pub use cyclops_link::telemetry::{
    Histogram, JsonlSink, NullSink, SessionTelemetry, Telemetry, TelemetryCounters, TelemetryEvent,
    TelemetrySink,
};
pub use cyclops_link::trace_sim::{
    replay_with_fallback, simulate_trace, FallbackReplay, TraceSimParams,
};
pub use cyclops_link::traffic::{TrafficConfig, TrafficSource, TrafficStats};
