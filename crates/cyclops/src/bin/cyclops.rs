//! `cyclops` — the operator CLI: list registry hardware profiles, run
//! sessions and fleets from profile + environment flags, stream telemetry
//! JSONL, and replay synthetic head-trace corpora.
//!
//! Arg parsing is hand-rolled (no dependencies); every input error reports
//! a typed message and exits with status 2, never a panic.
//!
//! ```sh
//! cyclops list-profiles
//! cyclops run --headset quest --sfp 25g-lr --env fog:0.3 --duration 2
//! cyclops run --digest --seed 9007            # bit-identity fingerprint
//! cyclops fleet --sessions 6 --mix 10g-zr/galvo-fast/rift-s,25g-lr/galvo-fast/quest
//! cyclops replay --traces 8 --duration 30
//! ```

use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;
use cyclops::vrh::traces::{HeadTrace, TraceGenConfig};
use cyclops_link::trace_sim::simulate_trace;

/// A CLI failure: what the operator typed wasn't runnable. Everything
/// converges here so `main` can print one line and exit 2.
#[derive(Debug)]
enum CliError {
    Usage(String),
    Registry(RegistryError),
    Config(EngineConfigError),
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Registry(e) => write!(f, "{e}"),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<RegistryError> for CliError {
    fn from(e: RegistryError) -> CliError {
        CliError::Registry(e)
    }
}

impl From<EngineConfigError> for CliError {
    fn from(e: EngineConfigError) -> CliError {
        CliError::Config(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e)
    }
}

fn usage() -> String {
    "cyclops — Cyclops FSO link simulator CLI

USAGE:
  cyclops list-profiles
  cyclops run   [--sfp NAME] [--galvo NAME] [--headset NAME]
                [--env SPEC] [--duration SECS] [--seed N]
                [--fallback rf|off] [--telemetry PATH.jsonl] [--digest]
  cyclops fleet [--sessions N] [--mix PROFILE[,PROFILE...]] [--env SPEC]
                [--duration SECS] [--seed N] [--policy static|greedy|pf]
  cyclops replay [--traces N] [--duration SECS] [--seed N] [--fallback rf|off]

PROFILE is sfp/galvo/headset, e.g. 25g-lr/galvo-fast/quest.
SPEC is comma-separated stages:
  fog:D        fog density in [0,1] (Kim-model Beer–Lambert)
  rain:R       rain rate in mm/h (Carbonneau)
  scint:S      log-normal scintillation sigma in dB
  occluders:R  human beam crossings per minute"
        .to_string()
}

/// Pulls the value of `--flag value` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() || args[i + 1].starts_with("--") {
            return Err(CliError::Usage(format!("{flag} needs a value")));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_f64(what: &str, s: &str) -> Result<f64, CliError> {
    s.parse::<f64>()
        .map_err(|_| CliError::Usage(format!("{what}: not a number: {s:?}")))
}

fn parse_u64(what: &str, s: &str) -> Result<u64, CliError> {
    s.parse::<u64>()
        .map_err(|_| CliError::Usage(format!("{what}: not an integer: {s:?}")))
}

fn parse_fallback(s: &str) -> Result<FallbackPolicy, CliError> {
    match s {
        "rf" => Ok(FallbackPolicy::RfOnOutage),
        "off" => Ok(FallbackPolicy::Off),
        other => Err(CliError::Usage(format!(
            "--fallback: expected rf|off, got {other:?}"
        ))),
    }
}

/// Parses `--env fog:0.3,rain:10,scint:0.2,occluders:2` into an
/// [`Environment`]. Stage seeds derive from the session seed per stream, so
/// the spec string plus the seed fully determine the run.
fn parse_env(spec: &str, wavelength_nm: f64, seed: u64) -> Result<Environment, CliError> {
    let mut env = Environment::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (kind, val) = part
            .split_once(':')
            .ok_or_else(|| CliError::Usage(format!("--env: expected kind:value, got {part:?}")))?;
        match kind {
            "fog" => {
                let d = parse_f64("--env fog", val)?;
                env = env.stage(FogStage::from_density(d, wavelength_nm)?);
            }
            "rain" => {
                let r = parse_f64("--env rain", val)?;
                env = env.stage(RainStage::new(r)?);
            }
            "scint" => {
                let s = parse_f64("--env scint", val)?;
                env = env.stage(ScintillationStage::new(
                    s,
                    10e-3,
                    cyclops_par::mix64(seed, 0x5c17),
                )?);
            }
            "occluders" => {
                let r = parse_f64("--env occluders", val)?;
                env = env.stage(HumanOccluderStage::new(
                    r,
                    0.5,
                    30.0,
                    cyclops_par::mix64(seed, 0x0cc1),
                )?);
            }
            other => {
                return Err(CliError::Usage(format!(
                    "--env: unknown stage {other:?} (fog|rain|scint|occluders)"
                )));
            }
        }
    }
    Ok(env)
}

/// Resolves `--sfp/--galvo/--headset` into a validated build.
fn parse_profile(
    sfp: Option<&str>,
    galvo: Option<&str>,
    headset: Option<&str>,
) -> Result<HardwareProfile, CliError> {
    let mut b = HardwareProfile::builder();
    if let Some(s) = sfp {
        b = b.sfp(s);
    }
    if let Some(g) = galvo {
        b = b.galvo(g);
    }
    if let Some(h) = headset {
        b = b.headset(h);
    }
    Ok(b.build()?)
}

/// Parses one `sfp/galvo/headset` pool label.
fn parse_pool_label(label: &str) -> Result<HardwareProfile, CliError> {
    let parts: Vec<&str> = label.split('/').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "--mix: expected sfp/galvo/headset, got {label:?}"
        )));
    }
    Ok(HardwareProfile::named(parts[0], parts[1], parts[2])?)
}

fn cmd_list_profiles() {
    println!("SFP/optics stacks:");
    for p in sfp_profiles() {
        let s = &p.design.sfp;
        println!(
            "  {:<10} {:>6.2} Gbps goodput, TX {:>5.1} dBm, sens {:>6.1} dBm, \
             relink {:.1} s, {} lane(s){}",
            p.name,
            s.optimal_goodput_gbps,
            s.tx_power_dbm,
            s.rx_sensitivity_dbm,
            s.relink_time_s,
            p.wdm_lanes,
            if p.min_galvo_slew_deg_s > 0.0 {
                format!(", needs galvo >= {:.0} deg/s", p.min_galvo_slew_deg_s)
            } else {
                String::new()
            }
        );
    }
    println!("Galvo assemblies:");
    for p in galvo_profiles() {
        println!(
            "  {:<11} slew {:>6.0} deg/s, settle {:>5.0} us",
            p.name,
            p.cfg.slew_rad_per_s.to_degrees(),
            p.cfg.small_step_settle_s * 1e6
        );
    }
    println!("Headset classes:");
    for p in headset_profiles() {
        println!(
            "  {:<8} report period {:>4.1}-{:.1} ms, late {:>4.1}%, pos noise {:>5.2} mm",
            p.name,
            p.tracker.period_min_s * 1e3,
            p.tracker.period_max_s * 1e3,
            p.tracker.late_prob * 100.0,
            p.tracker.pos_noise_sigma * 1e3
        );
    }
}

/// Folds a slot stream into the engine-digest discipline (`mix64` over the
/// public fields), so CI can assert bit-identity across flag spellings.
fn slot_digest(recs: &[EngineSlot]) -> u64 {
    let mut d = 0x0063_7963_6c6f_7073_u64; // "cyclops"
    let mut fold = |x: u64| d = cyclops_par::mix64(d ^ x, 0x9e37_79b9_7f4a_7c15);
    for r in recs {
        fold(r.t.to_bits());
        fold(r.power_dbm.to_bits());
        fold(r.link_up as u64);
        fold(r.goodput_gbps.to_bits());
    }
    d
}

fn cmd_run(mut args: Vec<String>) -> Result<(), CliError> {
    let sfp = take_flag(&mut args, "--sfp")?;
    let galvo = take_flag(&mut args, "--galvo")?;
    let headset = take_flag(&mut args, "--headset")?;
    let env_spec = take_flag(&mut args, "--env")?;
    let duration = take_flag(&mut args, "--duration")?;
    let seed = take_flag(&mut args, "--seed")?;
    let fallback = take_flag(&mut args, "--fallback")?;
    let telemetry = take_flag(&mut args, "--telemetry")?;
    let digest = take_switch(&mut args, "--digest");
    reject_leftovers(&args)?;

    let seed = seed.map_or(Ok(9_007), |s| parse_u64("--seed", &s))?;
    let duration_s = duration.map_or(Ok(2.0), |s| parse_f64("--duration", &s))?;
    if !(duration_s.is_finite() && duration_s > 0.0) {
        return Err(CliError::Usage(format!(
            "--duration must be positive, got {duration_s}"
        )));
    }
    let fallback = fallback.map_or(Ok(FallbackPolicy::Off), |s| parse_fallback(&s))?;
    let hw = parse_profile(sfp.as_deref(), galvo.as_deref(), headset.as_deref())?;
    let wavelength = hw.sfp.design.sfp.wavelength_nm;
    let env = env_spec.map_or(Ok(Environment::new()), |s| parse_env(&s, wavelength, seed))?;

    eprintln!("commissioning {} (seed {seed})...", hw.label());
    let sys = CyclopsSystem::commission(&SystemConfig::from_profile(&hw, seed));
    let sens = sys.dep.design.sfp.rx_sensitivity_dbm;
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), seed ^ 0x611);
    let mut builder = sys
        .into_session_builder(motion)
        .fallback(fallback)
        .environment(env);
    if let Some(path) = &telemetry {
        let sink = JsonlSink::create(std::path::Path::new(path))?;
        builder = builder.telemetry_sink(Box::new(sink));
    }
    let mut session = builder.build()?;
    let recs = session.run(duration_s);

    let n = recs.len().max(1) as f64;
    let up = recs.iter().filter(|r| r.link_up).count() as f64 / n;
    let sig = recs.iter().filter(|r| r.power_dbm >= sens).count() as f64 / n;
    let rf = recs.iter().filter(|r| r.rf_active).count() as f64 / n;
    let goodput = recs.iter().map(|r| r.goodput_gbps).sum::<f64>() / n;
    let stats = session.session_stats();
    println!("profile:      {}", hw.label());
    println!("slots:        {}", recs.len());
    println!("availability: {up:.4} (signal {sig:.4}, rf-carried {rf:.4})");
    println!("goodput:      {goodput:.3} Gbps mean");
    println!(
        "outages:      {} (total {:.3} s, longest {:.3} s)",
        stats.n_outages, stats.outage_s, stats.longest_outage_s
    );
    if let Some(path) = &telemetry {
        println!("telemetry:    {path}");
    }
    if digest {
        println!("digest:       {:016x}", slot_digest(&recs));
    }
    Ok(())
}

fn cmd_fleet(mut args: Vec<String>) -> Result<(), CliError> {
    let sessions = take_flag(&mut args, "--sessions")?;
    let mix = take_flag(&mut args, "--mix")?;
    let env_spec = take_flag(&mut args, "--env")?;
    let duration = take_flag(&mut args, "--duration")?;
    let seed = take_flag(&mut args, "--seed")?;
    let policy = take_flag(&mut args, "--policy")?;
    reject_leftovers(&args)?;

    let seed = seed.map_or(Ok(905), |s| parse_u64("--seed", &s))?;
    let duration_s = duration.map_or(Ok(1.0), |s| parse_f64("--duration", &s))?;
    let n_sessions = sessions.map_or(Ok(4), |s| parse_u64("--sessions", &s))? as usize;
    let profiles: Vec<HardwareProfile> = match &mix {
        Some(m) => m
            .split(',')
            .filter(|p| !p.is_empty())
            .map(parse_pool_label)
            .collect::<Result<_, _>>()?,
        None => vec![HardwareProfile::default()],
    };
    if profiles.is_empty() {
        return Err(CliError::Usage("--mix: no profiles given".to_string()));
    }
    let wavelength = profiles[0].sfp.design.sfp.wavelength_nm;
    let env = env_spec.map_or(Ok(Environment::new()), |s| parse_env(&s, wavelength, seed))?;

    let mut pools = Vec::with_capacity(profiles.len());
    for (i, hw) in profiles.iter().enumerate() {
        eprintln!("commissioning pool {i}: {} ...", hw.label());
        let sys = CyclopsSystem::commission(&SystemConfig::from_profile(&hw.clone(), seed));
        pools.push(FleetPool {
            label: hw.label(),
            units: vec![TxInstallation {
                dep: sys.dep,
                ctl: sys.ctl,
            }],
            tracker: hw.tracker(),
        });
    }

    let fleet = FleetConfig::builder()
        .n_sessions(n_sessions)
        .duration_s(duration_s)
        .seed(seed)
        .environment(env)
        .build()?;

    let summary = match policy.as_deref() {
        None => run_fleet_mixed(&pools, &fleet)?,
        Some(p) => {
            if pools.len() != 1 {
                return Err(CliError::Usage(
                    "--policy: scheduled fleets are homogeneous; use a single --mix profile"
                        .to_string(),
                ));
            }
            let sc = match p {
                "static" => SchedConfig::static_partition(),
                "greedy" => SchedConfig::greedy(),
                "pf" => SchedConfig::proportional_fair(1.0),
                other => {
                    return Err(CliError::Usage(format!(
                        "--policy: expected static|greedy|pf, got {other:?}"
                    )));
                }
            };
            let fleet = FleetConfig {
                tracker: pools[0].tracker,
                ..fleet
            };
            run_fleet_scheduled(&pools[0].units, &fleet, &sc)?
        }
    };

    for s in &summary.sessions {
        let pool = s
            .profile
            .map(|p| pools[p as usize].label.clone())
            .unwrap_or_else(|| pools[0].label.clone());
        println!(
            "session {:>2} [{}] up {:.4} signal {:.4} goodput {:>6.3} Gbps outages {}",
            s.session, pool, s.up_frac, s.signal_frac, s.mean_goodput_gbps, s.stats.n_outages
        );
    }
    let roll = summary.rollup();
    println!(
        "fleet: {} sessions, mean up {:.4}, min up {:.4}, aggregate {:.3} Gbps",
        roll.n_sessions, roll.mean_up_frac, roll.min_up_frac, roll.sum_goodput_gbps
    );
    for (p, r) in summary.profile_rollups() {
        println!(
            "  pool {} [{}]: {} sessions, mean up {:.4}, aggregate {:.3} Gbps",
            p, pools[p as usize].label, r.n_sessions, r.mean_up_frac, r.sum_goodput_gbps
        );
    }
    if let Some(sr) = roll.sched {
        println!(
            "sched: availability {:.4} (min {:.4}), served {:.3} Gbps, \
             worst stall {:.3} s, Jain {:.3}",
            sr.mean_availability,
            sr.min_availability,
            sr.sum_served_gbps,
            sr.worst_stall_s,
            sr.fairness_jain
        );
    }
    Ok(())
}

fn cmd_replay(mut args: Vec<String>) -> Result<(), CliError> {
    let traces = take_flag(&mut args, "--traces")?;
    let duration = take_flag(&mut args, "--duration")?;
    let seed = take_flag(&mut args, "--seed")?;
    let fallback = take_flag(&mut args, "--fallback")?;
    reject_leftovers(&args)?;

    let n = traces.map_or(Ok(8), |s| parse_u64("--traces", &s))? as usize;
    let duration_s = duration.map_or(Ok(30.0), |s| parse_f64("--duration", &s))?;
    let seed = seed.map_or(Ok(42), |s| parse_u64("--seed", &s))?;
    let fallback = fallback.map_or(Ok(FallbackPolicy::Off), |s| parse_fallback(&s))?;
    if n == 0 {
        return Err(CliError::Usage("--traces must be >= 1".to_string()));
    }

    let p = TraceSimParams::default();
    println!("replaying {n} synthetic §5.4 traces of {duration_s} s (seed {seed}):");
    let mut fracs = Vec::with_capacity(n);
    for i in 0..n {
        let cfg = TraceGenConfig {
            duration_s,
            ..TraceGenConfig::normal_use()
        };
        let trace = HeadTrace::generate(&cfg, cyclops_par::mix64(seed, 1 + i as u64));
        let r = simulate_trace(&trace, &p);
        match fallback {
            FallbackPolicy::Off => {
                println!("  trace {i:>2}: on {:.4}", r.on_fraction);
            }
            FallbackPolicy::RfOnOutage => {
                let fb = cyclops_link::trace_sim::replay_with_fallback(
                    &r.slots_on,
                    p.slot_ms,
                    2.5,
                    fallback,
                    1.0,
                    8.6,
                );
                println!(
                    "  trace {i:>2}: fso {:.4} rf {:.4} up {:.4} rate {:.3} Gbps",
                    fb.fso_up_frac, fb.rf_frac, fb.up_frac, fb.effective_gbps
                );
            }
        }
        fracs.push(r.on_fraction);
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    println!("mean on-fraction: {mean:.4}");
    Ok(())
}

fn reject_leftovers(args: &[String]) -> Result<(), CliError> {
    if let Some(a) = args.first() {
        return Err(CliError::Usage(format!("unknown argument {a:?}")));
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        println!("{}", usage());
        return;
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "list-profiles" => {
            if let Err(e) = reject_leftovers(&args) {
                Err(e)
            } else {
                cmd_list_profiles();
                Ok(())
            }
        }
        "run" => cmd_run(args),
        "fleet" => cmd_fleet(args),
        "replay" => cmd_replay(args),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
