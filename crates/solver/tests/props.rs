//! Property-based tests for the optimization substrate.

use cyclops_solver::lm::{levenberg_marquardt, LmOptions};
use cyclops_solver::nelder_mead::{nelder_mead, NmOptions};
use cyclops_solver::pattern::{pattern_search, PatternOptions};
use cyclops_solver::scalar::{bisect_threshold, golden_min};
use cyclops_solver::stats::{ecdf_at, quantile, ResidualStats};
use proptest::prelude::*;

proptest! {
    /// LM never ends with a higher cost than it started with.
    #[test]
    fn lm_never_increases_cost(a in -5.0..5.0f64, b in -5.0..5.0f64,
                               x0 in -3.0..3.0f64, y0 in -3.0..3.0f64) {
        let f = move |x: &[f64]| vec![(x[0] - a) * (x[0] + b), x[1] - a * b];
        let rep = levenberg_marquardt(f, &[x0, y0], &LmOptions::default());
        prop_assert!(rep.cost <= rep.initial_cost + 1e-12);
    }

    /// LM solves any consistent 2×2 linear system exactly.
    #[test]
    fn lm_solves_linear_systems(m00 in -3.0..3.0f64, m01 in -3.0..3.0f64,
                                m10 in -3.0..3.0f64, m11 in -3.0..3.0f64,
                                tx in -2.0..2.0f64, ty in -2.0..2.0f64) {
        prop_assume!((m00 * m11 - m01 * m10).abs() > 0.1); // well-conditioned
        let b0 = m00 * tx + m01 * ty;
        let b1 = m10 * tx + m11 * ty;
        let f = move |x: &[f64]| vec![m00 * x[0] + m01 * x[1] - b0, m10 * x[0] + m11 * x[1] - b1];
        let rep = levenberg_marquardt(f, &[0.0, 0.0], &LmOptions::default());
        prop_assert!((rep.params[0] - tx).abs() < 1e-5, "{:?}", rep.params);
        prop_assert!((rep.params[1] - ty).abs() < 1e-5);
    }

    /// Nelder–Mead lands in the basin of a shifted quadratic bowl.
    #[test]
    fn nm_finds_quadratic_minimum(cx in -4.0..4.0f64, cy in -4.0..4.0f64) {
        let f = move |x: &[f64]| (x[0] - cx).powi(2) + 2.0 * (x[1] - cy).powi(2) + 1.0;
        let rep = nelder_mead(f, &[0.0, 0.0], &NmOptions::default());
        prop_assert!((rep.params[0] - cx).abs() < 1e-2);
        prop_assert!((rep.params[1] - cy).abs() < 1e-2);
        prop_assert!((rep.value - 1.0).abs() < 1e-3);
    }

    /// Pattern search respects its box bounds.
    #[test]
    fn pattern_respects_bounds(peak in -20.0..20.0f64, lo in -5.0..-1.0f64, hi in 1.0..5.0f64) {
        let f = move |x: &[f64]| -(x[0] - peak).powi(2);
        let opts = PatternOptions::uniform(1, lo, hi, 1.0);
        let rep = pattern_search(f, &[0.0], &opts);
        prop_assert!(rep.params[0] >= lo - 1e-12 && rep.params[0] <= hi + 1e-12);
        // And finds the clamped optimum.
        let expect = peak.clamp(lo, hi);
        prop_assert!((rep.params[0] - expect).abs() < 1e-3,
            "peak {peak}, got {}", rep.params[0]);
    }

    /// Threshold bisection brackets the true threshold from below.
    #[test]
    fn bisect_brackets_threshold(thr in 0.1..9.9f64) {
        let t = bisect_threshold(|x| x < thr, 0.0, 10.0, 1e-9);
        prop_assert!(t <= thr);
        prop_assert!(thr - t < 1e-6);
    }

    /// Golden-section beats both bracket endpoints on a unimodal function.
    #[test]
    fn golden_beats_endpoints(c in -3.0..3.0f64) {
        let f = move |x: f64| (x - c).powi(2);
        let (x, fx) = golden_min(f, -5.0, 5.0, 1e-9);
        prop_assert!(fx <= f(-5.0) && fx <= f(5.0));
        prop_assert!((x - c).abs() < 1e-6);
    }

    /// Quantiles are monotone and bounded by the extremes.
    #[test]
    fn quantiles_monotone(mut values in prop::collection::vec(-100.0..100.0f64, 2..60),
                          qa in 0.0..1.0f64, qb in 0.0..1.0f64) {
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let a = quantile(&values, lo_q);
        let b = quantile(&values, hi_q);
        prop_assert!(a <= b + 1e-12);
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= values[0] - 1e-12);
        prop_assert!(b <= values[values.len() - 1] + 1e-12);
    }

    /// The empirical CDF is a monotone map into \[0, 1\].
    #[test]
    fn ecdf_is_monotone(values in prop::collection::vec(-10.0..10.0f64, 1..50)) {
        let thresholds: Vec<f64> = (-10..=10).map(|k| k as f64).collect();
        let cdf = ecdf_at(&values, &thresholds);
        for w in cdf.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!(cdf.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    /// Residual statistics are internally consistent.
    #[test]
    fn stats_consistency(values in prop::collection::vec(0.0..50.0f64, 1..40)) {
        let s = ResidualStats::from_slice(&values);
        prop_assert!(s.min <= s.mean + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert!(s.mean <= s.rms + 1e-9, "mean {} rms {}", s.mean, s.rms);
        prop_assert_eq!(s.n, values.len());
    }
}
