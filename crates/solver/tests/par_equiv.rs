//! Serial/parallel equivalence properties — the contract of the `parallel`
//! feature is that it is a pure scheduling change: every result is
//! bit-identical to the serial loop.
//!
//! These properties run unchanged in both build configurations
//! (`cargo test` and `cargo test --no-default-features`). In the parallel
//! build they pin the worker pool to several widths, exercising real thread
//! handoffs; in the serial build `with_threads` is inert and the same
//! assertions certify the serial path against the identical hand-rolled
//! reference. Passing in both configurations therefore proves the two
//! builds agree with each other, which a single binary cannot test
//! directly.

use cyclops_solver::{
    grid_scan2, grid_scan2_sync, nelder_mead_multistart, numeric_jacobian, DMat, NmOptions,
};
use proptest::prelude::*;

/// The residual family used by the Jacobian property: smooth, coupled, with
/// per-component curvature so every column is informative.
fn residual(x: &[f64]) -> Vec<f64> {
    (0..x.len() + 2)
        .map(|i| {
            let t = 0.3 + i as f64 * 0.41;
            x.iter()
                .enumerate()
                .map(|(j, &v)| (v * t + j as f64 * 0.17).sin() + v * v * t * 1e-2)
                .sum::<f64>()
        })
        .collect()
}

/// Hand-rolled serial central-difference Jacobian — the pre-parallel
/// algorithm, kept verbatim as the reference.
fn serial_jacobian(x: &[f64], rel_step: f64) -> DMat {
    let m = x.len() + 2;
    let n = x.len();
    let mut jac = DMat::zeros(m, n);
    for j in 0..n {
        let mut xp = x.to_vec();
        let h = rel_step * x[j].abs().max(1.0);
        xp[j] = x[j] + h;
        let rp = residual(&xp);
        xp[j] = x[j] - h;
        let rm = residual(&xp);
        let inv = 1.0 / (2.0 * h);
        for i in 0..m {
            jac[(i, j)] = (rp[i] - rm[i]) * inv;
        }
    }
    jac
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(24))]

    /// `numeric_jacobian` equals the serial reference bit-for-bit at any
    /// pool width.
    #[test]
    fn jacobian_bitwise_equals_serial_reference(
        x in proptest::collection::vec(-3.0..3.0f64, 1..7),
        threads in 1usize..9,
    ) {
        let reference = serial_jacobian(&x, 1e-7);
        let jac = cyclops_par::with_threads(threads, || {
            numeric_jacobian(&|v: &[f64]| residual(v), &x, x.len() + 2, 1e-7)
        });
        prop_assert_eq!(jac, reference);
    }

    /// The parallel 2-D grid scan picks exactly the serial scan's winner —
    /// including its first-wins tie-breaking — at any pool width. The
    /// objective is floor-quantized so exact ties genuinely occur.
    #[test]
    fn grid_scan_matches_serial_winner(
        cx in -4.0..4.0f64,
        cy in -4.0..4.0f64,
        quant in 1.0..8.0f64,
        threads in 1usize..9,
    ) {
        let f = move |v: &[f64]| {
            (-((v[0] - cx).powi(2) + (v[1] - cy).powi(2)) * quant).floor()
        };
        let serial = grid_scan2(&mut |v: &[f64]| f(v), &[0.0, 0.0], (0, 1),
                                (-5.0, -5.0), (5.0, 5.0), 33);
        let parallel = cyclops_par::with_threads(threads, || {
            grid_scan2_sync(&f, &[0.0, 0.0], (0, 1), (-5.0, -5.0), (5.0, 5.0), 33)
        });
        prop_assert_eq!(parallel.params.clone(), serial.params);
        prop_assert_eq!(parallel.value.to_bits(), serial.value.to_bits());
        prop_assert_eq!(parallel.n_evals, serial.n_evals);
    }

    /// Multi-start Nelder–Mead returns the same winner at any pool width.
    #[test]
    fn multistart_invariant_to_thread_count(
        shift in -2.0..2.0f64,
        threads in 2usize..9,
    ) {
        let f = move |x: &[f64]| {
            (x[0] - shift).powi(2) * (x[0] + shift).powi(2) + x[0].sin() * 0.05
        };
        let starts: Vec<Vec<f64>> = (0..5).map(|i| vec![-3.0 + i as f64 * 1.4]).collect();
        let opts = NmOptions::default();
        let reference = cyclops_par::with_threads(1, || nelder_mead_multistart(&f, &starts, &opts));
        let rep = cyclops_par::with_threads(threads, || nelder_mead_multistart(&f, &starts, &opts));
        prop_assert_eq!(rep.params, reference.params);
        prop_assert_eq!(rep.value.to_bits(), reference.value.to_bits());
        prop_assert_eq!(rep.n_evals, reference.n_evals);
    }
}
