//! Coarse-to-fine pattern search (the "automated exhaustive search").
//!
//! §4.2 aligns the link by exhaustively searching the four galvo voltages for
//! maximum received power, taking "1–2 mins" per sample on the bench. A naive
//! full grid over four voltage axes is astronomically large, so — as in the
//! authors' earlier FSONet system \[32\] — the practical implementation is a
//! multi-resolution search: evaluate a coarse grid pattern around the current
//! point, move to the best neighbour, shrink the step when no neighbour
//! improves. This module implements that, plus an optional axis-aligned
//! initial scan.

/// Options for [`pattern_search`].
#[derive(Debug, Clone)]
pub struct PatternOptions {
    /// Initial step per dimension.
    pub init_step: Vec<f64>,
    /// Terminate when every step falls below this factor of its initial value.
    pub shrink_tol: f64,
    /// Step shrink factor applied when no neighbour improves.
    pub shrink_factor: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Lower bounds per dimension (clamped).
    pub lower: Vec<f64>,
    /// Upper bounds per dimension (clamped).
    pub upper: Vec<f64>,
}

impl PatternOptions {
    /// Uniform configuration for `n` dimensions in `[lo, hi]` with initial
    /// step `step`.
    pub fn uniform(n: usize, lo: f64, hi: f64, step: f64) -> PatternOptions {
        PatternOptions {
            init_step: vec![step; n],
            shrink_tol: 1e-4,
            shrink_factor: 0.5,
            max_evals: 200_000,
            lower: vec![lo; n],
            upper: vec![hi; n],
        }
    }
}

/// Result of a pattern search.
#[derive(Debug, Clone)]
pub struct PatternReport {
    /// Best point found.
    pub params: Vec<f64>,
    /// Objective at the best point (the *maximum*).
    pub value: f64,
    /// Evaluations used.
    pub n_evals: usize,
}

/// Maximizes `f` by compass/pattern search starting from `x0`.
///
/// Deterministic, derivative-free and robust to plateaus — exactly what the
/// four-voltage received-power landscape needs (power is ~flat at zero until
/// the beam begins to graze the receive aperture).
pub fn pattern_search<F>(mut f: F, x0: &[f64], opts: &PatternOptions) -> PatternReport
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert_eq!(opts.init_step.len(), n);
    assert_eq!(opts.lower.len(), n);
    assert_eq!(opts.upper.len(), n);

    let clamp = |x: &mut Vec<f64>| {
        for (xi, (lo, hi)) in x.iter_mut().zip(opts.lower.iter().zip(&opts.upper)) {
            *xi = xi.clamp(*lo, *hi);
        }
    };

    let mut x = x0.to_vec();
    clamp(&mut x);
    let mut n_evals = 0usize;
    let mut best = f(&x);
    n_evals += 1;
    let mut step: Vec<f64> = opts.init_step.clone();

    loop {
        if n_evals >= opts.max_evals {
            break;
        }
        let mut improved = false;
        // Compass moves: ± step along each axis.
        for dim in 0..n {
            for sign in [1.0f64, -1.0] {
                let mut cand = x.clone();
                cand[dim] += sign * step[dim];
                clamp(&mut cand);
                if cand == x {
                    continue;
                }
                let v = f(&cand);
                n_evals += 1;
                if v > best {
                    best = v;
                    x = cand;
                    improved = true;
                }
                if n_evals >= opts.max_evals {
                    break;
                }
            }
        }
        if !improved {
            // Shrink the pattern.
            let mut all_small = true;
            for (s, s0) in step.iter_mut().zip(&opts.init_step) {
                *s *= opts.shrink_factor;
                if *s > opts.shrink_tol * s0 {
                    all_small = false;
                }
            }
            if all_small {
                break;
            }
        }
    }

    PatternReport {
        params: x,
        value: best,
        n_evals,
    }
}

/// Scans each axis on a uniform grid (holding the others fixed), returning
/// the best point found. Useful to bootstrap [`pattern_search`] when the
/// objective is zero except in a small basin (a narrow beam far from the
/// receiver): the scan sweeps the beam across the whole coverage cone.
pub fn axis_scan<F>(
    mut f: F,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    points_per_axis: usize,
) -> PatternReport
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(points_per_axis >= 2, "need at least two points per axis");
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut best = f(&x);
    let mut n_evals = 1usize;
    for dim in 0..n {
        let mut best_axis = x[dim];
        for k in 0..points_per_axis {
            let t = k as f64 / (points_per_axis - 1) as f64;
            let v = lower[dim] + t * (upper[dim] - lower[dim]);
            let mut cand = x.clone();
            cand[dim] = v;
            let fv = f(&cand);
            n_evals += 1;
            if fv > best {
                best = fv;
                best_axis = v;
            }
        }
        x[dim] = best_axis;
    }
    PatternReport {
        params: x,
        value: best,
        n_evals,
    }
}

/// Jointly scans a *pair* of dimensions `(d0, d1)` on a full 2-D grid while
/// holding the others fixed, returning the best point found.
///
/// This is the bootstrap for the four-voltage alignment search: the received
/// power is zero until the TX beam grazes the receiver, so the TX voltage
/// pair must be swept jointly across the whole coverage cone (the bench
/// procedure that takes "1–2 mins" in §4.2).
pub fn grid_scan2<F>(
    mut f: F,
    x0: &[f64],
    dims: (usize, usize),
    lower: (f64, f64),
    upper: (f64, f64),
    points_per_axis: usize,
) -> PatternReport
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(points_per_axis >= 2);
    let (d0, d1) = dims;
    let mut x = x0.to_vec();
    let mut best = f(&x);
    let mut n_evals = 1usize;
    let mut best_pair = (x[d0], x[d1]);
    let step =
        |lo: f64, hi: f64, k: usize| lo + (hi - lo) * k as f64 / (points_per_axis - 1) as f64;
    let mut cand = x.clone();
    for i in 0..points_per_axis {
        cand[d0] = step(lower.0, upper.0, i);
        for j in 0..points_per_axis {
            cand[d1] = step(lower.1, upper.1, j);
            let v = f(&cand);
            n_evals += 1;
            if v > best {
                best = v;
                best_pair = (cand[d0], cand[d1]);
            }
        }
    }
    x[d0] = best_pair.0;
    x[d1] = best_pair.1;
    PatternReport {
        params: x,
        value: best,
        n_evals,
    }
}

/// Runs [`pattern_search`] from every start in `starts` and returns the best
/// result (highest objective; ties broken by start index).
///
/// Under the `parallel` feature the restarts run concurrently; each run is
/// independent and the winner is selected by an index-ordered scan, so the
/// result is bit-identical to the serial execution. `n_evals` is the total
/// across restarts.
///
/// # Panics
/// Panics if `starts` is empty.
pub fn pattern_search_multistart<F>(
    f: &F,
    starts: &[Vec<f64>],
    opts: &PatternOptions,
) -> PatternReport
where
    F: crate::ScalarObjective,
{
    assert!(!starts.is_empty(), "need at least one start");
    let run = |x0: &Vec<f64>| pattern_search(|x| f(x), x0, opts);
    #[cfg(feature = "parallel")]
    let reports = cyclops_par::par_map(starts, 1, run);
    #[cfg(not(feature = "parallel"))]
    let reports: Vec<PatternReport> = starts.iter().map(run).collect();

    let total_evals: usize = reports.iter().map(|r| r.n_evals).sum();
    let mut best = None::<PatternReport>;
    for rep in reports {
        // MSRV 1.75: spelled as a match rather than `Option::is_none_or`.
        let take = match &best {
            None => true,
            Some(b) => rep.value > b.value,
        };
        if take {
            best = Some(rep);
        }
    }
    let mut best = best.unwrap();
    best.n_evals = total_evals;
    best
}

/// [`grid_scan2`] for `Sync` objectives: rows of the 2-D grid are evaluated
/// on worker threads under the `parallel` feature.
///
/// The result is bit-identical to [`grid_scan2`]: every grid point sees the
/// same inputs, and the row results are folded in row order with the same
/// strict-`>` comparison, reproducing the serial first-wins tie-breaking.
pub fn grid_scan2_sync<F>(
    f: &F,
    x0: &[f64],
    dims: (usize, usize),
    lower: (f64, f64),
    upper: (f64, f64),
    points_per_axis: usize,
) -> PatternReport
where
    F: crate::ScalarObjective,
{
    assert!(points_per_axis >= 2);
    let (d0, d1) = dims;
    let mut x = x0.to_vec();
    let best0 = f(&x);
    let step =
        |lo: f64, hi: f64, k: usize| lo + (hi - lo) * k as f64 / (points_per_axis - 1) as f64;

    // Each row scans d1 serially and reports its first-wins row maximum.
    let scan_row = |i: usize| -> (f64, usize) {
        let mut cand = x0.to_vec();
        cand[d0] = step(lower.0, upper.0, i);
        let mut row_best = f64::NEG_INFINITY;
        let mut row_j = 0usize;
        for j in 0..points_per_axis {
            cand[d1] = step(lower.1, upper.1, j);
            let v = f(&cand);
            if v > row_best {
                row_best = v;
                row_j = j;
            }
        }
        (row_best, row_j)
    };

    #[cfg(feature = "parallel")]
    let rows = cyclops_par::par_map_indexed(points_per_axis, 1, scan_row);
    #[cfg(not(feature = "parallel"))]
    let rows: Vec<(f64, usize)> = (0..points_per_axis).map(scan_row).collect();

    // Fold rows in order with the serial strict-> comparison.
    let mut best = best0;
    let mut best_pair = (x[d0], x[d1]);
    for (i, &(v, j)) in rows.iter().enumerate() {
        if v > best {
            best = v;
            best_pair = (step(lower.0, upper.0, i), step(lower.1, upper.1, j));
        }
    }
    x[d0] = best_pair.0;
    x[d1] = best_pair.1;
    PatternReport {
        params: x,
        value: best,
        n_evals: 1 + points_per_axis * points_per_axis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_gaussian() {
        let f = |x: &[f64]| (-(x[0] - 0.3).powi(2) - (x[1] + 0.7).powi(2)).exp();
        let opts = PatternOptions::uniform(2, -5.0, 5.0, 1.0);
        let rep = pattern_search(f, &[0.0, 0.0], &opts);
        assert!((rep.params[0] - 0.3).abs() < 1e-3, "{:?}", rep.params);
        assert!((rep.params[1] + 0.7).abs() < 1e-3);
    }

    #[test]
    fn four_dimensional_alignment_shape() {
        // A product of two 2-D Gaussians — the structure of TX/RX voltage
        // alignment (two nearly independent pairs).
        let f = |x: &[f64]| {
            (-(x[0] - 1.0).powi(2) - (x[1] - 2.0).powi(2)).exp()
                * (-(x[2] + 1.5).powi(2) - (x[3] - 0.5).powi(2)).exp()
        };
        let opts = PatternOptions::uniform(4, -10.0, 10.0, 2.0);
        let rep = pattern_search(f, &[0.0; 4], &opts);
        let expect = [1.0, 2.0, -1.5, 0.5];
        for (i, (&got, &want)) in rep.params.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-2, "dim {i}: {:?}", rep.params);
        }
    }

    #[test]
    fn respects_bounds() {
        // Peak outside the box: search must end pinned at the boundary.
        let f = |x: &[f64]| -(x[0] - 10.0).powi(2);
        let opts = PatternOptions::uniform(1, -1.0, 1.0, 0.5);
        let rep = pattern_search(f, &[0.0], &opts);
        assert!((rep.params[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_eval_budget() {
        let f = |x: &[f64]| -x[0] * x[0];
        let mut opts = PatternOptions::uniform(1, -100.0, 100.0, 1.0);
        opts.max_evals = 5;
        let rep = pattern_search(f, &[50.0], &opts);
        assert!(rep.n_evals <= 6);
    }

    #[test]
    fn axis_scan_finds_axis_reachable_basin() {
        // Basin centred on the x-axis through the start point: axis_scan can
        // walk into it one dimension at a time.
        let f = |x: &[f64]| -((x[0] - 3.0).powi(2) + (x[1] + 4.0).powi(2));
        let rep = axis_scan(f, &[0.0, 0.0], &[-10.0, -10.0], &[10.0, 10.0], 101);
        assert!((rep.params[0] - 3.0).abs() < 0.11, "{:?}", rep.params);
        assert!((rep.params[1] + 4.0).abs() < 0.11);
    }

    #[test]
    fn multistart_pattern_finds_global_peak() {
        // Two peaks; the one at (4, 4) is taller but needs the right start.
        let f = |x: &[f64]| {
            let p1 = (-(x[0] + 4.0).powi(2) - (x[1] + 4.0).powi(2)).exp();
            let p2 = 2.0 * (-(x[0] - 4.0).powi(2) - (x[1] - 4.0).powi(2)).exp();
            p1 + p2
        };
        let opts = PatternOptions::uniform(2, -10.0, 10.0, 1.0);
        let starts = vec![vec![-4.5, -4.5], vec![0.0, 0.0], vec![4.5, 4.5]];
        let rep = pattern_search_multistart(&f, &starts, &opts);
        assert!((rep.params[0] - 4.0).abs() < 1e-2, "{:?}", rep.params);
        assert!((rep.params[1] - 4.0).abs() < 1e-2);
    }

    #[test]
    fn grid_scan2_sync_bit_identical_to_serial() {
        // Plateaued objective with exact ties to stress tie-breaking.
        let f = |x: &[f64]| {
            let d2 = (x[0] - 3.0).powi(2) + (x[1] + 4.0).powi(2);
            ((4.0 - d2).max(0.0) * 4.0).floor()
        };
        let serial = grid_scan2(f, &[0.0, 0.0], (0, 1), (-10.0, -10.0), (10.0, 10.0), 37);
        for threads in [1, 2, 3, 8] {
            let par = cyclops_par::with_threads(threads, || {
                grid_scan2_sync(&f, &[0.0, 0.0], (0, 1), (-10.0, -10.0), (10.0, 10.0), 37)
            });
            assert_eq!(par.params, serial.params, "threads={threads}");
            assert_eq!(par.value.to_bits(), serial.value.to_bits());
            assert_eq!(par.n_evals, serial.n_evals);
        }
    }

    #[test]
    fn grid_scan2_finds_narrow_offaxis_basin() {
        // Objective is zero except near (3, -4) — per-axis scans through the
        // origin never see it; the joint 2-D grid does. This is the structure
        // of the four-voltage alignment bootstrap.
        let f = |x: &[f64]| {
            let d2 = (x[0] - 3.0).powi(2) + (x[1] + 4.0).powi(2);
            (4.0 - d2).max(0.0)
        };
        let axis = axis_scan(f, &[0.0, 0.0], &[-10.0, -10.0], &[10.0, 10.0], 101);
        assert_eq!(axis.value, 0.0, "axis scan must miss the off-axis basin");
        let rep = grid_scan2(f, &[0.0, 0.0], (0, 1), (-10.0, -10.0), (10.0, 10.0), 41);
        assert!(rep.value > 0.0);
        // Refine with pattern search.
        let opts = PatternOptions::uniform(2, -10.0, 10.0, 0.5);
        let rep2 = pattern_search(f, &rep.params, &opts);
        assert!((rep2.params[0] - 3.0).abs() < 0.01, "{:?}", rep2.params);
        assert!((rep2.params[1] + 4.0).abs() < 0.01);
    }
}
