//! # cyclops-solver
//!
//! Self-contained numerical optimization, replacing the paper's use of
//! `scipy.optimize` \[57\] for the two training stages of the Cyclops pointing
//! mechanism:
//!
//! * **K-space GMA fit (§4.1(B))** — non-linear least squares over the ~20
//!   geometric parameters of the galvo-mirror-assembly model `G`, minimizing
//!   board-hit error over the 266 grid samples → [`lm::levenberg_marquardt`].
//! * **VR-space mapping fit (§4.2)** — non-linear least squares over the 12
//!   mapping parameters minimizing the Lemma-1 error
//!   `Σ d(p_t, τ_r) + d(p_r, τ_t)` → also LM, with
//!   [`nelder_mead::nelder_mead`] available as a derivative-free fallback.
//! * **Exhaustive alignment search (§4.2)** — the "automated exhaustive
//!   search \[for] the optimal combination of the four voltages that maximizes
//!   the received power" → [`pattern::pattern_search`] (coarse-to-fine
//!   coordinate/pattern search, the practical form of exhaustive search the
//!   earlier FSONet work \[32\] used).
//! * **Tolerance bisection (§5.1)** — finding the maximum misalignment at
//!   which the link still closes → [`scalar::bisect_threshold`] and
//!   [`scalar::golden_min`].
//!
//! All algorithms are deterministic; none allocate outside of plain `Vec`s.
//!
//! ## Parallelism
//!
//! With the default `parallel` feature, the hot loops — Jacobian columns in
//! [`jacobian::numeric_jacobian`], independent restarts in
//! [`nelder_mead::nelder_mead_multistart`] /
//! [`pattern::pattern_search_multistart`], and the 2-D bootstrap grid in
//! [`pattern::grid_scan2_sync`] — fan out over [`cyclops_par`] worker
//! threads. Every parallel path is **bit-identical** to the serial one
//! (index-ordered collection, serial tie-breaking), so
//! `--no-default-features` builds produce exactly the same numbers.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod jacobian;
pub mod linalg;
pub mod lm;
pub mod nelder_mead;
pub mod pattern;
pub mod scalar;
pub mod stats;

pub use jacobian::{numeric_jacobian, numeric_jacobian_into, Residual};
pub use linalg::DMat;
pub use lm::{levenberg_marquardt, LmOptions, LmReport, LmStatus};
pub use nelder_mead::{nelder_mead, nelder_mead_multistart, NmOptions, NmReport};
pub use pattern::{
    axis_scan, grid_scan2, grid_scan2_sync, pattern_search, pattern_search_multistart,
    PatternOptions, PatternReport,
};
pub use scalar::{bisect_threshold, golden_min};
pub use stats::ResidualStats;

/// Scalar objectives accepted by the parallel multi-start drivers.
///
/// With the `parallel` feature (the default) the objective must be [`Sync`]
/// so restarts can run on worker threads; serial builds drop that bound.
/// Blanket-implemented — callers never name it.
#[cfg(feature = "parallel")]
pub trait ScalarObjective: Fn(&[f64]) -> f64 + Sync {}
#[cfg(feature = "parallel")]
impl<F: Fn(&[f64]) -> f64 + Sync> ScalarObjective for F {}

/// Scalar objectives accepted by the parallel multi-start drivers
/// (serial build: no [`Sync`] bound).
#[cfg(not(feature = "parallel"))]
pub trait ScalarObjective: Fn(&[f64]) -> f64 {}
#[cfg(not(feature = "parallel"))]
impl<F: Fn(&[f64]) -> f64> ScalarObjective for F {}
