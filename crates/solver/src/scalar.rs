//! One-dimensional searches: golden-section minimization and threshold
//! bisection.
//!
//! [`bisect_threshold`] implements the §5.1 tolerance measurement: "the
//! maximum angular movement from the aligned position for which the link
//! remains connected" — i.e. the largest `x` for which a monotone predicate
//! still holds.

/// Golden-section minimization of a unimodal function on `[a, b]`.
///
/// Returns `(x_min, f(x_min))` after narrowing the bracket below `tol`.
pub fn golden_min<F>(mut f: F, mut a: f64, mut b: f64, tol: f64) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    assert!(b > a, "invalid bracket");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    let fx = f(x);
    (x, fx)
}

/// Finds the largest `x` in `[lo, hi]` for which `pred(x)` is true, assuming
/// `pred` is true at `lo` and monotonically switches to false somewhere in
/// the interval.
///
/// Returns `hi` if the predicate holds on the whole interval and `lo` if it
/// fails immediately above `lo`. `tol` bounds the bracket width.
///
/// This is the "movement tolerance" measurement: `pred(offset)` = "link still
/// closes at this misalignment".
pub fn bisect_threshold<F>(mut pred: F, lo: f64, hi: f64, tol: f64) -> f64
where
    F: FnMut(f64) -> bool,
{
    assert!(hi > lo);
    if !pred(lo) {
        return lo;
    }
    if pred(hi) {
        return hi;
    }
    let (mut a, mut b) = (lo, hi);
    while b - a > tol {
        let mid = (a + b) / 2.0;
        if pred(mid) {
            a = mid;
        } else {
            b = mid;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_min() {
        let (x, fx) = golden_min(|x| (x - 1.3).powi(2) + 2.0, -10.0, 10.0, 1e-8);
        assert!((x - 1.3).abs() < 1e-6);
        assert!((fx - 2.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_boundary_min() {
        let (x, _) = golden_min(|x| x, 0.0, 1.0, 1e-8);
        assert!(x < 1e-6);
    }

    #[test]
    fn bisect_finds_threshold() {
        // Link "closes" while offset < 5.77 (a tolerance in mrad).
        let t = bisect_threshold(|x| x < 5.77, 0.0, 20.0, 1e-9);
        assert!((t - 5.77).abs() < 1e-6);
    }

    #[test]
    fn bisect_whole_interval_true() {
        assert_eq!(bisect_threshold(|_| true, 0.0, 3.0, 1e-9), 3.0);
    }

    #[test]
    fn bisect_false_at_lo() {
        assert_eq!(bisect_threshold(|x| x < -1.0, 0.0, 3.0, 1e-9), 0.0);
    }

    #[test]
    fn bisect_respects_tolerance() {
        let t = bisect_threshold(|x| x < 1.0, 0.0, 2.0, 1e-3);
        assert!((t - 1.0).abs() <= 1e-3);
        assert!(t <= 1.0);
    }
}
