//! Levenberg–Marquardt non-linear least squares.
//!
//! This is the workhorse behind both training stages of the Cyclops pointing
//! pipeline (§4.1(B) and §4.2). The paper uses `scipy.optimize` with "a good
//! initial guess" (from the galvo's CAD drawing and manual measurement); we
//! mirror that: callers provide the initial guess and this solver refines it.

use crate::jacobian::{numeric_jacobian_into, Residual};
use crate::linalg::DMat;

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmStatus {
    /// Residual norm change fell below `tol_cost`.
    CostConverged,
    /// Parameter step fell below `tol_step`.
    StepConverged,
    /// Gradient (Jᵀr) norm fell below `tol_grad`.
    GradConverged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// The damped normal equations became singular even at maximum damping.
    Singular,
}

/// Options for [`levenberg_marquardt`].
#[derive(Debug, Clone, Copy)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the relative cost decrease is below this.
    pub tol_cost: f64,
    /// Stop when the parameter step norm is below this.
    pub tol_step: f64,
    /// Stop when the gradient norm is below this.
    pub tol_grad: f64,
    /// Initial damping factor λ.
    pub lambda_init: f64,
    /// Multiplier applied to λ on rejected steps (and its inverse on accepts).
    pub lambda_factor: f64,
    /// Relative finite-difference step for the numeric Jacobian.
    pub fd_rel_step: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iters: 200,
            tol_cost: 1e-14,
            tol_step: 1e-12,
            tol_grad: 1e-12,
            lambda_init: 1e-3,
            lambda_factor: 10.0,
            fd_rel_step: 1e-7,
        }
    }
}

/// Result of a Levenberg–Marquardt run.
#[derive(Debug, Clone)]
pub struct LmReport {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Final cost `½‖r‖²`.
    pub cost: f64,
    /// Initial cost at the starting guess.
    pub initial_cost: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Number of residual-function evaluations.
    pub n_evals: usize,
    /// Why the solver stopped.
    pub status: LmStatus,
}

fn cost_of(r: &[f64]) -> f64 {
    0.5 * r.iter().map(|v| v * v).sum::<f64>()
}

/// Minimizes `½‖f(x)‖²` starting from `x0`.
///
/// `f` returns the residual vector; its length must be constant. The Jacobian
/// is computed numerically ([`crate::jacobian::numeric_jacobian`]), matching
/// how one would drive `scipy.optimize.least_squares` without analytic
/// derivatives. Under the `parallel` feature (the default) the Jacobian
/// columns are evaluated concurrently — bit-identical to the serial path —
/// which is where the solver spends nearly all of its time on the Cyclops
/// fits. The Jacobian, normal matrix and step vectors live in scratch
/// buffers reused across iterations, so the per-iteration allocations are
/// only those of the residual closure itself.
pub fn levenberg_marquardt<F>(f: F, x0: &[f64], opts: &LmOptions) -> LmReport
where
    F: Residual,
{
    let mut x = x0.to_vec();
    let mut r = f(&x);
    let m = r.len();
    let n = x.len();
    let mut n_evals = 1usize;
    let initial_cost = cost_of(&r);
    let mut cost = initial_cost;
    let mut lambda = opts.lambda_init;
    let mut status = LmStatus::MaxIterations;
    let mut iterations = 0usize;

    // Scratch storage reused across (inner and outer) iterations.
    let mut jac = DMat::zeros(m, n);
    let mut gram = DMat::zeros(n, n);
    let mut a = DMat::zeros(n, n);
    let mut grad = vec![0.0; n];
    let mut step = vec![0.0; n];
    let mut x_new = vec![0.0; n];

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        numeric_jacobian_into(&f, &x, opts.fd_rel_step, &mut jac);
        n_evals += 2 * n;
        jac.t_mul_vec_into(&r, &mut grad);
        let grad_norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if grad_norm < opts.tol_grad {
            status = LmStatus::GradConverged;
            break;
        }
        jac.gram_into(&mut gram);

        // Inner loop: increase damping until a step reduces the cost.
        let mut accepted = false;
        for _ in 0..32 {
            // Damped normal matrix: JᵀJ + λ·diag(JᵀJ) (Marquardt scaling),
            // with an absolute floor so flat directions stay regularized.
            a.copy_from(&gram);
            for i in 0..n {
                let d = gram[(i, i)];
                a[(i, i)] = d + lambda * d.max(1e-12);
            }
            for (s, g) in step.iter_mut().zip(&grad) {
                *s = -g;
            }
            if !a.solve_in_place(&mut step) {
                lambda *= opts.lambda_factor;
                continue;
            }
            for ((xn, xi), s) in x_new.iter_mut().zip(&x).zip(&step) {
                *xn = xi + s;
            }
            let r_new = f(&x_new);
            n_evals += 1;
            let cost_new = cost_of(&r_new);
            if cost_new < cost {
                let step_norm = step.iter().map(|s| s * s).sum::<f64>().sqrt();
                let rel_decrease = (cost - cost_new) / cost.max(1e-300);
                std::mem::swap(&mut x, &mut x_new);
                r = r_new;
                cost = cost_new;
                lambda = (lambda / opts.lambda_factor).max(1e-12);
                accepted = true;
                if rel_decrease < opts.tol_cost {
                    status = LmStatus::CostConverged;
                }
                if step_norm < opts.tol_step {
                    status = LmStatus::StepConverged;
                }
                break;
            }
            lambda *= opts.lambda_factor;
            if lambda > 1e12 {
                break;
            }
        }
        if !accepted {
            // Could not find a descending step even with huge damping: we are
            // at a (local) minimum or the problem is singular.
            if status == LmStatus::MaxIterations {
                status = LmStatus::Singular;
            }
            break;
        }
        if status != LmStatus::MaxIterations {
            break;
        }
    }

    LmReport {
        params: x,
        cost,
        initial_cost,
        iterations,
        n_evals,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_linear_least_squares_exactly() {
        // Overdetermined linear system: residuals r_i = a_i·x - b_i.
        let f = |x: &[f64]| {
            vec![
                x[0] + x[1] - 3.0,
                x[0] - x[1] - 1.0,
                2.0 * x[0] + x[1] - 5.0,
            ]
        };
        let rep = levenberg_marquardt(f, &[0.0, 0.0], &LmOptions::default());
        assert!(rep.cost < 1e-18, "cost {}", rep.cost);
        assert!((rep.params[0] - 2.0).abs() < 1e-8);
        assert!((rep.params[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rosenbrock_as_least_squares() {
        // Classic: r = [10(y - x²), 1 - x], minimum at (1, 1).
        let f = |x: &[f64]| vec![10.0 * (x[1] - x[0] * x[0]), 1.0 - x[0]];
        let rep = levenberg_marquardt(f, &[-1.2, 1.0], &LmOptions::default());
        assert!((rep.params[0] - 1.0).abs() < 1e-6, "{:?}", rep);
        assert!((rep.params[1] - 1.0).abs() < 1e-6);
        assert!(rep.cost < 1e-12);
    }

    #[test]
    fn exponential_curve_fit() {
        // Fit y = a·exp(b·t) to synthetic data from a=2, b=-0.7.
        let ts: Vec<f64> = (0..20).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 2.0 * (-0.7 * t).exp()).collect();
        let f = move |p: &[f64]| -> Vec<f64> {
            ts.iter()
                .zip(&ys)
                .map(|(t, y)| p[0] * (p[1] * t).exp() - y)
                .collect()
        };
        let rep = levenberg_marquardt(f, &[1.0, 0.0], &LmOptions::default());
        assert!((rep.params[0] - 2.0).abs() < 1e-6, "{:?}", rep.params);
        assert!((rep.params[1] + 0.7).abs() < 1e-6);
    }

    #[test]
    fn reports_cost_decrease() {
        let f = |x: &[f64]| vec![x[0] - 5.0];
        let rep = levenberg_marquardt(f, &[0.0], &LmOptions::default());
        assert!(rep.initial_cost > rep.cost);
        assert!(rep.n_evals > 0);
        assert!(rep.iterations >= 1);
    }

    #[test]
    fn converges_from_good_guess_in_few_iterations() {
        // Mirrors the paper's setup: the initial guess is close (CAD data),
        // LM only refines. Must converge fast.
        let f = |x: &[f64]| vec![(x[0] - 1.0) * (x[0] + 3.0), x[1] - 2.0];
        let rep = levenberg_marquardt(f, &[1.05, 1.9], &LmOptions::default());
        assert!(rep.cost < 1e-16);
        assert!(rep.iterations < 20);
    }

    #[test]
    fn handles_singular_jacobian_gracefully() {
        // Residual ignores x[1] entirely: JᵀJ is singular; damping must cope.
        let f = |x: &[f64]| vec![x[0] - 1.0];
        let rep = levenberg_marquardt(f, &[10.0, 7.0], &LmOptions::default());
        assert!((rep.params[0] - 1.0).abs() < 1e-6);
        assert_eq!(rep.params[1], 7.0); // untouched direction
    }

    #[test]
    fn zero_residual_at_start_stops_immediately() {
        let f = |x: &[f64]| vec![x[0] - 1.0];
        let rep = levenberg_marquardt(f, &[1.0], &LmOptions::default());
        assert_eq!(rep.status, LmStatus::GradConverged);
        assert!(rep.cost < 1e-30);
    }
}
