//! Numeric Jacobians (central differences).

use crate::linalg::DMat;

/// Residual functions accepted by the numeric-Jacobian and LM drivers.
///
/// With the `parallel` feature (the default) residual closures must be
/// [`Sync`] so Jacobian columns can be evaluated from worker threads; serial
/// builds (`--no-default-features`) drop that bound. The alias is
/// blanket-implemented, so callers never name it — any suitable closure
/// works.
#[cfg(feature = "parallel")]
pub trait Residual: Fn(&[f64]) -> Vec<f64> + Sync {}
#[cfg(feature = "parallel")]
impl<F: Fn(&[f64]) -> Vec<f64> + Sync> Residual for F {}

/// Residual functions accepted by the numeric-Jacobian and LM drivers
/// (serial build: no [`Sync`] bound).
#[cfg(not(feature = "parallel"))]
pub trait Residual: Fn(&[f64]) -> Vec<f64> {}
#[cfg(not(feature = "parallel"))]
impl<F: Fn(&[f64]) -> Vec<f64>> Residual for F {}

/// Computes the Jacobian `J[i][j] = ∂rᵢ/∂xⱼ` of a residual function by central
/// differences.
///
/// `f` maps a parameter vector to a residual vector of fixed length
/// `n_residuals`. The step for parameter `j` is `rel_step · max(|xⱼ|, 1)`,
/// which behaves well across the mixed metre/radian/volt parameter scales in
/// the Cyclops fits.
///
/// Columns are evaluated in parallel under the `parallel` feature. The result
/// is bit-identical to the serial evaluation: each column depends only on `x`
/// and `j`, and columns are written back in index order.
pub fn numeric_jacobian<F>(f: &F, x: &[f64], n_residuals: usize, rel_step: f64) -> DMat
where
    F: Residual,
{
    let mut jac = DMat::zeros(n_residuals, x.len());
    numeric_jacobian_into(f, x, rel_step, &mut jac);
    jac
}

/// [`numeric_jacobian`] writing into a caller-owned matrix, so iterative
/// solvers (LM) can reuse one allocation across iterations.
///
/// # Panics
/// Panics if `jac` is not `n_residuals × x.len()` (the residual length is
/// taken from `jac.rows`).
pub fn numeric_jacobian_into<F>(f: &F, x: &[f64], rel_step: f64, jac: &mut DMat)
where
    F: Residual,
{
    let n = x.len();
    let m = jac.rows;
    assert_eq!(jac.cols, n, "jacobian column count must match x.len()");

    let eval_col = |j: usize| -> Vec<f64> {
        let mut xp = x.to_vec();
        let h = rel_step * x[j].abs().max(1.0);
        xp[j] = x[j] + h;
        let rp = f(&xp);
        xp[j] = x[j] - h;
        let rm = f(&xp);
        debug_assert_eq!(rp.len(), m);
        debug_assert_eq!(rm.len(), m);
        let inv = 1.0 / (2.0 * h);
        rp.iter().zip(&rm).map(|(p, q)| (p - q) * inv).collect()
    };

    #[cfg(feature = "parallel")]
    let cols = cyclops_par::par_map_indexed(n, 1, eval_col);
    #[cfg(not(feature = "parallel"))]
    let cols: Vec<Vec<f64>> = (0..n).map(eval_col).collect();

    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            jac[(i, j)] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_function_exact() {
        // r = A x with A = [[1, 2], [3, 4], [5, 6]]: Jacobian is A.
        let f = |x: &[f64]| {
            vec![
                x[0] + 2.0 * x[1],
                3.0 * x[0] + 4.0 * x[1],
                5.0 * x[0] + 6.0 * x[1],
            ]
        };
        let j = numeric_jacobian(&f, &[0.7, -0.3], 3, 1e-6);
        let expect = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        for r in 0..3 {
            for c in 0..2 {
                assert!((j[(r, c)] - expect[r][c]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn nonlinear_function() {
        // r = [x², sin(y)]: J = [[2x, 0], [0, cos(y)]].
        let f = |x: &[f64]| vec![x[0] * x[0], x[1].sin()];
        let x = [1.5, 0.4];
        let j = numeric_jacobian(&f, &x, 2, 1e-6);
        assert!((j[(0, 0)] - 3.0).abs() < 1e-6);
        assert!(j[(0, 1)].abs() < 1e-9);
        assert!(j[(1, 0)].abs() < 1e-9);
        assert!((j[(1, 1)] - 0.4f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn step_scales_with_parameter_magnitude() {
        // For very large parameters a fixed step would lose all precision;
        // relative stepping keeps the error controlled.
        let f = |x: &[f64]| vec![x[0] * 1e-6];
        let j = numeric_jacobian(&f, &[1e9], 1, 1e-7);
        assert!((j[(0, 0)] - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn into_variant_matches_and_reuses_buffer() {
        let f = |x: &[f64]| vec![x[0].sin() * x[1], x[0] + x[1] * x[1], x[0] * x[1]];
        let x = [0.3, -1.2];
        let fresh = numeric_jacobian(&f, &x, 3, 1e-7);
        let mut reused = DMat::zeros(3, 2);
        for _ in 0..3 {
            numeric_jacobian_into(&f, &x, 1e-7, &mut reused);
        }
        assert_eq!(fresh, reused);
    }

    /// The parallel column evaluation must be bit-identical to a plain serial
    /// loop, for any thread count.
    #[test]
    fn parallel_columns_bit_identical_to_serial() {
        let f = |x: &[f64]| -> Vec<f64> {
            (0..7)
                .map(|i| {
                    let t = i as f64 * 0.37;
                    (x[0] * t).sin() + x[1] * t * t - (x[2] + t).exp() * 1e-3 + x[3] / (1.0 + t)
                })
                .collect()
        };
        let x = [0.21f64, -1.7, 0.05, 3.3];
        let rel = 1e-7f64;
        // Hand-rolled serial reference (the pre-parallel algorithm).
        let mut reference = DMat::zeros(7, 4);
        for j in 0..4 {
            let mut xp = x.to_vec();
            let h = rel * x[j].abs().max(1.0);
            xp[j] = x[j] + h;
            let rp = f(&xp);
            xp[j] = x[j] - h;
            let rm = f(&xp);
            let inv = 1.0 / (2.0 * h);
            for i in 0..7 {
                reference[(i, j)] = (rp[i] - rm[i]) * inv;
            }
        }
        for threads in [1, 2, 3, 8] {
            let jac = cyclops_par::with_threads(threads, || numeric_jacobian(&f, &x, 7, rel));
            assert_eq!(jac, reference, "threads={threads}");
        }
    }
}
