//! Numeric Jacobians (central differences).

use crate::linalg::DMat;

/// Computes the Jacobian `J[i][j] = ∂rᵢ/∂xⱼ` of a residual function by central
/// differences.
///
/// `f` maps a parameter vector to a residual vector of fixed length
/// `n_residuals`. The step for parameter `j` is `rel_step · max(|xⱼ|, 1)`,
/// which behaves well across the mixed metre/radian/volt parameter scales in
/// the Cyclops fits.
pub fn numeric_jacobian<F>(f: &F, x: &[f64], n_residuals: usize, rel_step: f64) -> DMat
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let n = x.len();
    let mut jac = DMat::zeros(n_residuals, n);
    let mut xp = x.to_vec();
    for j in 0..n {
        let h = rel_step * x[j].abs().max(1.0);
        xp[j] = x[j] + h;
        let rp = f(&xp);
        xp[j] = x[j] - h;
        let rm = f(&xp);
        xp[j] = x[j];
        debug_assert_eq!(rp.len(), n_residuals);
        debug_assert_eq!(rm.len(), n_residuals);
        let inv = 1.0 / (2.0 * h);
        for i in 0..n_residuals {
            jac[(i, j)] = (rp[i] - rm[i]) * inv;
        }
    }
    jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_function_exact() {
        // r = A x with A = [[1, 2], [3, 4], [5, 6]]: Jacobian is A.
        let f = |x: &[f64]| {
            vec![
                x[0] + 2.0 * x[1],
                3.0 * x[0] + 4.0 * x[1],
                5.0 * x[0] + 6.0 * x[1],
            ]
        };
        let j = numeric_jacobian(&f, &[0.7, -0.3], 3, 1e-6);
        let expect = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]];
        for r in 0..3 {
            for c in 0..2 {
                assert!((j[(r, c)] - expect[r][c]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn nonlinear_function() {
        // r = [x², sin(y)]: J = [[2x, 0], [0, cos(y)]].
        let f = |x: &[f64]| vec![x[0] * x[0], x[1].sin()];
        let x = [1.5, 0.4];
        let j = numeric_jacobian(&f, &x, 2, 1e-6);
        assert!((j[(0, 0)] - 3.0).abs() < 1e-6);
        assert!(j[(0, 1)].abs() < 1e-9);
        assert!(j[(1, 0)].abs() < 1e-9);
        assert!((j[(1, 1)] - 0.4f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn step_scales_with_parameter_magnitude() {
        // For very large parameters a fixed step would lose all precision;
        // relative stepping keeps the error controlled.
        let f = |x: &[f64]| vec![x[0] * 1e-6];
        let j = numeric_jacobian(&f, &[1e9], 1, 1e-7);
        assert!((j[(0, 0)] - 1e-6).abs() < 1e-12);
    }
}
