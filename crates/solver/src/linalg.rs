//! Small dense linear algebra: just enough to run Levenberg–Marquardt on
//! problems with a few dozen parameters (the K-space fit has ~22, the
//! VR-space mapping fit has 12).

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> DMat {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> DMat {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> DMat {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        DMat { rows, cols, data }
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies another matrix's contents into this one without reallocating.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &DMat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from dimension mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Computes `AᵀA` (the Gauss–Newton normal matrix).
    pub fn gram(&self) -> DMat {
        let mut g = DMat::zeros(self.cols, self.cols);
        self.gram_into(&mut g);
        g
    }

    /// [`DMat::gram`] writing into a caller-owned `cols × cols` matrix, so
    /// iterative solvers can reuse one allocation.
    ///
    /// # Panics
    /// Panics if `g` is not `cols × cols`.
    pub fn gram_into(&self, g: &mut DMat) {
        let n = self.cols;
        assert_eq!((g.rows, g.cols), (n, n), "gram_into dimension mismatch");
        g.data.fill(0.0);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
    }

    /// Computes `Aᵀb`.
    pub fn t_mul_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_mul_vec_into(b, &mut out);
        out
    }

    /// [`DMat::t_mul_vec`] writing into a caller-owned vector.
    ///
    /// # Panics
    /// Panics if `b.len() != rows` or `out.len() != cols`.
    pub fn t_mul_vec_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (r, &br) in b.iter().enumerate() {
            if br == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * br;
            }
        }
    }

    /// Computes `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Solves `A·x = b` via Gaussian elimination with partial pivoting.
    /// Returns `None` if the matrix is (numerically) singular.
    ///
    /// `self` is consumed; callers that want to keep (or reuse) the matrix
    /// storage should use [`DMat::solve_in_place`].
    pub fn solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        let mut x = b.to_vec();
        if self.solve_in_place(&mut x) {
            Some(x)
        } else {
            None
        }
    }

    /// Solves `A·x = b` in place: `x` holds `b` on entry and the solution on
    /// exit (its contents are unspecified when `false` — singular — is
    /// returned). The matrix is destroyed (reduced) but its allocation stays
    /// with the caller, so iterative solvers can refill and re-solve without
    /// churning the allocator.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `x.len() != rows`.
    pub fn solve_in_place(&mut self, x: &mut [f64]) -> bool {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(x.len(), self.rows);
        let n = self.rows;

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = self[(col, col)].abs();
            for r in (col + 1)..n {
                let v = self[(r, col)].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return false;
            }
            if pivot != col {
                self.data.swap(pivot * n + col, col * n + col);
                for c in (col + 1)..n {
                    self.data.swap(pivot * n + c, col * n + c);
                }
                x.swap(pivot, col);
            }
            let diag = self[(col, col)];
            for r in (col + 1)..n {
                let factor = self[(r, col)] / diag;
                if factor == 0.0 {
                    continue;
                }
                self[(r, col)] = 0.0;
                for c in (col + 1)..n {
                    let v = self[(col, c)];
                    self[(r, c)] -= factor * v;
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in (col + 1)..n {
                s -= self[(col, c)] * x[c];
            }
            x[col] = s / self[(col, col)];
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = DMat::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
        let m = DMat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First diagonal entry zero forces a row swap.
        let m = DMat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let m = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn random_system_roundtrip() {
        // Deterministic pseudo-random 6x6 system: check A·solve(A,b) == b.
        let n = 6;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let data: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let a = DMat::from_vec(n, n, data);
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a
            .clone()
            .solve(&b)
            .expect("random matrix should be nonsingular");
        let bx = a.mul_vec(&x);
        for i in 0..n {
            assert!((bx[i] - b[i]).abs() < 1e-9, "component {i}");
        }
    }

    #[test]
    fn solve_in_place_reuses_storage_and_matches_solve() {
        let a = DMat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let expect = a.clone().solve(&[5.0, 10.0]).unwrap();
        let mut scratch = DMat::zeros(2, 2);
        let mut x = [5.0, 10.0];
        scratch.copy_from(&a);
        assert!(scratch.solve_in_place(&mut x));
        assert_eq!(x.to_vec(), expect);
        // Refill and solve again with the same buffers.
        scratch.copy_from(&a);
        let mut y = [2.0, 3.0];
        assert!(scratch.solve_in_place(&mut y));
        let back = a.mul_vec(&y);
        assert!((back[0] - 2.0).abs() < 1e-12 && (back[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gram_and_t_mul_vec() {
        // A = [[1,2],[3,4],[5,6]]
        let a = DMat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gram();
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 0)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
        let atb = a.t_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(atb, vec![9.0, 12.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DMat::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 8.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_dims() {
        let _ = DMat::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
