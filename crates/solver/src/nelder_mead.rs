//! Nelder–Mead downhill simplex minimization.
//!
//! Derivative-free scalar minimizer. In Cyclops it serves as (a) a fallback /
//! cross-check for the Levenberg–Marquardt fits, and (b) the refinement stage
//! of the four-voltage alignment search where the objective (simulated
//! received power) is noisy enough that finite-difference Jacobians are
//! unreliable.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NmOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread is below this.
    pub tol_fun: f64,
    /// Stop when the simplex's diameter is below this.
    pub tol_x: f64,
    /// Initial simplex scale relative to `max(|x₀ᵢ|, 1)`.
    pub init_scale: f64,
}

impl Default for NmOptions {
    fn default() -> Self {
        NmOptions {
            max_evals: 2000,
            tol_fun: 1e-12,
            tol_x: 1e-10,
            init_scale: 0.05,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NmReport {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective at the best point.
    pub value: f64,
    /// Objective evaluations used.
    pub n_evals: usize,
    /// Whether a tolerance (rather than the budget) stopped the run.
    pub converged: bool,
}

/// Minimizes `f` starting from `x0` with the standard Nelder–Mead moves
/// (reflection α=1, expansion γ=2, contraction ρ=½, shrink σ=½).
pub fn nelder_mead<F>(mut f: F, x0: &[f64], opts: &NmOptions) -> NmReport
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n >= 1, "need at least one parameter");
    let mut n_evals = 0usize;
    let mut eval = |x: &[f64], n_evals: &mut usize| {
        *n_evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a perturbation of each coordinate.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let h = opts.init_scale * v[i].abs().max(1.0);
        v[i] += h;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|x| eval(x, &mut n_evals)).collect();

    let mut converged = false;
    while n_evals < opts.max_evals {
        // Order the simplex by objective.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let reorder = |v: &mut Vec<Vec<f64>>, w: &mut Vec<f64>, idx: &[usize]| {
            let nv: Vec<Vec<f64>> = idx.iter().map(|&i| v[i].clone()).collect();
            let nw: Vec<f64> = idx.iter().map(|&i| w[i]).collect();
            *v = nv;
            *w = nw;
        };
        reorder(&mut simplex, &mut values, &idx);

        // Convergence checks.
        let spread = values[n] - values[0];
        let diameter = simplex[1..]
            .iter()
            .map(|x| {
                x.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        // Both criteria must hold (as in MATLAB's fminsearch): a symmetric
        // simplex straddling the minimum has zero objective spread while
        // still being far from converged in x.
        if spread.abs() < opts.tol_fun && diameter < opts.tol_x {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for x in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let xr = blend(&centroid, &worst, -1.0);
        let fr = eval(&xr, &mut n_evals);
        if fr < values[0] {
            // Expansion.
            let xe = blend(&centroid, &worst, -2.0);
            let fe = eval(&xe, &mut n_evals);
            if fe < fr {
                simplex[n] = xe;
                values[n] = fe;
            } else {
                simplex[n] = xr;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = xr;
            values[n] = fr;
        } else {
            // Contraction (outside if reflected is better than worst).
            let (xc, fc) = if fr < values[n] {
                let xc = blend(&centroid, &xr, 0.5);
                let fc = eval(&xc, &mut n_evals);
                (xc, fc)
            } else {
                let xc = blend(&centroid, &worst, 0.5);
                let fc = eval(&xc, &mut n_evals);
                (xc, fc)
            };
            if fc < values[n].min(fr) {
                simplex[n] = xc;
                values[n] = fc;
            } else {
                // Shrink towards the best vertex.
                for i in 1..=n {
                    simplex[i] = blend(&simplex[0], &simplex[i], 0.5);
                    values[i] = eval(&simplex[i], &mut n_evals);
                }
            }
        }
    }

    // Best vertex.
    let (best_i, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    NmReport {
        params: simplex[best_i].clone(),
        value: values[best_i],
        n_evals,
        converged,
    }
}

/// Runs [`nelder_mead`] from every start in `starts` and returns the best
/// result (lowest objective; ties broken by start index).
///
/// Under the `parallel` feature the restarts run concurrently; because each
/// run is independent and the winner is selected by an index-ordered scan,
/// the result is bit-identical to running the starts serially. `n_evals` in
/// the report is the total across all restarts.
///
/// # Panics
/// Panics if `starts` is empty.
pub fn nelder_mead_multistart<F>(f: &F, starts: &[Vec<f64>], opts: &NmOptions) -> NmReport
where
    F: crate::ScalarObjective,
{
    assert!(!starts.is_empty(), "need at least one start");
    let run = |x0: &Vec<f64>| nelder_mead(|x| f(x), x0, opts);
    #[cfg(feature = "parallel")]
    let reports = cyclops_par::par_map(starts, 1, run);
    #[cfg(not(feature = "parallel"))]
    let reports: Vec<NmReport> = starts.iter().map(run).collect();

    let total_evals: usize = reports.iter().map(|r| r.n_evals).sum();
    let mut best = None::<NmReport>;
    for rep in reports {
        // MSRV 1.75: spelled as a match rather than `Option::is_none_or`.
        let take = match &best {
            None => true,
            Some(b) => rep.value < b.value,
        };
        if take {
            best = Some(rep);
        }
    }
    let mut best = best.unwrap();
    best.n_evals = total_evals;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let rep = nelder_mead(f, &[0.0, 0.0], &NmOptions::default());
        assert!(rep.converged);
        assert!((rep.params[0] - 3.0).abs() < 1e-4, "{:?}", rep.params);
        assert!((rep.params[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let rep = nelder_mead(
            f,
            &[-1.2, 1.0],
            &NmOptions {
                max_evals: 5000,
                ..Default::default()
            },
        );
        assert!((rep.params[0] - 1.0).abs() < 1e-3, "{:?}", rep.params);
        assert!((rep.params[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2) + 7.0;
        let rep = nelder_mead(f, &[5.0], &NmOptions::default());
        assert!((rep.params[0] - 0.25).abs() < 1e-4);
        assert!((rep.value - 7.0).abs() < 1e-8);
    }

    #[test]
    fn four_dimensional_sphere() {
        // Mirrors the 4-voltage alignment refinement dimensionality.
        let f = |x: &[f64]| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
        let rep = nelder_mead(f, &[0.0, 2.0, -1.0, 0.5], &NmOptions::default());
        for (i, p) in rep.params.iter().enumerate() {
            assert!((p - 1.0).abs() < 1e-3, "param {i} = {p}");
        }
    }

    #[test]
    fn respects_eval_budget() {
        let f = |x: &[f64]| x[0] * x[0];
        let rep = nelder_mead(
            f,
            &[100.0],
            &NmOptions {
                max_evals: 10,
                ..Default::default()
            },
        );
        assert!(rep.n_evals <= 12); // budget plus the move in flight
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well: basin at x=-2 (value 1) and global at x=+2 (value 0).
        let f = |x: &[f64]| {
            let a = (x[0] + 2.0).powi(2) + 1.0;
            let b = (x[0] - 2.0).powi(2);
            a.min(b)
        };
        let single = nelder_mead(f, &[-3.0], &NmOptions::default());
        assert!((single.params[0] + 2.0).abs() < 1e-2, "stuck well expected");
        let starts = vec![vec![-3.0], vec![0.5], vec![3.0]];
        let multi = nelder_mead_multistart(&f, &starts, &NmOptions::default());
        assert!((multi.params[0] - 2.0).abs() < 1e-3, "{:?}", multi.params);
        assert!(multi.n_evals > single.n_evals);
    }

    #[test]
    fn multistart_bit_identical_across_thread_counts() {
        let f = |x: &[f64]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2) + x[0].sin() * 0.01
        };
        let starts: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![-2.0 + i as f64 * 0.8, 1.0 - i as f64 * 0.3])
            .collect();
        let opts = NmOptions::default();
        let reference = cyclops_par::with_threads(1, || nelder_mead_multistart(&f, &starts, &opts));
        for threads in [2, 3, 8] {
            let rep =
                cyclops_par::with_threads(threads, || nelder_mead_multistart(&f, &starts, &opts));
            assert_eq!(rep.params, reference.params, "threads={threads}");
            assert_eq!(rep.value.to_bits(), reference.value.to_bits());
            assert_eq!(rep.n_evals, reference.n_evals);
        }
    }

    #[test]
    fn tolerant_to_mild_noise() {
        // Deterministic "noise" from a hash of the input — NM should still
        // land near the basin bottom.
        let f = |x: &[f64]| {
            let base = (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2);
            let h = ((x[0] * 1e4) as i64 ^ (x[1] * 1e4) as i64) % 100;
            base + h as f64 * 1e-9
        };
        let rep = nelder_mead(f, &[0.0, 0.0], &NmOptions::default());
        assert!((rep.params[0] - 2.0).abs() < 1e-2);
        assert!((rep.params[1] - 2.0).abs() < 1e-2);
    }
}
