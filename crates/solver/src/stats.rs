//! Residual/error statistics — the "Avg. Error / Max. Error" numbers of the
//! paper's Table 2 and general summary utilities for the experiment harness.

/// Summary statistics of a set of non-negative errors/residuals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualStats {
    /// Number of samples.
    pub n: usize,
    /// Mean error.
    pub mean: f64,
    /// Maximum error.
    pub max: f64,
    /// Minimum error.
    pub min: f64,
    /// Root-mean-square error.
    pub rms: f64,
}

impl ResidualStats {
    /// Computes statistics over a slice of values.
    ///
    /// Returns a zeroed struct for an empty slice.
    pub fn from_slice(values: &[f64]) -> ResidualStats {
        if values.is_empty() {
            return ResidualStats {
                n: 0,
                mean: 0.0,
                max: 0.0,
                min: 0.0,
                rms: 0.0,
            };
        }
        let n = values.len();
        let sum: f64 = values.iter().sum();
        let sum_sq: f64 = values.iter().map(|v| v * v).sum();
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        ResidualStats {
            n,
            mean: sum / n as f64,
            max,
            min,
            rms: (sum_sq / n as f64).sqrt(),
        }
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the values using linear
/// interpolation between order statistics. Used for the CDF figures
/// (Fig 3, Fig 16).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical CDF evaluated at the given thresholds: fraction of `values`
/// `≤ t` for each `t`.
pub fn ecdf_at(values: &[f64], thresholds: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    thresholds
        .iter()
        .map(|t| {
            let cnt = sorted.partition_point(|v| v <= t);
            cnt as f64 / sorted.len().max(1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = ResidualStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.min, 1.0);
        assert!((s.rms - (30.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = ResidualStats::from_slice(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert!((quantile(&v, 0.25) - 2.0).abs() < 1e-12);
        // Interpolated.
        assert!((quantile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn ecdf_values() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let cdf = ecdf_at(&v, &[0.5, 1.0, 2.5, 4.0, 9.0]);
        assert_eq!(cdf, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
    }

    /// Regression for the `partial_cmp().unwrap()` sweep: a NaN in the
    /// sample must not panic the sort. `total_cmp` places NaN above every
    /// real value, so low quantiles and finite thresholds are unaffected.
    #[test]
    fn nan_samples_do_not_panic() {
        let v = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert!((quantile(&v, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!(quantile(&v, 1.0).is_nan());
        let cdf = ecdf_at(&v, &[1.5, 3.5]);
        assert_eq!(cdf, vec![0.25, 0.75]);
    }
}
