//! Property-based tests for the headset/tracking/motion substrate.

use cyclops_geom::pose::Pose;
use cyclops_geom::vec3::Vec3;
use cyclops_vrh::headset::{Headset, HeadsetConfig, SpatialDistortion};
use cyclops_vrh::motion::{LinearRail, Motion, RotationStage};
use cyclops_vrh::speeds::{angular_speeds, linear_speeds};
use cyclops_vrh::traces::{HeadTrace, TraceGenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Generated traces always carry unit quaternions and uniform timing.
    #[test]
    fn traces_are_well_formed(seed in 0u64..500) {
        let cfg = TraceGenConfig { duration_s: 2.0, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        for (i, s) in tr.samples.iter().enumerate() {
            prop_assert!((s.quat.norm() - 1.0).abs() < 1e-9);
            prop_assert!((s.t_ms - i as f64 * 10.0).abs() < 1e-9);
        }
    }

    /// Speeds extracted from any generated trace are finite and non-negative.
    #[test]
    fn speeds_are_sane(seed in 0u64..200) {
        let cfg = TraceGenConfig { duration_s: 1.5, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        for v in linear_speeds(&tr).into_iter().chain(angular_speeds(&tr)) {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    /// Trace pose interpolation stays between its bracketing samples.
    #[test]
    fn interpolation_is_bounded(seed in 0u64..100, t in 0.0..1.99f64) {
        let cfg = TraceGenConfig { duration_s: 2.0, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        let p = tr.pose_at(t);
        let i = (t * 100.0).floor() as usize;
        let a = &tr.samples[i.min(tr.len() - 1)];
        let b = &tr.samples[(i + 1).min(tr.len() - 1)];
        // Position within the segment's bounding box (with slack for lerp).
        let lo = a.pos.min(b.pos);
        let hi = a.pos.max(b.pos);
        prop_assert!(p.trans.x >= lo.x - 1e-9 && p.trans.x <= hi.x + 1e-9);
        prop_assert!(p.trans.y >= lo.y - 1e-9 && p.trans.y <= hi.y + 1e-9);
        prop_assert!(p.trans.z >= lo.z - 1e-9 && p.trans.z <= hi.z + 1e-9);
    }

    /// CSV round-trips preserve any generated trace.
    #[test]
    fn csv_roundtrip(seed in 0u64..100) {
        let cfg = TraceGenConfig { duration_s: 0.4, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        let back = HeadTrace::from_csv(&tr.to_csv()).unwrap();
        prop_assert_eq!(tr.len(), back.len());
        for (a, b) in tr.samples.iter().zip(&back.samples) {
            prop_assert!((a.pos - b.pos).norm() < 1e-9);
            prop_assert!(a.quat.angle_to(&b.quat) < 1e-6);
        }
    }

    /// The reported pose is always a rigid transform, whatever the hidden
    /// frames and distortion.
    #[test]
    fn reported_pose_is_rigid(seed in 0u64..300, x in -0.5..0.5f64,
                              y in -0.5..0.5f64, z in 1.0..2.5f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Headset::new(HeadsetConfig::random(&mut rng));
        h.world_pose = Pose::translation(Vec3::new(x, y, z));
        prop_assert!(h.true_reported_pose().is_rigid(1e-9));
    }

    /// The distortion field is bounded by a small multiple of its amplitude
    /// within the tracked volume.
    #[test]
    fn distortion_is_bounded(seed in 0u64..200, x in -0.3..0.3f64,
                             y in -0.3..0.3f64, z in 1.45..2.05f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = SpatialDistortion::random(&mut rng, Vec3::new(0.0, 0.0, 1.75), 10e-3);
        let disp = d.displacement(Vec3::new(x, y, z)).norm();
        prop_assert!(disp < 6.0 * 10e-3, "displacement {disp}");
    }

    /// Rail and stage motions produce rigid poses with the commanded
    /// geometry for all times.
    #[test]
    fn rig_motions_are_rigid(t in 0.0..60.0f64) {
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        let p = rail.pose_at(t);
        prop_assert!(p.is_rigid(1e-9));
        prop_assert!(p.trans.x.abs() <= 0.2 + 1e-9);

        let mut stage = RotationStage::paper_protocol(base, Vec3::Y);
        let q = stage.pose_at(t);
        prop_assert!(q.is_rigid(1e-9));
        prop_assert!((q.trans - base.trans).norm() < 1e-12);
    }
}
