//! Small shared randomness helpers.

use rand::Rng;

/// One standard-normal draw via Box–Muller (keeps the workspace's `rand`
/// usage to the core API; every crate that needs Gaussian noise shares this
/// one implementation).
pub fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gauss_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = gauss(&mut rng);
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
