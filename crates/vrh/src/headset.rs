//! The headset as a rigid body, with the two hidden unknowns of §3.
//!
//! The RX assembly (collimator + galvo + VRH) is rigid; its world pose is the
//! simulation's ground truth. What the tracking system *reports*, however, is
//! the pose of an unknown internal point `X`, expressed in an unknown
//! coordinate frame (VR-space). Formally, with `W` the world pose of the
//! headset body:
//!
//! ```text
//! reported pose = T_vr ∘ W ∘ X_off
//! ```
//!
//! where `T_vr` (world → VR-space) and `X_off` (body → tracked-point frame)
//! are both hidden from the learner. The §4.2 mapping stage implicitly
//! absorbs both into its 12 learned parameters.

use cyclops_geom::pose::Pose;
use cyclops_geom::rotation::from_rotation_vector;
use cyclops_geom::vec3::{v3, Vec3};
use rand::Rng;

/// A smooth spatial warp of the tracker's reported positions.
///
/// Inside-out trackers (the Rift S's camera SLAM) are locally precise but
/// have millimetre-to-centimetre *absolute* distortion across a room: the
/// reported coordinate field is a smooth warp of reality. A rigid §4.2
/// mapping cannot absorb a warp, so this is the error floor behind the
/// paper's combined-stage numbers (Table 2's 4.54 mm RX average) and its
/// residual-error constants in the §5.4 simulation.
#[derive(Debug, Clone, Copy)]
pub struct SpatialDistortion {
    /// Centre of the tracked volume (metres, world frame).
    pub center: Vec3,
    /// Length scale of the warp (metres).
    pub scale: f64,
    /// Linear warp coefficients (3×3, row-major, dimensionless).
    pub linear: [f64; 9],
    /// Quadratic warp coefficients: for each output axis, coefficients of
    /// `x², y², z²` (dimensionless).
    pub quad: [f64; 9],
    /// Peak amplitude scaling (metres).
    pub amplitude: f64,
}

impl SpatialDistortion {
    /// No distortion.
    pub fn none() -> SpatialDistortion {
        SpatialDistortion {
            center: Vec3::ZERO,
            scale: 1.0,
            linear: [0.0; 9],
            quad: [0.0; 9],
            amplitude: 0.0,
        }
    }

    /// A random warp with the given peak amplitude over the tracked volume.
    pub fn random<R: Rng>(rng: &mut R, center: Vec3, amplitude: f64) -> SpatialDistortion {
        let mut linear = [0.0; 9];
        let mut quad = [0.0; 9];
        for v in linear.iter_mut().chain(quad.iter_mut()) {
            *v = rng.gen_range(-1.0..1.0);
        }
        SpatialDistortion {
            center,
            scale: 0.3,
            linear,
            quad,
            amplitude,
        }
    }

    /// The warp displacement at a world position.
    pub fn displacement(&self, p: Vec3) -> Vec3 {
        if self.amplitude == 0.0 {
            return Vec3::ZERO;
        }
        let u = (p - self.center) / self.scale;
        let mut out = [0.0f64; 3];
        for (k, o) in out.iter_mut().enumerate() {
            let l = &self.linear[3 * k..3 * k + 3];
            let q = &self.quad[3 * k..3 * k + 3];
            *o = l[0] * u.x
                + l[1] * u.y
                + l[2] * u.z
                + q[0] * u.x * u.x
                + q[1] * u.y * u.y
                + q[2] * u.z * u.z;
        }
        // The random coefficients give |D| of order 1–2 at |u| ≈ 1; the 0.4
        // factor normalizes so `amplitude` is a typical in-volume peak.
        v3(out[0], out[1], out[2]) * (0.4 * self.amplitude)
    }
}

/// Hidden configuration of the headset's tracking frames.
#[derive(Debug, Clone, Copy)]
pub struct HeadsetConfig {
    /// World → VR-space transform (hidden).
    pub vr_from_world: Pose,
    /// Body frame → tracked-point frame (hidden): where inside the headset
    /// the reported point `X` actually sits.
    pub x_offset: Pose,
    /// Room-scale tracking distortion (hidden).
    pub distortion: SpatialDistortion,
}

impl HeadsetConfig {
    /// An identity configuration (useful for white-box unit tests only; real
    /// experiments should use [`HeadsetConfig::random`]).
    pub fn identity() -> HeadsetConfig {
        HeadsetConfig {
            vr_from_world: Pose::IDENTITY,
            x_offset: Pose::IDENTITY,
            distortion: SpatialDistortion::none(),
        }
    }

    /// Draws a random hidden configuration: VR-space origin anywhere within
    /// a couple of metres with arbitrary yaw/pitch/roll, and a tracked point
    /// up to ~8 cm from the body origin (the Rift S reports a point near the
    /// IMU, not the geometric centre).
    pub fn random<R: Rng>(rng: &mut R) -> HeadsetConfig {
        let rv = v3(
            rng.gen_range(-0.5..0.5),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-0.5..0.5),
        );
        let t = v3(
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-2.0..2.0),
            rng.gen_range(-1.0..1.0),
        );
        let x_rv = v3(
            rng.gen_range(-0.2..0.2),
            rng.gen_range(-0.2..0.2),
            rng.gen_range(-0.2..0.2),
        );
        let x_t = v3(
            rng.gen_range(-0.08..0.08),
            rng.gen_range(-0.08..0.08),
            rng.gen_range(-0.08..0.08),
        );
        // ~10 mm of room-scale warp, centred on the user zone — the Rift-S
        // class absolute accuracy the paper's combined errors reflect
        // (inside-out SLAM absolute error across a room is mm-to-cm).
        let distortion = SpatialDistortion::random(rng, v3(0.0, 0.0, 1.75), 10.0e-3);
        HeadsetConfig {
            vr_from_world: Pose::new(from_rotation_vector(rv), t),
            x_offset: Pose::new(from_rotation_vector(x_rv), x_t),
            distortion,
        }
    }
}

/// The headset rigid body.
#[derive(Debug, Clone)]
pub struct Headset {
    cfg: HeadsetConfig,
    /// Current true world pose of the headset body frame.
    pub world_pose: Pose,
}

impl Headset {
    /// Creates a headset with the given hidden configuration, at the world
    /// origin.
    pub fn new(cfg: HeadsetConfig) -> Headset {
        Headset {
            cfg,
            world_pose: Pose::IDENTITY,
        }
    }

    /// The hidden configuration — accessible to *experiment setup* code (to
    /// build the world) and to white-box tests, never to the learner.
    pub fn hidden_config(&self) -> &HeadsetConfig {
        &self.cfg
    }

    /// The noiseless VR-space pose the tracking system is trying to report:
    /// `T_vr ∘ warp(world_pose) ∘ X_off`, where `warp` is the hidden
    /// room-scale tracking distortion (positions only).
    pub fn true_reported_pose(&self) -> Pose {
        let warp = self.cfg.distortion.displacement(self.world_pose.trans);
        let warped = Pose::new(self.world_pose.rot, self.world_pose.trans + warp);
        self.cfg
            .vr_from_world
            .compose(&warped)
            .compose(&self.cfg.x_offset)
    }

    /// Maps a point given in the headset body frame to world coordinates —
    /// e.g. the RX-GMA mounted on the assembly.
    pub fn body_to_world(&self, p: Vec3) -> Vec3 {
        self.world_pose.apply_point(p)
    }

    /// Shifts the hidden VR-space by `delta` (applied on the VR side):
    /// simulates a SLAM re-anchoring / re-localization event, after which
    /// every report is expressed in a slightly different frame. Experiment
    /// world-manipulation API (the learner never calls this); the §4
    /// mapping-only re-calibration (`cyclops-core::recalib`) is the designed
    /// response.
    pub fn apply_vr_drift(&mut self, delta: &Pose) {
        self.cfg.vr_from_world = delta.compose(&self.cfg.vr_from_world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::rotation::axis_angle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_config_reports_world_pose() {
        let mut h = Headset::new(HeadsetConfig::identity());
        let pose = Pose::new(axis_angle(Vec3::Y, 0.3), v3(1.0, 2.0, 3.0));
        h.world_pose = pose;
        let rep = h.true_reported_pose();
        assert!(rep.rot.max_abs_diff(&pose.rot) < 1e-12);
        assert!((rep.trans - pose.trans).norm() < 1e-12);
    }

    #[test]
    fn hidden_frames_change_report_but_not_rigidity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut h = Headset::new(HeadsetConfig::random(&mut rng));
        h.world_pose = Pose::new(axis_angle(Vec3::X, -0.2), v3(0.5, 1.5, 0.1));
        let rep = h.true_reported_pose();
        assert!(rep.is_rigid(1e-9));
        // With random hidden frames the report differs from the world pose.
        assert!((rep.trans - h.world_pose.trans).norm() > 1e-3);
    }

    #[test]
    fn report_moves_rigidly_with_the_body() {
        // Moving the body by a world-frame motion M changes the report by
        // the conjugated motion — and in particular preserves *relative*
        // distances up to the room-scale tracking distortion, which is what
        // the mapping stage relies on (and what bounds its accuracy).
        let mut rng = StdRng::seed_from_u64(5);
        let mut cfg = HeadsetConfig::random(&mut rng);
        cfg.distortion = SpatialDistortion::none();
        let mut h = Headset::new(cfg);
        let p1 = Pose::new(axis_angle(Vec3::Z, 0.1), v3(0.0, 0.0, 0.0));
        let p2 = Pose::new(axis_angle(Vec3::Z, 0.1), v3(0.3, 0.0, 0.0));
        h.world_pose = p1;
        let r1 = h.true_reported_pose();
        h.world_pose = p2;
        let r2 = h.true_reported_pose();
        // Pure translation of the body translates the reported point by the
        // same distance (rigid maps are isometries).
        assert!(((r2.trans - r1.trans).norm() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn distortion_bends_reported_distances() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = HeadsetConfig::random(&mut rng);
        assert!(cfg.distortion.amplitude > 0.0);
        let mut h = Headset::new(cfg);
        h.world_pose = Pose::translation(v3(0.0, 0.0, 1.75));
        let r1 = h.true_reported_pose();
        h.world_pose = Pose::translation(v3(0.3, 0.0, 1.75));
        let r2 = h.true_reported_pose();
        let err = ((r2.trans - r1.trans).norm() - 0.3).abs();
        // Millimetre-scale non-rigidity across 30 cm — the tracker's
        // room-scale absolute error.
        assert!(err > 1e-5, "distortion should bend distances: {err}");
        assert!(err < 8e-3, "but only at the mm scale: {err}");
    }

    #[test]
    fn distortion_field_is_smooth_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = SpatialDistortion::random(&mut rng, v3(0.0, 0.0, 1.75), 3e-3);
        let mut max_disp: f64 = 0.0;
        for k in 0..200 {
            let p = v3(
                -0.25 + 0.0025 * k as f64,
                0.1 - 0.001 * k as f64,
                1.5 + 0.0025 * k as f64,
            );
            let disp = d.displacement(p).norm();
            max_disp = max_disp.max(disp);
            // Smooth: neighbouring points displace nearly identically.
            let disp2 = d.displacement(p + v3(1e-4, 0.0, 0.0));
            assert!((d.displacement(p) - disp2).norm() < 1e-5);
        }
        assert!(max_disp > 0.5e-3, "field should reach mm scale: {max_disp}");
        assert!(max_disp < 12e-3, "field stays cm-bounded: {max_disp}");
    }

    #[test]
    fn body_to_world_follows_pose() {
        let mut h = Headset::new(HeadsetConfig::identity());
        h.world_pose = Pose::new(
            axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2),
            v3(1.0, 0.0, 0.0),
        );
        let p = h.body_to_world(v3(1.0, 0.0, 0.0));
        assert!((p - v3(1.0, 1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn random_configs_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let ca = HeadsetConfig::random(&mut a);
        let cb = HeadsetConfig::random(&mut b);
        assert!((ca.vr_from_world.trans - cb.vr_from_world.trans).norm() > 1e-6);
    }
}
