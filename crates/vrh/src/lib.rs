//! # cyclops-vrh
//!
//! The VR-headset substrate: everything the Oculus Rift S contributed to the
//! paper's prototype, simulated.
//!
//! * [`headset`] — the headset as a rigid body with two **hidden** facts the
//!   paper's §3 emphasises: the tracked point `X` is "some unknown point
//!   within \[the] VRH", and poses are reported "in an unknown coordinate
//!   space (VR-space)". The learning pipeline never sees either; the
//!   simulation holds them as ground truth.
//! * [`tracking`] — the VRH-T simulator: reports every 12–13 ms (0.7 % of
//!   the time 14–15 ms, §5.2), with the stationary noise the paper measured
//!   (≤1.79 mm location, ≤0.41 mrad orientation over 30 minutes).
//! * [`imu`] — a strapdown-IMU + camera-correction model, the mechanism
//!   behind VRH-T's noise; [`tracking::TrackerConfig::from_imu`] derives a
//!   tracker configuration from it (and a test pins it to the aggregate
//!   §5.2 numbers).
//! * [`motion`] — the §5.3 test rigs as motion models: linear rail strokes,
//!   rotation-stage sweeps, and free hand-held (Ornstein–Uhlenbeck) motion.
//! * [`traces`] — 360°-video viewing head-motion traces: a synthetic
//!   generator calibrated to the speed CDFs of Fig 3 (the public dataset
//!   \[47\] is substituted per DESIGN.md), plus a CSV codec so real traces can
//!   be dropped in.
//! * [`speeds`] — linear/angular speed extraction used by Fig 3 and the
//!   throughput experiments.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod headset;
pub mod imu;
pub mod motion;
pub mod rand_util;
pub mod speeds;
pub mod traces;
pub mod tracking;

pub use headset::{Headset, HeadsetConfig};
pub use motion::{ArbitraryMotion, LinearRail, Motion, RotationStage, StaticPose, TracePlayback};
pub use traces::{HeadTrace, TraceGenConfig, TraceSample};
pub use tracking::{TrackerConfig, TrackingReport, VrhTracker};
