//! The VRH tracking system (VRH-T) simulator.
//!
//! §5.2 measurements this module reproduces:
//!
//! * update period: "every 12–13 ms except 0.7 % of times at 14–15 ms";
//! * stationary noise: "over a 30 minute period, even with \[the] VRH
//!   completely stationary, the reported location and orientation varied by
//!   up to 1.79 mm and 0.41 mrad" — modelled as Gaussian jitter whose ±3σ
//!   band matches those peak-to-peak excursions;
//! * optionally, a slow random-walk drift between camera relocalizations
//!   (§4: "in case of ... VRH-T drift, the only re-training that needs to be
//!   re-done is the mapping step").
//!
//! The tracker wraps a [`Headset`] and emits [`TrackingReport`]s in VR-space.

use crate::headset::Headset;
use crate::rand_util::gauss;
use cyclops_geom::pose::Pose;
use cyclops_geom::quat::Quat;
use cyclops_geom::vec3::{v3, Vec3};
use rand::Rng;

/// Timing and noise configuration of the tracking simulator.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Lower bound of the normal update period (seconds).
    pub period_min_s: f64,
    /// Upper bound of the normal update period (seconds).
    pub period_max_s: f64,
    /// Probability of a late report (14–15 ms band).
    pub late_prob: f64,
    /// Lower/upper bounds of the late period (seconds).
    pub late_min_s: f64,
    /// See [`TrackerConfig::late_min_s`].
    pub late_max_s: f64,
    /// Std-dev of positional jitter per axis (metres).
    pub pos_noise_sigma: f64,
    /// Std-dev of orientation jitter per axis (radians).
    pub ang_noise_sigma: f64,
    /// Std-dev of the positional random-walk drift per √second (m/√s);
    /// zero disables drift.
    pub drift_sigma_per_sqrt_s: f64,
    /// Extra latency from the RF control channel carrying the report to the
    /// TX (§5.2: "< 1 ms").
    pub control_channel_latency_s: f64,
    /// Probability a report is lost in the control channel (the paper's
    /// "macro-cellular" side channel is not lossless); the TP simply acts on
    /// the next report ~12.5 ms later.
    pub report_loss_prob: f64,
}

impl Default for TrackerConfig {
    /// Oculus Rift S values from §5.2, scaled so the extreme excursions of
    /// a ~30-minute stationary run (~140k samples, whose expected
    /// peak-to-peak is ≈9σ) match the measured 1.79 mm / 0.41 mrad.
    fn default() -> Self {
        TrackerConfig {
            period_min_s: 0.012,
            period_max_s: 0.013,
            late_prob: 0.007,
            late_min_s: 0.014,
            late_max_s: 0.015,
            pos_noise_sigma: 1.79e-3 / 9.0,
            ang_noise_sigma: 0.41e-3 / 6.0,
            drift_sigma_per_sqrt_s: 0.0,
            control_channel_latency_s: 0.5e-3,
            report_loss_prob: 0.0,
        }
    }
}

impl TrackerConfig {
    /// A hypothetical high-rate tracker for the §5.2 ablation: "a custom
    /// VRH-T with much higher tracking frequency will improve Cyclops's
    /// performance significantly". `factor` divides the update period.
    pub fn high_rate(factor: f64) -> TrackerConfig {
        let base = TrackerConfig::default();
        TrackerConfig {
            period_min_s: base.period_min_s / factor,
            period_max_s: base.period_max_s / factor,
            late_min_s: base.late_min_s / factor,
            late_max_s: base.late_max_s / factor,
            ..base
        }
    }

    /// Draws one report period from the timing distribution (the 12–13 ms
    /// band with the 0.7 % late tail).
    pub fn draw_period<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.late_prob > 0.0 && rng.gen_bool(self.late_prob) {
            rng.gen_range(self.late_min_s..=self.late_max_s)
        } else {
            rng.gen_range(self.period_min_s..=self.period_max_s)
        }
    }

    /// Derives the positional noise from a physical IMU + camera-correction
    /// model ([`crate::imu`]): simulates the dead-reckoning error process at
    /// this tracker's report period and sets `pos_noise_sigma` to the
    /// per-axis RMS of the bounded sawtooth it produces. Links the aggregate
    /// noise model used everywhere to the mechanism behind it.
    pub fn from_imu<R: rand::Rng>(imu: crate::imu::ImuConfig, rng: &mut R) -> TrackerConfig {
        let base = TrackerConfig::default();
        let period = (base.period_min_s + base.period_max_s) / 2.0;
        let mut tracker = crate::imu::ImuTracker::new(imu, rng);
        let mut sum2 = 0.0;
        const N: usize = 4000;
        for _ in 0..N {
            let e = tracker.step(period, rng);
            sum2 += e.norm_sq() / 3.0; // per-axis variance
        }
        TrackerConfig {
            pos_noise_sigma: (sum2 / N as f64).sqrt(),
            ..base
        }
    }

    /// A noiseless, perfectly periodic tracker for white-box tests.
    pub fn ideal(period_s: f64) -> TrackerConfig {
        TrackerConfig {
            period_min_s: period_s,
            period_max_s: period_s,
            late_prob: 0.0,
            late_min_s: period_s,
            late_max_s: period_s,
            pos_noise_sigma: 0.0,
            ang_noise_sigma: 0.0,
            drift_sigma_per_sqrt_s: 0.0,
            control_channel_latency_s: 0.0,
            report_loss_prob: 0.0,
        }
    }
}

/// One pose report from the headset tracking system.
#[derive(Debug, Clone, Copy)]
pub struct TrackingReport {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Time the pose was sampled (seconds).
    pub t_sample: f64,
    /// Time the report becomes available at the TX controller (sample time +
    /// control-channel latency).
    pub t_available: f64,
    /// Reported pose of the tracked point, in VR-space, including noise.
    pub pose: Pose,
}

/// The VRH-T simulator. Drive it with [`VrhTracker::next_report_time`] /
/// [`VrhTracker::sample`].
#[derive(Debug, Clone)]
pub struct VrhTracker {
    /// Configuration in effect.
    pub cfg: TrackerConfig,
    seq: u64,
    next_t: f64,
    last_t: f64,
    drift: Vec3,
}

impl VrhTracker {
    /// Creates a tracker that will emit its first report at `t = 0`.
    pub fn new(cfg: TrackerConfig) -> VrhTracker {
        VrhTracker {
            cfg,
            seq: 0,
            next_t: 0.0,
            last_t: 0.0,
            drift: Vec3::ZERO,
        }
    }

    /// The time of the next report.
    pub fn next_report_time(&self) -> f64 {
        self.next_t
    }

    /// Samples the headset at the scheduled report time, advancing the
    /// schedule. The caller is responsible for having set
    /// `headset.world_pose` to the true pose at `self.next_report_time()`.
    pub fn sample<R: Rng>(&mut self, headset: &Headset, rng: &mut R) -> TrackingReport {
        let t = self.next_t;
        let dt = (t - self.last_t).max(0.0);
        self.last_t = t;

        // Random-walk drift accumulates in VR-space.
        if self.cfg.drift_sigma_per_sqrt_s > 0.0 && dt > 0.0 {
            let s = self.cfg.drift_sigma_per_sqrt_s * dt.sqrt();
            self.drift += v3(gauss(rng) * s, gauss(rng) * s, gauss(rng) * s);
        }

        let clean = headset.true_reported_pose();
        let jitter_t = v3(
            gauss(rng) * self.cfg.pos_noise_sigma,
            gauss(rng) * self.cfg.pos_noise_sigma,
            gauss(rng) * self.cfg.pos_noise_sigma,
        );
        let jitter_rv = v3(
            gauss(rng) * self.cfg.ang_noise_sigma,
            gauss(rng) * self.cfg.ang_noise_sigma,
            gauss(rng) * self.cfg.ang_noise_sigma,
        );
        let noisy = Pose::from_quat(
            Quat::from_rotation_vector(jitter_rv) * clean.quat(),
            clean.trans + jitter_t + self.drift,
        );

        // Schedule the next report.
        self.next_t = t + self.cfg.draw_period(rng);

        let rep = TrackingReport {
            seq: self.seq,
            t_sample: t,
            t_available: t + self.cfg.control_channel_latency_s,
            pose: noisy,
        };
        self.seq += 1;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headset::{Headset, HeadsetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_reports(cfg: TrackerConfig, n: usize, seed: u64) -> Vec<TrackingReport> {
        let headset = Headset::new(HeadsetConfig::identity());
        let mut tracker = VrhTracker::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| tracker.sample(&headset, &mut rng)).collect()
    }

    #[test]
    fn periods_match_paper_distribution() {
        let reps = run_reports(TrackerConfig::default(), 20_000, 3);
        let mut late = 0usize;
        for w in reps.windows(2) {
            let dt = w[1].t_sample - w[0].t_sample;
            assert!((0.0119..=0.0151).contains(&dt), "period {dt}");
            if dt >= 0.0139 {
                late += 1;
            }
        }
        let frac = late as f64 / (reps.len() - 1) as f64;
        assert!(
            (0.004..0.011).contains(&frac),
            "late fraction {frac} (paper: 0.7 %)"
        );
    }

    #[test]
    fn stationary_noise_magnitude_matches_paper() {
        // Stationary headset: peak-to-peak position ≈ 1.79 mm, orientation
        // ≈ 0.41 mrad (±25 % slack for finite samples).
        let reps = run_reports(TrackerConfig::default(), 140_000, 7); // ≈ 30 min
        let ref_pose = Headset::new(HeadsetConfig::identity()).true_reported_pose();
        let mut max_pos: f64 = 0.0;
        let mut min_pos: f64 = 0.0;
        let mut max_ang: f64 = 0.0;
        for r in &reps {
            let dx = r.pose.trans.x - ref_pose.trans.x;
            max_pos = max_pos.max(dx);
            min_pos = min_pos.min(dx);
            max_ang = max_ang.max(ref_pose.quat().angle_to(&r.pose.quat()));
        }
        let p2p_mm = (max_pos - min_pos) * 1e3;
        assert!((1.2..2.6).contains(&p2p_mm), "p2p position {p2p_mm} mm");
        let ang_mrad = max_ang * 1e3;
        assert!(
            (0.2..0.75).contains(&ang_mrad),
            "max angle dev {ang_mrad} mrad"
        );
    }

    #[test]
    fn reports_are_sequenced_and_latency_applied() {
        let reps = run_reports(TrackerConfig::default(), 10, 1);
        for (i, r) in reps.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert!((r.t_available - r.t_sample - 0.5e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn ideal_tracker_is_exact() {
        let reps = run_reports(TrackerConfig::ideal(0.01), 100, 9);
        let truth = Headset::new(HeadsetConfig::identity()).true_reported_pose();
        for (i, r) in reps.iter().enumerate() {
            assert!((r.t_sample - i as f64 * 0.01).abs() < 1e-9);
            assert!((r.pose.trans - truth.trans).norm() < 1e-15);
        }
    }

    #[test]
    fn high_rate_tracker_reports_faster() {
        let fast = run_reports(TrackerConfig::high_rate(4.0), 100, 2);
        let dt = fast[99].t_sample / 99.0;
        assert!((0.0028..0.0035).contains(&dt), "mean period {dt}");
    }

    #[test]
    fn imu_derived_config_matches_aggregate_band() {
        // The default aggregate noise (from §5.2's measured 1.79 mm
        // peak-to-peak) and the physical IMU+camera model must land in the
        // same band — the consistency check that justifies the aggregate.
        let mut rng = StdRng::seed_from_u64(99);
        let derived = TrackerConfig::from_imu(crate::imu::ImuConfig::default(), &mut rng);
        let aggregate = TrackerConfig::default().pos_noise_sigma;
        assert!(
            derived.pos_noise_sigma > aggregate / 5.0 && derived.pos_noise_sigma < aggregate * 5.0,
            "IMU-derived σ {} vs aggregate σ {}",
            derived.pos_noise_sigma,
            aggregate
        );
    }

    #[test]
    fn drift_accumulates_when_enabled() {
        let cfg = TrackerConfig {
            drift_sigma_per_sqrt_s: 1e-3,
            pos_noise_sigma: 0.0,
            ang_noise_sigma: 0.0,
            ..Default::default()
        };
        let reps = run_reports(cfg, 50_000, 4);
        let first = reps.first().unwrap().pose.trans;
        let last = reps.last().unwrap().pose.trans;
        // Over ~10 min of 1 mm/√s random walk the position should wander
        // several cm (probability of staying within 2 mm is negligible).
        let drift = (last - first).norm();
        assert!(drift > 2e-3, "drift {drift}");
    }
}
