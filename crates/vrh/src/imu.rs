//! Strapdown IMU with camera correction — the mechanism inside VRH-T.
//!
//! §3: "VRH-T uses an inertial motion unit (IMU) to compute the position. To
//! compensate for error over time, VRH-T also utilizes independent cameras to
//! localize and reduce the overall error." This module models that loop at
//! the level relevant to Cyclops: dead-reckoned position accumulates
//! bias-driven error quadratically; each camera fix snaps the estimate back
//! towards truth, leaving the bounded sawtooth jitter the paper measured.
//!
//! The top-level [`crate::tracking::VrhTracker`] uses an *aggregate* noise
//! model (that is all the TP pipeline can observe anyway); this module exists
//! to (a) validate that the aggregate magnitudes are consistent with an
//! IMU+camera mechanism, and (b) support the tracking-frequency ablation with
//! a physically-grounded error/rate trade-off.

use crate::rand_util::gauss;
use cyclops_geom::vec3::{v3, Vec3};
use rand::Rng;

/// IMU error parameters (consumer-grade MEMS, Rift-S class).
#[derive(Debug, Clone, Copy)]
pub struct ImuConfig {
    /// Accelerometer bias instability (m/s²).
    pub accel_bias: f64,
    /// Accelerometer white noise density (m/s²/√Hz).
    pub accel_noise_density: f64,
    /// IMU sample rate (Hz).
    pub sample_rate_hz: f64,
    /// Camera correction rate (Hz).
    pub camera_rate_hz: f64,
    /// Residual error of a camera fix (metres, 1σ per axis).
    pub camera_residual_sigma: f64,
}

impl Default for ImuConfig {
    fn default() -> Self {
        ImuConfig {
            accel_bias: 0.02,
            accel_noise_density: 2e-3,
            sample_rate_hz: 1000.0,
            camera_rate_hz: 30.0,
            camera_residual_sigma: 0.25e-3,
        }
    }
}

/// Dead-reckoning position error simulator.
#[derive(Debug, Clone)]
pub struct ImuTracker {
    cfg: ImuConfig,
    /// Current position-estimate error (estimate − truth).
    pub error: Vec3,
    vel_error: Vec3,
    bias: Vec3,
    t_since_fix: f64,
}

impl ImuTracker {
    /// Creates the tracker with a random constant accelerometer bias.
    pub fn new<R: Rng>(cfg: ImuConfig, rng: &mut R) -> ImuTracker {
        let b = cfg.accel_bias;
        ImuTracker {
            cfg,
            error: Vec3::ZERO,
            vel_error: Vec3::ZERO,
            bias: v3(
                rng.gen_range(-b..b),
                rng.gen_range(-b..b),
                rng.gen_range(-b..b),
            ),
            t_since_fix: 0.0,
        }
    }

    /// Advances the dead-reckoning error by `dt` seconds, applying camera
    /// fixes as they fall due. Returns the current position error.
    pub fn step<R: Rng>(&mut self, dt: f64, rng: &mut R) -> Vec3 {
        let n_steps = ((dt * self.cfg.sample_rate_hz).round() as usize).max(1);
        let h = dt / n_steps as f64;
        let noise_sigma = self.cfg.accel_noise_density * self.cfg.sample_rate_hz.sqrt();
        for _ in 0..n_steps {
            let accel_err = self.bias
                + v3(
                    gauss(rng) * noise_sigma,
                    gauss(rng) * noise_sigma,
                    gauss(rng) * noise_sigma,
                );
            self.vel_error += accel_err * h;
            self.error += self.vel_error * h;
            self.t_since_fix += h;
            if self.t_since_fix >= 1.0 / self.cfg.camera_rate_hz {
                self.t_since_fix = 0.0;
                // Camera fix: collapse the error to the fix residual.
                let s = self.cfg.camera_residual_sigma;
                self.error = v3(gauss(rng) * s, gauss(rng) * s, gauss(rng) * s);
                self.vel_error = Vec3::ZERO;
            }
        }
        self.error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn error_stays_bounded_with_camera_fixes() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut imu = ImuTracker::new(ImuConfig::default(), &mut rng);
        let mut max_err: f64 = 0.0;
        for _ in 0..3000 {
            let e = imu.step(0.0125, &mut rng);
            max_err = max_err.max(e.norm());
        }
        // Bounded to the same order the paper measured for VRH-T (≤ ~2 mm).
        assert!(max_err < 4e-3, "max error {max_err} m");
        assert!(max_err > 1e-5, "error should not be zero");
    }

    #[test]
    fn error_diverges_without_camera() {
        let cfg = ImuConfig {
            camera_rate_hz: 1e-9, // effectively never
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(22);
        let mut imu = ImuTracker::new(cfg, &mut rng);
        let mut e_1s = 0.0;
        let mut e_4s = 0.0;
        for i in 0..320 {
            let e = imu.step(0.0125, &mut rng).norm();
            if i == 79 {
                e_1s = e;
            }
            if i == 319 {
                e_4s = e;
            }
        }
        // Quadratic-ish growth: 4× time → ≫ 4× error.
        assert!(e_4s > 4.0 * e_1s, "1 s: {e_1s}, 4 s: {e_4s}");
    }

    #[test]
    fn faster_camera_means_smaller_error() {
        let mut worst = Vec::new();
        for rate in [10.0, 60.0] {
            let cfg = ImuConfig {
                camera_rate_hz: rate,
                camera_residual_sigma: 0.0,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(33);
            let mut imu = ImuTracker::new(cfg, &mut rng);
            let mut m: f64 = 0.0;
            for _ in 0..2000 {
                m = m.max(imu.step(0.0125, &mut rng).norm());
            }
            worst.push(m);
        }
        assert!(
            worst[1] < worst[0],
            "60 Hz {} vs 10 Hz {}",
            worst[1],
            worst[0]
        );
    }
}
