//! 360°-video viewing head-motion traces.
//!
//! §5.4 evaluates Cyclops over "the publicly available dataset ... collected
//! from 50 viewers watching 1-min segments from 10 360° videos" \[47\]: 500
//! one-minute traces of head location and orientation sampled every 10 ms.
//! That dataset is not redistributable here, so this module provides:
//!
//! * a **synthetic generator** ([`HeadTrace::generate`]) calibrated to the
//!   speed envelope the paper reports (Fig 3: at most ~19 deg/s angular and
//!   ~14 cm/s linear during *normal* use, with heavier tails — quick
//!   reorientation "saccades" — that produce the small outage fraction of
//!   Fig 16). Per-viewer style parameters vary across traces, giving the
//!   spread of per-trace availability (95 %–99.98 %) the paper observes;
//! * a **CSV codec** ([`HeadTrace::to_csv`] / [`HeadTrace::from_csv`]) with
//!   the natural `t_ms,x,y,z,qw,qx,qy,qz` layout, so the real dataset can be
//!   dropped in unchanged.

use cyclops_geom::pose::Pose;
use cyclops_geom::quat::Quat;
use cyclops_geom::units::deg_to_rad;
use cyclops_geom::vec3::{v3, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One trace sample: timestamp plus the head pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Time in milliseconds from trace start.
    pub t_ms: f64,
    /// Head position (metres).
    pub pos: Vec3,
    /// Head orientation.
    pub quat: Quat,
}

/// Motion rates over one consecutive sample pair: the paper's §5.4 drift
/// rates `d(r,r′)/t(r′,r)`, lateral (m/ms) and angular (rad/ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionRate {
    /// Lateral speed over the pair (metres per millisecond).
    pub lat_per_ms: f64,
    /// Angular speed over the pair (radians per millisecond).
    pub ang_per_ms: f64,
    /// Arrival time of the pair's later sample (`samples[i + 1].t_ms`) —
    /// the report that publishes these rates. Duplicated here so slot loops
    /// walk one dense 24-byte-stride array instead of gathering from the
    /// 64-byte-stride [`TraceSample`] array.
    pub t_report_ms: f64,
}

/// A recorded (or generated) head-motion trace, uniformly sampled.
#[derive(Debug, Clone)]
pub struct HeadTrace {
    /// Sample period in milliseconds (10 ms for the paper's dataset).
    pub period_ms: f64,
    /// The samples, in time order.
    pub samples: Vec<TraceSample>,
    /// Lazily-computed per-pair motion rates ([`HeadTrace::motion_rates`]).
    /// Derived data only — excluded from equality.
    rates: std::sync::OnceLock<Box<[MotionRate]>>,
}

impl PartialEq for HeadTrace {
    fn eq(&self, other: &Self) -> bool {
        self.period_ms == other.period_ms && self.samples == other.samples
    }
}

/// Generator configuration: one "viewer style" watching one video.
#[derive(Debug, Clone, Copy)]
pub struct TraceGenConfig {
    /// Trace duration (seconds).
    pub duration_s: f64,
    /// Sample period (milliseconds).
    pub period_ms: f64,
    /// RMS yaw rate of calm viewing (rad/s).
    pub yaw_rms: f64,
    /// RMS pitch/roll rate (rad/s).
    pub pitch_rms: f64,
    /// RMS linear sway speed per axis (m/s).
    pub sway_rms: f64,
    /// Rate of quick-reorientation saccades (events per second).
    pub saccade_rate: f64,
    /// Peak angular speed of a saccade (rad/s).
    pub saccade_peak: f64,
    /// Saccade duration (seconds).
    pub saccade_dur: f64,
}

impl Default for TraceGenConfig {
    /// The 360°-video *viewing* profile behind the §5.4 dataset \[47\]:
    /// calm scanning punctuated by quick reorientations whose peaks sit just
    /// above the TP drift budget (~35 deg/s for the 25G link). That
    /// combination yields the paper's Fig 16 signature — ~98.6 % of slots
    /// connected, with the off-slots mostly *scattered* (brief threshold
    /// crossings), not clustered.
    fn default() -> Self {
        TraceGenConfig {
            duration_s: 60.0,
            period_ms: 10.0,
            yaw_rms: deg_to_rad(5.0),
            pitch_rms: deg_to_rad(2.5),
            sway_rms: 0.02,
            saccade_rate: 0.42,
            saccade_peak: deg_to_rad(50.0),
            saccade_dur: 0.30,
        }
    }
}

impl TraceGenConfig {
    /// The *normal-use* profile of Fig 3 (from the authors' earlier study
    /// \[55\]): linear speeds up to ~14 cm/s and angular speeds up to
    /// ~19 deg/s, with no fast reorientation tail.
    pub fn normal_use() -> TraceGenConfig {
        TraceGenConfig {
            yaw_rms: deg_to_rad(3.2),
            pitch_rms: deg_to_rad(1.6),
            sway_rms: 0.026,
            saccade_rate: 0.05,
            saccade_peak: deg_to_rad(11.0),
            saccade_dur: 0.35,
            ..Default::default()
        }
    }

    /// Draws a per-viewer style: calm to restless, matching the spread of
    /// the 50-viewer dataset (per-trace availability 95–99.98 % in Fig 16).
    pub fn random_style<R: Rng>(rng: &mut R) -> TraceGenConfig {
        let restlessness: f64 = rng.gen_range(0.25..2.4);
        TraceGenConfig {
            yaw_rms: deg_to_rad(rng.gen_range(2.5..7.5)) * restlessness.sqrt(),
            pitch_rms: deg_to_rad(rng.gen_range(1.0..3.5)),
            sway_rms: rng.gen_range(0.008..0.040) * restlessness.sqrt(),
            saccade_rate: rng.gen_range(0.18..0.85) * restlessness,
            saccade_peak: deg_to_rad(rng.gen_range(38.0..68.0)),
            saccade_dur: rng.gen_range(0.25..0.40),
            ..Default::default()
        }
    }
}

impl HeadTrace {
    /// Creates a trace from raw samples (must be in time order).
    pub fn new(period_ms: f64, samples: Vec<TraceSample>) -> HeadTrace {
        HeadTrace {
            period_ms,
            samples,
            rates: std::sync::OnceLock::new(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The §5.4 drift rates over each consecutive sample pair (`rates[i]`
    /// covers `samples[i] → samples[i+1]`), computed once per trace and
    /// cached. The values are the *exact* IEEE results of
    /// `(b.pos - a.pos).norm() / dt` and `a.quat.angle_to(&b.quat) / dt`
    /// (dt in ms), so slot loops that consume them instead of recomputing
    /// per report stay bit-identical — while repeated simulations of the
    /// same trace (parameter sweeps, benchmark repetitions) skip the
    /// norm/acos work entirely.
    ///
    /// The samples are treated as immutable from the first call on; code
    /// that edits `samples` in place must build a new trace instead.
    pub fn motion_rates(&self) -> &[MotionRate] {
        self.rates.get_or_init(|| {
            self.samples
                .windows(2)
                .map(|w| {
                    let (a, b) = (&w[0], &w[1]);
                    let dt = b.t_ms - a.t_ms;
                    MotionRate {
                        lat_per_ms: (b.pos - a.pos).norm() / dt,
                        ang_per_ms: a.quat.angle_to(&b.quat) / dt,
                        t_report_ms: b.t_ms,
                    }
                })
                .collect()
        })
    }

    /// True if the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.t_ms * 1e-3)
    }

    /// Pose at an arbitrary time by interpolation (lerp position, slerp
    /// orientation); clamps outside the trace. Time is measured from the
    /// trace's first sample (CSV traces may start at a nonzero timestamp).
    pub fn pose_at(&self, t_s: f64) -> Pose {
        assert!(!self.is_empty());
        let t_ms = t_s * 1e3 + self.samples[0].t_ms;
        let idx = ((t_ms - self.samples[0].t_ms) / self.period_ms).floor();
        let i = (idx.max(0.0) as usize).min(self.samples.len() - 1);
        let j = (i + 1).min(self.samples.len() - 1);
        let a = &self.samples[i];
        let b = &self.samples[j];
        if i == j {
            return Pose::from_quat(a.quat, a.pos);
        }
        let frac = ((t_ms - a.t_ms) / (b.t_ms - a.t_ms)).clamp(0.0, 1.0);
        Pose::from_quat(a.quat.slerp(&b.quat, frac), a.pos.lerp(b.pos, frac))
    }

    /// Generates a synthetic viewing trace with the given style and seed.
    ///
    /// Yaw dominates (scanning the 360° scene); pitch/roll and positional
    /// sway are smaller; Poisson-timed saccades add the heavy angular tail.
    pub fn generate(cfg: &TraceGenConfig, seed: u64) -> HeadTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (cfg.duration_s * 1e3 / cfg.period_ms).round() as usize + 1;
        let dt = cfg.period_ms * 1e-3;
        let tau = 0.8; // velocity relaxation (s)

        let gauss = crate::rand_util::gauss::<StdRng>;

        let mut pos = Vec3::ZERO;
        let mut vel = Vec3::ZERO;
        let mut yaw = rng.gen_range(-1.0..1.0);
        let mut pitch: f64 = 0.0;
        let mut roll: f64 = 0.0;
        let mut yaw_rate = 0.0f64;
        let mut pitch_rate = 0.0f64;
        let mut roll_rate = 0.0f64;
        // Saccade state: remaining time and rate.
        let mut sac_t = 0.0f64;
        let mut sac_rate = 0.0f64;

        let mut samples = Vec::with_capacity(n);
        for k in 0..n {
            let t_ms = k as f64 * cfg.period_ms;
            // OU updates for baseline motion.
            let kick = (2.0 * dt / tau).sqrt();
            yaw_rate += -yaw_rate / tau * dt + cfg.yaw_rms * kick * gauss(&mut rng);
            pitch_rate +=
                (-pitch_rate / tau - pitch * 2.0) * dt + cfg.pitch_rms * kick * gauss(&mut rng);
            roll_rate +=
                (-roll_rate / tau - roll * 4.0) * dt + cfg.pitch_rms * 0.5 * kick * gauss(&mut rng);
            for (v, p) in [
                (&mut vel.x, pos.x),
                (&mut vel.y, pos.y),
                (&mut vel.z, pos.z),
            ] {
                *v += (-*v / tau - p * 3.0) * dt + cfg.sway_rms * kick * gauss(&mut rng);
            }
            // Saccade triggering.
            if sac_t <= 0.0 && rng.gen_bool((cfg.saccade_rate * dt).min(1.0)) {
                sac_t = cfg.saccade_dur;
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sac_rate = sign * cfg.saccade_peak * rng.gen_range(0.5..1.0);
            }
            let sac = if sac_t > 0.0 {
                sac_t -= dt;
                // Half-sine velocity profile.
                let phase = 1.0 - (sac_t / cfg.saccade_dur).clamp(0.0, 1.0);
                sac_rate * (std::f64::consts::PI * phase).sin()
            } else {
                0.0
            };

            yaw += (yaw_rate + sac) * dt;
            pitch += pitch_rate * dt;
            roll += roll_rate * dt;
            pos += vel * dt;

            let q = Quat::from_axis_angle(Vec3::Y, yaw)
                * Quat::from_axis_angle(Vec3::X, pitch)
                * Quat::from_axis_angle(Vec3::Z, roll);
            samples.push(TraceSample {
                t_ms,
                pos,
                quat: q.normalized(),
            });
        }
        HeadTrace::new(cfg.period_ms, samples)
    }

    /// Generates the full 500-trace corpus (50 viewer styles × 10 videos),
    /// mirroring the shape of the dataset in \[47\].
    pub fn generate_corpus(master_seed: u64, n_viewers: usize, n_videos: usize) -> Vec<HeadTrace> {
        let mut rng = StdRng::seed_from_u64(master_seed);
        let mut out = Vec::with_capacity(n_viewers * n_videos);
        for viewer in 0..n_viewers {
            let style = TraceGenConfig::random_style(&mut rng);
            for video in 0..n_videos {
                let seed = master_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((viewer * n_videos + video) as u64);
                out.push(HeadTrace::generate(&style, seed));
            }
        }
        out
    }

    /// Serializes to CSV (`t_ms,x,y,z,qw,qx,qy,qz` with a header line).
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.samples.len() * 64);
        s.push_str("t_ms,x,y,z,qw,qx,qy,qz\n");
        for smp in &self.samples {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                smp.t_ms,
                smp.pos.x,
                smp.pos.y,
                smp.pos.z,
                smp.quat.w,
                smp.quat.x,
                smp.quat.y,
                smp.quat.z
            ));
        }
        s
    }

    /// Parses the CSV produced by [`HeadTrace::to_csv`] (or the real dataset
    /// exported into the same layout).
    pub fn from_csv(csv: &str) -> Result<HeadTrace, String> {
        let mut samples = Vec::new();
        for (ln, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (ln == 0 && line.starts_with("t_ms")) {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(format!(
                    "line {}: expected 8 fields, got {}",
                    ln + 1,
                    fields.len()
                ));
            }
            let mut vals = [0.0f64; 8];
            for (i, f) in fields.iter().enumerate() {
                vals[i] = f
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: field {}: {}", ln + 1, i + 1, e))?;
            }
            samples.push(TraceSample {
                t_ms: vals[0],
                pos: v3(vals[1], vals[2], vals[3]),
                quat: Quat {
                    w: vals[4],
                    x: vals[5],
                    y: vals[6],
                    z: vals[7],
                }
                .normalized(),
            });
        }
        if samples.len() < 2 {
            return Err("trace needs at least two samples".into());
        }
        let period_ms = samples[1].t_ms - samples[0].t_ms;
        if period_ms <= 0.0 {
            return Err("non-increasing timestamps".into());
        }
        Ok(HeadTrace::new(period_ms, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speeds::{angular_speeds, linear_speeds};
    use cyclops_geom::units::rad_to_deg;

    #[test]
    fn generated_trace_has_expected_shape() {
        let tr = HeadTrace::generate(&TraceGenConfig::default(), 42);
        assert_eq!(tr.len(), 6001);
        assert!((tr.duration_s() - 60.0).abs() < 1e-9);
        assert_eq!(tr.period_ms, 10.0);
    }

    #[test]
    fn speeds_match_fig3_envelope() {
        // Normal-use envelope (Fig 3): "at most 19 deg/s and 14 cm/s". The
        // *maximum* over a many-trace sample must bracket the paper's caps —
        // close below them, neither exceeding (the old profile peaked at
        // 21+ deg/s) nor sandbagging far under (which would make every
        // downstream tolerance look better than the paper's).
        let mut lin_max = 0.0f64;
        let mut ang_max = 0.0f64;
        for seed in 0..20 {
            let tr = HeadTrace::generate(&TraceGenConfig::normal_use(), 300 + seed);
            lin_max = linear_speeds(&tr).iter().fold(lin_max, |a, &v| a.max(v));
            ang_max = angular_speeds(&tr).iter().fold(ang_max, |a, &v| a.max(v));
        }
        let ang_max_deg = rad_to_deg(ang_max);
        assert!(
            (10.0..=14.5).contains(&(lin_max * 100.0)),
            "linear envelope {:.1} cm/s vs paper's ~14",
            lin_max * 100.0
        );
        assert!(
            (14.0..=19.5).contains(&ang_max_deg),
            "angular envelope {ang_max_deg:.1} deg/s vs paper's ~19"
        );
    }

    #[test]
    fn viewing_profile_has_a_saccade_tail() {
        // The 360°-viewing default must exceed the TP drift budget
        // occasionally — otherwise Fig 16 would read 100 % availability.
        let tr = HeadTrace::generate(&TraceGenConfig::default(), 7);
        let ang = angular_speeds(&tr);
        let max_ang = ang.iter().cloned().fold(0.0, f64::max);
        assert!(
            rad_to_deg(max_ang) > 35.0,
            "max angular {} deg/s",
            rad_to_deg(max_ang)
        );
    }

    #[test]
    fn corpus_has_varied_styles() {
        let corpus = HeadTrace::generate_corpus(1, 5, 2);
        assert_eq!(corpus.len(), 10);
        let max_angs: Vec<f64> = corpus
            .iter()
            .map(|t| angular_speeds(t).iter().cloned().fold(0.0, f64::max))
            .collect();
        let lo = max_angs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = max_angs.iter().cloned().fold(0.0, f64::max);
        assert!(hi > 1.5 * lo, "styles should vary: {lo}..{hi}");
    }

    #[test]
    fn csv_roundtrip() {
        let tr = HeadTrace::generate(
            &TraceGenConfig {
                duration_s: 1.0,
                ..Default::default()
            },
            3,
        );
        let csv = tr.to_csv();
        let back = HeadTrace::from_csv(&csv).unwrap();
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.period_ms, tr.period_ms);
        for (a, b) in tr.samples.iter().zip(&back.samples) {
            assert!((a.pos - b.pos).norm() < 1e-9);
            assert!(a.quat.angle_to(&b.quat) < 1e-6);
        }
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(HeadTrace::from_csv("").is_err());
        assert!(HeadTrace::from_csv("1,2,3\n").is_err());
        assert!(HeadTrace::from_csv(
            "t_ms,x,y,z,qw,qx,qy,qz\n0,0,0,0,1,0,0,nope\n10,0,0,0,1,0,0,0\n"
        )
        .is_err());
        // Single sample: not enough.
        assert!(HeadTrace::from_csv("0,0,0,0,1,0,0,0\n").is_err());
    }

    #[test]
    fn pose_interpolation_is_continuous() {
        let tr = HeadTrace::generate(
            &TraceGenConfig {
                duration_s: 2.0,
                ..Default::default()
            },
            11,
        );
        let mut last = tr.pose_at(0.0);
        for i in 1..200 {
            let p = tr.pose_at(i as f64 * 0.01 / 2.0);
            assert!((p.trans - last.trans).norm() < 0.05, "jump at step {i}");
            last = p;
        }
        // Clamps beyond the end.
        let end = tr.pose_at(100.0);
        let last_sample = tr.samples.last().unwrap();
        assert!((end.trans - last_sample.pos).norm() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = HeadTrace::generate(&TraceGenConfig::default(), 5);
        let b = HeadTrace::generate(&TraceGenConfig::default(), 5);
        assert_eq!(a, b);
    }
}
