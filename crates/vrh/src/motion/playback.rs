//! Replaying a recorded head-motion trace as a [`Motion`].

use super::Motion;
use crate::traces::HeadTrace;
use cyclops_geom::pose::Pose;

/// Plays a [`HeadTrace`] back, composed onto a base pose (placing the traced
/// motion somewhere in the deployment's world frame).
#[derive(Debug, Clone)]
pub struct TracePlayback {
    /// World pose of the trace's origin.
    pub base: Pose,
    /// The trace to follow.
    pub trace: HeadTrace,
    /// Playback speed factor (1.0 = real time).
    pub speed: f64,
}

impl TracePlayback {
    /// Creates a real-time playback.
    pub fn new(base: Pose, trace: HeadTrace) -> TracePlayback {
        TracePlayback {
            base,
            trace,
            speed: 1.0,
        }
    }
}

impl Motion for TracePlayback {
    fn pose_at(&mut self, t: f64) -> Pose {
        self.base.compose(&self.trace.pose_at(t * self.speed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::TraceGenConfig;
    use cyclops_geom::vec3::v3;

    #[test]
    fn playback_matches_trace() {
        let tr = HeadTrace::generate(
            &TraceGenConfig {
                duration_s: 2.0,
                ..Default::default()
            },
            1,
        );
        let mut pb = TracePlayback::new(Pose::IDENTITY, tr.clone());
        for t in [0.0, 0.5, 1.0, 1.999] {
            let a = pb.pose_at(t);
            let b = tr.pose_at(t);
            assert!((a.trans - b.trans).norm() < 1e-12);
        }
    }

    #[test]
    fn base_offsets_playback() {
        let tr = HeadTrace::generate(
            &TraceGenConfig {
                duration_s: 1.0,
                ..Default::default()
            },
            2,
        );
        let base = Pose::translation(v3(0.0, 1.6, 0.0)); // head height
        let mut pb = TracePlayback::new(base, tr.clone());
        let p = pb.pose_at(0.5);
        let raw = tr.pose_at(0.5);
        assert!((p.trans - (raw.trans + v3(0.0, 1.6, 0.0))).norm() < 1e-12);
    }

    #[test]
    fn double_speed_plays_twice_as_fast() {
        let tr = HeadTrace::generate(
            &TraceGenConfig {
                duration_s: 2.0,
                ..Default::default()
            },
            3,
        );
        let mut fast = TracePlayback::new(Pose::IDENTITY, tr.clone());
        fast.speed = 2.0;
        let a = fast.pose_at(0.5);
        let b = tr.pose_at(1.0);
        assert!((a.trans - b.trans).norm() < 1e-12);
    }
}
