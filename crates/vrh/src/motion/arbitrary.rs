//! Free hand-held motion (§5.3 "User Study (Arbitrary Motions)").
//!
//! "We detach the RX assembly ..., hold it in hands, and move it around in
//! front of the TX." Hand-held motion is well described by an
//! Ornstein–Uhlenbeck (OU) process over linear and angular velocity: velocity
//! relaxes towards zero with a ~half-second time constant while being kicked
//! by noise, giving the smooth-but-erratic trajectories of a human hand, with
//! simultaneous (mixed) linear and angular components — the case the paper
//! stresses its TP design on.

use super::Motion;
use cyclops_geom::pose::Pose;
use cyclops_geom::quat::Quat;
use cyclops_geom::vec3::{v3, Vec3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the OU velocity processes.
#[derive(Debug, Clone, Copy)]
pub struct ArbitraryMotionConfig {
    /// Velocity relaxation time constant (seconds).
    pub tau: f64,
    /// Stationary RMS linear speed per axis (m/s).
    pub lin_rms: f64,
    /// Stationary RMS angular speed per axis (rad/s).
    pub ang_rms: f64,
    /// Hard cap on linear speed (m/s) — a hand can only move so fast.
    pub lin_max: f64,
    /// Hard cap on angular speed (rad/s).
    pub ang_max: f64,
    /// Soft position tether: spring constant pulling back to the start
    /// position (1/s²) so the assembly stays in front of the TX.
    pub tether: f64,
    /// Soft orientation tether (1/s²): a hand holding the assembly keeps it
    /// roughly facing the TX.
    pub ang_tether: f64,
    /// Integration step (seconds).
    pub dt: f64,
}

impl Default for ArbitraryMotionConfig {
    fn default() -> Self {
        ArbitraryMotionConfig {
            tau: 0.5,
            lin_rms: 0.12,
            ang_rms: 0.20,
            lin_max: 1.0,
            ang_max: 2.5,
            tether: 2.0,
            ang_tether: 4.0,
            dt: 1e-3,
        }
    }
}

/// OU-process hand-held motion, deterministic per seed.
#[derive(Debug, Clone)]
pub struct ArbitraryMotion {
    cfg: ArbitraryMotionConfig,
    rng: StdRng,
    base: Pose,
    pos: Vec3,
    quat: Quat,
    vel: Vec3,
    omega: Vec3,
    t: f64,
}

impl ArbitraryMotion {
    /// Creates the motion starting at `base`, seeded for reproducibility.
    pub fn new(base: Pose, cfg: ArbitraryMotionConfig, seed: u64) -> ArbitraryMotion {
        ArbitraryMotion {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            base,
            pos: Vec3::ZERO,
            quat: Quat::IDENTITY,
            vel: Vec3::ZERO,
            omega: Vec3::ZERO,
            t: 0.0,
        }
    }

    /// Current instantaneous linear speed (m/s).
    pub fn linear_speed(&self) -> f64 {
        self.vel.norm()
    }

    /// Current instantaneous angular speed (rad/s).
    pub fn angular_speed(&self) -> f64 {
        self.omega.norm()
    }

    fn gauss(&mut self) -> f64 {
        crate::rand_util::gauss(&mut self.rng)
    }

    fn step(&mut self, dt: f64) {
        let c = self.cfg;
        // OU: dv = −v/τ dt + σ√(2dt/τ) ξ, stationary std = σ.
        let kick_l = c.lin_rms * (2.0 * dt / c.tau).sqrt();
        let kick_a = c.ang_rms * (2.0 * dt / c.tau).sqrt();
        let gl = v3(self.gauss(), self.gauss(), self.gauss());
        let ga = v3(self.gauss(), self.gauss(), self.gauss());
        self.vel += (-self.vel / c.tau - self.pos * c.tether) * dt + gl * kick_l;
        // Orientation spring: pull back towards the facing-the-TX attitude.
        let rv = cyclops_geom::rotation::to_rotation_vector(&self.quat.to_matrix());
        self.omega += (-self.omega / c.tau - rv * c.ang_tether) * dt + ga * kick_a;
        // Caps.
        let vs = self.vel.norm();
        if vs > c.lin_max {
            self.vel *= c.lin_max / vs;
        }
        let ws = self.omega.norm();
        if ws > c.ang_max {
            self.omega *= c.ang_max / ws;
        }
        self.pos += self.vel * dt;
        self.quat = (Quat::from_rotation_vector(self.omega * dt) * self.quat).normalized();
    }
}

impl Motion for ArbitraryMotion {
    fn pose_at(&mut self, t: f64) -> Pose {
        assert!(
            t + 1e-9 >= self.t,
            "ArbitraryMotion must be sampled with non-decreasing time"
        );
        while self.t + self.cfg.dt <= t {
            let dt = self.cfg.dt;
            self.step(dt);
            self.t += dt;
        }
        let local = Pose::from_quat(self.quat, self.pos);
        self.base.compose(&local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::units::rad_to_deg;

    #[test]
    fn deterministic_per_seed() {
        let mk = || ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 99);
        let (mut a, mut b) = (mk(), mk());
        for i in 1..50 {
            let t = i as f64 * 0.05;
            assert_eq!(a.pose_at(t).trans, b.pose_at(t).trans);
        }
        let mut c = ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 100);
        let mut a2 = mk();
        assert_ne!(a2.pose_at(2.0).trans, c.pose_at(2.0).trans);
    }

    #[test]
    fn stays_tethered_near_start() {
        let mut m = ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 7);
        let mut max_dist: f64 = 0.0;
        let mut max_ang: f64 = 0.0;
        for i in 1..1200 {
            let p = m.pose_at(i as f64 * 0.05); // 60 s
            max_dist = max_dist.max(p.trans.norm());
            max_ang = max_ang.max(Quat::IDENTITY.angle_to(&p.quat()));
        }
        assert!(max_dist < 1.0, "wandered {max_dist} m");
        assert!(max_dist > 0.01, "should actually move");
        // The hand keeps the assembly roughly facing forward.
        assert!(max_ang < 0.35, "spun away by {max_ang} rad");
        assert!(max_ang > 0.01, "should actually rotate");
    }

    #[test]
    fn speeds_are_humanlike() {
        let mut m = ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 13);
        let mut lin = Vec::new();
        let mut ang = Vec::new();
        let mut last = m.pose_at(0.0);
        for i in 1..3000 {
            let t = i as f64 * 0.02;
            let p = m.pose_at(t);
            lin.push((p.trans - last.trans).norm() / 0.02);
            ang.push(last.quat().angle_to(&p.quat()) / 0.02);
            last = p;
        }
        let mean_lin = lin.iter().sum::<f64>() / lin.len() as f64;
        let mean_ang = ang.iter().sum::<f64>() / ang.len() as f64;
        // RMS per axis 0.12 m/s ⇒ mean |v| ≈ 1.6·0.12 ≈ 0.19 m/s.
        assert!(
            (0.05..0.5).contains(&mean_lin),
            "mean linear {mean_lin} m/s"
        );
        assert!(
            (5.0..40.0).contains(&rad_to_deg(mean_ang)),
            "mean angular {} deg/s",
            rad_to_deg(mean_ang)
        );
        let max_lin = lin.iter().cloned().fold(0.0, f64::max);
        assert!(max_lin <= 1.01, "cap respected: {max_lin}");
    }

    #[test]
    fn sampling_cadence_does_not_change_the_trajectory() {
        // The engine samples motion once per 1 ms slot, but pause-on-outage
        // and the fleet runner stretch the cadence arbitrarily; the internal
        // dt-stepped OU process must make the trajectory a function of the
        // query time alone, bit-identically.
        let mk = || ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 41);
        let (mut fine, mut coarse) = (mk(), mk());
        for k in 1..=2000 {
            let p = fine.pose_at(k as f64 * 1e-3);
            if k % 50 == 0 {
                let q = coarse.pose_at(k as f64 * 1e-3);
                assert_eq!(p.trans, q.trans, "slot {k}");
                assert_eq!(p.rot, q.rot, "slot {k}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn time_must_not_go_backwards() {
        let mut m = ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 1);
        m.pose_at(1.0);
        m.pose_at(0.5);
    }

    #[test]
    fn poses_remain_rigid() {
        let mut m = ArbitraryMotion::new(Pose::IDENTITY, Default::default(), 3);
        for i in 0..100 {
            assert!(m.pose_at(i as f64 * 0.1).is_rigid(1e-7));
        }
    }
}
