//! Motion models: the §5.3 evaluation rigs and free user motion.
//!
//! The paper evaluates throughput under three motion regimes, each of which
//! is a [`Motion`] implementation here:
//!
//! * **purely linear** — the RX assembly on a linear rail, moved in single
//!   smooth strokes of gradually increasing speed ([`LinearRail`]);
//! * **purely angular** — the same protocol on a rotation stage
//!   ([`RotationStage`]);
//! * **arbitrary** — the assembly held in hands and moved freely
//!   ([`ArbitraryMotion`], an Ornstein–Uhlenbeck process over linear and
//!   angular velocity);
//! * plus [`TracePlayback`] for the §5.4 user-trace simulation.

mod arbitrary;
mod playback;
mod rail;
mod stage;

pub use arbitrary::{ArbitraryMotion, ArbitraryMotionConfig};
pub use playback::TracePlayback;
pub use rail::LinearRail;
pub use stage::RotationStage;

use cyclops_geom::pose::Pose;

/// A time-parameterized rigid motion of the RX assembly.
///
/// `pose_at` must be called with non-decreasing `t` (stateful models
/// integrate forward).
pub trait Motion {
    /// The true world pose of the assembly at time `t` (seconds).
    fn pose_at(&mut self, t: f64) -> Pose;
}

/// A motionless assembly at a fixed pose.
#[derive(Debug, Clone, Copy)]
pub struct StaticPose(pub Pose);

impl Motion for StaticPose {
    fn pose_at(&mut self, _t: f64) -> Pose {
        self.0
    }
}

/// Constant-velocity pose extrapolation — the dead-reckoning primitive the
/// TP loop uses when control-channel reports go stale. Given the last two
/// delivered poses `(t0, p0)` and `(t1, p1)` (`t1 > t0`), predicts the pose
/// at `t ≥ t1`: translation continues linearly, orientation continues at
/// the constant angular velocity of the `p0 → p1` rotation (axis fixed,
/// angle scaled — i.e. slerp extrapolated past 1).
pub fn extrapolate_pose(p0: &Pose, t0: f64, p1: &Pose, t1: f64, t: f64) -> Pose {
    let dt = t1 - t0;
    if dt <= 0.0 || !dt.is_finite() {
        return *p1;
    }
    let s = (t - t1) / dt;
    let trans = p1.trans + (p1.trans - p0.trans) * s;
    let q0 = p0.quat();
    let q1 = p1.quat();
    // Rotation vector of the step q0 → q1, in world frame. Canonicalize to
    // w ≥ 0 so the extracted axis matches the short-arc angle.
    let mut delta = q1 * q0.conjugate();
    if delta.w < 0.0 {
        delta = cyclops_geom::quat::Quat {
            w: -delta.w,
            x: -delta.x,
            y: -delta.y,
            z: -delta.z,
        };
    }
    let angle = delta.angle();
    let rot = if angle < 1e-12 {
        q1
    } else {
        let sv = cyclops_geom::vec3::v3(delta.x, delta.y, delta.z);
        let axis = sv / sv.norm();
        cyclops_geom::quat::Quat::from_axis_angle(axis, angle * s) * q1
    };
    Pose::from_quat(rot, trans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    #[test]
    fn static_pose_never_moves() {
        let pose = Pose::translation(v3(1.0, 2.0, 3.0));
        let mut m = StaticPose(pose);
        assert_eq!(m.pose_at(0.0).trans, pose.trans);
        assert_eq!(m.pose_at(100.0).trans, pose.trans);
    }

    #[test]
    fn extrapolation_continues_constant_velocity() {
        use cyclops_geom::quat::Quat;
        use cyclops_geom::vec3::Vec3;
        // 0.1 m/s along x, 0.5 rad/s about y, sampled at t=0 and t=0.0125.
        let make = |t: f64| {
            Pose::from_quat(
                Quat::from_axis_angle(Vec3::Y, 0.5 * t),
                v3(0.1 * t, 0.0, 1.75),
            )
        };
        let (p0, p1) = (make(0.0), make(0.0125));
        let got = extrapolate_pose(&p0, 0.0, &p1, 0.0125, 0.05);
        let want = make(0.05);
        assert!((got.trans - want.trans).norm() < 1e-12);
        assert!(got.quat().angle_to(&want.quat()) < 1e-12);
    }

    #[test]
    fn extrapolation_at_t1_is_identity() {
        let p0 = Pose::translation(v3(0.0, 0.0, 1.75));
        let p1 = Pose::translation(v3(0.002, 0.0, 1.75));
        let got = extrapolate_pose(&p0, 0.0, &p1, 0.0125, 0.0125);
        assert!((got.trans - p1.trans).norm() < 1e-15);
    }

    #[test]
    fn extrapolation_degenerate_interval_returns_latest() {
        let p0 = Pose::translation(v3(0.0, 0.0, 1.0));
        let p1 = Pose::translation(v3(0.5, 0.0, 1.0));
        // Zero (and negative) dt must not divide by zero.
        let got = extrapolate_pose(&p0, 0.0125, &p1, 0.0125, 0.05);
        assert!((got.trans - p1.trans).norm() < 1e-15);
    }
}
