//! Motion models: the §5.3 evaluation rigs and free user motion.
//!
//! The paper evaluates throughput under three motion regimes, each of which
//! is a [`Motion`] implementation here:
//!
//! * **purely linear** — the RX assembly on a linear rail, moved in single
//!   smooth strokes of gradually increasing speed ([`LinearRail`]);
//! * **purely angular** — the same protocol on a rotation stage
//!   ([`RotationStage`]);
//! * **arbitrary** — the assembly held in hands and moved freely
//!   ([`ArbitraryMotion`], an Ornstein–Uhlenbeck process over linear and
//!   angular velocity);
//! * plus [`TracePlayback`] for the §5.4 user-trace simulation.

mod arbitrary;
mod playback;
mod rail;
mod stage;

pub use arbitrary::{ArbitraryMotion, ArbitraryMotionConfig};
pub use playback::TracePlayback;
pub use rail::LinearRail;
pub use stage::RotationStage;

use cyclops_geom::pose::Pose;

/// A time-parameterized rigid motion of the RX assembly.
///
/// `pose_at` must be called with non-decreasing `t` (stateful models
/// integrate forward).
pub trait Motion {
    /// The true world pose of the assembly at time `t` (seconds).
    fn pose_at(&mut self, t: f64) -> Pose;
}

/// A motionless assembly at a fixed pose.
#[derive(Debug, Clone, Copy)]
pub struct StaticPose(pub Pose);

impl Motion for StaticPose {
    fn pose_at(&mut self, _t: f64) -> Pose {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    #[test]
    fn static_pose_never_moves() {
        let pose = Pose::translation(v3(1.0, 2.0, 3.0));
        let mut m = StaticPose(pose);
        assert_eq!(m.pose_at(0.0).trans, pose.trans);
        assert_eq!(m.pose_at(100.0).trans, pose.trans);
    }
}
