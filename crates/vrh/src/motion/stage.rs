//! Rotation-stage stroke protocol (§5.3, "Purely ... Angular Motions").
//!
//! The same ramping-stroke protocol as the linear rail, but sweeping an
//! angle about the stage axis (the ThorLabs PR01 in the prototype), with the
//! rail locked.

use super::Motion;
use cyclops_geom::pose::Pose;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::units::deg_to_rad;
use cyclops_geom::vec3::Vec3;

/// Back-and-forth angular sweeps about a fixed axis with per-stroke
/// angular-speed ramp.
#[derive(Debug, Clone)]
pub struct RotationStage {
    /// Pose of the assembly at the stage's zero position.
    pub base: Pose,
    /// Unit rotation axis in world coordinates (vertical for yaw sweeps).
    pub axis: Vec3,
    /// Total sweep range (radians); travel is ±range/2.
    pub range: f64,
    /// Angular speed of the first stroke (rad/s).
    pub w0: f64,
    /// Angular-speed increment per stroke (rad/s).
    pub dw: f64,
    /// Pause at each end of the sweep (seconds).
    pub turn_pause: f64,
}

impl RotationStage {
    /// §5.3-style protocol: ±9° sweeps starting at 4 deg/s, stepping up
    /// 2 deg/s per stroke. (±9° keeps the assembly inside the envelope the
    /// grid-board calibration covers; see `cyclops-core::mapping`.)
    pub fn paper_protocol(base: Pose, axis: Vec3) -> RotationStage {
        RotationStage {
            base,
            axis: axis.normalized(),
            range: deg_to_rad(18.0),
            w0: deg_to_rad(4.0),
            dw: deg_to_rad(2.0),
            turn_pause: 0.2,
        }
    }

    /// Stage angle from the zero position at time `t`, plus the current
    /// angular speed.
    pub fn angle_and_speed(&self, t: f64) -> (f64, f64) {
        let mut t_rem = t;
        let mut k = 0usize;
        loop {
            let w = self.w0 + k as f64 * self.dw;
            let stroke_t = self.range / w;
            if t_rem < stroke_t {
                let a = t_rem * w;
                let signed = if k % 2 == 0 {
                    a - self.range / 2.0
                } else {
                    self.range / 2.0 - a
                };
                return (signed, w);
            }
            t_rem -= stroke_t;
            if t_rem < self.turn_pause {
                let end = if k % 2 == 0 { 0.5 } else { -0.5 } * self.range;
                return (end, 0.0);
            }
            t_rem -= self.turn_pause;
            k += 1;
        }
    }
}

impl Motion for RotationStage {
    fn pose_at(&mut self, t: f64) -> Pose {
        let (angle, _) = self.angle_and_speed(t);
        // The stage rotates the assembly about the axis through its own
        // position: world rotation applied on top of the base pose.
        let rot = axis_angle(self.axis, angle);
        Pose::new(rot * self.base.rot, self.base.trans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::units::rad_to_deg;
    use cyclops_geom::vec3::v3;

    fn stage() -> RotationStage {
        RotationStage::paper_protocol(Pose::translation(v3(0.0, 0.0, 1.0)), Vec3::Y)
    }

    #[test]
    fn sweeps_within_range() {
        let s = stage();
        for i in 0..20000 {
            let (a, _) = s.angle_and_speed(i as f64 * 0.01);
            assert!(rad_to_deg(a).abs() <= 9.0 + 1e-9);
        }
    }

    #[test]
    fn first_stroke_speed() {
        let s = stage();
        let (_, w) = s.angle_and_speed(1.0);
        assert!((rad_to_deg(w) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speed_ramps() {
        let s = stage();
        // First stroke: 18°/4°s⁻¹ = 4.5 s; second stroke at 6 deg/s.
        let (_, w) = s.angle_and_speed(4.5 + 0.2 + 1.0);
        assert!((rad_to_deg(w) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_position() {
        let mut s = stage();
        for t in [0.0, 3.0, 11.0, 30.0] {
            let p = s.pose_at(t);
            assert!((p.trans - v3(0.0, 0.0, 1.0)).norm() < 1e-12);
            assert!(p.is_rigid(1e-9));
        }
    }

    #[test]
    fn angular_velocity_matches_numerically() {
        let mut s = stage();
        let q1 = s.pose_at(2.000).quat();
        let q2 = s.pose_at(2.010).quat();
        let w = q1.angle_to(&q2) / 0.01;
        assert!(
            (rad_to_deg(w) - 4.0).abs() < 0.05,
            "got {} deg/s",
            rad_to_deg(w)
        );
    }
}
