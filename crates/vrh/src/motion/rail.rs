//! Linear-rail stroke protocol (§5.3, "Purely Linear ... Motions").
//!
//! "The RX assembly is moved continuously from one end of the rail to the
//! other in a single smooth 'stroke.' The assembly momentarily comes to rest
//! to turn at one end, and is then moved in the opposite direction. This
//! process is repeated with gradually increasing stroke speeds."

use super::Motion;
use cyclops_geom::pose::Pose;
use cyclops_geom::vec3::Vec3;

/// Back-and-forth strokes along a rail with per-stroke speed ramp.
#[derive(Debug, Clone)]
pub struct LinearRail {
    /// Pose of the assembly at the rail centre (orientation is constant).
    pub base: Pose,
    /// Unit direction of the rail in world coordinates.
    pub dir: Vec3,
    /// Usable rail length (metres); travel is ±length/2 around the centre.
    pub length: f64,
    /// Speed of the first stroke (m/s).
    pub v0: f64,
    /// Speed increment per stroke (m/s).
    pub dv: f64,
    /// Pause at each end of the rail (seconds).
    pub turn_pause: f64,
}

impl LinearRail {
    /// Creates the §5.3-style protocol: 40 cm rail, strokes from 5 cm/s
    /// stepping up by 2.5 cm/s each stroke, 0.2 s turnaround.
    pub fn paper_protocol(base: Pose, dir: Vec3) -> LinearRail {
        LinearRail {
            base,
            dir: dir.normalized(),
            length: 0.40,
            v0: 0.05,
            dv: 0.025,
            turn_pause: 0.2,
        }
    }

    /// Rail-axis offset from the centre at time `t`, plus the current stroke
    /// speed (for instrumentation).
    pub fn offset_and_speed(&self, t: f64) -> (f64, f64) {
        // Walk stroke by stroke; speeds grow linearly so this terminates in
        // O(#strokes), which is tiny for any realistic horizon.
        let mut t_rem = t;
        let mut k = 0usize;
        loop {
            let v = self.v0 + k as f64 * self.dv;
            let stroke_t = self.length / v;
            if t_rem < stroke_t {
                let x = t_rem * v; // 0..length along current stroke
                let signed = if k % 2 == 0 {
                    x - self.length / 2.0
                } else {
                    self.length / 2.0 - x
                };
                return (signed, v);
            }
            t_rem -= stroke_t;
            if t_rem < self.turn_pause {
                // Resting at the end of stroke k.
                let end = if k % 2 == 0 { 0.5 } else { -0.5 } * self.length;
                return (end, 0.0);
            }
            t_rem -= self.turn_pause;
            k += 1;
        }
    }
}

impl Motion for LinearRail {
    fn pose_at(&mut self, t: f64) -> Pose {
        let (offset, _) = self.offset_and_speed(t);
        Pose::new(self.base.rot, self.base.trans + self.dir * offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    fn rail() -> LinearRail {
        LinearRail::paper_protocol(Pose::IDENTITY, v3(1.0, 0.0, 0.0))
    }

    #[test]
    fn starts_at_negative_end_moving_forward() {
        let mut r = rail();
        let p0 = r.pose_at(0.0);
        assert!((p0.trans.x + 0.2).abs() < 1e-12);
        let p1 = r.pose_at(1.0);
        assert!(p1.trans.x > p0.trans.x);
    }

    #[test]
    fn first_stroke_speed_is_v0() {
        let r = rail();
        let (_, v) = r.offset_and_speed(1.0);
        assert!((v - 0.05).abs() < 1e-12);
    }

    #[test]
    fn speed_ramps_up_across_strokes() {
        let r = rail();
        // First stroke takes 0.4/0.05 = 8 s (+0.2 s pause); sample the 3rd
        // stroke.
        let t3 = 8.0 + 0.2 + 0.4 / 0.075 + 0.2 + 1.0;
        let (_, v) = r.offset_and_speed(t3);
        assert!((v - 0.10).abs() < 1e-12, "third stroke at v0+2dv, got {v}");
    }

    #[test]
    fn stays_within_rail() {
        let mut r = rail();
        for i in 0..5000 {
            let p = r.pose_at(i as f64 * 0.05);
            assert!(
                p.trans.x.abs() <= 0.2 + 1e-9,
                "at t={} x={}",
                i as f64 * 0.05,
                p.trans.x
            );
            assert!(p.trans.y.abs() < 1e-12, "motion is purely along the rail");
        }
    }

    #[test]
    fn pauses_at_stroke_ends() {
        let r = rail();
        // End of first stroke at t = 8.0; during [8.0, 8.2) we rest at +0.2 m.
        let (x, v) = r.offset_and_speed(8.05);
        assert!((x - 0.2).abs() < 1e-9);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn measured_speed_matches_commanded() {
        // Differentiate numerically mid-stroke.
        let mut r = rail();
        let a = r.pose_at(2.000).trans.x;
        let b = r.pose_at(2.010).trans.x;
        assert!(((b - a) / 0.01 - 0.05).abs() < 1e-9);
    }
}
