//! Linear/angular speed extraction from traces and pose sequences.
//!
//! Fig 3 of the paper (from the authors' earlier study \[55\]) characterizes
//! VRH movement as CDFs of linear and angular speed; these helpers compute
//! the per-sample speeds that feed those CDFs and the throughput figures'
//! x-axes (which the paper measures "using VRH-T reports" over 50 ms
//! windows).

use crate::traces::HeadTrace;
use cyclops_geom::pose::Pose;

/// Per-interval linear speeds (m/s) between consecutive trace samples.
pub fn linear_speeds(trace: &HeadTrace) -> Vec<f64> {
    let dt = trace.period_ms * 1e-3;
    trace
        .samples
        .windows(2)
        .map(|w| (w[1].pos - w[0].pos).norm() / dt)
        .collect()
}

/// Per-interval angular speeds (rad/s) between consecutive trace samples.
pub fn angular_speeds(trace: &HeadTrace) -> Vec<f64> {
    let dt = trace.period_ms * 1e-3;
    trace
        .samples
        .windows(2)
        .map(|w| w[0].quat.angle_to(&w[1].quat) / dt)
        .collect()
}

/// Linear and angular speed between two timed poses: `(m/s, rad/s)`.
pub fn pose_speeds(a: &Pose, b: &Pose, dt: f64) -> (f64, f64) {
    assert!(dt > 0.0);
    (
        (b.trans - a.trans).norm() / dt,
        a.quat().angle_to(&b.quat()) / dt,
    )
}

/// Mean of a window-smoothed speed series: averages each consecutive
/// `window` samples (the paper reports speeds per 50 ms window, i.e.
/// `window = 5` for 10 ms samples).
pub fn window_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1);
    series
        .chunks(window)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{HeadTrace, TraceSample};
    use cyclops_geom::quat::Quat;
    use cyclops_geom::vec3::{v3, Vec3};

    fn uniform_motion_trace() -> HeadTrace {
        // 10 cm/s along X, 0.5 rad/s about Y, 10 ms sampling.
        let samples = (0..101)
            .map(|i| {
                let t = i as f64 * 0.01;
                TraceSample {
                    t_ms: t * 1e3,
                    pos: v3(0.1 * t, 0.0, 0.0),
                    quat: Quat::from_axis_angle(Vec3::Y, 0.5 * t),
                }
            })
            .collect();
        HeadTrace::new(10.0, samples)
    }

    #[test]
    fn constant_speeds_recovered() {
        let tr = uniform_motion_trace();
        for v in linear_speeds(&tr) {
            assert!((v - 0.1).abs() < 1e-9);
        }
        for w in angular_speeds(&tr) {
            assert!((w - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn pose_speeds_basic() {
        let a = Pose::translation(v3(0.0, 0.0, 0.0));
        let b = Pose::translation(v3(0.0, 0.03, 0.0));
        let (lin, ang) = pose_speeds(&a, &b, 0.1);
        assert!((lin - 0.3).abs() < 1e-12);
        assert!(ang < 1e-9);
    }

    #[test]
    fn window_average_shrinks_series() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let w = window_average(&s, 5);
        assert_eq!(w, vec![2.0, 7.0]);
        // Remainder chunk averaged too.
        let w2 = window_average(&s, 4);
        assert_eq!(w2.len(), 3);
        assert_eq!(w2[2], 8.5);
    }

    #[test]
    fn speeds_length_matches() {
        let tr = uniform_motion_trace();
        assert_eq!(linear_speeds(&tr).len(), tr.len() - 1);
        assert_eq!(angular_speeds(&tr).len(), tr.len() - 1);
    }
}
