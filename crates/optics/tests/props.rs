//! Property-based tests for the optical substrate.

use cyclops_geom::pose::Pose;
use cyclops_geom::ray::Ray;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::vec3::Vec3;
use cyclops_optics::beam::{capture_fraction, BeamState};
use cyclops_optics::coupling::{CouplingModel, LinkDesign, ReceiverGeometry};
use cyclops_optics::galvo::GalvoParams;
use cyclops_optics::power::{db_to_linear, linear_to_db};
use proptest::prelude::*;

fn unit_vec() -> impl Strategy<Value = Vec3> {
    (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64)
        .prop_filter("nonzero", |(x, y, z)| x * x + y * y + z * z > 1e-3)
        .prop_map(|(x, y, z)| Vec3::new(x, y, z).normalized())
}

proptest! {
    /// Capture fraction is a probability, monotone ↓ in offset and ↑ in
    /// aperture.
    #[test]
    fn capture_fraction_monotonicity(w in 1e-3..0.05f64, a in 1e-4..0.02f64,
                                     d1 in 0.0..0.05f64, d2 in 0.0..0.05f64) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let c_near = capture_fraction(w, near, a);
        let c_far = capture_fraction(w, far, a);
        prop_assert!((0.0..=1.0).contains(&c_near));
        prop_assert!(c_far <= c_near + 1e-6, "offset ↑ must capture ≤");
    }

    /// Coupling efficiency is always a loss (≤ 0 dB) and decreases with
    /// every misalignment coordinate.
    #[test]
    fn efficiency_is_a_loss(w in 5e-3..0.04f64, delta in 0.0..0.02f64,
                            phi in 0.0..0.02f64, theta in 0.0..0.02f64) {
        let m = CouplingModel::commodity_10g();
        let e = m.efficiency_db(w, delta, phi, theta);
        prop_assert!(e <= 0.0, "efficiency {e} dB");
        // Monotone in φ within the physically relevant range (the deep-tail
        // fast path switches to a separable approximation below −90 dB,
        // where a fraction of a dB of non-monotonicity is irrelevant).
        let e2 = m.efficiency_db(w, delta, phi + 0.002, theta);
        if e > -85.0 && e2 > -85.0 {
            prop_assert!(e2 <= e + 1e-9);
        } else {
            prop_assert!(e2 <= e + 1.0);
        }
    }

    /// Beam radius grows monotonically along propagation and never shrinks
    /// below the waist.
    #[test]
    fn beam_radius_monotone(w0 in 1e-3..0.02f64, theta in 0.0..0.02f64,
                            d1 in 0.0..3.0f64, d2 in 0.0..3.0f64) {
        let b = BeamState::new(Ray::new(Vec3::ZERO, Vec3::Z), w0, theta, 0.0);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(b.radius_at(near) <= b.radius_at(far) + 1e-12);
        prop_assert!(b.radius_at(near) >= w0 - 1e-12);
    }

    /// Propagation is exactly composable: stepping twice equals once.
    #[test]
    fn beam_propagation_composes(w0 in 1e-3..0.02f64, theta in 1e-4..0.02f64,
                                 d1 in 0.0..2.0f64, d2 in 0.0..2.0f64) {
        let b = BeamState::new(Ray::new(Vec3::ZERO, Vec3::Z), w0, theta, 0.0);
        let two_step = b.propagated(d1).propagated(d2);
        let one_step = b.propagated(d1 + d2);
        prop_assert!((two_step.radius_at(0.5) - one_step.radius_at(0.5)).abs() < 1e-12);
        prop_assert!((two_step.chief.origin - one_step.chief.origin).norm() < 1e-12);
    }

    /// dB composition: splitting a loss into two halves is exact.
    #[test]
    fn db_composition(l1 in -40.0..0.0f64, l2 in -40.0..0.0f64) {
        let joint = db_to_linear(l1 + l2);
        let split = db_to_linear(l1) * db_to_linear(l2);
        prop_assert!((linear_to_db(joint) - linear_to_db(split)).abs() < 1e-9);
    }

    /// Galvo frame-transform commutes with tracing for any rigid frame.
    #[test]
    fn galvo_transform_commutes(axis in unit_vec(), ang in -2.0..2.0f64,
                                tx in -2.0..2.0f64, ty in -2.0..2.0f64, tz in -2.0..2.0f64,
                                v1 in -5.0..5.0f64, v2 in -5.0..5.0f64) {
        let g = GalvoParams::nominal();
        let pose = Pose::new(axis_angle(axis, ang), Vec3::new(tx, ty, tz));
        let lhs = g.trace(v1, v2).map(|r| pose.apply_ray(&r));
        let rhs = g.transformed(&pose).trace(v1, v2);
        match (lhs, rhs) {
            (Some(a), Some(b)) => {
                prop_assert!((a.origin - b.origin).norm() < 1e-9);
                prop_assert!((a.dir - b.dir).norm() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "trace success must be frame-invariant"),
        }
    }

    /// trace and trace_line agree wherever the strict path is valid.
    #[test]
    fn trace_line_extends_trace(v1 in -8.0..8.0f64, v2 in -8.0..8.0f64) {
        let g = GalvoParams::nominal();
        if let Some(strict) = g.trace(v1, v2) {
            let line = g.trace_line(v1, v2).expect("line version must be total here");
            prop_assert!((strict.origin - line.origin).norm() < 1e-12);
            prop_assert!((strict.dir - line.dir).norm() < 1e-12);
        }
    }

    /// Received power is maximal at the aligned geometry.
    #[test]
    fn aligned_is_optimal(off in -0.02..0.02f64, tilt in -0.01..0.01f64) {
        let d = LinkDesign::ten_g_diverging(20e-3, 1.75);
        let chief = Ray::new(Vec3::ZERO, Vec3::Z);
        let aligned = ReceiverGeometry::new(Vec3::Z * 1.75, -Vec3::Z);
        let p0 = d.received_power_dbm(chief, &aligned);
        let perturbed = ReceiverGeometry::new(
            Vec3::new(off, 0.0, 1.75),
            axis_angle(Vec3::X, tilt) * -Vec3::Z,
        );
        let p1 = d.received_power_dbm(chief, &perturbed);
        prop_assert!(p1 <= p0 + 0.05, "perturbed {p1} vs aligned {p0}");
    }
}
