//! Erbium-doped fiber amplifier (EDFA).
//!
//! §5.1: "we use an amplifier \[34\] to compensate for the coupling losses due
//! to using a fiber rather than an exposed photodetector as in an actual
//! system." The EDFA sits between the TX SFP and the collimator; it has a
//! fixed small-signal gain and a saturation output power.

/// A booster EDFA: fixed gain up to a saturated output power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edfa {
    /// Small-signal gain (dB).
    pub gain_db: f64,
    /// Saturation output power (dBm) — output is clamped here.
    pub sat_output_dbm: f64,
}

impl Edfa {
    /// The booster used in the prototypes: +18 dB gain, 20 dBm saturated
    /// output (an FS.com C-band booster class device \[34\]). With the 10G ZR's
    /// +2 dBm this launches 20 dBm into the collimator, reproducing the
    /// paper's measured −10 dBm diverging-beam peak after its −30 dB coupling
    /// loss.
    pub fn booster_18db() -> Edfa {
        Edfa {
            gain_db: 18.0,
            sat_output_dbm: 20.0,
        }
    }

    /// An O-band semiconductor optical amplifier (SOA) for the §6 CWDM
    /// lanes around 1310 nm, where an erbium (C-band) device cannot operate:
    /// +15 dB gain, 17 dBm saturated output.
    pub fn o_band_soa() -> Edfa {
        Edfa {
            gain_db: 15.0,
            sat_output_dbm: 17.0,
        }
    }

    /// A pass-through (no amplifier), for ablations.
    pub fn bypass() -> Edfa {
        Edfa {
            gain_db: 0.0,
            sat_output_dbm: f64::INFINITY,
        }
    }

    /// Amplifies an input power (dBm), respecting saturation.
    pub fn amplify_dbm(&self, input_dbm: f64) -> f64 {
        (input_dbm + self.gain_db).min(self.sat_output_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region() {
        let e = Edfa::booster_18db();
        assert!((e.amplify_dbm(0.0) - 18.0).abs() < 1e-12);
        assert!((e.amplify_dbm(-10.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn saturation_clamps() {
        let e = Edfa::booster_18db();
        assert_eq!(e.amplify_dbm(2.0), 20.0);
        assert_eq!(e.amplify_dbm(10.0), 20.0);
    }

    #[test]
    fn prototype_launch_power() {
        // 10G ZR (+2 dBm) through the booster → the 20 dBm launch that the
        // calibrated link budget assumes.
        let launch = Edfa::booster_18db().amplify_dbm(2.0);
        assert_eq!(launch, 20.0);
    }

    #[test]
    fn bypass_is_identity() {
        let e = Edfa::bypass();
        for p in [-30.0, 0.0, 4.0] {
            assert_eq!(e.amplify_dbm(p), p);
        }
    }
}
