//! Optical power arithmetic: dBm, milliwatts and dB ratios.

/// Converts power in dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts power in milliwatts to dBm. Returns `-inf` for zero power.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// Converts a dB ratio to a linear factor.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB. Returns `-inf` for a zero ratio.
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_anchors() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
        assert!((dbm_to_mw(-30.0) - 0.001).abs() < 1e-12);
        assert!((mw_to_dbm(1.0)).abs() < 1e-12);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrips() {
        for dbm in [-40.0, -25.0, -10.0, 0.0, 4.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        for db in [-30.0, -3.0, 0.0, 17.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn db_halving() {
        assert!((db_to_linear(-3.0103) - 0.5).abs() < 1e-4);
        assert!((linear_to_db(0.5) + 3.0103).abs() < 1e-4);
    }

    #[test]
    fn zero_power_is_neg_infinity() {
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(mw_to_dbm(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn composition_adds_in_db() {
        let p_in = 2.0; // dBm
        let gain = 18.0; // dB
        let loss = -30.0; // dB
        let out_mw = dbm_to_mw(p_in) * db_to_linear(gain) * db_to_linear(loss);
        assert!((mw_to_dbm(out_mw) - (p_in + gain + loss)).abs() < 1e-9);
    }
}
