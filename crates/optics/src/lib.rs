//! # cyclops-optics
//!
//! The optical substrate of the Cyclops reproduction: everything the paper's
//! bench prototype did with photons, modelled as deterministic `f64` physics.
//!
//! The paper's link (§2.2, §5.1, Appendix A) is:
//!
//! ```text
//! SFP ── fiber ── EDFA ── collimator ──> GM (TX) ~~~ air ~~~ GM (RX) ──> collimator ── fiber ── SFP
//! ```
//!
//! and this crate provides each stage:
//!
//! * [`power`] — dBm/milliwatt arithmetic;
//! * [`beam`] — Gaussian-beam geometry (waist, divergence, radius at range,
//!   capture of an offset aperture), for both the *collimated* and the
//!   *diverging* designs compared in Table 1;
//! * [`galvo`] — the two-mirror galvanometer geometry: the **ground-truth
//!   hardware** that the learning pipeline in `cyclops-core` fits its model
//!   `G` against, including DAC quantization, angular noise and settle
//!   latency of the ThorLabs GVS102 used in the prototype;
//! * [`coupling`] — received-power model: aperture capture × fiber angular
//!   acceptance × divergence penalty, with constants calibrated once against
//!   the four measured values of the paper's Table 1;
//! * [`sfp`] / [`amplifier`] — transceiver presets (10G ZR, 25G SFP28 LR/ER)
//!   and the EDFA block;
//! * [`photodiode`] — the quadrant-monitor halo used by the exhaustive
//!   alignment search of §4.2 (the paper surrounds the RX collimator with
//!   four photodiodes, as in FSONet \[32\]);
//! * [`mirror`] — finite-aperture clipping (why a wide collimated beam fails:
//!   §5.1 "the beam can also get clipped by the TX GM");
//! * [`safety`] — the IEC 60825 Class-1 eye-safety check discussed in §3;
//! * [`wavelength`] — the §6 multi-wavelength (40G+) extension: CWDM lanes
//!   and chromatic collimator penalties.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod amplifier;
pub mod beam;
pub mod coupling;
pub mod footprint;
pub mod galvo;
pub mod mirror;
pub mod photodiode;
pub mod power;
pub mod safety;
pub mod sfp;
pub mod wavelength;

pub use amplifier::Edfa;
pub use beam::{capture_fraction, BeamState};
pub use coupling::{CouplingModel, LinkDesign, ReceiverGeometry};
pub use galvo::{GalvoError, GalvoParams, GalvoSim, GalvoSimConfig};
pub use photodiode::QuadrantMonitor;
pub use power::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
pub use sfp::SfpSpec;
pub use wavelength::{ChromaticCollimator, WdmLink};
