//! Received-power model: how much light makes it from the air into the RX
//! fiber, as a function of misalignment.
//!
//! ## Model
//!
//! The received power is the launch power plus four loss terms (all dB):
//!
//! 1. **Aperture capture** — fraction of the (Gaussian) beam profile of 1/e²
//!    radius `w` entering the collimator aperture (radius `a`) at lateral
//!    offset `δ`: the [`crate::beam::capture_fraction`] integral.
//! 2. **Angular acceptance** — a Gaussian rolloff `exp(−φ²/2σ_φ²)` in the
//!    incidence angle `φ` between the local ray and the collimator axis.
//!    A fiber collimator maps incidence angle to focal-spot displacement, so
//!    σ_φ is set by (focal spot size + fiber core)/focal length. A *diverging*
//!    arriving beam produces a blurred, larger focal spot, which makes the
//!    coupling *less* sensitive to angle — hence σ_φ grows (saturating) with
//!    the arriving half-divergence θ.
//! 3. **Divergence penalty** — the same blurred spot overfills the fiber
//!    core, costing `k·θ²` dB. This is the paper's "coupling loss for the
//!    diverging beam is quite high at −30 dB" (§5.3, including capture).
//! 4. **Base insertion loss** — connectors, lens transmission.
//!
//! ## Calibration
//!
//! The four free constants are calibrated once against the four measured
//! values of the paper's **Table 1** (TX/RX angular tolerance and peak power
//! for the collimated and diverging 10G designs at 1.75 m); everything else —
//! the Fig 11 diameter sweep, the speed limits of Figs 13–15 — is then a
//! *prediction* of the calibrated model. The paper's "beam diameter at RX"
//! is mapped to the Gaussian 1/e² radius `w`, the interpretation under which
//! the measured diverging-beam TX tolerance (15.81 mrad) is consistent with
//! a 15 dB link margin.

use crate::amplifier::Edfa;
use crate::beam::{capture_fraction, BeamState};
use crate::power::linear_to_db;
use crate::sfp::SfpSpec;
use cyclops_geom::plane::Plane;
use cyclops_geom::ray::Ray;
use cyclops_geom::vec3::Vec3;

/// Geometry of the receive side: the collimator aperture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverGeometry {
    /// Centre of the collimator's clear aperture.
    pub aperture_center: Vec3,
    /// Outward unit normal of the aperture (pointing *towards* the arriving
    /// beam).
    pub axis: Vec3,
}

impl ReceiverGeometry {
    /// Creates the geometry, normalizing the axis.
    pub fn new(aperture_center: Vec3, axis: Vec3) -> ReceiverGeometry {
        ReceiverGeometry {
            aperture_center,
            axis: axis.normalized(),
        }
    }
}

/// Free-space-to-fiber coupling model (see module docs for the four terms
/// and their calibration against Table 1).
#[derive(Debug, Clone, Copy)]
pub struct CouplingModel {
    /// Collimator clear-aperture radius (metres).
    pub aperture_radius: f64,
    /// Static insertion loss (dB, negative).
    pub base_insertion_db: f64,
    /// Angular acceptance σ_φ for a perfectly collimated arriving beam (rad).
    pub sigma_phi0: f64,
    /// Additional acceptance gained from arriving divergence (rad, saturating
    /// amplitude).
    pub sigma_phi_gain: f64,
    /// Divergence scale at which the acceptance gain saturates (rad).
    pub sigma_phi_sat: f64,
    /// Fiber-overfill penalty per (mrad of half-divergence)² (dB, positive
    /// number; applied as a loss).
    pub div_loss_db_per_mrad2: f64,
    /// Focal-spot *cross-blur* penalty per (mm lateral offset × mrad
    /// incidence angle) (dB, positive number; applied as a loss). A ray
    /// bundle that is both displaced (δ) and tilted (φ) couples through the
    /// edge of the collimator lens, where aberrations smear the focal spot
    /// beyond what either misalignment causes alone. The term vanishes for
    /// pure TX steering of a diverging beam (φ ≈ 0 — the rays still come
    /// from the virtual source) and for pure RX rotation (δ ≈ 0), so it
    /// specifically narrows the *lateral translation* tolerance — the §5.3.1
    /// measurement this model is calibrated against (≈ 6 mm on the 25G
    /// link, ≈ 8.5 mm on the 10G link).
    pub cross_blur_db_per_mm_mrad: f64,
}

impl CouplingModel {
    /// Commodity collimator at RX (ThorLabs F810FC-1550), calibrated to the
    /// 10G rows of Table 1.
    pub fn commodity_10g() -> CouplingModel {
        CouplingModel {
            aperture_radius: 5.0e-3,
            base_insertion_db: -0.9,
            sigma_phi0: 0.53e-3,
            sigma_phi_gain: 2.31e-3,
            sigma_phi_sat: 9.0e-3,
            div_loss_db_per_mrad2: 0.152,
            cross_blur_db_per_mm_mrad: 0.116,
        }
    }

    /// Adjustable-focus collimators at both ends (ThorLabs C40FC-C), as used
    /// by the 25G prototype (§5.3.1): ~2.5 dB better diverging-beam coupling
    /// and a wider effective angular acceptance (the focus can be tuned to
    /// the arriving wavefront), at slightly smaller clear aperture.
    pub fn adjustable_25g() -> CouplingModel {
        CouplingModel {
            aperture_radius: 4.5e-3,
            base_insertion_db: -0.4,
            sigma_phi0: 0.9e-3,
            sigma_phi_gain: 7.0e-3,
            sigma_phi_sat: 9.0e-3,
            div_loss_db_per_mrad2: 0.118,
            cross_blur_db_per_mm_mrad: 0.17,
        }
    }

    /// Effective angular acceptance for an arriving half-divergence
    /// `theta_half` (radians).
    pub fn sigma_phi(&self, theta_half: f64) -> f64 {
        self.sigma_phi0 + self.sigma_phi_gain * (1.0 - (-theta_half / self.sigma_phi_sat).exp())
    }

    /// Fiber-overfill penalty (dB ≤ 0) for an arriving half-divergence.
    pub fn divergence_loss_db(&self, theta_half: f64) -> f64 {
        let mrad = theta_half * 1e3;
        -self.div_loss_db_per_mrad2 * mrad * mrad
    }

    /// Total coupling efficiency in dB (≤ 0) for beam radius `w` at the
    /// aperture, lateral offset `delta`, incidence angle `phi`, arriving
    /// half-divergence `theta_half`.
    pub fn efficiency_db(&self, w: f64, delta: f64, phi: f64, theta_half: f64) -> f64 {
        let sp = self.sigma_phi(theta_half);
        // 10·log10(exp(−φ²/2σ²)) = −10·log10(e)·φ²/(2σ²).
        let ang_db = -10.0 * std::f64::consts::LOG10_E * (phi * phi) / (2.0 * sp * sp);
        let cross_db = -self.cross_blur_db_per_mm_mrad * (delta.abs() * 1e3) * (phi.abs() * 1e3);
        let fixed =
            ang_db + cross_db + self.divergence_loss_db(theta_half) + self.base_insertion_db;
        if fixed < -90.0 {
            // Already ~60 dB below any receiver sensitivity at any launch
            // power in this system: skip the (expensive) capture integral and
            // use the separable closed-form approximation (exact at δ = 0,
            // asymptotically exact for a ≪ w) — the alignment searches
            // hammer this far-tail region.
            let centered =
                1.0 - (-2.0 * self.aperture_radius * self.aperture_radius / (w * w)).exp();
            let offset = (-2.0 * delta * delta / (w * w)).exp();
            return linear_to_db(centered * offset) + fixed;
        }
        let capture = capture_fraction(w, delta, self.aperture_radius);
        linear_to_db(capture) + fixed
    }

    /// Received power (dBm) of `beam` at the receiver `rx`.
    ///
    /// Computes the misalignment quantities geometrically:
    /// * `δ` — offset of the beam centre from the aperture centre, in the
    ///   aperture plane;
    /// * `φ` — angle between the local ray through the aperture centre and
    ///   the collimator axis;
    /// * `w` — beam radius at the aperture plane.
    ///
    /// Returns `-inf` if the beam travels away from the receiver.
    pub fn received_power_dbm(&self, beam: &BeamState, rx: &ReceiverGeometry) -> f64 {
        let plane = Plane::new(rx.aperture_center, rx.axis);
        // Beam must be heading into the aperture (against the outward axis).
        if beam.chief.dir.dot(rx.axis) >= 0.0 {
            return f64::NEG_INFINITY;
        }
        let Some((t, hit)) = plane.intersect_line(&beam.chief) else {
            return f64::NEG_INFINITY;
        };
        if t <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let delta = (hit - rx.aperture_center).norm();
        let w = beam.radius_at(t);
        let local_dir = beam.local_ray_dir(rx.aperture_center);
        // Incidence angle between the arriving ray and the collimator axis.
        let phi = (-local_dir).angle_to(rx.axis);
        if phi >= std::f64::consts::FRAC_PI_2 {
            return f64::NEG_INFINITY;
        }
        beam.power_dbm + self.efficiency_db(w, delta, phi, beam.theta_half)
    }
}

/// A complete link design: transceiver, amplifier, beam profile and coupling
/// model — one of the configurations compared in Table 1 / §5.3.
#[derive(Debug, Clone, Copy)]
pub struct LinkDesign {
    /// Transceiver at both ends.
    pub sfp: SfpSpec,
    /// Booster amplifier at the TX (the paper's EDFA \[34\]).
    pub edfa: Edfa,
    /// Beam 1/e² radius at the launch aperture (metres).
    pub launch_radius: f64,
    /// Beam half-divergence (radians).
    pub theta_half: f64,
    /// Receive-side coupling model.
    pub coupling: CouplingModel,
    /// Nominal TX–RX range the design targets (metres).
    pub nominal_range: f64,
}

impl LinkDesign {
    /// The 10G *diverging* design of §5.1: adjustable aspheric collimator at
    /// TX tuned so the beam reaches 1/e² radius `w_rx` at the nominal range.
    pub fn ten_g_diverging(w_rx: f64, nominal_range: f64) -> LinkDesign {
        let launch_radius = 2.0e-3;
        let theta_half =
            ((w_rx * w_rx - launch_radius * launch_radius).max(0.0)).sqrt() / nominal_range;
        LinkDesign {
            sfp: SfpSpec::sfp10g_zr(),
            edfa: Edfa::booster_18db(),
            launch_radius,
            theta_half,
            coupling: CouplingModel::commodity_10g(),
            nominal_range,
        }
    }

    /// The 10G *collimated* design of Table 1: 20 mm beam from the BE02-05-C
    /// beam expander, residual divergence only.
    pub fn ten_g_collimated(nominal_range: f64) -> LinkDesign {
        LinkDesign {
            sfp: SfpSpec::sfp10g_zr(),
            edfa: Edfa::booster_18db(),
            launch_radius: 10.0e-3,
            theta_half: 0.05e-3,
            coupling: CouplingModel::commodity_10g(),
            nominal_range,
        }
    }

    /// The 25G design of §5.3.1: SFP28-LR (12–18 dB budget; ~13 dB less than
    /// the 10G ZR), adjustable-focus collimators at both ends.
    pub fn twenty_five_g(w_rx: f64, nominal_range: f64) -> LinkDesign {
        let launch_radius = 2.0e-3;
        let theta_half =
            ((w_rx * w_rx - launch_radius * launch_radius).max(0.0)).sqrt() / nominal_range;
        LinkDesign {
            sfp: SfpSpec::sfp28_lr(),
            edfa: Edfa::booster_18db(),
            launch_radius,
            theta_half,
            coupling: CouplingModel::adjustable_25g(),
            nominal_range,
        }
    }

    /// Optical power launched into the air (dBm): SFP TX power through the
    /// EDFA.
    pub fn launch_power_dbm(&self) -> f64 {
        self.edfa.amplify_dbm(self.sfp.tx_power_dbm)
    }

    /// Builds the launched [`BeamState`] on the given chief ray.
    pub fn make_beam(&self, chief: Ray) -> BeamState {
        BeamState::new(
            chief,
            self.launch_radius,
            self.theta_half,
            self.launch_power_dbm(),
        )
    }

    /// Received power for a chief ray arriving at the given receiver.
    pub fn received_power_dbm(&self, chief: Ray, rx: &ReceiverGeometry) -> f64 {
        self.coupling.received_power_dbm(&self.make_beam(chief), rx)
    }

    /// True if the received power closes the link (≥ receiver sensitivity).
    pub fn link_closes(&self, received_dbm: f64) -> bool {
        received_dbm >= self.sfp.rx_sensitivity_dbm
    }

    /// IEC 60825 safety class of this design's launch at the given closest
    /// accessible distance (see [`crate::safety`]). The diverging designs
    /// are Class 1 at their deployment ranges; the amplified collimated
    /// design is not — one of §5.1's reasons to prefer divergence.
    pub fn safety_class(&self, access_distance_m: f64) -> crate::safety::LaserClass {
        crate::safety::classify(
            self.launch_power_dbm(),
            self.launch_radius,
            self.theta_half,
            self.sfp.wavelength_nm,
            access_distance_m,
        )
    }

    /// Link margin at perfect alignment over the nominal range (dB).
    pub fn nominal_margin_db(&self) -> f64 {
        let beam = self.make_beam(Ray::new(Vec3::ZERO, Vec3::Z));
        let rx = ReceiverGeometry::new(Vec3::Z * self.nominal_range, -Vec3::Z);
        self.coupling.received_power_dbm(&beam, &rx) - self.sfp.rx_sensitivity_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    const R: f64 = 1.75;

    fn aligned_rx() -> ReceiverGeometry {
        ReceiverGeometry::new(v3(0.0, 0.0, R), -Vec3::Z)
    }

    fn chief() -> Ray {
        Ray::new(Vec3::ZERO, Vec3::Z)
    }

    #[test]
    fn diverging_peak_power_near_minus_10_dbm() {
        // Table 1: diverging design, 20 mm beam at RX → peak ≈ −10 dBm.
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let p = d.received_power_dbm(chief(), &aligned_rx());
        assert!((p - (-10.0)).abs() < 3.0, "peak {p} dBm, expected ≈ −10");
    }

    #[test]
    fn collimated_peak_power_much_higher() {
        // Table 1: collimated design has far higher peak received power.
        let col = LinkDesign::ten_g_collimated(R);
        let div = LinkDesign::ten_g_diverging(20.0e-3, R);
        let pc = col.received_power_dbm(chief(), &aligned_rx());
        let pd = div.received_power_dbm(chief(), &aligned_rx());
        assert!(pc > pd + 15.0, "collimated {pc} vs diverging {pd}");
        assert!(
            (pc - 15.0).abs() < 3.0,
            "collimated peak {pc}, Table 1 reports 15 dBm"
        );
    }

    #[test]
    fn lateral_tolerance_matches_sec531() {
        // §5.3.1's bench measurements: the link survives ≈8.5 mm of pure
        // lateral offset on the 10G link and ≈6 mm on the 25G link. The
        // focal-spot cross-blur term is what narrows these (a displaced
        // *and* tilted bundle couples through the lens edge); this test
        // pins that calibration so the tolerated-linear-speed figures stay
        // anchored to the paper's.
        let tol_mm = |d: &LinkDesign| {
            let mut last = 0.0;
            for k in 0..400 {
                let delta = k as f64 * 0.05e-3;
                let rx = ReceiverGeometry::new(v3(delta, 0.0, R), -Vec3::Z);
                if d.received_power_dbm(chief(), &rx) < d.sfp.rx_sensitivity_dbm {
                    break;
                }
                last = delta;
            }
            last * 1e3
        };
        let t10 = tol_mm(&LinkDesign::ten_g_diverging(20.0e-3, R));
        let t25 = tol_mm(&LinkDesign::twenty_five_g(20.0e-3, R));
        assert!((8.0..=9.5).contains(&t10), "10G lateral tolerance {t10} mm");
        assert!((5.5..=7.0).contains(&t25), "25G lateral tolerance {t25} mm");
    }

    #[test]
    fn cross_blur_spares_pure_misalignments() {
        // The cross term must vanish for pure offset (φ=0) and pure tilt
        // (δ=0): Table 1's angular tolerances are calibrated without it.
        let with = CouplingModel::adjustable_25g();
        let without = CouplingModel {
            cross_blur_db_per_mm_mrad: 0.0,
            ..with
        };
        let (w, th) = (0.02, 0.0114);
        assert_eq!(
            with.efficiency_db(w, 0.006, 0.0, th),
            without.efficiency_db(w, 0.006, 0.0, th)
        );
        assert_eq!(
            with.efficiency_db(w, 0.0, 0.004, th),
            without.efficiency_db(w, 0.0, 0.004, th)
        );
        // But a combined misalignment pays extra.
        assert!(
            with.efficiency_db(w, 0.006, 0.004, th)
                < without.efficiency_db(w, 0.006, 0.004, th) - 1.0
        );
    }

    #[test]
    fn efficiency_decreases_with_each_misalignment_kind() {
        let m = CouplingModel::commodity_10g();
        let w = 0.02;
        let th = 0.0114;
        let base = m.efficiency_db(w, 0.0, 0.0, th);
        assert!(m.efficiency_db(w, 0.005, 0.0, th) < base);
        assert!(m.efficiency_db(w, 0.0, 0.003, th) < base);
        assert!(m.efficiency_db(w, 0.0, 0.0, th * 1.5) < base);
        assert!(base < 0.0);
    }

    #[test]
    fn sigma_phi_grows_and_saturates() {
        let m = CouplingModel::commodity_10g();
        let s0 = m.sigma_phi(0.0);
        let s1 = m.sigma_phi(5e-3);
        let s2 = m.sigma_phi(10e-3);
        let s3 = m.sigma_phi(100e-3);
        assert!(s0 < s1 && s1 < s2 && s2 < s3);
        assert!(s3 < m.sigma_phi0 + m.sigma_phi_gain + 1e-9, "saturates");
        assert!((s0 - m.sigma_phi0).abs() < 1e-12);
    }

    #[test]
    fn beam_heading_away_gets_no_power() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let away = Ray::new(Vec3::ZERO, -Vec3::Z);
        assert_eq!(d.received_power_dbm(away, &aligned_rx()), f64::NEG_INFINITY);
    }

    #[test]
    fn rx_facing_away_gets_no_power() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let rx = ReceiverGeometry::new(v3(0.0, 0.0, R), Vec3::Z); // faces away
        assert_eq!(d.received_power_dbm(chief(), &rx), f64::NEG_INFINITY);
    }

    #[test]
    fn lateral_offset_reduces_power_smoothly() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let mut last = f64::INFINITY;
        for off_mm in [0.0, 2.0, 5.0, 10.0, 20.0] {
            let rx = ReceiverGeometry::new(v3(off_mm * 1e-3, 0.0, R), -Vec3::Z);
            let p = d.received_power_dbm(chief(), &rx);
            assert!(
                p < last,
                "power must fall with offset (at {off_mm} mm: {p})"
            );
            last = p;
        }
    }

    #[test]
    fn link_margin_positive_for_both_10g_designs() {
        for d in [
            LinkDesign::ten_g_diverging(20.0e-3, R),
            LinkDesign::ten_g_collimated(R),
        ] {
            assert!(
                d.nominal_margin_db() > 5.0,
                "margin {}",
                d.nominal_margin_db()
            );
        }
    }

    #[test]
    fn margin_25g_smaller_than_10g() {
        // §5.3.1: the SFP28's budget is ~13 dB less than the 10G ZR's.
        let m10 = LinkDesign::ten_g_diverging(20.0e-3, R).nominal_margin_db();
        let m25 = LinkDesign::twenty_five_g(20.0e-3, R).nominal_margin_db();
        assert!(m25 < m10, "25G margin {m25} vs 10G {m10}");
        assert!(m25 > 0.0, "but the 25G link still closes when aligned");
    }

    #[test]
    fn diverging_design_is_class1_at_range_collimated_is_not() {
        use crate::safety::LaserClass;
        let div = LinkDesign::ten_g_diverging(20.0e-3, R);
        let col = LinkDesign::ten_g_collimated(R);
        assert_eq!(div.safety_class(R), LaserClass::Class1);
        assert_ne!(col.safety_class(R), LaserClass::Class1);
    }

    #[test]
    fn rotating_rx_reduces_power() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let p0 = d.received_power_dbm(chief(), &aligned_rx());
        // Tilt the collimator axis by 5 mrad.
        let tilted = ReceiverGeometry::new(
            v3(0.0, 0.0, R),
            cyclops_geom::rotation::axis_angle(Vec3::X, 5e-3) * -Vec3::Z,
        );
        let p1 = d.received_power_dbm(chief(), &tilted);
        assert!(
            p1 < p0 - 3.0,
            "5 mrad tilt must cost several dB: {p0} → {p1}"
        );
    }

    #[test]
    fn tx_missteer_costs_less_for_diverging_than_collimated() {
        // The mechanism behind Table 1's TX tolerance asymmetry: steering a
        // diverging beam moves only the intensity profile (rays through the
        // aperture still come from the virtual source), while steering a
        // collimated beam also rotates the arriving wavefront.
        let alpha = 2.0e-3; // 2 mrad TX mis-steer
        let steered = Ray::new(
            Vec3::ZERO,
            cyclops_geom::rotation::axis_angle(Vec3::X, alpha) * Vec3::Z,
        );
        let div = LinkDesign::ten_g_diverging(20.0e-3, R);
        let col = LinkDesign::ten_g_collimated(R);
        let drop_div = div.received_power_dbm(chief(), &aligned_rx())
            - div.received_power_dbm(steered, &aligned_rx());
        let drop_col = col.received_power_dbm(chief(), &aligned_rx())
            - col.received_power_dbm(steered, &aligned_rx());
        assert!(
            drop_col > drop_div * 3.0,
            "collimated drop {drop_col} dB vs diverging {drop_div} dB"
        );
    }
}
