//! Quadrant photodiode monitor around the RX collimator.
//!
//! §4.2 (footnote 9): "To monitor the receiver power, we surround the RX's
//! collimator by four photodiodes connected to a DAQ, as in our earlier work
//! \[32\]." The exhaustive four-voltage alignment search needs a feedback
//! signal with a much wider basin than the fiber coupling itself (which is
//! −∞ dB until the beam nearly hits the aperture); the photodiode halo
//! provides it: the four diodes sample the beam's intensity skirt over a
//! several-centimetre footprint.

use crate::beam::{capture_fraction, BeamState};
use crate::coupling::ReceiverGeometry;
use cyclops_geom::plane::Plane;

/// Four photodiodes arranged on a ring around the collimator aperture, plus
/// the aperture itself, forming the alignment-search objective.
#[derive(Debug, Clone, Copy)]
pub struct QuadrantMonitor {
    /// Ring radius: distance of each diode centre from the aperture centre.
    pub ring_radius: f64,
    /// Active radius of each photodiode element.
    pub diode_radius: f64,
}

impl Default for QuadrantMonitor {
    fn default() -> Self {
        // 15 mm ring of 5 mm-radius diodes around the collimator, per the
        // FSONet-style arrangement.
        QuadrantMonitor {
            ring_radius: 15.0e-3,
            diode_radius: 5.0e-3,
        }
    }
}

impl QuadrantMonitor {
    /// The four individual diode signals (linear power fractions of the
    /// arriving beam), ordered +u, +v, −u, −v in the aperture plane, where
    /// (u, v) is an arbitrary-but-fixed orthonormal basis perpendicular to
    /// the receiver axis.
    ///
    /// Returns `[0.0; 4]` if the beam misses the receiver plane entirely.
    pub fn diode_signals(&self, beam: &BeamState, rx: &ReceiverGeometry) -> [f64; 4] {
        let plane = Plane::new(rx.aperture_center, rx.axis);
        if beam.chief.dir.dot(rx.axis) >= 0.0 {
            return [0.0; 4];
        }
        let Some((t, hit)) = plane.intersect_line(&beam.chief) else {
            return [0.0; 4];
        };
        if t <= 0.0 {
            return [0.0; 4];
        }
        let w = beam.radius_at(t);
        let u = rx.axis.any_perpendicular();
        let v = rx.axis.cross(u).normalized();
        let centers = [
            rx.aperture_center + u * self.ring_radius,
            rx.aperture_center + v * self.ring_radius,
            rx.aperture_center - u * self.ring_radius,
            rx.aperture_center - v * self.ring_radius,
        ];
        let mut out = [0.0; 4];
        for (sig, c) in out.iter_mut().zip(centers) {
            let delta = (hit - c).norm();
            *sig = capture_fraction(w, delta, self.diode_radius);
        }
        out
    }

    /// The alignment-search objective: total monitored power fraction —
    /// the sum of the four diode signals plus the power entering the
    /// collimator aperture (`aperture_radius`). Smooth and nonzero over a
    /// basin of roughly `ring_radius + diode_radius + w`, which is what lets
    /// the coarse search find the receiver at all.
    pub fn search_signal(
        &self,
        beam: &BeamState,
        rx: &ReceiverGeometry,
        aperture_radius: f64,
    ) -> f64 {
        let plane = Plane::new(rx.aperture_center, rx.axis);
        if beam.chief.dir.dot(rx.axis) >= 0.0 {
            return 0.0;
        }
        let Some((t, hit)) = plane.intersect_line(&beam.chief) else {
            return 0.0;
        };
        if t <= 0.0 {
            return 0.0;
        }
        let w = beam.radius_at(t);
        let delta = (hit - rx.aperture_center).norm();
        let aperture = capture_fraction(w, delta, aperture_radius);
        let diodes: f64 = self.diode_signals(beam, rx).iter().sum();
        aperture + diodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::ray::Ray;
    use cyclops_geom::vec3::{v3, Vec3};

    fn beam_at(offset_x_mm: f64) -> BeamState {
        BeamState::new(
            Ray::new(v3(offset_x_mm * 1e-3, 0.0, 0.0), Vec3::Z),
            2e-3,
            0.0114,
            20.0,
        )
    }

    fn rx() -> ReceiverGeometry {
        ReceiverGeometry::new(v3(0.0, 0.0, 1.75), -Vec3::Z)
    }

    #[test]
    fn centered_beam_gives_equal_quadrants() {
        let m = QuadrantMonitor::default();
        let s = m.diode_signals(&beam_at(0.0), &rx());
        for i in 1..4 {
            assert!((s[i] - s[0]).abs() < 1e-9, "{s:?}");
        }
        assert!(s[0] > 0.0);
    }

    #[test]
    fn offset_beam_biases_quadrants() {
        let m = QuadrantMonitor::default();
        let s = m.diode_signals(&beam_at(10.0), &rx());
        // The diode on the side the beam moved towards must read more than
        // the opposite one.
        let (hi, lo) = (
            s.iter().cloned().fold(0.0, f64::max),
            s.iter().cloned().fold(1.0, f64::min),
        );
        assert!(hi > lo * 1.2, "{s:?}");
    }

    #[test]
    fn search_signal_has_wide_basin() {
        let m = QuadrantMonitor::default();
        // Even 25 mm off-centre, the monitor still sees the beam skirt —
        // while the 5 mm collimator aperture alone would see ~nothing.
        let sig = m.search_signal(&beam_at(25.0), &rx(), 5e-3);
        assert!(sig > 1e-6, "signal {sig}");
        // And it decreases monotonically outward.
        let closer = m.search_signal(&beam_at(10.0), &rx(), 5e-3);
        let centered = m.search_signal(&beam_at(0.0), &rx(), 5e-3);
        assert!(centered > closer && closer > sig);
    }

    #[test]
    fn beam_pointing_away_reads_zero() {
        let m = QuadrantMonitor::default();
        let away = BeamState::new(Ray::new(Vec3::ZERO, -Vec3::Z), 2e-3, 0.0114, 20.0);
        assert_eq!(m.search_signal(&away, &rx(), 5e-3), 0.0);
        assert_eq!(m.diode_signals(&away, &rx()), [0.0; 4]);
    }
}
