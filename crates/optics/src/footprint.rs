//! Power, cost and size footprint of a Cyclops terminal.
//!
//! §3 footnote 2: "Total power usage of our system (with two SFPs and two
//! GMs) should be at most a few watts, resulting in minimal ($1–10/year)
//! electricity usage cost." And §3: "steerable SFP-based links can indeed be
//! designed with a small size, cost and power footprint of terminals" \[40\].
//! This module does that arithmetic from per-component data so the claim is
//! checkable rather than asserted.

/// Power draw of one system component (watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Typical draw (W).
    pub watts: f64,
}

/// The full two-terminal bill of active components.
pub fn paper_prototype_components() -> Vec<Component> {
    vec![
        Component {
            name: "TX SFP (10G ZR)",
            watts: 1.5,
        },
        Component {
            name: "RX SFP (10G ZR)",
            watts: 1.5,
        },
        Component {
            name: "TX galvo pair (servo idle+steer avg)",
            watts: 0.8,
        },
        Component {
            name: "RX galvo pair",
            watts: 0.8,
        },
        Component {
            name: "EDFA booster",
            watts: 3.0,
        },
        Component {
            name: "DAQ (USB-1608G)",
            watts: 0.5,
        },
    ]
}

/// Total system draw (W).
pub fn total_watts(components: &[Component]) -> f64 {
    components.iter().map(|c| c.watts).sum()
}

/// Annual electricity cost in dollars at `usd_per_kwh`, assuming
/// `hours_per_day` of use.
pub fn annual_cost_usd(watts: f64, usd_per_kwh: f64, hours_per_day: f64) -> f64 {
    watts / 1000.0 * hours_per_day * 365.0 * usd_per_kwh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_draw_is_a_few_watts() {
        let w = total_watts(&paper_prototype_components());
        // "at most a few watts" — with the bench EDFA it's high-single-digit;
        // a productized system drops the EDFA (exposed photodetector, §5.1).
        assert!((4.0..12.0).contains(&w), "total {w} W");
    }

    #[test]
    fn annual_cost_matches_footnote_band() {
        // Footnote 2's $1–10/year: a few hours of VR per day at typical
        // residential rates.
        let w = total_watts(&paper_prototype_components());
        let cost = annual_cost_usd(w, 0.15, 3.0);
        assert!((1.0..10.0).contains(&cost), "annual cost ${cost:.2}");
    }

    #[test]
    fn cost_scales_linearly() {
        let c1 = annual_cost_usd(5.0, 0.15, 3.0);
        let c2 = annual_cost_usd(10.0, 0.15, 3.0);
        let c3 = annual_cost_usd(5.0, 0.30, 3.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        assert!((c3 - 2.0 * c1).abs() < 1e-9);
    }

    #[test]
    fn always_on_kiosk_still_cheap() {
        let w = total_watts(&paper_prototype_components());
        let cost = annual_cost_usd(w, 0.15, 24.0);
        assert!(cost < 15.0, "24/7 cost ${cost:.2}");
    }
}
