//! Two-mirror galvanometer (GM) geometry and hardware simulation.
//!
//! This module plays **two roles**, with one shared geometry:
//!
//! 1. [`GalvoParams`] is the parameterized beam-path expression of the
//!    paper's §4.1(A): input beam `(p₀, x̂₀)`, per-mirror `(n̂ᵢ, qᵢ, r̂ᵢ)`, and
//!    the voltage-to-angle gain `θ₁`. `cyclops-core` *fits* an instance of
//!    this struct from training samples — that fitted instance is the model
//!    `G`.
//! 2. [`GalvoSim`] wraps a (hidden, "true") `GalvoParams` with the
//!    non-idealities of the bench hardware (ThorLabs GVS102 \[36\]): 16-bit
//!    DAC quantization, ~10 µrad angular noise, and the ~300 µs small-angle
//!    settle latency the paper quotes. The learning pipeline only ever sees
//!    `GalvoSim` outputs, exactly as the authors only ever saw their real
//!    galvos.
//!
//! The beam-path math is verbatim from the paper:
//!
//! ```text
//! n̂₁' = R(r̂₁, θ₁·v₁)·n̂₁          n̂₂' = R(r̂₂, θ₁·v₂)·n̂₂
//! (p_mid, x̂_mid) = R(p₀, x̂₀, n̂₁', q₁)
//! (p, x̂)         = R(p_mid, x̂_mid, n̂₂', q₂)
//! ```

use cyclops_geom::plane::Plane;
use cyclops_geom::pose::Pose;
use cyclops_geom::ray::Ray;
use cyclops_geom::reflect::reflect_ray;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::units::deg_to_rad;
use cyclops_geom::vec3::{v3, Vec3};
use rand::Rng;

/// Voltage limits of the galvo driver (±10 V, the GVS102 command range).
pub const VOLT_MIN: f64 = -10.0;

/// DAC quantization step: the USB-1608G's 16 bits over the ±10 V range.
/// This is the "minimum GM voltage step" the paper uses as the pointing
/// iteration's convergence threshold.
pub const DAC_STEP_V: f64 = 20.0 / 65536.0;
/// See [`VOLT_MIN`].
pub const VOLT_MAX: f64 = 10.0;

/// Number of free parameters in the flattened representation used by the
/// K-space fit: `p0`(3) `x0`(3) `n1`(3) `q1`(3) `r1`(3) `n2`(3) `q2`(3)
/// `r2`(3) `theta1`(1).
pub const N_PARAMS: usize = 25;

/// Typed failure modes of the galvo layer, returned by the strict `try_*`
/// APIs ([`GalvoParams::try_trace`], [`GalvoSim::try_command`], …) and
/// propagated through the K-space fit instead of panicking.
///
/// The lenient APIs keep their historical behaviour: [`GalvoSim::command`]
/// clamps out-of-range voltages exactly like the real driver, and
/// [`GalvoParams::trace`] reports a degenerate path as `None` (the fit
/// treats it as a large residual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GalvoError {
    /// A commanded voltage lies outside the ±10 V driver range (or is not
    /// finite).
    VoltageOutOfRange {
        /// Which mirror channel (1 or 2).
        mirror: u8,
        /// The offending voltage (volts).
        volts: f64,
    },
    /// The beam path degenerates: a reflection misses a mirror plane.
    DegenerateBeamPath,
}

impl std::fmt::Display for GalvoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GalvoError::VoltageOutOfRange { mirror, volts } => write!(
                f,
                "galvo mirror {mirror} commanded to {volts} V, outside \
                 [{VOLT_MIN}, {VOLT_MAX}] V"
            ),
            GalvoError::DegenerateBeamPath => {
                write!(
                    f,
                    "beam path degenerate: a reflection misses a mirror plane"
                )
            }
        }
    }
}

impl std::error::Error for GalvoError {}

/// Validates a voltage pair against the ±10 V driver range (NaN and
/// infinities are rejected too).
pub fn check_volts(v1: f64, v2: f64) -> Result<(), GalvoError> {
    for (mirror, volts) in [(1u8, v1), (2u8, v2)] {
        if !(VOLT_MIN..=VOLT_MAX).contains(&volts) {
            return Err(GalvoError::VoltageOutOfRange { mirror, volts });
        }
    }
    Ok(())
}

/// Geometric model of a galvo-mirror assembly (GMA): collimator launch beam
/// plus two voltage-steered mirrors. All points/directions are in whatever
/// frame the instance is expressed in (body frame, K-space or VR-space —
/// see [`GalvoParams::transformed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GalvoParams {
    /// Input-beam originating point (from the collimator).
    pub p0: Vec3,
    /// Input-beam direction (normalized at use).
    pub x0: Vec3,
    /// First mirror: normal at zero voltage.
    pub n1: Vec3,
    /// First mirror: point on the mirror plane *and* its rotation axis.
    pub q1: Vec3,
    /// First mirror: rotation-axis direction.
    pub r1: Vec3,
    /// Second mirror: normal at zero voltage.
    pub n2: Vec3,
    /// Second mirror: point on the mirror plane and rotation axis.
    pub q2: Vec3,
    /// Second mirror: rotation-axis direction.
    pub r2: Vec3,
    /// Voltage-to-angle gain (radians of mirror rotation per volt); the paper
    /// observed this to be linear and shared by both mirrors.
    pub theta1: f64,
}

/// Precomputed normalized mirror axes/normals of a [`GalvoParams`]
/// ([`GalvoParams::axes`]): hoists the four `normalized()` calls out of the
/// per-voltage beam-path math. Derived data — rebuild after any parameter
/// change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GalvoAxes {
    /// `r1.normalized()`.
    pub r1n: Vec3,
    /// `n1.normalized()`.
    pub n1n: Vec3,
    /// `r2.normalized()`.
    pub r2n: Vec3,
    /// `n2.normalized()`.
    pub n2n: Vec3,
}

impl GalvoParams {
    /// Nominal ("CAD drawing") geometry of a GVS102-like assembly, in the
    /// assembly's body frame: input beam along +X at `x = −50 mm`, first
    /// mirror at the origin rotating about Z, second mirror 12 mm away along
    /// +Y rotating about X, output beam along +Z at rest.
    ///
    /// The voltage gain is 1.25° of mechanical rotation per volt, i.e. the
    /// full ±10 V range sweeps ±12.5° mechanical (±25° optical), matching the
    /// GVS102 data sheet.
    pub fn nominal() -> GalvoParams {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        GalvoParams {
            p0: v3(-0.05, 0.0, 0.0),
            x0: v3(1.0, 0.0, 0.0),
            n1: v3(-s, s, 0.0),
            q1: Vec3::ZERO,
            r1: v3(0.0, 0.0, 1.0),
            n2: v3(0.0, -s, s),
            q2: v3(0.0, 0.012, 0.0),
            r2: v3(1.0, 0.0, 0.0),
            theta1: deg_to_rad(1.25),
        }
    }

    /// A randomly perturbed copy — the "true" hardware that differs from the
    /// CAD nominal by assembly tolerances. Positions move by up to
    /// `pos_mm` millimetres per axis, directions tilt by up to `ang_deg`
    /// degrees, and the gain varies by up to `gain_frac` (fractional).
    pub fn perturbed<R: Rng>(
        &self,
        rng: &mut R,
        pos_mm: f64,
        ang_deg: f64,
        gain_frac: f64,
    ) -> GalvoParams {
        let jitter_p = |p: Vec3, rng: &mut R| {
            p + v3(
                rng.gen_range(-pos_mm..pos_mm) * 1e-3,
                rng.gen_range(-pos_mm..pos_mm) * 1e-3,
                rng.gen_range(-pos_mm..pos_mm) * 1e-3,
            )
        };
        let jitter_d = |d: Vec3, rng: &mut R| {
            let axis = v3(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            let axis = axis.try_normalized(1e-6).unwrap_or(Vec3::X);
            let ang = deg_to_rad(rng.gen_range(-ang_deg..ang_deg));
            axis_angle(axis, ang) * d.normalized()
        };
        GalvoParams {
            p0: jitter_p(self.p0, rng),
            x0: jitter_d(self.x0, rng),
            n1: jitter_d(self.n1, rng),
            q1: jitter_p(self.q1, rng),
            r1: jitter_d(self.r1, rng),
            n2: jitter_d(self.n2, rng),
            q2: jitter_p(self.q2, rng),
            r2: jitter_d(self.r2, rng),
            theta1: self.theta1 * (1.0 + rng.gen_range(-gain_frac..gain_frac)),
        }
    }

    /// The four normalized mirror axes/normals, computed once. `trace` /
    /// `trace_line` / `second_mirror_plane` renormalize `r1/n1/r2/n2` on
    /// every call; on fixed geometry (the per-slot simulation path) those
    /// calls are loop-invariant. The cache holds the exact outputs of the
    /// same `normalized()` calls, so tracing through it ([`
    /// GalvoParams::trace_with`]) is bit-identical to [`GalvoParams::trace`].
    pub fn axes(&self) -> GalvoAxes {
        GalvoAxes {
            r1n: self.r1.normalized(),
            n1n: self.n1.normalized(),
            r2n: self.r2.normalized(),
            n2n: self.n2.normalized(),
        }
    }

    /// Evaluates the GMA function `G(v₁, v₂) = (p, x̂)`: the output beam after
    /// both voltage-tilted reflections. `None` if the beam geometrically
    /// misses a mirror plane (possible for badly wrong parameter guesses
    /// during fitting — the fit treats that as a large residual).
    pub fn trace(&self, v1: f64, v2: f64) -> Option<Ray> {
        self.trace_with(&self.axes(), v1, v2)
    }

    /// [`GalvoParams::trace`] with the normalizations hoisted into a
    /// precomputed [`GalvoAxes`] — bit-identical, the per-voltage work is
    /// two axis-angle rotations and two reflections.
    #[inline]
    pub fn trace_with(&self, axes: &GalvoAxes, v1: f64, v2: f64) -> Option<Ray> {
        let n1p = axis_angle(axes.r1n, self.theta1 * v1) * axes.n1n;
        let n2p = axis_angle(axes.r2n, self.theta1 * v2) * axes.n2n;
        let input = Ray::new(self.p0, self.x0);
        let mid = reflect_ray(&input, self.q1, n1p)?;
        reflect_ray(&mid, self.q2, n2p)
    }

    /// Strict version of [`GalvoParams::trace`]: validates the voltage pair
    /// against the driver range and reports a degenerate beam path as a
    /// typed [`GalvoError`] instead of `None`.
    pub fn try_trace(&self, v1: f64, v2: f64) -> Result<Ray, GalvoError> {
        check_volts(v1, v2)?;
        self.trace(v1, v2).ok_or(GalvoError::DegenerateBeamPath)
    }

    /// Strict version of [`GalvoParams::trace_line`] (see
    /// [`GalvoParams::try_trace`]).
    pub fn try_trace_line(&self, v1: f64, v2: f64) -> Result<Ray, GalvoError> {
        check_volts(v1, v2)?;
        self.trace_line(v1, v2)
            .ok_or(GalvoError::DegenerateBeamPath)
    }

    /// Like [`GalvoParams::trace`], but intersecting the mirror *lines*
    /// rather than forward rays.
    ///
    /// A **fitted** model (K-space learning, §4.1) reproduces the output
    /// beam lines of the hardware, but its internal layout is only
    /// determined up to gauge: the fitted `p₀/q₁/q₂` can imply reflections
    /// with negative path parameters at some voltages even though the
    /// resulting output line is correct. Computational consumers of a
    /// learned model (`G'`, the pointing iteration, the mapping residuals)
    /// must therefore use this total, smooth version; the strict
    /// [`GalvoParams::trace`] stays the physical ground-truth path used by
    /// the hardware simulation.
    pub fn trace_line(&self, v1: f64, v2: f64) -> Option<Ray> {
        self.trace_line_with(&self.axes(), v1, v2)
    }

    /// [`GalvoParams::trace_line`] with precomputed [`GalvoAxes`] —
    /// bit-identical (see [`GalvoParams::trace_with`]).
    #[inline]
    pub fn trace_line_with(&self, axes: &GalvoAxes, v1: f64, v2: f64) -> Option<Ray> {
        use cyclops_geom::plane::Plane;
        use cyclops_geom::reflect::reflect_dir;
        let n1p = axis_angle(axes.r1n, self.theta1 * v1) * axes.n1n;
        let n2p = axis_angle(axes.r2n, self.theta1 * v2) * axes.n2n;
        let input = Ray::new(self.p0, self.x0);
        let (_, hit1) = Plane::new(self.q1, n1p).intersect_line(&input)?;
        let mid = Ray::new(hit1, reflect_dir(input.dir, n1p));
        let (_, hit2) = Plane::new(self.q2, n2p).intersect_line(&mid)?;
        Some(Ray::new(hit2, reflect_dir(mid.dir, n2p)))
    }

    /// The plane of the second mirror at voltage `v2`.
    ///
    /// The pointing mechanism (§4.3) computes the target point `τ` as the
    /// intersection of the far beam with the *other* GMA's second-mirror
    /// plane, so this is part of the public model surface.
    pub fn second_mirror_plane(&self, v2: f64) -> Plane {
        let n2p = axis_angle(self.r2.normalized(), self.theta1 * v2) * self.n2.normalized();
        Plane::new(self.q2, n2p)
    }

    /// The second-mirror plane of this assembly expressed in `pose`'s frame
    /// — bit-identical to `self.transformed(pose).second_mirror_plane(v2)`,
    /// but transforming only the three fields the plane depends on
    /// (`q2`, `r2`, `n2`) instead of all nine. The per-slot power path
    /// needs exactly this plane, so the other six transforms were pure
    /// overhead there.
    #[inline]
    pub fn second_mirror_plane_world(&self, pose: &Pose, v2: f64) -> Plane {
        let q2 = pose.apply_point(self.q2);
        let r2 = pose.apply_dir(self.r2);
        let n2 = pose.apply_dir(self.n2);
        let n2p = axis_angle(r2.normalized(), self.theta1 * v2) * n2.normalized();
        Plane::new(q2, n2p)
    }

    /// Expresses the same physical assembly in another frame:
    /// points map as points, directions as directions.
    pub fn transformed(&self, pose: &Pose) -> GalvoParams {
        GalvoParams {
            p0: pose.apply_point(self.p0),
            x0: pose.apply_dir(self.x0),
            n1: pose.apply_dir(self.n1),
            q1: pose.apply_point(self.q1),
            r1: pose.apply_dir(self.r1),
            n2: pose.apply_dir(self.n2),
            q2: pose.apply_point(self.q2),
            r2: pose.apply_dir(self.r2),
            theta1: self.theta1,
        }
    }

    /// Flattens into the [`N_PARAMS`]-element vector the K-space fit
    /// optimizes over.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(N_PARAMS);
        for p in [
            self.p0, self.x0, self.n1, self.q1, self.r1, self.n2, self.q2, self.r2,
        ] {
            v.extend_from_slice(&p.to_array());
        }
        v.push(self.theta1);
        v
    }

    /// Rebuilds from a flattened parameter vector (directions are
    /// re-normalized lazily inside [`GalvoParams::trace`]).
    pub fn from_vec(v: &[f64]) -> GalvoParams {
        assert_eq!(v.len(), N_PARAMS);
        let g = |i: usize| v3(v[3 * i], v[3 * i + 1], v[3 * i + 2]);
        GalvoParams {
            p0: g(0),
            x0: g(1),
            n1: g(2),
            q1: g(3),
            r1: g(4),
            n2: g(5),
            q2: g(6),
            r2: g(7),
            theta1: v[24],
        }
    }
}

/// Hardware non-idealities of the galvo driver chain.
#[derive(Debug, Clone, Copy)]
pub struct GalvoSimConfig {
    /// DAC quantization step in volts (USB-1608G: 16-bit over ±10 V).
    pub dac_step_v: f64,
    /// RMS angular positioning noise per mirror (GVS102: ~10 µrad).
    pub angle_noise_rad: f64,
    /// Small-angle settle time (the paper quotes 300 µs).
    pub small_step_settle_s: f64,
    /// Slew rate for large steps, radians of mirror angle per second.
    pub slew_rad_per_s: f64,
}

impl Default for GalvoSimConfig {
    fn default() -> Self {
        GalvoSimConfig {
            dac_step_v: DAC_STEP_V,
            angle_noise_rad: 10e-6,
            small_step_settle_s: 300e-6,
            slew_rad_per_s: deg_to_rad(1000.0),
        }
    }
}

/// An ideal config with no noise or quantization — useful in unit tests that
/// need exact geometry.
impl GalvoSimConfig {
    /// No quantization, no noise, instant settle.
    pub fn ideal() -> GalvoSimConfig {
        GalvoSimConfig {
            dac_step_v: 0.0,
            angle_noise_rad: 0.0,
            small_step_settle_s: 0.0,
            slew_rad_per_s: f64::INFINITY,
        }
    }
}

/// Simulated galvo hardware: hidden true geometry plus driver non-idealities.
///
/// Deterministic given its seed history; every noisy draw comes from the RNG
/// handed to [`GalvoSim::output_ray`].
#[derive(Debug, Clone)]
pub struct GalvoSim {
    /// The true (hidden) geometry. Experiments read this only to *build* the
    /// world; the learning pipeline never does. Treated as fixed from
    /// construction (the cached `axes` are derived from it).
    pub truth: GalvoParams,
    /// Driver non-idealities.
    pub cfg: GalvoSimConfig,
    /// Precomputed [`GalvoParams::axes`] of `truth`, so the per-slot
    /// [`GalvoSim::output_ray`] skips the four renormalizations.
    axes: GalvoAxes,
    v1: f64,
    v2: f64,
}

impl GalvoSim {
    /// Creates the hardware at zero volts.
    pub fn new(truth: GalvoParams, cfg: GalvoSimConfig) -> GalvoSim {
        GalvoSim {
            axes: truth.axes(),
            truth,
            cfg,
            v1: 0.0,
            v2: 0.0,
        }
    }

    /// Commands the two mirror voltages (clamped to ±10 V, quantized to the
    /// DAC step). Returns the settle time in seconds: the paper's 1–2 ms
    /// pointing latency is dominated by this plus DAC conversion.
    pub fn command(&mut self, v1: f64, v2: f64) -> f64 {
        let q = |v: f64| {
            let c = v.clamp(VOLT_MIN, VOLT_MAX);
            if self.cfg.dac_step_v > 0.0 {
                (c / self.cfg.dac_step_v).round() * self.cfg.dac_step_v
            } else {
                c
            }
        };
        let (nv1, nv2) = (q(v1), q(v2));
        let dang = ((nv1 - self.v1).abs().max((nv2 - self.v2).abs())) * self.truth.theta1;
        self.v1 = nv1;
        self.v2 = nv2;
        if dang == 0.0 {
            0.0
        } else if self.cfg.slew_rad_per_s.is_infinite() {
            self.cfg.small_step_settle_s
        } else {
            self.cfg.small_step_settle_s + dang / self.cfg.slew_rad_per_s
        }
    }

    /// Strict version of [`GalvoSim::command`]: rejects an out-of-range
    /// voltage with a typed error (leaving the mirrors untouched) instead of
    /// silently clamping. The clamping [`GalvoSim::command`] remains the
    /// bench-hardware behaviour — the real driver clamps — while
    /// `try_command` serves callers for whom an out-of-range request is a
    /// logic error to surface.
    pub fn try_command(&mut self, v1: f64, v2: f64) -> Result<f64, GalvoError> {
        check_volts(v1, v2)?;
        Ok(self.command(v1, v2))
    }

    /// Current commanded voltages (after clamping/quantization).
    pub fn voltages(&self) -> (f64, f64) {
        (self.v1, self.v2)
    }

    /// Settle time [`GalvoSim::command`] *would* report for moving to the
    /// given voltages from the current state, without moving anything —
    /// used to schedule when a queued command becomes optically effective.
    pub fn settle_estimate(&self, v1: f64, v2: f64) -> f64 {
        let q = |v: f64| v.clamp(VOLT_MIN, VOLT_MAX);
        let dang = ((q(v1) - self.v1).abs().max((q(v2) - self.v2).abs())) * self.truth.theta1;
        if dang == 0.0 {
            0.0
        } else if self.cfg.slew_rad_per_s.is_infinite() {
            self.cfg.small_step_settle_s
        } else {
            self.cfg.small_step_settle_s + dang / self.cfg.slew_rad_per_s
        }
    }

    /// The physical output beam right now, with angular positioning noise
    /// drawn from `rng`.
    pub fn output_ray<R: Rng>(&self, rng: &mut R) -> Option<Ray> {
        let noise_v = if self.cfg.angle_noise_rad > 0.0 {
            self.cfg.angle_noise_rad / self.truth.theta1
        } else {
            0.0
        };
        let jitter = |rng: &mut R| {
            if noise_v > 0.0 {
                // Box-Muller standard normal scaled to the noise amplitude.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * noise_v
            } else {
                0.0
            }
        };
        let j1 = jitter(rng);
        let j2 = jitter(rng);
        self.truth
            .trace_with(&self.axes, self.v1 + j1, self.v2 + j2)
    }

    /// Strict version of [`GalvoSim::output_ray`]: a beam that misses a
    /// mirror plane is a typed error instead of `None`.
    pub fn try_output_ray<R: Rng>(&self, rng: &mut R) -> Result<Ray, GalvoError> {
        self.output_ray(rng).ok_or(GalvoError::DegenerateBeamPath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_rest_beam_points_up() -> Result<(), GalvoError> {
        let g = GalvoParams::nominal();
        let out = g.try_trace(0.0, 0.0)?;
        assert!((out.dir - Vec3::Z).norm() < 1e-12);
        assert!((out.origin - v3(0.0, 0.012, 0.0)).norm() < 1e-12);
        Ok(())
    }

    #[test]
    fn voltage_steers_beam_by_twice_mirror_angle() -> Result<(), GalvoError> {
        let g = GalvoParams::nominal();
        let rest = g.try_trace(0.0, 0.0)?;
        let steered = g.try_trace(0.0, 1.0)?;
        let ang = rest.dir.angle_to(steered.dir);
        // Optical deflection = 2 × mechanical rotation = 2 × θ₁ × 1 V.
        assert!((ang - 2.0 * g.theta1).abs() < 1e-9, "got {ang}");
        Ok(())
    }

    #[test]
    fn both_axes_are_independent_at_rest() -> Result<(), GalvoError> {
        let g = GalvoParams::nominal();
        let a = g.try_trace(0.5, 0.0)?;
        let b = g.try_trace(0.0, 0.5)?;
        // First-mirror steering moves the beam in the X direction (axis Z
        // rotates the beam in the XY plane → output tilts in X); second
        // mirror tilts in Y. They must be (nearly) orthogonal deflections.
        let rest = g.try_trace(0.0, 0.0)?;
        let da = (a.dir - rest.dir).normalized();
        let db = (b.dir - rest.dir).normalized();
        assert!(
            da.dot(db).abs() < 0.1,
            "deflections not orthogonal: {da} vs {db}"
        );
        Ok(())
    }

    #[test]
    fn origin_point_depends_on_first_voltage() -> Result<(), GalvoError> {
        // The "distortion effect" [58]: p is NOT constant — steering the
        // first mirror moves the hit point on the second mirror. This is why
        // the paper fits the full geometric model instead of assuming p
        // constant as in [32, 33].
        let g = GalvoParams::nominal();
        let a = g.try_trace(0.0, 0.0)?;
        let b = g.try_trace(2.0, 0.0)?;
        assert!((a.origin - b.origin).norm() > 1e-5);
        Ok(())
    }

    #[test]
    fn cached_axes_paths_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..32 {
            let g = GalvoParams::nominal().perturbed(&mut rng, 2.0, 2.0, 0.05);
            let axes = g.axes();
            let pose = Pose::new(
                axis_angle(v3(0.3, -0.5, 0.81).normalized(), 0.7),
                v3(0.4, -1.2, 2.0),
            );
            for (v1, v2) in [(0.0, 0.0), (1.3, -2.7), (-9.9, 9.9), (0.123, 4.567)] {
                // Hoisted normalizations reproduce the plain paths exactly.
                assert_eq!(g.trace(v1, v2), g.trace_with(&axes, v1, v2));
                assert_eq!(g.trace_line(v1, v2), g.trace_line_with(&axes, v1, v2));
                // Field-subset world transform == full transform, bitwise.
                let full = g.transformed(&pose).second_mirror_plane(v2);
                let subset = g.second_mirror_plane_world(&pose, v2);
                assert_eq!(full.point, subset.point);
                assert_eq!(full.normal, subset.normal);
            }
        }
    }

    #[test]
    fn param_vec_roundtrip() {
        let g = GalvoParams::nominal();
        let v = g.to_vec();
        assert_eq!(v.len(), N_PARAMS);
        let g2 = GalvoParams::from_vec(&v);
        assert_eq!(g, g2);
    }

    #[test]
    fn transformed_commutes_with_trace() -> Result<(), GalvoError> {
        use cyclops_geom::rotation::axis_angle as aa;
        let g = GalvoParams::nominal();
        let pose = Pose::new(aa(v3(0.1, 0.9, 0.2).normalized(), 0.6), v3(1.0, 2.0, 3.0));
        let gt = g.transformed(&pose);
        let (v1, v2) = (0.7, -1.2);
        let direct = pose.apply_ray(&g.try_trace(v1, v2)?);
        let via = gt.try_trace(v1, v2)?;
        assert!((direct.origin - via.origin).norm() < 1e-12);
        assert!((direct.dir - via.dir).norm() < 1e-12);
        Ok(())
    }

    #[test]
    fn perturbed_is_close_but_not_equal() -> Result<(), GalvoError> {
        let mut rng = StdRng::seed_from_u64(7);
        let g = GalvoParams::nominal();
        let p = g.perturbed(&mut rng, 1.0, 1.0, 0.02);
        assert_ne!(g, p);
        // Still a working galvo with a similar rest beam.
        let out = p.try_trace(0.0, 0.0)?;
        assert!(out.dir.angle_to(Vec3::Z) < deg_to_rad(10.0));
        Ok(())
    }

    #[test]
    fn second_mirror_plane_tracks_voltage() {
        let g = GalvoParams::nominal();
        let p0 = g.second_mirror_plane(0.0);
        let p1 = g.second_mirror_plane(1.5);
        assert!((p0.normal.angle_to(p1.normal) - 1.5 * g.theta1).abs() < 1e-9);
        assert_eq!(p0.point, p1.point);
    }

    #[test]
    fn sim_quantizes_and_clamps() {
        let mut sim = GalvoSim::new(GalvoParams::nominal(), GalvoSimConfig::default());
        sim.command(0.12345, 99.0);
        let (v1, v2) = sim.voltages();
        assert!((v2 - VOLT_MAX).abs() < 1e-12, "clamped to +10 V");
        let step = sim.cfg.dac_step_v;
        assert!(
            (v1 / step - (v1 / step).round()).abs() < 1e-9,
            "on DAC grid"
        );
    }

    #[test]
    fn sim_settle_time_model() {
        let mut sim = GalvoSim::new(GalvoParams::nominal(), GalvoSimConfig::default());
        let t_small = sim.command(0.01, 0.0);
        assert!(
            (300e-6..1e-3).contains(&t_small),
            "small step ~300 µs, got {t_small}"
        );
        let t_large = sim.command(10.0, 0.0);
        assert!(t_large > t_small, "large steps slew");
        let t_none = sim.command(10.0, 0.0);
        assert_eq!(t_none, 0.0, "no movement, no settle");
    }

    #[test]
    fn sim_noise_is_small_and_zero_mean() -> Result<(), GalvoError> {
        let mut sim = GalvoSim::new(GalvoParams::nominal(), GalvoSimConfig::default());
        sim.command(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let ideal = sim.truth.try_trace(sim.voltages().0, sim.voltages().1)?;
        let mut max_dev: f64 = 0.0;
        let mut mean = Vec3::ZERO;
        const N: usize = 500;
        for _ in 0..N {
            let r = sim.try_output_ray(&mut rng)?;
            max_dev = max_dev.max(r.dir.angle_to(ideal.dir));
            mean += r.dir;
        }
        mean /= N as f64;
        // 10 µrad mirror noise → ≤ ~100 µrad worst-case optical deviation.
        assert!(max_dev < 100e-6, "max dev {max_dev}");
        assert!(
            mean.normalized().angle_to(ideal.dir) < 5e-6,
            "bias too large"
        );
        Ok(())
    }

    #[test]
    fn ideal_sim_is_exact() -> Result<(), GalvoError> {
        let mut sim = GalvoSim::new(GalvoParams::nominal(), GalvoSimConfig::ideal());
        sim.command(0.123456789, -0.2);
        let (v1, v2) = sim.voltages();
        assert_eq!(v1, 0.123456789);
        let mut rng = StdRng::seed_from_u64(0);
        let out = sim.try_output_ray(&mut rng)?;
        let exact = sim.truth.try_trace(v1, v2)?;
        assert!((out.dir - exact.dir).norm() < 1e-15);
        Ok(())
    }

    #[test]
    fn trace_none_for_degenerate_parameters() {
        let mut g = GalvoParams::nominal();
        // Point the input beam away from the first mirror.
        g.x0 = -g.x0;
        assert!(g.trace(0.0, 0.0).is_none());
        // The strict API names the failure instead.
        assert_eq!(g.try_trace(0.0, 0.0), Err(GalvoError::DegenerateBeamPath));
        // Line tracing is total over mirror *lines*, so the inverted beam
        // still intersects; only a beam parallel to the mirror plane
        // degenerates it.
        assert!(g.try_trace_line(0.0, 0.0).is_ok());
        let mut gp = GalvoParams::nominal();
        gp.x0 = v3(1.0, 1.0, 0.0); // perpendicular to n1 ⇒ parallel to mirror 1
        assert_eq!(
            gp.try_trace_line(0.0, 0.0),
            Err(GalvoError::DegenerateBeamPath)
        );
    }

    #[test]
    fn try_command_rejects_out_of_range_without_moving() {
        let mut sim = GalvoSim::new(GalvoParams::nominal(), GalvoSimConfig::default());
        let err = sim.try_command(0.0, 99.0).unwrap_err();
        assert_eq!(
            err,
            GalvoError::VoltageOutOfRange {
                mirror: 2,
                volts: 99.0
            }
        );
        assert_eq!(sim.voltages(), (0.0, 0.0), "mirrors must not move");
        // NaN is rejected, not quantized.
        assert!(sim.try_command(f64::NAN, 0.0).is_err());
        // In-range commands behave exactly like `command`.
        assert!(sim.try_command(0.5, -0.5).is_ok());
    }

    #[test]
    fn try_trace_rejects_out_of_range_voltage() {
        let g = GalvoParams::nominal();
        assert_eq!(
            g.try_trace(-10.5, 0.0),
            Err(GalvoError::VoltageOutOfRange {
                mirror: 1,
                volts: -10.5
            })
        );
        let msg = g.try_trace(-10.5, 0.0).unwrap_err().to_string();
        assert!(msg.contains("mirror 1"), "display names the channel: {msg}");
    }
}
