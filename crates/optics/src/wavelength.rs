//! Multi-wavelength (WDM) links — the §6 path to 40 Gbps+.
//!
//! "For higher-bandwidth (40Gbps+) links, our designed TP mechanism remains
//! unchanged; however, the link would likely need customized collimators
//! that can efficiently capture a range of wavelengths *because* the
//! high-bandwidth single-strand transceivers use multiple wavelengths
//! \[12, 13\]." (§6)
//!
//! This module models that: a QSFP-class module carries several lanes on a
//! CWDM grid, and the receive collimator adds a *chromatic* coupling penalty
//! growing with each lane's distance from the lens's design wavelength — a
//! simple singlet/aspheric has focal shift ∝ Δλ, an achromatic (custom)
//! design does not. The link is up only when **every** lane clears its
//! sensitivity, so chromatic penalty eats the margin of the outer lanes
//! first.

use crate::coupling::LinkDesign;

/// The CWDM4 lane grid used by 100GBASE-LR4-class modules (nm).
pub const CWDM4_LANES_NM: [f64; 4] = [1271.0, 1291.0, 1311.0, 1331.0];

/// Chromatic behaviour of a receive collimator.
#[derive(Debug, Clone, Copy)]
pub struct ChromaticCollimator {
    /// Wavelength the lens is focused for (nm).
    pub design_wavelength_nm: f64,
    /// Coupling penalty per nm² of detuning (dB/nm²). The focal shift of a
    /// singlet grows linearly with Δλ and the defocused-spot coupling loss
    /// quadratically with the shift.
    pub chromatic_db_per_nm2: f64,
}

impl ChromaticCollimator {
    /// A commodity aspheric collimator (the F810/CFC class the prototypes
    /// use): fine at its design wavelength, several dB down 20–30 nm away.
    pub fn commodity(design_wavelength_nm: f64) -> ChromaticCollimator {
        ChromaticCollimator {
            design_wavelength_nm,
            chromatic_db_per_nm2: 0.012,
        }
    }

    /// A custom achromatic collimator (the §6 ask): near-flat response over
    /// the CWDM band.
    pub fn custom_achromat(design_wavelength_nm: f64) -> ChromaticCollimator {
        ChromaticCollimator {
            design_wavelength_nm,
            chromatic_db_per_nm2: 0.0004,
        }
    }

    /// Extra coupling loss (dB ≤ 0) for a lane at `wavelength_nm`.
    pub fn lane_penalty_db(&self, wavelength_nm: f64) -> f64 {
        let d = wavelength_nm - self.design_wavelength_nm;
        -self.chromatic_db_per_nm2 * d * d
    }
}

/// A WDM link: a base (single-wavelength-calibrated) link design plus the
/// lane grid and the receive collimator's chromatic behaviour.
#[derive(Debug, Clone)]
pub struct WdmLink {
    /// The underlying link design (beam geometry, budget, coupling).
    pub design: LinkDesign,
    /// Lane wavelengths (nm).
    pub lanes: Vec<f64>,
    /// Receive collimator chromatic model.
    pub collimator: ChromaticCollimator,
}

impl WdmLink {
    /// A 100G CWDM4 link over the Cyclops diverging-beam geometry.
    pub fn hundred_g_cwdm4(w_rx: f64, range: f64, collimator: ChromaticCollimator) -> WdmLink {
        use crate::amplifier::Edfa;
        use crate::coupling::CouplingModel;
        use crate::sfp::SfpSpec;
        let launch_radius = 2.0e-3;
        let theta_half = ((w_rx * w_rx - launch_radius * launch_radius).max(0.0)).sqrt() / range;
        // O-band lanes need an O-band amplifier (the prototypes' erbium
        // EDFA is C-band only): a +15 dB SOA.
        let design = LinkDesign {
            sfp: SfpSpec::qsfp28_100g(),
            edfa: Edfa::o_band_soa(),
            launch_radius,
            theta_half,
            coupling: CouplingModel::adjustable_25g(),
            nominal_range: range,
        };
        WdmLink {
            design,
            lanes: CWDM4_LANES_NM.to_vec(),
            collimator,
        }
    }

    /// Per-lane link margin (dB) at perfect alignment over the nominal
    /// range: the single-wavelength margin plus the lane's chromatic
    /// penalty. Lane TX power is the module power split across lanes.
    pub fn lane_margins_db(&self) -> Vec<(f64, f64)> {
        let n = self.lanes.len() as f64;
        let split_db = 10.0 * n.log10();
        let base = self.design.nominal_margin_db() - split_db;
        self.lanes
            .iter()
            .map(|&nm| (nm, base + self.collimator.lane_penalty_db(nm)))
            .collect()
    }

    /// True if every lane clears sensitivity — a multi-lane module only
    /// links up when all lanes do.
    pub fn link_closes(&self) -> bool {
        self.lane_margins_db().iter().all(|&(_, m)| m >= 0.0)
    }

    /// The worst lane's margin (dB): the link's effective margin.
    pub fn worst_lane_margin_db(&self) -> f64 {
        self.lane_margins_db()
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chromatic_penalty_shape() {
        let c = ChromaticCollimator::commodity(1311.0);
        assert_eq!(c.lane_penalty_db(1311.0), 0.0);
        let p20 = c.lane_penalty_db(1331.0);
        let p40 = c.lane_penalty_db(1271.0);
        assert!(p20 < 0.0);
        // Quadratic: 40 nm detuning costs 4× the 20 nm penalty.
        assert!((p40 / p20 - 4.0).abs() < 1e-9);
        // Commodity: ~5 dB at 20 nm, custom: negligible.
        assert!((-8.0..-2.0).contains(&p20), "penalty {p20}");
        let custom = ChromaticCollimator::custom_achromat(1311.0);
        assert!(custom.lane_penalty_db(1331.0) > -0.3);
    }

    #[test]
    fn commodity_collimator_kills_outer_lanes() {
        // The §6 claim, quantified: with a commodity collimator the outer
        // CWDM lanes lose the link margin; a custom achromat keeps all four.
        let commodity =
            WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::commodity(1311.0));
        let custom =
            WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::custom_achromat(1311.0));
        assert!(custom.link_closes(), "{:?}", custom.lane_margins_db());
        assert!(
            !commodity.link_closes(),
            "commodity should fail an outer lane: {:?}",
            commodity.lane_margins_db()
        );
        // And specifically it is an *outer* lane that fails.
        let worst = commodity
            .lane_margins_db()
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(
            worst.0 == 1271.0 || worst.0 == 1331.0,
            "worst lane {worst:?}"
        );
    }

    #[test]
    fn lane_split_costs_6db_for_four_lanes() {
        let link =
            WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::custom_achromat(1311.0));
        let single = link.design.nominal_margin_db();
        let center_lane = link
            .lane_margins_db()
            .into_iter()
            .find(|&(nm, _)| nm == 1311.0)
            .unwrap()
            .1;
        assert!(((single - center_lane) - 10.0 * 4f64.log10()).abs() < 0.3);
    }

    #[test]
    fn worst_lane_margin_is_min() {
        let link = WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::commodity(1311.0));
        let min = link
            .lane_margins_db()
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(link.worst_lane_margin_db(), min);
    }
}
