//! Gaussian-beam geometry.
//!
//! §5.1 compares two link designs: a **collimated** beam (near-zero
//! divergence, width set by a beam expander) and a **diverging** beam whose
//! divergence is tuned with an adjustable collimator so the beam reaches a
//! chosen diameter (16–20 mm) at the receiver. [`BeamState`] models both with
//! one parameterization: a chief ray, a waist radius/offset, and a
//! half-divergence angle.

use cyclops_geom::{Ray, Vec3};

/// A propagating quasi-Gaussian beam.
///
/// The intensity profile is Gaussian with 1/e² radius following the
/// hyperbola `w(z) = sqrt(w_waist² + (θ·(z − z_waist))²)`, where `z` is the
/// distance along the chief ray from its origin and `z_waist = −waist_back`
/// (the waist sits `waist_back` metres *behind* the current chief-ray
/// origin). The *virtual source* is the point the far-field rays appear to
/// emanate from; for a collimated beam it recedes to infinity. The
/// source-distance distinction drives the Table-1 asymmetry between TX and
/// RX angular tolerance (see [`crate::coupling`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamState {
    /// Chief ray: current reference point and propagation direction.
    pub chief: Ray,
    /// 1/e² intensity radius at the waist (metres).
    pub waist_radius: f64,
    /// Half-divergence angle (radians).
    pub theta_half: f64,
    /// Path distance from the chief-ray origin *back* to the waist (metres,
    /// ≥ 0). Zero for a freshly launched beam.
    pub waist_back: f64,
    /// Total optical power carried by the beam, in dBm.
    pub power_dbm: f64,
}

impl BeamState {
    /// Creates a freshly launched beam: waist at the chief-ray origin.
    pub fn new(chief: Ray, waist_radius: f64, theta_half: f64, power_dbm: f64) -> BeamState {
        assert!(waist_radius > 0.0, "beam must have positive waist radius");
        assert!(theta_half >= 0.0, "divergence cannot be negative");
        BeamState {
            chief,
            waist_radius,
            theta_half,
            waist_back: 0.0,
            power_dbm,
        }
    }

    /// 1/e² radius after travelling distance `d` beyond the chief-ray origin.
    #[inline]
    pub fn radius_at(&self, d: f64) -> f64 {
        let z = d + self.waist_back;
        (self.waist_radius * self.waist_radius + (self.theta_half * z) * (self.theta_half * z))
            .sqrt()
    }

    /// The virtual source point: where backwards-extrapolated far-field rays
    /// converge — at `w_waist/θ` behind the waist.
    ///
    /// `None` for a (near-)collimated beam; callers should use
    /// [`BeamState::local_ray_dir`], which handles that limit.
    pub fn virtual_source(&self) -> Option<Vec3> {
        if self.theta_half < 1e-9 {
            return None;
        }
        let behind = self.waist_back + self.waist_radius / self.theta_half;
        Some(self.chief.origin - self.chief.dir * behind)
    }

    /// Direction of the local ray passing through point `p` — the direction
    /// light actually travels at `p`.
    pub fn local_ray_dir(&self, p: Vec3) -> Vec3 {
        match self.virtual_source() {
            Some(src) => (p - src).normalized(),
            None => self.chief.dir,
        }
    }

    /// Applies a power change (gain or loss) in dB, returning the new beam.
    pub fn attenuated(mut self, db: f64) -> BeamState {
        self.power_dbm += db;
        self
    }

    /// The beam after travelling distance `d`: exact (the underlying
    /// hyperbola is preserved via the waist offset).
    pub fn propagated(&self, d: f64) -> BeamState {
        BeamState {
            chief: Ray::new(self.chief.point_at(d), self.chief.dir),
            waist_radius: self.waist_radius,
            theta_half: self.theta_half,
            waist_back: self.waist_back + d,
            power_dbm: self.power_dbm,
        }
    }

    /// The beam after its path is folded by a mirror: the chief ray becomes
    /// `reflected` (origin at the reflection point) and the optical path
    /// travelled so far grows by `path_len`. Profile and power carry over —
    /// mirrors are treated as lossless here; use
    /// [`crate::mirror::clip_loss_db`] + [`BeamState::attenuated`] to account
    /// for clipping.
    pub fn folded(&self, reflected: Ray, path_len: f64) -> BeamState {
        BeamState {
            chief: reflected,
            waist_radius: self.waist_radius,
            theta_half: self.theta_half,
            waist_back: self.waist_back + path_len,
            power_dbm: self.power_dbm,
        }
    }
}

/// Fraction of a Gaussian beam's power (1/e² radius `w`) passing through a
/// circular aperture of radius `a` whose centre is offset laterally by
/// `delta` from the beam centre.
///
/// Evaluated by numerical integration in polar coordinates over the aperture
/// disk (the offset case has no elementary closed form). For `delta = 0` it
/// matches the analytic `1 − exp(−2a²/w²)`.
pub fn capture_fraction(w: f64, delta: f64, a: f64) -> f64 {
    assert!(w > 0.0 && a >= 0.0 && delta >= 0.0);
    if a == 0.0 {
        return 0.0;
    }
    if delta < 0.02 * w {
        // Sub-2 % offsets: centred closed form plus the analytic O(δ²) term
        //   P(δ) ≈ (1 − E) − 4 δ² a² E / w⁴,   E = e^(−2a²/w²),
        // which matches the quadrature branch to O((δ/w)⁴) ≈ 3e-8 at the
        // boundary, so capture stays monotone in offset across the switch.
        // This is the hot case: every aligned-link power evaluation in the
        // simulators lands here, and it is ~1000× the speed of the
        // quadrature. Still exactly monotone in `a`: the correction's slope
        // in `a` is at most (δ/w)² ≪ 1 of the leading term's.
        let e = (-2.0 * a * a / (w * w)).exp();
        return 1.0 - e - 4.0 * delta * delta * a * a * e / (w * w * w * w);
    }
    // If the aperture is so far into the tail that nothing couples, skip the
    // integral (and avoid exp underflow noise).
    if delta > 8.0 * w + a {
        return 0.0;
    }
    // Integrate in aperture-centred radial coordinates with the angular part
    // in closed form (ring average of a displaced Gaussian is a modified
    // Bessel function):
    //   P(a) = (4/w²) ∫₀^a ρ · exp(−2(ρ−δ)²/w²) · I₀ₑ(4ρδ/w²) dρ
    // where I₀ₑ(x) = e⁻ˣ I₀(x). The integrand is smooth, so the midpoint
    // rule converges at O(h²) with an error that varies smoothly in δ —
    // offset-monotonicity holds far below the 1e-6 the tests ask for.
    // Crucially the node grid depends only on w and δ, never on the aperture
    // radius: growing `a` only adds non-negative terms (plus a final partial
    // cell whose weight grows with `a`), so capture is non-decreasing in
    // aperture size down to the last bit.
    let r_max = delta + 8.0 * w;
    let n = ((128.0 * r_max / w).ceil() as usize).clamp(64, 20_000);
    let dr = r_max / n as f64;
    // Two-point Gauss–Legendre per cell: O(h⁴) on this smooth integrand,
    // positive weights, and each cell integrates independently — all three
    // properties the monotonicity argument above needs.
    const GL_OFF: f64 = 0.288_675_134_594_812_9; // 1/(2√3)
    let f = |rho: f64| {
        rho * (-2.0 * (rho - delta) * (rho - delta) / (w * w)).exp()
            * bessel_i0_scaled(4.0 * rho * delta / (w * w))
    };
    let mut sum = 0.0;
    for i in 0..n {
        let lo = i as f64 * dr;
        if lo >= a {
            break;
        }
        // Last cell may be cut by the aperture edge: apply the same rule to
        // the partial cell, whose width grows continuously with `a`.
        let hi = (lo + dr).min(a);
        let (width, mid) = (hi - lo, 0.5 * (lo + hi));
        let s = width * GL_OFF;
        sum += 0.5 * width * (f(mid - s) + f(mid + s));
    }
    (4.0 / (w * w) * sum).clamp(0.0, 1.0)
}

/// Scaled modified Bessel function of the first kind, e⁻ˣ I₀(x), for x ≥ 0.
///
/// Abramowitz & Stegun 9.8.1/9.8.2 polynomial fits; |relative error| < 2e-7
/// over the full range, which is far inside the quadrature error budget of
/// [`capture_fraction`].
fn bessel_i0_scaled(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    if x < 3.75 {
        let t = x / 3.75;
        let t2 = t * t;
        let i0 = 1.0
            + t2 * (3.5156229
                + t2 * (3.0899424
                    + t2 * (1.2067492 + t2 * (0.2659732 + t2 * (0.0360768 + t2 * 0.0045813)))));
        i0 * (-x).exp()
    } else {
        let t = 3.75 / x;
        (0.39894228
            + t * (0.01328592
                + t * (0.00225319
                    + t * (-0.00157565
                        + t * (0.00916281
                            + t * (-0.02057706
                                + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
            / x.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    fn test_beam(theta: f64) -> BeamState {
        BeamState::new(Ray::new(Vec3::ZERO, Vec3::Z), 0.005, theta, 20.0)
    }

    #[test]
    fn radius_grows_with_divergence() {
        let b = test_beam(0.003); // ~3 mrad half divergence
        assert!((b.radius_at(0.0) - 0.005).abs() < 1e-12);
        let w = b.radius_at(1.75);
        // sqrt(5mm² + 5.25mm²) ≈ 7.25 mm
        assert!((w - (0.005f64.powi(2) + 0.00525f64.powi(2)).sqrt()).abs() < 1e-12);
        // Collimated beam barely grows.
        let c = test_beam(1e-5);
        assert!(c.radius_at(2.0) < 0.0051);
    }

    #[test]
    fn virtual_source_position() {
        let b = test_beam(0.005); // w/θ = 1 m behind launch
        let src = b.virtual_source().unwrap();
        assert!((src - v3(0.0, 0.0, -1.0)).norm() < 1e-12);
        assert!(test_beam(0.0).virtual_source().is_none());
    }

    #[test]
    fn local_ray_dir_diverging_vs_collimated() {
        let b = test_beam(0.005);
        // Ray through a point 10 cm off axis at z = 1 m tilts outwards.
        let dir = b.local_ray_dir(v3(0.1, 0.0, 1.0));
        assert!(dir.x > 0.0);
        // Collimated: always the chief direction.
        let c = test_beam(0.0);
        assert_eq!(c.local_ray_dir(v3(0.1, 0.0, 1.0)), Vec3::Z);
    }

    #[test]
    fn propagation_is_exact() {
        let b = test_beam(0.004);
        let moved = b.propagated(1.0);
        assert!((moved.radius_at(0.0) - b.radius_at(1.0)).abs() < 1e-15);
        // Radius continues on the same hyperbola — stepping is exact.
        assert!((moved.radius_at(0.5) - b.radius_at(1.5)).abs() < 1e-15);
        // Virtual source does not move.
        let s0 = b.virtual_source().unwrap();
        let s1 = moved.virtual_source().unwrap();
        assert!((s0 - s1).norm() < 1e-12);
    }

    #[test]
    fn folding_preserves_path_length() {
        let b = test_beam(0.004);
        // Fold at 1 m onto a new direction.
        let folded = b.folded(Ray::new(v3(0.0, 0.0, 1.0), Vec3::X), 1.0);
        assert!((folded.radius_at(0.75) - b.radius_at(1.75)).abs() < 1e-15);
        assert_eq!(folded.power_dbm, b.power_dbm);
    }

    #[test]
    fn capture_centered_matches_closed_form() {
        for (w, a) in [(0.01, 0.005), (0.008, 0.008), (0.02, 0.004)] {
            let got = capture_fraction(w, 0.0, a);
            let expect = 1.0 - (-2.0 * a * a / (w * w)).exp();
            assert!((got - expect).abs() < 1e-9, "w={w} a={a}");
        }
    }

    #[test]
    fn capture_offset_matches_integral_properties() {
        let w = 0.01;
        let a = 0.005;
        let c0 = capture_fraction(w, 0.0, a);
        let c1 = capture_fraction(w, 0.005, a);
        let c2 = capture_fraction(w, 0.015, a);
        // Monotone decreasing in offset.
        assert!(c0 > c1 && c1 > c2);
        // Far tail is nearly zero.
        assert!(capture_fraction(w, 0.1, a) < 1e-12);
        // All within [0, 1].
        for c in [c0, c1, c2] {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn capture_offset_numerical_accuracy() {
        // Cross-check against a brute-force Cartesian integration.
        let (w, delta, a) = (0.01, 0.006, 0.005);
        let n = 400;
        let mut sum = 0.0;
        let h = 2.0 * a / n as f64;
        for i in 0..n {
            for j in 0..n {
                let x = -a + (i as f64 + 0.5) * h;
                let y = -a + (j as f64 + 0.5) * h;
                if x * x + y * y <= a * a {
                    let r2 = (x + delta) * (x + delta) + y * y;
                    sum += (-2.0 * r2 / (w * w)).exp();
                }
            }
        }
        let brute = 2.0 / (std::f64::consts::PI * w * w) * sum * h * h;
        let fast = capture_fraction(w, delta, a);
        assert!((fast - brute).abs() < 2e-3, "fast {fast} brute {brute}");
    }

    #[test]
    fn wider_beam_captures_less() {
        let a = 0.005;
        let narrow = capture_fraction(0.008, 0.0, a);
        let wide = capture_fraction(0.02, 0.0, a);
        assert!(narrow > wide);
    }

    #[test]
    fn attenuation_changes_power_only() {
        let b = test_beam(0.001);
        let b2 = b.attenuated(-30.0);
        assert!((b2.power_dbm - (b.power_dbm - 30.0)).abs() < 1e-12);
        assert_eq!(b2.waist_radius, b.waist_radius);
    }
}
