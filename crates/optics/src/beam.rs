//! Gaussian-beam geometry.
//!
//! §5.1 compares two link designs: a **collimated** beam (near-zero
//! divergence, width set by a beam expander) and a **diverging** beam whose
//! divergence is tuned with an adjustable collimator so the beam reaches a
//! chosen diameter (16–20 mm) at the receiver. [`BeamState`] models both with
//! one parameterization: a chief ray, a waist radius/offset, and a
//! half-divergence angle.

use cyclops_geom::{Ray, Vec3};

/// A propagating quasi-Gaussian beam.
///
/// The intensity profile is Gaussian with 1/e² radius following the
/// hyperbola `w(z) = sqrt(w_waist² + (θ·(z − z_waist))²)`, where `z` is the
/// distance along the chief ray from its origin and `z_waist = −waist_back`
/// (the waist sits `waist_back` metres *behind* the current chief-ray
/// origin). The *virtual source* is the point the far-field rays appear to
/// emanate from; for a collimated beam it recedes to infinity. The
/// source-distance distinction drives the Table-1 asymmetry between TX and
/// RX angular tolerance (see [`crate::coupling`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamState {
    /// Chief ray: current reference point and propagation direction.
    pub chief: Ray,
    /// 1/e² intensity radius at the waist (metres).
    pub waist_radius: f64,
    /// Half-divergence angle (radians).
    pub theta_half: f64,
    /// Path distance from the chief-ray origin *back* to the waist (metres,
    /// ≥ 0). Zero for a freshly launched beam.
    pub waist_back: f64,
    /// Total optical power carried by the beam, in dBm.
    pub power_dbm: f64,
}

impl BeamState {
    /// Creates a freshly launched beam: waist at the chief-ray origin.
    pub fn new(chief: Ray, waist_radius: f64, theta_half: f64, power_dbm: f64) -> BeamState {
        assert!(waist_radius > 0.0, "beam must have positive waist radius");
        assert!(theta_half >= 0.0, "divergence cannot be negative");
        BeamState {
            chief,
            waist_radius,
            theta_half,
            waist_back: 0.0,
            power_dbm,
        }
    }

    /// 1/e² radius after travelling distance `d` beyond the chief-ray origin.
    #[inline]
    pub fn radius_at(&self, d: f64) -> f64 {
        let z = d + self.waist_back;
        (self.waist_radius * self.waist_radius + (self.theta_half * z) * (self.theta_half * z))
            .sqrt()
    }

    /// The virtual source point: where backwards-extrapolated far-field rays
    /// converge — at `w_waist/θ` behind the waist.
    ///
    /// `None` for a (near-)collimated beam; callers should use
    /// [`BeamState::local_ray_dir`], which handles that limit.
    pub fn virtual_source(&self) -> Option<Vec3> {
        if self.theta_half < 1e-9 {
            return None;
        }
        let behind = self.waist_back + self.waist_radius / self.theta_half;
        Some(self.chief.origin - self.chief.dir * behind)
    }

    /// Direction of the local ray passing through point `p` — the direction
    /// light actually travels at `p`.
    pub fn local_ray_dir(&self, p: Vec3) -> Vec3 {
        match self.virtual_source() {
            Some(src) => (p - src).normalized(),
            None => self.chief.dir,
        }
    }

    /// Applies a power change (gain or loss) in dB, returning the new beam.
    pub fn attenuated(mut self, db: f64) -> BeamState {
        self.power_dbm += db;
        self
    }

    /// The beam after travelling distance `d`: exact (the underlying
    /// hyperbola is preserved via the waist offset).
    pub fn propagated(&self, d: f64) -> BeamState {
        BeamState {
            chief: Ray::new(self.chief.point_at(d), self.chief.dir),
            waist_radius: self.waist_radius,
            theta_half: self.theta_half,
            waist_back: self.waist_back + d,
            power_dbm: self.power_dbm,
        }
    }

    /// The beam after its path is folded by a mirror: the chief ray becomes
    /// `reflected` (origin at the reflection point) and the optical path
    /// travelled so far grows by `path_len`. Profile and power carry over —
    /// mirrors are treated as lossless here; use
    /// [`crate::mirror::clip_loss_db`] + [`BeamState::attenuated`] to account
    /// for clipping.
    pub fn folded(&self, reflected: Ray, path_len: f64) -> BeamState {
        BeamState {
            chief: reflected,
            waist_radius: self.waist_radius,
            theta_half: self.theta_half,
            waist_back: self.waist_back + path_len,
            power_dbm: self.power_dbm,
        }
    }
}

/// Fraction of a Gaussian beam's power (1/e² radius `w`) passing through a
/// circular aperture of radius `a` whose centre is offset laterally by
/// `delta` from the beam centre.
///
/// Evaluated by numerical integration in polar coordinates over the aperture
/// disk (the offset case has no elementary closed form). For `delta = 0` it
/// matches the analytic `1 − exp(−2a²/w²)`.
pub fn capture_fraction(w: f64, delta: f64, a: f64) -> f64 {
    assert!(w > 0.0 && a >= 0.0 && delta >= 0.0);
    if a == 0.0 {
        return 0.0;
    }
    if delta < 0.02 * w {
        // Sub-2 % offsets perturb the encircled power by O((δ/w)²) < 4e-4
        // relative; the centred closed form is exact enough and ~1000× the
        // speed of the quadrature (this is the hot case: every aligned-link
        // power evaluation in the simulators).
        return 1.0 - (-2.0 * a * a / (w * w)).exp();
    }
    // If the aperture is so far into the tail that nothing couples, skip the
    // integral (and avoid exp underflow noise).
    if delta > 8.0 * w + a {
        return 0.0;
    }
    // Integrate I(r) = (2/(π w²)) exp(−2 r²/w²) over the disk centred at
    // distance `delta` from the beam axis, in polar coords (ρ, ψ) about the
    // aperture centre. Midpoint rule; 48×64 is ample for the smooth kernel.
    const NR: usize = 48;
    const NA: usize = 64;
    let norm = 2.0 / (std::f64::consts::PI * w * w);
    let mut sum = 0.0;
    for i in 0..NR {
        let rho = (i as f64 + 0.5) / NR as f64 * a;
        let mut ring = 0.0;
        for j in 0..NA {
            let psi = (j as f64 + 0.5) / NA as f64 * 2.0 * std::f64::consts::PI;
            let r2 = rho * rho + delta * delta - 2.0 * rho * delta * psi.cos();
            ring += (-2.0 * r2 / (w * w)).exp();
        }
        sum += ring * rho;
    }
    let d_rho = a / NR as f64;
    let d_psi = 2.0 * std::f64::consts::PI / NA as f64;
    (norm * sum * d_rho * d_psi).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    fn test_beam(theta: f64) -> BeamState {
        BeamState::new(Ray::new(Vec3::ZERO, Vec3::Z), 0.005, theta, 20.0)
    }

    #[test]
    fn radius_grows_with_divergence() {
        let b = test_beam(0.003); // ~3 mrad half divergence
        assert!((b.radius_at(0.0) - 0.005).abs() < 1e-12);
        let w = b.radius_at(1.75);
        // sqrt(5mm² + 5.25mm²) ≈ 7.25 mm
        assert!((w - (0.005f64.powi(2) + 0.00525f64.powi(2)).sqrt()).abs() < 1e-12);
        // Collimated beam barely grows.
        let c = test_beam(1e-5);
        assert!(c.radius_at(2.0) < 0.0051);
    }

    #[test]
    fn virtual_source_position() {
        let b = test_beam(0.005); // w/θ = 1 m behind launch
        let src = b.virtual_source().unwrap();
        assert!((src - v3(0.0, 0.0, -1.0)).norm() < 1e-12);
        assert!(test_beam(0.0).virtual_source().is_none());
    }

    #[test]
    fn local_ray_dir_diverging_vs_collimated() {
        let b = test_beam(0.005);
        // Ray through a point 10 cm off axis at z = 1 m tilts outwards.
        let dir = b.local_ray_dir(v3(0.1, 0.0, 1.0));
        assert!(dir.x > 0.0);
        // Collimated: always the chief direction.
        let c = test_beam(0.0);
        assert_eq!(c.local_ray_dir(v3(0.1, 0.0, 1.0)), Vec3::Z);
    }

    #[test]
    fn propagation_is_exact() {
        let b = test_beam(0.004);
        let moved = b.propagated(1.0);
        assert!((moved.radius_at(0.0) - b.radius_at(1.0)).abs() < 1e-15);
        // Radius continues on the same hyperbola — stepping is exact.
        assert!((moved.radius_at(0.5) - b.radius_at(1.5)).abs() < 1e-15);
        // Virtual source does not move.
        let s0 = b.virtual_source().unwrap();
        let s1 = moved.virtual_source().unwrap();
        assert!((s0 - s1).norm() < 1e-12);
    }

    #[test]
    fn folding_preserves_path_length() {
        let b = test_beam(0.004);
        // Fold at 1 m onto a new direction.
        let folded = b.folded(Ray::new(v3(0.0, 0.0, 1.0), Vec3::X), 1.0);
        assert!((folded.radius_at(0.75) - b.radius_at(1.75)).abs() < 1e-15);
        assert_eq!(folded.power_dbm, b.power_dbm);
    }

    #[test]
    fn capture_centered_matches_closed_form() {
        for (w, a) in [(0.01, 0.005), (0.008, 0.008), (0.02, 0.004)] {
            let got = capture_fraction(w, 0.0, a);
            let expect = 1.0 - (-2.0 * a * a / (w * w)).exp();
            assert!((got - expect).abs() < 1e-9, "w={w} a={a}");
        }
    }

    #[test]
    fn capture_offset_matches_integral_properties() {
        let w = 0.01;
        let a = 0.005;
        let c0 = capture_fraction(w, 0.0, a);
        let c1 = capture_fraction(w, 0.005, a);
        let c2 = capture_fraction(w, 0.015, a);
        // Monotone decreasing in offset.
        assert!(c0 > c1 && c1 > c2);
        // Far tail is nearly zero.
        assert!(capture_fraction(w, 0.1, a) < 1e-12);
        // All within [0, 1].
        for c in [c0, c1, c2] {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn capture_offset_numerical_accuracy() {
        // Cross-check against a brute-force Cartesian integration.
        let (w, delta, a) = (0.01, 0.006, 0.005);
        let n = 400;
        let mut sum = 0.0;
        let h = 2.0 * a / n as f64;
        for i in 0..n {
            for j in 0..n {
                let x = -a + (i as f64 + 0.5) * h;
                let y = -a + (j as f64 + 0.5) * h;
                if x * x + y * y <= a * a {
                    let r2 = (x + delta) * (x + delta) + y * y;
                    sum += (-2.0 * r2 / (w * w)).exp();
                }
            }
        }
        let brute = 2.0 / (std::f64::consts::PI * w * w) * sum * h * h;
        let fast = capture_fraction(w, delta, a);
        assert!((fast - brute).abs() < 2e-3, "fast {fast} brute {brute}");
    }

    #[test]
    fn wider_beam_captures_less() {
        let a = 0.005;
        let narrow = capture_fraction(0.008, 0.0, a);
        let wide = capture_fraction(0.02, 0.0, a);
        assert!(narrow > wide);
    }

    #[test]
    fn attenuation_changes_power_only() {
        let b = test_beam(0.001);
        let b2 = b.attenuated(-30.0);
        assert!((b2.power_dbm - (b.power_dbm - 30.0)).abs() < 1e-12);
        assert_eq!(b2.waist_radius, b.waist_radius);
    }
}
