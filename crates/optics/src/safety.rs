//! Eye-safety classification (IEC 60825-1 \[19\], simplified).
//!
//! §3: "Our prototypes use Class I lasers, with amplifiers used only to
//! compensate for signal attenuation; thus there are no eye-safety concerns."
//! The relevant physics: at 1550 nm the cornea/lens absorb before the retina,
//! so the Class 1 accessible-emission limit (AEL) is ~10 mW for a point
//! source; a *diverging* beam further reduces the power that can enter a
//! 7 mm pupil, raising the effective limit.
//!
//! The classification is evaluated at the **closest human-accessible
//! distance** from the emitter. For Cyclops's ceiling-mounted TX that is of
//! order a metre — the eye-safety envelope is a property of the deployment,
//! not just the device, and the check below makes that explicit (a fact the
//! paper's footnote 12 glosses over).

use crate::beam::capture_fraction;
use crate::power::{dbm_to_mw, mw_to_dbm};

/// Laser safety class (simplified subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaserClass {
    /// Safe under all conditions of normal use.
    Class1,
    /// Safe for the naked eye, hazardous with magnifying optics.
    Class1M,
    /// Hazardous.
    Class3B,
}

/// Class 1 AEL at 1550 nm for a collimated/point-source exposure, in mW
/// (IEC 60825-1 for >10 s exposure in the 1400–4000 nm retina-safe band).
pub const CLASS1_AEL_1550_MW: f64 = 10.0;

/// AEL at 1310 nm, lower than 1550 nm (partial retinal transmission).
pub const CLASS1_AEL_1310_MW: f64 = 1.5;

/// Pupil radius used for the "power through a 7 mm aperture" measurement.
pub const PUPIL_RADIUS_M: f64 = 3.5e-3;

/// Classifies a launched beam at a given closest accessible distance.
///
/// * `launch_dbm` — total launched power;
/// * `w0` — 1/e² radius at the launch aperture;
/// * `theta_half` — half-divergence;
/// * `wavelength_nm` — carrier wavelength;
/// * `access_distance_m` — nearest point a human eye can reach (for a
///   ceiling-mounted TX above a standing user, of order 1 m).
///
/// The accessible emission is the power passing a 7 mm pupil at that
/// distance: a diverging beam spreads beyond the pupil, which is how Cyclops
/// launches 20 dBm and remains Class 1 *in its deployment geometry*.
pub fn classify(
    launch_dbm: f64,
    w0: f64,
    theta_half: f64,
    wavelength_nm: f64,
    access_distance_m: f64,
) -> LaserClass {
    let ael_mw = if wavelength_nm >= 1400.0 {
        CLASS1_AEL_1550_MW
    } else {
        CLASS1_AEL_1310_MW
    };
    let accessible_mw = dbm_to_mw(accessible_emission_dbm(
        launch_dbm,
        w0,
        theta_half,
        access_distance_m,
    ));
    if accessible_mw <= ael_mw {
        LaserClass::Class1
    } else if accessible_mw <= 5.0 * ael_mw && theta_half > 1e-3 {
        // Collecting optics could concentrate a diverging beam.
        LaserClass::Class1M
    } else {
        LaserClass::Class3B
    }
}

/// Accessible emission (dBm) through a 7 mm pupil at the given distance.
pub fn accessible_emission_dbm(
    launch_dbm: f64,
    w0: f64,
    theta_half: f64,
    access_distance_m: f64,
) -> f64 {
    let w_at_eye =
        (w0 * w0 + (theta_half * access_distance_m) * (theta_half * access_distance_m)).sqrt();
    let through_pupil = capture_fraction(w_at_eye, 0.0, PUPIL_RADIUS_M);
    mw_to_dbm(dbm_to_mw(launch_dbm) * through_pupil)
}

/// The smallest access distance (metres) at which the launch is Class 1 —
/// the radius of the hazard envelope below the ceiling unit. Returns 0 if
/// the launch is safe even at contact.
pub fn class1_distance_m(launch_dbm: f64, w0: f64, theta_half: f64, wavelength_nm: f64) -> f64 {
    if classify(launch_dbm, w0, theta_half, wavelength_nm, 0.0) == LaserClass::Class1 {
        return 0.0;
    }
    // Bisection over distance, 0–10 m.
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    if classify(launch_dbm, w0, theta_half, wavelength_nm, hi) != LaserClass::Class1 {
        return f64::INFINITY;
    }
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if classify(launch_dbm, w0, theta_half, wavelength_nm, mid) == LaserClass::Class1 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_sfp_is_class1_at_contact() {
        // 0–4 dBm SFP laser, narrow beam: well under 10 mW at 1550 nm.
        assert_eq!(classify(4.0, 1e-3, 0.0, 1550.0, 0.0), LaserClass::Class1);
    }

    #[test]
    fn amplified_diverging_prototype_is_class1_at_range() {
        // The 20 dBm (100 mW) launch spread over the 11 mrad diverging cone:
        // Class 1 at the ~1.5 m working range of the ceiling deployment.
        let theta = 11.4e-3;
        let c = classify(20.0, 2e-3, theta, 1550.0, 1.5);
        assert_eq!(
            c,
            LaserClass::Class1,
            "accessible {} dBm",
            accessible_emission_dbm(20.0, 2e-3, theta, 1.5)
        );
        // ... but NOT at 10 cm from the aperture: the envelope matters.
        assert_ne!(classify(20.0, 2e-3, theta, 1550.0, 0.1), LaserClass::Class1);
    }

    #[test]
    fn hazard_envelope_is_about_a_metre() {
        let d = class1_distance_m(20.0, 2e-3, 11.4e-3, 1550.0);
        assert!((0.3..2.0).contains(&d), "envelope {d} m");
    }

    #[test]
    fn amplified_narrow_collimated_never_class1() {
        // 20 dBm tightly collimated: hazardous at any distance.
        assert_eq!(class1_distance_m(20.0, 2e-3, 0.0, 1550.0), f64::INFINITY);
    }

    #[test]
    fn shorter_wavelength_is_stricter() {
        let at_1550 = classify(9.0, 2e-3, 0.0, 1550.0, 0.0);
        let at_1310 = classify(9.0, 2e-3, 0.0, 1310.0, 0.0);
        assert_eq!(at_1550, LaserClass::Class1);
        assert_ne!(at_1310, LaserClass::Class1);
    }

    #[test]
    fn accessible_emission_less_than_launch_for_wide_beam() {
        let acc = accessible_emission_dbm(20.0, 2e-3, 11.4e-3, 1.5);
        assert!(acc < 20.0);
        assert!(acc > -10.0);
    }

    #[test]
    fn accessible_emission_grows_towards_launch_at_contact() {
        let near = accessible_emission_dbm(20.0, 2e-3, 11.4e-3, 0.01);
        let far = accessible_emission_dbm(20.0, 2e-3, 11.4e-3, 3.0);
        assert!(near > far);
        assert!(near <= 20.0 + 1e-9);
    }
}
