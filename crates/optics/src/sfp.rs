//! SFP transceiver specifications.
//!
//! The paper builds its links from commodity SFP transceivers (§2.2,
//! Appendix A): Cisco SFP-10G-ZR100 1550 nm modules for the 10G prototype
//! (0–4 dBm TX, −25 dBm sensitivity \[14\]) and 25G SFP28-LR modules for the
//! 25G prototype, whose link budget is "about 13 dB less than the SFPs used
//! in our 10G prototype" (§5.3.1). An important dynamical detail (§5.3):
//! "once the link is lost, it takes a few seconds to regain the link partly
//! due to the SFPs taking a few seconds to report that the link is up" — the
//! re-lock time below drives that behaviour in `cyclops-link`.

/// Static characteristics of an SFP transceiver (one of each sits at either
/// end of the link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SfpSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Line rate in Gbps.
    pub line_rate_gbps: f64,
    /// Goodput achievable by iperf over this link when perfectly aligned
    /// (Gbps) — the paper measures 9.4 Gbps on the 10G link and ~23.5 Gbps on
    /// the 25G link.
    pub optimal_goodput_gbps: f64,
    /// Laser transmit power (dBm).
    pub tx_power_dbm: f64,
    /// Receiver sensitivity (dBm): minimum power at which the link closes.
    pub rx_sensitivity_dbm: f64,
    /// Receiver overload/damage threshold (dBm).
    pub rx_overload_dbm: f64,
    /// Time for the SFP + NIC to re-establish the link after loss of signal
    /// (seconds) — "a few seconds" per §5.3.
    pub relink_time_s: f64,
    /// Carrier wavelength (nm).
    pub wavelength_nm: f64,
}

impl SfpSpec {
    /// Cisco SFP-10G-ZR100 (1550 nm), the 10G prototype transceiver.
    pub fn sfp10g_zr() -> SfpSpec {
        SfpSpec {
            name: "SFP-10G-ZR100",
            line_rate_gbps: 10.3125,
            optimal_goodput_gbps: 9.4,
            tx_power_dbm: 2.0,
            rx_sensitivity_dbm: -25.0,
            rx_overload_dbm: 7.0,
            relink_time_s: 2.5,
            wavelength_nm: 1550.0,
        }
    }

    /// Generic 25G SFP28-LR \[1\]: the short-budget module the 25G prototype
    /// had to use because no NICs support the longer-reach SFP28-ER.
    pub fn sfp28_lr() -> SfpSpec {
        SfpSpec {
            name: "SFP28-25G-LR",
            line_rate_gbps: 25.78125,
            optimal_goodput_gbps: 23.5,
            tx_power_dbm: 0.0,
            rx_sensitivity_dbm: -12.5,
            rx_overload_dbm: 2.0,
            relink_time_s: 2.0,
            wavelength_nm: 1310.0,
        }
    }

    /// 25G SFP28-ER \[2\]: larger budget (19–25 dB) but, per §5.3.1, no
    /// compatible NIC exists — included for the link-budget ablation.
    pub fn sfp28_er() -> SfpSpec {
        SfpSpec {
            name: "SFP28-25G-ER",
            line_rate_gbps: 25.78125,
            optimal_goodput_gbps: 23.5,
            tx_power_dbm: 2.0,
            rx_sensitivity_dbm: -18.0,
            rx_overload_dbm: 2.0,
            relink_time_s: 2.0,
            wavelength_nm: 1310.0,
        }
    }

    /// A 100G QSFP28-class module (§6: the TP mechanism generalizes to
    /// 40G+ links with custom optics) — used by the forward-looking ablation.
    pub fn qsfp28_100g() -> SfpSpec {
        SfpSpec {
            name: "QSFP28-100G-LR4",
            line_rate_gbps: 103.125,
            optimal_goodput_gbps: 94.0,
            tx_power_dbm: 3.0,
            rx_sensitivity_dbm: -10.0,
            rx_overload_dbm: 4.5,
            relink_time_s: 2.0,
            wavelength_nm: 1310.0,
        }
    }

    /// Link budget (dB): TX power minus sensitivity.
    pub fn budget_db(&self) -> f64 {
        self.tx_power_dbm - self.rx_sensitivity_dbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_paper() {
        // 10G ZR budget ≈ 27 dB; SFP28-LR budget 12–18 dB (§5.3.1), i.e.
        // roughly 13 dB less than the 10G ZR.
        let b10 = SfpSpec::sfp10g_zr().budget_db();
        let b25 = SfpSpec::sfp28_lr().budget_db();
        assert!((25.0..=29.0).contains(&b10), "10G budget {b10}");
        assert!((12.0..=18.0).contains(&b25), "25G budget {b25}");
        assert!((b10 - b25 - 13.0).abs() < 3.0, "difference ≈ 13 dB");
    }

    #[test]
    fn er_budget_exceeds_lr() {
        assert!(SfpSpec::sfp28_er().budget_db() > SfpSpec::sfp28_lr().budget_db());
        let er = SfpSpec::sfp28_er().budget_db();
        assert!(
            (19.0..=25.0).contains(&er),
            "ER budget {er} (paper: 19–25 dB)"
        );
    }

    #[test]
    fn goodput_below_line_rate() {
        for s in [
            SfpSpec::sfp10g_zr(),
            SfpSpec::sfp28_lr(),
            SfpSpec::sfp28_er(),
            SfpSpec::qsfp28_100g(),
        ] {
            assert!(s.optimal_goodput_gbps < s.line_rate_gbps, "{}", s.name);
            assert!(s.relink_time_s > 1.0, "relink takes seconds: {}", s.name);
            assert!(s.rx_overload_dbm > s.rx_sensitivity_dbm);
        }
    }

    #[test]
    fn measured_goodputs_match_paper() {
        assert_eq!(SfpSpec::sfp10g_zr().optimal_goodput_gbps, 9.4);
        assert_eq!(SfpSpec::sfp28_lr().optimal_goodput_gbps, 23.5);
    }
}
