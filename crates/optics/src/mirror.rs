//! Finite mirror apertures and beam clipping.
//!
//! §5.1 rejects the wide-collimated-beam design partly because "the beam can
//! also get 'clipped' by the TX GM, which can defeat the whole purpose. Our
//! GMs allow 10 mm beams; using GMs that allow larger beam widths also incur
//! higher response time." This module quantifies that clipping loss and the
//! response-time penalty of large-aperture galvos.

use crate::beam::capture_fraction;
use crate::power::linear_to_db;

/// Power loss (dB ≤ 0) when a Gaussian beam of 1/e² radius `w` reflects off
/// a mirror with clear-aperture radius `mirror_radius`, centred on the beam.
///
/// Uses the same encircled-power integral as receive-aperture capture.
pub fn clip_loss_db(w: f64, mirror_radius: f64) -> f64 {
    linear_to_db(capture_fraction(w, 0.0, mirror_radius))
}

/// Small-angle response time (seconds) of a galvo as a function of its
/// clear-aperture diameter.
///
/// Larger mirrors are heavier; settle time grows roughly with the 1.5 power
/// of aperture (inertia ∝ d⁴ vs torque ∝ d-ish for the same motor class).
/// Anchored at the GVS102's 10 mm / 300 µs point, with the large-beam
/// galvos \[9\] landing near a millisecond — which is the "higher response
/// time offsetting their advantage" trade-off of §5.1.
pub fn settle_time_for_aperture(aperture_diameter: f64) -> f64 {
    let ref_d = 10.0e-3;
    let ref_t = 300e-6;
    ref_t * (aperture_diameter / ref_d).powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_beam_unclipped() {
        // 2 mm beam on a 5 mm-radius mirror: negligible loss.
        let loss = clip_loss_db(2e-3, 5e-3);
        assert!(loss > -0.01, "loss {loss}");
    }

    #[test]
    fn wide_beam_clipped_hard() {
        // A 20 mm-radius collimated beam on the 5 mm-radius GM loses most of
        // its power — the §5.1 argument against very wide collimated beams.
        let loss = clip_loss_db(20e-3, 5e-3);
        assert!(loss < -8.0, "loss {loss}");
    }

    #[test]
    fn clipping_is_monotone_in_beam_width() {
        let mut last = 0.0;
        for w_mm in [1.0, 5.0, 10.0, 20.0, 40.0] {
            let loss = clip_loss_db(w_mm * 1e-3, 5e-3);
            assert!(loss <= last + 1e-12);
            last = loss;
        }
    }

    #[test]
    fn settle_time_grows_with_aperture() {
        let t10 = settle_time_for_aperture(10e-3);
        let t30 = settle_time_for_aperture(30e-3);
        assert!((t10 - 300e-6).abs() < 1e-9);
        assert!(t30 > 3.0 * t10, "larger mirrors settle much slower");
    }
}
