//! Criterion benchmarks of the data-plane and simulation layers: the BER
//! channel, CRC framing, SFP state machine, the §5.4 trace simulation and
//! one second of the full 1 ms-slot physical simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cyclops::link::channel::FsoChannel;
use cyclops::link::crc::crc32;
use cyclops::link::framing::Frame;
use cyclops::link::sfp_state::SfpLinkState;
use cyclops::link::trace_sim::{simulate_trace, TraceSimParams};
use cyclops::prelude::*;

fn bench_channel(c: &mut Criterion) {
    let ch = FsoChannel::new(-25.0, 7.0);
    c.bench_function("channel: BER + frame success", |b| {
        b.iter(|| ch.frame_success_prob(black_box(-24.5), 12_000))
    });
}

fn bench_crc_framing(c: &mut Criterion) {
    let payload = vec![0xA5u8; 1500];
    c.bench_function("crc32: 1500-byte frame", |b| {
        b.iter(|| crc32(black_box(&payload)))
    });
    let frame = Frame::new(1, payload);
    let enc = frame.encode();
    c.bench_function("framing: encode 1500 B", |b| b.iter(|| frame.encode()));
    c.bench_function("framing: decode+verify 1500 B", |b| {
        b.iter(|| Frame::decode(black_box(&enc)).unwrap())
    });
}

fn bench_sfp_state(c: &mut Criterion) {
    c.bench_function("sfp: 1000 state-machine steps", |b| {
        b.iter(|| {
            let mut s = SfpLinkState::new_up(2.5);
            for i in 0..1000 {
                s.step(i % 97 != 0, 1e-3);
            }
            s.is_up()
        })
    });
}

fn bench_trace_sim(c: &mut Criterion) {
    let trace = HeadTrace::generate(&TraceGenConfig::default(), 42);
    let p = TraceSimParams::default();
    c.bench_function("trace_sim: one 60 s trace (60k slots)", |b| {
        b.iter(|| simulate_trace(black_box(&trace), &p).on_fraction)
    });
}

fn bench_full_simulator(c: &mut Criterion) {
    // Commission once; clone per iteration (the sim consumes its state).
    let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(4242));
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    c.bench_function("simulator: 1 s of physical link sim (1k slots)", |b| {
        b.iter(|| {
            let mut rail = LinearRail::paper_protocol(base, Vec3::X);
            rail.v0 = 0.1;
            rail.dv = 0.0;
            let mut sim = sys.clone().into_simulator(rail);
            sim.run(1.0).len()
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("traces: generate one 60 s viewing trace", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            HeadTrace::generate(&TraceGenConfig::default(), seed).len()
        })
    });
}

criterion_group!(
    benches,
    bench_channel,
    bench_crc_framing,
    bench_sfp_state,
    bench_trace_sim,
    bench_full_simulator,
    bench_trace_generation
);
criterion_main!(benches);
