//! Criterion micro-benchmarks of the real-time pipeline — the operations
//! whose latency the paper budgets in §5.2 ("computation time ... is minimal
//! (in µsecs)"):
//!
//! * `G` — one galvo-model trace;
//! * `G'` — the computational inverse (2–4 trace triples);
//! * `P`  — the full four-voltage pointing solve (2–5 outer iterations);
//! * received-power evaluation (the simulator's hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cyclops::core::deployment::{cheat_align, Deployment, DeploymentConfig};
use cyclops::core::gprime::gprime_default;
use cyclops::core::pointing::pointing_default;
use cyclops::geom::rotation::axis_angle;
use cyclops::prelude::*;

fn facing_pair() -> (GalvoParams, GalvoParams) {
    let tx = GalvoParams::nominal();
    let rx = GalvoParams::nominal().transformed(&Pose::new(
        axis_angle(Vec3::Y, std::f64::consts::PI),
        Vec3::new(0.05, 0.0, 1.75),
    ));
    (tx, rx)
}

fn bench_g_trace(c: &mut Criterion) {
    let g = GalvoParams::nominal();
    c.bench_function("G: galvo model trace", |b| {
        b.iter(|| g.trace(black_box(0.7), black_box(-0.3)))
    });
    c.bench_function("G: trace_line (learned-model variant)", |b| {
        b.iter(|| g.trace_line(black_box(0.7), black_box(-0.3)))
    });
}

fn bench_gprime(c: &mut Criterion) {
    let g = GalvoParams::nominal();
    let target = g.trace(1.0, -0.5).unwrap().point_at(1.75);
    c.bench_function("G': inverse solve (cold start)", |b| {
        b.iter(|| gprime_default(&g, black_box(target), (0.0, 0.0)))
    });
    c.bench_function("G': inverse solve (warm start)", |b| {
        b.iter(|| gprime_default(&g, black_box(target), (1.0, -0.5)))
    });
}

fn bench_pointing(c: &mut Criterion) {
    let (tx, rx) = facing_pair();
    let warm = pointing_default(&tx, &rx, [0.0; 4]).voltages;
    c.bench_function("P: pointing solve (cold start)", |b| {
        b.iter(|| pointing_default(black_box(&tx), black_box(&rx), [0.0; 4]))
    });
    c.bench_function("P: pointing solve (warm start)", |b| {
        b.iter(|| pointing_default(black_box(&tx), black_box(&rx), warm))
    });
}

fn bench_received_power(c: &mut Criterion) {
    let mut dep = Deployment::new(&DeploymentConfig::paper_10g(7));
    cheat_align(&mut dep);
    c.bench_function("optics: received power (aligned)", |b| {
        b.iter(|| black_box(dep.received_power_dbm()))
    });
    let (a, b2, c2, d) = dep.voltages();
    dep.set_voltages(a + 3.0, b2, c2, d);
    c.bench_function("optics: received power (far off — fast path)", |b| {
        b.iter(|| black_box(dep.received_power_dbm()))
    });
}

fn bench_capture(c: &mut Criterion) {
    use cyclops::optics::beam::capture_fraction;
    c.bench_function("optics: aperture capture integral", |b| {
        b.iter(|| capture_fraction(black_box(0.02), black_box(0.004), black_box(0.005)))
    });
}

criterion_group!(
    benches,
    bench_g_trace,
    bench_gprime,
    bench_pointing,
    bench_received_power,
    bench_capture
);
criterion_main!(benches);
