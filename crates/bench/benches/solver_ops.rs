//! Criterion benchmarks of the numerical substrate: the Levenberg–Marquardt
//! fits behind both training stages, the Nelder–Mead fallback and the
//! pattern search behind the exhaustive alignment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cyclops::solver::lm::{levenberg_marquardt, LmOptions};
use cyclops::solver::nelder_mead::{nelder_mead, NmOptions};
use cyclops::solver::pattern::{grid_scan2, pattern_search, PatternOptions};

fn bench_lm(c: &mut Criterion) {
    // An exponential fit of the size class of the 12-parameter mapping fit.
    let ts: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
    let ys: Vec<f64> = ts
        .iter()
        .map(|t| 2.0 * (-0.7 * t).exp() + 0.1 * t)
        .collect();
    c.bench_function("lm: 3-param curve fit, 120 residuals", |b| {
        b.iter(|| {
            let ts = ts.clone();
            let ys = ys.clone();
            let f = move |p: &[f64]| -> Vec<f64> {
                ts.iter()
                    .zip(&ys)
                    .flat_map(|(t, y)| {
                        let r = p[0] * (p[1] * t).exp() + p[2] * t - y;
                        [r, r * 0.5]
                    })
                    .collect()
            };
            levenberg_marquardt(f, black_box(&[1.0, 0.0, 0.0]), &LmOptions::default()).cost
        })
    });
}

fn bench_nelder_mead(c: &mut Criterion) {
    c.bench_function("nelder-mead: 4-D rosenbrock-ish", |b| {
        b.iter(|| {
            let f = |x: &[f64]| {
                (0..3)
                    .map(|i| (1.0 - x[i]).powi(2) + 10.0 * (x[i + 1] - x[i] * x[i]).powi(2))
                    .sum::<f64>()
            };
            nelder_mead(f, black_box(&[0.0; 4]), &NmOptions::default()).value
        })
    });
}

fn bench_pattern(c: &mut Criterion) {
    let f = |x: &[f64]| {
        (-(x[0] - 1.0).powi(2) - (x[1] - 2.0).powi(2)).exp()
            * (-(x[2] + 1.5).powi(2) - (x[3] - 0.5).powi(2)).exp()
    };
    let opts = PatternOptions::uniform(4, -10.0, 10.0, 2.0);
    c.bench_function("pattern: 4-D compass search", |b| {
        b.iter(|| pattern_search(f, black_box(&[0.0; 4]), &opts).value)
    });
    c.bench_function("grid_scan2: 161x161 sweep", |b| {
        b.iter(|| {
            grid_scan2(
                |x: &[f64]| (-(x[0] - 3.0).powi(2) - (x[1] + 4.0).powi(2)).exp(),
                black_box(&[0.0, 0.0]),
                (0, 1),
                (-10.0, -10.0),
                (10.0, 10.0),
                161,
            )
            .value
        })
    });
}

criterion_group!(benches, bench_lm, bench_nelder_mead, bench_pattern);
criterion_main!(benches);
