//! Criterion microbenches of the per-slot hot path: the three channel-math
//! entry points (`q_factor`, `ber`, `frame_success_prob`) individually, and
//! one full [`LinkSession`] `step_slot` — the end-to-end serial cost a fleet
//! pays per session-slot. Power inputs sweep a small grid so the optimizer
//! cannot constant-fold the transcendental pipeline away.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cyclops::link::channel::FsoChannel;
use cyclops::link::engine::SlotSession;
use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;

/// Power sweep across the channel's interesting region: deep outage,
/// threshold shoulder, and overload.
const POWERS: [f64; 8] = [-90.0, -40.0, -26.0, -24.5, -23.0, -21.0, -19.5, -15.0];

fn bench_q_factor(c: &mut Criterion) {
    let ch = FsoChannel::new(-25.0, -18.0);
    c.bench_function("channel: q_factor (8-power sweep)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &POWERS {
                acc += ch.q_factor(black_box(p));
            }
            acc
        })
    });
}

fn bench_ber(c: &mut Criterion) {
    let ch = FsoChannel::new(-25.0, -18.0);
    c.bench_function("channel: ber (8-power sweep)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &POWERS {
                acc += ch.ber(black_box(p));
            }
            acc
        })
    });
}

fn bench_frame_success(c: &mut Criterion) {
    let ch = FsoChannel::new(-25.0, -18.0);
    c.bench_function("channel: frame_success_prob (8-power sweep)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &POWERS {
                acc += ch.frame_success_prob(black_box(p), black_box(81_920));
            }
            acc
        })
    });
}

#[cfg(feature = "fast-channel")]
fn bench_frame_success_lut(c: &mut Criterion) {
    use cyclops::link::channel::fast::ChannelLut;
    let ch = FsoChannel::new(-25.0, -18.0);
    let lut = ChannelLut::new(ch, 81_920);
    c.bench_function("channel: LUT frame_success (8-power sweep)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &POWERS {
                acc += lut.frame_success_prob(black_box(p));
            }
            acc
        })
    });
}

/// One full engine slot: galvo trace, capture fraction, channel math, SFP
/// state machine, goodput accounting — the serial cost every session pays
/// per millisecond of simulated time.
fn bench_engine_slot(c: &mut Criterion) {
    let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(4242));
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 500);
    let mut session = sys
        .into_session_builder(motion)
        .build()
        .expect("valid bench session config");
    let mut k = 0usize;
    c.bench_function("engine: one full EngineSlot step", |b| {
        b.iter(|| {
            let r = session.step_slot(black_box(k));
            k += 1;
            r.power_dbm
        })
    });
}

#[cfg(feature = "fast-channel")]
criterion_group!(
    benches,
    bench_q_factor,
    bench_ber,
    bench_frame_success,
    bench_frame_success_lut,
    bench_engine_slot
);
#[cfg(not(feature = "fast-channel"))]
criterion_group!(
    benches,
    bench_q_factor,
    bench_ber,
    bench_frame_success,
    bench_engine_slot
);
criterion_main!(benches);
