//! Criterion benchmarks of the (offline) training stages — the costs the
//! paper quotes qualitatively: K-space fitting (pre-deployment), one
//! exhaustive alignment ("1–2 mins" of bench time; here: hardware
//! evaluations), and the 12-parameter mapping fit.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cyclops::core::alignment::exhaustive_align;
use cyclops::core::deployment::{Deployment, DeploymentConfig};
use cyclops::core::kspace::{self, BoardConfig, KspaceRig};
use cyclops::core::mapping;
use cyclops::optics::galvo::{GalvoSim, GalvoSimConfig};
use cyclops::prelude::*;

fn bench_kspace_fit(c: &mut Criterion) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let truth = GalvoParams::nominal().perturbed(&mut rng, 1.0, 1.0, 0.02);
    let mut rig = KspaceRig::standard(GalvoSim::new(truth, GalvoSimConfig::default()), 1);
    let init = rig.cad_initial_guess();
    let samples = rig.collect_samples(&BoardConfig::default());
    c.bench_function("training: K-space fit (266 samples, 25 params)", |b| {
        b.iter(|| kspace::fit(&samples, &init).expect("fit").train_error.mean)
    });
}

fn bench_exhaustive_align(c: &mut Criterion) {
    let dep = Deployment::new(&DeploymentConfig::paper_10g(2));
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("exhaustive 4-voltage alignment", |b| {
        b.iter_batched(
            || dep.clone(),
            |mut d| exhaustive_align(&mut d).power_dbm,
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_mapping_fit(c: &mut Criterion) {
    // Prepare one full training context, then benchmark only the 12-param fit.
    let seed = 3u64;
    let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
    let (tx_tr, tx_rig, rx_tr, rx_rig) =
        kspace::train_both(&dep, &BoardConfig::default(), seed).expect("stage-1 training");
    let (init_tx, init_rx) =
        mapping::rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
    let samples = mapping::collect_samples(&mut dep, 30, seed + 9);
    c.bench_function("training: 12-parameter mapping fit (30 samples)", |b| {
        b.iter(|| {
            mapping::fit(&tx_tr.fitted, &rx_tr.fitted, &samples, init_tx, init_rx)
                .report
                .cost
        })
    });
}

criterion_group!(
    benches,
    bench_kspace_fit,
    bench_exhaustive_align,
    bench_mapping_fit
);
criterion_main!(benches);
