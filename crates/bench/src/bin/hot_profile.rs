//! Manual hot-path cost ranking (temporary instrumentation; 1-core host has
//! no sampling profiler). Times each sub-component of the per-slot work in
//! isolation so optimization effort lands where the cycles are.

use cyclops::core::kspace::{train_both, BoardConfig};
use cyclops::core::mapping::{self, rough_initial_guess};
use cyclops::link::handover::Occluder;
use cyclops::prelude::*;
use std::hint::black_box;
use std::time::Instant;

fn fleet_units(seed: u64) -> Vec<TxInstallation> {
    let board = BoardConfig {
        cols: 10,
        rows: 8,
        cell_m: 0.0508,
    };
    [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                12,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect()
}

fn time_n(name: &str, n: u64, mut f: impl FnMut()) {
    // warmup
    for _ in 0..(n / 10).max(1) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{name:<34} {:>10.1} ns/call   ({n} calls, {dt:.3} s)",
        dt / n as f64 * 1e9
    );
}

fn main() {
    println!("building fleet fixtures ...");
    let units = fleet_units(911);
    let tx0 = units[0].dep.tx_world_params().q2;
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let mid = tx0.lerp(base.trans, 0.5);
    let cfg = FleetConfig {
        n_sessions: 8,
        duration_s: 4.0,
        seed: 424,
        control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(5))),
        occluders: vec![Occluder::new(mid, 0.12, 0.4, 0)],
        ..FleetConfig::default()
    };

    // Whole-fleet baseline.
    let t0 = Instant::now();
    let summary = run_fleet(&units, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    let slots: usize = summary.sessions.iter().map(|s| s.slots).sum();
    println!(
        "fleet_8x4s: {dt:.3} s, {slots} slots, {:.0} slots/s, {:.1} ns/slot",
        slots as f64 / dt,
        dt / slots as f64 * 1e9
    );

    // Component timings on one deployment.
    let mut dep = units[0].dep.clone();
    time_n("received_power_dbm", 2_000_000, || {
        black_box(dep.received_power_dbm());
    });
    let mut dep2 = units[0].dep.clone();
    time_n("tx_beam", 2_000_000, || {
        black_box(dep2.tx_beam());
    });
    let dep3 = units[0].dep.clone();
    time_n("rx_world_pose", 2_000_000, || {
        black_box(dep3.rx_world_pose());
    });
    let rx_pose = dep3.rx_world_pose();
    time_n("rx.truth.transformed", 2_000_000, || {
        black_box(dep3.rx.truth.transformed(black_box(&rx_pose)));
    });
    let rxp = dep3.rx.truth.transformed(&rx_pose);
    let v2 = dep3.rx.voltages().1;
    time_n("second_mirror_plane", 2_000_000, || {
        black_box(rxp.second_mirror_plane(black_box(v2)));
    });
    let txp = units[0].dep.tx_world_params();
    let (vt1, vt2) = units[0].dep.tx.voltages();
    time_n("GalvoParams::trace", 2_000_000, || {
        black_box(txp.trace(black_box(vt1), black_box(vt2)));
    });
    // channel math
    let ch = cyclops::link::channel::FsoChannel::new(-22.0, -1.0);
    let mut p = -35.0;
    time_n("channel q_factor", 2_000_000, || {
        p = if p < -20.0 { p + 1e-6 } else { -35.0 };
        black_box(ch.q_factor(black_box(p)));
    });
    time_n("channel ber", 2_000_000, || {
        p = if p < -20.0 { p + 1e-6 } else { -35.0 };
        black_box(ch.ber(black_box(p)));
    });
    time_n("channel frame_success_prob", 2_000_000, || {
        p = if p < -20.0 { p + 1e-6 } else { -35.0 };
        black_box(ch.frame_success_prob(black_box(p), black_box(81920)));
    });
    // frame_success at floor power (deep outage - common case during outage)
    time_n("frame_success @-90dBm", 2_000_000, || {
        black_box(ch.frame_success_prob(black_box(-90.0), black_box(81920)));
    });
    time_n("frame_success @-21dBm (good)", 2_000_000, || {
        black_box(ch.frame_success_prob(black_box(-21.0), black_box(81920)));
    });

    // Geometry state probe: which capture_fraction branch does an aligned
    // tracked link actually hit?
    {
        let mut d = units[0].dep.clone();
        let beam = d.tx_beam().expect("beam");
        let rx_pose = d.rx_world_pose();
        let rxp = d.rx.truth.transformed(&rx_pose);
        let plane = rxp.second_mirror_plane(d.rx.voltages().1);
        let (t, hit) = plane.intersect_ray(&beam.chief).expect("hit");
        let imag = {
            let rx = d.rx.clone();
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let r = rx.output_ray(&mut rng).expect("imag");
            rx_pose.apply_ray(&r)
        };
        let delta = hit.distance(imag.origin);
        let w = beam.radius_at(t);
        let phi = beam.local_ray_dir(imag.origin).angle_to(-imag.dir);
        println!(
            "aligned state: delta={:.3} mm, w={:.3} mm, phi={:.3} mrad, delta/w={:.4} (fast path needs <0.02)",
            delta * 1e3, w * 1e3, phi * 1e3, delta / w
        );
        use cyclops::optics::beam::capture_fraction;
        let a = d.design.coupling.aperture_radius;
        time_n("capture_fraction @ probe delta", 200_000, || {
            black_box(capture_fraction(
                black_box(w),
                black_box(delta),
                black_box(a),
            ));
        });
        time_n("capture_fraction @ delta=1mm", 200_000, || {
            black_box(capture_fraction(
                black_box(w),
                black_box(1e-3),
                black_box(a),
            ));
        });
        time_n("capture_fraction @ delta=0.1mm", 200_000, || {
            black_box(capture_fraction(
                black_box(w),
                black_box(1e-4),
                black_box(a),
            ));
        });
    }

    // TP controller solve cost
    let mut ctl = units[0].ctl.clone();
    let pose = base;
    time_n("TpController::on_report", 20_000, || {
        black_box(ctl.on_report(black_box(&pose)));
    });

    // motion
    let mut motion = ArbitraryMotion::new(base, Default::default(), 500);
    let mut t = 0.0;
    time_n("ArbitraryMotion::pose_at", 2_000_000, || {
        t += 0.001;
        black_box(motion.pose_at(black_box(t)));
    });

    // report-pair math (per-report cost inside the trace session)
    {
        let tr = HeadTrace::generate(&TraceGenConfig::default(), 9_100);
        let last = tr.len() - 2;
        let mut i = 0usize;
        time_n("trace report pair (norm+angle_to)", 2_000_000, || {
            i = if i >= last { 0 } else { i + 1 };
            let a = &tr.samples[i];
            let b = &tr.samples[i + 1];
            let dt = b.t_ms - a.t_ms;
            black_box((b.pos - a.pos).norm() / dt);
            black_box(a.quat.angle_to(&b.quat) / dt);
        });
    }

    // trace session throughput (best of 5 to beat scheduler noise)
    let traces: Vec<HeadTrace> = (0..60)
        .map(|i| HeadTrace::generate(&TraceGenConfig::default(), 9_100 + i))
        .collect();
    let params = cyclops::link::trace_sim::TraceSimParams::default();
    let mut best = f64::INFINITY;
    let mut sig = 0;
    for _ in 0..5 {
        let t0 = Instant::now();
        let r = cyclops::link::trace_sim::simulate_corpus(&traces, &params);
        best = best.min(t0.elapsed().as_secs_f64());
        sig = r.len();
    }
    let n_slots = 60.0 * 60.0 / 0.001;
    println!(
        "trace 60x60s fused: {best:.4} s, {:.0} slots/s, {:.2} ns/slot (sig {sig})",
        n_slots / best,
        best / n_slots * 1e9,
    );
    // pure fused inner loop: a 2-sample trace has no interior events
    {
        use cyclops::geom::quat::Quat;
        use cyclops::vrh::traces::TraceSample;
        let tr = HeadTrace::new(
            60_000.0,
            vec![
                TraceSample {
                    t_ms: 0.0,
                    pos: Vec3::ZERO,
                    quat: Quat::IDENTITY,
                },
                TraceSample {
                    t_ms: 60_000.0,
                    pos: Vec3::new(0.001, 0.0, 0.0),
                    quat: Quat::IDENTITY,
                },
            ],
        );
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..10 {
                let mut s = cyclops::link::engine::TraceSession::new(&tr, params);
                black_box(s.run(60_000));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!("pure fused segment:  {:.2} ns/slot", best / 600_000.0 * 1e9);
    }

    // naive per-slot loop for comparison
    let mut best_naive = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for t in &traces {
            let n = ((t.duration_s() * 1e3) / params.slot_ms).floor() as usize;
            let mut s = cyclops::link::engine::TraceSession::new(t, params);
            acc += cyclops::link::engine::run_slots(&mut s, n)
                .iter()
                .filter(|&&b| b)
                .count();
        }
        black_box(acc);
        best_naive = best_naive.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "trace 60x60s naive: {best_naive:.4} s, {:.0} slots/s, {:.2} ns/slot",
        n_slots / best_naive,
        best_naive / n_slots * 1e9,
    );
}
