//! **Perf snapshot** — machine-readable timing of the parallel hot paths
//! (training, alignment, trace corpus, chaos suite, and the multi-session
//! engine fleet), written to `BENCH_<date>.json`.
//!
//! Each workload runs twice over identical inputs: once pinned to 1 thread
//! and once at the configured pool width (`CYCLOPS_THREADS` env var, else
//! the machine's hardware parallelism). The two runs' numeric outputs are
//! compared bit-for-bit — the workspace's parallelism contract — and the
//! wall-times, speedups and thread count land in the JSON for CI trending.
//!
//! ```sh
//! CYCLOPS_THREADS=8 cargo run --release -p cyclops-bench --bin perf_snapshot
//! ```

use cyclops::core::alignment::exhaustive_align;
use cyclops::core::kspace::{self, BoardConfig, KspaceRig};
use cyclops::core::mapping;
use cyclops::link::engine::SessionStats;
use cyclops::link::handover::Occluder;
use cyclops::link::trace_sim::{simulate_corpus, TraceSimParams};
use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;
use std::time::Instant;

struct WorkloadResult {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
    bit_identical: bool,
    sig_len: usize,
    /// Total engine slots stepped per run; 0 for workloads that are not
    /// slot loops (training/alignment), which then report no `slots_per_sec`.
    slots: usize,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s.max(1e-12)
    }

    /// Headline throughput metric of the single-thread leg (slots/second).
    fn slots_per_sec_serial(&self) -> f64 {
        self.slots as f64 / self.serial_s.max(1e-12)
    }

    /// Throughput of the full-width parallel leg (slots/second).
    fn slots_per_sec_parallel(&self) -> f64 {
        self.slots as f64 / self.parallel_s.max(1e-12)
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Repetitions per leg; the minimum wall-time is reported (the standard
/// guard against scheduler noise on short workloads).
const REPS: usize = 3;

fn best_of(threads: usize, work: &impl Fn() -> Vec<f64>) -> (f64, Vec<f64>) {
    let mut best_s = f64::INFINITY;
    let mut sig = Vec::new();
    for _ in 0..REPS {
        let (s, r) = timed(|| cyclops_par::with_threads(threads, work));
        best_s = best_s.min(s);
        sig = r;
    }
    (best_s, sig)
}

/// Runs `work` at 1 thread and at `threads` ([`REPS`] times each), checking
/// the two signature vectors for bitwise equality. `slots` is the workload's
/// total slot count per run (0 for non-slot-loop workloads).
fn run_workload(
    name: &'static str,
    threads: usize,
    slots: usize,
    work: impl Fn() -> Vec<f64>,
) -> WorkloadResult {
    println!("  {name}: serial leg ...");
    let (serial_s, sig_serial) = best_of(1, &work);
    println!("  {name}: parallel leg ({threads} threads) ...");
    let (parallel_s, sig_parallel) = best_of(threads, &work);
    let bit_identical = sig_serial.len() == sig_parallel.len()
        && sig_serial
            .iter()
            .zip(&sig_parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    WorkloadResult {
        name,
        serial_s,
        parallel_s,
        bit_identical,
        sig_len: sig_serial.len(),
        slots,
    }
}

/// One fault-injected simulator session for the chaos workload: hardened
/// control plane (ARQ + dead reckoning + re-acquisition) under the `stress`
/// fault plan (loss bursts, delay spikes, dup/reorder, SFP flaps), hand-held
/// motion. Returns a numeric signature plus the session counters.
fn chaos_session(sys: &CyclopsSystem, seed: u64, dur_s: f64) -> (Vec<f64>, SessionStats) {
    let mut s = sys.clone();
    s.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(seed)));
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 500 + seed);
    let mut sim = s.into_simulator(motion);
    let recs = sim.run(dur_s);
    let stats = sim.session_stats();
    let c = stats.control.expect("control plane is active");
    let mut sig = vec![
        recs.iter().map(|r| r.power_dbm).sum::<f64>(),
        recs.iter().map(|r| r.goodput_gbps).sum::<f64>(),
        recs.iter().filter(|r| r.link_up).count() as f64,
    ];
    sig.extend(
        [
            c.sent,
            c.delivered,
            c.retransmits,
            c.channel_losses,
            c.dup_frames,
            c.stale_drops,
            c.acks_lost,
            c.gave_up,
            stats.n_extrapolated,
            stats.n_reacq_steps,
            stats.n_outages,
        ]
        .map(|n| n as f64),
    );
    sig.push(stats.outage_s);
    sig.push(stats.longest_outage_s);
    (sig, stats)
}

/// Two fully-trained ceiling installations sharing one headset world — the
/// TX side of the multi-session fleet workload (fast board).
fn fleet_units(seed: u64) -> Vec<TxInstallation> {
    use cyclops::core::kspace::train_both;
    use cyclops::core::mapping::rough_initial_guess;
    let board = BoardConfig {
        cols: 10,
        rows: 8,
        cell_m: 0.0508,
    };
    [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                12,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect()
}

/// The multi-session workload: 8 independently-seeded headsets sharing the
/// two ceiling installations, hardened control plane under the stress fault
/// plan, one roaming occluder per session.
fn fleet_config(units: &[TxInstallation]) -> FleetConfig {
    let tx0 = units[0].dep.tx_world_params().q2;
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let mid = tx0.lerp(base.trans, 0.5);
    // 4 s per session: long enough to hand over away from the occluded
    // unit 0 and complete the ~2.5 s SFP relink on unit 1 within the run.
    FleetConfig {
        n_sessions: 8,
        duration_s: 4.0,
        seed: 424,
        control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(5))),
        occluders: vec![Occluder::new(mid, 0.12, 0.4, 0)],
        ..FleetConfig::default()
    }
}

/// Flattens a fleet run into the bit-identity signature vector.
fn fleet_signature(summary: &cyclops::link::engine::FleetSummary) -> Vec<f64> {
    let mut sig = Vec::new();
    for s in &summary.sessions {
        sig.extend([
            s.seed as f64,
            s.slots as f64,
            s.up_frac,
            s.signal_frac,
            s.mean_goodput_gbps,
            s.mean_power_dbm,
            s.handovers as f64,
            s.tp_reports as f64,
            s.tp_failures as f64,
            s.stats.n_extrapolated as f64,
            s.stats.n_reacq_steps as f64,
            s.stats.n_outages as f64,
            s.stats.outage_s,
            s.stats.longest_outage_s,
            s.rf_frac,
            s.stats.rf.failovers as f64,
            s.stats.rf.failbacks as f64,
            s.stats.rf.rf_slots as f64,
            s.stats.rf_delivered_gb,
        ]);
        if let Some(c) = s.stats.control {
            sig.extend([c.sent, c.delivered, c.retransmits, c.channel_losses].map(|n| n as f64));
        }
    }
    sig
}

/// Flattens a scheduled fleet run into the bit-identity signature vector:
/// the physics signature plus every scheduling/QoE counter, so a
/// thread-count-dependent divergence in the grant engine or the traffic
/// layer fails the bit-identical check.
fn sched_signature(summary: &cyclops::link::engine::FleetSummary) -> Vec<f64> {
    let mut sig = fleet_signature(summary);
    for s in &summary.sessions {
        let st = s.sched.expect("scheduled session stats");
        sig.extend([
            st.admitted as u64 as f64,
            st.granted_slots as f64,
            st.served_slots as f64,
            st.denied_slots as f64,
            st.retarget_slots as f64,
            st.preempts as f64,
            st.availability,
            st.delivered_gb,
            st.mean_served_gbps,
            st.offered_gb,
            st.stall_s,
            st.stall_frac,
            st.stall_events as f64,
            st.frames_generated as f64,
            st.frames_played as f64,
        ]);
    }
    sig
}

/// Flattens a mixed-hardware fleet into the bit-identity signature: the
/// physics signature plus each session's pool stamp and the per-profile
/// rollups, so pool dispatch or environment re-keying divergence between
/// the serial and parallel legs fails the check.
fn hetero_signature(summary: &cyclops::link::engine::FleetSummary) -> Vec<f64> {
    let mut sig = fleet_signature(summary);
    for s in &summary.sessions {
        sig.push(s.profile.map_or(-1.0, |p| p as f64));
    }
    for (pool, r) in summary.profile_rollups() {
        sig.extend([
            pool as f64,
            r.n_sessions as f64,
            r.mean_up_frac,
            r.min_up_frac,
            r.sum_goodput_gbps,
            r.total_outages as f64,
            r.worst_outage_s,
        ]);
    }
    sig
}

/// Outcome of the telemetry overhead probe.
struct TelemetryProbe {
    null_sink_s: f64,
    counters_s: f64,
    bit_identical: bool,
    counters: SessionTelemetry,
}

impl TelemetryProbe {
    /// Slot-loop overhead of full counter/histogram aggregation relative to
    /// the virtual-dispatch floor (a [`NullSink`]), in percent.
    fn overhead_pct(&self) -> f64 {
        (self.counters_s / self.null_sink_s.max(1e-12) - 1.0) * 100.0
    }
}

/// Measures the telemetry layer's slot-loop cost on the chaos workload: the
/// same session once with a [`NullSink`] (dispatch floor) and once with full
/// counter + histogram aggregation, best of [`REPS`]·2 runs each, with the
/// two slot streams compared bit-for-bit (telemetry must be pure
/// observation).
fn telemetry_probe(sys: &CyclopsSystem, dur_s: f64) -> TelemetryProbe {
    let leg = |mk: &dyn Fn() -> Telemetry| -> (f64, Vec<f64>, Option<SessionTelemetry>) {
        let mut best = f64::INFINITY;
        let mut sig = Vec::new();
        let mut counters = None;
        for _ in 0..REPS * 2 {
            let mut s = sys.clone();
            s.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(3)));
            let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
            let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 503);
            let mut session = s
                .into_session_builder(motion)
                .telemetry(mk())
                .build()
                .expect("valid telemetry-probe config");
            let (t, recs) = timed(|| session.run(dur_s));
            best = best.min(t);
            sig = recs
                .iter()
                .flat_map(|r| [r.t, r.power_dbm, r.goodput_gbps, r.link_up as u64 as f64])
                .collect();
            counters = session.telemetry().copied();
        }
        (best, sig, counters)
    };
    let (null_sink_s, sig_null, _) = leg(&|| Telemetry::with_sink(Box::new(NullSink)));
    let (counters_s, sig_counters, counters) = leg(&Telemetry::counters);
    let bit_identical = sig_null.len() == sig_counters.len()
        && sig_null
            .iter()
            .zip(&sig_counters)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    TelemetryProbe {
        null_sink_s,
        counters_s,
        bit_identical,
        counters: counters.expect("counters leg aggregates"),
    }
}

/// Proleptic-Gregorian civil date from days since 1970-01-01 (Howard
/// Hinnant's `civil_from_days`). Avoids a date-time dependency.
fn civil_from_days(z: i64) -> (i64, u64, u64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before epoch")
        .as_secs();
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let threads = cyclops_par::max_threads();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perf snapshot: parallel legs use {threads} thread(s) on a {host}-thread host \
         ({}; set CYCLOPS_THREADS to override)",
        if cyclops_par::parallel_compiled() {
            "parallel build"
        } else {
            "serial build"
        }
    );

    // Shared fixtures built once, outside the timed regions.
    let dep_k = Deployment::new(&DeploymentConfig::paper_10g(71));
    let dep_m = Deployment::new(&DeploymentConfig::paper_10g(73));
    println!("fixtures: stage-1 K-space models for the mapping workload ...");
    let (tx_tr, tx_rig, rx_tr, rx_rig) =
        kspace::train_both(&dep_m, &BoardConfig::default(), 73).expect("stage-1 training");
    let (init_tx, init_rx) = mapping::rough_initial_guess(&dep_m, &tx_rig, &rx_rig, 0.05, 0.08, 80);
    let traces: Vec<HeadTrace> = (0..200)
        .map(|i| HeadTrace::generate(&TraceGenConfig::default(), 9_100 + i))
        .collect();
    println!("fixtures: fast-profile system for the chaos workload ...");
    let sys_chaos = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
    let chaos_seeds: Vec<u64> = (0..6).collect();
    println!("fixtures: two ceiling installations for the fleet workload ...");
    let units = fleet_units(911);
    let fleet_cfg = fleet_config(&units);
    // The 1000-session scale workload: same physics and control plane as the
    // 8-session fleet, 1 s per session — a pure slot-throughput stressor for
    // the `slots_per_sec` headline (handover/relink physics are exercised by
    // the longer 8-session runs above).
    let fleet_1k_cfg = FleetConfig {
        n_sessions: 1000,
        duration_s: 1.0,
        ..fleet_cfg.clone()
    };
    // The hybrid-fallback ablation: the same 8-session hostile fleet with
    // RF-on-outage, so the JSON trends the on/off availability comparison
    // alongside the timings.
    let fleet_rf_cfg = FleetConfig {
        fallback: FallbackPolicy::RfOnOutage,
        ..fleet_cfg.clone()
    };
    // The heterogeneous-fleet workload: the same 8 hostile sessions split
    // across two hardware pools — the paper build (Rift-S tracking) and the
    // registry's noisier Quest class — under a light environment (fog +
    // scintillation), so mixed-pool dispatch, per-session environment
    // re-keying, and the per-slot attenuation sum are all on the timed path.
    let hetero_pools = vec![
        FleetPool {
            label: "10g/rift-s".into(),
            units: units.clone(),
            tracker: TrackerConfig::default(),
        },
        FleetPool {
            label: "10g/quest".into(),
            units: units.clone(),
            tracker: headset_profile("quest").expect("registered preset").tracker,
        },
    ];
    let fleet_hetero_cfg = FleetConfig {
        environment: Some(
            Environment::new()
                .stage(FogStage::from_density(0.3, 1550.0).expect("valid density"))
                .stage(ScintillationStage::new(0.6, 10e-3, 77).expect("valid scintillation")),
        ),
        ..fleet_cfg.clone()
    };

    // The scheduled-fleet contention workload: the same 8 hostile sessions
    // treat the 2 TX installations as a shared pool under proportional-fair
    // scheduling with the bursty viewport traffic source. The driver is
    // serial by construction (shared grant state), so the two legs trend
    // the overlay's cost rather than a speedup.
    let sched_cfg = SchedConfig::proportional_fair(1.0);

    // Slot counts per run, for the slots/s headline. All slot loops run on
    // the default 1 ms engine slot (`EngineConfig::default().slot_s`).
    let slot_params = TraceSimParams::default();
    let trace_slots: usize = traces
        .iter()
        .map(|t| ((t.duration_s() * 1e3) / slot_params.slot_ms).floor() as usize)
        .sum();
    let chaos_slots = chaos_seeds.len() * 4_000;
    let fleet_slots = fleet_cfg.n_sessions * (fleet_cfg.duration_s * 1e3).round() as usize;
    let fleet_1k_slots = fleet_1k_cfg.n_sessions * (fleet_1k_cfg.duration_s * 1e3).round() as usize;

    println!("running workloads (each twice: 1 thread, then {threads}) ...");
    let results = [
        // §4.1 stage-1 fit: LM over ~25 galvo parameters — parallel Jacobian
        // columns.
        run_workload("kspace_fit", threads, 0, || {
            let mut rig = KspaceRig::standard(dep_k.tx.clone(), 72);
            let init = rig.cad_initial_guess();
            let samples = rig.collect_samples(&BoardConfig::default());
            let tr = kspace::fit(&samples, &init).expect("stage-1 fit");
            let mut sig = tr.fitted.to_vec();
            sig.push(tr.report.cost);
            sig
        }),
        // §4.2 exhaustive search: row-parallel 51² + 161² voltage grids.
        run_workload("exhaustive_align", threads, 0, || {
            let mut dep = Deployment::new(&DeploymentConfig::paper_10g(42));
            let res = exhaustive_align(&mut dep);
            let mut sig = res.voltages.to_vec();
            sig.push(res.power_dbm);
            sig.push(res.n_evals as f64);
            sig
        }),
        // §4.2 stage-2 training: parallel placement collection + LM fit.
        run_workload("mapping_fit", threads, 0, || {
            let mut dep = dep_m.clone();
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                init_tx,
                init_rx,
                8,
                81,
            );
            let mut sig = vec![mt.trained.report.cost, mt.samples.len() as f64];
            sig.extend_from_slice(&mt.trained.tx_map.to_params().to_array());
            sig.extend_from_slice(&mt.trained.rx_map.to_params().to_array());
            sig
        }),
        // §5.4 connectivity simulation: 200 × 60 s traces, one per work item.
        run_workload("trace_sim_60s", threads, trace_slots, || {
            simulate_corpus(&traces, &TraceSimParams::default())
        }),
        // Fault-injection suite: hardened control plane under the stress
        // fault plan, one session per seed. The signature includes every
        // per-session counter, so any serial/parallel divergence in the
        // control plane itself fails the bit-identical check.
        run_workload("chaos_fault_injection", threads, chaos_slots, || {
            cyclops_par::par_map(&chaos_seeds, 1, |&s| chaos_session(&sys_chaos, s, 4.0).0)
                .into_iter()
                .flatten()
                .collect()
        }),
        // Multi-session engine workload: 8 independently-seeded headsets
        // over 2 TX installations, one session per work item. The signature
        // covers every per-session counter, so a thread-count-dependent
        // divergence anywhere in the engine fails the bit-identical check.
        run_workload("fleet_multi_session", threads, fleet_slots, || {
            fleet_signature(&run_fleet(&units, &fleet_cfg))
        }),
        // Hybrid-fallback fleet: the same hostile workload with RfOnOutage —
        // the RF counters are in the signature, so a thread-count-dependent
        // divergence in the fallback path fails the bit-identical check.
        run_workload("fleet_fallback", threads, fleet_slots, || {
            fleet_signature(&run_fleet(&units, &fleet_rf_cfg))
        }),
        // Scheduled fleet: the shared-TX grant engine + traffic/QoE layer
        // on the hostile 8-session workload. Every scheduling counter is in
        // the signature, so any thread-count sensitivity in the overlay
        // fails the bit-identical check.
        run_workload("fleet_sched", threads, fleet_slots, || {
            sched_signature(
                &run_fleet_scheduled(&units, &fleet_cfg, &sched_cfg).expect("valid sched config"),
            )
        }),
        // Heterogeneous fleet: mixed hardware pools + environment layer on
        // the hostile 8-session workload. Pool stamps and per-profile
        // rollups are in the signature, so a divergence in mixed dispatch
        // or environment re-keying fails the bit-identical check.
        run_workload("fleet_hetero", threads, fleet_slots, || {
            hetero_signature(
                &run_fleet_mixed(&hetero_pools, &fleet_hetero_cfg).expect("valid mixed fleet"),
            )
        }),
        // 1000-session scale: the slot-throughput headline at fleet width.
        run_workload("fleet_1k", threads, fleet_1k_slots, || {
            fleet_signature(&run_fleet(&units, &fleet_1k_cfg))
        }),
    ];

    println!(
        "\n{:<18} {:>10} {:>10} {:>8} {:>14}  bit-identical",
        "workload", "serial s", "par s", "speedup", "slots/s (1T)"
    );
    let mut total_serial = 0.0;
    let mut total_parallel = 0.0;
    let mut all_identical = true;
    for r in &results {
        let sps = if r.slots > 0 {
            format!("{:.3e}", r.slots_per_sec_serial())
        } else {
            "-".to_string()
        };
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>7.2}x {:>14}  {}",
            r.name,
            r.serial_s,
            r.parallel_s,
            r.speedup(),
            sps,
            r.bit_identical
        );
        total_serial += r.serial_s;
        total_parallel += r.parallel_s;
        all_identical &= r.bit_identical;
    }
    println!(
        "{:<18} {:>10.3} {:>10.3} {:>7.2}x",
        "total",
        total_serial,
        total_parallel,
        total_serial / total_parallel.max(1e-12)
    );

    // Hand-rolled JSON (the workspace builds offline; no serde available).
    let date = today_utc();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"date\": \"{date}\",\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"host_threads\": {host},\n"));
    json.push_str(&format!(
        "  \"cyclops_threads_env\": {},\n",
        match std::env::var("CYCLOPS_THREADS") {
            Ok(v) => format!("\"{}\"", v.trim()),
            Err(_) => "null".to_string(),
        }
    ));
    json.push_str(&format!(
        "  \"parallel_compiled\": {},\n",
        cyclops_par::parallel_compiled()
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Slot-loop workloads carry the slots/s headline; training and
        // alignment workloads report null there.
        let sps = if r.slots > 0 {
            format!(
                "\"slots\": {}, \"slots_per_sec_serial\": {:.1}, \
                 \"slots_per_sec_parallel\": {:.1}",
                r.slots,
                r.slots_per_sec_serial(),
                r.slots_per_sec_parallel()
            )
        } else {
            "\"slots\": null, \"slots_per_sec_serial\": null, \
             \"slots_per_sec_parallel\": null"
                .to_string()
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \
             \"speedup\": {:.4}, \"bit_identical\": {}, \"signature_len\": {}, {}}}{}\n",
            r.name,
            r.serial_s,
            r.parallel_s,
            r.speedup(),
            r.bit_identical,
            r.sig_len,
            sps,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Session counters from one canonical (serial-order) pass over the chaos
    // seeds — the fault-injection health record that trends alongside the
    // timings.
    let chaos: Vec<SessionStats> = chaos_seeds
        .iter()
        .map(|&s| chaos_session(&sys_chaos, s, 4.0).1)
        .collect();
    let sum = |f: &dyn Fn(&SessionStats) -> u64| chaos.iter().map(f).sum::<u64>();
    let csum = |f: &dyn Fn(&cyclops::link::control::ControlStats) -> u64| {
        chaos
            .iter()
            .map(|s| f(s.control.as_ref().expect("control plane is active")))
            .sum::<u64>()
    };
    json.push_str(&format!(
        "  \"chaos\": {{\"sessions\": {}, \"sent\": {}, \"delivered\": {}, \
         \"retransmits\": {}, \"channel_losses\": {}, \"dup_frames\": {}, \
         \"stale_drops\": {}, \"acks_lost\": {}, \"gave_up\": {}, \
         \"extrapolated\": {}, \"reacq_steps\": {}, \"outages\": {}, \
         \"outage_s\": {:.4}, \"longest_outage_s\": {:.4}}},\n",
        chaos.len(),
        csum(&|c| c.sent),
        csum(&|c| c.delivered),
        csum(&|c| c.retransmits),
        csum(&|c| c.channel_losses),
        csum(&|c| c.dup_frames),
        csum(&|c| c.stale_drops),
        csum(&|c| c.acks_lost),
        csum(&|c| c.gave_up),
        sum(&|s| s.n_extrapolated),
        sum(&|s| s.n_reacq_steps),
        sum(&|s| s.n_outages),
        chaos.iter().map(|s| s.outage_s).sum::<f64>(),
        chaos.iter().map(|s| s.longest_outage_s).fold(0.0, f64::max)
    ));
    // Multi-session fleet counters: one canonical (deterministic) pass —
    // per-session rows plus the fleet rollup, the multi-user health record.
    // This pass also collects per-session telemetry for the rolled-up
    // counter block (the timed legs above keep telemetry off).
    let fleet = run_fleet(
        &units,
        &FleetConfig {
            collect_telemetry: true,
            ..fleet_cfg.clone()
        },
    );
    json.push_str("  \"fleet\": {\n    \"sessions\": [\n");
    for (i, s) in fleet.sessions.iter().enumerate() {
        let c = s
            .stats
            .control
            .expect("fleet runs the hardened control plane");
        json.push_str(&format!(
            "      {{\"session\": {}, \"seed\": {}, \"slots\": {}, \
             \"up_frac\": {:.6}, \"signal_frac\": {:.6}, \
             \"mean_goodput_gbps\": {:.6}, \
             \"mean_power_dbm\": {:.4}, \"handovers\": {}, \"outages\": {}, \
             \"longest_outage_s\": {:.4}, \"extrapolated\": {}, \
             \"reacq_steps\": {}, \"tp_reports\": {}, \"tp_failures\": {}, \
             \"ctrl_sent\": {}, \"ctrl_delivered\": {}, \
             \"ctrl_retransmits\": {}}}{}\n",
            s.session,
            s.seed,
            s.slots,
            s.up_frac,
            s.signal_frac,
            s.mean_goodput_gbps,
            s.mean_power_dbm,
            s.handovers,
            s.stats.n_outages,
            s.stats.longest_outage_s,
            s.stats.n_extrapolated,
            s.stats.n_reacq_steps,
            s.tp_reports,
            s.tp_failures,
            c.sent,
            c.delivered,
            c.retransmits,
            if i + 1 < fleet.sessions.len() {
                ","
            } else {
                ""
            }
        ));
    }
    let roll = fleet.rollup();
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"rollup\": {{\"n_sessions\": {}, \"total_slots\": {}, \
         \"mean_up_frac\": {:.6}, \"mean_signal_frac\": {:.6}, \
         \"min_up_frac\": {:.6}, \
         \"sum_goodput_gbps\": {:.6}, \"total_handovers\": {}, \
         \"total_outages\": {}, \"worst_outage_s\": {:.4}, \
         \"total_extrapolated\": {}, \"total_reacq_steps\": {}, \
         \"ctrl_sent\": {}, \"ctrl_delivered\": {}, \"ctrl_retransmits\": {}}}\n",
        roll.n_sessions,
        roll.total_slots,
        roll.mean_up_frac,
        roll.mean_signal_frac,
        roll.min_up_frac,
        roll.sum_goodput_gbps,
        roll.total_handovers,
        roll.total_outages,
        roll.worst_outage_s,
        roll.total_extrapolated,
        roll.total_reacq_steps,
        roll.ctrl_sent,
        roll.ctrl_delivered,
        roll.ctrl_retransmits
    ));
    if let Some(t) = &roll.telemetry {
        json.push_str(&format!("    ,\"telemetry\": {}\n", t.to_json()));
    }
    json.push_str("  },\n");
    // Hybrid-fallback ablation block: one canonical pass of the same fleet
    // with RF-on-outage, landed next to the fallback-off rollup above. The
    // off side must carry zero RF state; the on side must strictly improve
    // availability and goodput on this hostile workload.
    let roll_rf = run_fleet(&units, &fleet_rf_cfg).rollup();
    assert_eq!(
        roll.total_rf_slots, 0,
        "fallback-off fleet must never ride RF"
    );
    assert!(
        roll_rf.mean_up_frac > roll.mean_up_frac,
        "RF fallback must strictly improve availability ({} vs {})",
        roll_rf.mean_up_frac,
        roll.mean_up_frac
    );
    assert!(
        roll_rf.sum_goodput_gbps > roll.sum_goodput_gbps,
        "RF fallback must strictly improve goodput ({} vs {})",
        roll_rf.sum_goodput_gbps,
        roll.sum_goodput_gbps
    );
    json.push_str(&format!(
        "  \"fleet_fallback\": {{\"policy\": \"RfOnOutage\", \
         \"mean_up_frac_off\": {:.6}, \"mean_up_frac_on\": {:.6}, \
         \"min_up_frac_off\": {:.6}, \"min_up_frac_on\": {:.6}, \
         \"sum_goodput_gbps_off\": {:.6}, \"sum_goodput_gbps_on\": {:.6}, \
         \"mean_rf_frac\": {:.6}, \"total_failovers\": {}, \
         \"total_failbacks\": {}, \"total_rf_slots\": {}, \
         \"rf_delivered_gb\": {:.6}}},\n",
        roll.mean_up_frac,
        roll_rf.mean_up_frac,
        roll.min_up_frac,
        roll_rf.min_up_frac,
        roll.sum_goodput_gbps,
        roll_rf.sum_goodput_gbps,
        roll_rf.mean_rf_frac,
        roll_rf.total_failovers,
        roll_rf.total_failbacks,
        roll_rf.total_rf_slots,
        roll_rf.rf_delivered_gb
    ));
    println!(
        "fleet fallback ablation: up {:.4} -> {:.4}, goodput {:.2} -> {:.2} Gbps \
         ({} failovers, mean rf_frac {:.4})",
        roll.mean_up_frac,
        roll_rf.mean_up_frac,
        roll.sum_goodput_gbps,
        roll_rf.sum_goodput_gbps,
        roll_rf.total_failovers,
        roll_rf.mean_rf_frac
    );
    // Scheduling ablation block: one canonical pass per policy over the
    // same hostile fleet, so the JSON trends the contention tradeoff
    // (aggregate service vs worst-session stall vs fairness) alongside the
    // timings. The strict policy-ordering asserts live in `ext_multi_user`,
    // which tunes the regime where they are meaningful.
    json.push_str("  \"fleet_sched\": {\n");
    let sched_policies = [
        ("static_partition", SchedConfig::static_partition()),
        ("greedy_max_margin", SchedConfig::greedy()),
        ("proportional_fair", SchedConfig::proportional_fair(1.0)),
    ];
    for (i, (name, sc)) in sched_policies.iter().enumerate() {
        let r = run_fleet_scheduled(&units, &fleet_cfg, sc)
            .expect("valid sched config")
            .rollup()
            .sched
            .expect("scheduled fleet must roll up");
        json.push_str(&format!(
            "    \"{}\": {{\"n_admitted\": {}, \"total_granted\": {}, \
             \"total_served\": {}, \"total_denied\": {}, \"total_preempts\": {}, \
             \"mean_availability\": {:.6}, \"min_availability\": {:.6}, \
             \"sum_served_gbps\": {:.6}, \"mean_stall_frac\": {:.6}, \
             \"worst_stall_s\": {:.4}, \"total_stall_events\": {}, \
             \"total_frames_played\": {}, \"fairness_jain\": {:.6}}}{}\n",
            name,
            r.n_admitted,
            r.total_granted,
            r.total_served,
            r.total_denied,
            r.total_preempts,
            r.mean_availability,
            r.min_availability,
            r.sum_served_gbps,
            r.mean_stall_frac,
            r.worst_stall_s,
            r.total_stall_events,
            r.total_frames_played,
            r.fairness_jain,
            if i + 1 < sched_policies.len() {
                ","
            } else {
                ""
            }
        ));
        println!(
            "fleet sched [{name}]: avail {:.4}/{:.4} (mean/min), {:.2} Gbps, \
             worst stall {:.3} s, jain {:.3}",
            r.mean_availability,
            r.min_availability,
            r.sum_served_gbps,
            r.worst_stall_s,
            r.fairness_jain
        );
    }
    json.push_str("  },\n");
    // Telemetry overhead: counters vs the NullSink dispatch floor on the
    // chaos workload (the ISSUE budget is <= 3% — reported, not asserted,
    // so a loaded CI host can't flake the build).
    println!("telemetry overhead probe (NullSink vs counters) ...");
    let probe = telemetry_probe(&sys_chaos, 4.0);
    println!(
        "telemetry: null sink {:.3} s, counters {:.3} s ({:+.2}% overhead), \
         bit-identical {}",
        probe.null_sink_s,
        probe.counters_s,
        probe.overhead_pct(),
        probe.bit_identical
    );
    json.push_str(&format!(
        "  \"telemetry\": {{\"null_sink_s\": {:.6}, \"counters_s\": {:.6}, \
         \"overhead_pct\": {:.4}, \"bit_identical\": {}, \"counters\": {}}},\n",
        probe.null_sink_s,
        probe.counters_s,
        probe.overhead_pct(),
        probe.bit_identical,
        probe.counters.to_json()
    ));
    json.push_str(&format!("  \"total_serial_s\": {total_serial:.6},\n"));
    json.push_str(&format!("  \"total_parallel_s\": {total_parallel:.6},\n"));
    json.push_str(&format!(
        "  \"overall_speedup\": {:.4}\n}}\n",
        total_serial / total_parallel.max(1e-12)
    ));
    let path = format!("BENCH_{date}.json");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");

    assert!(
        all_identical,
        "serial/parallel outputs diverged — the parallelism contract is broken"
    );
    assert!(
        probe.bit_identical,
        "telemetry counters perturbed the slot stream — telemetry must be pure observation"
    );
}
