//! **Table 1** — link angular movement tolerances and peak received power
//! for the collimated vs diverging 10G designs (§5.1).

use cyclops::optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops::prelude::*;
use cyclops_bench::{row, section};

fn peak_power(d: &LinkDesign, range: f64) -> f64 {
    let chief = Ray::new(Vec3::ZERO, Vec3::Z);
    let rx = ReceiverGeometry::new(Vec3::Z * range, -Vec3::Z);
    d.received_power_dbm(chief, &rx)
}

fn main() {
    section("Table 1: angular tolerances and peak received power (10G, 1.75 m)");
    let r = 1.75;
    let col = LinkDesign::ten_g_collimated(r);
    let div = LinkDesign::ten_g_diverging(20.0e-3, r);

    let widths = [26, 12, 12, 12, 12];
    row(
        &[
            "".into(),
            "collimated".into(),
            "(paper)".into(),
            "diverging".into(),
            "(paper)".into(),
        ],
        &widths,
    );
    row(
        &[
            "TX angular tolerance".into(),
            format!("{:.2} mrad", tx_angular_tolerance(&col, r) * 1e3),
            "2.00".into(),
            format!("{:.2} mrad", tx_angular_tolerance(&div, r) * 1e3),
            "15.81".into(),
        ],
        &widths,
    );
    row(
        &[
            "RX angular tolerance".into(),
            format!("{:.2} mrad", rx_angular_tolerance(&col, r) * 1e3),
            "2.28".into(),
            format!("{:.2} mrad", rx_angular_tolerance(&div, r) * 1e3),
            "5.77".into(),
        ],
        &widths,
    );
    row(
        &[
            "Peak received power".into(),
            format!("{:.1} dBm", peak_power(&col, r)),
            "15".into(),
            format!("{:.1} dBm", peak_power(&div, r)),
            "-10".into(),
        ],
        &widths,
    );
    row(
        &[
            "Lateral tolerance".into(),
            format!("{:.1} mm", lateral_tolerance(&col, r) * 1e3),
            "-".into(),
            format!("{:.1} mm", lateral_tolerance(&div, r) * 1e3),
            "-".into(),
        ],
        &widths,
    );
    println!(
        "\nthe trade-off of §5.1: the diverging beam multiplies movement tolerance\nat the cost of ~25 dB of received power."
    );
}
