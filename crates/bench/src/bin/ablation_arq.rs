//! **Ablation: ARQ vs dead reckoning** — which layer of the reliable control
//! plane buys back which failure mode.
//!
//! Companion to `ablation_report_loss` (which shows the paper's
//! reliable-channel assumption collapsing under loss): here the two
//! mitigation layers are enabled one at a time under i.i.d. and bursty
//! (Gilbert–Elliott) report loss:
//!
//! * **ARQ** recovers *isolated* losses within a retransmit timeout (~3 ms
//!   ≪ the 12.5 ms report period), so i.i.d. loss barely dents tolerated
//!   speeds — but a loss *burst* outlives its retry budget;
//! * **dead reckoning** extrapolates through gaps at constant velocity, so
//!   bursts during smooth motion cost little — but it cannot fix a channel
//!   that delivers nothing for long at changing velocity;
//! * **ARQ+DR** composes both and is the production configuration
//!   (`ControlPlaneConfig::hardened`).
//!
//! Every decision draws from seeded `mix64` streams: identical seeds give
//! bit-identical tables at any thread count and in both build configs — the
//! printed digest is what the `chaos` CI job asserts on.

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, digest_ladder, row, section, tolerated_speed};

struct Variant {
    arq: bool,
    dr: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        arq: false,
        dr: false,
    },
    Variant {
        arq: true,
        dr: false,
    },
    Variant {
        arq: false,
        dr: true,
    },
    Variant {
        arq: true,
        dr: true,
    },
];

fn plane(fault: FaultPlan, v: &Variant) -> ControlPlaneConfig {
    ControlPlaneConfig {
        fault,
        arq: v.arq.then(ArqConfig::default),
        dead_reckoning: v.dr.then(DeadReckoningConfig::default),
        reacq: Some(ReacqConfig::default()),
    }
}

fn bursty(seed: u64, enter: f64) -> FaultPlan {
    FaultPlan {
        loss_prob: 0.02,
        burst_enter_prob: enter,
        burst_exit_prob: 0.15,
        burst_loss_prob: 1.0,
        ..FaultPlan::clean(seed)
    }
}

fn main() {
    let seed = 7u64;
    println!("commissioning 10G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));
    let ang_speeds: Vec<f64> = (1..=12).map(|k| (2.0 * k as f64).to_radians()).collect();

    let mut digest = 0u64;
    let mut run = |s: &CyclopsSystem, fault: FaultPlan, v: &Variant| -> f64 {
        let mut s = s.clone();
        s.control = Some(plane(fault, v));
        let pts = angular_ladder(&s, &ang_speeds, 6.0);
        digest = digest_ladder(digest, &pts);
        tolerated_speed(&pts)
    };

    section("Ablation: mitigation layers vs tolerated angular speed (10G)");
    let widths = [26, 10, 10, 10, 10];
    row(
        &[
            "channel fault".into(),
            "none".into(),
            "ARQ".into(),
            "DR".into(),
            "ARQ+DR".into(),
        ],
        &widths,
    );
    let faults: [(&str, FaultPlan); 4] = [
        ("clean", FaultPlan::clean(40)),
        ("i.i.d. 5% loss", FaultPlan::iid_loss(40, 0.05)),
        ("i.i.d. 20% loss", FaultPlan::iid_loss(40, 0.20)),
        ("bursty (GE, ~7-rpt bursts)", bursty(40, 0.02)),
    ];
    for (label, fault) in faults {
        let mut cells = vec![label.to_string()];
        for v in &VARIANTS {
            let tol = run(&sys, fault, v);
            cells.push(format!("{:.0} deg/s", tol.to_degrees()));
        }
        row(&cells, &widths);
    }

    println!("\nARQ alone flattens i.i.d. loss (a retransmit lands well inside the");
    println!("report period); dead reckoning alone rides out bursts at constant");
    println!("velocity. Only the composition handles both — and it is what the");
    println!("acceptance bar in ablation_report_loss measures.");
    println!("run digest: {digest:016x} (seed-deterministic at any thread count)");
}
