//! **Extension: multi-TX occlusion coverage (§3/§6)** — quantifies the
//! paper's deployment argument that "multiple Cyclops TXs can be installed
//! to cover occlusions", on the full-physics [`MultiTxSimulator`] (trained
//! TP per unit, real optics, real SFP re-lock).
//!
//! Two occlusion scenarios, swept over the number of installed units:
//!
//! * **brief crossings** — a person repeatedly walks across all beams at
//!   0.45 m/s (each blockage lasts well under a second);
//! * **lingering blocker** — a person walks in, stands on unit 0's beam for
//!   12 s, then leaves.
//!
//! The interesting (and honest) result: because every hand-over still pays
//! the commodity SFP's ~2.5 s re-lock (DESIGN.md known-deviation 5), extra
//! units barely help against *brief* crossings — but they bound the outage
//! of *long* occlusions at debounce + re-lock instead of the full blockage
//! duration.

use cyclops::core::deployment::{Deployment, DeploymentConfig};
use cyclops::core::kspace::{train_both, BoardConfig};
use cyclops::core::mapping::{self, rough_initial_guess};
use cyclops::core::tp::{TpConfig, TpController};
use cyclops::geom::vec3::v3;
use cyclops::link::engine::TxInstallation;
use cyclops::link::handover::Occluder;
use cyclops::link::multi_tx::{MultiTxSimulator, MultiTxSlot};
use cyclops::prelude::*;
use cyclops::vrh::motion::{ArbitraryMotion, ArbitraryMotionConfig};
use cyclops_bench::{row, section};

/// Commission one ceiling unit at `pos` (reduced board/placement budget —
/// the coverage story does not need Table-2-grade accuracy).
fn commission_unit(pos: Vec3, seed: u64) -> TxInstallation {
    let board = BoardConfig {
        cols: 10,
        rows: 8,
        cell_m: 0.0508,
    };
    let mut cfg = DeploymentConfig::paper_10g(seed);
    cfg.tx_position = pos;
    let mut dep = Deployment::new(&cfg);
    let (tx_tr, tx_rig, rx_tr, rx_rig) = train_both(&dep, &board, seed).expect("stage-1 training");
    let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
    let mt = mapping::train(
        &mut dep,
        &tx_tr.fitted,
        &rx_tr.fitted,
        itx,
        irx,
        12,
        seed + 9,
    );
    let v = dep.voltages();
    let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
    TxInstallation { dep, ctl }
}

/// Runs the simulator while moving occluder 0 along a scripted trajectory
/// (a person walking is deterministic at this scale, not a diffusion).
fn run_with_trajectory(
    sim: &mut MultiTxSimulator<ArbitraryMotion>,
    dur_s: f64,
    traj: impl Fn(f64) -> Vec3,
) -> Vec<MultiTxSlot> {
    let seg = 0.05;
    let mut slots = Vec::new();
    let mut t = 0.0;
    while t < dur_s - 1e-9 {
        sim.occluders_mut()[0].center = traj(t);
        slots.extend(sim.run(seg));
        t += seg;
    }
    slots
}

/// Availability, handovers and outage statistics from a slot record.
fn summarize(slots: &[MultiTxSlot]) -> (f64, usize, f64) {
    let up = slots.iter().filter(|s| s.link_up).count() as f64 / slots.len() as f64;
    let handovers = slots
        .windows(2)
        .filter(|w| w[0].active != w[1].active)
        .count();
    let mut max_out = 0.0f64;
    let mut run = 0usize;
    for s in slots {
        if s.link_up {
            max_out = max_out.max(run as f64 * 1e-3);
            run = 0;
        } else {
            run += 1;
        }
    }
    max_out = max_out.max(run as f64 * 1e-3);
    (up, handovers, max_out)
}

/// Ping-pong crossing: walks between x = −1.2 and +1.2 at `v` m/s, through
/// every beam at height z = 0.9.
fn crossing(t: f64, v: f64) -> Vec3 {
    let span = 2.4;
    let phase = (v * t) % (2.0 * span);
    let x = if phase < span {
        -1.2 + phase
    } else {
        1.2 - (phase - span)
    };
    v3(x, 0.0, 0.9)
}

/// Walk in, stand on unit 0's beam (x ≈ −0.24 at z = 0.9) for 12 s, leave.
fn linger(t: f64) -> Vec3 {
    let v = 0.45;
    let x_block = -0.24;
    let t_arrive = (x_block - (-1.2)) / v;
    let x = if t < t_arrive {
        -1.2 + v * t
    } else if t < t_arrive + 12.0 {
        x_block
    } else {
        (x_block + v * (t - t_arrive - 12.0)).min(1.2)
    };
    v3(x, 0.0, 0.9)
}

fn main() {
    let seed = 36u64;
    section("Extension: multi-TX occlusion coverage (full physics, 10G)");
    println!("commissioning 3 ceiling units (reduced boards), seed {seed} ...");
    let units: Vec<TxInstallation> = [v3(-0.5, 0.0, 0.0), v3(0.0, 0.0, 0.0), v3(0.5, 0.0, 0.0)]
        .into_iter()
        .map(|p| commission_unit(p, seed))
        .collect();
    let mk_sim = |n: usize| {
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let motion = ArbitraryMotion::new(
            base,
            ArbitraryMotionConfig {
                lin_rms: 0.04,
                ang_rms: 0.06,
                ..Default::default()
            },
            seed + 50,
        );
        // Trajectory-driven occluder: zero wander speed, scripted centre.
        let occ = Occluder::new(v3(-1.2, 0.0, 0.9), 0.15, 0.0, 1);
        MultiTxSimulator::new(units[..n].to_vec(), motion, vec![occ])
    };

    let widths = [22, 8, 10, 12, 14];
    row(
        &[
            "scenario".into(),
            "units".into(),
            "uptime".into(),
            "handovers".into(),
            "max outage".into(),
        ],
        &widths,
    );
    let dur = 40.0;
    for n_units in [1usize, 2, 3] {
        let mut sim = mk_sim(n_units);
        let slots = run_with_trajectory(&mut sim, dur, |t| crossing(t, 0.45));
        let (up, ho, max_out) = summarize(&slots);
        row(
            &[
                "brief crossings".into(),
                format!("{n_units}"),
                format!("{:.1}%", up * 100.0),
                format!("{ho}"),
                format!("{:.2} s", max_out),
            ],
            &widths,
        );
    }
    for n_units in [1usize, 2, 3] {
        let mut sim = mk_sim(n_units);
        let slots = run_with_trajectory(&mut sim, dur, linger);
        let (up, ho, max_out) = summarize(&slots);
        row(
            &[
                "lingering blocker".into(),
                format!("{n_units}"),
                format!("{:.1}%", up * 100.0),
                format!("{ho}"),
                format!("{:.2} s", max_out),
            ],
            &widths,
        );
    }
    println!("\nagainst brief crossings every outage is dominated by the commodity");
    println!("SFP's ~2.5 s re-lock, so extra units buy little (DESIGN.md known-");
    println!("deviation 5 — the paper's §5.4 slot model ignores re-locking);");
    println!("against a lingering blocker they bound the outage at debounce +");
    println!("re-lock instead of the full occlusion, which is the §3 coverage");
    println!("argument made quantitative.");
}
