//! **Extension: multi-user fleets** — N independently-seeded headsets
//! sharing M ceiling TX installations, on the unified simulation engine.
//!
//! The paper measures one headset; its §3 deployment sketch ("multiple TXs
//! on the ceiling with appropriate handover techniques") implies several
//! users sharing an installed base. This bin runs the engine's native
//! multi-session workload twice — a clean fleet and a hostile one (roaming
//! occluders + the stress fault plan on the control channel) — and prints
//! per-session rows plus the fleet rollup, including the rolled-up
//! telemetry counters and histograms (`collect_telemetry`).
//!
//! ```sh
//! cargo run --release -p cyclops-bench --bin ext_multi_user
//! ```

use cyclops::core::kspace::train_both;
use cyclops::core::mapping::{self, rough_initial_guess};
use cyclops::link::engine::FleetSummary;
use cyclops::link::handover::Occluder;
use cyclops::prelude::*;

/// Two fully-trained ceiling installations sharing one headset world
/// (full-size board and mapping budget, as in the paper's prototype).
fn two_units(seed: u64) -> Vec<TxInstallation> {
    let board = BoardConfig::default();
    [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                30,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect()
}

fn print_fleet(title: &str, fleet: &FleetSummary) {
    println!("\n{title}");
    println!(
        "{:>3} {:>10} {:>8} {:>8} {:>9} {:>10} {:>5} {:>7} {:>9} {:>7} {:>7}",
        "s",
        "seed",
        "signal",
        "up_frac",
        "gbps",
        "power_dBm",
        "hand",
        "outages",
        "worst_s",
        "dr",
        "reacq"
    );
    for s in &fleet.sessions {
        println!(
            "{:>3} {:>10x} {:>8.4} {:>8.4} {:>9.3} {:>10.2} {:>5} {:>7} {:>9.3} {:>7} {:>7}",
            s.session,
            s.seed & 0xffff_ffff,
            s.signal_frac,
            s.up_frac,
            s.mean_goodput_gbps,
            s.mean_power_dbm,
            s.handovers,
            s.stats.n_outages,
            s.stats.longest_outage_s,
            s.stats.n_extrapolated,
            s.stats.n_reacq_steps
        );
    }
    let r = fleet.rollup();
    println!(
        "fleet: {} sessions x {} slots  mean signal {:.4}, mean up {:.4} (min {:.4})  \
         aggregate {:.2} Gbps  {} handovers  {} outages (worst {:.3} s)",
        r.n_sessions,
        r.total_slots / r.n_sessions.max(1),
        r.mean_signal_frac,
        r.mean_up_frac,
        r.min_up_frac,
        r.sum_goodput_gbps,
        r.total_handovers,
        r.total_outages,
        r.worst_outage_s
    );
    if r.ctrl_sent > 0 {
        println!(
            "control: {} sent, {} delivered, {} retransmits  \
             ({} dead-reckoned cmds, {} re-acq probes)",
            r.ctrl_sent,
            r.ctrl_delivered,
            r.ctrl_retransmits,
            r.total_extrapolated,
            r.total_reacq_steps
        );
    }
    if r.total_rf_slots > 0 {
        println!(
            "rf fallback: {} failovers, {} failbacks, {} RF slots \
             (mean rf_frac {:.4}), {:.2} Gb delivered over RF",
            r.total_failovers,
            r.total_failbacks,
            r.total_rf_slots,
            r.mean_rf_frac,
            r.rf_delivered_gb
        );
    }
    if let Some(t) = &r.telemetry {
        println!(
            "telemetry: {} TP commands ({} dead-reckoned, {} handover shots), \
             {} ctrl drops, {} SFP downs; margin_db mean {:.2} (min {:.2}), \
             outage_s mean {:.3}",
            t.events.tp_commands,
            t.events.tp_dead_reckoned,
            t.events.tp_handover_shots,
            t.events.ctrl_dropped,
            t.events.sfp_downs,
            t.margin_db.mean(),
            t.margin_db.min().unwrap_or(f64::NAN),
            t.outage_s.mean()
        );
        println!("telemetry rollup: {}", t.to_json());
    }
}

fn main() {
    println!("ext_multi_user: training 2 ceiling installations ...");
    let units = two_units(911);
    let tx0 = units[0].dep.tx_world_params().q2;
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));

    // Clean fleet: 8 users, perfect control channel, unobstructed room.
    // 6 s per session leaves room to recover from an outage (the SFP relink
    // alone takes ~2.5 s).
    let clean = FleetConfig {
        n_sessions: 8,
        duration_s: 6.0,
        seed: 424,
        collect_telemetry: true,
        ..FleetConfig::default()
    };
    let fleet_clean = run_fleet(&units, &clean);
    print_fleet("clean fleet (8 users, 2 TX units, no faults)", &fleet_clean);

    // Hostile fleet: per-session roaming occluder plus the stress fault plan
    // on a hardened control plane (ARQ + dead reckoning + re-acquisition).
    let hostile = FleetConfig {
        control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(5))),
        occluders: vec![Occluder::new(tx0.lerp(base.trans, 0.5), 0.12, 0.4, 0)],
        ..clean
    };
    let fleet_hostile = run_fleet(&units, &hostile);
    print_fleet(
        "hostile fleet (roaming occluders, stress fault plan, hardened control)",
        &fleet_hostile,
    );

    let rc = fleet_clean.rollup();
    let rh = fleet_hostile.rollup();
    println!(
        "\nsummary: clean signal {:.4} / up {:.4} vs hostile signal {:.4} / up {:.4}; \
         hostile paid {} handovers and {} dead-reckoned commands across {} sessions",
        rc.mean_signal_frac,
        rc.mean_up_frac,
        rh.mean_signal_frac,
        rh.mean_up_frac,
        rh.total_handovers,
        rh.total_extrapolated,
        rh.n_sessions
    );
    assert!(
        rc.mean_up_frac >= rh.mean_up_frac,
        "clean fleet cannot be worse than the hostile one"
    );

    // Hybrid-fallback ablation: the hostile fleet again with RF-on-outage.
    // The FSO timeline is policy-invariant, so availability and goodput can
    // only gain the RF-covered slots — and on this workload they must
    // strictly improve.
    let hostile_rf = FleetConfig {
        fallback: FallbackPolicy::RfOnOutage,
        ..hostile
    };
    let fleet_rf = run_fleet(&units, &hostile_rf);
    print_fleet(
        "hostile fleet + RF fallback (RfOnOutage, same seeds)",
        &fleet_rf,
    );
    let rf = fleet_rf.rollup();
    println!(
        "\nfallback ablation: hostile up {:.4} / {:.2} Gbps sum -> with RF {:.4} / {:.2} Gbps \
         ({} failovers, mean rf_frac {:.4})",
        rh.mean_up_frac,
        rh.sum_goodput_gbps,
        rf.mean_up_frac,
        rf.sum_goodput_gbps,
        rf.total_failovers,
        rf.mean_rf_frac
    );
    assert_eq!(
        rh.total_rf_slots, 0,
        "fallback-off fleet must never ride RF"
    );
    assert!(rf.total_failovers >= 1, "hostile fleet must fail over");
    assert!(
        rf.mean_up_frac > rh.mean_up_frac,
        "RF fallback must strictly improve hostile availability ({} vs {})",
        rf.mean_up_frac,
        rh.mean_up_frac
    );
    assert!(
        rf.sum_goodput_gbps > rh.sum_goodput_gbps,
        "RF fallback must strictly improve hostile goodput ({} vs {})",
        rf.sum_goodput_gbps,
        rh.sum_goodput_gbps
    );
}
