//! **Extension: multi-user fleets** — N independently-seeded headsets
//! sharing M ceiling TX installations, on the unified simulation engine.
//!
//! The paper measures one headset; its §3 deployment sketch ("multiple TXs
//! on the ceiling with appropriate handover techniques") implies several
//! users sharing an installed base. This bin runs the engine's native
//! multi-session workload twice — a clean fleet and a hostile one (roaming
//! occluders + the stress fault plan on the control channel) — and prints
//! per-session rows plus the fleet rollup, including the rolled-up
//! telemetry counters and histograms (`collect_telemetry`).
//!
//! ```sh
//! cargo run --release -p cyclops-bench --bin ext_multi_user
//! ```

use cyclops::core::kspace::train_both;
use cyclops::core::mapping::{self, rough_initial_guess};
use cyclops::link::engine::FleetSummary;
use cyclops::link::handover::Occluder;
use cyclops::prelude::*;

/// Two fully-trained ceiling installations sharing one headset world
/// (full-size board and mapping budget, as in the paper's prototype).
fn two_units(seed: u64) -> Vec<TxInstallation> {
    let board = BoardConfig::default();
    [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                30,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect()
}

fn print_fleet(title: &str, fleet: &FleetSummary) {
    println!("\n{title}");
    println!(
        "{:>3} {:>10} {:>8} {:>8} {:>9} {:>10} {:>5} {:>7} {:>9} {:>7} {:>7}",
        "s",
        "seed",
        "signal",
        "up_frac",
        "gbps",
        "power_dBm",
        "hand",
        "outages",
        "worst_s",
        "dr",
        "reacq"
    );
    for s in &fleet.sessions {
        println!(
            "{:>3} {:>10x} {:>8.4} {:>8.4} {:>9.3} {:>10.2} {:>5} {:>7} {:>9.3} {:>7} {:>7}",
            s.session,
            s.seed & 0xffff_ffff,
            s.signal_frac,
            s.up_frac,
            s.mean_goodput_gbps,
            s.mean_power_dbm,
            s.handovers,
            s.stats.n_outages,
            s.stats.longest_outage_s,
            s.stats.n_extrapolated,
            s.stats.n_reacq_steps
        );
    }
    let r = fleet.rollup();
    println!(
        "fleet: {} sessions x {} slots  mean signal {:.4}, mean up {:.4} (min {:.4})  \
         aggregate {:.2} Gbps  {} handovers  {} outages (worst {:.3} s)",
        r.n_sessions,
        r.total_slots / r.n_sessions.max(1),
        r.mean_signal_frac,
        r.mean_up_frac,
        r.min_up_frac,
        r.sum_goodput_gbps,
        r.total_handovers,
        r.total_outages,
        r.worst_outage_s
    );
    if r.ctrl_sent > 0 {
        println!(
            "control: {} sent, {} delivered, {} retransmits  \
             ({} dead-reckoned cmds, {} re-acq probes)",
            r.ctrl_sent,
            r.ctrl_delivered,
            r.ctrl_retransmits,
            r.total_extrapolated,
            r.total_reacq_steps
        );
    }
    if r.total_rf_slots > 0 {
        println!(
            "rf fallback: {} failovers, {} failbacks, {} RF slots \
             (mean rf_frac {:.4}), {:.2} Gb delivered over RF",
            r.total_failovers,
            r.total_failbacks,
            r.total_rf_slots,
            r.mean_rf_frac,
            r.rf_delivered_gb
        );
    }
    if let Some(t) = &r.telemetry {
        println!(
            "telemetry: {} TP commands ({} dead-reckoned, {} handover shots), \
             {} ctrl drops, {} SFP downs; margin_db mean {:.2} (min {:.2}), \
             outage_s mean {:.3}",
            t.events.tp_commands,
            t.events.tp_dead_reckoned,
            t.events.tp_handover_shots,
            t.events.ctrl_dropped,
            t.events.sfp_downs,
            t.margin_db.mean(),
            t.margin_db.min().unwrap_or(f64::NAN),
            t.outage_s.mean()
        );
        println!("telemetry rollup: {}", t.to_json());
    }
}

fn main() {
    println!("ext_multi_user: training 2 ceiling installations ...");
    let units = two_units(911);
    let tx0 = units[0].dep.tx_world_params().q2;
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));

    // Clean fleet: 8 users, perfect control channel, unobstructed room.
    // 6 s per session leaves room to recover from an outage (the SFP relink
    // alone takes ~2.5 s).
    let clean = FleetConfig {
        n_sessions: 8,
        duration_s: 6.0,
        seed: 424,
        collect_telemetry: true,
        ..FleetConfig::default()
    };
    let fleet_clean = run_fleet(&units, &clean);
    print_fleet("clean fleet (8 users, 2 TX units, no faults)", &fleet_clean);

    // Hostile fleet: per-session roaming occluder plus the stress fault plan
    // on a hardened control plane (ARQ + dead reckoning + re-acquisition).
    let hostile = FleetConfig {
        control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(5))),
        occluders: vec![Occluder::new(tx0.lerp(base.trans, 0.5), 0.12, 0.4, 0)],
        ..clean
    };
    let fleet_hostile = run_fleet(&units, &hostile);
    print_fleet(
        "hostile fleet (roaming occluders, stress fault plan, hardened control)",
        &fleet_hostile,
    );

    let rc = fleet_clean.rollup();
    let rh = fleet_hostile.rollup();
    println!(
        "\nsummary: clean signal {:.4} / up {:.4} vs hostile signal {:.4} / up {:.4}; \
         hostile paid {} handovers and {} dead-reckoned commands across {} sessions",
        rc.mean_signal_frac,
        rc.mean_up_frac,
        rh.mean_signal_frac,
        rh.mean_up_frac,
        rh.total_handovers,
        rh.total_extrapolated,
        rh.n_sessions
    );
    assert!(
        rc.mean_up_frac >= rh.mean_up_frac,
        "clean fleet cannot be worse than the hostile one"
    );

    // Hybrid-fallback ablation: the hostile fleet again with RF-on-outage.
    // The FSO timeline is policy-invariant, so availability and goodput can
    // only gain the RF-covered slots — and on this workload they must
    // strictly improve.
    let hostile_rf = FleetConfig {
        fallback: FallbackPolicy::RfOnOutage,
        ..hostile
    };
    let fleet_rf = run_fleet(&units, &hostile_rf);
    print_fleet(
        "hostile fleet + RF fallback (RfOnOutage, same seeds)",
        &fleet_rf,
    );
    let rf = fleet_rf.rollup();
    println!(
        "\nfallback ablation: hostile up {:.4} / {:.2} Gbps sum -> with RF {:.4} / {:.2} Gbps \
         ({} failovers, mean rf_frac {:.4})",
        rh.mean_up_frac,
        rh.sum_goodput_gbps,
        rf.mean_up_frac,
        rf.sum_goodput_gbps,
        rf.total_failovers,
        rf.mean_rf_frac
    );
    assert_eq!(
        rh.total_rf_slots, 0,
        "fallback-off fleet must never ride RF"
    );
    assert!(rf.total_failovers >= 1, "hostile fleet must fail over");
    assert!(
        rf.mean_up_frac > rh.mean_up_frac,
        "RF fallback must strictly improve hostile availability ({} vs {})",
        rf.mean_up_frac,
        rh.mean_up_frac
    );
    assert!(
        rf.sum_goodput_gbps > rh.sum_goodput_gbps,
        "RF fallback must strictly improve hostile goodput ({} vs {})",
        rf.sum_goodput_gbps,
        rh.sum_goodput_gbps
    );

    // Contention ablation: the TX pool becomes a shared, scheduled resource
    // — 6 sessions over 2 units (N > M, so the pool is oversubscribed ~2.3x
    // by the bursty viewport traffic). The units get FSO-tuned SFPs: with
    // the paper's off-the-shelf 2.5 s re-lock (§5.3) the fleet spends ~84%
    // of its time in SFP dead time and every policy drowns in it; at a
    // 20 ms re-lock the link is signal-limited (availability ≈ 0.999) and
    // pool contention is the binding constraint. Same per-session channel
    // timelines under every policy — only who gets served differs.
    println!("\ncontention ablation: 6 sessions / 2 shared TX units, bursty viewport traffic");
    let mut sched_units = units.clone();
    for u in &mut sched_units {
        u.dep.design.sfp.relink_time_s = 0.02;
    }
    let sched_fleet = FleetConfig {
        n_sessions: 6,
        duration_s: 6.0,
        seed: 777,
        ..FleetConfig::default()
    };
    // Offered load is tuned to a *moderate* overload (~2.2 Gbps/session,
    // ~1.4x the effective pool capacity): heavy enough that greedy starves
    // the weak sessions outright, light enough that a fairly-served session
    // mostly keeps up — which is what separates the policies on stall time.
    let traffic = TrafficConfig {
        base_frame_mbit: 23.0,
        ..TrafficConfig::default()
    };
    let mut policies = [
        ("static", SchedConfig::static_partition()),
        ("greedy", SchedConfig::greedy()),
        ("pf", SchedConfig::proportional_fair(1.0)),
    ];
    for (_, sc) in &mut policies {
        sc.traffic = traffic;
    }
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>11} {:>12} {:>9} {:>6}",
        "policy",
        "mean_avail",
        "min_avail",
        "agg_gbps",
        "stall_frac",
        "worst_stall",
        "preempts",
        "jain"
    );
    let mut rolls = Vec::new();
    for (name, sc) in &policies {
        let sum = run_fleet_scheduled(&sched_units, &sched_fleet, sc).expect("valid sched config");
        for s in &sum.sessions {
            let sc = s.sched.expect("scheduled session stats");
            println!(
                "    s{} granted {:>5} served {:>5} denied {:>5} retarget {:>4} \
                 preempts {:>3} delivered {:>6.2} Gb offered {:>6.2} Gb stall {:>5.2} s",
                s.session,
                sc.granted_slots,
                sc.served_slots,
                sc.denied_slots,
                sc.retarget_slots,
                sc.preempts,
                sc.delivered_gb,
                sc.offered_gb,
                sc.stall_s
            );
        }
        let r = sum.rollup().sched.expect("scheduled fleet must roll up");
        println!(
            "{:>8} {:>10.4} {:>9.4} {:>9.2} {:>11.4} {:>11.3}s {:>9} {:>6.3}",
            name,
            r.mean_availability,
            r.min_availability,
            r.sum_served_gbps,
            r.mean_stall_frac,
            r.worst_stall_s,
            r.total_preempts,
            r.fairness_jain
        );
        rolls.push(r);
    }
    let (st, gr, pf) = (rolls[0], rolls[1], rolls[2]);
    println!(
        "\nscheduling tradeoff: greedy wins aggregate ({:.2} vs pf {:.2} Gbps), \
         pf wins worst-session stall ({:.3} vs greedy {:.3} s), \
         both beat static partition on mean availability ({:.4} / {:.4} vs {:.4})",
        gr.sum_served_gbps,
        pf.sum_served_gbps,
        pf.worst_stall_s,
        gr.worst_stall_s,
        gr.mean_availability,
        pf.mean_availability,
        st.mean_availability
    );
    assert!(
        pf.worst_stall_s < gr.worst_stall_s,
        "proportional-fair must beat greedy on worst-session stall ({} vs {})",
        pf.worst_stall_s,
        gr.worst_stall_s
    );
    assert!(
        gr.sum_served_gbps > pf.sum_served_gbps,
        "greedy must beat proportional-fair on aggregate goodput ({} vs {})",
        gr.sum_served_gbps,
        pf.sum_served_gbps
    );
    assert!(
        gr.mean_availability > st.mean_availability,
        "greedy must beat static partition on mean availability ({} vs {})",
        gr.mean_availability,
        st.mean_availability
    );
    assert!(
        pf.mean_availability > st.mean_availability,
        "proportional-fair must beat static partition on mean availability ({} vs {})",
        pf.mean_availability,
        st.mean_availability
    );
}
