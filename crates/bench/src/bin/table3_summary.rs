//! **Table 3** — summary of results: speed requirements (§2) vs the speeds
//! tolerated by the 10G and 25G links for pure and mixed motions.

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, arbitrary_runs, linear_ladder, row, section, tolerated_speed};

/// Mixed-motion tolerated speeds: the largest simultaneous (linear, angular)
/// bin whose windows stay ≥ 95 % optimal.
fn mixed_tolerated(sys: &CyclopsSystem, seed: u64) -> (f64, f64) {
    let configs: Vec<(f64, f64, u64)> = [(0.06, 0.1), (0.12, 0.2), (0.2, 0.35), (0.3, 0.55)]
        .iter()
        .enumerate()
        .map(|(k, &(lin_rms, ang_rms))| (lin_rms, ang_rms, seed + k as u64))
        .collect();
    let windows: Vec<_> = arbitrary_runs(sys, &configs, 16.0)
        .into_iter()
        .flatten()
        .collect();
    let optimal = sys.dep.design.sfp.optimal_goodput_gbps;
    let windows: Vec<_> = windows.iter().filter(|w| w.relink_frac < 0.1).collect();
    // Scan candidate simultaneous thresholds on a grid; accept the largest
    // pair such that windows with BOTH speeds just below it are ≥95% optimal.
    let mut best = (0.0, 0.0);
    for lin_thr in [0.10, 0.15, 0.20, 0.25, 0.30, 0.35] {
        for ang_thr_deg in [8.0, 12.0, 16.0, 20.0, 25.0] {
            let sel: Vec<_> = windows
                .iter()
                .filter(|w| {
                    w.lin >= lin_thr * 0.6
                        && w.lin < lin_thr
                        && w.ang.to_degrees() >= ang_thr_deg * 0.6
                        && w.ang.to_degrees() < ang_thr_deg
                })
                .collect();
            if sel.len() < 10 {
                continue;
            }
            let opt = sel.iter().filter(|w| w.goodput >= 0.95 * optimal).count() as f64
                / sel.len() as f64;
            if opt >= 0.95 && lin_thr * ang_thr_deg > best.0 * best.1 {
                best = (lin_thr, ang_thr_deg);
            }
        }
    }
    best
}

fn main() {
    section("Table 3: requirements vs tolerated speeds");
    println!("commissioning 10G and 25G systems (paper-scale) ...");
    let sys10 = CyclopsSystem::commission(&SystemConfig::paper_10g(31));
    let sys25 = CyclopsSystem::commission(&SystemConfig::paper_25g(31));

    let lin_speeds: Vec<f64> = (1..=14).map(|k| k as f64 * 0.05).collect();
    let ang_speeds: Vec<f64> = (1..=15).map(|k| (k as f64 * 2.0f64).to_radians()).collect();

    let lin10 = tolerated_speed(&linear_ladder(&sys10, &lin_speeds, 6.0)) * 100.0;
    let ang10 = tolerated_speed(&angular_ladder(&sys10, &ang_speeds, 6.0)).to_degrees();
    let lin25 = tolerated_speed(&linear_ladder(&sys25, &lin_speeds, 6.0)) * 100.0;
    let ang25 = tolerated_speed(&angular_ladder(&sys25, &ang_speeds, 6.0)).to_degrees();
    let (mlin10, mang10) = mixed_tolerated(&sys10, 310);
    let (mlin25, mang25) = mixed_tolerated(&sys25, 320);

    println!();
    let widths = [18, 8, 12, 12, 12, 12];
    row(
        &[
            "".into(),
            "req §2".into(),
            "10G pure".into(),
            "10G mixed".into(),
            "25G pure".into(),
            "25G mixed".into(),
        ],
        &widths,
    );
    row(
        &[
            "Linear (cm/s)".into(),
            "14".into(),
            format!("{lin10:.0}"),
            format!("{:.0}", mlin10 * 100.0),
            format!("{lin25:.0}"),
            format!("{:.0}", mlin25 * 100.0),
        ],
        &widths,
    );
    row(
        &[
            "Angular (deg/s)".into(),
            "19".into(),
            format!("{ang10:.0}"),
            format!("{mang10:.0}"),
            format!("{ang25:.0}"),
            format!("{mang25:.0}"),
        ],
        &widths,
    );
    println!("\npaper Table 3:      10G pure 33 / 16-18, 10G mixed 30 / 16,");
    println!("                    25G pure 25 / 25,    25G mixed 15 / 15-20.");
}
