//! **Fig 13** — 10G throughput and received power under purely linear and
//! purely angular motions (§5.3).
//!
//! Paper: "the link throughput remains optimal at 9.4 Gbps for linear speeds
//! below 33 cm/sec ... \[and] for angular speeds below 16–18 deg/sec"; power
//! stays above −25…−30 dBm inside those bounds and degrades gracefully
//! beyond (−32 dBm at 70 cm/s, −38 dBm at 100 deg/s).

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, linear_ladder, row, section, tolerated_speed};

fn main() {
    let seed = 13u64;
    println!("commissioning 10G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));

    section("Fig 13 (top): purely linear motion — throughput & power vs speed");
    let speeds: Vec<f64> = (1..=16).map(|k| k as f64 * 0.05).collect(); // 5..80 cm/s
    let pts = linear_ladder(&sys, &speeds, 6.0);
    let widths = [12, 16, 16, 16];
    row(
        &[
            "cm/s".into(),
            "optimal wins".into(),
            "goodput Gbps".into(),
            "min power dBm".into(),
        ],
        &widths,
    );
    for p in &pts {
        row(
            &[
                format!("{:.0}", p.speed * 100.0),
                format!("{:.0}%", p.optimal_frac * 100.0),
                format!("{:.2}", p.mean_goodput),
                format!("{:.1}", p.min_power),
            ],
            &widths,
        );
    }
    let tol_lin = tolerated_speed(&pts) * 100.0;
    println!("\ntolerated linear speed: {tol_lin:.0} cm/s (paper: 33 cm/s; requirement 14 cm/s)");

    section("Fig 13 (bottom): purely angular motion — throughput & power vs speed");
    let speeds_deg: Vec<f64> = (1..=13).map(|k| k as f64 * 2.0).collect(); // 2..26 deg/s
    let pts_a = angular_ladder(
        &sys,
        &speeds_deg
            .iter()
            .map(|d| d.to_radians())
            .collect::<Vec<_>>(),
        6.0,
    );
    row(
        &[
            "deg/s".into(),
            "optimal wins".into(),
            "goodput Gbps".into(),
            "min power dBm".into(),
        ],
        &widths,
    );
    for p in &pts_a {
        row(
            &[
                format!("{:.0}", p.speed.to_degrees()),
                format!("{:.0}%", p.optimal_frac * 100.0),
                format!("{:.2}", p.mean_goodput),
                format!("{:.1}", p.min_power),
            ],
            &widths,
        );
    }
    let tol_ang = tolerated_speed(&pts_a).to_degrees();
    println!(
        "\ntolerated angular speed: {tol_ang:.0} deg/s (paper: 16-18 deg/s; requirement 19 deg/s)"
    );
}
