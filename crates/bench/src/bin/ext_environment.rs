//! **Extension: environment ablation** — what weather and people do to an
//! indoor FSO link, and what the RF fallback buys back.
//!
//! The paper evaluates clean indoor air only. This bin attaches the
//! composable environment layer (`link::channel::EnvStage`) to the 25G
//! profile — the thin-margin build, where degradation actually bites — and
//! runs the same hand-held session three ways:
//!
//! 1. **clean** — no environment, FSO only (the paper's regime);
//! 2. **fog + crossings** — dense Kim-model fog plus transient human beam
//!    crossings, FSO only: every crossing forces the multi-second SFP
//!    relink, so availability drops hard;
//! 3. **fog + crossings + RF** — the same environment with
//!    `FallbackPolicy::RfOnOutage`: the link degrades to the RF ladder
//!    instead of zero, and availability recovers.
//!
//! A fog-density sweep (no crossings) is printed alongside: over the
//! paper's 1.75 m path even dense fog costs only a few dB of Beer–Lambert
//! loss — but a few dB is exactly the 25G margin, so availability falls off
//! a cliff between density 0.5 and 1.0 while the 10G diverging build would
//! shrug it off. The headline asserts are strict: the clean→fog+crossings
//! drop and the RF recovery must reproduce on every run (everything is
//! seeded; the digest discipline of the engine applies).
//!
//! ```sh
//! cargo run --release -p cyclops-bench --bin ext_environment
//! ```

use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;

const SEED: u64 = 2_026;
const DURATION_S: f64 = 12.0;

/// One session of the fixed workload: the commissioned 25G system, the same
/// hand-held motion, an optional environment, an optional fallback.
fn run_session(
    sys: &CyclopsSystem,
    env: Option<&Environment>,
    fallback: FallbackPolicy,
) -> (Vec<EngineSlot>, SessionStats) {
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    // Gentle hand-held motion (fig 15's lowest mixed intensity) under the
    // paper's §5.3 protocol: the operator pauses on link loss and resumes
    // when it is back, so the clean 25G baseline is healthy and every
    // availability loss below is attributable to the environment.
    let motion_cfg = ArbitraryMotionConfig {
        lin_rms: 0.05,
        ang_rms: 0.08,
        ..Default::default()
    };
    let motion = ArbitraryMotion::new(base, motion_cfg, SEED ^ 0x611);
    let mut builder = sys
        .clone()
        .into_session_builder(motion)
        .pause_on_outage(true)
        .fallback(fallback);
    if let Some(env) = env {
        builder = builder.environment(env.clone());
    }
    let mut session = builder.build().expect("valid engine config");
    let recs = session.run(DURATION_S);
    let stats = session.session_stats();
    (recs, stats)
}

struct Row {
    name: &'static str,
    up_frac: f64,
    signal_frac: f64,
    rf_frac: f64,
    goodput: f64,
    outages: u64,
    longest_s: f64,
}

fn row(name: &'static str, recs: &[EngineSlot], stats: &SessionStats, sens: f64) -> Row {
    let n = recs.len().max(1) as f64;
    Row {
        name,
        up_frac: recs.iter().filter(|r| r.link_up).count() as f64 / n,
        signal_frac: recs.iter().filter(|r| r.power_dbm >= sens).count() as f64 / n,
        rf_frac: recs.iter().filter(|r| r.rf_active).count() as f64 / n,
        goodput: recs.iter().map(|r| r.goodput_gbps).sum::<f64>() / n,
        outages: stats.n_outages,
        longest_s: stats.longest_outage_s,
    }
}

fn main() {
    // The registry's 25G build: LR optics (thin margin), fast galvo, Rift-S
    // tracking — commissioned once and cloned per run.
    let hw = HardwareProfile::named("25g-lr", "galvo-fast", "rift-s")
        .expect("preset profiles are registered");
    println!("commissioning {} ...", hw.label());
    // Full paper-scale training (§4 board + 30 placements): the 25G margin
    // is thin enough that the CLI's fast budget leaves the clean baseline
    // marginal, which would confound the ablation.
    let cfg = SystemConfig {
        board: BoardConfig::default(),
        mapping_samples: 30,
        ..SystemConfig::from_profile(&hw, SEED)
    };
    let sys = CyclopsSystem::commission(&cfg);
    let sens = sys.dep.design.sfp.rx_sensitivity_dbm;
    let wavelength = sys.dep.design.sfp.wavelength_nm;

    // The hostile environment: dense fog (Kim model at the SFP wavelength)
    // plus human beam crossings (~3/min, deep body shadow).
    let hostile = Environment::new()
        .stage(FogStage::from_density(0.7, wavelength).expect("valid density"))
        .stage(
            HumanOccluderStage::new(3.0, 0.6, 30.0, cyclops_par::mix64(SEED, 0x0cc1))
                .expect("valid crossing config"),
        );
    println!(
        "environment: {:?} over {DURATION_S} s\n",
        hostile.stage_names()
    );

    let (clean_recs, clean_stats) = run_session(&sys, None, FallbackPolicy::Off);
    let (fog_recs, fog_stats) = run_session(&sys, Some(&hostile), FallbackPolicy::Off);
    let (rf_recs, rf_stats) = run_session(&sys, Some(&hostile), FallbackPolicy::RfOnOutage);

    let rows = [
        row("clean, fso-only", &clean_recs, &clean_stats, sens),
        row("fog+crossings, fso-only", &fog_recs, &fog_stats, sens),
        row("fog+crossings, rf-fallback", &rf_recs, &rf_stats, sens),
    ];
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}",
        "scenario", "up_frac", "signal", "rf_frac", "gbps", "outages", "longest_s"
    );
    for r in &rows {
        println!(
            "{:<28} {:>8.4} {:>8.4} {:>8.4} {:>9.3} {:>8} {:>9.3}",
            r.name, r.up_frac, r.signal_frac, r.rf_frac, r.goodput, r.outages, r.longest_s
        );
    }

    // Fog-density sweep, crossings off: Beer–Lambert over 1.75 m indoors.
    println!("\nfog-only sweep (no crossings, fso-only):");
    println!(
        "{:>8} {:>9} {:>8} {:>8}",
        "density", "atten_dB", "up_frac", "signal"
    );
    for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let fog = FogStage::from_density(d, wavelength).expect("valid density");
        let mut env = Environment::new().stage(fog);
        let att = env.attenuation_db(0.0, 1.75);
        let (recs, stats) = run_session(&sys, Some(&env), FallbackPolicy::Off);
        let r = row("fog", &recs, &stats, sens);
        println!(
            "{d:>8.2} {att:>9.2} {:>8.4} {:>8.4}",
            r.up_frac, r.signal_frac
        );
    }

    // Strict ablation asserts: the scenario ordering is the experiment.
    let (clean, fog, rf) = (&rows[0], &rows[1], &rows[2]);
    assert!(
        clean.up_frac >= 0.90,
        "clean 25G baseline must be healthy: up {}",
        clean.up_frac
    );
    assert!(
        fog.up_frac <= clean.up_frac - 0.10,
        "fog+crossings must cost >= 10% availability FSO-only: clean {} fog {}",
        clean.up_frac,
        fog.up_frac
    );
    assert!(
        fog.outages >= 1,
        "crossings must force at least one SFP relink"
    );
    assert!(
        rf.up_frac >= fog.up_frac + 0.05 && rf.up_frac >= 0.90,
        "RfOnOutage must recover availability: fog {} rf {}",
        fog.up_frac,
        rf.up_frac
    );
    assert!(
        rf.rf_frac > 0.0,
        "the RF fallback must actually carry slots: rf_frac {}",
        rf.rf_frac
    );
    assert!(
        rf.goodput < clean.goodput,
        "RF recovery is degraded service, not free: clean {} rf {}",
        clean.goodput,
        rf.goodput
    );
    println!("\nablation asserts hold: clean -> fog drop, RF recovery");
}
