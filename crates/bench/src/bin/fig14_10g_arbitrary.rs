//! **Fig 14** — 10G throughput and received power under arbitrary (mixed
//! hand-held) motions (§5.3 "User Study").
//!
//! Paper: "the link maintains optimal throughput for motions undergoing
//! simultaneous linear and angular speeds of below 30 cm/sec and 16–18
//! degrees/sec respectively", with power above −40 dBm up to ~100 deg/s.

use cyclops::link::simulator::Window;
use cyclops::prelude::*;
use cyclops_bench::{arbitrary_runs, print_speed_bins, row, section};

const INTENSITIES: [(f64, f64); 5] = [
    (0.05, 0.08),
    (0.10, 0.15),
    (0.16, 0.25),
    (0.24, 0.40),
    (0.35, 0.70),
];

fn main() {
    let seed = 14u64;
    println!("commissioning 10G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));

    section("Fig 14: arbitrary hand-held motion — binned 50 ms windows");
    // One run per intensity (fanned out across threads); the same windows
    // feed both the pooled bin table and the per-intensity uptime summary.
    let configs: Vec<(f64, f64, u64)> = INTENSITIES
        .iter()
        .enumerate()
        .map(|(k, &(lin_rms, ang_rms))| (lin_rms, ang_rms, seed + k as u64))
        .collect();
    let per_intensity: Vec<Vec<Window>> = arbitrary_runs(&sys, &configs, 20.0);
    let pooled: Vec<Window> = per_intensity.iter().flatten().copied().collect();
    println!("{} windows collected\n", pooled.len());

    let optimal = sys.dep.design.sfp.optimal_goodput_gbps;
    print_speed_bins(
        &pooled,
        &[0.0, 0.10, 0.20, 0.30, 0.45, 10.0],
        &[0.0, 8.0, 16.0, 24.0, 40.0, 1000.0],
        optimal,
        true,
        8,
    );

    // Per-intensity availability: the overall picture including relink
    // deadtime (the paper's time series show these recovery gaps).
    println!();
    let widths = [22, 22, 14];
    row(
        &[
            "intensity (rms)".into(),
            "peak speeds seen".into(),
            "link uptime".into(),
        ],
        &widths,
    );
    for ((lin_rms, ang_rms), ws) in INTENSITIES.iter().zip(&per_intensity) {
        let up = ws.iter().map(|w| w.up_frac).sum::<f64>() / ws.len() as f64;
        let max_lin = ws.iter().map(|w| w.lin).fold(0.0, f64::max) * 100.0;
        let max_ang = ws.iter().map(|w| w.ang).fold(0.0, f64::max).to_degrees();
        row(
            &[
                format!(
                    "{:.0} cm/s, {:.0} deg/s",
                    lin_rms * 100.0,
                    ang_rms.to_degrees()
                ),
                format!("{max_lin:.0} cm/s, {max_ang:.0} deg/s"),
                format!("{:.0}%", up * 100.0),
            ],
            &widths,
        );
    }
    println!("\npaper: optimal below ~30 cm/s and ~16-18 deg/s simultaneously;");
    println!("power stays above about -40 dBm for the fastest motions.");
}
