//! **Fig 15** — 25G prototype throughput under purely linear, purely
//! angular, and arbitrary motions (§5.3.1).
//!
//! Paper: optimal ~23.5 Gbps below 25 cm/s or 25 deg/s for pure motions;
//! for mixed motion, below ~15 cm/s with 15–20 deg/s (sometimes up to
//! 15 cm/s and 25 deg/s).

use cyclops::prelude::*;
use cyclops_bench::{
    angular_ladder, arbitrary_runs, linear_ladder, print_speed_bins, row, section, tolerated_speed,
};

fn main() {
    let seed = 15u64;
    println!("commissioning 25G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_25g(seed));

    section("Fig 15 (left top): 25G purely linear motion");
    let speeds: Vec<f64> = (1..=12).map(|k| k as f64 * 0.05).collect();
    let pts = linear_ladder(&sys, &speeds, 6.0);
    let widths = [12, 16, 16, 16];
    row(
        &[
            "cm/s".into(),
            "optimal wins".into(),
            "goodput Gbps".into(),
            "min power dBm".into(),
        ],
        &widths,
    );
    for p in &pts {
        row(
            &[
                format!("{:.0}", p.speed * 100.0),
                format!("{:.0}%", p.optimal_frac * 100.0),
                format!("{:.2}", p.mean_goodput),
                format!("{:.1}", p.min_power),
            ],
            &widths,
        );
    }
    println!(
        "\ntolerated linear speed: {:.0} cm/s (paper: 25 cm/s)",
        tolerated_speed(&pts) * 100.0
    );

    section("Fig 15 (left bottom): 25G purely angular motion");
    let speeds_deg: Vec<f64> = (1..=15).map(|k| k as f64 * 2.0).collect();
    let pts_a = angular_ladder(
        &sys,
        &speeds_deg
            .iter()
            .map(|d| d.to_radians())
            .collect::<Vec<_>>(),
        6.0,
    );
    row(
        &[
            "deg/s".into(),
            "optimal wins".into(),
            "goodput Gbps".into(),
            "min power dBm".into(),
        ],
        &widths,
    );
    for p in &pts_a {
        row(
            &[
                format!("{:.0}", p.speed.to_degrees()),
                format!("{:.0}%", p.optimal_frac * 100.0),
                format!("{:.2}", p.mean_goodput),
                format!("{:.1}", p.min_power),
            ],
            &widths,
        );
    }
    println!(
        "\ntolerated angular speed: {:.0} deg/s (paper: 25 deg/s)",
        tolerated_speed(&pts_a).to_degrees()
    );

    section("Fig 15 (right): 25G arbitrary motion");
    let configs: Vec<(f64, f64, u64)> = [(0.05, 0.08), (0.10, 0.18), (0.18, 0.30), (0.28, 0.5)]
        .iter()
        .enumerate()
        .map(|(k, &(lin_rms, ang_rms))| (lin_rms, ang_rms, seed + k as u64))
        .collect();
    let windows: Vec<_> = arbitrary_runs(&sys, &configs, 20.0)
        .into_iter()
        .flatten()
        .collect();
    let optimal = sys.dep.design.sfp.optimal_goodput_gbps;
    print_speed_bins(
        &windows,
        &[0.0, 0.08, 0.15, 0.25, 10.0],
        &[0.0, 8.0, 15.0, 25.0, 1000.0],
        optimal,
        false,
        8,
    );
    println!("\npaper: mixed motion stays optimal below ~15 cm/s with 15-20 deg/s.");
}
