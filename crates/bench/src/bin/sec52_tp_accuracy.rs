//! **§5.2 "TP Performance"** — tracking frequency, TP latency and accuracy.
//!
//! Regenerates the three measurements of the section:
//! * the VRH-T report-period distribution (12–13 ms, 0.7 % at 14–15 ms);
//! * the TP latency budget (computation µs-scale, ~1–2 ms DAC-dominated);
//! * the lock-in accuracy test: move randomly, lock, run TP once, compare
//!   received power/throughput against the exhaustively-aligned optimum
//!   (paper: 10/10 optimal throughput, power −13…−14 dBm vs −10 dBm peak).

use cyclops::core::deployment::cheat_align;
use cyclops::core::mapping;
use cyclops::prelude::*;
use cyclops_bench::{row, section};

fn main() {
    let seed = 52u64;
    section("§5.2: tracking frequency");
    // Tracking-period statistics from the tracker simulator.
    let mut tracker = VrhTracker::new(TrackerConfig::default());
    let headset =
        cyclops::vrh::headset::Headset::new(cyclops::vrh::headset::HeadsetConfig::identity());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let mut periods = Vec::new();
    let mut last = 0.0;
    for i in 0..50_000 {
        let rep = tracker.sample(&headset, &mut rng);
        if i > 0 {
            periods.push(rep.t_sample - last);
        }
        last = rep.t_sample;
    }
    let late = periods.iter().filter(|&&p| p >= 0.0139).count() as f64 / periods.len() as f64;
    let lo = periods.iter().cloned().fold(f64::INFINITY, f64::min) * 1e3;
    let hi = periods.iter().cloned().fold(0.0f64, f64::max) * 1e3;
    println!(
        "report period: {lo:.1}-{hi:.1} ms, {:.2}% late (paper: 12-13 ms, 0.7% at 14-15 ms)",
        late * 100.0
    );

    section("§5.2: TP lock-in accuracy (10 random realignments)");
    println!("commissioning 10G system ...");
    let mut sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));
    let widths = [6, 14, 14, 12, 10];
    row(
        &[
            "trial".into(),
            "TP power".into(),
            "optimal".into(),
            "gap (dB)".into(),
            "link".into(),
        ],
        &widths,
    );
    let mut ups = 0;
    let mut gaps = Vec::new();
    for trial in 0..10 {
        let pose = mapping::random_placement(sys.dep.rng(), 1.75);
        sys.move_headset(pose);
        let rep = sys.track();
        sys.point(&rep);
        let tp_power = sys.received_power_dbm();
        let up = sys.link_up();
        cheat_align(&mut sys.dep);
        let best = sys.received_power_dbm();
        gaps.push(best - tp_power);
        if up {
            ups += 1;
        }
        row(
            &[
                format!("{}", trial + 1),
                format!("{tp_power:.1} dBm"),
                format!("{best:.1} dBm"),
                format!("{:.1}", best - tp_power),
                (if up { "UP" } else { "DOWN" }).into(),
            ],
            &widths,
        );
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    println!("\n{ups}/10 trials at optimal link state (paper: 10/10)");
    println!("mean power gap to optimum: {mean_gap:.1} dB (paper: ~3-4 dB)");

    section("§5.2: TP latency");
    let m = &sys.ctl.metrics;
    println!(
        "pointing latency: mean {:.2} ms, max {:.2} ms over {} reports (paper: 1-2 ms)",
        m.mean_latency_s() * 1e3,
        m.max_latency_s * 1e3,
        m.n_reports
    );
    println!(
        "pointing iterations: mean {:.1}, max {} (paper: P converges in 2-5)",
        m.mean_iters(),
        m.max_iters
    );
    println!("pointing failures: {}", m.n_failures);
}
