//! **Fig 11** — TX and RX angular tolerance vs beam diameter at the RX.
//!
//! Paper: "RX angular tolerance peaks at 5.77 mrad at the 16 mm beam
//! diameter; we thus choose this." The sweep below regenerates both curves
//! (plus peak power, the underlying mechanism).

use cyclops::optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops::prelude::*;
use cyclops_bench::{row, section};

fn main() {
    section("Fig 11: angular tolerance vs beam diameter at RX (10G diverging, 1.75 m)");
    let r = 1.75;
    let widths = [10, 14, 14, 12];
    row(
        &[
            "dia (mm)".into(),
            "TX tol (mrad)".into(),
            "RX tol (mrad)".into(),
            "peak (dBm)".into(),
        ],
        &widths,
    );
    let mut best = (0.0f64, 0.0f64);
    for d_mm in [
        4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 28.0, 32.0, 40.0,
    ] {
        let d = LinkDesign::ten_g_diverging(d_mm * 1e-3, r);
        let tx = tx_angular_tolerance(&d, r) * 1e3;
        let rx = rx_angular_tolerance(&d, r) * 1e3;
        let chief = Ray::new(Vec3::ZERO, Vec3::Z);
        let rx_geom = ReceiverGeometry::new(Vec3::Z * r, -Vec3::Z);
        let peak = d.received_power_dbm(chief, &rx_geom);
        if rx > best.1 {
            best = (d_mm, rx);
        }
        row(
            &[
                format!("{d_mm:.0}"),
                format!("{tx:.2}"),
                format!("{rx:.2}"),
                format!("{peak:.1}"),
            ],
            &widths,
        );
    }
    println!(
        "\nRX tolerance peaks at {:.2} mrad @ {:.0} mm   (paper: 5.77 mrad @ 16 mm)",
        best.1, best.0
    );
    println!("mechanism: wider beams widen the angular acceptance of the blurred focal\nspot but drain the link margin; the product peaks mid-range.");
}
