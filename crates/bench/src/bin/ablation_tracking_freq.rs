//! **Ablation: tracking frequency** — the §5.2 prediction that "a custom
//! VRH-T with much higher tracking frequency will improve Cyclops's
//! performance significantly."
//!
//! Sweeps the VRH-T report rate (1×, 2×, 4×, 8× the Rift S's ~80 Hz) and
//! measures the tolerated linear and angular speeds of the 10G link.

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, linear_ladder, row, section, tolerated_speed};

fn main() {
    section("Ablation: VRH-T tracking frequency vs tolerated speeds (10G)");
    println!("commissioning base system ...");
    let base = CyclopsSystem::commission(&SystemConfig::paper_10g(81));

    let widths = [12, 12, 16, 18];
    row(
        &[
            "factor".into(),
            "rate (Hz)".into(),
            "linear (cm/s)".into(),
            "angular (deg/s)".into(),
        ],
        &widths,
    );
    for factor in [1.0, 2.0, 4.0, 8.0] {
        let mut sys = base.clone();
        sys.tracker = TrackerConfig::high_rate(factor);
        let lin_speeds: Vec<f64> = (1..=20).map(|k| k as f64 * 0.08).collect();
        let ang_speeds: Vec<f64> = (1..=20).map(|k| (k as f64 * 5.0f64).to_radians()).collect();
        let lin = tolerated_speed(&linear_ladder(&sys, &lin_speeds, 5.0)) * 100.0;
        let ang = tolerated_speed(&angular_ladder(&sys, &ang_speeds, 5.0)).to_degrees();
        let rate = 1.0 / ((sys.tracker.period_min_s + sys.tracker.period_max_s) / 2.0);
        row(
            &[
                format!("{factor:.0}x"),
                format!("{rate:.0}"),
                format!("{lin:.0}"),
                format!("{ang:.0}"),
            ],
            &widths,
        );
    }
    println!("\nthe drift budget per report interval is fixed by the link tolerance, so");
    println!("tolerated speed scales ~linearly with tracking rate until the TP latency");
    println!("(~1.5 ms DAC + settle) becomes the bottleneck.");
}
