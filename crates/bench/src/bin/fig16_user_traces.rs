//! **Fig 16** — CDF of per-trace link disconnection over 500 user traces
//! (§5.4), using the paper's own simulation methodology.
//!
//! Paper: "our 25 Gbps link prototype is operational in 98.6 % of the
//! timeslots over all the 500 traces, with the operation percentage varying
//! from 99.98 to 95 %"; effective bandwidth ≈ 23 Gbps; >60 % of off-slots
//! fall in frames with fewer than 10 off-slots.

use cyclops::link::trace_sim::{replay_with_fallback, simulate_trace, TraceSimParams};
use cyclops::prelude::*;
use cyclops_bench::{quantile, row, section};

/// §5.3's multi-second SFP re-lock applied to the §5.4 replay.
const RELINK_S: f64 = 2.5;
/// Top rung of the RF fallback ladder (Gbps).
const RF_RATE_GBPS: f64 = 2.31;
/// The 25G prototype's effective FSO rate (Gbps).
const FSO_RATE_GBPS: f64 = 23.5;

fn main() {
    section("Fig 16: §5.4 user-trace study (500 synthetic 360°-viewing traces)");
    let corpus = HeadTrace::generate_corpus(1600, 50, 10);
    println!("{} traces x {:.0} s", corpus.len(), corpus[0].duration_s());

    let p = TraceSimParams::default();
    println!(
        "TP model: realign {:.1} ms after each report, residual {:.2} mm / {:.2} mrad,\n tolerance {:.0} mm / {:.2} mrad (the paper's §5.4 constants)\n",
        p.realign_latency_ms,
        p.residual_lat_m * 1e3,
        p.residual_ang_rad * 1e3,
        p.tol_lat_m * 1e3,
        p.tol_ang_rad * 1e3
    );

    let mut on_fracs = Vec::with_capacity(corpus.len());
    let mut total_off = 0usize;
    let mut total_slots = 0usize;
    let mut scattered_off = 0.0f64;
    let mut replays_off = Vec::with_capacity(corpus.len());
    let mut replays_on = Vec::with_capacity(corpus.len());
    for tr in &corpus {
        let r = simulate_trace(tr, &p);
        total_off += r.off_slots();
        total_slots += r.slots_on.len();
        if r.off_slots() > 0 {
            scattered_off += r.off_slot_scatter_fraction(30, 10) * r.off_slots() as f64;
        }
        replays_off.push(replay_with_fallback(
            &r.slots_on,
            p.slot_ms,
            RELINK_S,
            FallbackPolicy::Off,
            RF_RATE_GBPS,
            FSO_RATE_GBPS,
        ));
        replays_on.push(replay_with_fallback(
            &r.slots_on,
            p.slot_ms,
            RELINK_S,
            FallbackPolicy::RfOnOutage,
            RF_RATE_GBPS,
            FSO_RATE_GBPS,
        ));
        on_fracs.push(r.on_fraction);
    }

    // The CDF of disconnection percentage (x-axis of Fig 16).
    let off_pcts: Vec<f64> = on_fracs.iter().map(|f| (1.0 - f) * 100.0).collect();
    let widths = [26, 12];
    row(&["disconnected ≤ (% slots)".into(), "CDF".into()], &widths);
    for thr in [0.02, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        let frac = off_pcts.iter().filter(|&&o| o <= thr).count() as f64 / off_pcts.len() as f64;
        row(
            &[format!("{thr:.2}%"), format!("{:.1}%", frac * 100.0)],
            &widths,
        );
    }

    let overall_on = 1.0 - total_off as f64 / total_slots as f64;
    let best = quantile(&on_fracs, 1.0) * 100.0;
    let worst = quantile(&on_fracs, 0.0) * 100.0;
    println!(
        "\noverall operational slots: {:.2}% (paper: 98.6%)",
        overall_on * 100.0
    );
    println!("per-trace range: {worst:.2}%..{best:.2}% (paper: 95%..99.98%)");
    println!(
        "effective bandwidth: {:.1} Gbps of 23.5 (paper: ~23 Gbps)",
        overall_on * 23.5
    );
    let scatter = if total_off > 0 {
        scattered_off / total_off as f64
    } else {
        1.0
    };
    println!(
        "off-slots in frames with <10/30 off: {:.0}% (paper: >60%)",
        scatter * 100.0
    );

    // --- Hybrid FSO/RF fallback ablation: the same 500 traces replayed
    // through the §5.3 SFP re-lock (an alignment loss costs a multi-second
    // outage, not just its own slots) with the fallback off vs on.
    section("Hybrid fallback ablation (same corpus, §5.3 SFP re-lock applied)");
    let n = replays_off.len() as f64;
    let mean =
        |f: &dyn Fn(&FallbackReplay) -> f64, v: &[FallbackReplay]| v.iter().map(f).sum::<f64>() / n;
    let up_off = mean(&|r| r.up_frac, &replays_off);
    let up_on = mean(&|r| r.up_frac, &replays_on);
    let bw_off = mean(&|r| r.effective_gbps, &replays_off);
    let bw_on = mean(&|r| r.effective_gbps, &replays_on);
    let rf_on = mean(&|r| r.rf_frac, &replays_on);
    let failovers: u64 = replays_on.iter().map(|r| r.failovers).sum();
    let widths = [26, 14, 14];
    row(
        &["".into(), "fallback off".into(), "RfOnOutage".into()],
        &widths,
    );
    row(
        &[
            "mean availability".into(),
            format!("{:.2}%", up_off * 100.0),
            format!("{:.2}%", up_on * 100.0),
        ],
        &widths,
    );
    row(
        &[
            "mean effective bw (Gbps)".into(),
            format!("{bw_off:.2}"),
            format!("{bw_on:.2}"),
        ],
        &widths,
    );
    row(
        &[
            "mean RF-carried slots".into(),
            "0.00%".into(),
            format!("{:.2}%", rf_on * 100.0),
        ],
        &widths,
    );
    println!("\nfailovers across the corpus: {failovers}");
    let worst_off = replays_off
        .iter()
        .map(|r| r.up_frac)
        .fold(f64::INFINITY, f64::min);
    let worst_on = replays_on
        .iter()
        .map(|r| r.up_frac)
        .fold(f64::INFINITY, f64::min);
    println!(
        "worst-trace availability: {:.2}% -> {:.2}%",
        worst_off * 100.0,
        worst_on * 100.0
    );
    assert!(
        up_on > up_off,
        "fallback must strictly improve mean availability ({up_on} vs {up_off})"
    );
    assert!(
        bw_on > bw_off,
        "fallback must strictly improve mean effective bandwidth ({bw_on} vs {bw_off})"
    );
    println!("ablation holds: availability and effective bandwidth strictly improve");
}
