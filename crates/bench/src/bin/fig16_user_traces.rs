//! **Fig 16** — CDF of per-trace link disconnection over 500 user traces
//! (§5.4), using the paper's own simulation methodology.
//!
//! Paper: "our 25 Gbps link prototype is operational in 98.6 % of the
//! timeslots over all the 500 traces, with the operation percentage varying
//! from 99.98 to 95 %"; effective bandwidth ≈ 23 Gbps; >60 % of off-slots
//! fall in frames with fewer than 10 off-slots.

use cyclops::link::trace_sim::{simulate_trace, TraceSimParams};
use cyclops::prelude::*;
use cyclops_bench::{quantile, row, section};

fn main() {
    section("Fig 16: §5.4 user-trace study (500 synthetic 360°-viewing traces)");
    let corpus = HeadTrace::generate_corpus(1600, 50, 10);
    println!("{} traces x {:.0} s", corpus.len(), corpus[0].duration_s());

    let p = TraceSimParams::default();
    println!(
        "TP model: realign {:.1} ms after each report, residual {:.2} mm / {:.2} mrad,\n tolerance {:.0} mm / {:.2} mrad (the paper's §5.4 constants)\n",
        p.realign_latency_ms,
        p.residual_lat_m * 1e3,
        p.residual_ang_rad * 1e3,
        p.tol_lat_m * 1e3,
        p.tol_ang_rad * 1e3
    );

    let mut on_fracs = Vec::with_capacity(corpus.len());
    let mut total_off = 0usize;
    let mut total_slots = 0usize;
    let mut scattered_off = 0.0f64;
    for tr in &corpus {
        let r = simulate_trace(tr, &p);
        total_off += r.off_slots();
        total_slots += r.slots_on.len();
        if r.off_slots() > 0 {
            scattered_off += r.off_slot_scatter_fraction(30, 10) * r.off_slots() as f64;
        }
        on_fracs.push(r.on_fraction);
    }

    // The CDF of disconnection percentage (x-axis of Fig 16).
    let off_pcts: Vec<f64> = on_fracs.iter().map(|f| (1.0 - f) * 100.0).collect();
    let widths = [26, 12];
    row(&["disconnected ≤ (% slots)".into(), "CDF".into()], &widths);
    for thr in [0.02, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0] {
        let frac = off_pcts.iter().filter(|&&o| o <= thr).count() as f64 / off_pcts.len() as f64;
        row(
            &[format!("{thr:.2}%"), format!("{:.1}%", frac * 100.0)],
            &widths,
        );
    }

    let overall_on = 1.0 - total_off as f64 / total_slots as f64;
    let best = quantile(&on_fracs, 1.0) * 100.0;
    let worst = quantile(&on_fracs, 0.0) * 100.0;
    println!(
        "\noverall operational slots: {:.2}% (paper: 98.6%)",
        overall_on * 100.0
    );
    println!("per-trace range: {worst:.2}%..{best:.2}% (paper: 95%..99.98%)");
    println!(
        "effective bandwidth: {:.1} Gbps of 23.5 (paper: ~23 Gbps)",
        overall_on * 23.5
    );
    let scatter = if total_off > 0 {
        scattered_off / total_off as f64
    } else {
        1.0
    };
    println!(
        "off-slots in frames with <10/30 off: {:.0}% (paper: >60%)",
        scatter * 100.0
    );
}
