//! **Table 2** — errors of the first and combined stages of estimating the
//! TX and RX GMA models (§5.2).
//!
//! Runs the full training pipeline at paper scale (266 board samples per
//! assembly, ~30 exhaustively-aligned mapping placements) and reports the
//! same four rows.

use cyclops::prelude::*;
use cyclops_bench::{row, section};

fn main() {
    section("Table 2: GMA model estimation errors (paper-scale training)");
    let seed = 2022u64;
    println!("commissioning 10G system, seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));
    let r = &sys.report;

    let widths = [22, 12, 12, 14, 14];
    row(
        &[
            "".into(),
            "avg (mm)".into(),
            "max (mm)".into(),
            "paper avg".into(),
            "paper max".into(),
        ],
        &widths,
    );
    let fmt = |s: &cyclops::solver::stats::ResidualStats| {
        (
            format!("{:.2}", s.mean * 1e3),
            format!("{:.2}", s.max * 1e3),
        )
    };
    let (a, m) = fmt(&r.kspace_tx);
    row(
        &[
            "First Stage (TX)".into(),
            a,
            m,
            "1.24".into(),
            "5.30".into(),
        ],
        &widths,
    );
    let (a, m) = fmt(&r.kspace_rx);
    row(
        &[
            "First Stage (RX)".into(),
            a,
            m,
            "1.90".into(),
            "5.41".into(),
        ],
        &widths,
    );
    let (a, m) = fmt(&r.combined_tx);
    row(
        &["Combined (TX)".into(), a, m, "2.18".into(), "4.07".into()],
        &widths,
    );
    let (a, m) = fmt(&r.combined_rx);
    row(
        &["Combined (RX)".into(), a, m, "4.54".into(), "6.50".into()],
        &widths,
    );

    println!(
        "\n{} mapping placements were aligned and used; the RX combined error\nexceeds the TX one because the RX model rides on the (noisy) VRH-T report —\nthe same asymmetry and explanation as the paper's.",
        r.mapping_samples_used
    );
}
