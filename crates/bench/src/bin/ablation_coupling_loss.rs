//! **Ablation: coupling loss** — the §5.3 prediction: "with even a 7–13 dB
//! improvement in the coupling loss, the prototype would be able to support
//! much higher movement speeds" (≈70 cm/s linear, ≈100 deg/s angular).
//!
//! Sweeps an improvement to the diverging-beam coupling (as custom optics
//! would provide) and reports (a) the physical link tolerances and (b) the
//! simulated tolerated speeds.

use cyclops::core::deployment::DeploymentConfig;
use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, linear_ladder, row, section, tolerated_speed};

fn improved(mut cfg: SystemConfig, gain_db: f64) -> SystemConfig {
    cfg.deployment.design.coupling.base_insertion_db += gain_db;
    cfg
}

fn main() {
    section("Ablation: coupling-loss improvement vs tolerance and tolerated speeds (10G)");
    let widths = [14, 14, 14, 16, 18];
    row(
        &[
            "improve (dB)".into(),
            "TX tol mrad".into(),
            "RX tol mrad".into(),
            "linear (cm/s)".into(),
            "angular (deg/s)".into(),
        ],
        &widths,
    );
    for gain in [0.0, 4.0, 7.0, 10.0, 13.0] {
        let cfg = improved(SystemConfig::paper_10g(82), gain);
        let d = cfg.deployment.design;
        let r = d.nominal_range;
        let txt = tx_angular_tolerance(&d, r) * 1e3;
        let rxt = rx_angular_tolerance(&d, r) * 1e3;
        // Simulated tolerated speeds (coarse ladders to bound runtime).
        let _ = DeploymentConfig::paper_10g(0); // (type anchor for readers)
        let sys = CyclopsSystem::commission(&cfg);
        let lin_speeds: Vec<f64> = (1..=16).map(|k| k as f64 * 0.08).collect();
        let ang_speeds: Vec<f64> = (1..=16).map(|k| (k as f64 * 7.0f64).to_radians()).collect();
        let lin = tolerated_speed(&linear_ladder(&sys, &lin_speeds, 5.0)) * 100.0;
        let ang = tolerated_speed(&angular_ladder(&sys, &ang_speeds, 5.0)).to_degrees();
        row(
            &[
                format!("+{gain:.0}"),
                format!("{txt:.1}"),
                format!("{rxt:.1}"),
                format!("{lin:.0}"),
                format!("{ang:.0}"),
            ],
            &widths,
        );
    }
    println!("\npaper's §5.3 extrapolation: +7..13 dB coupling -> ~70 cm/s and ~100 deg/s.");
}
