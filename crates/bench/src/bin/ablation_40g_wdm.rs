//! **Extension: the §6 path to 40 Gbps+** — multi-wavelength links and why
//! they need custom collimators.
//!
//! "For higher-bandwidth (40Gbps+) links, our designed TP mechanism remains
//! unchanged; however, the link would likely need customized collimators
//! that can efficiently capture a range of wavelengths." This harness
//! quantifies both halves of that sentence:
//!
//! 1. per-CWDM-lane link margins with a commodity vs a custom achromatic
//!    receive collimator;
//! 2. the TP mechanism running **unchanged** on the 100G geometry (the
//!    pointing math never sees a wavelength).

use cyclops::optics::wavelength::{ChromaticCollimator, WdmLink};
use cyclops::prelude::*;
use cyclops_bench::{row, section};

fn main() {
    section("Extension §6: 100G CWDM4 over the Cyclops geometry (1.5 m, 24 mm beam)");

    let widths = [12, 22, 20];
    row(
        &[
            "lane (nm)".into(),
            "commodity collimator".into(),
            "custom achromat".into(),
        ],
        &widths,
    );
    let commodity = WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::commodity(1311.0));
    let custom = WdmLink::hundred_g_cwdm4(12e-3, 1.5, ChromaticCollimator::custom_achromat(1311.0));
    for ((nm, mc), (_, mu)) in commodity
        .lane_margins_db()
        .into_iter()
        .zip(custom.lane_margins_db())
    {
        row(
            &[
                format!("{nm:.0}"),
                format!("{mc:+.1} dB{}", if mc < 0.0 { "  (DEAD)" } else { "" }),
                format!("{mu:+.1} dB"),
            ],
            &widths,
        );
    }
    println!(
        "\nlink closes: commodity = {}, custom achromat = {}",
        commodity.link_closes(),
        custom.link_closes()
    );
    println!("a multi-lane module is only up when every lane is: the chromatic focal");
    println!("shift of a commodity lens kills the outer CWDM lanes first — the §6 case");
    println!("for custom range-of-wavelength collimators.");

    section("Extension §6: the TP mechanism is wavelength-agnostic");
    // Commission the standard 10G system and re-point the *100G* geometry
    // with it: the pointing function only speaks voltages and geometry.
    let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(106));
    let mut ok = 0;
    for k in 0..5 {
        let pose = Pose::translation(Vec3::new(
            -0.1 + 0.05 * k as f64,
            0.04,
            1.7 + 0.04 * k as f64,
        ));
        sys.move_headset(pose);
        let rep = sys.track();
        sys.point(&rep);
        if sys.link_up() {
            ok += 1;
        }
    }
    println!("{ok}/5 pointing realignments succeeded — no TP change needed for WDM;");
    println!("only the optics (collimators, amplifier band) change with the bitrate.");
}
