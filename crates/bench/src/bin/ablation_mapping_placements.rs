//! **Ablation: mapping-placement budget** — why §4.2 uses ~30 exhaustive
//! placements.
//!
//! Stage 2 fits 12 parameters (two 6-DoF poses) from one 4-voltage/1-pose
//! tuple per placement. The paper settles on "approximately 30 data points";
//! this ablation sweeps the placement budget and measures (a) the held-out
//! combined Lemma-1 error (the Table-2 metric) and (b) the TP power gap to
//! the exhaustive optimum — showing where more alignment time stops paying.

use cyclops::core::deployment::{cheat_align, Deployment, DeploymentConfig};
use cyclops::core::kspace::{train_both, BoardConfig};
use cyclops::core::mapping;
use cyclops::core::tp::{TpConfig, TpController};
use cyclops::prelude::*;
use cyclops_bench::{row, section};

/// Mean TP power gap to the exhaustive optimum (dB) over `n` random
/// placements, for a controller built from the given mapping.
fn tp_gap(dep: &Deployment, ctl_src: &TpController, tracker: &TrackerConfig, n: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..n {
        let mut d = dep.clone();
        let mut ctl = ctl_src.clone();
        // Decorrelate placements across trials but keep them deterministic.
        for _ in 0..=k {
            let _ = mapping::random_placement(d.rng(), 1.75);
        }
        let pose = mapping::random_placement(d.rng(), 1.75);
        d.set_headset_pose(pose);
        let rep = mapping::noisy_report(&mut d, tracker);
        let cmd = ctl.on_report(&rep);
        d.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        let tp = d.received_power_dbm();
        cheat_align(&mut d);
        acc += d.received_power_dbm() - tp;
    }
    acc / n as f64
}

fn main() {
    let seed = 42u64;
    section("Ablation: mapping-placement budget vs accuracy (10G)");
    println!("running stage 1 (two 266-point boards, shared across all rows) ...\n");
    let base = Deployment::new(&DeploymentConfig::paper_10g(seed));
    let (tx_tr, tx_rig, rx_tr, rx_rig) =
        train_both(&base, &BoardConfig::default(), seed).expect("stage-1 training");
    let tracker = TrackerConfig::default();

    // Held-out evaluation set, shared across all budgets.
    let mut held_dep = base.clone();
    let held_out = mapping::collect_samples_with(&mut held_dep, 12, seed + 500, &tracker);

    let widths = [12, 18, 18, 20];
    row(
        &[
            "placements".into(),
            "held-out TX avg".into(),
            "held-out RX avg".into(),
            "TP gap to optimum".into(),
        ],
        &widths,
    );
    for n in [5usize, 8, 12, 20, 30, 45] {
        let mut dep = base.clone();
        let (init_tx, init_rx) =
            mapping::rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
        let mt = mapping::train_with(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            n,
            seed + 9 + n as u64,
            &tracker,
        );
        let (tx_e, rx_e) = mt.trained.combined_errors(&held_out);
        let v0 = dep.voltages();
        let ctl = TpController::new(mt.trained, TpConfig::default(), [v0.0, v0.1, v0.2, v0.3]);
        let gap = tp_gap(&dep, &ctl, &tracker, 6);
        row(
            &[
                format!("{n}"),
                format!("{:.2} mm", tx_e.mean * 1e3),
                format!("{:.2} mm", rx_e.mean * 1e3),
                format!("{gap:.1} dB"),
            ],
            &widths,
        );
    }
    println!("\n12 parameters from 4+6 numbers per placement: a handful of placements");
    println!("already constrains the fit, but tracker noise and the spatial-distortion");
    println!("warp make the error average down with more samples; past ~30 the curve");
    println!("is flat and extra alignment time (each placement costs an exhaustive");
    println!("power scan) buys nothing. See cyclops-core::mapping.");
}
