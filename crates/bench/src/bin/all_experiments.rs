//! Runs every experiment binary's logic in sequence — the one-shot
//! regeneration of all the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p cyclops-bench --bin all_experiments
//! ```
//!
//! (Each experiment is also available as its own binary; see DESIGN.md's
//! per-experiment index.)

use std::process::Command;

fn main() {
    // Each child binary sizes its own pool from the inherited environment.
    println!(
        "worker threads: {} ({}; set CYCLOPS_THREADS to override)",
        cyclops_par::max_threads(),
        if cyclops_par::parallel_compiled() {
            "parallel build"
        } else {
            "serial build"
        }
    );
    let bins = [
        "fig03_speed_cdfs",
        "table1_link_tolerance",
        "fig11_tolerance_sweep",
        "table2_g_errors",
        "sec52_tp_accuracy",
        "fig13_10g_pure_motions",
        "fig14_10g_arbitrary",
        "fig15_25g",
        "table3_summary",
        "fig16_user_traces",
        "ablation_tracking_freq",
        "ablation_coupling_loss",
        "ablation_board_size",
        "ablation_mapping_placements",
        "ablation_report_loss",
        "ablation_40g_wdm",
        "ext_multi_tx_coverage",
    ];
    // Re-exec the sibling binaries (they live next to this one).
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");
    let t0 = std::time::Instant::now();
    for b in bins {
        let path = dir.join(b);
        println!("\n################################################################");
        println!("## {b}");
        println!("################################################################");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{b} failed");
    }
    println!(
        "\nall {} experiments regenerated in {:.0} s",
        bins.len(),
        t0.elapsed().as_secs_f64()
    );
}
