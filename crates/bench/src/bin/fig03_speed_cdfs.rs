//! **Fig 3** — CDFs of VRH linear and angular speeds for VR applications.
//!
//! Paper: "during normal use, the angular and linear speeds of a VRH were at
//! most 19 deg/s and 14 cm/s respectively." We regenerate the two CDFs from
//! the normal-use trace profile (the dataset substitution is documented in
//! DESIGN.md).

use cyclops::prelude::*;
use cyclops::vrh::speeds::{angular_speeds, linear_speeds};
use cyclops_bench::{row, section};

fn main() {
    section("Fig 3: CDFs of VRH linear and angular speeds (normal use)");
    let n_traces = 100;
    let mut lin_all: Vec<f64> = Vec::new();
    let mut ang_all: Vec<f64> = Vec::new();
    for i in 0..n_traces {
        let tr = HeadTrace::generate(&TraceGenConfig::normal_use(), 300 + i);
        lin_all.extend(linear_speeds(&tr));
        ang_all.extend(angular_speeds(&tr));
    }
    println!(
        "{} traces x 60 s at 10 ms sampling ({} speed samples)\n",
        n_traces,
        lin_all.len()
    );

    // Sort once; `quantile` would re-sort the 600k-sample vectors per call.
    lin_all.sort_by(f64::total_cmp);
    ang_all.sort_by(f64::total_cmp);
    let pick = |sorted: &[f64], q: f64| -> f64 {
        let pos = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] * (1.0 - (pos - lo as f64)) + sorted[hi] * (pos - lo as f64)
        }
    };
    let widths = [8, 16, 18];
    row(
        &[
            "CDF".into(),
            "linear (cm/s)".into(),
            "angular (deg/s)".into(),
        ],
        &widths,
    );
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0] {
        let lin = pick(&lin_all, q) * 100.0;
        let ang = pick(&ang_all, q).to_degrees();
        row(
            &[
                format!("{:.1}%", q * 100.0),
                format!("{lin:.2}"),
                format!("{ang:.2}"),
            ],
            &widths,
        );
    }

    let lin_max = lin_all.iter().cloned().fold(0.0, f64::max) * 100.0;
    let ang_max = ang_all.iter().cloned().fold(0.0, f64::max).to_degrees();
    println!("\nobserved maxima: linear {lin_max:.1} cm/s, angular {ang_max:.1} deg/s");
    println!("paper (Fig 3):   linear <= ~14 cm/s, angular <= ~19 deg/s during normal use");
}
