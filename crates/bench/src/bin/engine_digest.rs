//! **Engine digest** — the bit-identity fingerprint of every slot-loop
//! simulator, for the `engine-digest` CI job.
//!
//! Runs a fixed set of workloads spanning all simulator code paths — the
//! legacy single-TX loop, the chaos control plane (ARQ + dead reckoning +
//! re-acquisition under the stress fault plan), pause-on-outage, the
//! full-physics multi-TX handover, the geometric handover model, and the
//! §5.4 trace corpus — and folds every public output field into one `mix64`
//! digest per workload.
//!
//! The digests are pure functions of the seeds: they must match the golden
//! file `goldens/engine_digest.txt` bit-for-bit on every platform, thread
//! count and build configuration (default and `--no-default-features`).
//! A mismatch means a refactor changed simulation semantics.
//!
//! ```sh
//! cargo run --release -p cyclops-bench --bin engine_digest            # print
//! cargo run --release -p cyclops-bench --bin engine_digest -- --write # regen golden
//! ```

use cyclops::link::handover::{HandoverSystem, Occluder, TxUnit};
use cyclops::link::trace_sim::{simulate_corpus, simulate_trace, TraceSimParams};
use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;

const GOLDEN_PATH: &str = "goldens/engine_digest.txt";

/// Folds a stream of f64 bit patterns into a running `mix64` digest (the
/// same discipline as `cyclops_bench::digest_ladder`).
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0x0063_7963_6c6f_7073_u64) // "cyclops"
    }
    fn f64(&mut self, x: f64) {
        self.0 = cyclops_par::mix64(self.0 ^ x.to_bits(), 0x9e37_79b9_7f4a_7c15);
    }
    fn u64(&mut self, x: u64) {
        self.0 = cyclops_par::mix64(self.0 ^ x, 0x9e37_79b9_7f4a_7c15);
    }
    fn bool(&mut self, b: bool) {
        self.u64(b as u64);
    }
    fn slots(&mut self, recs: &[SlotRecord]) {
        for r in recs {
            self.f64(r.t);
            self.f64(r.power_dbm);
            self.bool(r.link_up);
            self.f64(r.goodput_gbps);
            self.f64(r.lin_speed);
            self.f64(r.ang_speed);
        }
    }
    fn session_stats(&mut self, s: &SessionStats) {
        if let Some(c) = s.control {
            for n in [
                c.sent,
                c.delivered,
                c.retransmits,
                c.channel_losses,
                c.dup_frames,
                c.stale_drops,
                c.acks_lost,
                c.gave_up,
            ] {
                self.u64(n);
            }
        }
        self.u64(s.n_extrapolated);
        self.u64(s.n_reacq_steps);
        self.u64(s.n_outages);
        self.f64(s.outage_s);
        self.f64(s.longest_outage_s);
    }
}

/// Two fully-trained ceiling installations sharing one headset world (the
/// multi-TX fixture, fast board).
fn two_units(seed: u64) -> Vec<TxInstallation> {
    use cyclops::core::deployment::DeploymentConfig;
    use cyclops::core::kspace::{train_both, BoardConfig};
    use cyclops::core::mapping::{self, rough_initial_guess};
    use cyclops::core::tp::{TpConfig, TpController};
    let board = BoardConfig {
        cols: 10,
        rows: 8,
        cell_m: 0.0508,
    };
    [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                12,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect()
}

fn main() {
    let write = std::env::args().any(|a| a == "--write");
    let mut lines: Vec<String> = Vec::new();
    let mut emit = |name: &str, d: Digest| {
        let line = format!("{name}: {:016x}", d.0);
        println!("{line}");
        lines.push(line);
    };

    // --- Single-TX: legacy path (i.i.d. report loss from the deployment
    // RNG, no control plane), with tracker drift.
    {
        let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
        let mut cfg = LinkSimConfig {
            tracker: sys.tracker,
            ..Default::default()
        };
        cfg.tracker.report_loss_prob = 0.3;
        cfg.tracker.drift_sigma_per_sqrt_s = 1e-3;
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 611);
        let mut sim = LinkSimulator::new(sys.dep, sys.ctl, motion, cfg);
        let recs = sim.run(3.0);
        let mut d = Digest::new();
        d.slots(&recs);
        d.session_stats(&sim.session_stats());
        emit("link_legacy", d);
    }

    // --- Single-TX: chaos control plane (ARQ + DR + re-acquisition under
    // the stress fault plan), hand-held motion.
    {
        let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
        sys.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(17)));
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 613);
        let mut sim = sys.into_simulator(motion);
        let recs = sim.run(3.0);
        let mut d = Digest::new();
        d.slots(&recs);
        d.session_stats(&sim.session_stats());
        let chaos_digest = d.0;
        emit("link_chaos", d);

        // Telemetry-identity guard (not a golden line): the same workload
        // through the builder API must reproduce the facade digest exactly,
        // with telemetry disabled, with counters, and with a JSONL sink —
        // attaching observers must not move a single bit.
        let engine_digest = |tele: Telemetry| -> u64 {
            let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
            sys.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(17)));
            let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
            let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 613);
            let mut session = sys
                .into_session_builder(motion)
                .telemetry(tele)
                .build()
                .expect("valid engine config");
            let recs = session.run(3.0);
            let mut d = Digest::new();
            for r in &recs {
                d.f64(r.t);
                d.f64(r.power_dbm);
                d.bool(r.link_up);
                d.f64(r.goodput_gbps);
                d.f64(r.lin_speed);
                d.f64(r.ang_speed);
            }
            d.session_stats(&session.session_stats());
            d.0
        };
        let jsonl_path = std::env::temp_dir().join("cyclops_engine_digest_tele.jsonl");
        for (name, tele) in [
            ("off", Telemetry::off()),
            ("counters", Telemetry::counters()),
            (
                "jsonl+counters",
                Telemetry::with_sink_and_counters(Box::new(
                    JsonlSink::create(&jsonl_path).expect("create jsonl sink"),
                )),
            ),
        ] {
            let got = engine_digest(tele);
            assert_eq!(
                got, chaos_digest,
                "telemetry config `{name}` perturbed the link_chaos digest"
            );
        }
        let _ = std::fs::remove_file(&jsonl_path);
        println!("link_chaos: telemetry identity holds (off/counters/jsonl)");

        // Fallback-identity guard (not a golden line): with
        // `FallbackPolicy::Off` — whether defaulted or set explicitly —
        // the hybrid-link machinery must be fully skipped and the digest
        // must not move a bit. (`RfOnOutage` is covered by its own tests;
        // here we pin that *opting out* is free.)
        let fallback_digest = |fallback: FallbackPolicy| -> u64 {
            let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
            sys.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(17)));
            let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
            let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 613);
            let mut session = sys
                .into_session_builder(motion)
                .fallback(fallback)
                .build()
                .expect("valid engine config");
            let recs = session.run(3.0);
            let mut d = Digest::new();
            for r in &recs {
                d.f64(r.t);
                d.f64(r.power_dbm);
                d.bool(r.link_up);
                d.f64(r.goodput_gbps);
                d.f64(r.lin_speed);
                d.f64(r.ang_speed);
            }
            d.session_stats(&session.session_stats());
            d.0
        };
        assert_eq!(
            fallback_digest(FallbackPolicy::Off),
            chaos_digest,
            "explicit FallbackPolicy::Off perturbed the link_chaos digest"
        );
        println!("link_chaos: fallback-off identity holds");

        // Environment-identity guard (not a golden line): an explicitly
        // attached empty `Environment`, and one whose only stage attenuates
        // nothing (density-0 fog), must leave the digest bit-identical —
        // opting out of weather is free, per the registry/environment
        // determinism contract.
        let env_digest = |env: Environment| -> u64 {
            let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
            sys.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(17)));
            let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
            let motion = ArbitraryMotion::new(base, ArbitraryMotionConfig::default(), 613);
            let mut session = sys
                .into_session_builder(motion)
                .environment(env)
                .build()
                .expect("valid engine config");
            let recs = session.run(3.0);
            let mut d = Digest::new();
            for r in &recs {
                d.f64(r.t);
                d.f64(r.power_dbm);
                d.bool(r.link_up);
                d.f64(r.goodput_gbps);
                d.f64(r.lin_speed);
                d.f64(r.ang_speed);
            }
            d.session_stats(&session.session_stats());
            d.0
        };
        assert_eq!(
            env_digest(Environment::new()),
            chaos_digest,
            "empty Environment perturbed the link_chaos digest"
        );
        assert_eq!(
            env_digest(
                Environment::new()
                    .stage(FogStage::from_density(0.0, 1550.0).expect("valid density"))
            ),
            chaos_digest,
            "density-0 fog perturbed the link_chaos digest"
        );
        println!("link_chaos: environment-off identity holds");
    }

    // --- Single-TX: pause-on-outage operator protocol on a too-fast rail.
    {
        let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9_007));
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 1.0;
        rail.dv = 0.0;
        let cfg = LinkSimConfig {
            tracker: sys.tracker,
            pause_on_outage: true,
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(sys.dep, sys.ctl, rail, cfg);
        let recs = sim.run(4.0);
        let mut d = Digest::new();
        d.slots(&recs);
        d.session_stats(&sim.session_stats());
        emit("link_pause", d);
    }

    // --- Multi-TX full-physics handover under a parked occluder.
    {
        let units = two_units(902);
        let tx0 = units[0].dep.tx_world_params().q2;
        let rx = Vec3::new(0.0, 0.0, 1.75);
        let mid = tx0.lerp(rx, 0.5);
        let occ = Occluder::new(mid, 0.12, 0.4, 1);
        let motion = StaticPose(Pose::translation(rx));
        let mut sim = MultiTxSimulator::new(units, motion, vec![occ]);
        let recs = sim.run(4.0);
        let mut d = Digest::new();
        for r in &recs {
            d.f64(r.t);
            d.u64(r.active as u64);
            d.bool(r.los);
            d.f64(r.power_dbm);
            d.bool(r.link_up);
        }
        d.u64(sim.active() as u64);
        emit("multi_tx", d);
    }

    // --- Geometric handover model under a roaming occluder.
    {
        let txs: Vec<TxUnit> = (0..3)
            .map(|i| TxUnit {
                pos: Vec3::new(-0.8 + 0.8 * i as f64, 2.0, 0.0),
            })
            .collect();
        let mut hs = HandoverSystem::new(txs, LinkDesign::ten_g_diverging(20e-3, 2.0), 0.05);
        let mut occ = Occluder::new(Vec3::new(-0.4, 1.0, 0.0), 0.25, 1.5, 7);
        let rx = Vec3::new(0.0, 0.0, 0.0);
        let mut d = Digest::new();
        for _ in 0..20_000 {
            occ.step(1e-3);
            d.bool(hs.step(rx, std::slice::from_ref(&occ), 1e-3));
            d.u64(hs.active() as u64);
        }
        emit("handover_geom", d);
    }

    // --- §5.4 trace corpus with loss + dead reckoning.
    {
        let traces: Vec<HeadTrace> = (0..40)
            .map(|i| HeadTrace::generate(&TraceGenConfig::default(), 9_100 + i))
            .collect();
        let p = TraceSimParams {
            report_loss_prob: 0.2,
            loss_seed: 41,
            dead_reckoning: true,
            ..Default::default()
        };
        let fracs = simulate_corpus(&traces, &p);
        let mut d = Digest::new();
        for f in &fracs {
            d.f64(*f);
        }
        // Per-slot connectivity + the scatter metric of one trace.
        let r = simulate_trace(&traces[0], &p);
        for &b in &r.slots_on {
            d.bool(b);
        }
        d.f64(r.on_fraction);
        d.f64(r.off_slot_scatter_fraction(30, 10));
        emit("trace_corpus", d);
    }

    // --- Scheduled fleet: the shared-TX grant engine under all three
    // policies (static partition, greedy max-margin, proportional-fair)
    // with the bursty viewport traffic source, folded into one digest.
    {
        let units = two_units(905);
        let fleet = FleetConfig {
            n_sessions: 4,
            duration_s: 1.5,
            seed: 905,
            ..FleetConfig::default()
        };
        let mut d = Digest::new();
        for sc in [
            SchedConfig::static_partition(),
            SchedConfig::greedy(),
            SchedConfig::proportional_fair(1.0),
        ] {
            let sum = run_fleet_scheduled(&units, &fleet, &sc).expect("valid sched config");
            for s in &sum.sessions {
                d.u64(s.seed);
                d.f64(s.up_frac);
                d.f64(s.signal_frac);
                d.f64(s.mean_goodput_gbps);
                d.f64(s.mean_power_dbm);
                d.u64(s.handovers);
                let st = s.sched.expect("scheduled session stats");
                d.bool(st.admitted);
                for n in [
                    st.granted_slots,
                    st.served_slots,
                    st.denied_slots,
                    st.retarget_slots,
                    st.preempts,
                    st.stall_events,
                    st.frames_generated,
                    st.frames_played,
                ] {
                    d.u64(n);
                }
                for x in [
                    st.availability,
                    st.delivered_gb,
                    st.mean_served_gbps,
                    st.offered_gb,
                    st.stall_s,
                    st.stall_frac,
                ] {
                    d.f64(x);
                }
            }
            let r = sum.rollup().sched.expect("scheduled rollup");
            d.u64(r.n_admitted as u64);
            d.u64(r.total_served);
            d.u64(r.total_preempts);
            d.f64(r.mean_availability);
            d.f64(r.min_availability);
            d.f64(r.sum_served_gbps);
            d.f64(r.worst_stall_s);
            d.f64(r.fairness_jain);
        }
        emit("fleet_sched", d);
    }

    let body = lines.join("\n") + "\n";
    if write {
        std::fs::create_dir_all("goldens").expect("mkdir goldens");
        std::fs::write(GOLDEN_PATH, &body).expect("write golden");
        println!("wrote {GOLDEN_PATH}");
        return;
    }
    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) => {
            if golden == body {
                println!("engine digests match {GOLDEN_PATH}");
            } else {
                eprintln!("engine digest MISMATCH against {GOLDEN_PATH}:");
                eprintln!("--- golden ---\n{golden}--- got ---\n{body}");
                std::process::exit(1);
            }
        }
        Err(_) => {
            eprintln!("no {GOLDEN_PATH}; run with --write to create it");
            std::process::exit(1);
        }
    }
}
