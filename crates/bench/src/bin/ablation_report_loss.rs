//! **Ablation: tracking-report loss** — robustness of the TP loop to a lossy
//! control channel.
//!
//! §3 sends VRH-T reports to the TX controller over a (wireless) control
//! channel; the paper assumes it is reliable. This ablation drops a fraction
//! of the reports at runtime and measures the tolerated §5.3 speeds: the TP
//! loop holds its last command between reports, so losing a report costs one
//! tracking period of staleness in the windows it touches — harmless at rest,
//! but at speed those isolated stale windows break the ≥95 %-optimal bar.

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, linear_ladder, row, section, tolerated_speed};

fn main() {
    let seed = 7u64;
    println!("commissioning 10G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));

    section("Ablation: control-channel report loss vs tolerated speed (10G)");
    let lin_speeds: Vec<f64> = (1..=14).map(|k| 0.05 * k as f64).collect();
    let ang_speeds: Vec<f64> = (1..=12).map(|k| (2.0 * k as f64).to_radians()).collect();
    let widths = [12, 18, 20, 20];
    row(
        &[
            "loss".into(),
            "eff. rate".into(),
            "tol. linear".into(),
            "tol. angular".into(),
        ],
        &widths,
    );
    for loss in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let mut s = sys.clone();
        s.tracker.report_loss_prob = loss;
        let lin = tolerated_speed(&linear_ladder(&s, &lin_speeds, 6.0));
        let ang = tolerated_speed(&angular_ladder(&s, &ang_speeds, 6.0));
        let rate = (1.0 - loss) / 0.0125;
        row(
            &[
                format!("{:.0}%", loss * 100.0),
                format!("{rate:.0} Hz"),
                format!("{:.0} cm/s", lin * 100.0),
                format!("{:.0} deg/s", ang.to_degrees()),
            ],
            &widths,
        );
    }
    println!("\nthe TP loop freewheels on its last command between reports and never");
    println!("destabilizes, but the §5.3 criterion (≥95% of windows optimal) is far");
    println!("harsher on loss than on a uniformly slower tracker (compare");
    println!("ablation_tracking_freq): each lost report doubles the staleness of a");
    println!("few windows, and at speed those isolated windows alone break the 95%");
    println!("bar — so even 5% loss halves the tolerated speeds. The control");
    println!("channel needs to be reliable, not merely fast on average.");
}
