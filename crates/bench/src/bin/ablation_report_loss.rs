//! **Ablation: tracking-report loss** — robustness of the TP loop to a lossy
//! control channel, with and without the reliable control plane.
//!
//! §3 sends VRH-T reports to the TX controller over a (wireless) control
//! channel; the paper assumes it is reliable. This ablation drops a fraction
//! of the reports at runtime and measures the tolerated §5.3 speeds twice:
//!
//! * **unprotected** — the paper's architecture on a lossy channel: the TP
//!   holds its last command between reports, so each lost report costs a
//!   tracking period of staleness, and at speed those stale windows break
//!   the ≥95 %-optimal bar (5 % loss already halves tolerated speeds);
//! * **ARQ + DR** — the reliable control plane (`ControlPlaneConfig`):
//!   sequence-numbered ARQ retransmits lost reports within ~3 ms and
//!   constant-velocity dead reckoning covers what ARQ cannot recover.
//!
//! Loss decisions come from the deterministic `FaultPlan` streams, so every
//! number printed here is bit-identical per seed at any thread count — the
//! `chaos` CI job diffs this output across build configurations.

use cyclops::prelude::*;
use cyclops_bench::{angular_ladder, digest_ladder, linear_ladder, row, section, tolerated_speed};

fn main() {
    let seed = 7u64;
    println!("commissioning 10G system (paper-scale), seed {seed} ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(seed));

    section("Ablation: control-channel report loss vs tolerated speed (10G)");
    let lin_speeds: Vec<f64> = (1..=14).map(|k| 0.05 * k as f64).collect();
    let ang_speeds: Vec<f64> = (1..=12).map(|k| (2.0 * k as f64).to_radians()).collect();
    let widths = [12, 14, 22, 22];
    row(
        &[
            "loss".into(),
            "plane".into(),
            "tol. linear".into(),
            "tol. angular".into(),
        ],
        &widths,
    );
    let mut digest = 0u64;
    let mut baseline_ang = 0.0f64;
    let mut hardened_5pct_ang = 0.0f64;
    for loss in [0.0, 0.05, 0.10, 0.20, 0.40] {
        for hardened in [false, true] {
            if loss == 0.0 && hardened {
                continue; // mitigations are a no-op on a clean channel
            }
            let mut s = sys.clone();
            let fault = FaultPlan::iid_loss(40, loss);
            s.control = Some(if hardened {
                ControlPlaneConfig::hardened(fault)
            } else {
                ControlPlaneConfig::unprotected(fault)
            });
            let lin_pts = linear_ladder(&s, &lin_speeds, 6.0);
            let ang_pts = angular_ladder(&s, &ang_speeds, 6.0);
            digest = digest_ladder(digest, &lin_pts);
            digest = digest_ladder(digest, &ang_pts);
            let lin = tolerated_speed(&lin_pts);
            let ang = tolerated_speed(&ang_pts);
            if loss == 0.0 {
                baseline_ang = ang;
            }
            if hardened && (loss - 0.05).abs() < 1e-9 {
                hardened_5pct_ang = ang;
            }
            row(
                &[
                    format!("{:.0}%", loss * 100.0),
                    if hardened { "ARQ+DR" } else { "none" }.into(),
                    format!("{:.0} cm/s", lin * 100.0),
                    format!("{:.0} deg/s", ang.to_degrees()),
                ],
                &widths,
            );
        }
    }

    println!("\nunprotected, the TP loop freewheels on its last command between");
    println!("reports and never destabilizes, but the §5.3 criterion (≥95% of");
    println!("windows optimal) is far harsher on loss than on a uniformly slower");
    println!("tracker: each lost report doubles the staleness of a few windows,");
    println!("and even 5% loss halves the tolerated speeds. With the reliable");
    println!("control plane, ARQ retransmits recover almost every loss within a");
    println!("few ms and dead reckoning bridges the rest.");
    println!(
        "\nARQ+DR at 5% loss: {:.0} deg/s vs loss-free {:.0} deg/s ({:.0}% retained)",
        hardened_5pct_ang.to_degrees(),
        baseline_ang.to_degrees(),
        100.0 * hardened_5pct_ang / baseline_ang.max(1e-9)
    );
    assert!(
        hardened_5pct_ang >= 0.8 * baseline_ang,
        "acceptance: ARQ+DR at 5% loss must retain ≥80% of the loss-free angular speed"
    );
    println!("run digest: {digest:016x} (seed-deterministic at any thread count)");
}
