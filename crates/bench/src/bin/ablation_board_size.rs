//! **Ablation: calibration-board size** — how far the K-space board's
//! angular coverage sets the system's usable orientation envelope.
//!
//! The §4.1 board (20×15 inches at 1.5 m) exercises galvo voltages up to
//! ~±4 V; beyond that the learned `G` extrapolates. This ablation
//! commissions systems with boards of increasing size and measures the
//! TP accuracy cost (power gap to the exhaustive optimum) at small and
//! large headset yaw.

use cyclops::core::deployment::cheat_align;
use cyclops::core::kspace::BoardConfig;
use cyclops::geom::rotation::axis_angle;
use cyclops::prelude::*;
use cyclops_bench::{row, section};

/// Mean TP power gap to the exhaustive optimum (dB) over placements at the
/// given yaw band — the model's extrapolation cost at that attitude. The gap
/// eats directly into the motion drift budget, so a 3 dB increase costs
/// roughly 3 dB of tolerated speed.
fn tp_gap_at_yaw(sys: &CyclopsSystem, yaws_deg: &[f64]) -> f64 {
    let mut gaps = Vec::new();
    for (i, y) in yaws_deg.iter().enumerate() {
        let mut s = sys.clone();
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        let pose = Pose::new(
            axis_angle(Vec3::Y, sign * y.to_radians()),
            Vec3::new(0.05 * sign, -0.03, 1.8),
        );
        s.move_headset(pose);
        let rep = s.track();
        s.point(&rep);
        let tp = s.received_power_dbm();
        cheat_align(&mut s.dep);
        gaps.push(s.received_power_dbm() - tp);
    }
    gaps.iter().sum::<f64>() / gaps.len() as f64
}

/// Commission a system with a custom board and optional CAD prior in the
/// stage-1 fit.
fn commission_with(board: BoardConfig, use_prior: bool, seed: u64) -> CyclopsSystem {
    use cyclops::core::deployment::Deployment;
    use cyclops::core::kspace::{self, KspaceRig};
    use cyclops::core::mapping;
    use cyclops::core::tp::{TpConfig, TpController};

    let cfg = SystemConfig::paper_10g(seed);
    let mut dep = Deployment::new(&cfg.deployment);
    let mut tx_rig = KspaceRig::standard(dep.tx.clone(), seed + 1);
    let tx_init = tx_rig.cad_initial_guess();
    let tx_samples = tx_rig.collect_samples(&board);
    let tx_tr = kspace::fit_with_options(&tx_samples, &tx_init, use_prior).expect("stage-1 fit");
    let mut rx_rig = KspaceRig::standard(dep.rx.clone(), seed + 2);
    let rx_init = rx_rig.cad_initial_guess();
    let rx_samples = rx_rig.collect_samples(&board);
    let rx_tr = kspace::fit_with_options(&rx_samples, &rx_init, use_prior).expect("stage-1 fit");
    let (init_tx, init_rx) = mapping::rough_initial_guess(
        &dep,
        &tx_rig.true_rig_pose(),
        &rx_rig.true_rig_pose(),
        0.05,
        0.08,
        seed + 7,
    );
    let mt = mapping::train(
        &mut dep,
        &tx_tr.fitted,
        &rx_tr.fitted,
        init_tx,
        init_rx,
        30,
        seed + 9,
    );
    let v0 = dep.voltages();
    let ctl = TpController::new(mt.trained, TpConfig::default(), [v0.0, v0.1, v0.2, v0.3]);
    CyclopsSystem {
        dep,
        ctl,
        report: CommissioningReport {
            kspace_tx: tx_tr.train_error,
            kspace_rx: rx_tr.train_error,
            combined_tx: cyclops::solver::stats::ResidualStats::from_slice(&[]),
            combined_rx: cyclops::solver::stats::ResidualStats::from_slice(&[]),
            mapping_samples_used: mt.samples.len(),
        },
        tracker: cfg.tracker,
        control: None,
        mapping_samples: mt.samples,
    }
}

fn main() {
    section("Ablation: calibration-board size × CAD prior vs TP extrapolation cost (10G)");
    let widths = [16, 14, 16, 10, 22, 22];
    row(
        &[
            "board (cells)".into(),
            "span @1.5 m".into(),
            "volt coverage".into(),
            "prior".into(),
            "TP gap @5° yaw".into(),
            "TP gap @15° yaw".into(),
        ],
        &widths,
    );
    for (cols, rows_n) in [(10usize, 8usize), (20, 15), (32, 24)] {
        let board = BoardConfig {
            cols,
            rows: rows_n,
            cell_m: 0.0254,
        };
        let span = cols as f64 * 0.0254;
        let half_angle = (span / 2.0 / 1.5).atan();
        let volts = half_angle / (2.0 * cyclops::optics::galvo::GalvoParams::nominal().theta1);
        for use_prior in [true, false] {
            let sys = commission_with(board, use_prior, 83);
            let gap5 = tp_gap_at_yaw(&sys, &[4.0, 5.0, 6.0, 5.0]);
            let gap15 = tp_gap_at_yaw(&sys, &[14.0, 15.0, 16.0, 15.0]);
            row(
                &[
                    format!("{cols}x{rows_n}"),
                    format!("{:.2} m", span),
                    format!("±{volts:.1} V"),
                    (if use_prior { "CAD" } else { "none" }).into(),
                    format!("{gap5:.1} dB"),
                    format!("{gap15:.1} dB"),
                ],
                &widths,
            );
        }
    }
    println!("\nwithout the CAD prior, a small board leaves the fitted model free to");
    println!("drift in its weakly-determined directions and the TP accuracy collapses");
    println!("outside the board cone; with the prior even the paper's 20x15 board");
    println!("covers the §5.3 rotation envelope. See cyclops-core::kspace::fit.");
}
