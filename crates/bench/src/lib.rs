//! Shared machinery for the Cyclops experiment harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index); this library holds the common pieces:
//! speed-ladder throughput sweeps (the §5.3 protocol), window filtering,
//! tolerated-speed extraction and text-table formatting.

#![deny(missing_docs)]
#![warn(clippy::all)]

use cyclops::link::simulator::Window;
use cyclops::prelude::*;
use cyclops::vrh::motion::ArbitraryMotionConfig;

/// Result of one rung of a speed ladder.
#[derive(Debug, Clone, Copy)]
pub struct LadderPoint {
    /// Commanded speed (m/s for linear, rad/s for angular).
    pub speed: f64,
    /// Fraction of *moving* 50 ms windows at optimal throughput.
    pub optimal_frac: f64,
    /// Mean goodput over moving windows (Gbps).
    pub mean_goodput: f64,
    /// Minimum received power over moving windows (dBm).
    pub min_power: f64,
}

fn eval_windows(
    records: &[SlotRecord],
    speed_of: impl Fn(&Window) -> f64,
    commanded: f64,
    optimal_gbps: f64,
    sensitivity_dbm: f64,
    slot_s: f64,
) -> LadderPoint {
    let windows = cyclops::link::simulator::windows_50ms(records, slot_s, sensitivity_dbm);
    // Only windows genuinely moving near the commanded speed (strokes pause
    // at the ends; those windows don't probe the speed under test).
    let moving: Vec<&Window> = windows
        .iter()
        .skip(2)
        .filter(|w| speed_of(w) >= 0.8 * commanded)
        .collect();
    if moving.is_empty() {
        return LadderPoint {
            speed: commanded,
            optimal_frac: 0.0,
            mean_goodput: 0.0,
            min_power: f64::NEG_INFINITY,
        };
    }
    let n = moving.len() as f64;
    let optimal = moving
        .iter()
        .filter(|w| w.goodput >= 0.95 * optimal_gbps)
        .count() as f64;
    LadderPoint {
        speed: commanded,
        optimal_frac: optimal / n,
        mean_goodput: moving.iter().map(|w| w.goodput).sum::<f64>() / n,
        min_power: moving
            .iter()
            .map(|w| w.min_power)
            .fold(f64::INFINITY, f64::min),
    }
}

/// Runs the §5.3 purely-linear protocol at each speed: constant-speed rail
/// strokes, measuring throughput/power over the paper's 50 ms windows.
///
/// Rungs are independent (each clones the commissioned system), so under the
/// `parallel` feature they run on worker threads and are collected in input
/// order — bit-identical to the serial sweep.
pub fn linear_ladder(sys: &CyclopsSystem, speeds_mps: &[f64], dur_s: f64) -> Vec<LadderPoint> {
    let optimal = sys.dep.design.sfp.optimal_goodput_gbps;
    let rung = |&v: &f64| {
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = v;
        rail.dv = 0.0;
        let mut sim = sys.clone().into_simulator(rail);
        let slot_s = sim.cfg().slot_s;
        let recs = sim.run(dur_s);
        eval_windows(
            &recs,
            |w| w.lin,
            v,
            optimal,
            sys.dep.design.sfp.rx_sensitivity_dbm,
            slot_s,
        )
    };
    #[cfg(feature = "parallel")]
    let pts = cyclops_par::par_map(speeds_mps, 1, rung);
    #[cfg(not(feature = "parallel"))]
    let pts: Vec<LadderPoint> = speeds_mps.iter().map(rung).collect();
    pts
}

/// Runs the §5.3 purely-angular protocol at each angular speed (rad/s).
/// Rungs parallelize exactly as in [`linear_ladder`].
pub fn angular_ladder(sys: &CyclopsSystem, speeds_rps: &[f64], dur_s: f64) -> Vec<LadderPoint> {
    let optimal = sys.dep.design.sfp.optimal_goodput_gbps;
    let rung = |&w: &f64| {
        let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
        let mut stage = RotationStage::paper_protocol(base, Vec3::Y);
        stage.w0 = w;
        stage.dw = 0.0;
        let mut sim = sys.clone().into_simulator(stage);
        let slot_s = sim.cfg().slot_s;
        let recs = sim.run(dur_s);
        eval_windows(
            &recs,
            |x| x.ang,
            w,
            optimal,
            sys.dep.design.sfp.rx_sensitivity_dbm,
            slot_s,
        )
    };
    #[cfg(feature = "parallel")]
    let pts = cyclops_par::par_map(speeds_rps, 1, rung);
    #[cfg(not(feature = "parallel"))]
    let pts: Vec<LadderPoint> = speeds_rps.iter().map(rung).collect();
    pts
}

/// One mixed-motion (hand-held) run at a given intensity; returns the 50 ms
/// windows.
pub fn arbitrary_run(
    sys: &CyclopsSystem,
    lin_rms: f64,
    ang_rms: f64,
    dur_s: f64,
    seed: u64,
) -> Vec<Window> {
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let cfg = ArbitraryMotionConfig {
        lin_rms,
        ang_rms,
        ..Default::default()
    };
    let motion = ArbitraryMotion::new(base, cfg, seed);
    let mut sim = sys.clone().into_simulator(motion);
    // The paper's §5.3 protocol: after a link loss the operator pauses and
    // resumes once the link is back.
    sim.cfg_mut().pause_on_outage = true;
    let slot_s = sim.cfg().slot_s;
    let recs = sim.run(dur_s);
    cyclops::link::simulator::windows_50ms(&recs, slot_s, sys.dep.design.sfp.rx_sensitivity_dbm)
}

/// A batch of [`arbitrary_run`]s, one per `(lin_rms, ang_rms, seed)` config,
/// collected in config order. Runs are seeded independently, so under the
/// `parallel` feature they execute on worker threads with results
/// bit-identical to the serial loop.
pub fn arbitrary_runs(
    sys: &CyclopsSystem,
    configs: &[(f64, f64, u64)],
    dur_s: f64,
) -> Vec<Vec<Window>> {
    let one = |&(lin_rms, ang_rms, seed): &(f64, f64, u64)| {
        arbitrary_run(sys, lin_rms, ang_rms, dur_s, seed)
    };
    #[cfg(feature = "parallel")]
    let runs = cyclops_par::par_map(configs, 1, one);
    #[cfg(not(feature = "parallel"))]
    let runs: Vec<Vec<Window>> = configs.iter().map(one).collect();
    runs
}

/// The largest ladder speed whose optimal fraction is ≥ 95 % — the paper's
/// "link throughput remains optimal for speeds below X".
pub fn tolerated_speed(points: &[LadderPoint]) -> f64 {
    points
        .iter()
        .filter(|p| p.optimal_frac >= 0.95)
        .map(|p| p.speed)
        .fold(0.0, f64::max)
}

/// Folds a ladder's numeric output into a running `mix64` digest — the
/// determinism fingerprint the `chaos` CI job compares across build
/// configurations (default vs `--no-default-features`) and thread counts.
pub fn digest_ladder(mut digest: u64, points: &[LadderPoint]) -> u64 {
    for p in points {
        for bits in [
            p.speed.to_bits(),
            p.optimal_frac.to_bits(),
            p.mean_goodput.to_bits(),
            p.min_power.to_bits(),
        ] {
            digest = cyclops_par::mix64(digest ^ bits, 0x9e37_79b9_7f4a_7c15);
        }
    }
    digest
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints one aligned table row from string cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Quantile of a sample (linear interpolation).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    cyclops::solver::stats::quantile(values, q)
}

/// Prints the Fig-14/15-style 2-D speed-bin table: for each (linear,
/// angular) speed bin with at least `min_windows` members, the fraction of
/// windows at ≥95 % of `optimal_gbps`, and (optionally) the minimum power.
/// Windows dominated by SFP re-locking are excluded (the operator pauses
/// during them; they probe no speed).
pub fn print_speed_bins(
    windows: &[Window],
    lin_edges_mps: &[f64],
    ang_edges_deg: &[f64],
    optimal_gbps: f64,
    show_power: bool,
    min_windows: usize,
) {
    let mut header = vec![
        "linear bin".to_string(),
        "angular bin".to_string(),
        "windows".to_string(),
        "optimal wins".to_string(),
    ];
    let mut widths = vec![16, 16, 10, 14];
    if show_power {
        header.push("min power dBm".into());
        widths.push(14);
    }
    row(&header, &widths);
    let usable: Vec<&Window> = windows.iter().filter(|w| w.relink_frac < 0.1).collect();
    for li in 0..lin_edges_mps.len() - 1 {
        for ai in 0..ang_edges_deg.len() - 1 {
            let sel: Vec<&&Window> = usable
                .iter()
                .filter(|w| {
                    w.lin >= lin_edges_mps[li]
                        && w.lin < lin_edges_mps[li + 1]
                        && w.ang.to_degrees() >= ang_edges_deg[ai]
                        && w.ang.to_degrees() < ang_edges_deg[ai + 1]
                })
                .collect();
            if sel.len() < min_windows {
                continue;
            }
            let opt = sel
                .iter()
                .filter(|w| w.goodput >= 0.95 * optimal_gbps)
                .count() as f64
                / sel.len() as f64;
            let mut cells = vec![
                format!(
                    "{:.0}-{:.0} cm/s",
                    lin_edges_mps[li] * 100.0,
                    lin_edges_mps[li + 1] * 100.0
                ),
                format!(
                    "{:.0}-{:.0} deg/s",
                    ang_edges_deg[ai],
                    ang_edges_deg[ai + 1]
                ),
                format!("{}", sel.len()),
                format!("{:.0}%", opt * 100.0),
            ];
            if show_power {
                let pmin = sel
                    .iter()
                    .map(|w| w.min_power)
                    .fold(f64::INFINITY, f64::min);
                cells.push(format!("{pmin:.1}"));
            }
            row(&cells, &widths);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerated_speed_picks_last_optimal() {
        let pts = vec![
            LadderPoint {
                speed: 0.1,
                optimal_frac: 1.0,
                mean_goodput: 9.4,
                min_power: -15.0,
            },
            LadderPoint {
                speed: 0.2,
                optimal_frac: 0.97,
                mean_goodput: 9.4,
                min_power: -20.0,
            },
            LadderPoint {
                speed: 0.3,
                optimal_frac: 0.4,
                mean_goodput: 4.0,
                min_power: -40.0,
            },
        ];
        assert_eq!(tolerated_speed(&pts), 0.2);
        assert_eq!(tolerated_speed(&pts[2..]), 0.0);
    }

    #[test]
    fn ladder_end_to_end_smoke() {
        // One slow rung on a fast commissioning: must be fully optimal.
        let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(9001));
        let pts = linear_ladder(&sys, &[0.05], 4.0);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].optimal_frac > 0.9, "{:?}", pts[0]);
        assert!((pts[0].mean_goodput - 9.4).abs() < 0.5);
    }
}
