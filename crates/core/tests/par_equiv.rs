//! Serial/parallel equivalence of the training hot paths.
//!
//! The alignment grids and the mapping-sample collection parallelize over
//! per-row / per-attempt deployment clones whose noise RNGs are reseeded by
//! a pure function of (stage seed, item index) — never shared — so the
//! results must be bit-identical at any pool width. These tests run
//! unchanged under `--no-default-features`, where `with_threads` is inert
//! and the same assertions certify the serial path; passing in both build
//! configurations proves the two builds agree with each other.

use cyclops_core::alignment::{exhaustive_align, AlignResult};
use cyclops_core::deployment::{Deployment, DeploymentConfig};
use cyclops_core::mapping::{collect_samples, MappingSample};

fn align_at(threads: usize, seed: u64) -> AlignResult {
    cyclops_par::with_threads(threads, || {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        exhaustive_align(&mut dep)
    })
}

fn assert_align_eq(a: &AlignResult, b: &AlignResult, ctx: &str) {
    for k in 0..4 {
        assert_eq!(
            a.voltages[k].to_bits(),
            b.voltages[k].to_bits(),
            "{ctx}: voltage {k} differs: {} vs {}",
            a.voltages[k],
            b.voltages[k]
        );
    }
    assert_eq!(a.power_dbm.to_bits(), b.power_dbm.to_bits(), "{ctx}: power");
    assert_eq!(a.n_evals, b.n_evals, "{ctx}: n_evals");
}

#[test]
fn exhaustive_align_invariant_to_thread_count() {
    for seed in [42, 77] {
        let reference = align_at(1, seed);
        for threads in [2, 3, 8] {
            let res = align_at(threads, seed);
            assert_align_eq(&res, &reference, &format!("seed {seed}, threads {threads}"));
        }
    }
}

fn assert_samples_eq(a: &[MappingSample], b: &[MappingSample], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: sample count");
    for (i, (sa, sb)) in a.iter().zip(b).enumerate() {
        for k in 0..4 {
            assert_eq!(
                sa.voltages[k].to_bits(),
                sb.voltages[k].to_bits(),
                "{ctx}: sample {i} voltage {k}"
            );
        }
        let (qa, qb) = (sa.reported.quat(), sb.reported.quat());
        for (va, vb) in [
            (qa.w, qb.w),
            (qa.x, qb.x),
            (qa.y, qb.y),
            (qa.z, qb.z),
            (sa.reported.trans.x, sb.reported.trans.x),
            (sa.reported.trans.y, sb.reported.trans.y),
            (sa.reported.trans.z, sb.reported.trans.z),
        ] {
            assert_eq!(va.to_bits(), vb.to_bits(), "{ctx}: sample {i} pose");
        }
    }
}

#[test]
fn sample_collection_invariant_to_thread_count() {
    let base = Deployment::new(&DeploymentConfig::paper_10g(7));
    let reference = cyclops_par::with_threads(1, || collect_samples(&mut base.clone(), 3, 99));
    assert!(reference.len() >= 2, "fixture should close the link");
    for threads in [2, 5] {
        let got = cyclops_par::with_threads(threads, || collect_samples(&mut base.clone(), 3, 99));
        assert_samples_eq(&got, &reference, &format!("threads {threads}"));
    }
}
