//! Property tests on the core training/pointing layer: invariants that must
//! hold for *any* deployment seed, headset placement, or galvo drive — not
//! just the fixtures the unit tests pick.

use cyclops_core::deployment::{Deployment, DeploymentConfig};
use cyclops_core::kspace::KspaceRig;
use cyclops_core::recalib::DriftMonitor;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::{Pose, Vec3};
use cyclops_optics::galvo::{GalvoParams, GalvoSim, GalvoSimConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The drift monitor never flags while aligned power stays within
    /// small-noise distance of its baseline (no false alarms in steady
    /// state, for any baseline/threshold pair).
    #[test]
    fn drift_monitor_no_false_alarm(baseline in -30.0..-5.0f64,
                                    threshold in 2.0..8.0f64,
                                    seed in 0u64..500) {
        let mut m = DriftMonitor::new(baseline, threshold);
        let mut x = seed;
        for _ in 0..60 {
            // Cheap deterministic "noise" in ±threshold/4.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((x >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * threshold / 2.0;
            prop_assert!(!m.observe(baseline + noise), "flagged at noise {noise}");
        }
        prop_assert!(!m.is_drifted());
    }

    /// A sustained drop clearly past the threshold is always flagged, and
    /// promptly (within a dozen observations).
    #[test]
    fn drift_monitor_flags_sustained_drop(baseline in -30.0..-5.0f64,
                                          threshold in 2.0..8.0f64,
                                          excess in 1.5..10.0f64) {
        let mut m = DriftMonitor::new(baseline, threshold);
        let degraded = baseline - threshold - excess;
        let mut flagged_at = None;
        for k in 0..12 {
            if m.observe(degraded) {
                flagged_at = Some(k);
                break;
            }
        }
        prop_assert!(flagged_at.is_some(), "never flagged a {:.1} dB drop",
            threshold + excess);
        prop_assert!(m.is_drifted());
    }

    /// `find_voltages_for` either declines a board point or lands the beam
    /// on it: any `Some` answer re-measures within the verification bound
    /// plus reading noise.
    #[test]
    fn find_voltages_lands_or_declines(seed in 0u64..200,
                                       dx in -0.12..0.12f64,
                                       dy in -0.10..0.10f64) {
        let mut grng = StdRng::seed_from_u64(seed.wrapping_add(77));
        let truth = GalvoParams::nominal().perturbed(&mut grng, 1.0, 1.0, 0.02);
        let galvo = GalvoSim::new(truth, GalvoSimConfig::default());
        let mut rig = KspaceRig::standard(galvo, seed);
        // Aim relative to the rest hit so the target is actually on the board.
        let Some((cx, cy)) = rig.measure_hit(0.0, 0.0) else {
            return Ok(()); // grossly mis-assembled rig: nothing to test
        };
        let (x, y) = (cx + dx, cy + dy);
        if let Some((v1, v2)) = rig.find_voltages_for(x, y) {
            let (hx, hy) = rig.measure_hit(v1, v2).expect("verified hit must re-measure");
            let err = ((hx - x).powi(2) + (hy - y).powi(2)).sqrt();
            // 4.5 mm verification bound + two 1.2 mm reading-noise draws.
            prop_assert!(err < 12e-3, "accepted voltages miss by {:.1} mm", err * 1e3);
        }
    }

    /// The power meter respects physics and its own floor at any drive: never
    /// above launch power, never below the −90 dBm floor.
    #[test]
    fn deployment_power_bounded(seed in 0u64..50,
                                vt1 in -8.0..8.0f64, vt2 in -8.0..8.0f64,
                                vr1 in -8.0..8.0f64, vr2 in -8.0..8.0f64) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        dep.set_voltages(vt1, vt2, vr1, vr2);
        let p = dep.received_power_dbm();
        prop_assert!(p <= dep.design.launch_power_dbm() + 1e-9);
        prop_assert!(p >= Deployment::POWER_METER_FLOOR_DBM - 1e-9);
    }

    /// Moving the headset never lets the meter exceed launch power either —
    /// the reciprocity path computation creates no energy at any placement.
    #[test]
    fn power_bounded_at_any_placement(seed in 0u64..50,
                                      x in -0.3..0.3f64, y in -0.2..0.2f64,
                                      z in 1.3..2.3f64, yaw in -0.3..0.3f64) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        dep.set_headset_pose(Pose::new(
            axis_angle(Vec3::Y, yaw),
            Vec3::new(x, y, z),
        ));
        let p = dep.received_power_dbm();
        prop_assert!(p <= dep.design.launch_power_dbm() + 1e-9);
    }
}
