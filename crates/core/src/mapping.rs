//! Stage 2: joint learning of the 12 mapping parameters (§4.2).
//!
//! The K-space models of the TX and RX assemblies must be expressed in the
//! common VR-space of the headset tracker. Each mapping is a rigid transform
//! (6 parameters, [`Pose6`]): for the TX, K-space → VR-space directly; for
//! the RX — which moves — K-space → the *tracked-point frame*, so that
//! composing with any VRH-T report places the model correctly (footnote 8 of
//! the paper).
//!
//! Training data: for ~30 headset placements, the exhaustive search aligns
//! the link, yielding 5-tuples `(v₁, v₂, v₃, v₄, Ψ)` of aligning voltages
//! plus the reported pose. The fit minimizes the **Lemma-1 error**
//! `Σ d(p_t, τ_r) + d(p_r, τ_t)` over the 12 parameters: at perfect
//! alignment the TX beam's origin must coincide with where the RX imaginary
//! beam lands and vice versa, *if* the mapped models are correct.

use crate::alignment::exhaustive_align;
use crate::deployment::Deployment;
use cyclops_geom::pose::{Pose, Pose6};
use cyclops_geom::quat::Quat;
use cyclops_geom::vec3::{v3, Vec3};
use cyclops_optics::galvo::GalvoParams;
use cyclops_solver::lm::{levenberg_marquardt, LmOptions, LmReport};
use cyclops_solver::stats::ResidualStats;
use cyclops_vrh::tracking::TrackerConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One §4.2 training sample: aligning voltages plus the reported pose.
#[derive(Debug, Clone, Copy)]
pub struct MappingSample {
    /// The four aligning voltages `(v_t1, v_t2, v_r1, v_r2)`.
    pub voltages: [f64; 4],
    /// The (noisy) VRH-T report Ψ at that placement.
    pub reported: Pose,
}

/// The trained stage-2 result: both K-space models plus their mappings.
#[derive(Debug, Clone)]
pub struct TrainedMapping {
    /// Learned TX model in its K-space (stage-1 output).
    pub tx_model: GalvoParams,
    /// Learned RX model in its K-space (stage-1 output).
    pub rx_model: GalvoParams,
    /// TX K-space → VR-space.
    pub tx_map: Pose,
    /// RX K-space → tracked-point frame.
    pub rx_map: Pose,
    /// Solver diagnostics of the 12-parameter fit.
    pub report: LmReport,
}

impl TrainedMapping {
    /// The TX model expressed in VR-space.
    pub fn tx_in_vr(&self) -> GalvoParams {
        self.tx_model.transformed(&self.tx_map)
    }

    /// The RX model expressed in VR-space, given a VRH-T report.
    pub fn rx_in_vr(&self, reported: &Pose) -> GalvoParams {
        self.rx_model.transformed(&reported.compose(&self.rx_map))
    }

    /// Per-sample Lemma-1 distances `(d(p_t, τ_r), d(p_r, τ_t))` in metres —
    /// the "Combined (TX)" / "Combined (RX)" error split of Table 2. `None`
    /// if a trace degenerates.
    pub fn lemma_distances(&self, s: &MappingSample) -> Option<(f64, f64)> {
        let txp = self.tx_in_vr();
        let rxp = self.rx_in_vr(&s.reported);
        let beam_t = txp.trace_line(s.voltages[0], s.voltages[1])?;
        let beam_r = rxp.trace_line(s.voltages[2], s.voltages[3])?;
        let (_, tau_t) = rxp
            .second_mirror_plane(s.voltages[3])
            .intersect_line(&beam_t)?;
        let (_, tau_r) = txp
            .second_mirror_plane(s.voltages[1])
            .intersect_line(&beam_r)?;
        Some((beam_t.origin.distance(tau_r), beam_r.origin.distance(tau_t)))
    }

    /// Combined-error statistics over a sample set: `(tx_stats, rx_stats)`
    /// in metres (Table 2 "Combined" rows).
    pub fn combined_errors(&self, samples: &[MappingSample]) -> (ResidualStats, ResidualStats) {
        let mut tx_e = Vec::new();
        let mut rx_e = Vec::new();
        for s in samples {
            if let Some((dt, dr)) = self.lemma_distances(s) {
                tx_e.push(dt);
                rx_e.push(dr);
            }
        }
        (
            ResidualStats::from_slice(&tx_e),
            ResidualStats::from_slice(&rx_e),
        )
    }
}

/// Collects `n` mapping samples: random headset placements in the coverage
/// zone, exhaustive alignment, noisy VRH-T report (§4.2 step 2).
///
/// The placements span ±25 cm laterally, the 1.5–2 m range band, and ±~10°
/// of orientation. The orientation envelope is bounded by the K-space
/// calibration: compensating an RX rotation of θ needs galvo voltages
/// ≈ θ/(2·θ₁) ≈ 0.4 V/deg, and the paper's 20×15-inch grid board at 1.5 m
/// exercises ≈ ±3.7 V (±9.6°). The CAD prior in the stage-1 fit keeps the
/// learned `G` usable slightly beyond the board cone, but placements (and
/// the rotation-stage sweeps) should stay near it. (A larger calibration
/// board buys a larger envelope; see the board-size ablation.)
pub fn collect_samples(dep: &mut Deployment, n: usize, seed: u64) -> Vec<MappingSample> {
    collect_samples_with(dep, n, seed, &TrackerConfig::default())
}

/// [`collect_samples`] with an explicit tracker configuration (the reports'
/// noise should match the tracker actually deployed).
pub fn collect_samples_with(
    dep: &mut Deployment,
    n: usize,
    seed: u64,
    tracker_cfg: &TrackerConfig,
) -> Vec<MappingSample> {
    // The bench operator keeps trying placements until n usable ones are
    // collected (a placement where the search cannot close the link is
    // simply re-drawn), within a sanity bound.
    let max_attempts = 3 * n + 10;

    // Every attempt is deterministic in isolation: the placement, the report
    // noise, and the rig clone's hardware-noise stream all derive from
    // `mix64(seed, attempt)`, never from a shared RNG. Attempts run in waves
    // of (at most) the thread count and are accepted strictly in attempt
    // order, so the collected set is identical for any thread count — a
    // one-thread wave degenerates to exactly the serial loop, including its
    // early exit. Wider waves may evaluate up to `threads − 1` attempts past
    // the n-th acceptance and discard them; that costs only wall-clock work
    // already saved many times over.
    let base = dep.clone();
    let try_attempt = |k: usize| -> Option<(Pose, MappingSample)> {
        let mut rng = StdRng::seed_from_u64(cyclops_par::mix64(seed, 2 * k as u64));
        let mut d = base.clone();
        *d.rng() = StdRng::seed_from_u64(cyclops_par::mix64(seed, 2 * k as u64 + 1));
        let pose = random_placement(&mut rng, d.design.nominal_range);
        d.set_headset_pose(pose);
        let res = exhaustive_align(&mut d);
        if res.power_dbm < d.design.sfp.rx_sensitivity_dbm {
            return None;
        }
        let reported = noisy_report_with(&d, tracker_cfg, &mut rng);
        Some((
            pose,
            MappingSample {
                voltages: res.voltages,
                reported,
            },
        ))
    };

    let mut out = Vec::with_capacity(n);
    let mut last_accepted: Option<(Pose, [f64; 4])> = None;
    let mut next = 0usize;
    while out.len() < n && next < max_attempts {
        let wave = cyclops_par::max_threads().min(max_attempts - next);
        #[cfg(feature = "parallel")]
        let results = cyclops_par::par_map_indexed(wave, 1, |i| try_attempt(next + i));
        #[cfg(not(feature = "parallel"))]
        let results: Vec<Option<(Pose, MappingSample)>> =
            (0..wave).map(|i| try_attempt(next + i)).collect();
        next += wave;
        for (pose, sample) in results.into_iter().flatten() {
            if out.len() >= n {
                break;
            }
            last_accepted = Some((pose, sample.voltages));
            out.push(sample);
        }
    }

    // Leave the real rig posed and aligned at the last accepted placement —
    // commissioning reads the aligning voltages off the deployment after
    // training.
    if let Some((pose, v)) = last_accepted {
        dep.set_headset_pose(pose);
        dep.set_voltages(v[0], v[1], v[2], v[3]);
    }
    out
}

/// A random headset placement within the rig's working volume.
pub fn random_placement<R: Rng>(rng: &mut R, range: f64) -> Pose {
    use cyclops_geom::rotation::axis_angle;
    let axis = v3(
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
    )
    .try_normalized(1e-6)
    .unwrap_or(Vec3::Y);
    let ang = rng.gen_range(-0.17..0.17);
    Pose::new(
        axis_angle(axis, ang),
        v3(
            rng.gen_range(-0.25..0.25),
            rng.gen_range(-0.25..0.25),
            range + rng.gen_range(-0.25..0.25),
        ),
    )
}

/// One noisy VRH-T pose report of the deployment's headset, drawing noise
/// from the deployment's own RNG.
pub fn noisy_report(dep: &mut Deployment, cfg: &TrackerConfig) -> Pose {
    let clean = dep.headset.true_reported_pose();
    noisy_report_of(clean, cfg, dep.rng())
}

/// One noisy VRH-T pose report of the deployment's headset (bypassing the
/// timing machinery — mapping collection is quasi-static).
pub fn noisy_report_with<R: Rng>(dep: &Deployment, cfg: &TrackerConfig, rng: &mut R) -> Pose {
    noisy_report_of(dep.headset.true_reported_pose(), cfg, rng)
}

/// Applies VRH-T-style jitter to a clean reported pose.
pub fn noisy_report_of<R: Rng>(clean: Pose, cfg: &TrackerConfig, rng: &mut R) -> Pose {
    use cyclops_vrh::rand_util::gauss as g;
    let jt = v3(
        g(rng) * cfg.pos_noise_sigma,
        g(rng) * cfg.pos_noise_sigma,
        g(rng) * cfg.pos_noise_sigma,
    );
    let jr = v3(
        g(rng) * cfg.ang_noise_sigma,
        g(rng) * cfg.ang_noise_sigma,
        g(rng) * cfg.ang_noise_sigma,
    );
    Pose::from_quat(
        Quat::from_rotation_vector(jr) * clean.quat(),
        clean.trans + jt,
    )
}

/// The learner's initial guess for the two mappings: the true composites
/// perturbed by "manual measurement" error (`pos_m` metres, `ang_rad`
/// radians) — the deployment-time analogue of §4.1's CAD initial guess.
pub fn rough_initial_guess(
    dep: &Deployment,
    tx_rig_pose: &Pose,
    rx_rig_pose: &Pose,
    pos_m: f64,
    ang_rad: f64,
    seed: u64,
) -> (Pose6, Pose6) {
    use cyclops_geom::rotation::axis_angle;
    let mut rng = StdRng::seed_from_u64(seed);
    let hidden = dep.headset.hidden_config();
    let tx_true = hidden
        .vr_from_world
        .compose(&dep.tx_pose)
        .compose(&tx_rig_pose.inverse());
    let rx_true = hidden
        .x_offset
        .inverse()
        .compose(&dep.rx_mount)
        .compose(&rx_rig_pose.inverse());
    let perturb = |p: &Pose, rng: &mut StdRng| {
        let axis = v3(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        )
        .try_normalized(1e-6)
        .unwrap_or(Vec3::X);
        let rot = axis_angle(axis, rng.gen_range(-ang_rad..ang_rad)) * p.rot;
        let t = p.trans
            + v3(
                rng.gen_range(-pos_m..pos_m),
                rng.gen_range(-pos_m..pos_m),
                rng.gen_range(-pos_m..pos_m),
            );
        Pose::new(rot, t).to_params()
    };
    (perturb(&tx_true, &mut rng), perturb(&rx_true, &mut rng))
}

/// Residuals of the Lemma-1 error for the LM fit: six components per sample
/// (the vector gaps `p_t − τ_r` and `p_r − τ_t`).
fn residuals(
    params12: &[f64],
    tx_model: &GalvoParams,
    rx_model: &GalvoParams,
    samples: &[MappingSample],
) -> Vec<f64> {
    let tx_map = Pose6::from_slice(&params12[0..6]).to_pose();
    let rx_map = Pose6::from_slice(&params12[6..12]).to_pose();
    let txp = tx_model.transformed(&tx_map);
    let mut out = Vec::with_capacity(samples.len() * 6);
    for s in samples {
        let rxp = rx_model.transformed(&s.reported.compose(&rx_map));
        let ok = (|| {
            let beam_t = txp.trace_line(s.voltages[0], s.voltages[1])?;
            let beam_r = rxp.trace_line(s.voltages[2], s.voltages[3])?;
            let (_, tau_t) = rxp
                .second_mirror_plane(s.voltages[3])
                .intersect_line(&beam_t)?;
            let (_, tau_r) = txp
                .second_mirror_plane(s.voltages[1])
                .intersect_line(&beam_r)?;
            let g1 = beam_t.origin - tau_r;
            let g2 = beam_r.origin - tau_t;
            Some([g1.x, g1.y, g1.z, g2.x, g2.y, g2.z])
        })();
        match ok {
            Some(r) => out.extend_from_slice(&r),
            None => out.extend_from_slice(&[1.0; 6]),
        }
    }
    out
}

/// Fits the 12 mapping parameters (§4.2 step 3).
pub fn fit(
    tx_model: &GalvoParams,
    rx_model: &GalvoParams,
    samples: &[MappingSample],
    init_tx: Pose6,
    init_rx: Pose6,
) -> TrainedMapping {
    assert!(samples.len() >= 4, "need at least 4 aligned samples");
    let mut x0 = Vec::with_capacity(12);
    x0.extend_from_slice(&init_tx.to_array());
    x0.extend_from_slice(&init_rx.to_array());
    let (txm, rxm) = (*tx_model, *rx_model);
    let samples_owned: Vec<MappingSample> = samples.to_vec();
    let f = move |p: &[f64]| residuals(p, &txm, &rxm, &samples_owned);
    let opts = LmOptions {
        max_iters: 150,
        ..Default::default()
    };
    let report = levenberg_marquardt(f, &x0, &opts);
    TrainedMapping {
        tx_model: *tx_model,
        rx_model: *rx_model,
        tx_map: Pose6::from_slice(&report.params[0..6]).to_pose(),
        rx_map: Pose6::from_slice(&report.params[6..12]).to_pose(),
        report,
    }
}

/// End-to-end stage-2 helper used by experiments and tests: collect samples
/// and fit, given the stage-1 outputs. Returns the mapping and the samples
/// (so callers can evaluate combined errors on them or on held-out sets).
pub struct MappingTraining {
    /// The fitted mapping.
    pub trained: TrainedMapping,
    /// The samples used for the fit.
    pub samples: Vec<MappingSample>,
}

/// Runs collection + fit with the paper's sample budget (~30) and the
/// default tracker.
pub fn train(
    dep: &mut Deployment,
    tx_model: &GalvoParams,
    rx_model: &GalvoParams,
    init_tx: Pose6,
    init_rx: Pose6,
    n_samples: usize,
    seed: u64,
) -> MappingTraining {
    train_with(
        dep,
        tx_model,
        rx_model,
        init_tx,
        init_rx,
        n_samples,
        seed,
        &TrackerConfig::default(),
    )
}

/// [`train`] with an explicit tracker configuration — the training reports'
/// noise must match the tracker the system will run with.
#[allow(clippy::too_many_arguments)]
pub fn train_with(
    dep: &mut Deployment,
    tx_model: &GalvoParams,
    rx_model: &GalvoParams,
    init_tx: Pose6,
    init_rx: Pose6,
    n_samples: usize,
    seed: u64,
    tracker: &TrackerConfig,
) -> MappingTraining {
    let samples = collect_samples_with(dep, n_samples, seed, tracker);
    assert!(
        samples.len() >= 4,
        "only {} usable placements collected — the link cannot close over \
         enough of this deployment's working volume (check range vs design)",
        samples.len()
    );
    let trained = fit(tx_model, rx_model, &samples, init_tx, init_rx);
    MappingTraining { trained, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use crate::kspace::{train_both, BoardConfig};

    /// Full pipeline fixture: stage 1 + stage 2 on a fresh deployment.
    /// Expensive (~seconds), so shared across assertions in one test.
    fn full_training(seed: u64) -> (Deployment, MappingTraining) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        let (tx_tr, tx_rig, rx_tr, rx_rig) =
            train_both(&dep, &BoardConfig::default(), seed).expect("stage-1 training");
        let (init_tx, init_rx) =
            rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed.wrapping_add(7));
        let mt = train(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            30,
            seed.wrapping_add(9),
        );
        (dep, mt)
    }

    #[test]
    fn mapping_fit_reaches_table2_combined_accuracy() {
        let (_dep, mt) = full_training(2024);
        assert!(mt.samples.len() >= 25, "got {} samples", mt.samples.len());
        let (tx_err, rx_err) = mt.trained.combined_errors(&mt.samples);
        let (tx_mm, rx_mm) = (tx_err.mean * 1e3, rx_err.mean * 1e3);
        // Table 2: combined avg 2.18 mm (TX) / 4.54 mm (RX); max ≈ 4–6.5 mm.
        // Accept the same order (we train a wider orientation envelope).
        assert!(tx_mm < 12.0, "combined TX avg {tx_mm} mm");
        assert!(rx_mm < 15.0, "combined RX avg {rx_mm} mm");
        assert!(
            tx_err.max * 1e3 < 30.0,
            "combined TX max {} mm",
            tx_err.max * 1e3
        );
        // The fit must improve dramatically on the initial guess.
        assert!(
            mt.trained.report.cost < mt.trained.report.initial_cost / 10.0,
            "cost {} vs initial {}",
            mt.trained.report.cost,
            mt.trained.report.initial_cost
        );
    }

    #[test]
    fn mapping_generalizes_to_held_out_placements() {
        let (mut dep, mt) = full_training(31);
        let held_out = collect_samples(&mut dep, 8, 777);
        assert!(held_out.len() >= 6);
        let (tx_err, rx_err) = mt.trained.combined_errors(&held_out);
        assert!(
            tx_err.mean * 1e3 < 15.0,
            "held-out TX avg {} mm",
            tx_err.mean * 1e3
        );
        assert!(
            rx_err.mean * 1e3 < 18.0,
            "held-out RX avg {} mm",
            rx_err.mean * 1e3
        );
    }
}
