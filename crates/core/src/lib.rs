//! # cyclops-core
//!
//! The paper's contribution: the learning-based tracking-and-pointing (TP)
//! pipeline of *Cyclops* (SIGCOMM '22), §4 — plus the simulated bench
//! ([`deployment`]) it trains against.
//!
//! The pipeline has three stages (Fig 6):
//!
//! 1. **[`kspace`]** — learn each galvo-mirror assembly's model `G` in a
//!    known coordinate space by shooting at a grid board and fitting the
//!    parameterized beam-path expression (§4.1);
//! 2. **[`mapping`]** — learn the 12 parameters mapping both K-spaces into
//!    the headset tracker's VR-space, from exhaustively-aligned link
//!    configurations, using the Lemma-1 error function (§4.2), with the
//!    [`alignment`] search providing the aligned samples;
//! 3. **[`pointing`](mod@pointing)** — the real-time pointing function `P`: an iteration
//!    alternating the forward models `G` and the computational inverse
//!    [`gprime`](mod@gprime) across the two ends until the Lemma-1 points coincide
//!    (§4.3).
//!
//! [`tp`] packages the trained models into the online controller driven by
//! VRH-T reports; [`tolerance`] measures link movement tolerance (§5.1).
//!
//! Throughout, the *learner* only touches simulated-hardware outputs
//! (voltages in, noisy rays/power out); the hidden truth lives inside
//! [`deployment::Deployment`] exactly as it lived inside the authors' bench
//! hardware.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod alignment;
pub mod deployment;
pub mod gprime;
pub mod kspace;
pub mod mapping;
pub mod pointing;
pub mod recalib;
pub mod tolerance;
pub mod tp;

pub use alignment::{exhaustive_align, AlignResult};
pub use deployment::{Deployment, DeploymentConfig};
pub use gprime::{gprime, GPrimeResult};
pub use kspace::{KspaceError, KspaceRig, KspaceTraining};
pub use mapping::{MappingTraining, TrainedMapping};
pub use pointing::{pointing, PointingResult};
pub use recalib::{recalibrate_mapping, DriftMonitor};
pub use tolerance::{lateral_tolerance, rx_angular_tolerance, tx_angular_tolerance};
pub use tp::{TpController, TpMetrics};

pub use deployment::cheat_align;
