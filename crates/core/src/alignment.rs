//! The automated exhaustive alignment search (§4.2).
//!
//! "We leverage the obvious precision of an automated-exhaustive search to
//! optimally align a beam; the exhaustive search finds the optimal
//! combination of the four voltages that maximizes the received power at the
//! RX ... the time taken (1–2 mins) by the search is tolerable."
//!
//! The practical realization (as in the authors' FSONet \[32\]) is
//! multi-resolution:
//!
//! 1. **TX coarse** — sweep the TX voltage pair over the whole coverage cone
//!    watching the *photodiode monitor* (whose basin is centimetres wide,
//!    unlike the fiber's millimetres) until the beam lands on the RX front;
//! 2. **TX refine** — pattern-search the monitor signal to centre the beam;
//! 3. **RX coarse** — sweep the RX voltage pair until the fiber sees light
//!    (the imaginary beam points back at the TX);
//! 4. **joint refine** — 4-D pattern search on received power down to the
//!    DAC step.
//!
//! The search only ever touches hardware observables: the monitor signal and
//! the received power.

use crate::deployment::Deployment;
use cyclops_optics::galvo::{VOLT_MAX, VOLT_MIN};
use cyclops_optics::power::dbm_to_mw;
use cyclops_solver::pattern::{pattern_search, PatternOptions};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Result of an exhaustive alignment.
#[derive(Debug, Clone, Copy)]
pub struct AlignResult {
    /// The four aligning voltages `(v_t1, v_t2, v_r1, v_r2)`.
    pub voltages: [f64; 4],
    /// Received power at the aligned configuration (dBm).
    pub power_dbm: f64,
    /// Total hardware evaluations (power/monitor readings) used.
    pub n_evals: usize,
}

/// One coarse voltage-pair sweep over the full `[VOLT_MIN, VOLT_MAX]²` grid,
/// row-parallel under the `parallel` feature. Returns the first-wins argmax
/// `(v_a, v_b, score)`.
///
/// The simulated hardware is stateful — every reading advances the
/// deployment's noise RNG — so rows cannot share `dep` across threads
/// without making the draw order depend on the schedule. Instead each row
/// scans its own clone whose RNG is reseeded from
/// `mix64(stage_seed, row)`, a pure function of the stage and the row, and
/// rows are folded in index order with a strictly-greater comparison. The
/// result is therefore bit-identical for any thread count, including the
/// serial `--no-default-features` build (which maps the same row closure in
/// a plain loop).
fn par_voltage_scan<F>(dep: &Deployment, stage_seed: u64, points: usize, eval: F) -> (f64, f64, f64)
where
    F: Fn(&mut Deployment, f64, f64) -> f64 + Sync,
{
    let step = (VOLT_MAX - VOLT_MIN) / (points - 1) as f64;
    let scan_row = |i: usize| -> (f64, f64, f64) {
        let mut d = dep.clone();
        *d.rng() = StdRng::seed_from_u64(cyclops_par::mix64(stage_seed, i as u64));
        let va = VOLT_MIN + i as f64 * step;
        let mut best = (va, VOLT_MIN, f64::NEG_INFINITY);
        for j in 0..points {
            let vb = VOLT_MIN + j as f64 * step;
            let s = eval(&mut d, va, vb);
            if s > best.2 {
                best = (va, vb, s);
            }
        }
        best
    };
    #[cfg(feature = "parallel")]
    let rows = cyclops_par::par_map_indexed(points, 1, scan_row);
    #[cfg(not(feature = "parallel"))]
    let rows: Vec<(f64, f64, f64)> = (0..points).map(scan_row).collect();

    let mut best = (VOLT_MIN, VOLT_MIN, f64::NEG_INFINITY);
    for row in rows {
        if row.2 > best.2 {
            best = row;
        }
    }
    best
}

/// Runs the §4.2 exhaustive search on the deployment as currently posed.
/// Leaves the galvos commanded to the aligned voltages.
pub fn exhaustive_align(dep: &mut Deployment) -> AlignResult {
    let mut n_evals = 0usize;

    // Stage 1: TX coarse sweep on the monitor signal (row-parallel).
    let seed_tx = dep.rng().next_u64();
    let (ct1, ct2, _) = par_voltage_scan(dep, seed_tx, 51, |d: &mut Deployment, a, b| {
        let keep = d.voltages();
        d.set_voltages(a, b, keep.2, keep.3);
        d.monitor_signal()
    });
    n_evals += 51 * 51;

    // Stage 2: TX refine on the monitor signal (serial, on the real rig).
    let refine_tx = {
        let mut local = |v: &[f64]| {
            let keep = dep.voltages();
            dep.set_voltages(v[0], v[1], keep.2, keep.3);
            n_evals += 1;
            dep.monitor_signal()
        };
        let mut opts = PatternOptions::uniform(2, VOLT_MIN, VOLT_MAX, 0.25);
        opts.shrink_tol = 1e-3;
        pattern_search(&mut local, &[ct1, ct2], &opts)
    };
    let (vt1, vt2) = (refine_tx.params[0], refine_tx.params[1]);
    dep.set_voltages(vt1, vt2, 0.0, 0.0);

    // Stage 3: RX coarse sweep on received power (row-parallel; linear mW so
    // that "no light" is a clean zero).
    let seed_rx = dep.rng().next_u64();
    let (cr1, cr2, _) = par_voltage_scan(dep, seed_rx, 161, move |d: &mut Deployment, a, b| {
        d.set_voltages(vt1, vt2, a, b);
        dbm_to_mw(d.received_power_unfloored_dbm())
    });
    n_evals += 161 * 161;

    // Stage 4: joint 4-D refine on received power, down to the DAC step
    // (serial, on the real rig).
    let dac_step = dep.tx.cfg.dac_step_v.max(1e-5);
    let joint = {
        let mut local = |v: &[f64]| {
            dep.set_voltages(v[0], v[1], v[2], v[3]);
            n_evals += 1;
            dbm_to_mw(dep.received_power_unfloored_dbm())
        };
        let mut opts = PatternOptions::uniform(4, VOLT_MIN, VOLT_MAX, 0.08);
        opts.shrink_tol = dac_step / 0.08;
        opts.max_evals = 20_000;
        pattern_search(&mut local, &[vt1, vt2, cr1, cr2], &opts)
    };

    let v = [
        joint.params[0],
        joint.params[1],
        joint.params[2],
        joint.params[3],
    ];
    dep.set_voltages(v[0], v[1], v[2], v[3]);
    let power_dbm = dep.received_power_dbm();
    AlignResult {
        voltages: v,
        power_dbm,
        n_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{cheat_align, Deployment, DeploymentConfig};
    use cyclops_geom::pose::Pose;
    use cyclops_geom::rotation::axis_angle;
    use cyclops_geom::vec3::{v3, Vec3};

    #[test]
    fn align_reaches_near_optimal_power() {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(42));
        let res = exhaustive_align(&mut dep);
        // Independently find the true optimum.
        let mut dep2 = Deployment::new(&DeploymentConfig::paper_10g(42));
        cheat_align(&mut dep2);
        let best = dep2.received_power_dbm();
        assert!(
            res.power_dbm > best - 1.5,
            "search found {} dBm, optimum ≈ {best} dBm",
            res.power_dbm
        );
        assert!(dep.link_up());
    }

    #[test]
    fn align_works_from_displaced_headset_pose() {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(43));
        let pose = Pose::new(
            axis_angle(v3(0.2, 1.0, 0.1).normalized(), 0.15),
            v3(0.15, -0.1, 1.9),
        );
        dep.set_headset_pose(pose);
        let res = exhaustive_align(&mut dep);
        assert!(
            res.power_dbm >= dep.design.sfp.rx_sensitivity_dbm,
            "power {} dBm",
            res.power_dbm
        );
    }

    #[test]
    fn align_result_voltages_are_applied() {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(44));
        let res = exhaustive_align(&mut dep);
        let (a, b, c, d) = dep.voltages();
        // Voltages are quantized on application, so compare loosely.
        assert!((a - res.voltages[0]).abs() < 1e-3);
        assert!((b - res.voltages[1]).abs() < 1e-3);
        assert!((c - res.voltages[2]).abs() < 1e-3);
        assert!((d - res.voltages[3]).abs() < 1e-3);
    }

    #[test]
    fn search_uses_bounded_hardware_evaluations() {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(45));
        let res = exhaustive_align(&mut dep);
        // 51² + 161² + refines ≈ 30k: "a few minutes" at bench reading
        // rates, per the paper.
        assert!(res.n_evals < 80_000, "{} evals", res.n_evals);
        assert!(
            res.n_evals > 25_000,
            "{} evals (sweeps should dominate)",
            res.n_evals
        );
    }

    #[test]
    fn aligned_beams_satisfy_lemma1() {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(46));
        exhaustive_align(&mut dep);
        let lp = dep.lemma_points().unwrap();
        // The search maximizes power; by Lemma 1 the coincidence gap must be
        // small (within the beam geometry scale).
        assert!(lp.gap() < 5e-3, "lemma gap {} m", lp.gap());
        // And both optical paths nearly coincide as lines.
        let _ = Vec3::ZERO;
    }
}
