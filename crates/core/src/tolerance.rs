//! Link movement-tolerance measurement (§5.1, Table 1, Fig 11).
//!
//! The paper's metric: "the maximum angular movement from the aligned
//! position for which the link remains connected". Measured here exactly as
//! on the bench — start from a perfectly aligned link, apply a pure offset
//! (TX steering angle, RX assembly rotation, or RX lateral translation), and
//! bisect for the largest offset at which received power still meets the
//! receiver's sensitivity.
//!
//! These functions work on the pure link geometry (no galvos needed): the
//! tolerance is a property of the beam/coupling design.

use cyclops_geom::ray::Ray;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::vec3::Vec3;
use cyclops_optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops_solver::scalar::bisect_threshold;

const ANGLE_HI: f64 = 0.1; // 100 mrad search ceiling
const TOL: f64 = 1e-6;

fn aligned_rx(range: f64) -> ReceiverGeometry {
    ReceiverGeometry::new(Vec3::Z * range, -Vec3::Z)
}

fn chief() -> Ray {
    Ray::new(Vec3::ZERO, Vec3::Z)
}

/// TX angular tolerance (radians): maximum TX steering offset keeping the
/// link connected at `range`.
pub fn tx_angular_tolerance(design: &LinkDesign, range: f64) -> f64 {
    let rx = aligned_rx(range);
    bisect_threshold(
        |a| {
            let steered = Ray::new(Vec3::ZERO, axis_angle(Vec3::X, a) * Vec3::Z);
            design.link_closes(design.received_power_dbm(steered, &rx))
        },
        0.0,
        ANGLE_HI,
        TOL,
    )
}

/// RX angular tolerance (radians): maximum RX-assembly rotation (about its
/// own aperture centre) keeping the link connected.
pub fn rx_angular_tolerance(design: &LinkDesign, range: f64) -> f64 {
    bisect_threshold(
        |a| {
            let rx = ReceiverGeometry::new(Vec3::Z * range, axis_angle(Vec3::X, a) * -Vec3::Z);
            design.link_closes(design.received_power_dbm(chief(), &rx))
        },
        0.0,
        ANGLE_HI,
        TOL,
    )
}

/// Lateral tolerance (metres): maximum RX translation perpendicular to the
/// beam keeping the link connected (without re-pointing). For a diverging
/// beam the translation also changes the local incidence angle, which this
/// measurement includes — the reason lateral tolerance is millimetres even
/// though the beam is centimetres wide.
pub fn lateral_tolerance(design: &LinkDesign, range: f64) -> f64 {
    bisect_threshold(
        |d| {
            let rx = ReceiverGeometry::new(Vec3::Z * range + Vec3::X * d, -Vec3::Z);
            design.link_closes(design.received_power_dbm(chief(), &rx))
        },
        0.0,
        0.2,
        1e-7,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 1.75;

    #[test]
    fn table1_collimated_tolerances() {
        let d = LinkDesign::ten_g_collimated(R);
        let tx = tx_angular_tolerance(&d, R) * 1e3;
        let rx = rx_angular_tolerance(&d, R) * 1e3;
        // Paper: TX 2.00 mrad, RX 2.28 mrad.
        assert!((1.5..3.2).contains(&tx), "TX tol {tx} mrad");
        assert!((1.5..3.2).contains(&rx), "RX tol {rx} mrad");
        assert!(tx <= rx + 0.2, "TX ≤ RX for the collimated design");
    }

    #[test]
    fn table1_diverging_tolerances() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let tx = tx_angular_tolerance(&d, R) * 1e3;
        let rx = rx_angular_tolerance(&d, R) * 1e3;
        // Paper: TX 15.81 mrad, RX 5.77 mrad.
        assert!((12.0..19.0).contains(&tx), "TX tol {tx} mrad");
        assert!((4.5..7.0).contains(&rx), "RX tol {rx} mrad");
        assert!(
            tx > 2.0 * rx,
            "diverging design: TX tolerance ≫ RX tolerance"
        );
    }

    #[test]
    fn diverging_beats_collimated_on_movement_tolerance() {
        // The design argument of §5.1.
        let div = LinkDesign::ten_g_diverging(20.0e-3, R);
        let col = LinkDesign::ten_g_collimated(R);
        assert!(tx_angular_tolerance(&div, R) > 4.0 * tx_angular_tolerance(&col, R));
        assert!(rx_angular_tolerance(&div, R) > 1.5 * rx_angular_tolerance(&col, R));
    }

    #[test]
    fn fig11_rx_tolerance_peaks_at_intermediate_diameter() {
        // Fig 11: RX angular tolerance peaks (paper: 5.77 mrad @ 16 mm);
        // both very narrow and very wide beams do worse.
        let rx_at =
            |d_mm: f64| rx_angular_tolerance(&LinkDesign::ten_g_diverging(d_mm * 1e-3, R), R) * 1e3;
        let narrow = rx_at(4.0);
        let mid = rx_at(14.0);
        let wide = rx_at(28.0);
        assert!(mid > narrow, "mid {mid} vs narrow {narrow}");
        assert!(mid > wide, "mid {mid} vs wide {wide}");
        assert!((4.5..8.0).contains(&mid), "peak RX tolerance {mid} mrad");
    }

    #[test]
    fn tx_tolerance_grows_with_divergence_then_collapses_with_margin() {
        let tx_at =
            |d_mm: f64| tx_angular_tolerance(&LinkDesign::ten_g_diverging(d_mm * 1e-3, R), R) * 1e3;
        assert!(tx_at(12.0) > tx_at(4.0));
        // At extreme diameters the margin is gone and tolerance collapses.
        assert!(tx_at(32.0) < tx_at(20.0));
    }

    #[test]
    fn tolerances_scale_with_link_budget() {
        // §5.3.1's mechanism: the 25G SFP's smaller budget cuts TX tolerance.
        let d10 = LinkDesign::ten_g_diverging(20.0e-3, R);
        let d25 = LinkDesign::twenty_five_g(20.0e-3, R);
        assert!(tx_angular_tolerance(&d25, R) < tx_angular_tolerance(&d10, R));
        // ...while the adjustable collimators buy back RX angular tolerance
        // (paper: 8.73 mrad vs 5.77 mrad).
        let rx25 = rx_angular_tolerance(&d25, R) * 1e3;
        assert!((7.0..10.5).contains(&rx25), "25G RX tol {rx25} mrad");
    }

    #[test]
    fn lateral_tolerance_is_millimetres() {
        let d = LinkDesign::ten_g_diverging(20.0e-3, R);
        let lat = lateral_tolerance(&d, R) * 1e3;
        assert!((4.0..15.0).contains(&lat), "lateral tolerance {lat} mm");
    }
}
