//! Stage 1: learning the GMA model `G` in K-space (§4.1).
//!
//! The bench procedure: a planar board with grid lines stands in front of
//! the (fixed) GMA; for each interior grid point the experimenter finds the
//! voltage pair that makes the beam hit it, yielding 4-attribute samples
//! `(x, y, v₁, v₂)`. The K-space coordinate system's x–y plane *is* the
//! board. Non-linear least squares then fits the parameterized beam-path
//! expression (the [`GalvoParams`] of `cyclops-optics`) to the samples,
//! starting "from the available CAD design of the GM ... and manual
//! measurement of \[the] GM's position".
//!
//! Paper numbers reproduced here: a 20×15 board of 1-inch cells at 1.5 m
//! giving 266 interior training points, and stage-1 fit errors of ~1–2 mm
//! average (Table 2).

use crate::deployment::Deployment;
use cyclops_geom::plane::Plane;
use cyclops_geom::pose::Pose;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::vec3::{v3, Vec3};
use cyclops_optics::galvo::{
    check_volts, GalvoError, GalvoParams, GalvoSim, N_PARAMS, VOLT_MAX, VOLT_MIN,
};
use cyclops_solver::lm::{levenberg_marquardt, LmOptions, LmReport};
use cyclops_solver::stats::ResidualStats;
use cyclops_vrh::rand_util::gauss;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Board layout (paper defaults: 20×15 one-inch cells).
#[derive(Debug, Clone, Copy)]
pub struct BoardConfig {
    /// Number of cell columns.
    pub cols: usize,
    /// Number of cell rows.
    pub rows: usize,
    /// Cell edge length (metres); 1 inch in the prototype.
    pub cell_m: f64,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig {
            cols: 20,
            rows: 15,
            cell_m: 0.0254,
        }
    }
}

impl BoardConfig {
    /// Number of interior intersection points = training samples
    /// ((cols−1)×(rows−1); 19×14 = 266 for the paper's board).
    pub fn n_interior(&self) -> usize {
        (self.cols - 1) * (self.rows - 1)
    }
}

/// Errors of the stage-1 training pipeline, surfaced as values instead of
/// panics so a mis-assembled rig degrades gracefully.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KspaceError {
    /// The training set is empty: the rest beam missed the board entirely,
    /// or the operator could not land the beam on a single grid point.
    EmptyTrainingSet,
    /// A training sample carries an invalid voltage pair (propagated from
    /// the galvo layer's validation).
    Galvo(GalvoError),
}

impl std::fmt::Display for KspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KspaceError::EmptyTrainingSet => {
                write!(f, "K-space training set is empty (no board hits)")
            }
            KspaceError::Galvo(e) => write!(f, "K-space training sample invalid: {e}"),
        }
    }
}

impl std::error::Error for KspaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KspaceError::Galvo(e) => Some(e),
            KspaceError::EmptyTrainingSet => None,
        }
    }
}

impl From<GalvoError> for KspaceError {
    fn from(e: GalvoError) -> KspaceError {
        KspaceError::Galvo(e)
    }
}

/// One K-space training sample: board coordinates hit at a voltage pair.
#[derive(Debug, Clone, Copy)]
pub struct KspaceSample {
    /// Board x coordinate (metres).
    pub x: f64,
    /// Board y coordinate (metres).
    pub y: f64,
    /// First-mirror voltage.
    pub v1: f64,
    /// Second-mirror voltage.
    pub v2: f64,
}

/// The calibration rig: one galvo assembly fixed in front of the board.
///
/// K-space is the board frame: the board occupies the `z = 0` plane and the
/// assembly sits ~1.5 m in front of it, firing towards −Z.
#[derive(Debug, Clone)]
pub struct KspaceRig {
    /// The hardware under calibration (truth in its body frame).
    pub galvo: GalvoSim,
    /// Body frame → K-space (truth; hidden from the learner, who only has
    /// [`KspaceRig::cad_initial_guess`]).
    rig_pose: Pose,
    /// σ of the board hit-point reading (metres) — grid resolution /
    /// spot-centroid judgement by the experimenter.
    pub board_noise_m: f64,
    rng: StdRng,
}

impl KspaceRig {
    /// Standard rig: assembly at `z ≈ 1.5 m` firing down at the board, with
    /// centimetre/half-degree placement imperfection drawn from the seed.
    pub fn standard(galvo: GalvoSim, seed: u64) -> KspaceRig {
        let mut rng = StdRng::seed_from_u64(seed);
        // Flip the body's +Z output to world −Z and lift to z = 1.5.
        let flip = axis_angle(Vec3::X, std::f64::consts::PI);
        let tilt_axis = v3(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        )
        .try_normalized(1e-6)
        .unwrap_or(Vec3::X);
        let tilt = axis_angle(tilt_axis, rng.gen_range(-0.01..0.01));
        let rig_pose = Pose::new(
            tilt * flip,
            v3(
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
                1.5 + rng.gen_range(-0.01..0.01),
            ),
        );
        KspaceRig {
            galvo,
            rig_pose,
            board_noise_m: 1.2e-3,
            rng,
        }
    }

    /// True rig pose (experiment-setup/white-box access only).
    pub fn true_rig_pose(&self) -> Pose {
        self.rig_pose
    }

    /// The learner's initial guess: the CAD-nominal assembly placed at the
    /// *measured* rig pose (tape-measure accuracy: ~3 mm, ~0.5°).
    pub fn cad_initial_guess(&mut self) -> GalvoParams {
        let axis = v3(
            self.rng.gen_range(-1.0..1.0),
            self.rng.gen_range(-1.0..1.0),
            self.rng.gen_range(-1.0..1.0),
        )
        .try_normalized(1e-6)
        .unwrap_or(Vec3::Y);
        let ang = self.rng.gen_range(-0.01..0.01);
        let dt = v3(
            self.rng.gen_range(-3e-3..3e-3),
            self.rng.gen_range(-3e-3..3e-3),
            self.rng.gen_range(-3e-3..3e-3),
        );
        let measured_pose = Pose::new(
            axis_angle(axis, ang) * self.rig_pose.rot,
            self.rig_pose.trans + dt,
        );
        GalvoParams::nominal().transformed(&measured_pose)
    }

    /// Galvo truth expressed in K-space (white-box analysis only).
    pub fn true_kspace_params(&self) -> GalvoParams {
        self.galvo.truth.transformed(&self.rig_pose)
    }

    /// Fires the beam at the given voltages and reads the board hit point
    /// (with measurement noise). `None` if the beam misses the board plane.
    pub fn measure_hit(&mut self, v1: f64, v2: f64) -> Option<(f64, f64)> {
        self.galvo.command(v1, v2);
        let ray_body = self.galvo.output_ray(&mut self.rng)?;
        let ray = self.rig_pose.apply_ray(&ray_body);
        let board = Plane::new(Vec3::ZERO, Vec3::Z);
        let (_, hit) = board.intersect_ray(&ray)?;
        let nx = gauss(&mut self.rng) * self.board_noise_m;
        let ny = gauss(&mut self.rng) * self.board_noise_m;
        Some((hit.x + nx, hit.y + ny))
    }

    /// The bench inner loop: find the voltage pair that puts the beam on the
    /// target board point, by damped Newton iteration on measured hits.
    ///
    /// Uses a wide finite-difference baseline (0.25 V ≈ 2 cm of board travel)
    /// so the measured Jacobian is barely corrupted by the millimetre-level
    /// reading noise, and *verifies* the final hit: a point the beam visibly
    /// missed is rejected (`None`), exactly as a bench operator would skip a
    /// grid point they could not land on.
    pub fn find_voltages_for(&mut self, x: f64, y: f64) -> Option<(f64, f64)> {
        let (mut v1, mut v2) = (0.0f64, 0.0f64);
        let eps = 0.25;
        let mut best: Option<(f64, f64, f64)> = None; // (err, v1, v2)
        for _ in 0..30 {
            let (hx, hy) = self.measure_hit(v1, v2)?;
            let (ex, ey) = (x - hx, y - hy);
            let err = (ex * ex + ey * ey).sqrt();
            if best.map_or(true, |(e, _, _)| err < e) {
                best = Some((err, v1, v2));
            }
            // Stop once the measured error reaches the reading-noise floor
            // (an exact rig can therefore converge much tighter).
            if err < (1.25 * self.board_noise_m).max(0.3e-3) {
                break;
            }
            let (h1x, h1y) = self.measure_hit(v1 + eps, v2)?;
            let (h2x, h2y) = self.measure_hit(v1, v2 + eps)?;
            // 2×2 linear solve for the voltage correction.
            let (a, b) = (h1x - hx, h2x - hx);
            let (c, d) = (h1y - hy, h2y - hy);
            let det = a * d - b * c;
            if det.abs() < 1e-12 {
                return None;
            }
            let dv1 = (ex * d - b * ey) / det * eps;
            let dv2 = (a * ey - ex * c) / det * eps;
            // Damp steps for stability against measurement noise.
            v1 = (v1 + (0.9 * dv1).clamp(-2.0, 2.0)).clamp(VOLT_MIN, VOLT_MAX);
            v2 = (v2 + (0.9 * dv2).clamp(-2.0, 2.0)).clamp(VOLT_MIN, VOLT_MAX);
        }
        let (err, bv1, bv2) = best?;
        // Operator verification: independently re-measure the best setting
        // and only record the sample if the beam is visibly on the target.
        let (hx, hy) = self.measure_hit(bv1, bv2)?;
        let verify = ((x - hx).powi(2) + (y - hy).powi(2)).sqrt();
        if err.max(verify) > 4.5e-3 {
            return None;
        }
        Some((bv1, bv2))
    }

    /// Collects the full §4.1 training set: the interior grid points of a
    /// board centred on the beam's rest hit point.
    pub fn collect_samples(&mut self, board: &BoardConfig) -> Vec<KspaceSample> {
        // A rest beam that misses the board entirely means the rig is
        // grossly mis-assembled; the operator gets no samples (and `fit`
        // will refuse an empty set) rather than a panic.
        let Some((cx, cy)) = self.measure_hit(0.0, 0.0) else {
            return Vec::new();
        };
        let w = board.cols as f64 * board.cell_m;
        let h = board.rows as f64 * board.cell_m;
        let (ox, oy) = (cx - w / 2.0, cy - h / 2.0);
        let mut out = Vec::with_capacity(board.n_interior());
        for i in 1..board.cols {
            for j in 1..board.rows {
                let x = ox + i as f64 * board.cell_m;
                let y = oy + j as f64 * board.cell_m;
                if let Some((v1, v2)) = self.find_voltages_for(x, y) {
                    out.push(KspaceSample { x, y, v1, v2 });
                }
            }
        }
        out
    }
}

/// Result of the stage-1 fit.
#[derive(Debug, Clone)]
pub struct KspaceTraining {
    /// The learned model `G` in K-space.
    pub fitted: GalvoParams,
    /// Solver diagnostics.
    pub report: LmReport,
    /// Board-plane hit error statistics over the training samples (metres) —
    /// the "First Stage" rows of Table 2.
    pub train_error: ResidualStats,
}

/// Board-plane residuals of a candidate model against the samples: for each
/// sample, the (x, y) gap between the traced hit and the recorded target.
fn residuals(params: &GalvoParams, samples: &[KspaceSample]) -> Vec<f64> {
    let board = Plane::new(Vec3::ZERO, Vec3::Z);
    let mut out = Vec::with_capacity(samples.len() * 2);
    for s in samples {
        match params
            .trace_line(s.v1, s.v2)
            .and_then(|ray| board.intersect_line(&ray))
        {
            Some((_, hit)) => {
                out.push(hit.x - s.x);
                out.push(hit.y - s.y);
            }
            None => {
                out.push(1.0);
                out.push(1.0);
            }
        }
    }
    out
}

/// Per-sample hit-distance errors (metres) of a model. Samples where the
/// candidate model's trace degenerates are excluded from the statistics
/// (they are penalized inside the fit's residuals, but a fabricated sentinel
/// distance would corrupt the *reported* Table-2 numbers).
pub fn eval_error(params: &GalvoParams, samples: &[KspaceSample]) -> ResidualStats {
    let board = Plane::new(Vec3::ZERO, Vec3::Z);
    let dists: Vec<f64> = samples
        .iter()
        .filter_map(|s| {
            let ray = params.trace_line(s.v1, s.v2)?;
            let (_, hit) = board.intersect_line(&ray)?;
            Some(((hit.x - s.x).powi(2) + (hit.y - s.y).powi(2)).sqrt())
        })
        .collect();
    ResidualStats::from_slice(&dists)
}

/// Fits `G` to the samples from the CAD initial guess (§4.1(B)).
///
/// Two-phase fit reflecting the error structure of a real rig: the dominant
/// unknown is *where the assembly sits* (centimetres/degrees of placement
/// error), while the CAD internals are right to a millimetre. Phase A
/// optimizes a 6-DoF rigid correction of the whole assembly; phase B then
/// releases all [`N_PARAMS`] geometric parameters. Fitting all 25 parameters
/// directly from the raw guess stalls in the flat placement valley for some
/// geometries — the staging makes the §4.1 procedure robust.
pub fn fit(samples: &[KspaceSample], initial: &GalvoParams) -> Result<KspaceTraining, KspaceError> {
    fit_with_options(samples, initial, true)
}

/// [`fit`] with the CAD prior optionally disabled — used by the board-size
/// ablation to quantify what the prior buys.
///
/// Fails with [`KspaceError::EmptyTrainingSet`] when there is nothing to fit
/// (formerly a panic) and with [`KspaceError::Galvo`] when a sample records
/// a voltage outside the driver range — a sample no real bench could have
/// produced.
pub fn fit_with_options(
    samples: &[KspaceSample],
    initial: &GalvoParams,
    use_prior: bool,
) -> Result<KspaceTraining, KspaceError> {
    use cyclops_geom::pose::Pose6;
    if samples.is_empty() {
        return Err(KspaceError::EmptyTrainingSet);
    }
    for s in samples {
        check_volts(s.v1, s.v2)?;
    }
    let samples_owned: Vec<KspaceSample> = samples.to_vec();

    // Phase A: 6-DoF rigid correction on top of the initial guess.
    let base = *initial;
    let samples_a = samples_owned.clone();
    let f_pose = move |p: &[f64]| {
        let pose = Pose6::from_slice(p).to_pose();
        residuals(&base.transformed(&pose), &samples_a)
    };
    let opts_a = LmOptions {
        max_iters: 80,
        ..Default::default()
    };
    let rep_a = levenberg_marquardt(f_pose, &[0.0; 6], &opts_a);
    let posed = initial.transformed(&Pose6::from_slice(&rep_a.params).to_pose());

    // Phase B: full geometric fit, with a CAD prior.
    //
    // A single-plane training set leaves weakly-determined parameter
    // directions (e.g. trading beam-origin depth against mirror positions):
    // the board residual is flat along them, but extrapolation off the board
    // is not. The CAD drawing *is* informative there — assembly tolerances
    // are ~1 mm / ~1° — so the fit is a MAP estimate: board residuals plus a
    // weak pull of each parameter towards its phase-A (CAD + measured rig
    // pose) value, scaled by the CAD tolerance class. This keeps the
    // on-board residual at the reading-noise floor while anchoring the
    // off-board behaviour, which is what lets the learned model support the
    // full rotation envelope of §5.3.
    let x0 = posed.to_vec();
    assert_eq!(x0.len(), N_PARAMS);
    let samples_b = samples_owned.clone();
    let anchor = x0.clone();
    // Prior 1σ per parameter: positions (m) 2 mm, direction components 0.02,
    // θ₁ 2 %. One σ of deviation costs about one 1.2 mm board residual.
    let prior_sigma: Vec<f64> = (0..N_PARAMS)
        .map(|i| match i {
            24 => 0.02 * anchor[24].abs().max(1e-6), // theta1, fractional
            _ => {
                // Layout: p0 x0 n1 q1 r1 n2 q2 r2 (3 components each).
                let block = i / 3;
                match block {
                    0 | 3 | 6 => 2e-3, // points: p0, q1, q2
                    _ => 0.02,         // direction components
                }
            }
        })
        .collect();
    const PRIOR_WEIGHT: f64 = 1.2e-3;
    let prior_w = if use_prior { PRIOR_WEIGHT } else { 0.0 };
    let f = move |p: &[f64]| {
        let mut r = residuals(&GalvoParams::from_vec(p), &samples_b);
        for i in 0..N_PARAMS {
            r.push(prior_w * (p[i] - anchor[i]) / prior_sigma[i]);
        }
        r
    };
    let opts = LmOptions {
        max_iters: 120,
        ..Default::default()
    };
    let report = levenberg_marquardt(f, &x0, &opts);
    let fitted = GalvoParams::from_vec(&report.params);
    let train_error = eval_error(&fitted, samples);
    Ok(KspaceTraining {
        fitted,
        report,
        train_error,
    })
}

/// Convenience: run the whole stage-1 pipeline for the TX and RX assemblies
/// of a deployment, as the manufacturer would pre-deployment. Returns
/// `(tx_training, tx_rig_pose_truth, rx_training, rx_rig_pose_truth)` —
/// the rig poses are needed by white-box tests only. Fails (instead of
/// panicking) when either rig yields no usable training samples.
pub fn train_both(
    dep: &Deployment,
    board: &BoardConfig,
    seed: u64,
) -> Result<(KspaceTraining, Pose, KspaceTraining, Pose), KspaceError> {
    let mut tx_rig = KspaceRig::standard(dep.tx.clone(), seed.wrapping_add(1));
    let tx_init = tx_rig.cad_initial_guess();
    let tx_samples = tx_rig.collect_samples(board);
    let tx_tr = fit(&tx_samples, &tx_init)?;

    let mut rx_rig = KspaceRig::standard(dep.rx.clone(), seed.wrapping_add(2));
    let rx_init = rx_rig.cad_initial_guess();
    let rx_samples = rx_rig.collect_samples(board);
    let rx_tr = fit(&rx_samples, &rx_init)?;

    Ok((tx_tr, tx_rig.true_rig_pose(), rx_tr, rx_rig.true_rig_pose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_optics::galvo::GalvoSimConfig;

    fn test_rig(seed: u64) -> KspaceRig {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = GalvoParams::nominal().perturbed(&mut rng, 1.0, 1.0, 0.02);
        KspaceRig::standard(GalvoSim::new(truth, GalvoSimConfig::default()), seed)
    }

    #[test]
    fn board_has_266_interior_points() {
        assert_eq!(BoardConfig::default().n_interior(), 266);
    }

    #[test]
    fn empty_or_invalid_training_sets_are_typed_errors() {
        let init = GalvoParams::nominal();
        // Formerly a panic: an operator who landed zero grid points.
        assert_eq!(fit(&[], &init).err(), Some(KspaceError::EmptyTrainingSet));
        // A sample no real bench could record: voltage past the driver rail.
        let bad = KspaceSample {
            x: 0.0,
            y: 0.0,
            v1: 42.0,
            v2: 0.0,
        };
        assert!(matches!(
            fit(&[bad], &init),
            Err(KspaceError::Galvo(GalvoError::VoltageOutOfRange {
                mirror: 1,
                ..
            }))
        ));
    }

    #[test]
    fn find_voltages_actually_hits_target() {
        let mut rig = test_rig(1);
        let (cx, cy) = rig.measure_hit(0.0, 0.0).unwrap();
        let (tx, ty) = (cx + 0.1, cy - 0.08);
        let (v1, v2) = rig.find_voltages_for(tx, ty).unwrap();
        // Verify with an independent measurement (noise ≈ 0.7 mm).
        let (hx, hy) = rig.measure_hit(v1, v2).unwrap();
        let err = ((hx - tx).powi(2) + (hy - ty).powi(2)).sqrt();
        assert!(err < 2.5e-3, "residual targeting error {err} m");
    }

    #[test]
    fn collect_samples_covers_board() {
        let mut rig = test_rig(2);
        let board = BoardConfig {
            cols: 6,
            rows: 5,
            cell_m: 0.0254,
        };
        let samples = rig.collect_samples(&board);
        assert!(samples.len() >= board.n_interior() * 9 / 10);
        // Distinct voltage pairs.
        for w in samples.windows(2) {
            assert!(w[0].v1 != w[1].v1 || w[0].v2 != w[1].v2);
        }
    }

    #[test]
    fn fit_reaches_table2_stage1_accuracy() {
        // Full paper-scale training: 266 samples, CAD initial guess.
        let mut rig = test_rig(3);
        let init = rig.cad_initial_guess();
        let samples = rig.collect_samples(&BoardConfig::default());
        assert!(samples.len() >= 250, "collected {} samples", samples.len());
        let tr = fit(&samples, &init).expect("stage-1 fit");
        let avg_mm = tr.train_error.mean * 1e3;
        let max_mm = tr.train_error.max * 1e3;
        // Table 2 stage-1: avg 1.24–1.90 mm, max 5.3–5.4 mm. Accept the
        // same order of magnitude.
        assert!(avg_mm < 3.0, "avg error {avg_mm} mm");
        assert!(max_mm < 9.0, "max error {max_mm} mm");
        // And the fit must actually improve on the CAD guess.
        let init_err = eval_error(&init, &samples);
        assert!(tr.train_error.mean < init_err.mean / 3.0);
    }

    #[test]
    fn fitted_model_generalizes_off_grid() {
        // Hold out fresh targets never used in training.
        let mut rig = test_rig(4);
        let init = rig.cad_initial_guess();
        let samples = rig.collect_samples(&BoardConfig::default());
        let tr = fit(&samples, &init).expect("stage-1 fit");
        let mut held_out = Vec::new();
        let (cx, cy) = rig.measure_hit(0.0, 0.0).unwrap();
        for k in 0..20 {
            let ang = k as f64 * 0.7;
            let r = 0.05 + 0.13 * ((k % 5) as f64 / 5.0);
            let (x, y) = (cx + r * ang.cos(), cy + r * ang.sin());
            if let Some((v1, v2)) = rig.find_voltages_for(x, y) {
                held_out.push(KspaceSample { x, y, v1, v2 });
            }
        }
        let err = eval_error(&tr.fitted, &held_out);
        assert!(err.mean * 1e3 < 4.0, "held-out avg {} mm", err.mean * 1e3);
    }

    #[test]
    fn noiseless_rig_fits_nearly_exactly() {
        let mut rng = StdRng::seed_from_u64(8);
        let truth = GalvoParams::nominal().perturbed(&mut rng, 1.0, 1.0, 0.02);
        let mut rig = KspaceRig::standard(GalvoSim::new(truth, GalvoSimConfig::ideal()), 8);
        rig.board_noise_m = 0.0;
        let init = rig.cad_initial_guess();
        let samples = rig.collect_samples(&BoardConfig::default());
        let tr = fit(&samples, &init).expect("stage-1 fit");
        assert!(
            tr.train_error.mean * 1e3 < 0.35,
            "noise-free avg error {} mm",
            tr.train_error.mean * 1e3
        );
    }
}
