//! The pointing function `P` (§4.3).
//!
//! Given the VR-space models of both GMAs (from a [`crate::mapping`] result
//! composed with the current VRH-T report), compute the four voltages that
//! align the beam — with no optical feedback at all. The paper's iteration,
//! justified by Lemma 1:
//!
//! 1. initialize the four voltages (warm-started from the previous solution
//!    in the online controller);
//! 2. `(p_t, ·) = G_T(v_t)`, `(p_r, ·) = G_R(v_r)` — the two beams' current
//!    originating points on their second mirrors;
//! 3. aim each end at the *other* end's originating point:
//!    `v_t = G'_T(p_r)`, `v_r = G'_R(p_t)`;
//! 4. repeat until the voltage change is below the minimum galvo step.
//!
//! "In our evaluations, the above converged in 2–5 iterations."

use crate::gprime::{gprime, DEFAULT_EPS_V, DEFAULT_V_TOL};
use cyclops_optics::galvo::GalvoParams;

/// Result of evaluating the pointing function.
#[derive(Debug, Clone, Copy)]
pub struct PointingResult {
    /// The four aligned voltages `(v_t1, v_t2, v_r1, v_r2)`.
    pub voltages: [f64; 4],
    /// Outer iterations used.
    pub iterations: usize,
    /// Whether the outer loop converged within budget.
    pub converged: bool,
    /// Total inner `G'` iterations across the run (for latency accounting).
    pub gprime_iterations: usize,
}

/// Evaluates `P`: the four voltages aligning a TX model and an RX model,
/// both expressed in the same (VR-)space.
pub fn pointing(
    tx_vr: &GalvoParams,
    rx_vr: &GalvoParams,
    init: [f64; 4],
    v_tol: f64,
    max_iters: usize,
) -> PointingResult {
    let mut v = init;
    let mut gprime_iterations = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;
    for _ in 0..max_iters {
        iterations += 1;
        let Some(beam_t) = tx_vr.trace_line(v[0], v[1]) else {
            break;
        };
        let Some(beam_r) = rx_vr.trace_line(v[2], v[3]) else {
            break;
        };
        let gt = gprime(tx_vr, beam_r.origin, (v[0], v[1]), DEFAULT_EPS_V, v_tol, 10);
        let gr = gprime(rx_vr, beam_t.origin, (v[2], v[3]), DEFAULT_EPS_V, v_tol, 10);
        gprime_iterations += gt.iterations + gr.iterations;
        // Keep the iterate inside the physical drive range: outside it the
        // model geometry can degenerate, and the hardware clamps anyway.
        let lim = cyclops_optics::galvo::VOLT_MAX;
        let new_v = [
            gt.v1.clamp(-lim, lim),
            gt.v2.clamp(-lim, lim),
            gr.v1.clamp(-lim, lim),
            gr.v2.clamp(-lim, lim),
        ];
        let max_change = new_v
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        v = new_v;
        // Converged only if the voltages settled AND both inverse solves
        // actually succeeded — a broken model whose G' cannot make progress
        // must not masquerade as converged.
        if max_change < v_tol && gt.converged && gr.converged {
            converged = true;
            break;
        }
    }
    PointingResult {
        voltages: v,
        iterations,
        converged,
        gprime_iterations,
    }
}

/// A bounded re-acquisition search: after optical signal loss with no
/// trustworthy pose (reports stale, SFP down), sweep the TX beam over an
/// expanding sunflower spiral of voltage offsets around the last good
/// command. The RX voltages are held — its wide acceptance cone means the
/// TX aim is what loses the aperture first — and the radius grows with
/// `step_v · √k`, giving near-uniform areal coverage of the voltage disc.
///
/// The search is bounded: after `max_steps` probes the caller should
/// restore the center command and fall back to waiting for tracking.
#[derive(Debug, Clone, Copy)]
pub struct ReacqSpiral {
    center: [f64; 4],
    step_v: f64,
    max_steps: usize,
    k: usize,
}

impl ReacqSpiral {
    /// Creates a spiral around `center` (the last known-good command).
    pub fn new(center: [f64; 4], step_v: f64, max_steps: usize) -> ReacqSpiral {
        ReacqSpiral {
            center,
            step_v,
            max_steps,
            k: 0,
        }
    }

    /// The next probe voltages, or `None` once the budget is exhausted.
    pub fn next_voltages(&mut self) -> Option<[f64; 4]> {
        if self.k >= self.max_steps {
            return None;
        }
        self.k += 1;
        let k = self.k as f64;
        // Golden-angle (Vogel) spiral: r ∝ √k at irrational angular steps
        // never revisits a direction, so coverage stays uniform at any
        // truncation.
        const GOLDEN_ANGLE: f64 = 2.399_963_229_728_653;
        let r = self.step_v * k.sqrt();
        let a = k * GOLDEN_ANGLE;
        let lim = cyclops_optics::galvo::VOLT_MAX;
        Some([
            (self.center[0] + r * a.cos()).clamp(-lim, lim),
            (self.center[1] + r * a.sin()).clamp(-lim, lim),
            self.center[2],
            self.center[3],
        ])
    }

    /// The spiral's center (the command to restore on give-up).
    pub fn center(&self) -> [f64; 4] {
        self.center
    }

    /// Probes taken so far.
    pub fn steps_taken(&self) -> usize {
        self.k
    }
}

/// [`pointing`] with the DAC-step tolerance and the paper's iteration budget.
pub fn pointing_default(
    tx_vr: &GalvoParams,
    rx_vr: &GalvoParams,
    init: [f64; 4],
) -> PointingResult {
    pointing(tx_vr, rx_vr, init, DEFAULT_V_TOL, 12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::pose::Pose;
    use cyclops_geom::rotation::axis_angle;
    use cyclops_geom::vec3::{v3, Vec3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A TX at the origin firing +Z and an RX 1.75 m away firing back.
    fn facing_pair(seed: u64) -> (GalvoParams, GalvoParams) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = GalvoParams::nominal()
            .perturbed(&mut rng, 1.0, 1.0, 0.02)
            .transformed(&Pose::new(
                axis_angle(Vec3::X, rng.gen_range(-0.05..0.05)),
                v3(0.0, 0.0, 0.0),
            ));
        let flip = axis_angle(Vec3::Y, std::f64::consts::PI);
        let rx = GalvoParams::nominal()
            .perturbed(&mut rng, 1.0, 1.0, 0.02)
            .transformed(&Pose::new(
                flip * axis_angle(Vec3::X, rng.gen_range(-0.05..0.05)),
                v3(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1), 1.75),
            ));
        (tx, rx)
    }

    /// The Lemma-1 gap of a voltage assignment under the given models.
    fn gap(tx: &GalvoParams, rx: &GalvoParams, v: [f64; 4]) -> f64 {
        let bt = tx.trace(v[0], v[1]).unwrap();
        let br = rx.trace(v[2], v[3]).unwrap();
        let (_, tau_t) = rx.second_mirror_plane(v[3]).intersect_line(&bt).unwrap();
        let (_, tau_r) = tx.second_mirror_plane(v[1]).intersect_line(&br).unwrap();
        bt.origin.distance(tau_r) + br.origin.distance(tau_t)
    }

    #[test]
    fn pointing_closes_the_lemma_gap() {
        let (tx, rx) = facing_pair(1);
        let res = pointing_default(&tx, &rx, [0.0; 4]);
        assert!(res.converged, "{res:?}");
        let g = gap(&tx, &rx, res.voltages);
        assert!(g < 1e-4, "gap {g} m after pointing");
    }

    #[test]
    fn converges_in_2_to_5_iterations() {
        // The paper's claim, over many random geometries.
        let mut worst = 0usize;
        for seed in 0..60 {
            let (tx, rx) = facing_pair(seed);
            let res = pointing_default(&tx, &rx, [0.0; 4]);
            assert!(res.converged, "seed {seed}: {res:?}");
            worst = worst.max(res.iterations);
        }
        assert!(
            (2..=6).contains(&worst),
            "worst-case outer iterations {worst} (paper: 2–5)"
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (tx, rx) = facing_pair(7);
        let cold = pointing_default(&tx, &rx, [0.0; 4]);
        let warm = pointing_default(&tx, &rx, cold.voltages);
        assert!(
            warm.iterations <= 2,
            "warm restart took {}",
            warm.iterations
        );
        assert!(warm.converged);
    }

    #[test]
    fn the_two_beams_coincide_as_lines() {
        let (tx, rx) = facing_pair(9);
        let res = pointing_default(&tx, &rx, [0.0; 4]);
        let bt = tx.trace(res.voltages[0], res.voltages[1]).unwrap();
        let br = rx.trace(res.voltages[2], res.voltages[3]).unwrap();
        // Anti-parallel directions, near-zero line distance.
        assert!(
            bt.dir.dot(br.dir) < -0.999_99,
            "dirs {} vs {}",
            bt.dir,
            br.dir
        );
        assert!(bt.line_distance(&br) < 1e-4);
    }

    #[test]
    fn model_error_translates_to_proportional_pointing_error() {
        // Perturb the RX model the pointing uses (not the "real" one) and
        // verify the Lemma gap measured against the REAL models grows
        // smoothly — the mechanism behind Table 2's combined error.
        let (tx, rx) = facing_pair(11);
        let mut rng = StdRng::seed_from_u64(99);
        let rx_believed = rx.perturbed(&mut rng, 0.5, 0.05, 1e-6);
        let res = pointing_default(&tx, &rx_believed, [0.0; 4]);
        let g = gap(&tx, &rx, res.voltages);
        assert!(g > 1e-5, "a wrong model cannot align perfectly");
        assert!(g < 0.02, "but a slightly wrong model misses slightly: {g}");
    }

    #[test]
    fn reacq_spiral_covers_expanding_disc_and_terminates() {
        let center = [1.0, -2.0, 0.5, 0.25];
        let mut sp = ReacqSpiral::new(center, 0.02, 200);
        let mut max_r = 0.0f64;
        let mut n = 0usize;
        let mut prev_r = 0.0f64;
        while let Some(v) = sp.next_voltages() {
            n += 1;
            // RX pair untouched.
            assert_eq!(v[2], center[2]);
            assert_eq!(v[3], center[3]);
            let r = ((v[0] - center[0]).powi(2) + (v[1] - center[1]).powi(2)).sqrt();
            assert!(r >= prev_r - 1e-12, "radius must not shrink");
            prev_r = r;
            max_r = max_r.max(r);
        }
        assert_eq!(n, 200);
        assert_eq!(sp.steps_taken(), 200);
        // Budget of 200 steps at 0.02 V reaches r = 0.02·√200 ≈ 0.28 V.
        assert!((max_r - 0.02 * 200f64.sqrt()).abs() < 1e-9, "max r {max_r}");
        assert!(sp.next_voltages().is_none(), "exhausted spiral stays done");
    }

    #[test]
    fn reacq_spiral_clamps_to_drive_range() {
        let lim = cyclops_optics::galvo::VOLT_MAX;
        let mut sp = ReacqSpiral::new([lim - 0.01, -lim + 0.01, 0.0, 0.0], 0.5, 50);
        while let Some(v) = sp.next_voltages() {
            assert!(v[0].abs() <= lim && v[1].abs() <= lim);
        }
    }

    #[test]
    fn degenerate_models_do_not_hang() {
        let (tx, mut rx) = facing_pair(13);
        // A pathological fitted model: both mirror rotation axes equal
        // their normals, so voltages cannot steer the beam at all — G' can
        // never reach its target.
        rx.r1 = rx.n1;
        rx.r2 = rx.n2;
        let res = pointing_default(&tx, &rx, [0.0; 4]);
        assert!(!res.converged, "{res:?}");
        assert!(res.iterations <= 12);
    }

    #[test]
    fn solution_is_invariant_to_common_frame_change() {
        // P computed in any rigid frame gives the same voltages — the
        // pipeline's frame-consistency sanity check.
        let (tx, rx) = facing_pair(17);
        let frame = Pose::new(
            axis_angle(v3(0.3, 0.2, 0.93).normalized(), 0.8),
            v3(1.0, -2.0, 0.5),
        );
        let res_a = pointing_default(&tx, &rx, [0.0; 4]);
        let res_b = pointing_default(&tx.transformed(&frame), &rx.transformed(&frame), [0.0; 4]);
        for i in 0..4 {
            assert!(
                (res_a.voltages[i] - res_b.voltages[i]).abs() < 1e-6,
                "voltage {i} differs across frames"
            );
        }
    }
}
