//! The reverse GMA function `G'` (§4.3, Fig 10).
//!
//! Given a model `G` and a target point `τ`, find the voltage pair whose
//! beam passes through `τ`. The paper's purely-computational iteration:
//!
//! 1. evaluate `G(v₁, v₂)`, `G(v₁+ε, v₂)`, `G(v₁, v₂+ε)`;
//! 2. intersect the three beams with the plane `P` perpendicular to the
//!    current beam direction through `τ`, giving points `k₀, k₁, k₂`;
//! 3. with `u₁ = k₁−k₀`, `u₂ = k₂−k₀` (the per-ε beam displacements on `P`),
//!    solve the 2×2 least-squares problem `k₀ + a·u₁ + b·u₂ ≈ τ`;
//! 4. step the voltages by `(a·ε, b·ε)`; stop when the step falls below the
//!    minimum galvo voltage step.
//!
//! "In our evaluations, the above converged in 2–4 iterations" — enforced by
//! this module's tests.

use cyclops_geom::plane::Plane;
use cyclops_geom::vec3::Vec3;
use cyclops_optics::galvo::GalvoParams;

/// Default finite-difference voltage perturbation ε.
pub const DEFAULT_EPS_V: f64 = 0.01;

/// Default convergence threshold: the 16-bit DAC step over ±10 V.
pub const DEFAULT_V_TOL: f64 = cyclops_optics::galvo::DAC_STEP_V;

/// Result of a `G'` inversion.
#[derive(Debug, Clone, Copy)]
pub struct GPrimeResult {
    /// Voltage for the first mirror.
    pub v1: f64,
    /// Voltage for the second mirror.
    pub v2: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the voltage step fell below tolerance within the budget.
    pub converged: bool,
    /// Final perpendicular distance from the beam's supporting line to the
    /// target (metres). Note `G'` is purely geometric: it solves for the
    /// *line* through the target, so callers must also check
    /// [`GPrimeResult::in_range`] for physical realizability.
    pub miss_distance: f64,
    /// Whether the solution voltages are within the galvo's ±10 V range.
    pub in_range: bool,
}

/// Computes `G'(τ)`: voltages steering the model's beam through `target`,
/// starting from `(v1_init, v2_init)` (warm starts come from the previous
/// pointing solution).
pub fn gprime(
    model: &GalvoParams,
    target: Vec3,
    v_init: (f64, f64),
    eps: f64,
    v_tol: f64,
    max_iters: usize,
) -> GPrimeResult {
    let (mut v1, mut v2) = v_init;
    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..max_iters {
        iterations += 1;
        let Some(b0) = model.trace_line(v1, v2) else {
            break;
        };
        let Some(b1) = model.trace_line(v1 + eps, v2) else {
            break;
        };
        let Some(b2) = model.trace_line(v1, v2 + eps) else {
            break;
        };
        // Plane P ⊥ current beam, through τ.
        let p = Plane::new(target, b0.dir);
        let Some((_, k0)) = p.intersect_line(&b0) else {
            break;
        };
        let Some((_, k1)) = p.intersect_line(&b1) else {
            break;
        };
        let Some((_, k2)) = p.intersect_line(&b2) else {
            break;
        };
        let u1 = k1 - k0;
        let u2 = k2 - k0;
        let d = target - k0;
        // Least-squares solve of a·u1 + b·u2 ≈ d (all three live in P).
        let (a11, a12, a22) = (u1.dot(u1), u1.dot(u2), u2.dot(u2));
        let (r1, r2) = (u1.dot(d), u2.dot(d));
        let det = a11 * a22 - a12 * a12;
        if det.abs() < 1e-30 {
            break;
        }
        let a = (r1 * a22 - a12 * r2) / det;
        let b = (a11 * r2 - r1 * a12) / det;
        // Trust region: the local linearization is only good for a few
        // volts; clamp the step so a far cold start cannot overshoot into
        // broken beam-path territory.
        let (dv1, dv2) = ((a * eps).clamp(-3.0, 3.0), (b * eps).clamp(-3.0, 3.0));
        v1 += dv1;
        v2 += dv2;
        if dv1.abs() < v_tol && dv2.abs() < v_tol {
            converged = true;
            break;
        }
    }
    let miss_distance = model
        .trace_line(v1, v2)
        .map_or(f64::INFINITY, |r| r.distance_to_point(target));
    let lim = cyclops_optics::galvo::VOLT_MAX;
    GPrimeResult {
        v1,
        v2,
        iterations,
        converged,
        miss_distance,
        in_range: v1.abs() <= lim && v2.abs() <= lim,
    }
}

/// Convenience wrapper with the paper-default ε and DAC-step tolerance.
pub fn gprime_default(model: &GalvoParams, target: Vec3, v_init: (f64, f64)) -> GPrimeResult {
    gprime(model, target, v_init, DEFAULT_EPS_V, DEFAULT_V_TOL, 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model(seed: u64) -> GalvoParams {
        let mut rng = StdRng::seed_from_u64(seed);
        GalvoParams::nominal().perturbed(&mut rng, 1.0, 1.0, 0.02)
    }

    #[test]
    fn inverts_forward_model() {
        let g = model(1);
        // Pick a ground-truth voltage pair, find where its beam goes, then
        // ask G' to recover voltages hitting a point on that beam.
        let (tv1, tv2) = (1.3, -0.8);
        let beam = g.trace(tv1, tv2).unwrap();
        let target = beam.point_at(1.75);
        let res = gprime_default(&g, target, (0.0, 0.0));
        assert!(res.converged, "{res:?}");
        assert!(res.miss_distance < 1e-6, "miss {}", res.miss_distance);
        assert!((res.v1 - tv1).abs() < 1e-3, "{res:?}");
        assert!((res.v2 - tv2).abs() < 1e-3);
    }

    #[test]
    fn converges_in_2_to_4_iterations_from_cold_start() {
        // The paper's observation, across many random targets.
        let g = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut worst = 0usize;
        for _ in 0..200 {
            let v1: f64 = rng.gen_range(-3.0..3.0);
            let v2: f64 = rng.gen_range(-3.0..3.0);
            let beam = g.trace(v1, v2).unwrap();
            let target = beam.point_at(rng.gen_range(1.0..2.5));
            let res = gprime_default(&g, target, (0.0, 0.0));
            assert!(res.converged, "target {target} did not converge");
            assert!(res.miss_distance < 1e-5);
            worst = worst.max(res.iterations);
        }
        assert!(
            (2..=5).contains(&worst),
            "worst-case iterations {worst} (paper: 2–4)"
        );
    }

    #[test]
    fn warm_start_converges_faster_or_equal() {
        let g = model(4);
        let beam = g.trace(0.52, -0.77).unwrap();
        let target = beam.point_at(1.75);
        let cold = gprime_default(&g, target, (0.0, 0.0));
        let warm = gprime_default(&g, target, (0.5, -0.75));
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.miss_distance < 1e-6);
    }

    #[test]
    fn off_axis_3d_targets_work() {
        // Targets need not be on any calibration plane — G' is geometric.
        let g = model(5);
        for target in [v3(0.3, 0.2, 1.2), v3(-0.25, 0.4, 2.0), v3(0.1, -0.3, 1.6)] {
            let res = gprime_default(&g, target, (0.0, 0.0));
            assert!(res.converged, "target {target}");
            assert!(
                res.miss_distance < 1e-5,
                "target {target}: miss {}",
                res.miss_distance
            );
        }
    }

    #[test]
    fn target_outside_coverage_cone_is_flagged() {
        let g = model(6);
        // ~60° off-axis: far beyond the ±25° optical cone, so the solved
        // voltages must exceed the ±10 V drive range.
        let res = gprime(
            &g,
            v3(3.0, 0.0, 1.75),
            (0.0, 0.0),
            DEFAULT_EPS_V,
            DEFAULT_V_TOL,
            40,
        );
        assert!(!res.in_range, "{res:?}");
        // In-cone targets are in range.
        let ok = gprime_default(&g, v3(0.2, 0.1, 1.75), (0.0, 0.0));
        assert!(ok.in_range && ok.converged);
    }

    #[test]
    fn respects_iteration_budget() {
        let g = model(7);
        let res = gprime(&g, v3(0.2, 0.1, 1.75), (0.0, 0.0), DEFAULT_EPS_V, 0.0, 3);
        // Zero tolerance can never converge; must stop at the budget.
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }
}
