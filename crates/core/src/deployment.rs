//! The simulated bench: everything the learning pipeline treats as physical
//! hardware.
//!
//! Geometry (world frame): the TX assembly sits near the origin with its
//! rest beam along +Z; the user zone is around `z ≈ 1.75 m` (the paper's
//! 1.5–2 m link). The RX assembly is bolted to the headset via a fixed mount
//! pose; the headset's own tracking system reports poses in its hidden
//! VR-space (see `cyclops-vrh`).
//!
//! The received-power physics follows the reciprocity picture behind the
//! paper's Lemma 1: trace the TX beam and the RX's *imaginary* beam (the
//! time-reversed ray launched from the RX collimator through its galvo);
//! coupling is maximal when the two coincide, and degrades with
//!
//! * `δ` — the lateral gap on the RX galvo's second-mirror plane between
//!   where the TX beam lands and where the imaginary beam originates,
//! * `φ` — the angle between the arriving ray and the reversed imaginary
//!   beam,
//!
//! evaluated through the calibrated `CouplingModel`. By construction the
//! power is maximized exactly at the Lemma-1 coincidence — which is the
//! physical content of the lemma.

use cyclops_geom::pose::Pose;
use cyclops_geom::ray::Ray;
use cyclops_geom::rotation::axis_angle;
use cyclops_geom::vec3::{v3, Vec3};
use cyclops_optics::beam::BeamState;
use cyclops_optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops_optics::galvo::{GalvoParams, GalvoSim, GalvoSimConfig};
use cyclops_optics::photodiode::QuadrantMonitor;
use cyclops_vrh::headset::{Headset, HeadsetConfig};
use cyclops_vrh::rand_util::gauss;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for building a [`Deployment`].
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Optical link design (10G/25G, collimated/diverging).
    pub design: LinkDesign,
    /// Galvo driver non-idealities (shared by both ends).
    pub galvo_cfg: GalvoSimConfig,
    /// RMS measurement noise on power readings (dB).
    pub power_noise_db: f64,
    /// Assembly tolerance of the galvo hardware relative to the CAD nominal:
    /// positions (mm), angles (deg), gain (fraction).
    pub assembly_tol: (f64, f64, f64),
    /// Where this TX unit is installed (added to the unit's mounting pose).
    /// Multi-TX experiments build several deployments sharing a seed (same
    /// headset/RX hardware world) with different installation points.
    pub tx_position: Vec3,
    /// Master seed (hardware perturbations + measurement noise).
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's 10G diverging-beam prototype at 1.75 m.
    pub fn paper_10g(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            design: LinkDesign::ten_g_diverging(20.0e-3, 1.75),
            galvo_cfg: GalvoSimConfig::default(),
            power_noise_db: 0.2,
            assembly_tol: (1.0, 1.0, 0.02),
            tx_position: Vec3::ZERO,
            seed,
        }
    }

    /// The paper's 25G prototype (§5.3.1).
    pub fn paper_25g(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            design: LinkDesign::twenty_five_g(20.0e-3, 1.75),
            ..DeploymentConfig::paper_10g(seed)
        }
    }

    /// A noiseless variant for white-box tests (ideal galvos, no power
    /// noise, hardware exactly at nominal).
    pub fn ideal_10g(seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            design: LinkDesign::ten_g_diverging(20.0e-3, 1.75),
            galvo_cfg: GalvoSimConfig::ideal(),
            power_noise_db: 0.0,
            assembly_tol: (0.0, 0.0, 0.0),
            tx_position: Vec3::ZERO,
            seed,
        }
    }
}

/// The Lemma-1 point pairs for the current configuration (world frame).
#[derive(Debug, Clone, Copy)]
pub struct LemmaPoints {
    /// TX beam's originating point on the TX second mirror.
    pub p_t: Vec3,
    /// Where the TX beam strikes the RX second-mirror plane.
    pub tau_t: Vec3,
    /// RX imaginary beam's originating point on the RX second mirror.
    pub p_r: Vec3,
    /// Where the RX imaginary beam strikes the TX second-mirror plane.
    pub tau_r: Vec3,
}

impl LemmaPoints {
    /// The Lemma-1 error `d(p_t, τ_r) + d(p_r, τ_t)`.
    pub fn gap(&self) -> f64 {
        self.p_t.distance(self.tau_r) + self.p_r.distance(self.tau_t)
    }
}

/// The simulated bench.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Link design in effect.
    pub design: LinkDesign,
    /// TX galvo hardware (truth parameters in the TX body frame).
    pub tx: GalvoSim,
    /// TX body frame → world.
    pub tx_pose: Pose,
    /// RX galvo hardware (truth parameters in the RX body frame).
    pub rx: GalvoSim,
    /// Headset body frame → RX body frame mount.
    pub rx_mount: Pose,
    /// The headset (carries its own hidden tracking frames).
    pub headset: Headset,
    /// Photodiode monitor around the RX front.
    pub monitor: QuadrantMonitor,
    /// RMS power-measurement noise (dB).
    pub power_noise_db: f64,
    rng: StdRng,
}

impl Deployment {
    /// Builds the standard bench: TX near the world origin firing along +Z,
    /// headset near `(0, 0, 1.75)` with the RX assembly mounted beside it
    /// facing back at the TX. Hardware is drawn as `nominal ± assembly_tol`
    /// from the config's seed.
    pub fn new(cfg: &DeploymentConfig) -> Deployment {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let nominal = GalvoParams::nominal();
        let (pos_mm, ang_deg, gain) = cfg.assembly_tol;
        let tx_truth = if pos_mm > 0.0 || ang_deg > 0.0 || gain > 0.0 {
            nominal.perturbed(&mut rng, pos_mm, ang_deg, gain)
        } else {
            nominal
        };
        let rx_truth = if pos_mm > 0.0 || ang_deg > 0.0 || gain > 0.0 {
            nominal.perturbed(&mut rng, pos_mm, ang_deg, gain)
        } else {
            nominal
        };
        // TX mounted almost axis-aligned (a real install is never perfect).
        let tilt = |rng: &mut StdRng, scale: f64| {
            let axis = v3(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            )
            .try_normalized(1e-6)
            .unwrap_or(Vec3::X);
            axis_angle(axis, rng.gen_range(-scale..scale))
        };
        let tx_pose = Pose::new(
            tilt(&mut rng, 0.03),
            cfg.tx_position + v3(rng.gen_range(-0.02..0.02), rng.gen_range(-0.02..0.02), 0.0),
        );
        // RX assembly mounted on the headset, rest beam facing back (−Z).
        let rx_mount = Pose::new(
            axis_angle(Vec3::Y, std::f64::consts::PI) * tilt(&mut rng, 0.03),
            v3(0.06, -0.02, 0.05),
        );
        let headset_cfg = HeadsetConfig::random(&mut rng);
        let mut headset = Headset::new(headset_cfg);
        headset.world_pose = Pose::translation(v3(0.0, 0.0, cfg.design.nominal_range));
        Deployment {
            design: cfg.design,
            tx: GalvoSim::new(tx_truth, cfg.galvo_cfg),
            tx_pose,
            rx: GalvoSim::new(rx_truth, cfg.galvo_cfg),
            rx_mount,
            headset,
            monitor: QuadrantMonitor::default(),
            power_noise_db: cfg.power_noise_db,
            rng,
        }
    }

    /// World pose of the RX assembly body frame (follows the headset).
    pub fn rx_world_pose(&self) -> Pose {
        self.headset.world_pose.compose(&self.rx_mount)
    }

    /// True TX galvo parameters expressed in world frame.
    pub fn tx_world_params(&self) -> GalvoParams {
        self.tx.truth.transformed(&self.tx_pose)
    }

    /// True RX galvo parameters expressed in world frame.
    pub fn rx_world_params(&self) -> GalvoParams {
        self.rx.truth.transformed(&self.rx_world_pose())
    }

    /// Commands all four galvo voltages; returns the worst settle time (s).
    pub fn set_voltages(&mut self, vt1: f64, vt2: f64, vr1: f64, vr2: f64) -> f64 {
        let a = self.tx.command(vt1, vt2);
        let b = self.rx.command(vr1, vr2);
        a.max(b)
    }

    /// Worst-of-both-galvos settle time for a prospective four-voltage
    /// command, without applying it.
    pub fn settle_estimate(&self, vt1: f64, vt2: f64, vr1: f64, vr2: f64) -> f64 {
        self.tx
            .settle_estimate(vt1, vt2)
            .max(self.rx.settle_estimate(vr1, vr2))
    }

    /// Current voltages `(vt1, vt2, vr1, vr2)`.
    pub fn voltages(&self) -> (f64, f64, f64, f64) {
        let (a, b) = self.tx.voltages();
        let (c, d) = self.rx.voltages();
        (a, b, c, d)
    }

    /// Moves the headset (and with it the RX assembly).
    pub fn set_headset_pose(&mut self, pose: Pose) {
        self.headset.world_pose = pose;
    }

    /// The launched TX beam in world frame (with galvo noise), or `None` if
    /// the internal beam path is broken.
    pub fn tx_beam(&mut self) -> Option<BeamState> {
        let ray_body = self.tx.output_ray(&mut self.rng)?;
        let ray_world = self.tx_pose.apply_ray(&ray_body);
        Some(self.design.make_beam(ray_world))
    }

    /// The RX imaginary beam (time-reversed collimator launch) in world
    /// frame, with galvo noise.
    pub fn rx_imaginary_ray(&mut self) -> Option<Ray> {
        let ray_body = self.rx.output_ray(&mut self.rng)?;
        Some(self.rx_world_pose().apply_ray(&ray_body))
    }

    /// The reading floor of the power meter / SFP RSSI (dBm): anything
    /// weaker reads as this value, as on the bench.
    pub const POWER_METER_FLOOR_DBM: f64 = -90.0;

    /// Received power at the RX SFP (dBm), including measurement noise,
    /// floored at [`Self::POWER_METER_FLOOR_DBM`].
    pub fn received_power_dbm(&mut self) -> f64 {
        self.received_power_unfloored_dbm()
            .max(Self::POWER_METER_FLOOR_DBM)
    }

    /// Received power without the meter floor (`-inf` when the beam misses
    /// entirely) — used by the alignment search, which benefits from the
    /// far-tail gradient an ideal detector would see.
    pub fn received_power_unfloored_dbm(&mut self) -> f64 {
        let Some(beam) = self.tx_beam() else {
            return f64::NEG_INFINITY;
        };
        // Compute the RX world placement once and derive both the imaginary
        // beam and the second-mirror plane from it.
        let rx_pose = self.rx_world_pose();
        let Some(imag_body) = self.rx.output_ray(&mut self.rng) else {
            return f64::NEG_INFINITY;
        };
        let imag = rx_pose.apply_ray(&imag_body);
        // Field-subset transform: the plane needs only q2/r2/n2 in world
        // frame, not all nine galvo parameters (bit-identical — see
        // `GalvoParams::second_mirror_plane_world`).
        let plane = self
            .rx
            .truth
            .second_mirror_plane_world(&rx_pose, self.rx.voltages().1);
        let Some((t, hit)) = plane.intersect_ray(&beam.chief) else {
            return f64::NEG_INFINITY;
        };
        let delta = hit.distance(imag.origin);
        // Arriving ray direction at the RX, vs. the reversed imaginary beam.
        let arriving = beam.local_ray_dir(imag.origin);
        let phi = arriving
            .angle_to(-imag.dir)
            .min(std::f64::consts::FRAC_PI_2);
        if phi >= std::f64::consts::FRAC_PI_2 {
            return f64::NEG_INFINITY;
        }
        let w = beam.radius_at(t);
        let eff = self
            .design
            .coupling
            .efficiency_db(w, delta, phi, self.design.theta_half);
        let noise = if self.power_noise_db > 0.0 {
            self.power_noise_db * gauss(&mut self.rng)
        } else {
            0.0
        };
        beam.power_dbm + eff + noise
    }

    /// True if the link currently closes (received power ≥ sensitivity).
    pub fn link_up(&mut self) -> bool {
        self.received_power_dbm() >= self.design.sfp.rx_sensitivity_dbm
    }

    /// The photodiode-monitor feedback signal used by the coarse alignment
    /// search. The monitor ring is fixed to the RX front (centred on the RX
    /// galvo's second-mirror pivot, facing the TX), so it depends only on
    /// where the TX beam lands — not on the RX galvo steering.
    pub fn monitor_signal(&mut self) -> f64 {
        let Some(beam) = self.tx_beam() else {
            return 0.0;
        };
        let rx_params = self.rx_world_params();
        let tx_params = self.tx_world_params();
        let axis = (tx_params.q2 - rx_params.q2)
            .try_normalized(1e-9)
            .unwrap_or(Vec3::Z);
        let rx_geom = ReceiverGeometry::new(rx_params.q2, axis);
        self.monitor
            .search_signal(&beam, &rx_geom, self.design.coupling.aperture_radius)
    }

    /// The Lemma-1 point pairs at the current voltages, computed from the
    /// *noiseless* truth (analysis/testing aid).
    pub fn lemma_points(&self) -> Option<LemmaPoints> {
        let txp = self.tx_world_params();
        let rxp = self.rx_world_params();
        let (vt1, vt2) = self.tx.voltages();
        let (vr1, vr2) = self.rx.voltages();
        let beam_t = txp.trace(vt1, vt2)?;
        let beam_r = rxp.trace(vr1, vr2)?;
        let rx_plane = rxp.second_mirror_plane(vr2);
        let tx_plane = txp.second_mirror_plane(vt2);
        let (_, tau_t) = rx_plane.intersect_line(&beam_t)?;
        let (_, tau_r) = tx_plane.intersect_line(&beam_r)?;
        Some(LemmaPoints {
            p_t: beam_t.origin,
            tau_t,
            p_r: beam_r.origin,
            tau_r,
        })
    }

    /// Borrow of the internal RNG for experiment code that needs correlated
    /// randomness (e.g. the tracker sampling).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Steers both galvos to near-perfect alignment using the hidden truth —
/// a white-box shortcut for tests and experiment setup (the learner must
/// instead use [`crate::alignment::exhaustive_align`]).
///
/// Minimizes the true Lemma-1 gap by coarse-to-fine compass search, which by
/// Lemma 1 maximizes received power.
#[doc(hidden)]
pub fn cheat_align(dep: &mut Deployment) {
    // Aim the TX beam at the RX second-mirror pivot and vice versa by
    // local search on the true geometry, minimizing the Lemma-1 gap.
    let obj = |v: &[f64], dep: &mut Deployment| -> f64 {
        dep.set_voltages(v[0], v[1], v[2], v[3]);
        dep.lemma_points().map_or(1e9, |lp| lp.gap())
    };
    let mut best = vec![0.0; 4];
    let mut best_val = obj(&best, dep);
    // Coarse-to-fine compass search.
    let mut step = 2.0;
    while step > 1e-6 {
        let mut improved = false;
        for dim in 0..4 {
            for sign in [1.0, -1.0] {
                let mut cand = best.clone();
                cand[dim] += sign * step;
                let v = obj(&cand, dep);
                if v < best_val {
                    best_val = v;
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
    dep.set_voltages(best[0], best[1], best[2], best[3]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_link_closes_with_expected_power() {
        let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(1));
        cheat_align(&mut dep);
        let p = dep.received_power_dbm();
        assert!(
            (p - (-10.0)).abs() < 3.0,
            "peak aligned power {p} dBm (Table 1: ≈ −10 dBm)"
        );
        assert!(dep.link_up());
    }

    #[test]
    fn zero_voltages_miss_by_default() {
        // With assembly/mount perturbations, an untrained link at rest
        // voltages typically misses the tiny fiber target.
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(3));
        let p = dep.received_power_dbm();
        assert!(p < dep.design.sfp.rx_sensitivity_dbm + 3.0, "power {p}");
    }

    #[test]
    fn lemma_gap_small_at_max_power_and_power_falls_with_gap() {
        let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(2));
        cheat_align(&mut dep);
        let lp = dep.lemma_points().unwrap();
        assert!(lp.gap() < 1e-4, "gap {} m at alignment", lp.gap());
        let p0 = dep.received_power_dbm();
        // Mis-steer the TX slightly: gap grows, power falls.
        let (a, b, c, d) = dep.voltages();
        dep.set_voltages(a + 0.2, b, c, d);
        let lp2 = dep.lemma_points().unwrap();
        assert!(lp2.gap() > lp.gap());
        assert!(dep.received_power_dbm() < p0 - 1.0);
    }

    #[test]
    fn monitor_signal_guides_towards_alignment() {
        let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(4));
        cheat_align(&mut dep);
        let aligned_sig = dep.monitor_signal();
        let (a, b, c, d) = dep.voltages();
        dep.set_voltages(a + 1.0, b, c, d); // ~44 mrad mirror = way off
        let off_sig = dep.monitor_signal();
        assert!(aligned_sig > off_sig, "{aligned_sig} vs {off_sig}");
    }

    #[test]
    fn moving_the_headset_breaks_alignment() {
        let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(5));
        cheat_align(&mut dep);
        assert!(dep.link_up());
        let mut pose = dep.headset.world_pose;
        pose.trans += v3(0.05, 0.0, 0.0); // 5 cm sideways
        dep.set_headset_pose(pose);
        assert!(
            !dep.link_up(),
            "5 cm without re-pointing must break the link"
        );
    }

    #[test]
    fn deployment_is_deterministic_per_seed() {
        let mut a = Deployment::new(&DeploymentConfig::paper_10g(9));
        let mut b = Deployment::new(&DeploymentConfig::paper_10g(9));
        a.set_voltages(0.1, 0.2, 0.3, 0.4);
        b.set_voltages(0.1, 0.2, 0.3, 0.4);
        assert_eq!(a.received_power_dbm(), b.received_power_dbm());
        let mut c = Deployment::new(&DeploymentConfig::paper_10g(10));
        c.set_voltages(0.1, 0.2, 0.3, 0.4);
        // Different seed → different hardware.
        assert_ne!(a.tx.truth, c.tx.truth);
    }

    #[test]
    fn rx_assembly_follows_headset() {
        let dep0 = Deployment::new(&DeploymentConfig::ideal_10g(6));
        let q2_before = dep0.rx_world_params().q2;
        let mut dep = dep0.clone();
        let mut pose = dep.headset.world_pose;
        pose.trans += v3(0.0, 0.1, 0.0);
        dep.set_headset_pose(pose);
        let q2_after = dep.rx_world_params().q2;
        assert!(((q2_after - q2_before) - v3(0.0, 0.1, 0.0)).norm() < 1e-12);
    }
}
