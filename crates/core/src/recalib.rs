//! Drift detection and mapping-only re-calibration.
//!
//! §4 (Offline vs. Online Training): "in case of re-deployment or VRH-T
//! drift, the only re-training (calibration) that needs to be re-done is the
//! mapping step" — the K-space models `G` are properties of the assemblies
//! and survive; only the 12 mapping parameters go stale when the tracker's
//! VR-space shifts (SLAM re-anchoring, a bumped ceiling unit, a re-seated
//! headset mount).
//!
//! This module adds the operational half the paper leaves implicit:
//!
//! * [`DriftMonitor`] — watches the aligned received power the TP achieves
//!   after each realignment; a sustained drop below the commissioning
//!   baseline flags stale mapping;
//! * [`recalibrate_mapping`] — re-runs *only* §4.2 (a handful of exhaustive
//!   alignments plus the 12-parameter fit, warm-started from the stale
//!   mapping), about an order of magnitude cheaper than full commissioning.

use crate::deployment::Deployment;
use crate::mapping::{self, MappingTraining, TrainedMapping};

/// Exponentially-weighted monitor of post-realignment received power.
#[derive(Debug, Clone, Copy)]
pub struct DriftMonitor {
    /// Baseline aligned power established at commissioning (dBm).
    pub baseline_dbm: f64,
    /// Trigger threshold: flag drift when the EWMA falls this many dB below
    /// the baseline.
    pub threshold_db: f64,
    /// EWMA smoothing factor per observation (0..1; higher = faster).
    pub alpha: f64,
    ewma_dbm: f64,
    n_obs: u64,
    below_streak: u32,
    reacq_events: u64,
    hard_reacq_streak: u32,
}

impl DriftMonitor {
    /// Creates a monitor with the given baseline (typically the mean aligned
    /// power over the last few commissioning placements).
    pub fn new(baseline_dbm: f64, threshold_db: f64) -> DriftMonitor {
        DriftMonitor {
            baseline_dbm,
            threshold_db,
            alpha: 0.2,
            ewma_dbm: baseline_dbm,
            n_obs: 0,
            below_streak: 0,
            reacq_events: 0,
            hard_reacq_streak: 0,
        }
    }

    /// Feeds one post-realignment power observation. Returns `true` when
    /// drift is flagged — which requires the smoothed power to sit below the
    /// threshold for several *consecutive* observations, so one outage
    /// reading (however deep) cannot trip it alone.
    pub fn observe(&mut self, aligned_power_dbm: f64) -> bool {
        // Clamp crazy readings (full misses) so one outage doesn't dominate
        // the average for dozens of observations.
        let p = aligned_power_dbm.max(self.baseline_dbm - 15.0);
        self.ewma_dbm = if self.n_obs == 0 {
            p
        } else {
            (1.0 - self.alpha) * self.ewma_dbm + self.alpha * p
        };
        self.n_obs += 1;
        if self.is_drifted() {
            self.below_streak += 1;
        } else {
            self.below_streak = 0;
        }
        self.n_obs >= 5 && self.below_streak >= 3
    }

    /// Current smoothed aligned power (dBm).
    pub fn ewma_dbm(&self) -> f64 {
        self.ewma_dbm
    }

    /// Whether the smoothed power sits below the trigger threshold.
    pub fn is_drifted(&self) -> bool {
        self.ewma_dbm < self.baseline_dbm - self.threshold_db
    }

    /// Feeds one re-acquisition event: the spiral needed `spiral_steps`
    /// probes to recover optical signal after an outage. A healthy mapping
    /// re-closes the link from the TP command alone (zero or a handful of
    /// probes); repeatedly needing a wide search means the TP is pointing
    /// somewhere wrong — independent drift evidence that works even when no
    /// post-realignment power readings are coming in (the link is down).
    /// Returns `true` when three consecutive re-acquisitions were hard
    /// searches (> 25 probes).
    pub fn observe_reacquisition(&mut self, spiral_steps: u64) -> bool {
        self.reacq_events += 1;
        if spiral_steps > 25 {
            self.hard_reacq_streak += 1;
        } else {
            self.hard_reacq_streak = 0;
        }
        self.hard_reacq_streak >= 3
    }

    /// Re-acquisition events observed.
    pub fn reacq_events(&self) -> u64 {
        self.reacq_events
    }
}

/// Re-runs the §4.2 mapping step only: collects `n_samples` fresh
/// exhaustively-aligned placements and refits the 12 parameters,
/// warm-started from the stale mapping (the K-space models are reused
/// untouched).
pub fn recalibrate_mapping(
    dep: &mut Deployment,
    stale: &TrainedMapping,
    n_samples: usize,
    seed: u64,
) -> MappingTraining {
    let samples = mapping::collect_samples(dep, n_samples, seed);
    assert!(
        samples.len() >= 4,
        "re-calibration collected only {} usable placements — the optical \
         link cannot close at this deployment's geometry; re-run the full \
         commissioning (or check the install) instead",
        samples.len()
    );
    let trained = mapping::fit(
        &stale.tx_model,
        &stale.rx_model,
        &samples,
        stale.tx_map.to_params(),
        stale.rx_map.to_params(),
    );
    MappingTraining { trained, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentConfig;
    use crate::kspace::{train_both, BoardConfig};
    use crate::mapping::rough_initial_guess;
    use crate::tp::{TpConfig, TpController};
    use cyclops_geom::pose::Pose;
    use cyclops_geom::rotation::from_rotation_vector;
    use cyclops_geom::vec3::v3;

    #[test]
    fn monitor_triggers_on_sustained_drop_only() {
        let mut m = DriftMonitor::new(-12.0, 3.0);
        // A single bad reading among good ones: no trigger — even a deep one
        // after the warm-up.
        assert!(!m.observe(-12.1));
        assert!(!m.observe(-30.0));
        assert!(!m.observe(-12.0));
        assert!(!m.observe(-11.9));
        assert!(!m.observe(-12.2));
        assert!(!m.observe(-12.0));
        assert!(
            !m.observe(-60.0),
            "one outage reading must not trip the flag"
        );
        assert!(!m.observe(-12.0));
        assert!(!m.observe(-12.1));
        // Sustained 6 dB shortfall: triggers within a handful of reports.
        let mut fired = false;
        for _ in 0..20 {
            fired |= m.observe(-18.0);
        }
        assert!(fired);
        assert!(m.is_drifted());
    }

    #[test]
    fn reacquisition_evidence_needs_a_streak_of_hard_searches() {
        let mut m = DriftMonitor::new(-12.0, 3.0);
        // Easy re-acquisitions (TP pointing fine, outage was motion): never.
        for _ in 0..10 {
            assert!(!m.observe_reacquisition(3));
        }
        // Two hard searches then an easy one: streak resets.
        assert!(!m.observe_reacquisition(60));
        assert!(!m.observe_reacquisition(80));
        assert!(!m.observe_reacquisition(0));
        assert!(!m.observe_reacquisition(60));
        assert!(!m.observe_reacquisition(90));
        // Third consecutive hard search: drift suspected.
        assert!(m.observe_reacquisition(70));
        assert_eq!(m.reacq_events(), 16);
    }

    #[test]
    fn mapping_only_recalibration_recovers_from_vr_space_shift() {
        // Full commissioning.
        let seed = 7100u64;
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        let (tx_tr, tx_rig, rx_tr, rx_rig) =
            train_both(&dep, &BoardConfig::default(), seed).expect("stage-1 training");
        let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
        let mt = mapping::train(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            itx,
            irx,
            25,
            seed + 9,
        );
        let v0 = dep.voltages();
        let mut ctl = TpController::new(
            mt.trained.clone(),
            TpConfig::default(),
            [v0.0, v0.1, v0.2, v0.3],
        );

        let probe = |dep: &mut Deployment, ctl: &mut TpController| -> f64 {
            // Mean TP-aligned power over a few placements.
            let mut acc = 0.0;
            const N: usize = 4;
            for _ in 0..N {
                let pose = mapping::random_placement(dep.rng(), 1.75);
                dep.set_headset_pose(pose);
                let rep = mapping::noisy_report(dep, &Default::default());
                let cmd = ctl.on_report(&rep);
                dep.set_voltages(
                    cmd.voltages[0],
                    cmd.voltages[1],
                    cmd.voltages[2],
                    cmd.voltages[3],
                );
                acc += dep.received_power_dbm().max(-40.0);
            }
            acc / N as f64
        };

        let healthy = probe(&mut dep, &mut ctl);
        assert!(healthy > -20.0, "healthy TP power {healthy} dBm");

        // The tracker re-anchors: VR-space shifts by 2 cm and ~1.7°.
        let drift = Pose::new(
            from_rotation_vector(v3(0.0, 0.03, 0.0)),
            v3(0.02, -0.01, 0.015),
        );
        dep.headset.apply_vr_drift(&drift);

        let broken = probe(&mut dep, &mut ctl);
        assert!(
            broken < healthy - 10.0,
            "drift should hurt: {healthy} -> {broken} dBm"
        );

        // Mapping-only recalibration: 10 placements, K-space models reused.
        let re = recalibrate_mapping(&mut dep, &ctl.mapping, 10, seed + 77);
        assert!(re.samples.len() >= 8);
        let v = dep.voltages();
        let mut ctl2 = TpController::new(re.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
        let recovered = probe(&mut dep, &mut ctl2);
        assert!(
            recovered > broken + 8.0 && recovered > -20.0,
            "recalibration should recover: healthy {healthy}, broken {broken}, recovered {recovered} dBm"
        );
    }
}
