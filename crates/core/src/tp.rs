//! The online TP controller (§3 + §5.2).
//!
//! Ties the trained models to the live loop: on every VRH-T report, evaluate
//! the pointing function `P` (warm-started from the last solution) and
//! command the galvos. The paper's latency budget, reproduced here:
//!
//! * computation — "minimal (in µsecs)";
//! * realignment — "about 1–2 msec comprised mostly of digital-to-analog
//!   conversion latency at a DAQ device" plus the mirror settle time.

use crate::mapping::TrainedMapping;
use crate::pointing::{pointing, PointingResult};
use cyclops_geom::pose::Pose;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpConfig {
    /// DAQ digital-to-analog conversion latency per command (seconds) —
    /// the dominant term of the paper's 1–2 ms pointing latency.
    pub dac_latency_s: f64,
    /// Computation time charged per `G`/`G'` model evaluation (seconds);
    /// scales the "µsecs" compute budget with the actual iteration count.
    pub compute_per_eval_s: f64,
    /// Voltage convergence tolerance of the pointing iteration.
    pub v_tol: f64,
    /// Outer-iteration budget of the pointing iteration.
    pub max_iters: usize,
}

impl Default for TpConfig {
    fn default() -> Self {
        TpConfig {
            dac_latency_s: 1.3e-3,
            compute_per_eval_s: 2e-6,
            v_tol: cyclops_optics::galvo::DAC_STEP_V,
            max_iters: 12,
        }
    }
}

/// One pointing command produced from a tracking report.
#[derive(Debug, Clone, Copy)]
pub struct TpCommand {
    /// The four voltages to command `(v_t1, v_t2, v_r1, v_r2)`.
    pub voltages: [f64; 4],
    /// Latency from report receipt until the DACs have output the voltages
    /// (computation + DAC conversion; galvo settle time is added by the
    /// hardware when applied).
    pub latency_s: f64,
    /// Outer pointing iterations spent on this command (after any cold
    /// restart; what `latency_s` and the telemetry iteration histograms are
    /// built from).
    pub iterations: usize,
    /// Whether the pointing iteration converged.
    pub converged: bool,
}

/// Aggregate controller metrics (§5.2's TP-performance numbers).
#[derive(Debug, Clone, Default)]
pub struct TpMetrics {
    /// Reports processed.
    pub n_reports: u64,
    /// Pointing failures (non-converged iterations).
    pub n_failures: u64,
    /// Sum and max of outer pointing iterations.
    pub sum_iters: u64,
    /// See [`TpMetrics::sum_iters`].
    pub max_iters: u64,
    /// Sum and max of command latency (seconds).
    pub sum_latency_s: f64,
    /// See [`TpMetrics::sum_latency_s`].
    pub max_latency_s: f64,
    /// Dead-reckoned commands issued from extrapolated (not reported) poses
    /// while the control channel was stale.
    pub n_extrapolated: u64,
    /// Re-acquisition spiral steps taken after optical signal loss.
    pub n_reacq_steps: u64,
}

impl TpMetrics {
    /// Commands issued (reported + extrapolated poses).
    fn n_commands(&self) -> u64 {
        self.n_reports + self.n_extrapolated
    }

    /// Mean outer pointing iterations per command.
    pub fn mean_iters(&self) -> f64 {
        if self.n_commands() == 0 {
            0.0
        } else {
            self.sum_iters as f64 / self.n_commands() as f64
        }
    }

    /// Mean command latency (seconds).
    pub fn mean_latency_s(&self) -> f64 {
        if self.n_commands() == 0 {
            0.0
        } else {
            self.sum_latency_s / self.n_commands() as f64
        }
    }
}

/// The online controller.
#[derive(Debug, Clone)]
pub struct TpController {
    /// Trained stage-1+2 models.
    pub mapping: TrainedMapping,
    /// Timing configuration.
    pub cfg: TpConfig,
    /// Running metrics.
    pub metrics: TpMetrics,
    last_voltages: [f64; 4],
}

impl TpController {
    /// Creates a controller; `initial_voltages` seed the warm start (e.g.
    /// the last exhaustive-alignment result).
    pub fn new(mapping: TrainedMapping, cfg: TpConfig, initial_voltages: [f64; 4]) -> TpController {
        TpController {
            mapping,
            cfg,
            metrics: TpMetrics::default(),
            last_voltages: initial_voltages,
        }
    }

    /// Processes one VRH-T report: computes `P(Ψ)` and returns the command.
    pub fn on_report(&mut self, reported_pose: &Pose) -> TpCommand {
        self.metrics.n_reports += 1;
        self.solve(reported_pose)
    }

    /// Processes a dead-reckoned pose (constant-velocity extrapolation from
    /// stale reports): same pointing math as [`TpController::on_report`],
    /// accounted separately so session stats can tell how often the
    /// controller flew blind.
    pub fn on_extrapolated(&mut self, extrapolated_pose: &Pose) -> TpCommand {
        self.metrics.n_extrapolated += 1;
        self.solve(extrapolated_pose)
    }

    /// Records one re-acquisition spiral step (taken by the simulator on the
    /// controller's behalf).
    pub fn note_reacq_step(&mut self) {
        self.metrics.n_reacq_steps += 1;
    }

    fn solve(&mut self, reported_pose: &Pose) -> TpCommand {
        let tx_vr = self.mapping.tx_in_vr();
        let rx_vr = self.mapping.rx_in_vr(reported_pose);
        let mut res: PointingResult = pointing(
            &tx_vr,
            &rx_vr,
            self.last_voltages,
            self.cfg.v_tol,
            self.cfg.max_iters,
        );
        let mut extra_evals = 0usize;
        if !res.converged {
            // A stale warm start (large headset jump since the last report)
            // can strand the iteration; restart cold once, as the real
            // controller would.
            extra_evals = 2 * res.iterations + 3 * res.gprime_iterations;
            res = pointing(&tx_vr, &rx_vr, [0.0; 4], self.cfg.v_tol, self.cfg.max_iters);
        }
        // Each outer iteration costs 2 traces; each G' iteration 3 traces
        // plus the plane algebra.
        let evals = 2 * res.iterations + 3 * res.gprime_iterations + extra_evals;
        let latency = self.cfg.dac_latency_s + evals as f64 * self.cfg.compute_per_eval_s;
        if res.converged {
            self.last_voltages = res.voltages;
        }
        if !res.converged {
            self.metrics.n_failures += 1;
        }
        self.metrics.sum_iters += res.iterations as u64;
        self.metrics.max_iters = self.metrics.max_iters.max(res.iterations as u64);
        self.metrics.sum_latency_s += latency;
        self.metrics.max_latency_s = self.metrics.max_latency_s.max(latency);
        TpCommand {
            voltages: res.voltages,
            latency_s: latency,
            iterations: res.iterations,
            converged: res.converged,
        }
    }

    /// The warm-start voltages currently held.
    pub fn last_voltages(&self) -> [f64; 4] {
        self.last_voltages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{cheat_align, Deployment, DeploymentConfig};
    use crate::kspace::{train_both, BoardConfig};
    use crate::mapping::{self, rough_initial_guess};
    use cyclops_geom::vec3::v3;

    /// Builds a fully-trained controller plus its deployment.
    fn trained_controller(seed: u64) -> (Deployment, TpController) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        let (tx_tr, tx_rig, rx_tr, rx_rig) =
            train_both(&dep, &BoardConfig::default(), seed).expect("stage-1 training");
        let (init_tx, init_rx) =
            rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed.wrapping_add(7));
        let mt = mapping::train(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            30,
            seed.wrapping_add(9),
        );
        let v0 = dep.voltages();
        let ctl = TpController::new(mt.trained, TpConfig::default(), [v0.0, v0.1, v0.2, v0.3]);
        (dep, ctl)
    }

    #[test]
    fn tp_realigns_after_headset_moves() {
        // The §5.2 experiment: move the RX randomly, lock it, run TP, check
        // the link reaches (near-)optimal state — 10/10 in the paper.
        let (mut dep, mut ctl) = trained_controller(501);
        let mut successes = 0;
        for k in 0..10 {
            let pose = mapping::random_placement(dep.rng(), 1.75 + 0.01 * k as f64);
            dep.set_headset_pose(pose);
            let report = mapping::noisy_report(&mut dep, &Default::default());
            let cmd = ctl.on_report(&report);
            dep.set_voltages(
                cmd.voltages[0],
                cmd.voltages[1],
                cmd.voltages[2],
                cmd.voltages[3],
            );
            if dep.link_up() {
                successes += 1;
            }
        }
        assert!(
            successes >= 9,
            "only {successes}/10 realignments closed the link"
        );
    }

    #[test]
    fn tp_accuracy_close_to_optimal_power() {
        // §5.2: received power after TP within a few dB of the optimal
        // (paper: −13…−14 dBm vs −10 dBm peak). Sampled over several
        // placements: the focal-spot cross-blur makes residual misalignment
        // cost real dB, so individual placements spread — the median must
        // stay in the paper's few-dB band and no placement may fall off a
        // cliff.
        let mut gaps: Vec<f64> = Vec::new();
        for seed in [500u64, 501, 502, 503, 504, 505, 506, 507] {
            let (mut dep, mut ctl) = trained_controller(seed);
            let pose = mapping::random_placement(dep.rng(), 1.8);
            dep.set_headset_pose(pose);
            let report = mapping::noisy_report(&mut dep, &Default::default());
            let cmd = ctl.on_report(&report);
            dep.set_voltages(
                cmd.voltages[0],
                cmd.voltages[1],
                cmd.voltages[2],
                cmd.voltages[3],
            );
            let tp_power = dep.received_power_dbm();
            cheat_align(&mut dep);
            let best = dep.received_power_dbm();
            gaps.push(best - tp_power);
        }
        gaps.sort_by(|a, b| a.total_cmp(b));
        let median = 0.5 * (gaps[3] + gaps[4]);
        assert!(median < 4.0, "median TP gap {median} dB of {gaps:?}");
        assert!(gaps[7] < 9.0, "worst TP gap {} dB", gaps[7]);
    }

    #[test]
    fn latency_is_one_to_two_ms() {
        let (mut dep, mut ctl) = trained_controller(503);
        for _ in 0..20 {
            let pose = mapping::random_placement(dep.rng(), 1.75);
            dep.set_headset_pose(pose);
            let report = mapping::noisy_report(&mut dep, &Default::default());
            let cmd = ctl.on_report(&report);
            assert!(
                (0.8e-3..2.5e-3).contains(&cmd.latency_s),
                "latency {} ms",
                cmd.latency_s * 1e3
            );
        }
        let m = &ctl.metrics;
        assert_eq!(m.n_reports, 20);
        assert!(m.mean_latency_s() < 2.0e-3);
        assert!(m.mean_iters() >= 1.0 && m.mean_iters() <= 6.0);
    }

    #[test]
    fn small_motion_uses_warm_start_efficiently() {
        let (mut dep, mut ctl) = trained_controller(504);
        let base = mapping::random_placement(dep.rng(), 1.75);
        dep.set_headset_pose(base);
        let r0 = mapping::noisy_report(&mut dep, &Default::default());
        ctl.on_report(&r0);
        // A 2 mm nudge: pointing should converge in very few iterations.
        let mut nudged = base;
        nudged.trans += v3(0.002, 0.0, 0.0);
        dep.set_headset_pose(nudged);
        let r1 = mapping::noisy_report(&mut dep, &Default::default());
        let before = ctl.metrics.sum_iters;
        ctl.on_report(&r1);
        let iters = ctl.metrics.sum_iters - before;
        assert!(iters <= 3, "warm-started pointing took {iters} iterations");
    }
}
