//! Property-based tests for the geometry kernel.

use cyclops_geom::quat::Quat;
use cyclops_geom::rotation::{axis_angle, from_rotation_vector, to_rotation_vector};
use cyclops_geom::{reflect_ray, Plane, Pose, Pose6, Ray, Vec3};
use proptest::prelude::*;

fn finite_vec3() -> impl Strategy<Value = Vec3> {
    (-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    finite_vec3()
        .prop_filter("non-degenerate", |v| v.norm() > 1e-3)
        .prop_map(|v| v.normalized())
}

fn rotation_vec() -> impl Strategy<Value = Vec3> {
    // Angles up to ~3 rad; avoids the π ambiguity region for round-trips.
    finite_vec3().prop_map(|v| {
        let n = v.norm();
        if n > 3.0 {
            v * (3.0 / n)
        } else {
            v
        }
    })
}

fn pose6() -> impl Strategy<Value = Pose6> {
    (rotation_vec(), finite_vec3()).prop_map(|(rv, t)| Pose6::new(rv, t))
}

proptest! {
    #[test]
    fn rotation_preserves_norm(axis in unit_vec3(), angle in -6.0..6.0f64, v in finite_vec3()) {
        let r = axis_angle(axis, angle);
        prop_assert!((r * v).norm() - v.norm() < 1e-9);
        prop_assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn rotation_preserves_dot(axis in unit_vec3(), angle in -6.0..6.0f64,
                              a in finite_vec3(), b in finite_vec3()) {
        let r = axis_angle(axis, angle);
        prop_assert!(((r * a).dot(r * b) - a.dot(b)).abs() < 1e-7);
    }

    #[test]
    fn rotation_vector_roundtrip(rv in rotation_vec()) {
        let r = from_rotation_vector(rv);
        let rv2 = to_rotation_vector(&r);
        prop_assert!((rv - rv2).norm() < 1e-6, "rv {} vs {}", rv, rv2);
    }

    #[test]
    fn quat_matrix_agree(axis in unit_vec3(), angle in -3.0..3.0f64, v in finite_vec3()) {
        let q = Quat::from_axis_angle(axis, angle);
        let m = axis_angle(axis, angle);
        prop_assert!((q.rotate(v) - m * v).norm() < 1e-9);
        prop_assert!(m.max_abs_diff(&q.to_matrix()) < 1e-9);
    }

    #[test]
    fn quat_matrix_roundtrip(axis in unit_vec3(), angle in -3.0..3.0f64) {
        let m = axis_angle(axis, angle);
        let q = Quat::from_matrix(&m);
        prop_assert!(m.max_abs_diff(&q.to_matrix()) < 1e-9);
    }

    #[test]
    fn pose_inverse_roundtrip(p6 in pose6(), v in finite_vec3()) {
        let pose = p6.to_pose();
        let back = pose.inverse().apply_point(pose.apply_point(v));
        prop_assert!((back - v).norm() < 1e-8);
    }

    #[test]
    fn pose_composition_associative(a in pose6(), b in pose6(), c in pose6(), v in finite_vec3()) {
        let (a, b, c) = (a.to_pose(), b.to_pose(), c.to_pose());
        let lhs = a.compose(&b).compose(&c).apply_point(v);
        let rhs = a.compose(&b.compose(&c)).apply_point(v);
        prop_assert!((lhs - rhs).norm() < 1e-7);
    }

    #[test]
    fn pose_params_roundtrip(p6 in pose6()) {
        let pose = p6.to_pose();
        let p6b = pose.to_params();
        let pose2 = p6b.to_pose();
        prop_assert!(pose.rot.max_abs_diff(&pose2.rot) < 1e-6);
        prop_assert!((pose.trans - pose2.trans).norm() < 1e-9);
    }

    #[test]
    fn reflection_is_involutive(origin in finite_vec3(), dir in unit_vec3(),
                                q in finite_vec3(), n in unit_vec3()) {
        let ray = Ray::new(origin, dir);
        if let Some(out) = reflect_ray(&ray, q, n) {
            prop_assert!(out.dir.is_unit(1e-9));
            // Reflecting the reversed output off the same mirror recovers the
            // reversed input direction (time-reversal symmetry of optics).
            let back = cyclops_geom::reflect::reflect_dir(-out.dir, n);
            prop_assert!((back + ray.dir).norm() < 1e-9);
            // Angle of incidence == angle of reflection.
            let ai = ray.dir.angle_to(n).min(ray.dir.angle_to(-n));
            let ar = out.dir.angle_to(n).min(out.dir.angle_to(-n));
            prop_assert!((ai - ar).abs() < 1e-9);
        }
    }

    #[test]
    fn plane_projection_idempotent(p in finite_vec3(), q in finite_vec3(), n in unit_vec3()) {
        let plane = Plane::new(q, n);
        let proj = plane.project(p);
        prop_assert!(plane.signed_distance(proj).abs() < 1e-9);
        prop_assert!((plane.project(proj) - proj).norm() < 1e-9);
    }

    #[test]
    fn ray_plane_intersection_is_on_both(origin in finite_vec3(), dir in unit_vec3(),
                                         q in finite_vec3(), n in unit_vec3()) {
        let ray = Ray::new(origin, dir);
        let plane = Plane::new(q, n);
        if let Some((t, p)) = plane.intersect_ray(&ray) {
            prop_assert!(t >= 0.0);
            prop_assert!(plane.signed_distance(p).abs() < 1e-7);
            prop_assert!(ray.distance_to_point(p) < 1e-7);
        }
    }

    #[test]
    fn line_distance_is_symmetric(a in finite_vec3(), da in unit_vec3(),
                                  b in finite_vec3(), db in unit_vec3()) {
        let ra = Ray::new(a, da);
        let rb = Ray::new(b, db);
        prop_assert!((ra.line_distance(&rb) - rb.line_distance(&ra)).abs() < 1e-8);
    }

    #[test]
    fn slerp_angle_is_linear(axis in unit_vec3(), angle in 0.01..2.5f64, t in 0.0..1.0f64) {
        let qa = Quat::IDENTITY;
        let qb = Quat::from_axis_angle(axis, angle);
        let qm = qa.slerp(&qb, t);
        prop_assert!((qa.angle_to(&qm) - t * angle).abs() < 1e-7);
    }
}

#[test]
fn pose_transform_preserves_distances() {
    // Deterministic spot-check that rigid transforms are isometries.
    let pose = Pose::from_quat(
        Quat::from_axis_angle(Vec3::new(0.3, 0.5, 0.81).normalized(), 1.2),
        Vec3::new(0.5, -0.25, 2.0),
    );
    let a = Vec3::new(1.0, 2.0, 3.0);
    let b = Vec3::new(-1.0, 0.5, 0.25);
    let d0 = a.distance(b);
    let d1 = pose.apply_point(a).distance(pose.apply_point(b));
    assert!((d0 - d1).abs() < 1e-12);
}
