//! Specular reflection — the operator `R` of the paper's GMA derivation.
//!
//! §4.1: "Let `R` be the reflection function for a mirror that maps an input
//! beam's parameters to the output beam's parameters, given the mirror
//! position", used twice to derive `G`:
//!
//! ```text
//! (p_mid, x̂_mid) = R(p₀, x̂₀, n̂₁', q₁)
//! (p,     x̂)     = R(p_mid, x̂_mid, n̂₂', q₂)
//! ```

use crate::plane::Plane;
use crate::ray::Ray;
use crate::vec3::Vec3;

/// Reflects the incoming ray off the mirror plane defined by point `q` and
/// unit normal `n`.
///
/// Returns the reflected ray, whose origin is the point where the incoming
/// ray strikes the mirror plane and whose direction is the specular
/// reflection `x̂ − 2(x̂·n̂)n̂`.
///
/// Returns `None` if the ray is parallel to the mirror plane or travels away
/// from it (the physical beam would miss the mirror).
pub fn reflect_ray(incoming: &Ray, q: Vec3, n: Vec3) -> Option<Ray> {
    let plane = Plane::new(q, n);
    let (_, hit) = plane.intersect_ray(incoming)?;
    let d = incoming.dir;
    let out = d - plane.normal * (2.0 * d.dot(plane.normal));
    Some(Ray::new(hit, out))
}

/// Reflects a direction vector off a surface with unit normal `n` (no
/// intersection computed).
#[inline]
pub fn reflect_dir(d: Vec3, n: Vec3) -> Vec3 {
    debug_assert!(n.is_unit(1e-9));
    d - n * (2.0 * d.dot(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    #[test]
    fn mirror_at_45_degrees_turns_beam_90() {
        // Beam along +X hits a mirror at the origin whose normal is in the
        // XZ plane at 45°; reflected beam should go along -Z or +Z.
        let incoming = Ray::new(v3(-1.0, 0.0, 0.0), Vec3::X);
        let n = v3(-1.0, 0.0, 1.0).normalized();
        let out = reflect_ray(&incoming, Vec3::ZERO, n).unwrap();
        assert!((out.origin - Vec3::ZERO).norm() < 1e-12);
        assert!((out.dir - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn normal_incidence_reflects_back() {
        let incoming = Ray::new(v3(0.0, 0.0, 5.0), -Vec3::Z);
        let out = reflect_ray(&incoming, Vec3::ZERO, Vec3::Z).unwrap();
        assert!((out.dir - Vec3::Z).norm() < 1e-12);
        assert!(out.origin.norm() < 1e-12);
    }

    #[test]
    fn reflection_preserves_energy_direction_is_unit() {
        let incoming = Ray::new(v3(0.3, -2.0, 0.7), v3(0.2, 0.9, -0.1));
        let n = v3(0.1, -0.8, 0.5).normalized();
        if let Some(out) = reflect_ray(&incoming, v3(0.0, 1.0, 0.0), n) {
            assert!(out.dir.is_unit(1e-12));
        }
    }

    #[test]
    fn angle_of_incidence_equals_angle_of_reflection() {
        let n = v3(0.0, 0.0, 1.0);
        let d = v3(0.6, 0.0, -0.8);
        let r = reflect_dir(d, n);
        // Angles measured from the normal must match.
        let ai = (-d).angle_to(n);
        let ar = r.angle_to(n);
        assert!((ai - ar).abs() < 1e-12);
        // Tangential component is preserved.
        assert!((d.reject_from(n) - r.reject_from(n)).norm() < 1e-12);
    }

    #[test]
    fn parallel_ray_misses_mirror() {
        let incoming = Ray::new(v3(0.0, 0.0, 1.0), Vec3::X);
        assert!(reflect_ray(&incoming, Vec3::ZERO, Vec3::Z).is_none());
    }

    #[test]
    fn ray_pointing_away_misses_mirror() {
        let incoming = Ray::new(v3(0.0, 0.0, 1.0), Vec3::Z);
        assert!(reflect_ray(&incoming, Vec3::ZERO, Vec3::Z).is_none());
    }

    #[test]
    fn double_reflection_from_parallel_mirrors_restores_direction() {
        let incoming = Ray::new(v3(0.0, 0.0, 0.0), v3(1.0, 0.0, -1.0));
        let n = Vec3::Z;
        let first = reflect_ray(&incoming, v3(0.0, 0.0, -1.0), n).unwrap();
        let second = reflect_ray(&first, v3(0.0, 0.0, 1.0), -n).unwrap();
        assert!((second.dir - incoming.dir.normalized()).norm() < 1e-12);
    }
}
