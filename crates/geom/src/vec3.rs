//! Three-component `f64` vector.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector (or point) with `f64` components.
///
/// Used throughout Cyclops for positions (metres), beam direction vectors
/// (unit length) and mirror normals (unit length).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

/// Shorthand constructor: `v3(x, y, z)`.
#[inline]
pub const fn v3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = v3(0.0, 0.0, 0.0);
    /// Unit vector along +X.
    pub const X: Vec3 = v3(1.0, 0.0, 0.0);
    /// Unit vector along +Y.
    pub const Y: Vec3 = v3(0.0, 1.0, 0.0);
    /// Unit vector along +Z.
    pub const Z: Vec3 = v3(0.0, 0.0, 1.0);

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        v3(x, y, z)
    }

    /// Creates a vector with all components equal to `s`.
    #[inline]
    pub const fn splat(s: f64) -> Self {
        v3(s, s, s)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        v3(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction.
    ///
    /// # Panics
    /// Panics (in debug builds) if the vector is (near-)zero; normalizing a
    /// zero vector is always a logic error in this codebase.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-300, "normalizing a zero vector");
        self / n
    }

    /// Returns `Some(unit vector)` or `None` if the norm is below `eps`.
    #[inline]
    pub fn try_normalized(self, eps: f64) -> Option<Vec3> {
        let n = self.norm();
        if n <= eps {
            None
        } else {
            Some(self / n)
        }
    }

    /// True if the vector's norm is within `eps` of 1.
    #[inline]
    pub fn is_unit(self, eps: f64) -> bool {
        (self.norm() - 1.0).abs() <= eps
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        v3(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        v3(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Projects `self` onto the (not necessarily unit) direction `dir`.
    #[inline]
    pub fn project_onto(self, dir: Vec3) -> Vec3 {
        let d2 = dir.norm_sq();
        debug_assert!(d2 > 1e-300, "projecting onto a zero direction");
        dir * (self.dot(dir) / d2)
    }

    /// Component of `self` perpendicular to `dir`.
    #[inline]
    pub fn reject_from(self, dir: Vec3) -> Vec3 {
        self - self.project_onto(dir)
    }

    /// Angle between two vectors in radians, in `[0, π]`.
    ///
    /// Numerically robust via `atan2` of cross/dot (stable for near-parallel
    /// and near-antiparallel inputs, unlike `acos`).
    #[inline]
    pub fn angle_to(self, other: Vec3) -> f64 {
        self.cross(other).norm().atan2(self.dot(other))
    }

    /// Returns an arbitrary unit vector perpendicular to `self`.
    ///
    /// Useful to build orthonormal frames around a beam axis.
    pub fn any_perpendicular(self) -> Vec3 {
        debug_assert!(self.norm() > 1e-300);
        // Pick the coordinate axis least aligned with self for stability.
        let ax = self.x.abs();
        let ay = self.y.abs();
        let az = self.z.abs();
        let basis = if ax <= ay && ax <= az {
            Vec3::X
        } else if ay <= az {
            Vec3::Y
        } else {
            Vec3::Z
        };
        self.cross(basis).normalized()
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Largest absolute component.
    #[inline]
    pub fn abs_max(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        v3(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        v3(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        v3(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        v3(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        v3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        v3(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn dot_and_cross_basics() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_anticommutative() {
        let a = v3(1.0, 2.0, 3.0);
        let b = v3(-4.0, 0.5, 2.0);
        let c = a.cross(b) + b.cross(a);
        assert!(c.norm() < 1e-15);
    }

    #[test]
    fn norm_and_normalize() {
        let v = v3(3.0, 4.0, 0.0);
        assert!(approx_eq(v.norm(), 5.0));
        assert!(v.normalized().is_unit(1e-12));
        assert!(approx_eq(v.norm_sq(), 25.0));
    }

    #[test]
    fn try_normalized_zero_is_none() {
        assert!(Vec3::ZERO.try_normalized(1e-12).is_none());
        assert!(v3(1e-20, 0.0, 0.0).try_normalized(1e-12).is_none());
        assert!(Vec3::X.try_normalized(1e-12).is_some());
    }

    #[test]
    fn angle_to_known_angles() {
        assert!(approx_eq(
            Vec3::X.angle_to(Vec3::Y),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(approx_eq(Vec3::X.angle_to(Vec3::X), 0.0));
        assert!(approx_eq(Vec3::X.angle_to(-Vec3::X), std::f64::consts::PI));
        // Robust for tiny angles.
        let tiny = v3(1.0, 1e-9, 0.0);
        assert!((Vec3::X.angle_to(tiny) - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn projection_and_rejection_decompose() {
        let v = v3(2.0, -3.0, 0.5);
        let d = v3(0.2, 0.9, -0.1);
        let p = v.project_onto(d);
        let r = v.reject_from(d);
        assert!((p + r - v).norm() < 1e-12);
        assert!(r.dot(d).abs() < 1e-12);
    }

    #[test]
    fn any_perpendicular_is_perpendicular_unit() {
        for v in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            v3(1.0, 2.0, 3.0),
            v3(-0.1, 0.0, 5.0),
        ] {
            let p = v.any_perpendicular();
            assert!(p.is_unit(1e-12));
            assert!(p.dot(v).abs() < 1e-12 * v.norm());
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = v3(0.0, 1.0, 2.0);
        let b = v3(2.0, 3.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn index_access() {
        let v = v3(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = v3(0.0, 0.0, 0.0)[3];
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [v3(1.0, 0.0, 0.0), v3(0.0, 2.0, 0.0), v3(0.0, 0.0, 3.0)];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn array_roundtrip() {
        let v = v3(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    fn scalar_ops() {
        let v = v3(1.0, 2.0, 3.0);
        assert_eq!(v * 2.0, v3(2.0, 4.0, 6.0));
        assert_eq!(2.0 * v, v3(2.0, 4.0, 6.0));
        assert_eq!(v / 2.0, v3(0.5, 1.0, 1.5));
        let mut w = v;
        w += v;
        w -= v3(1.0, 1.0, 1.0);
        w *= 3.0;
        w /= 3.0;
        assert_eq!(w, v3(1.0, 3.0, 5.0));
        assert_eq!(-v, v3(-1.0, -2.0, -3.0));
    }
}
