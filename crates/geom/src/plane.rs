//! Planes — mirror surfaces, the K-space training board, and the auxiliary
//! plane `P` of the `G'` iteration (§4.3, Fig. 10).

use crate::ray::Ray;
use crate::vec3::Vec3;

/// An infinite plane through `point` with unit `normal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// A point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
}

impl Plane {
    /// Creates a plane, normalizing the normal.
    pub fn new(point: Vec3, normal: Vec3) -> Plane {
        Plane {
            point,
            normal: normal.normalized(),
        }
    }

    /// Signed distance of `p` from the plane (positive on the normal side).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        (p - self.point).dot(self.normal)
    }

    /// Orthogonal projection of `p` onto the plane.
    #[inline]
    pub fn project(&self, p: Vec3) -> Vec3 {
        p - self.normal * self.signed_distance(p)
    }

    /// Ray–plane intersection.
    ///
    /// Returns the parameter `t ≥ 0` and intersection point, or `None` if the
    /// ray is parallel to the plane or points away from it.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f64, Vec3)> {
        let denom = ray.dir.dot(self.normal);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = (self.point - ray.origin).dot(self.normal) / denom;
        if t < 0.0 {
            return None;
        }
        Some((t, ray.point_at(t)))
    }

    /// Intersection of the ray's full supporting *line* with the plane
    /// (allows negative `t`). `None` only if parallel.
    pub fn intersect_line(&self, ray: &Ray) -> Option<(f64, Vec3)> {
        let denom = ray.dir.dot(self.normal);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = (self.point - ray.origin).dot(self.normal) / denom;
        Some((t, ray.point_at(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    #[test]
    fn signed_distance_sides() {
        let pl = Plane::new(Vec3::ZERO, Vec3::Z);
        assert!((pl.signed_distance(v3(0.0, 0.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((pl.signed_distance(v3(1.0, 2.0, -4.0)) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn projection_lands_on_plane() {
        let pl = Plane::new(v3(0.0, 0.0, 1.0), v3(0.0, 1.0, 1.0));
        let p = v3(3.0, -2.0, 5.0);
        let q = pl.project(p);
        assert!(pl.signed_distance(q).abs() < 1e-12);
        // Projection displacement is parallel to the normal.
        assert!((p - q).cross(pl.normal).norm() < 1e-12);
    }

    #[test]
    fn ray_hits_plane() {
        let pl = Plane::new(v3(0.0, 0.0, 2.0), Vec3::Z);
        let ray = Ray::new(Vec3::ZERO, v3(0.0, 0.6, 0.8));
        let (t, p) = pl.intersect_ray(&ray).unwrap();
        assert!((t - 2.5).abs() < 1e-12);
        assert!((p - v3(0.0, 1.5, 2.0)).norm() < 1e-12);
    }

    #[test]
    fn parallel_ray_misses() {
        let pl = Plane::new(v3(0.0, 0.0, 2.0), Vec3::Z);
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(pl.intersect_ray(&ray).is_none());
        assert!(pl.intersect_line(&ray).is_none());
    }

    #[test]
    fn behind_ray_misses_but_line_hits() {
        let pl = Plane::new(v3(0.0, 0.0, -1.0), Vec3::Z);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        assert!(pl.intersect_ray(&ray).is_none());
        let (t, p) = pl.intersect_line(&ray).unwrap();
        assert!((t + 1.0).abs() < 1e-12);
        assert!((p - v3(0.0, 0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn normal_is_normalized_on_construction() {
        let pl = Plane::new(Vec3::ZERO, v3(0.0, 0.0, 10.0));
        assert!(pl.normal.is_unit(1e-12));
    }
}
