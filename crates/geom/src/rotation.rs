//! Axis–angle rotations (Rodrigues' formula).
//!
//! The galvo-mirror model `G` of the paper (§4.1) tilts each mirror's normal
//! by `θ₁·v` about the mirror's rotation axis: `n̂' = R(r̂, θ₁·v)·n̂`. This
//! module provides that `R`.

use crate::mat3::Mat3;
use crate::vec3::{v3, Vec3};

/// Rotation matrix rotating by `angle` radians about the **unit** axis `axis`
/// (right-hand rule).
///
/// Rodrigues' rotation formula:
/// `R = I + sin(θ)·K + (1 − cos(θ))·K²` where `K` is the cross-product matrix
/// of the axis.
pub fn axis_angle(axis: Vec3, angle: f64) -> Mat3 {
    debug_assert!(axis.is_unit(1e-9), "axis must be a unit vector");
    let (s, c) = angle.sin_cos();
    let t = 1.0 - c;
    let (x, y, z) = (axis.x, axis.y, axis.z);
    Mat3::from_rows(
        v3(t * x * x + c, t * x * y - s * z, t * x * z + s * y),
        v3(t * x * y + s * z, t * y * y + c, t * y * z - s * x),
        v3(t * x * z - s * y, t * y * z + s * x, t * z * z + c),
    )
}

/// Rotates vector `v` by `angle` radians about the unit axis `axis` without
/// building the matrix (direct Rodrigues formula). Equivalent to
/// `axis_angle(axis, angle) * v` but cheaper for one-off use.
pub fn rotate_about(v: Vec3, axis: Vec3, angle: f64) -> Vec3 {
    debug_assert!(axis.is_unit(1e-9), "axis must be a unit vector");
    let (s, c) = angle.sin_cos();
    v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c))
}

/// Extracts the rotation angle (radians, in `[0, π]`) of a rotation matrix.
pub fn rotation_angle(r: &Mat3) -> f64 {
    // trace = 1 + 2cos(theta); clamp for numerical safety.
    let c = ((r.trace() - 1.0) / 2.0).clamp(-1.0, 1.0);
    c.acos()
}

/// Extracts the (axis, angle) of a rotation matrix. The axis is arbitrary for
/// the identity rotation (angle 0) and for rotations by exactly π only one of
/// the two valid axes is returned.
pub fn to_axis_angle(r: &Mat3) -> (Vec3, f64) {
    let angle = rotation_angle(r);
    if angle < 1e-12 {
        return (Vec3::Z, 0.0);
    }
    if (std::f64::consts::PI - angle) < 1e-6 {
        // Near π: extract axis from the symmetric part (R + I)/2 = aaᵀ-ish.
        // Diagonal of R = 2aᵢ² − 1 at θ=π.
        let ax = ((r.at(0, 0) + 1.0) / 2.0).max(0.0).sqrt();
        let ay = ((r.at(1, 1) + 1.0) / 2.0).max(0.0).sqrt();
        let az = ((r.at(2, 2) + 1.0) / 2.0).max(0.0).sqrt();
        // Resolve signs using the largest component as reference.
        let mut a = v3(ax, ay, az);
        if ax >= ay && ax >= az {
            a.y = a.y.copysign(r.at(0, 1) + r.at(1, 0));
            a.z = a.z.copysign(r.at(0, 2) + r.at(2, 0));
        } else if ay >= az {
            a.x = a.x.copysign(r.at(0, 1) + r.at(1, 0));
            a.z = a.z.copysign(r.at(1, 2) + r.at(2, 1));
        } else {
            a.x = a.x.copysign(r.at(0, 2) + r.at(2, 0));
            a.y = a.y.copysign(r.at(1, 2) + r.at(2, 1));
        }
        return (a.normalized(), angle);
    }
    // Generic case: axis from the antisymmetric part.
    let axis = v3(
        r.at(2, 1) - r.at(1, 2),
        r.at(0, 2) - r.at(2, 0),
        r.at(1, 0) - r.at(0, 1),
    ) / (2.0 * angle.sin());
    (axis.normalized(), angle)
}

/// Rotation-vector (so(3)) encoding: `axis · angle`. The zero vector encodes
/// the identity. This is the 3-parameter rotation encoding used for the
/// "mapping parameters" of §4.2.
pub fn from_rotation_vector(rv: Vec3) -> Mat3 {
    let angle = rv.norm();
    if angle < 1e-12 {
        // Second-order small-angle expansion keeps gradients smooth near 0,
        // which matters for the Levenberg–Marquardt fits in cyclops-core.
        let k = cross_matrix(rv);
        return Mat3::IDENTITY + k + k * k * 0.5;
    }
    axis_angle(rv / angle, angle)
}

/// Inverse of [`from_rotation_vector`].
pub fn to_rotation_vector(r: &Mat3) -> Vec3 {
    let (axis, angle) = to_axis_angle(r);
    axis * angle
}

/// The skew-symmetric cross-product matrix `K` with `K·v = k × v`.
pub fn cross_matrix(k: Vec3) -> Mat3 {
    Mat3::from_rows(v3(0.0, -k.z, k.y), v3(k.z, 0.0, -k.x), v3(-k.y, k.x, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn quarter_turn_about_z() {
        let r = axis_angle(Vec3::Z, FRAC_PI_2);
        let v = r * Vec3::X;
        assert!((v - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn axis_is_fixed_point() {
        let axis = v3(1.0, 2.0, -0.5).normalized();
        let r = axis_angle(axis, 0.87);
        assert!((r * axis - axis).norm() < 1e-12);
    }

    #[test]
    fn rotation_matrices_are_rotations() {
        for angle in [-3.0, -0.5, 0.0, 1e-8, 0.5, 2.9] {
            let r = axis_angle(v3(0.3, -0.4, 0.86).normalized(), angle);
            assert!(r.is_rotation(1e-12), "angle {angle}");
        }
    }

    #[test]
    fn rotate_about_matches_matrix() {
        let axis = v3(-0.2, 0.5, 1.0).normalized();
        let v = v3(1.0, -2.0, 0.3);
        for angle in [0.0, 0.1, 1.5, -2.2] {
            let a = rotate_about(v, axis, angle);
            let b = axis_angle(axis, angle) * v;
            assert!((a - b).norm() < 1e-12);
        }
    }

    #[test]
    fn angle_extraction() {
        for angle in [0.0, 0.3, 1.0, 2.5, PI - 1e-9] {
            let r = axis_angle(Vec3::Y, angle);
            assert!((rotation_angle(&r) - angle).abs() < 1e-6, "angle {angle}");
        }
    }

    #[test]
    fn axis_angle_roundtrip_generic() {
        let axis = v3(0.6, -0.64, 0.48).normalized();
        let angle = 1.234;
        let r = axis_angle(axis, angle);
        let (a2, th2) = to_axis_angle(&r);
        assert!((th2 - angle).abs() < 1e-10);
        assert!((a2 - axis).norm() < 1e-9);
    }

    #[test]
    fn axis_angle_roundtrip_near_pi() {
        let axis = v3(0.0, 0.8, 0.6);
        let angle = PI - 1e-8;
        let r = axis_angle(axis, angle);
        let (a2, th2) = to_axis_angle(&r);
        assert!((th2 - angle).abs() < 1e-4);
        // Axis may flip sign near π.
        assert!((a2 - axis).norm().min((a2 + axis).norm()) < 1e-3);
    }

    #[test]
    fn rotation_vector_roundtrip() {
        for rv in [
            Vec3::ZERO,
            v3(1e-13, 0.0, 0.0),
            v3(0.1, 0.0, 0.0),
            v3(0.5, -1.0, 0.25),
            v3(2.0, 2.0, -1.0),
        ] {
            let r = from_rotation_vector(rv);
            assert!(r.is_rotation(1e-9));
            let rv2 = to_rotation_vector(&r);
            assert!((rv - rv2).norm() < 1e-6, "rv {rv} vs {rv2}");
        }
    }

    #[test]
    fn cross_matrix_matches_cross_product() {
        let k = v3(0.3, -1.0, 2.0);
        let v = v3(-0.5, 0.2, 0.9);
        assert!((cross_matrix(k) * v - k.cross(v)).norm() < 1e-15);
    }

    #[test]
    fn composition_adds_angles_same_axis() {
        let axis = v3(1.0, 1.0, 1.0).normalized();
        let r = axis_angle(axis, 0.4) * axis_angle(axis, 0.35);
        assert!((rotation_angle(&r) - 0.75).abs() < 1e-12);
    }
}
