//! Unit quaternions for orientation.
//!
//! VR headsets report orientation as quaternions; the headset tracking
//! simulator (`cyclops-vrh`) stores poses this way, and motion trajectories
//! interpolate orientations with [`Quat::slerp`].

use crate::mat3::Mat3;
use crate::vec3::{v3, Vec3};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`. All public constructors produce unit
/// quaternions representing rotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Rotation by `angle` radians about the unit `axis`.
    #[inline]
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        debug_assert!(axis.is_unit(1e-9));
        let (s, c) = (angle / 2.0).sin_cos();
        Quat {
            w: c,
            x: axis.x * s,
            y: axis.y * s,
            z: axis.z * s,
        }
    }

    /// Rotation encoded as a rotation vector (axis × angle); zero is identity.
    pub fn from_rotation_vector(rv: Vec3) -> Quat {
        let angle = rv.norm();
        if angle < 1e-12 {
            return Quat {
                w: 1.0,
                x: rv.x / 2.0,
                y: rv.y / 2.0,
                z: rv.z / 2.0,
            }
            .normalized();
        }
        Quat::from_axis_angle(rv / angle, angle)
    }

    /// Converts a rotation matrix to a quaternion.
    pub fn from_matrix(m: &Mat3) -> Quat {
        // Shepperd's method: pick the largest of w,x,y,z to avoid cancellation.
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat {
                w: 0.25 * s,
                x: (m.at(2, 1) - m.at(1, 2)) / s,
                y: (m.at(0, 2) - m.at(2, 0)) / s,
                z: (m.at(1, 0) - m.at(0, 1)) / s,
            }
        } else if m.at(0, 0) > m.at(1, 1) && m.at(0, 0) > m.at(2, 2) {
            let s = (1.0 + m.at(0, 0) - m.at(1, 1) - m.at(2, 2)).sqrt() * 2.0;
            Quat {
                w: (m.at(2, 1) - m.at(1, 2)) / s,
                x: 0.25 * s,
                y: (m.at(0, 1) + m.at(1, 0)) / s,
                z: (m.at(0, 2) + m.at(2, 0)) / s,
            }
        } else if m.at(1, 1) > m.at(2, 2) {
            let s = (1.0 + m.at(1, 1) - m.at(0, 0) - m.at(2, 2)).sqrt() * 2.0;
            Quat {
                w: (m.at(0, 2) - m.at(2, 0)) / s,
                x: (m.at(0, 1) + m.at(1, 0)) / s,
                y: 0.25 * s,
                z: (m.at(1, 2) + m.at(2, 1)) / s,
            }
        } else {
            let s = (1.0 + m.at(2, 2) - m.at(0, 0) - m.at(1, 1)).sqrt() * 2.0;
            Quat {
                w: (m.at(1, 0) - m.at(0, 1)) / s,
                x: (m.at(0, 2) + m.at(2, 0)) / s,
                y: (m.at(1, 2) + m.at(2, 1)) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }

    /// Converts to a rotation matrix.
    pub fn to_matrix(&self) -> Mat3 {
        let Quat { w, x, y, z } = *self;
        Mat3::from_rows(
            v3(
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ),
            v3(
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ),
            v3(
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ),
        )
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Renormalizes to unit length.
    #[inline]
    pub fn normalized(&self) -> Quat {
        let n = self.norm();
        debug_assert!(n > 1e-300);
        Quat {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Conjugate (inverse rotation for unit quaternions).
    #[inline]
    pub fn conjugate(&self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector.
    #[inline]
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        // v' = v + 2w(q×v) + 2 q×(q×v)
        let qv = v3(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Rotation angle of this quaternion in `[0, π]` radians.
    #[inline]
    pub fn angle(&self) -> f64 {
        2.0 * self.w.abs().clamp(0.0, 1.0).acos()
    }

    /// Angular distance to another rotation in `[0, π]` radians — the angle of
    /// the relative rotation. This is the metric used for "angular drift" in
    /// the §5.4 trace simulation.
    #[inline]
    pub fn angle_to(&self, other: &Quat) -> f64 {
        (self.conjugate() * *other).angle()
    }

    /// Spherical linear interpolation from `self` (t = 0) to `other` (t = 1).
    /// Always takes the short arc.
    pub fn slerp(&self, other: &Quat, t: f64) -> Quat {
        let mut b = *other;
        let mut cos_half = self.w * b.w + self.x * b.x + self.y * b.y + self.z * b.z;
        if cos_half < 0.0 {
            // Take the short way around.
            b = Quat {
                w: -b.w,
                x: -b.x,
                y: -b.y,
                z: -b.z,
            };
            cos_half = -cos_half;
        }
        if cos_half > 1.0 - 1e-10 {
            // Nearly identical: nlerp.
            return Quat {
                w: self.w + (b.w - self.w) * t,
                x: self.x + (b.x - self.x) * t,
                y: self.y + (b.y - self.y) * t,
                z: self.z + (b.z - self.z) * t,
            }
            .normalized();
        }
        let half = cos_half.clamp(-1.0, 1.0).acos();
        let s = half.sin();
        let wa = ((1.0 - t) * half).sin() / s;
        let wb = (t * half).sin() / s;
        Quat {
            w: self.w * wa + b.w * wb,
            x: self.x * wa + b.x * wb,
            y: self.y * wa + b.y * wb,
            z: self.z * wa + b.z * wb,
        }
        .normalized()
    }
}

impl Mul for Quat {
    type Output = Quat;
    /// Hamilton product: `(a * b).rotate(v) == a.rotate(b.rotate(v))`.
    #[inline]
    fn mul(self, b: Quat) -> Quat {
        let a = self;
        Quat {
            w: a.w * b.w - a.x * b.x - a.y * b.y - a.z * b.z,
            x: a.w * b.x + a.x * b.w + a.y * b.z - a.z * b.y,
            y: a.w * b.y - a.x * b.z + a.y * b.w + a.z * b.x,
            z: a.w * b.z + a.x * b.y - a.y * b.x + a.z * b.w,
        }
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::axis_angle;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn rotate_matches_matrix() {
        let axis = v3(0.1, 0.9, -0.3).normalized();
        for angle in [0.0, 0.5, 1.7, -2.0, PI] {
            let q = Quat::from_axis_angle(axis, angle);
            let m = axis_angle(axis, angle);
            let v = v3(1.0, 2.0, -0.4);
            assert!((q.rotate(v) - m * v).norm() < 1e-12, "angle {angle}");
        }
    }

    #[test]
    fn matrix_roundtrip_all_branches() {
        // Exercise all four branches of Shepperd's method.
        let cases = [
            (Vec3::Z, 0.1),                          // trace-dominant
            (Vec3::X, PI - 0.01),                    // x-dominant
            (Vec3::Y, PI - 0.01),                    // y-dominant
            (Vec3::Z, PI - 0.01),                    // z-dominant
            (v3(0.6, 0.48, 0.64).normalized(), 2.9), // generic large angle
        ];
        for (axis, angle) in cases {
            let m = axis_angle(axis, angle);
            let q = Quat::from_matrix(&m);
            assert!(
                m.max_abs_diff(&q.to_matrix()) < 1e-10,
                "axis {axis} angle {angle}"
            );
        }
    }

    #[test]
    fn hamilton_product_composes() {
        let qa = Quat::from_axis_angle(Vec3::X, 0.7);
        let qb = Quat::from_axis_angle(Vec3::Z, -1.1);
        let v = v3(0.2, -0.8, 1.5);
        let composed = (qa * qb).rotate(v);
        let sequential = qa.rotate(qb.rotate(v));
        assert!((composed - sequential).norm() < 1e-12);
    }

    #[test]
    fn conjugate_inverts() {
        let q = Quat::from_axis_angle(v3(1.0, 2.0, 2.0).normalized(), 1.3);
        let v = v3(0.5, -0.6, 0.7);
        assert!((q.conjugate().rotate(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn angle_metric() {
        let qa = Quat::from_axis_angle(Vec3::Y, 0.2);
        let qb = Quat::from_axis_angle(Vec3::Y, 0.5);
        assert!((qa.angle_to(&qb) - 0.3).abs() < 1e-12);
        assert!(qa.angle_to(&qa) < 1e-9);
    }

    #[test]
    fn angle_handles_double_cover() {
        let q = Quat::from_axis_angle(Vec3::Z, 0.4);
        let neg = Quat {
            w: -q.w,
            x: -q.x,
            y: -q.y,
            z: -q.z,
        };
        // q and -q are the same rotation.
        assert!(q.angle_to(&neg) < 1e-9);
    }

    #[test]
    fn slerp_endpoints_and_halfway() {
        let qa = Quat::from_axis_angle(Vec3::Z, 0.0);
        let qb = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(qa.slerp(&qb, 0.0).angle_to(&qa) < 1e-9);
        assert!(qa.slerp(&qb, 1.0).angle_to(&qb) < 1e-9);
        let mid = qa.slerp(&qb, 0.5);
        let expect = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2 / 2.0);
        assert!(mid.angle_to(&expect) < 1e-9);
    }

    #[test]
    fn slerp_takes_short_arc() {
        let qa = Quat::from_axis_angle(Vec3::Z, 0.1);
        let qb = Quat::from_axis_angle(Vec3::Z, 0.3);
        let qb_neg = Quat {
            w: -qb.w,
            x: -qb.x,
            y: -qb.y,
            z: -qb.z,
        };
        let m = qa.slerp(&qb_neg, 0.5);
        assert!(m.angle_to(&Quat::from_axis_angle(Vec3::Z, 0.2)) < 1e-9);
    }

    #[test]
    fn rotation_vector_constructor() {
        let rv = v3(0.0, 0.0, FRAC_PI_2);
        let q = Quat::from_rotation_vector(rv);
        assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
        let tiny = Quat::from_rotation_vector(v3(1e-14, 0.0, 0.0));
        assert!(tiny.angle() < 1e-10);
    }
}
