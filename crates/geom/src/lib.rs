//! # cyclops-geom
//!
//! Minimal, dependency-free 3-D geometry kernel for the Cyclops FSO-VR link
//! reproduction.
//!
//! The Cyclops pointing pipeline (SIGCOMM '22, §4) is built almost entirely
//! out of a handful of geometric primitives:
//!
//! * [`Vec3`] / [`Mat3`] / [`Quat`] — vectors, rotation matrices and unit
//!   quaternions;
//! * [`rotation::axis_angle`] — the rotation matrix `R(r̂, θ)` used by the
//!   galvo-mirror model `G` to tilt mirror normals with applied voltage;
//! * [`Ray`] / [`Plane`] / [`reflect::reflect_ray`] — beam propagation and the
//!   mirror-reflection operator `R(p₀, x̂₀, n̂, q)` of §4.1;
//! * [`Pose`] — rigid transforms; the "12 mapping parameters" of §4.2 are two
//!   [`Pose6`] values (6 parameters each) mapping each GMA's K-space into
//!   VR-space.
//!
//! Everything is `f64`, deterministic and allocation-free. The crate
//! deliberately avoids external linear-algebra dependencies so that the
//! numerical behaviour of the reproduction is fully pinned down by this
//! repository.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod mat3;
pub mod plane;
pub mod pose;
pub mod quat;
pub mod ray;
pub mod reflect;
pub mod rotation;
pub mod units;
pub mod vec3;

pub use approx::{approx_eq, approx_eq_eps};
pub use mat3::Mat3;
pub use plane::Plane;
pub use pose::{Pose, Pose6};
pub use quat::Quat;
pub use ray::Ray;
pub use reflect::reflect_ray;
pub use vec3::Vec3;
