//! Unit conversions used throughout the workspace.
//!
//! Conventions: lengths in **metres**, angles in **radians**, time in
//! **seconds** internally; the paper reports mm, mrad, deg, cm/s, deg/s and
//! ms, so conversion helpers live here to keep call sites readable and
//! greppable.

/// Radians per degree.
pub const RAD_PER_DEG: f64 = std::f64::consts::PI / 180.0;

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * RAD_PER_DEG
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad / RAD_PER_DEG
}

/// Converts milliradians to radians.
#[inline]
pub fn mrad_to_rad(mrad: f64) -> f64 {
    mrad * 1e-3
}

/// Converts radians to milliradians.
#[inline]
pub fn rad_to_mrad(rad: f64) -> f64 {
    rad * 1e3
}

/// Converts millimetres to metres.
#[inline]
pub fn mm_to_m(mm: f64) -> f64 {
    mm * 1e-3
}

/// Converts metres to millimetres.
#[inline]
pub fn m_to_mm(m: f64) -> f64 {
    m * 1e3
}

/// Converts centimetres to metres.
#[inline]
pub fn cm_to_m(cm: f64) -> f64 {
    cm * 1e-2
}

/// Converts metres to centimetres.
#[inline]
pub fn m_to_cm(m: f64) -> f64 {
    m * 1e2
}

/// Converts inches to metres (the K-space board grid is 1-inch cells).
#[inline]
pub fn inch_to_m(inch: f64) -> f64 {
    inch * 0.0254
}

/// Converts milliseconds to seconds.
#[inline]
pub fn ms_to_s(ms: f64) -> f64 {
    ms * 1e-3
}

/// Converts seconds to milliseconds.
#[inline]
pub fn s_to_ms(s: f64) -> f64 {
    s * 1e3
}

/// Converts microseconds to seconds.
#[inline]
pub fn us_to_s(us: f64) -> f64 {
    us * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_radian_roundtrip() {
        assert!((deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-12);
        assert!((rad_to_deg(deg_to_rad(33.3)) - 33.3).abs() < 1e-12);
    }

    #[test]
    fn mrad() {
        assert!((mrad_to_rad(5.77) - 0.00577).abs() < 1e-15);
        assert!((rad_to_mrad(0.002) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lengths() {
        assert!((mm_to_m(16.0) - 0.016).abs() < 1e-15);
        assert!((m_to_mm(1.75) - 1750.0).abs() < 1e-9);
        assert!((cm_to_m(33.0) - 0.33).abs() < 1e-15);
        assert!((m_to_cm(0.14) - 14.0).abs() < 1e-12);
        assert!((inch_to_m(1.0) - 0.0254).abs() < 1e-15);
    }

    #[test]
    fn times() {
        assert!((ms_to_s(12.5) - 0.0125).abs() < 1e-15);
        assert!((s_to_ms(0.3) - 300.0).abs() < 1e-9);
        assert!((us_to_s(300.0) - 0.0003).abs() < 1e-15);
    }
}
