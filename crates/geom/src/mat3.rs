//! 3×3 matrices (mostly rotation matrices).

use crate::vec3::{v3, Vec3};
use std::ops::{Add, Mul, Sub};

/// A 3×3 matrix stored row-major.
///
/// In Cyclops these are almost always rotation matrices: the voltage-to-normal
/// map of the galvo-mirror model `G` rotates mirror normals with
/// [`crate::rotation::axis_angle`], and [`crate::pose::Pose`] composes a
/// rotation with a translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [Vec3; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [v3(1.0, 0.0, 0.0), v3(0.0, 1.0, 0.0), v3(0.0, 0.0, 1.0)],
    };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 {
        rows: [Vec3::ZERO, Vec3::ZERO, Vec3::ZERO],
    };

    /// Builds a matrix from three rows.
    #[inline]
    pub const fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Builds a matrix from three columns.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3::from_rows(
            v3(c0.x, c1.x, c2.x),
            v3(c0.y, c1.y, c2.y),
            v3(c0.z, c1.z, c2.z),
        )
    }

    /// Column `i` of the matrix.
    #[inline]
    pub fn col(&self, i: usize) -> Vec3 {
        v3(self.rows[0][i], self.rows[1][i], self.rows[2][i])
    }

    /// Matrix entry at (row, col).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.rows[r][c]
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_cols(self.rows[0], self.rows[1], self.rows[2])
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.rows[0].dot(self.rows[1].cross(self.rows[2]))
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.at(0, 0) + self.at(1, 1) + self.at(2, 2)
    }

    /// General matrix inverse.
    ///
    /// Returns `None` when the matrix is singular (|det| below `1e-300`).
    /// For rotation matrices prefer [`Mat3::transpose`], which is exact.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-300 {
            return None;
        }
        let r = &self.rows;
        // Adjugate / determinant, built from cross products of rows:
        // inverse columns are cross products of row pairs.
        let c0 = r[1].cross(r[2]) / d;
        let c1 = r[2].cross(r[0]) / d;
        let c2 = r[0].cross(r[1]) / d;
        // These are the rows of the inverse transpose, i.e. columns of inverse
        // transpose... careful: A^{-1} = adj(A)/det, adj rows are cofactors of
        // columns. Using the identity: (A^{-1})^T has rows r1×r2/d, r2×r0/d,
        // r0×r1/d. So the inverse is the transpose of that.
        Some(Mat3::from_rows(c0, c1, c2).transpose())
    }

    /// True if this matrix is a proper rotation: `RᵀR = I` and `det = +1`,
    /// within tolerance `eps`.
    pub fn is_rotation(&self, eps: f64) -> bool {
        let should_be_identity = self.transpose() * *self;
        let mut max_dev: f64 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                max_dev = max_dev.max((should_be_identity.at(r, c) - expect).abs());
            }
        }
        max_dev <= eps && (self.det() - 1.0).abs() <= eps
    }

    /// Maximum absolute entry of `self - other` (for tests/convergence).
    pub fn max_abs_diff(&self, other: &Mat3) -> f64 {
        let mut m: f64 = 0.0;
        for r in 0..3 {
            m = m.max((self.rows[r] - other.rows[r]).abs_max());
        }
        m
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v3(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, rhs: Mat3) -> Mat3 {
        Mat3::from_cols(self * rhs.col(0), self * rhs.col(1), self * rhs.col(2))
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    #[inline]
    fn mul(self, s: f64) -> Mat3 {
        Mat3::from_rows(self.rows[0] * s, self.rows[1] * s, self.rows[2] * s)
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    #[inline]
    fn add(self, rhs: Mat3) -> Mat3 {
        Mat3::from_rows(
            self.rows[0] + rhs.rows[0],
            self.rows[1] + rhs.rows[1],
            self.rows[2] + rhs.rows[2],
        )
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    #[inline]
    fn sub(self, rhs: Mat3) -> Mat3 {
        Mat3::from_rows(
            self.rows[0] - rhs.rows[0],
            self.rows[1] - rhs.rows[1],
            self.rows[2] - rhs.rows[2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::axis_angle;

    #[test]
    fn identity_is_neutral() {
        let v = v3(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        let r = axis_angle(v3(0.0, 0.0, 1.0), 0.3);
        assert!((Mat3::IDENTITY * r).max_abs_diff(&r) < 1e-15);
        assert!((r * Mat3::IDENTITY).max_abs_diff(&r) < 1e-15);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat3::from_rows(v3(1.0, 2.0, 3.0), v3(4.0, 5.0, 6.0), v3(7.0, 8.0, 10.0));
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn det_of_known_matrix() {
        let m = Mat3::from_rows(v3(1.0, 2.0, 3.0), v3(4.0, 5.0, 6.0), v3(7.0, 8.0, 10.0));
        assert!((m.det() - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_of_general_matrix() {
        let m = Mat3::from_rows(v3(2.0, 0.0, 1.0), v3(1.0, 3.0, -1.0), v3(0.0, 1.0, 4.0));
        let inv = m.inverse().unwrap();
        assert!((m * inv).max_abs_diff(&Mat3::IDENTITY) < 1e-12);
        assert!((inv * m).max_abs_diff(&Mat3::IDENTITY) < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows(v3(1.0, 2.0, 3.0), v3(2.0, 4.0, 6.0), v3(0.0, 1.0, 0.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn rotation_detection() {
        let r = axis_angle(v3(1.0, 1.0, 0.2).normalized(), 1.1);
        assert!(r.is_rotation(1e-12));
        let not_rot = Mat3::from_rows(v3(2.0, 0.0, 0.0), v3(0.0, 1.0, 0.0), v3(0.0, 0.0, 1.0));
        assert!(!not_rot.is_rotation(1e-12));
        // Reflection: orthogonal but det = -1.
        let refl = Mat3::from_rows(v3(-1.0, 0.0, 0.0), v3(0.0, 1.0, 0.0), v3(0.0, 0.0, 1.0));
        assert!(!refl.is_rotation(1e-12));
    }

    #[test]
    fn matrix_vector_consistency_with_cols() {
        let m = Mat3::from_cols(v3(1.0, 0.0, 0.0), v3(1.0, 1.0, 0.0), v3(1.0, 1.0, 1.0));
        assert_eq!(m * Vec3::X, v3(1.0, 0.0, 0.0));
        assert_eq!(m * Vec3::Y, v3(1.0, 1.0, 0.0));
        assert_eq!(m * Vec3::Z, v3(1.0, 1.0, 1.0));
    }

    #[test]
    fn mat_mul_associative_with_vector() {
        let a = axis_angle(Vec3::X, 0.4);
        let b = axis_angle(Vec3::Z, -0.7);
        let v = v3(0.3, 1.2, -0.5);
        let lhs = (a * b) * v;
        let rhs = a * (b * v);
        assert!((lhs - rhs).norm() < 1e-12);
    }
}
