//! Floating-point comparison helpers used across the workspace's tests and
//! convergence checks.

/// Default absolute/relative tolerance used by [`approx_eq`].
pub const DEFAULT_EPS: f64 = 1e-9;

/// True if `a` and `b` are equal within a mixed absolute/relative tolerance
/// `eps` (absolute for small magnitudes, relative for large ones).
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= eps {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= eps * scale
}

/// [`approx_eq_eps`] with [`DEFAULT_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// Asserts two floats are approximately equal, with a useful failure message.
#[macro_export]
macro_rules! assert_approx_eq {
    ($a:expr, $b:expr) => {
        $crate::assert_approx_eq!($a, $b, $crate::approx::DEFAULT_EPS)
    };
    ($a:expr, $b:expr, $eps:expr) => {{
        let (a, b) = ($a, $b);
        assert!(
            $crate::approx::approx_eq_eps(a, b, $eps),
            "assert_approx_eq failed: {} vs {} (eps = {})",
            a,
            b,
            $eps
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_tolerance_near_zero() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn relative_tolerance_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.001e12));
    }

    #[test]
    fn macro_works() {
        assert_approx_eq!(1.0, 1.0 + 1e-12);
        assert_approx_eq!(100.0, 100.5, 0.01);
    }

    #[test]
    #[should_panic]
    fn macro_fails_loudly() {
        assert_approx_eq!(1.0, 2.0);
    }
}
