//! Rays — the representation of optical beams' chief axis.
//!
//! The paper's GMA model `G(v₁, v₂) = (p, x̂)` outputs exactly a ray: the
//! beam's originating point `p` on the second galvo mirror and its direction
//! `x̂` (§4.1, Fig. 7).

use crate::vec3::Vec3;

/// A ray: origin point plus unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Origin point (metres).
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing the direction.
    pub fn new(origin: Vec3, dir: Vec3) -> Ray {
        Ray {
            origin,
            dir: dir.normalized(),
        }
    }

    /// The point `origin + t·dir`.
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Parameter `t` of the point on the ray's supporting line closest to `p`
    /// (may be negative: behind the origin).
    #[inline]
    pub fn closest_t(&self, p: Vec3) -> f64 {
        (p - self.origin).dot(self.dir)
    }

    /// The point on the ray's supporting line closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        self.point_at(self.closest_t(p))
    }

    /// Perpendicular distance from `p` to the ray's supporting line.
    ///
    /// This is the "does the beam pass through the target point τ" metric of
    /// the `G'` iteration (§4.3).
    #[inline]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        (p - self.closest_point(p)).norm()
    }

    /// Minimum distance between the supporting lines of two rays.
    ///
    /// Used to verify Lemma 1: at perfect alignment the TX beam and the RX
    /// "imaginary beam" must be the same line, i.e. mutual distance zero.
    pub fn line_distance(&self, other: &Ray) -> f64 {
        let n = self.dir.cross(other.dir);
        let w = other.origin - self.origin;
        let n_norm = n.norm();
        if n_norm < 1e-12 {
            // Parallel lines: perpendicular distance of other's origin.
            return self.distance_to_point(other.origin);
        }
        (w.dot(n) / n_norm).abs()
    }

    /// Angle between the two rays' directions, radians in `[0, π]`.
    #[inline]
    pub fn angle_to(&self, other: &Ray) -> f64 {
        self.dir.angle_to(other.dir)
    }

    /// The ray with reversed direction from the same origin.
    #[inline]
    pub fn reversed(&self) -> Ray {
        Ray {
            origin: self.origin,
            dir: -self.dir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    #[test]
    fn construction_normalizes() {
        let r = Ray::new(Vec3::ZERO, v3(0.0, 0.0, 5.0));
        assert!(r.dir.is_unit(1e-12));
        assert_eq!(r.dir, Vec3::Z);
    }

    #[test]
    fn point_at_walks_along_direction() {
        let r = Ray::new(v3(1.0, 0.0, 0.0), Vec3::Y);
        assert_eq!(r.point_at(3.0), v3(1.0, 3.0, 0.0));
        assert_eq!(r.point_at(-1.0), v3(1.0, -1.0, 0.0));
    }

    #[test]
    fn closest_point_projects() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let p = v3(2.0, 5.0, 0.0);
        assert_eq!(r.closest_point(p), v3(2.0, 0.0, 0.0));
        assert!((r.distance_to_point(p) - 5.0).abs() < 1e-12);
        assert!((r.closest_t(p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_zero_on_the_ray() {
        let r = Ray::new(v3(1.0, 1.0, 1.0), v3(1.0, 2.0, 3.0));
        assert!(r.distance_to_point(r.point_at(7.7)) < 1e-12);
    }

    #[test]
    fn skew_line_distance() {
        // Line 1 along X through origin; line 2 along Y through (0, 0, 2).
        let a = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Ray::new(v3(0.0, 0.0, 2.0), Vec3::Y);
        assert!((a.line_distance(&b) - 2.0).abs() < 1e-12);
        assert!((b.line_distance(&a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_line_distance() {
        let a = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Ray::new(v3(5.0, 3.0, 4.0), Vec3::X);
        assert!((a.line_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn intersecting_lines_distance_zero() {
        let a = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Ray::new(v3(1.0, -1.0, 0.0), Vec3::Y);
        assert!(a.line_distance(&b) < 1e-12);
    }

    #[test]
    fn angle_between_rays() {
        let a = Ray::new(Vec3::ZERO, Vec3::X);
        let b = Ray::new(v3(9.0, 9.0, 9.0), Vec3::Y);
        assert!((a.angle_to(&b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((a.angle_to(&a.reversed()) - std::f64::consts::PI).abs() < 1e-12);
    }
}
