//! Rigid transforms (poses) and their 6-parameter encoding.
//!
//! §4.2 of the paper learns "12 mapping parameters": two rigid transforms
//! (six parameters each, per Corke \[30\]) that place the TX-GMA's K-space in
//! VR-space and the RX-GMA's K-space relative to the headset's tracked point.
//! [`Pose6`] is exactly that 6-parameter encoding (rotation vector +
//! translation), and the Levenberg–Marquardt fit in `cyclops-core` optimizes
//! over two of them.

use crate::mat3::Mat3;
use crate::quat::Quat;
use crate::ray::Ray;
use crate::rotation::{from_rotation_vector, to_rotation_vector};
use crate::vec3::Vec3;

/// A rigid transform: `x ↦ R·x + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Rotation part.
    pub rot: Mat3,
    /// Translation part.
    pub trans: Vec3,
}

impl Pose {
    /// The identity transform.
    pub const IDENTITY: Pose = Pose {
        rot: Mat3::IDENTITY,
        trans: Vec3::ZERO,
    };

    /// Builds a pose from rotation matrix and translation.
    pub fn new(rot: Mat3, trans: Vec3) -> Pose {
        Pose { rot, trans }
    }

    /// Builds a pose from a unit quaternion and translation.
    pub fn from_quat(q: Quat, trans: Vec3) -> Pose {
        Pose {
            rot: q.to_matrix(),
            trans,
        }
    }

    /// Pure translation.
    pub fn translation(t: Vec3) -> Pose {
        Pose {
            rot: Mat3::IDENTITY,
            trans: t,
        }
    }

    /// Pure rotation.
    pub fn rotation(r: Mat3) -> Pose {
        Pose {
            rot: r,
            trans: Vec3::ZERO,
        }
    }

    /// Transforms a point.
    #[inline]
    pub fn apply_point(&self, p: Vec3) -> Vec3 {
        self.rot * p + self.trans
    }

    /// Transforms a direction (rotation only, no translation).
    #[inline]
    pub fn apply_dir(&self, d: Vec3) -> Vec3 {
        self.rot * d
    }

    /// Transforms a ray (origin as point, direction as direction).
    #[inline]
    pub fn apply_ray(&self, r: &Ray) -> Ray {
        Ray::new(self.apply_point(r.origin), self.apply_dir(r.dir))
    }

    /// Composition: `(a.compose(b)).apply(x) == a.apply(b.apply(x))`.
    #[inline]
    pub fn compose(&self, other: &Pose) -> Pose {
        Pose {
            rot: self.rot * other.rot,
            trans: self.rot * other.trans + self.trans,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Pose {
        let rt = self.rot.transpose();
        Pose {
            rot: rt,
            trans: -(rt * self.trans),
        }
    }

    /// Orientation as a unit quaternion.
    pub fn quat(&self) -> Quat {
        Quat::from_matrix(&self.rot)
    }

    /// True if the rotation part is a proper rotation.
    pub fn is_rigid(&self, eps: f64) -> bool {
        self.rot.is_rotation(eps)
    }

    /// Encodes the pose as six parameters (rotation vector, translation).
    pub fn to_params(&self) -> Pose6 {
        Pose6 {
            rv: to_rotation_vector(&self.rot),
            t: self.trans,
        }
    }
}

impl Default for Pose {
    fn default() -> Self {
        Pose::IDENTITY
    }
}

/// Six-parameter encoding of a rigid transform: rotation vector `rv`
/// (axis × angle) and translation `t`.
///
/// This is the representation the §4.2 mapping fit optimizes over (two of
/// these = the paper's "12 mapping parameters").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose6 {
    /// Rotation vector (radians).
    pub rv: Vec3,
    /// Translation (metres).
    pub t: Vec3,
}

impl Pose6 {
    /// Builds from explicit rotation-vector and translation components.
    pub fn new(rv: Vec3, t: Vec3) -> Pose6 {
        Pose6 { rv, t }
    }

    /// Decodes into a full [`Pose`].
    pub fn to_pose(&self) -> Pose {
        Pose {
            rot: from_rotation_vector(self.rv),
            trans: self.t,
        }
    }

    /// Flattens into a `[f64; 6]` parameter vector (for the solver).
    pub fn to_array(&self) -> [f64; 6] {
        [
            self.rv.x, self.rv.y, self.rv.z, self.t.x, self.t.y, self.t.z,
        ]
    }

    /// Rebuilds from a `[f64; 6]` parameter vector.
    pub fn from_array(a: [f64; 6]) -> Pose6 {
        Pose6 {
            rv: Vec3::new(a[0], a[1], a[2]),
            t: Vec3::new(a[3], a[4], a[5]),
        }
    }

    /// Reads six parameters from a slice (panics if shorter than 6).
    pub fn from_slice(s: &[f64]) -> Pose6 {
        Pose6::from_array([s[0], s[1], s[2], s[3], s[4], s[5]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::axis_angle;
    use crate::vec3::v3;
    use std::f64::consts::FRAC_PI_2;

    fn sample_pose() -> Pose {
        Pose::new(
            axis_angle(v3(0.2, 0.3, 0.93).normalized(), 0.77),
            v3(1.0, -2.0, 0.5),
        )
    }

    #[test]
    fn identity_is_neutral() {
        let p = v3(3.0, 1.0, -4.0);
        assert_eq!(Pose::IDENTITY.apply_point(p), p);
        let pose = sample_pose();
        let c = Pose::IDENTITY.compose(&pose);
        assert!((c.apply_point(p) - pose.apply_point(p)).norm() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let pose = sample_pose();
        let p = v3(0.1, 0.2, 0.3);
        let q = pose.inverse().apply_point(pose.apply_point(p));
        assert!((q - p).norm() < 1e-12);
        let id = pose.compose(&pose.inverse());
        assert!(id.rot.max_abs_diff(&Mat3::IDENTITY) < 1e-12);
        assert!(id.trans.norm() < 1e-12);
    }

    #[test]
    fn composition_order() {
        let a = Pose::translation(v3(1.0, 0.0, 0.0));
        let b = Pose::rotation(axis_angle(Vec3::Z, FRAC_PI_2));
        // a∘b: rotate first, then translate.
        let p = Vec3::X;
        let got = a.compose(&b).apply_point(p);
        assert!((got - v3(1.0, 1.0, 0.0)).norm() < 1e-12);
        // b∘a: translate first, then rotate.
        let got2 = b.compose(&a).apply_point(p);
        assert!((got2 - v3(0.0, 2.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn directions_ignore_translation() {
        let pose = Pose::translation(v3(5.0, 5.0, 5.0));
        assert_eq!(pose.apply_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn ray_transform_preserves_structure() {
        let pose = sample_pose();
        let ray = Ray::new(v3(0.0, 1.0, 0.0), v3(1.0, 0.0, 0.0));
        let tr = pose.apply_ray(&ray);
        assert!(tr.dir.is_unit(1e-12));
        // A point along the ray maps to a point along the transformed ray.
        let p = ray.point_at(2.5);
        let tp = pose.apply_point(p);
        assert!(tr.distance_to_point(tp) < 1e-12);
    }

    #[test]
    fn params_roundtrip() {
        let pose = sample_pose();
        let p6 = pose.to_params();
        let back = p6.to_pose();
        assert!(back.rot.max_abs_diff(&pose.rot) < 1e-9);
        assert!((back.trans - pose.trans).norm() < 1e-12);
        // Array round-trip too.
        let p6b = Pose6::from_array(p6.to_array());
        assert_eq!(p6, p6b);
        let p6c = Pose6::from_slice(&p6.to_array());
        assert_eq!(p6, p6c);
    }

    #[test]
    fn rigidity_check() {
        assert!(sample_pose().is_rigid(1e-12));
        let bad = Pose::new(Mat3::IDENTITY * 2.0, Vec3::ZERO);
        assert!(!bad.is_rigid(1e-9));
    }

    #[test]
    fn quat_matches_rotation() {
        let pose = sample_pose();
        let v = v3(0.3, 0.4, 0.5);
        assert!((pose.quat().rotate(v) - pose.rot * v).norm() < 1e-10);
    }
}
