//! Full-physics multi-TX operation — the §3 occlusion/coverage extension on
//! top of the *real* pipeline (trained TP per ceiling unit, genuine optics,
//! genuine SFP re-lock), rather than the geometric sketch in
//! [`crate::handover`].
//!
//! Construction: several [`Deployment`]s built from the **same seed** (one
//! physical headset/RX world) with different `tx_position`s, each with its
//! own trained [`TpController`]. Per slot the simulator:
//!
//! 1. advances the occluders and the headset motion (pose synced to every
//!    unit);
//! 2. lets the active unit's TP act on tracking reports;
//! 3. computes the active unit's received power, gated by line-of-sight
//!    through the occluders;
//! 4. hands over when the active unit has been dark for a debounce interval:
//!    picks the best unoccluded unit, re-points it once from the latest
//!    report, and lets the SFP state machine pay the re-lock on the new
//!    unit.

use crate::handover::Occluder;
use crate::sfp_state::SfpLinkState;
use cyclops_core::deployment::Deployment;
use cyclops_core::mapping::noisy_report_of;
use cyclops_core::tp::TpController;
use cyclops_vrh::motion::Motion;
use cyclops_vrh::tracking::TrackerConfig;
use rand::Rng;

/// One ceiling unit: its world (with its TX) plus its trained controller.
#[derive(Debug, Clone)]
pub struct TxInstallation {
    /// The unit's deployment (shares the headset world with its siblings).
    pub dep: Deployment,
    /// The unit's trained TP controller.
    pub ctl: TpController,
}

/// Per-slot record of the multi-TX simulation.
#[derive(Debug, Clone, Copy)]
pub struct MultiTxSlot {
    /// Slot end time (s).
    pub t: f64,
    /// Index of the active unit.
    pub active: usize,
    /// Whether the active unit currently has line of sight.
    pub los: bool,
    /// Received power on the active unit (dBm; −90 floor).
    pub power_dbm: f64,
    /// Whether the SFP link is up (delivering data).
    pub link_up: bool,
}

/// The multi-TX simulator.
#[derive(Debug)]
pub struct MultiTxSimulator<M: Motion> {
    /// The installed units.
    pub units: Vec<TxInstallation>,
    /// Headset motion.
    pub motion: M,
    /// Moving occluders.
    pub occluders: Vec<Occluder>,
    /// Tracker timing config (shared).
    pub tracker: TrackerConfig,
    /// Dark time on the active unit before a handover is attempted (s).
    pub handover_debounce_s: f64,
    active: usize,
    sfp: SfpLinkState,
    dark_s: f64,
    next_report_t: f64,
    t: f64,
    /// Cached TX aperture positions (ceiling units do not move).
    tx_positions: Vec<cyclops_geom::vec3::Vec3>,
}

impl<M: Motion> MultiTxSimulator<M> {
    /// Creates the simulator; unit 0 starts active and aligned to the
    /// motion's initial pose.
    pub fn new(
        mut units: Vec<TxInstallation>,
        mut motion: M,
        occluders: Vec<Occluder>,
    ) -> MultiTxSimulator<M> {
        assert!(!units.is_empty());
        let relink = units[0].dep.design.sfp.relink_time_s;
        let pose0 = motion.pose_at(0.0);
        for u in units.iter_mut() {
            u.dep.set_headset_pose(pose0);
        }
        // Align unit 0.
        let tracker = TrackerConfig::default();
        let clean = units[0].dep.headset.true_reported_pose();
        let rep = noisy_report_of(clean, &tracker, units[0].dep.rng());
        let cmd = units[0].ctl.on_report(&rep);
        units[0].dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        let tx_positions = units.iter().map(|u| u.dep.tx_world_params().q2).collect();
        MultiTxSimulator {
            units,
            motion,
            occluders,
            tracker,
            handover_debounce_s: 0.03,
            active: 0,
            sfp: SfpLinkState::new_up(relink),
            dark_s: 0.0,
            next_report_t: 0.0,
            t: 0.0,
            tx_positions,
        }
    }

    /// Index of the currently active unit.
    pub fn active(&self) -> usize {
        self.active
    }

    fn unit_los(&self, i: usize, rx_pos: cyclops_geom::vec3::Vec3) -> bool {
        let tx_pos = self.tx_positions[i];
        !self.occluders.iter().any(|o| o.blocks(tx_pos, rx_pos))
    }

    /// Runs for `duration_s` at 1 ms slots.
    pub fn run(&mut self, duration_s: f64) -> Vec<MultiTxSlot> {
        let slot = 1e-3;
        let n = (duration_s / slot).round() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t_slot = self.t + slot;

            // Occluders wander.
            for o in self.occluders.iter_mut() {
                o.step(slot);
            }

            // Headset pose, synced to every unit's world.
            let pose = self.motion.pose_at(t_slot);
            for u in self.units.iter_mut() {
                u.dep.set_headset_pose(pose);
            }
            let rx_pos = self.units[self.active].dep.rx_world_params().q2;

            // Tracking reports drive the active unit's TP.
            while self.next_report_t <= t_slot {
                let rt = self.next_report_t;
                let c = self.tracker;
                let period = c.draw_period(self.units[self.active].dep.rng());
                self.next_report_t = rt + period;
                if c.report_loss_prob > 0.0
                    && self.units[self.active]
                        .dep
                        .rng()
                        .gen_bool(c.report_loss_prob)
                {
                    continue; // lost in the control channel
                }
                let u = &mut self.units[self.active];
                let clean = u.dep.headset.true_reported_pose();
                let rep = noisy_report_of(clean, &self.tracker, u.dep.rng());
                let cmd = u.ctl.on_report(&rep);
                u.dep.set_voltages(
                    cmd.voltages[0],
                    cmd.voltages[1],
                    cmd.voltages[2],
                    cmd.voltages[3],
                );
            }

            // Active unit's optics, gated by line of sight.
            let los = self.unit_los(self.active, rx_pos);
            let power = if los {
                self.units[self.active].dep.received_power_dbm()
            } else {
                Deployment::POWER_METER_FLOOR_DBM
            };
            let sens = self.units[self.active].dep.design.sfp.rx_sensitivity_dbm;
            let signal = power >= sens;
            if signal {
                self.dark_s = 0.0;
            } else {
                self.dark_s += slot;
            }

            // Handover after the debounce: best unoccluded sibling.
            if self.dark_s >= self.handover_debounce_s && self.units.len() > 1 {
                if let Some(best) = (0..self.units.len())
                    .filter(|&i| i != self.active && self.unit_los(i, rx_pos))
                    .min_by(|&a, &b| {
                        let da = self.tx_positions[a].distance(rx_pos);
                        let db = self.tx_positions[b].distance(rx_pos);
                        da.partial_cmp(&db).unwrap()
                    })
                {
                    self.active = best;
                    self.dark_s = 0.0;
                    // One immediate TP shot on the new unit.
                    let u = &mut self.units[best];
                    let clean = u.dep.headset.true_reported_pose();
                    let rep = noisy_report_of(clean, &self.tracker, u.dep.rng());
                    let cmd = u.ctl.on_report(&rep);
                    u.dep.set_voltages(
                        cmd.voltages[0],
                        cmd.voltages[1],
                        cmd.voltages[2],
                        cmd.voltages[3],
                    );
                }
            }

            let up = self.sfp.step(signal, slot);
            out.push(MultiTxSlot {
                t: t_slot,
                active: self.active,
                los,
                power_dbm: power,
                link_up: up,
            });
            self.t = t_slot;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::pose::Pose;
    use cyclops_geom::vec3::v3;
    use cyclops_vrh::motion::StaticPose;

    /// Two fully-trained installations sharing one headset world.
    fn two_units(seed: u64) -> Vec<TxInstallation> {
        use cyclops_core::deployment::DeploymentConfig;
        use cyclops_core::kspace::{train_both, BoardConfig};
        use cyclops_core::mapping::{self, rough_initial_guess};
        use cyclops_core::tp::{TpConfig, TpController};
        let board = BoardConfig {
            cols: 10,
            rows: 8,
            cell_m: 0.0508,
        };
        [v3(-0.35, 0.0, 0.0), v3(0.35, 0.0, 0.0)]
            .into_iter()
            .map(|pos| {
                let mut cfg = DeploymentConfig::paper_10g(seed);
                cfg.tx_position = pos;
                let mut dep = Deployment::new(&cfg);
                let (tx_tr, tx_rig, rx_tr, rx_rig) = train_both(&dep, &board, seed);
                let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
                let mt = mapping::train(
                    &mut dep,
                    &tx_tr.fitted,
                    &rx_tr.fitted,
                    itx,
                    irx,
                    12,
                    seed + 9,
                );
                let v = dep.voltages();
                let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
                TxInstallation { dep, ctl }
            })
            .collect()
    }

    #[test]
    fn units_share_one_headset_world() {
        let units = two_units(901);
        // Same hidden headset config (same seed) but different TX positions.
        let h0 = units[0].dep.headset.hidden_config().vr_from_world.trans;
        let h1 = units[1].dep.headset.hidden_config().vr_from_world.trans;
        assert!((h0 - h1).norm() < 1e-12, "hidden worlds must match");
        let t0 = units[0].dep.tx_world_params().q2;
        let t1 = units[1].dep.tx_world_params().q2;
        assert!((t0 - t1).norm() > 0.5, "TX units must be installed apart");
    }

    #[test]
    fn occlusion_triggers_physical_handover() {
        let units = two_units(902);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        // Park an occluder permanently on unit 0's line of sight.
        let tx0 = units[0].dep.tx_world_params().q2;
        let rx = v3(0.0, 0.0, 1.75);
        let mid = tx0.lerp(rx, 0.5);
        let occ = Occluder::new(mid, 0.12, 0.0, 1);
        let mut sim = MultiTxSimulator::new(units, motion, vec![occ]);
        assert_eq!(sim.active(), 0);
        let recs = sim.run(4.0);
        // Handover happened...
        assert_eq!(sim.active(), 1, "should have switched to unit 1");
        // ...and after the SFP re-lock, data flows again on real optics.
        let tail = &recs[recs.len() - 200..];
        let up = tail.iter().filter(|r| r.link_up).count();
        assert!(
            up > 190,
            "link should be up on unit 1 at the end ({up}/200)"
        );
        // The outage is dominated by the SFP re-lock, not the steering.
        let first_up_again = recs
            .iter()
            .position(|r| r.active == 1 && r.link_up)
            .expect("must recover");
        let outage_s = recs[first_up_again].t;
        assert!(
            (2.0..3.5).contains(&outage_s),
            "recovery after ≈ relink time, got {outage_s}s"
        );
    }

    #[test]
    fn no_occluder_means_no_handover() {
        let units = two_units(903);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let mut sim = MultiTxSimulator::new(units, motion, vec![]);
        let recs = sim.run(1.0);
        assert_eq!(sim.active(), 0);
        let up = recs.iter().filter(|r| r.link_up).count();
        assert!(up as f64 / recs.len() as f64 > 0.98);
    }
}
