//! Full-physics multi-TX operation — the §3 occlusion/coverage extension on
//! top of the *real* pipeline (trained TP per ceiling unit, genuine optics,
//! genuine SFP re-lock), rather than the geometric sketch in
//! [`crate::handover`].
//!
//! Since the engine refactor this module is a thin façade:
//! [`MultiTxSimulator`] is a [`LinkSession`]
//! with the multi-TX profile — slot-start pose sync to every unit, immediate
//! TP commands, line-of-sight gating through the occluders, and the
//! [`DarkDebounce`] selector (after a dark debounce, hand over to the
//! nearest unoccluded sibling and pay the SFP re-lock there). Outputs are
//! bit-identical to the pre-refactor loop per seed.
//!
//! **Deprecation note.** This façade is kept for the paper-figure binaries
//! and older tests; new code should build sessions directly with
//! [`LinkSession::builder`] (`.units(..).occluders(..).selector(..)`), which
//! validates its configuration and accepts a telemetry layer (see
//! [`crate::telemetry`]). [`TxInstallation`]
//! now lives in [`crate::engine`].

use crate::engine::{DarkDebounce, EngineConfig, FirstReport, LinkSession, TxInstallation};
use crate::handover::Occluder;
use cyclops_vrh::motion::Motion;
use cyclops_vrh::tracking::TrackerConfig;

/// Per-slot record of the multi-TX simulation.
#[derive(Debug, Clone, Copy)]
pub struct MultiTxSlot {
    /// Slot end time (s).
    pub t: f64,
    /// Index of the active unit.
    pub active: usize,
    /// Whether the active unit currently has line of sight.
    pub los: bool,
    /// Received power on the active unit (dBm; −90 floor).
    pub power_dbm: f64,
    /// Whether the SFP link is up (delivering data).
    pub link_up: bool,
}

/// The multi-TX simulator: a [`LinkSession`] over several installations
/// with the dark-debounce nearest-sibling selector.
#[derive(Debug)]
pub struct MultiTxSimulator<M: Motion> {
    session: LinkSession<M, DarkDebounce>,
}

impl<M: Motion> MultiTxSimulator<M> {
    /// Creates the simulator; unit 0 starts active and aligned to the
    /// motion's initial pose.
    pub fn new(
        units: Vec<TxInstallation>,
        motion: M,
        occluders: Vec<Occluder>,
    ) -> MultiTxSimulator<M> {
        let cfg = EngineConfig::multi_tx(TrackerConfig::default());
        assert!(!units.is_empty(), "need at least one TX installation");
        MultiTxSimulator {
            session: LinkSession::builder(motion)
                .units(units)
                .occluders(occluders)
                .selector(DarkDebounce::new(0.03))
                .config(cfg)
                .first_report(FirstReport::AtZero)
                .build()
                .expect("multi-TX engine config must be valid"),
        }
    }

    /// Index of the currently active unit.
    pub fn active(&self) -> usize {
        self.session.active()
    }

    /// The installed units.
    pub fn units(&self) -> &[TxInstallation] {
        self.session.units()
    }

    /// The moving occluders (mutable, e.g. to script a trajectory).
    pub fn occluders_mut(&mut self) -> &mut [Occluder] {
        self.session.occluders_mut()
    }

    /// Runs for `duration_s` at 1 ms slots.
    pub fn run(&mut self, duration_s: f64) -> Vec<MultiTxSlot> {
        self.session
            .run(duration_s)
            .into_iter()
            .map(|r| MultiTxSlot {
                t: r.t,
                active: r.active,
                los: r.los,
                power_dbm: r.power_dbm,
                link_up: r.link_up,
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cyclops_core::deployment::Deployment;
    use cyclops_geom::pose::Pose;
    use cyclops_geom::vec3::v3;
    use cyclops_vrh::motion::StaticPose;

    /// Two fully-trained installations sharing one headset world.
    pub(crate) fn two_units(seed: u64) -> Vec<TxInstallation> {
        use cyclops_core::deployment::DeploymentConfig;
        use cyclops_core::kspace::{train_both, BoardConfig};
        use cyclops_core::mapping::{self, rough_initial_guess};
        use cyclops_core::tp::{TpConfig, TpController};
        let board = BoardConfig {
            cols: 10,
            rows: 8,
            cell_m: 0.0508,
        };
        [v3(-0.35, 0.0, 0.0), v3(0.35, 0.0, 0.0)]
            .into_iter()
            .map(|pos| {
                let mut cfg = DeploymentConfig::paper_10g(seed);
                cfg.tx_position = pos;
                let mut dep = Deployment::new(&cfg);
                let (tx_tr, tx_rig, rx_tr, rx_rig) =
                    train_both(&dep, &board, seed).expect("stage-1 training");
                let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
                let mt = mapping::train(
                    &mut dep,
                    &tx_tr.fitted,
                    &rx_tr.fitted,
                    itx,
                    irx,
                    12,
                    seed + 9,
                );
                let v = dep.voltages();
                let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
                TxInstallation { dep, ctl }
            })
            .collect()
    }

    #[test]
    fn units_share_one_headset_world() {
        let units = two_units(901);
        // Same hidden headset config (same seed) but different TX positions.
        let h0 = units[0].dep.headset.hidden_config().vr_from_world.trans;
        let h1 = units[1].dep.headset.hidden_config().vr_from_world.trans;
        assert!((h0 - h1).norm() < 1e-12, "hidden worlds must match");
        let t0 = units[0].dep.tx_world_params().q2;
        let t1 = units[1].dep.tx_world_params().q2;
        assert!((t0 - t1).norm() > 0.5, "TX units must be installed apart");
    }

    #[test]
    fn occlusion_triggers_physical_handover() {
        let units = two_units(902);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        // Park an occluder permanently on unit 0's line of sight.
        let tx0 = units[0].dep.tx_world_params().q2;
        let rx = v3(0.0, 0.0, 1.75);
        let mid = tx0.lerp(rx, 0.5);
        let occ = Occluder::new(mid, 0.12, 0.0, 1);
        let mut sim = MultiTxSimulator::new(units, motion, vec![occ]);
        assert_eq!(sim.active(), 0);
        let recs = sim.run(4.0);
        // Handover happened...
        assert_eq!(sim.active(), 1, "should have switched to unit 1");
        // ...and after the SFP re-lock, data flows again on real optics.
        let tail = &recs[recs.len() - 200..];
        let up = tail.iter().filter(|r| r.link_up).count();
        assert!(
            up > 190,
            "link should be up on unit 1 at the end ({up}/200)"
        );
        // The outage is dominated by the SFP re-lock, not the steering.
        let first_up_again = recs
            .iter()
            .position(|r| r.active == 1 && r.link_up)
            .expect("must recover");
        let outage_s = recs[first_up_again].t;
        assert!(
            (2.0..3.5).contains(&outage_s),
            "recovery after ≈ relink time, got {outage_s}s"
        );
    }

    #[test]
    fn no_occluder_means_no_handover() {
        let units = two_units(903);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let mut sim = MultiTxSimulator::new(units, motion, vec![]);
        let recs = sim.run(1.0);
        assert_eq!(sim.active(), 0);
        let up = recs.iter().filter(|r| r.link_up).count();
        assert!(up as f64 / recs.len() as f64 > 0.98);
    }
}
