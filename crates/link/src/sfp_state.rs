//! SFP/NIC link state machine.
//!
//! §5.3: "once the link is lost, it takes a few seconds to regain the link
//! partly due to the SFPs taking a few seconds to report that the link is
//! up, after receiving the light \[38\]." The machine below: the link drops as
//! soon as the optical signal falls below sensitivity (loss-of-signal is
//! fast), but after light returns the SFP + NIC must hold signal
//! continuously for `relink_time_s` before traffic flows again — which is
//! what makes every beam outage cost seconds of throughput in Figs 13–15.

/// Link state with re-lock hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct SfpLinkState {
    /// Required continuous signal time before the link re-establishes (s).
    pub relink_time_s: f64,
    up: bool,
    signal_held_s: f64,
}

impl SfpLinkState {
    /// Creates the machine in the *up* state (link starts aligned).
    pub fn new_up(relink_time_s: f64) -> SfpLinkState {
        SfpLinkState {
            relink_time_s,
            up: true,
            signal_held_s: 0.0,
        }
    }

    /// Creates the machine in the *down* state.
    pub fn new_down(relink_time_s: f64) -> SfpLinkState {
        SfpLinkState {
            relink_time_s,
            up: false,
            signal_held_s: 0.0,
        }
    }

    /// Advances by `dt` seconds with the given optical-signal presence.
    /// Returns whether the link is up after the step.
    ///
    /// Branch-light form: the hold timer and the up/down decision are both
    /// computed with boolean arithmetic so the per-slot call compiles to
    /// straight-line code (this runs once per slot per session in the
    /// engine's hot loop). Semantics are unchanged from the nested-if
    /// original: the timer accumulates only while *down with signal*, and
    /// re-lock fires once the accumulated hold reaches `relink_time_s`.
    #[inline]
    pub fn step(&mut self, signal_present: bool, dt: f64) -> bool {
        let accumulating = !self.up & signal_present;
        // The 1 ns slack absorbs float accumulation over thousands of
        // sub-millisecond slots; without it 2500 × 0.001 s sums just
        // under 2.5 s and re-lock lands a full slot late.
        self.signal_held_s = if accumulating {
            self.signal_held_s + dt
        } else {
            0.0
        };
        self.up = (self.up & signal_present)
            | (accumulating & (self.signal_held_s >= self.relink_time_s - 1e-9));
        self.up
    }

    /// Current state.
    #[inline]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Continuous signal-hold time accumulated toward re-lock (seconds);
    /// 0 while the link is up. Exposed for telemetry/diagnosis — outage
    /// post-mortems need to see how close a flapping link got to re-locking.
    pub fn signal_held_s(&self) -> f64 {
        if self.up {
            0.0
        } else {
            self.signal_held_s
        }
    }

    /// Fraction of the relink hold completed, in `[0, 1]`; 1 when up.
    pub fn relink_progress(&self) -> f64 {
        if self.up {
            1.0
        } else {
            (self.signal_held_s / self.relink_time_s).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_immediately_on_signal_loss() {
        let mut s = SfpLinkState::new_up(2.5);
        assert!(s.is_up());
        assert!(!s.step(false, 1e-3));
        assert!(!s.is_up());
    }

    #[test]
    fn relock_takes_seconds() {
        let mut s = SfpLinkState::new_up(2.5);
        s.step(false, 1e-3);
        // 2.4 s of good signal: still down.
        for _ in 0..2400 {
            assert!(!s.step(true, 1e-3));
        }
        // Another 0.2 s: up again.
        let mut up = false;
        for _ in 0..200 {
            up = s.step(true, 1e-3);
        }
        assert!(up);
    }

    #[test]
    fn relock_timer_resets_on_flicker() {
        let mut s = SfpLinkState::new_up(2.0);
        s.step(false, 1e-3);
        for _ in 0..1900 {
            s.step(true, 1e-3);
        }
        // One bad slot resets the hold timer.
        s.step(false, 1e-3);
        for _ in 0..1900 {
            assert!(!s.step(true, 1e-3), "must re-hold the full relink time");
        }
        for _ in 0..200 {
            s.step(true, 1e-3);
        }
        assert!(s.is_up());
    }

    #[test]
    fn relock_never_overshoots_by_more_than_one_step() {
        // Regression: re-lock must fire on the first step where accumulated
        // continuous signal reaches `relink_time_s` — i.e. after exactly
        // ceil(relink/dt) good steps — never a step late, at any step size.
        for &dt in &[1e-3, 7e-3, 0.05, 0.4, 2.5, 3.0] {
            let relink = 2.5;
            let mut s = SfpLinkState::new_up(relink);
            s.step(false, dt);
            let mut held = 0.0;
            loop {
                let up = s.step(true, dt);
                held += dt;
                assert!(
                    held < relink + dt + 1e-12,
                    "dt={dt}: still down after {held} s of signal"
                );
                if up {
                    break;
                }
            }
            assert!(held + 1e-12 >= relink, "dt={dt}: re-locked early at {held}");
            let expect_steps = (relink / dt).ceil();
            assert!(
                (held / dt - expect_steps).abs() < 1e-9,
                "dt={dt}: took {} steps, expected {expect_steps}",
                held / dt
            );
        }
    }

    #[test]
    fn periodic_flapping_faster_than_relink_never_relocks() {
        // Signal flaps every 2.0 s with relink_time 2.5 s: partial hold
        // progress (80 % of the way) must reset to zero on every flap, so
        // the link stays down indefinitely — and once the flapping stops it
        // still needs the FULL relink time (no residual credit).
        let relink = 2.5;
        let mut s = SfpLinkState::new_up(relink);
        s.step(false, 1e-3);
        for cycle in 0..10 {
            for k in 0..2000 {
                assert!(!s.step(true, 1e-3), "up mid-flap (cycle {cycle}, slot {k})");
            }
            assert!(!s.step(false, 1e-3));
        }
        for _ in 0..2499 {
            assert!(!s.step(true, 1e-3), "must re-hold the full relink time");
        }
        assert!(s.step(true, 1e-3), "re-lock exactly at relink_time_s");
    }

    #[test]
    fn down_slots_between_flaps_zero_the_hold_timer() {
        // Two bad slots in a row behave identically to one: the timer is
        // already zero, and subsequent re-lock timing is unaffected.
        let mut a = SfpLinkState::new_up(0.5);
        let mut b = SfpLinkState::new_up(0.5);
        a.step(false, 1e-3);
        b.step(false, 1e-3);
        b.step(false, 1e-3);
        let mut ups = (0, 0);
        for _ in 0..500 {
            ups.0 += a.step(true, 1e-3) as u32;
            ups.1 += b.step(true, 1e-3) as u32;
        }
        assert_eq!(ups.0, ups.1, "extra down slots must not shift re-lock");
        assert!(a.is_up() && b.is_up());
    }

    #[test]
    fn hold_accessors_track_relink_progress() {
        let mut s = SfpLinkState::new_up(2.0);
        assert_eq!(s.signal_held_s(), 0.0);
        assert_eq!(s.relink_progress(), 1.0);
        s.step(false, 1e-3);
        assert_eq!(s.signal_held_s(), 0.0);
        assert_eq!(s.relink_progress(), 0.0);
        for _ in 0..1000 {
            s.step(true, 1e-3);
        }
        assert!((s.signal_held_s() - 1.0).abs() < 1e-9);
        assert!((s.relink_progress() - 0.5).abs() < 1e-9);
        // A flap zeroes the hold; re-lock completion pins both at "up".
        s.step(false, 1e-3);
        assert_eq!(s.relink_progress(), 0.0);
        for _ in 0..2000 {
            s.step(true, 1e-3);
        }
        assert!(s.is_up());
        assert_eq!(s.signal_held_s(), 0.0);
        assert_eq!(s.relink_progress(), 1.0);
    }

    #[test]
    fn stays_up_with_signal() {
        let mut s = SfpLinkState::new_up(2.5);
        for _ in 0..10_000 {
            assert!(s.step(true, 1e-3));
        }
    }

    #[test]
    fn starts_down_when_requested() {
        let mut s = SfpLinkState::new_down(0.01);
        assert!(!s.is_up());
        for _ in 0..11 {
            s.step(true, 1e-3);
        }
        assert!(s.is_up());
    }
}
