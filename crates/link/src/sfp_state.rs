//! SFP/NIC link state machine.
//!
//! §5.3: "once the link is lost, it takes a few seconds to regain the link
//! partly due to the SFPs taking a few seconds to report that the link is
//! up, after receiving the light \[38\]." The machine below: the link drops as
//! soon as the optical signal falls below sensitivity (loss-of-signal is
//! fast), but after light returns the SFP + NIC must hold signal
//! continuously for `relink_time_s` before traffic flows again — which is
//! what makes every beam outage cost seconds of throughput in Figs 13–15.

/// Link state with re-lock hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct SfpLinkState {
    /// Required continuous signal time before the link re-establishes (s).
    pub relink_time_s: f64,
    up: bool,
    signal_held_s: f64,
}

impl SfpLinkState {
    /// Creates the machine in the *up* state (link starts aligned).
    pub fn new_up(relink_time_s: f64) -> SfpLinkState {
        SfpLinkState {
            relink_time_s,
            up: true,
            signal_held_s: 0.0,
        }
    }

    /// Creates the machine in the *down* state.
    pub fn new_down(relink_time_s: f64) -> SfpLinkState {
        SfpLinkState {
            relink_time_s,
            up: false,
            signal_held_s: 0.0,
        }
    }

    /// Advances by `dt` seconds with the given optical-signal presence.
    /// Returns whether the link is up after the step.
    pub fn step(&mut self, signal_present: bool, dt: f64) -> bool {
        if self.up {
            if !signal_present {
                self.up = false;
                self.signal_held_s = 0.0;
            }
        } else if signal_present {
            self.signal_held_s += dt;
            if self.signal_held_s >= self.relink_time_s {
                self.up = true;
            }
        } else {
            self.signal_held_s = 0.0;
        }
        self.up
    }

    /// Current state.
    pub fn is_up(&self) -> bool {
        self.up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_immediately_on_signal_loss() {
        let mut s = SfpLinkState::new_up(2.5);
        assert!(s.is_up());
        assert!(!s.step(false, 1e-3));
        assert!(!s.is_up());
    }

    #[test]
    fn relock_takes_seconds() {
        let mut s = SfpLinkState::new_up(2.5);
        s.step(false, 1e-3);
        // 2.4 s of good signal: still down.
        for _ in 0..2400 {
            assert!(!s.step(true, 1e-3));
        }
        // Another 0.2 s: up again.
        let mut up = false;
        for _ in 0..200 {
            up = s.step(true, 1e-3);
        }
        assert!(up);
    }

    #[test]
    fn relock_timer_resets_on_flicker() {
        let mut s = SfpLinkState::new_up(2.0);
        s.step(false, 1e-3);
        for _ in 0..1900 {
            s.step(true, 1e-3);
        }
        // One bad slot resets the hold timer.
        s.step(false, 1e-3);
        for _ in 0..1900 {
            assert!(!s.step(true, 1e-3), "must re-hold the full relink time");
        }
        for _ in 0..200 {
            s.step(true, 1e-3);
        }
        assert!(s.is_up());
    }

    #[test]
    fn stays_up_with_signal() {
        let mut s = SfpLinkState::new_up(2.5);
        for _ in 0..10_000 {
            assert!(s.step(true, 1e-3));
        }
    }

    #[test]
    fn starts_down_when_requested() {
        let mut s = SfpLinkState::new_down(0.01);
        assert!(!s.is_up());
        for _ in 0..11 {
            s.step(true, 1e-3);
        }
        assert!(s.is_up());
    }
}
