//! End-to-end 1 ms-slot link simulator: motion × tracking × TP × optics ×
//! data plane — the engine behind the throughput evaluations (Figs 13–15).
//!
//! Each slot:
//!
//! 1. deliver any VRH-T reports that fell due (the tracker fires every
//!    12–13 ms), run the TP controller on them, and schedule the resulting
//!    galvo command after the TP latency (~1–2 ms);
//! 2. apply commands whose time has come;
//! 3. move the headset to its true pose and evaluate received power through
//!    the full optical chain;
//! 4. advance the SFP state machine (instant loss-of-signal, multi-second
//!    re-lock) and account goodput through the BER channel.

use crate::channel::FsoChannel;
use crate::control::{ControlLink, ControlPlaneConfig, ControlStats};
use crate::sfp_state::SfpLinkState;
use cyclops_core::deployment::Deployment;
use cyclops_core::mapping::noisy_report_of;
use cyclops_core::pointing::ReacqSpiral;
use cyclops_core::tp::TpController;
use cyclops_geom::pose::Pose;
use cyclops_vrh::motion::{extrapolate_pose, Motion};
use cyclops_vrh::speeds::pose_speeds;
use cyclops_vrh::tracking::TrackerConfig;
use rand::Rng;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkSimConfig {
    /// Slot length (seconds); the paper's trace study uses 1 ms.
    pub slot_s: f64,
    /// Tracking system timing/noise.
    pub tracker: TrackerConfig,
    /// Frame size for loss accounting (bits).
    pub frame_bits: u64,
    /// Emulate the paper's §5.3 operator protocol: when the link drops, the
    /// operator stops moving ("we stop momentarily and slowly start moving
    /// again") until the SFP re-locks; motion time freezes while down.
    pub pause_on_outage: bool,
    /// Reliable control plane: fault-injected report channel with optional
    /// ARQ, dead reckoning and re-acquisition. `None` preserves the legacy
    /// path (i.i.d. report loss drawn from the deployment RNG), bit-exactly.
    pub control: Option<ControlPlaneConfig>,
}

impl Default for LinkSimConfig {
    fn default() -> Self {
        LinkSimConfig {
            slot_s: 1e-3,
            tracker: TrackerConfig::default(),
            frame_bits: 12_000,
            pause_on_outage: false,
            control: None,
        }
    }
}

/// Per-session fault-handling counters (ARQ retries, dead reckoning,
/// re-acquisition, outage durations).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Control-channel counters (`None` when the legacy path ran).
    pub control: Option<ControlStats>,
    /// Dead-reckoned commands issued from extrapolated poses.
    pub n_extrapolated: u64,
    /// Re-acquisition spiral probes taken.
    pub n_reacq_steps: u64,
    /// Link-down episodes entered.
    pub n_outages: u64,
    /// Total link-down time (seconds).
    pub outage_s: f64,
    /// Longest single link-down episode (seconds).
    pub longest_outage_s: f64,
}

/// Per-slot record of the simulation.
#[derive(Debug, Clone, Copy)]
pub struct SlotRecord {
    /// Slot start time (seconds).
    pub t: f64,
    /// Received optical power (dBm).
    pub power_dbm: f64,
    /// Whether the SFP link is up.
    pub link_up: bool,
    /// Goodput delivered this slot (Gbps).
    pub goodput_gbps: f64,
    /// True linear speed over the slot (m/s).
    pub lin_speed: f64,
    /// True angular speed over the slot (rad/s).
    pub ang_speed: f64,
}

/// The simulator. Owns the world, the trained controller, and a motion.
#[derive(Debug)]
pub struct LinkSimulator<M: Motion> {
    /// The physical bench.
    pub dep: Deployment,
    /// The trained TP controller.
    pub ctl: TpController,
    /// The RX assembly's motion.
    pub motion: M,
    /// Configuration.
    pub cfg: LinkSimConfig,
    channel: FsoChannel,
    sfp: SfpLinkState,
    next_report_t: f64,
    pending: std::collections::VecDeque<(f64, [f64; 4])>,
    t: f64,
    /// Accumulated tracker random-walk drift (applied to report positions
    /// when `tracker.drift_sigma_per_sqrt_s` is set).
    drift: cyclops_geom::vec3::Vec3,
    last_report_t: f64,
    /// Motion-clock time (lags `t` when pause_on_outage freezes motion).
    motion_t: f64,
    /// Control-plane state (present when `cfg.control` is set). The link
    /// payload is `(t_sample, reported_pose)`.
    ctrl_link: Option<ControlLink<(f64, Pose)>>,
    /// Recent delivered reports `(t_sample, pose)`, newest at the back,
    /// feeding the dead-reckoning velocity estimate. The velocity anchor is
    /// the newest entry at least `min_baseline_s` older than the latest, so
    /// tracker noise isn't amplified by differencing two near-coincident
    /// samples.
    deliveries: std::collections::VecDeque<(f64, Pose)>,
    /// Arrival time of the last delivered report (staleness clock).
    last_delivery_arrival: Option<f64>,
    last_dr_t: f64,
    /// Re-acquisition search state.
    spiral: Option<ReacqSpiral>,
    spiral_exhausted: bool,
    signal_lost_since: Option<f64>,
    /// Outage accounting.
    n_outages: u64,
    outage_s: f64,
    cur_outage_s: f64,
    longest_outage_s: f64,
}

impl<M: Motion> LinkSimulator<M> {
    /// Creates a simulator. Per the paper's methodology the link "starts
    /// with a perfectly aligned beam": one TP step is run against the
    /// motion's initial pose and applied before time zero.
    pub fn new(dep: Deployment, ctl: TpController, motion: M, cfg: LinkSimConfig) -> Self {
        let mut dep = dep;
        let mut ctl = ctl;
        let mut motion = motion;
        let pose0 = motion.pose_at(0.0);
        dep.set_headset_pose(pose0);
        let clean = dep.headset.true_reported_pose();
        let report = noisy_report_of(clean, &cfg.tracker, dep.rng());
        let cmd = ctl.on_report(&report);
        dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        let channel = FsoChannel::new(
            dep.design.sfp.rx_sensitivity_dbm,
            dep.design.sfp.rx_overload_dbm,
        );
        let sfp = SfpLinkState::new_up(dep.design.sfp.relink_time_s);
        // The pre-start alignment above consumed the t = 0 report; the next
        // one arrives a full tracker period later.
        let first_period = cfg.tracker.draw_period(dep.rng());
        let ctrl_link = cfg
            .control
            .map(|cp| ControlLink::new(cp.fault, cp.arq, cfg.tracker.control_channel_latency_s));
        LinkSimulator {
            dep,
            ctl,
            motion,
            cfg,
            channel,
            sfp,
            next_report_t: first_period,
            pending: std::collections::VecDeque::new(),
            t: 0.0,
            motion_t: 0.0,
            drift: cyclops_geom::vec3::Vec3::ZERO,
            last_report_t: 0.0,
            ctrl_link,
            deliveries: std::collections::VecDeque::new(),
            last_delivery_arrival: None,
            last_dr_t: 0.0,
            spiral: None,
            spiral_exhausted: false,
            signal_lost_since: None,
            n_outages: 0,
            outage_s: 0.0,
            cur_outage_s: 0.0,
            longest_outage_s: 0.0,
        }
    }

    fn draw_report_period(&mut self) -> f64 {
        let c = self.cfg.tracker;
        c.draw_period(self.dep.rng())
    }

    /// Runs for `duration_s`, returning one record per slot.
    pub fn run(&mut self, duration_s: f64) -> Vec<SlotRecord> {
        let n_slots = (duration_s / self.cfg.slot_s).round() as usize;
        let mut out = Vec::with_capacity(n_slots);
        let mut prev_pose = self.motion.pose_at(self.motion_t);
        for _ in 0..n_slots {
            let t_slot = self.t + self.cfg.slot_s;
            let moving = !self.cfg.pause_on_outage || self.sfp.is_up();
            let motion_t_slot = if moving {
                self.motion_t + self.cfg.slot_s
            } else {
                self.motion_t
            };

            // 1. Tracking reports due within this slot.
            while self.next_report_t <= t_slot {
                let rt = self.next_report_t;
                let period = self.draw_report_period();
                self.next_report_t = rt + period;
                // Legacy path only: the control channel may lose the report
                // entirely; the TP then simply waits for the next one. With
                // the control plane enabled, losses (and everything else)
                // come from the deterministic fault layer instead.
                if self.ctrl_link.is_none() {
                    let loss_p = self.cfg.tracker.report_loss_prob;
                    if loss_p > 0.0 && self.dep.rng().gen_bool(loss_p) {
                        continue;
                    }
                }
                let pose = self
                    .motion
                    .pose_at(motion_t_slot.min(self.motion_t.max(motion_t_slot - (t_slot - rt))));
                self.dep.set_headset_pose(pose);
                let mut clean = self.dep.headset.true_reported_pose();
                // Tracker random-walk drift (the §4 re-calibration trigger).
                let ds = self.cfg.tracker.drift_sigma_per_sqrt_s;
                if ds > 0.0 {
                    let dt = (rt - self.last_report_t).max(0.0);
                    let step = ds * dt.sqrt();
                    let rng = self.dep.rng();
                    self.drift += cyclops_geom::vec3::v3(
                        cyclops_vrh::rand_util::gauss(rng) * step,
                        cyclops_vrh::rand_util::gauss(rng) * step,
                        cyclops_vrh::rand_util::gauss(rng) * step,
                    );
                    clean.trans += self.drift;
                }
                self.last_report_t = rt;
                let reported = noisy_report_of(clean, &self.cfg.tracker, self.dep.rng());
                if let Some(link) = self.ctrl_link.as_mut() {
                    // Hand the report to the (faulty) control channel; the
                    // TP acts on deliveries, not submissions.
                    link.send(rt, (rt, reported));
                } else {
                    let cmd = self.ctl.on_report(&reported);
                    // The command is optically effective only after the
                    // control channel, the DAC conversion AND the mirror
                    // settle/slew.
                    let settle = self.dep.settle_estimate(
                        cmd.voltages[0],
                        cmd.voltages[1],
                        cmd.voltages[2],
                        cmd.voltages[3],
                    );
                    let apply_at =
                        rt + self.cfg.tracker.control_channel_latency_s + cmd.latency_s + settle;
                    self.pending.push_back((apply_at, cmd.voltages));
                }
            }

            // 1b. Control-plane deliveries and dead reckoning. Delivered
            // reports already carry the channel latency in their arrival
            // time; only TP compute + settle remain.
            if let Some(link) = self.ctrl_link.as_mut() {
                let delivered = link.poll(t_slot);
                for (t_arr, (t_sample, rep_pose)) in delivered {
                    let cmd = self.ctl.on_report(&rep_pose);
                    let settle = self.dep.settle_estimate(
                        cmd.voltages[0],
                        cmd.voltages[1],
                        cmd.voltages[2],
                        cmd.voltages[3],
                    );
                    self.pending
                        .push_back((t_arr + cmd.latency_s + settle, cmd.voltages));
                    self.deliveries.push_back((t_sample, rep_pose));
                    if self.deliveries.len() > 64 {
                        self.deliveries.pop_front();
                    }
                    self.last_delivery_arrival = Some(t_arr);
                }
                if let Some(dr) = self.cfg.control.and_then(|c| c.dead_reckoning) {
                    if let (Some(&(t1, p1)), Some(arr)) =
                        (self.deliveries.back(), self.last_delivery_arrival)
                    {
                        // Velocity anchor: the newest delivery at least
                        // `min_baseline_s` older than the latest (falling
                        // back to the oldest we kept).
                        let (t0, p0) = self
                            .deliveries
                            .iter()
                            .rev()
                            .find(|(t, _)| t1 - t >= dr.min_baseline_s)
                            .or_else(|| self.deliveries.front())
                            .copied()
                            .unwrap();
                        // Reports stale but the velocity estimate still
                        // fresh: steer on the constant-velocity prediction.
                        if t0 < t1
                            && t_slot - arr > dr.stale_after_s
                            && t_slot - t1 <= dr.max_horizon_s
                            && t_slot - self.last_dr_t >= dr.interval_s
                        {
                            let pred = extrapolate_pose(&p0, t0, &p1, t1, t_slot);
                            let cmd = self.ctl.on_extrapolated(&pred);
                            let settle = self.dep.settle_estimate(
                                cmd.voltages[0],
                                cmd.voltages[1],
                                cmd.voltages[2],
                                cmd.voltages[3],
                            );
                            self.pending
                                .push_back((t_slot + cmd.latency_s + settle, cmd.voltages));
                            self.last_dr_t = t_slot;
                        }
                    }
                }
            }

            // 2. Apply the due commands, in order (at high tracking rates a
            // command can still be in the DAC pipeline when the next report
            // arrives).
            while let Some(&(when, v)) = self.pending.front() {
                if when > t_slot {
                    break;
                }
                self.dep.set_voltages(v[0], v[1], v[2], v[3]);
                self.pending.pop_front();
            }

            // 3. True pose & optics at slot end.
            let pose = self.motion.pose_at(motion_t_slot);
            self.dep.set_headset_pose(pose);
            let mut power = self.dep.received_power_dbm();
            let (lin, ang) = pose_speeds(&prev_pose, &pose, self.cfg.slot_s);
            prev_pose = pose;

            // 3b. Scheduled SFP flaps force loss-of-signal at the receiver
            // (the beam is fine; the transceiver isn't), and the
            // re-acquisition spiral searches for lost *beams*.
            let flap_forced = self
                .cfg
                .control
                .and_then(|c| c.fault.flap)
                .is_some_and(|f| f.forced_down(t_slot));
            let mut signal = !flap_forced && power >= self.channel.sensitivity_dbm;
            if let Some(rq) = self.cfg.control.and_then(|c| c.reacq) {
                // The search only rests on *solid* signal: a point at the
                // bare sensitivity edge flickers under drift, resetting the
                // SFP hold timer forever.
                let solid = power >= self.channel.sensitivity_dbm + rq.success_margin_db;
                if (signal && solid) || flap_forced {
                    // Solid signal (or the outage is the SFP's, not the
                    // beam's): no search.
                    self.signal_lost_since = None;
                    self.spiral = None;
                    self.spiral_exhausted = false;
                } else {
                    let since = *self.signal_lost_since.get_or_insert(t_slot);
                    // Only search when tracking can't help: reports stale
                    // for 2+ periods (else the TP already points better
                    // than a blind probe would).
                    let reports_stale = self.last_delivery_arrival.map_or(true, |arr| {
                        t_slot - arr > 2.0 * self.cfg.tracker.period_max_s
                    });
                    if !self.spiral_exhausted
                        && reports_stale
                        && t_slot - since >= rq.trigger_after_s
                    {
                        let v = self.dep.voltages();
                        let sp = self.spiral.get_or_insert_with(|| {
                            ReacqSpiral::new([v.0, v.1, v.2, v.3], rq.step_v, rq.max_steps)
                        });
                        match sp.next_voltages() {
                            Some(nv) => {
                                self.dep.set_voltages(nv[0], nv[1], nv[2], nv[3]);
                                self.ctl.note_reacq_step();
                                power = self.dep.received_power_dbm();
                                signal = power >= self.channel.sensitivity_dbm;
                                if power >= self.channel.sensitivity_dbm + rq.success_margin_db {
                                    self.signal_lost_since = None;
                                    self.spiral = None;
                                }
                            }
                            None => {
                                // Budget exhausted: restore the center and
                                // wait for tracking after all.
                                let c = sp.center();
                                self.dep.set_voltages(c[0], c[1], c[2], c[3]);
                                self.spiral = None;
                                self.spiral_exhausted = true;
                            }
                        }
                    }
                }
            }

            // 4. Data plane.
            let was_up = self.sfp.is_up();
            let up = self.sfp.step(signal, self.cfg.slot_s);
            if was_up && !up {
                self.n_outages += 1;
                self.cur_outage_s = 0.0;
            }
            if !up {
                self.outage_s += self.cfg.slot_s;
                self.cur_outage_s += self.cfg.slot_s;
                self.longest_outage_s = self.longest_outage_s.max(self.cur_outage_s);
            }
            let goodput = if up {
                let rate = self.dep.design.sfp.optimal_goodput_gbps;
                rate * self.channel.frame_success_prob(power, self.cfg.frame_bits)
            } else {
                0.0
            };

            out.push(SlotRecord {
                t: t_slot,
                power_dbm: power,
                link_up: up,
                goodput_gbps: goodput,
                lin_speed: lin,
                ang_speed: ang,
            });
            self.t = t_slot;
            self.motion_t = motion_t_slot;
        }
        out
    }

    /// Fault-handling counters accumulated across all [`LinkSimulator::run`]
    /// calls: control-channel stats, dead-reckoning and re-acquisition
    /// activity, and outage durations.
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            control: self.ctrl_link.as_ref().map(|l| l.stats()),
            n_extrapolated: self.ctl.metrics.n_extrapolated,
            n_reacq_steps: self.ctl.metrics.n_reacq_steps,
            n_outages: self.n_outages,
            outage_s: self.outage_s,
            longest_outage_s: self.longest_outage_s,
        }
    }
}

/// One of the paper's 50 ms measurement windows.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Mean linear speed (m/s).
    pub lin: f64,
    /// Mean angular speed (rad/s).
    pub ang: f64,
    /// Mean goodput (Gbps).
    pub goodput: f64,
    /// Minimum received power (dBm).
    pub min_power: f64,
    /// Fraction of slots with the SFP link up.
    pub up_frac: f64,
    /// Fraction of slots where optical signal was present but the SFP was
    /// still re-locking — the §5.3 "takes a few seconds to regain the link"
    /// deadtime, which the paper's plots show as recovery gaps.
    pub relink_frac: f64,
}

/// Aggregates slot records into the paper's 50 ms windows.
pub fn windows_50ms(records: &[SlotRecord], slot_s: f64, sensitivity_dbm: f64) -> Vec<Window> {
    assert!(
        slot_s > 0.0 && slot_s <= 0.050,
        "slots must fit inside the 50 ms window"
    );
    let per = (0.050 / slot_s).round() as usize;
    records
        .chunks(per)
        .filter(|c| c.len() == per)
        .map(|c| {
            let n = c.len() as f64;
            let lin = c.iter().map(|r| r.lin_speed).sum::<f64>() / n;
            let ang = c.iter().map(|r| r.ang_speed).sum::<f64>() / n;
            let tp = c.iter().map(|r| r.goodput_gbps).sum::<f64>() / n;
            let pmin = c.iter().map(|r| r.power_dbm).fold(f64::INFINITY, f64::min);
            let up = c.iter().filter(|r| r.link_up).count() as f64 / n;
            let relink = c
                .iter()
                .filter(|r| !r.link_up && r.power_dbm >= sensitivity_dbm)
                .count() as f64
                / n;
            Window {
                lin,
                ang,
                goodput: tp,
                min_power: pmin,
                up_frac: up,
                relink_frac: relink,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{FaultPlan, FlapSchedule, ReacqConfig};
    use cyclops_core::deployment::DeploymentConfig;
    use cyclops_core::kspace::{train_both, BoardConfig};
    use cyclops_core::mapping::{self, rough_initial_guess};
    use cyclops_core::tp::TpConfig;
    use cyclops_geom::pose::Pose;
    use cyclops_geom::vec3::{v3, Vec3};
    use cyclops_vrh::motion::{LinearRail, StaticPose};

    /// Full commissioning: train stages 1+2, leave the link aligned.
    fn commissioned(seed: u64) -> (Deployment, TpController) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        let (tx_tr, tx_rig, rx_tr, rx_rig) = train_both(&dep, &BoardConfig::default(), seed);
        let (init_tx, init_rx) =
            rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed.wrapping_add(7));
        let mt = mapping::train(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            30,
            seed.wrapping_add(9),
        );
        // Park the headset at the nominal pose and align via TP.
        dep.set_headset_pose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let v0 = dep.voltages();
        let mut ctl = TpController::new(mt.trained, TpConfig::default(), [v0.0, v0.1, v0.2, v0.3]);
        let rep = mapping::noisy_report(&mut dep, &TrackerConfig::default());
        let cmd = ctl.on_report(&rep);
        dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        (dep, ctl)
    }

    #[test]
    fn static_headset_sustains_optimal_throughput() {
        let (dep, ctl) = commissioned(601);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let mut sim = LinkSimulator::new(dep, ctl, motion, LinkSimConfig::default());
        let recs = sim.run(2.0);
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!(up_frac > 0.999, "up fraction {up_frac}");
        let mean_tp = recs.iter().map(|r| r.goodput_gbps).sum::<f64>() / recs.len() as f64;
        assert!((mean_tp - 9.4).abs() < 0.1, "mean goodput {mean_tp} Gbps");
    }

    #[test]
    fn slow_rail_motion_keeps_link_up() {
        // 5 cm/s strokes: far below the §5.3 33 cm/s threshold.
        let (dep, ctl) = commissioned(602);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 0.05;
        rail.dv = 0.0; // stay slow
        let mut sim = LinkSimulator::new(dep, ctl, rail, LinkSimConfig::default());
        let recs = sim.run(8.0);
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!(up_frac > 0.98, "up fraction {up_frac}");
    }

    #[test]
    fn fast_rail_motion_breaks_link() {
        // 1.2 m/s: far beyond any tolerated speed — throughput must die and
        // the relink hysteresis must keep it dead for seconds.
        let (dep, ctl) = commissioned(603);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 1.2;
        rail.dv = 0.0;
        let mut sim = LinkSimulator::new(dep, ctl, rail, LinkSimConfig::default());
        let recs = sim.run(3.0);
        let down = recs.iter().filter(|r| !r.link_up).count() as f64 / recs.len() as f64;
        assert!(down > 0.5, "down fraction {down}");
    }

    #[test]
    fn tracker_drift_degrades_the_link_over_time() {
        // With a strong random-walk drift the reported frame walks away from
        // reality; the TP acts on stale coordinates and the static link
        // degrades within seconds — the §4 re-calibration trigger.
        let (dep, ctl) = commissioned(606);
        let run = |drift: f64, dep: &Deployment, ctl: &TpController| -> f64 {
            let motion = cyclops_vrh::motion::StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
            let mut cfg = LinkSimConfig::default();
            cfg.tracker.drift_sigma_per_sqrt_s = drift;
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), motion, cfg);
            let recs = sim.run(8.0);
            recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
        };
        let stable = run(0.0, &dep, &ctl);
        let drifting = run(4e-3, &dep, &ctl);
        assert!(stable > 0.99, "no drift: {stable}");
        assert!(
            drifting < stable - 0.1,
            "drift must hurt: {stable} -> {drifting}"
        );
    }

    #[test]
    fn report_loss_degrades_speed_tolerance() {
        // Losing half the control-channel reports doubles the effective
        // report interval, so a speed that was comfortably tolerated starts
        // dropping windows.
        let (dep, ctl) = commissioned(605);
        let run = |loss: f64, dep: &Deployment, ctl: &TpController| -> f64 {
            let base = Pose::translation(v3(0.0, 0.0, 1.75));
            let mut rail = LinearRail::paper_protocol(base, Vec3::X);
            rail.v0 = 0.25;
            rail.dv = 0.0;
            let mut cfg = LinkSimConfig::default();
            cfg.tracker.report_loss_prob = loss;
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
            let recs = sim.run(5.0);
            recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
        };
        let clean = run(0.0, &dep, &ctl);
        let lossy = run(0.6, &dep, &ctl);
        assert!(
            clean > 0.95,
            "clean channel should hold at 25 cm/s: {clean}"
        );
        assert!(
            lossy < clean - 0.02,
            "60% report loss must hurt: {clean} -> {lossy}"
        );
    }

    #[test]
    fn pause_on_outage_freezes_motion_until_relink() {
        // A fast rail breaks the link; with the §5.3 operator protocol the
        // motion must freeze (speed ≈ 0) while the SFP re-locks, then resume.
        let (dep, ctl) = commissioned(604);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 1.2;
        rail.dv = 0.0;
        let cfg = LinkSimConfig {
            pause_on_outage: true,
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(dep, ctl, rail, cfg);
        let recs = sim.run(6.0);
        // Find the first down slot, then check motion is frozen while down.
        let first_down = recs
            .iter()
            .position(|r| !r.link_up)
            .expect("1.2 m/s must break the link");
        let mut frozen = 0usize;
        let mut down = 0usize;
        for r in &recs[first_down + 2..] {
            if !r.link_up {
                down += 1;
                if r.lin_speed < 1e-9 {
                    frozen += 1;
                }
            }
        }
        assert!(
            down > 100,
            "expect a multi-second relink ({down} down slots)"
        );
        let frac = frozen as f64 / down as f64;
        assert!(
            frac > 0.95,
            "motion frozen during {:.0}% of down slots",
            frac * 100.0
        );
        // The protocol cycles: freeze → re-lock → resume → (at this
        // over-threshold speed) break again. The link must come back up at
        // least once after the first loss.
        assert!(
            recs[first_down..].iter().any(|r| r.link_up),
            "link should re-lock at least once after the first loss"
        );
    }

    #[test]
    fn arq_plus_dead_reckoning_survives_bursty_report_loss() {
        // Bursty control-channel loss (~6-report blackouts) at a speed the
        // clean channel tolerates: unprotected, one blackout mid-stroke lets
        // the beam walk off the aperture and the SFP's multi-second re-lock
        // eats the run; with ARQ + dead reckoning the link must ride it out
        // at (near-)clean availability. The run stays within a single rail
        // stroke: a velocity *reversal* inside a total blackout is beyond
        // any constant-velocity predictor and is not the claim under test.
        let (dep, ctl) = commissioned(607);
        let bursty = FaultPlan {
            loss_prob: 0.05,
            burst_enter_prob: 0.08,
            burst_exit_prob: 0.15,
            burst_loss_prob: 1.0,
            ..FaultPlan::clean(71)
        };
        let run =
            |control: Option<ControlPlaneConfig>, dep: &Deployment, ctl: &TpController| -> f64 {
                let base = Pose::translation(v3(0.0, 0.0, 1.75));
                let mut rail = LinearRail::paper_protocol(base, Vec3::X);
                // 0.15 m/s over the 0.40 m rail: the first stroke lasts 2.67 s,
                // longer than the 2.5 s run. One ~84 ms blackout costs ~13 mm of
                // unrealigned drift — past the ~8.6 mm lateral tolerance.
                rail.v0 = 0.15;
                rail.dv = 0.0;
                let cfg = LinkSimConfig {
                    control,
                    ..Default::default()
                };
                let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
                let recs = sim.run(2.5);
                recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
            };
        let clean = run(
            Some(ControlPlaneConfig::hardened(FaultPlan::clean(71))),
            &dep,
            &ctl,
        );
        let unprotected = run(Some(ControlPlaneConfig::unprotected(bursty)), &dep, &ctl);
        let hardened = run(Some(ControlPlaneConfig::hardened(bursty)), &dep, &ctl);
        assert!(clean > 0.95, "clean control plane should hold: {clean}");
        assert!(
            unprotected < 0.7,
            "bursty loss without mitigation should collapse: {unprotected}"
        );
        assert!(
            hardened > clean - 0.05,
            "ARQ+DR should ride out bursts: clean {clean}, hardened {hardened}, \
             unprotected {unprotected}"
        );
    }

    #[test]
    fn reacq_spiral_recovers_a_lost_beam_without_reports() {
        // Total report blackout AND a badly mispointed beam: without the
        // spiral the link can never come back (no reports, no search); with
        // it the beam is re-found within the probe budget and the SFP
        // re-locks after its hysteresis.
        let (dep, ctl) = commissioned(608);
        let run = |reacq: Option<ReacqConfig>, dep: &Deployment, ctl: &TpController| {
            let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
            let cfg = LinkSimConfig {
                control: Some(ControlPlaneConfig {
                    fault: FaultPlan::iid_loss(5, 1.0),
                    arq: None,
                    dead_reckoning: None,
                    reacq,
                }),
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), motion, cfg);
            // Knock the TX aim well off the aperture (0.64 V ≈ 24 mm at the
            // RX plane — far outside the ~10 mm lateral tolerance).
            let v = sim.dep.voltages();
            sim.dep.set_voltages(v.0 + 0.5, v.1 - 0.4, v.2, v.3);
            let recs = sim.run(5.0);
            let up_at_end = recs[recs.len() - 1].link_up;
            (up_at_end, sim.session_stats())
        };
        let (up_without, st_without) = run(None, &dep, &ctl);
        assert!(!up_without, "no search, no reports: must stay down");
        assert_eq!(st_without.n_reacq_steps, 0);
        let reacq = ReacqConfig {
            trigger_after_s: 0.03,
            step_v: 0.02,
            max_steps: 1500,
            ..Default::default()
        };
        let (up_with, st_with) = run(Some(reacq), &dep, &ctl);
        assert!(
            up_with,
            "spiral should recover the beam and re-lock ({st_with:?})"
        );
        assert!(st_with.n_reacq_steps > 0, "{st_with:?}");
        assert!(
            st_with.longest_outage_s < 4.0,
            "outage should end within the run: {st_with:?}"
        );
    }

    #[test]
    fn scheduled_flaps_force_counted_outages() {
        let (dep, ctl) = commissioned(609);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let cfg = LinkSimConfig {
            control: Some(ControlPlaneConfig::hardened(FaultPlan {
                flap: Some(FlapSchedule {
                    first_s: 1.0,
                    period_s: 30.0,
                    down_s: 0.1,
                }),
                ..FaultPlan::clean(3)
            })),
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(dep, ctl, motion, cfg);
        let recs = sim.run(5.0);
        let st = sim.session_stats();
        // One flap at t=1: down for 0.1 s forced + ~2.5 s re-lock.
        assert_eq!(st.n_outages, 1, "{st:?}");
        assert!(
            (2.0..3.5).contains(&st.longest_outage_s),
            "outage {} s should be flap + re-lock",
            st.longest_outage_s
        );
        // Beam itself never moved: no spiral probes should have fired.
        assert_eq!(st.n_reacq_steps, 0, "{st:?}");
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!((0.3..0.6).contains(&up_frac), "up fraction {up_frac}");
        assert!(st.control.is_some());
    }

    #[test]
    fn control_plane_runs_are_bit_identical_per_seed() {
        let (dep, ctl) = commissioned(610);
        let run = |dep: &Deployment, ctl: &TpController| {
            let base = Pose::translation(v3(0.0, 0.0, 1.75));
            let mut rail = LinearRail::paper_protocol(base, Vec3::X);
            rail.v0 = 0.2;
            rail.dv = 0.0;
            let cfg = LinkSimConfig {
                control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(17))),
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
            let recs = sim.run(3.0);
            (recs, sim.session_stats())
        };
        let (a, sa) = run(&dep, &ctl);
        let (b, sb) = run(&dep, &ctl);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.power_dbm.to_bits(), y.power_dbm.to_bits());
            assert_eq!(x.goodput_gbps.to_bits(), y.goodput_gbps.to_bits());
            assert_eq!(x.link_up, y.link_up);
        }
        assert_eq!(sa.control, sb.control);
        assert_eq!(sa.n_extrapolated, sb.n_extrapolated);
        assert_eq!(sa.n_reacq_steps, sb.n_reacq_steps);
    }

    #[test]
    fn windows_aggregate_correctly() {
        let recs: Vec<SlotRecord> = (0..100)
            .map(|i| SlotRecord {
                t: i as f64 * 1e-3,
                power_dbm: -20.0,
                link_up: i < 50, // second window is a relink window
                goodput_gbps: if i < 50 { 9.4 } else { 0.0 },
                lin_speed: 0.1,
                ang_speed: 0.2,
            })
            .collect();
        let w = windows_50ms(&recs, 1e-3, -25.0);
        assert_eq!(w.len(), 2);
        assert!((w[0].lin - 0.1).abs() < 1e-12);
        assert!((w[0].ang - 0.2).abs() < 1e-12);
        assert!((w[0].goodput - 9.4).abs() < 1e-12);
        assert!((w[0].min_power + 20.0).abs() < 1e-12);
        assert!((w[0].up_frac - 1.0).abs() < 1e-12);
        assert_eq!(w[0].relink_frac, 0.0);
        // Second window: signal present (−20 ≥ −25) but link down → relink.
        assert!((w[1].relink_frac - 1.0).abs() < 1e-12);
        assert_eq!(w[1].up_frac, 0.0);
    }
}
