//! End-to-end 1 ms-slot link simulator: motion × tracking × TP × optics ×
//! data plane — the configuration behind the throughput evaluations
//! (Figs 13–15).
//!
//! Since the engine refactor this module is a thin façade: the slot loop
//! lives in [`crate::engine`], and [`LinkSimulator`] is a
//! [`LinkSession`] with the single-TX profile
//! (scheduled commands, per-report pose sampling, goodput accounting, no
//! occluders). Outputs are bit-identical to the pre-refactor loop per seed.
//!
//! **Deprecation note.** This façade is kept for the paper-figure binaries
//! and older tests; new code should build sessions directly with
//! [`LinkSession::builder`], which validates its configuration and accepts
//! a telemetry layer (see [`crate::telemetry`]). Types formerly re-exported
//! here ([`SessionStats`]) now live in
//! [`crate::engine`].

use crate::engine::{EngineConfig, FirstReport, LinkSession, SessionStats, SingleTx};
use cyclops_core::deployment::Deployment;
use cyclops_core::tp::TpController;
use cyclops_vrh::motion::Motion;
use cyclops_vrh::tracking::TrackerConfig;

use crate::control::ControlPlaneConfig;

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkSimConfig {
    /// Slot length (seconds); the paper's trace study uses 1 ms.
    pub slot_s: f64,
    /// Tracking system timing/noise.
    pub tracker: TrackerConfig,
    /// Frame size for loss accounting (bits).
    pub frame_bits: u64,
    /// Emulate the paper's §5.3 operator protocol: when the link drops, the
    /// operator stops moving ("we stop momentarily and slowly start moving
    /// again") until the SFP re-locks; motion time freezes while down.
    pub pause_on_outage: bool,
    /// Reliable control plane: fault-injected report channel with optional
    /// ARQ, dead reckoning and re-acquisition. `None` preserves the legacy
    /// path (i.i.d. report loss drawn from the deployment RNG), bit-exactly.
    pub control: Option<ControlPlaneConfig>,
}

impl Default for LinkSimConfig {
    fn default() -> Self {
        LinkSimConfig {
            slot_s: 1e-3,
            tracker: TrackerConfig::default(),
            frame_bits: 12_000,
            pause_on_outage: false,
            control: None,
        }
    }
}

impl From<LinkSimConfig> for EngineConfig {
    /// The single-TX engine profile carrying this config's knobs.
    fn from(c: LinkSimConfig) -> EngineConfig {
        EngineConfig {
            slot_s: c.slot_s,
            tracker: c.tracker,
            frame_bits: c.frame_bits,
            pause_on_outage: c.pause_on_outage,
            control: c.control,
            ..EngineConfig::default()
        }
    }
}

/// Per-slot record of the simulation.
#[derive(Debug, Clone, Copy)]
pub struct SlotRecord {
    /// Slot end time (seconds).
    pub t: f64,
    /// Received optical power (dBm).
    pub power_dbm: f64,
    /// Whether the SFP link is up.
    pub link_up: bool,
    /// Goodput delivered this slot (Gbps).
    pub goodput_gbps: f64,
    /// True linear speed over the slot (m/s).
    pub lin_speed: f64,
    /// True angular speed over the slot (rad/s).
    pub ang_speed: f64,
}

/// The single-TX simulator: a [`LinkSession`] pinned to one unit.
#[derive(Debug)]
pub struct LinkSimulator<M: Motion> {
    session: LinkSession<M, SingleTx>,
}

impl<M: Motion> LinkSimulator<M> {
    /// Creates a simulator. Per the paper's methodology the link "starts
    /// with a perfectly aligned beam": one TP step is run against the
    /// motion's initial pose and applied before time zero.
    pub fn new(dep: Deployment, ctl: TpController, motion: M, cfg: LinkSimConfig) -> Self {
        LinkSimulator {
            session: LinkSession::builder(motion)
                .deployment(dep, ctl)
                .config(cfg.into())
                .first_report(FirstReport::AfterPeriod)
                .build()
                .expect("LinkSimConfig produced an invalid engine config"),
        }
    }

    /// The physical bench.
    pub fn dep(&self) -> &Deployment {
        &self.session.units()[0].dep
    }

    /// Mutable access to the physical bench.
    pub fn dep_mut(&mut self) -> &mut Deployment {
        &mut self.session.units_mut()[0].dep
    }

    /// The trained TP controller.
    pub fn ctl(&self) -> &TpController {
        &self.session.units()[0].ctl
    }

    /// The engine configuration (slot length, tracker, control plane, …).
    pub fn cfg(&self) -> &EngineConfig {
        self.session.cfg()
    }

    /// Mutable access to the engine configuration.
    pub fn cfg_mut(&mut self) -> &mut EngineConfig {
        self.session.cfg_mut()
    }

    /// Runs for `duration_s`, returning one record per slot.
    pub fn run(&mut self, duration_s: f64) -> Vec<SlotRecord> {
        self.session
            .run(duration_s)
            .into_iter()
            .map(|r| SlotRecord {
                t: r.t,
                power_dbm: r.power_dbm,
                link_up: r.link_up,
                goodput_gbps: r.goodput_gbps,
                lin_speed: r.lin_speed,
                ang_speed: r.ang_speed,
            })
            .collect()
    }

    /// Fault-handling counters accumulated across all [`LinkSimulator::run`]
    /// calls: control-channel stats, dead-reckoning and re-acquisition
    /// activity, and outage durations.
    pub fn session_stats(&self) -> SessionStats {
        self.session.session_stats()
    }
}

/// One of the paper's 50 ms measurement windows.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Mean linear speed (m/s).
    pub lin: f64,
    /// Mean angular speed (rad/s).
    pub ang: f64,
    /// Mean goodput (Gbps).
    pub goodput: f64,
    /// Minimum received power (dBm).
    pub min_power: f64,
    /// Fraction of slots with the SFP link up.
    pub up_frac: f64,
    /// Fraction of slots where optical signal was present but the SFP was
    /// still re-locking — the §5.3 "takes a few seconds to regain the link"
    /// deadtime, which the paper's plots show as recovery gaps.
    pub relink_frac: f64,
}

/// Aggregates slot records into the paper's 50 ms windows.
///
/// An empty record list yields no windows, and a trailing partial window
/// (fewer than 50 ms of slots) is dropped rather than averaged over a
/// shorter denominator — both pinned by unit tests.
pub fn windows_50ms(records: &[SlotRecord], slot_s: f64, sensitivity_dbm: f64) -> Vec<Window> {
    assert!(
        slot_s > 0.0 && slot_s <= 0.050,
        "slots must fit inside the 50 ms window"
    );
    let per = (0.050 / slot_s).round() as usize;
    records
        .chunks(per)
        .filter(|c| c.len() == per)
        .map(|c| {
            let n = c.len() as f64;
            let lin = c.iter().map(|r| r.lin_speed).sum::<f64>() / n;
            let ang = c.iter().map(|r| r.ang_speed).sum::<f64>() / n;
            let tp = c.iter().map(|r| r.goodput_gbps).sum::<f64>() / n;
            let pmin = c.iter().map(|r| r.power_dbm).fold(f64::INFINITY, f64::min);
            let up = c.iter().filter(|r| r.link_up).count() as f64 / n;
            let relink = c
                .iter()
                .filter(|r| !r.link_up && r.power_dbm >= sensitivity_dbm)
                .count() as f64
                / n;
            Window {
                lin,
                ang,
                goodput: tp,
                min_power: pmin,
                up_frac: up,
                relink_frac: relink,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ControlPlaneConfig, FaultPlan, FlapSchedule, ReacqConfig};
    use cyclops_core::deployment::DeploymentConfig;
    use cyclops_core::kspace::{train_both, BoardConfig};
    use cyclops_core::mapping::{self, rough_initial_guess};
    use cyclops_core::tp::TpConfig;
    use cyclops_geom::pose::Pose;
    use cyclops_geom::vec3::{v3, Vec3};
    use cyclops_vrh::motion::{LinearRail, StaticPose};

    /// Full commissioning: train stages 1+2, leave the link aligned.
    fn commissioned(seed: u64) -> (Deployment, TpController) {
        let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
        let (tx_tr, tx_rig, rx_tr, rx_rig) =
            train_both(&dep, &BoardConfig::default(), seed).expect("stage-1 training");
        let (init_tx, init_rx) =
            rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed.wrapping_add(7));
        let mt = mapping::train(
            &mut dep,
            &tx_tr.fitted,
            &rx_tr.fitted,
            init_tx,
            init_rx,
            30,
            seed.wrapping_add(9),
        );
        // Park the headset at the nominal pose and align via TP.
        dep.set_headset_pose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let v0 = dep.voltages();
        let mut ctl = TpController::new(mt.trained, TpConfig::default(), [v0.0, v0.1, v0.2, v0.3]);
        let rep = mapping::noisy_report(&mut dep, &TrackerConfig::default());
        let cmd = ctl.on_report(&rep);
        dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        (dep, ctl)
    }

    #[test]
    fn static_headset_sustains_optimal_throughput() {
        let (dep, ctl) = commissioned(601);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let mut sim = LinkSimulator::new(dep, ctl, motion, LinkSimConfig::default());
        let recs = sim.run(2.0);
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!(up_frac > 0.999, "up fraction {up_frac}");
        let mean_tp = recs.iter().map(|r| r.goodput_gbps).sum::<f64>() / recs.len() as f64;
        assert!((mean_tp - 9.4).abs() < 0.1, "mean goodput {mean_tp} Gbps");
    }

    #[test]
    fn slow_rail_motion_keeps_link_up() {
        // 5 cm/s strokes: far below the §5.3 33 cm/s threshold.
        let (dep, ctl) = commissioned(602);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 0.05;
        rail.dv = 0.0; // stay slow
        let mut sim = LinkSimulator::new(dep, ctl, rail, LinkSimConfig::default());
        let recs = sim.run(8.0);
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!(up_frac > 0.98, "up fraction {up_frac}");
    }

    #[test]
    fn fast_rail_motion_breaks_link() {
        // 1.2 m/s: far beyond any tolerated speed — throughput must die and
        // the relink hysteresis must keep it dead for seconds.
        let (dep, ctl) = commissioned(603);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 1.2;
        rail.dv = 0.0;
        let mut sim = LinkSimulator::new(dep, ctl, rail, LinkSimConfig::default());
        let recs = sim.run(3.0);
        let down = recs.iter().filter(|r| !r.link_up).count() as f64 / recs.len() as f64;
        assert!(down > 0.5, "down fraction {down}");
    }

    #[test]
    fn tracker_drift_degrades_the_link_over_time() {
        // With a strong random-walk drift the reported frame walks away from
        // reality; the TP acts on stale coordinates and the static link
        // degrades within seconds — the §4 re-calibration trigger.
        let (dep, ctl) = commissioned(606);
        let run = |drift: f64, dep: &Deployment, ctl: &TpController| -> f64 {
            let motion = cyclops_vrh::motion::StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
            let mut cfg = LinkSimConfig::default();
            cfg.tracker.drift_sigma_per_sqrt_s = drift;
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), motion, cfg);
            let recs = sim.run(8.0);
            recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
        };
        let stable = run(0.0, &dep, &ctl);
        let drifting = run(4e-3, &dep, &ctl);
        assert!(stable > 0.99, "no drift: {stable}");
        assert!(
            drifting < stable - 0.1,
            "drift must hurt: {stable} -> {drifting}"
        );
    }

    #[test]
    fn report_loss_degrades_speed_tolerance() {
        // Losing half the control-channel reports doubles the effective
        // report interval, so a speed that was comfortably tolerated starts
        // dropping windows.
        let (dep, ctl) = commissioned(605);
        let run = |loss: f64, dep: &Deployment, ctl: &TpController| -> f64 {
            let base = Pose::translation(v3(0.0, 0.0, 1.75));
            let mut rail = LinearRail::paper_protocol(base, Vec3::X);
            rail.v0 = 0.25;
            rail.dv = 0.0;
            let mut cfg = LinkSimConfig::default();
            cfg.tracker.report_loss_prob = loss;
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
            let recs = sim.run(5.0);
            recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
        };
        let clean = run(0.0, &dep, &ctl);
        let lossy = run(0.6, &dep, &ctl);
        assert!(
            clean > 0.95,
            "clean channel should hold at 25 cm/s: {clean}"
        );
        assert!(
            lossy < clean - 0.02,
            "60% report loss must hurt: {clean} -> {lossy}"
        );
    }

    #[test]
    fn pause_on_outage_freezes_motion_until_relink() {
        // A fast rail breaks the link; with the §5.3 operator protocol the
        // motion must freeze (speed ≈ 0) while the SFP re-locks, then resume.
        let (dep, ctl) = commissioned(604);
        let base = Pose::translation(v3(0.0, 0.0, 1.75));
        let mut rail = LinearRail::paper_protocol(base, Vec3::X);
        rail.v0 = 1.2;
        rail.dv = 0.0;
        let cfg = LinkSimConfig {
            pause_on_outage: true,
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(dep, ctl, rail, cfg);
        let recs = sim.run(6.0);
        // Find the first down slot, then check motion is frozen while down.
        let first_down = recs
            .iter()
            .position(|r| !r.link_up)
            .expect("1.2 m/s must break the link");
        let mut frozen = 0usize;
        let mut down = 0usize;
        for r in &recs[first_down + 2..] {
            if !r.link_up {
                down += 1;
                if r.lin_speed < 1e-9 {
                    frozen += 1;
                }
            }
        }
        assert!(
            down > 100,
            "expect a multi-second relink ({down} down slots)"
        );
        let frac = frozen as f64 / down as f64;
        assert!(
            frac > 0.95,
            "motion frozen during {:.0}% of down slots",
            frac * 100.0
        );
        // The protocol cycles: freeze → re-lock → resume → (at this
        // over-threshold speed) break again. The link must come back up at
        // least once after the first loss.
        assert!(
            recs[first_down..].iter().any(|r| r.link_up),
            "link should re-lock at least once after the first loss"
        );
    }

    #[test]
    fn arq_plus_dead_reckoning_survives_bursty_report_loss() {
        // Bursty control-channel loss (~6-report blackouts) at a speed the
        // clean channel tolerates: unprotected, one blackout mid-stroke lets
        // the beam walk off the aperture and the SFP's multi-second re-lock
        // eats the run; with ARQ + dead reckoning the link must ride it out
        // at (near-)clean availability. The run stays within a single rail
        // stroke: a velocity *reversal* inside a total blackout is beyond
        // any constant-velocity predictor and is not the claim under test.
        let (dep, ctl) = commissioned(607);
        let bursty = FaultPlan {
            loss_prob: 0.05,
            burst_enter_prob: 0.08,
            burst_exit_prob: 0.15,
            burst_loss_prob: 1.0,
            ..FaultPlan::clean(71)
        };
        let run =
            |control: Option<ControlPlaneConfig>, dep: &Deployment, ctl: &TpController| -> f64 {
                let base = Pose::translation(v3(0.0, 0.0, 1.75));
                let mut rail = LinearRail::paper_protocol(base, Vec3::X);
                // 0.15 m/s over the 0.40 m rail: the first stroke lasts 2.67 s,
                // longer than the 2.5 s run. One ~84 ms blackout costs ~13 mm of
                // unrealigned drift — past the ~8.6 mm lateral tolerance.
                rail.v0 = 0.15;
                rail.dv = 0.0;
                let cfg = LinkSimConfig {
                    control,
                    ..Default::default()
                };
                let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
                let recs = sim.run(2.5);
                recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
            };
        let clean = run(
            Some(ControlPlaneConfig::hardened(FaultPlan::clean(71))),
            &dep,
            &ctl,
        );
        let unprotected = run(Some(ControlPlaneConfig::unprotected(bursty)), &dep, &ctl);
        let hardened = run(Some(ControlPlaneConfig::hardened(bursty)), &dep, &ctl);
        assert!(clean > 0.95, "clean control plane should hold: {clean}");
        assert!(
            unprotected < 0.7,
            "bursty loss without mitigation should collapse: {unprotected}"
        );
        assert!(
            hardened > clean - 0.05,
            "ARQ+DR should ride out bursts: clean {clean}, hardened {hardened}, \
             unprotected {unprotected}"
        );
    }

    #[test]
    fn reacq_spiral_recovers_a_lost_beam_without_reports() {
        // Total report blackout AND a badly mispointed beam: without the
        // spiral the link can never come back (no reports, no search); with
        // it the beam is re-found within the probe budget and the SFP
        // re-locks after its hysteresis.
        let (dep, ctl) = commissioned(608);
        let run = |reacq: Option<ReacqConfig>, dep: &Deployment, ctl: &TpController| {
            let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
            let cfg = LinkSimConfig {
                control: Some(ControlPlaneConfig {
                    fault: FaultPlan::iid_loss(5, 1.0),
                    arq: None,
                    dead_reckoning: None,
                    reacq,
                }),
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), motion, cfg);
            // Knock the TX aim well off the aperture (0.64 V ≈ 24 mm at the
            // RX plane — far outside the ~10 mm lateral tolerance).
            let v = sim.dep().voltages();
            sim.dep_mut().set_voltages(v.0 + 0.5, v.1 - 0.4, v.2, v.3);
            let recs = sim.run(5.0);
            let up_at_end = recs[recs.len() - 1].link_up;
            (up_at_end, sim.session_stats())
        };
        let (up_without, st_without) = run(None, &dep, &ctl);
        assert!(!up_without, "no search, no reports: must stay down");
        assert_eq!(st_without.n_reacq_steps, 0);
        let reacq = ReacqConfig {
            trigger_after_s: 0.03,
            step_v: 0.02,
            max_steps: 1500,
            ..Default::default()
        };
        let (up_with, st_with) = run(Some(reacq), &dep, &ctl);
        assert!(
            up_with,
            "spiral should recover the beam and re-lock ({st_with:?})"
        );
        assert!(st_with.n_reacq_steps > 0, "{st_with:?}");
        assert!(
            st_with.longest_outage_s < 4.0,
            "outage should end within the run: {st_with:?}"
        );
    }

    #[test]
    fn scheduled_flaps_force_counted_outages() {
        let (dep, ctl) = commissioned(609);
        let motion = StaticPose(Pose::translation(v3(0.0, 0.0, 1.75)));
        let cfg = LinkSimConfig {
            control: Some(ControlPlaneConfig::hardened(FaultPlan {
                flap: Some(FlapSchedule {
                    first_s: 1.0,
                    period_s: 30.0,
                    down_s: 0.1,
                }),
                ..FaultPlan::clean(3)
            })),
            ..Default::default()
        };
        let mut sim = LinkSimulator::new(dep, ctl, motion, cfg);
        let recs = sim.run(5.0);
        let st = sim.session_stats();
        // One flap at t=1: down for 0.1 s forced + ~2.5 s re-lock.
        assert_eq!(st.n_outages, 1, "{st:?}");
        assert!(
            (2.0..3.5).contains(&st.longest_outage_s),
            "outage {} s should be flap + re-lock",
            st.longest_outage_s
        );
        // Beam itself never moved: no spiral probes should have fired.
        assert_eq!(st.n_reacq_steps, 0, "{st:?}");
        let up_frac = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
        assert!((0.3..0.6).contains(&up_frac), "up fraction {up_frac}");
        assert!(st.control.is_some());
    }

    #[test]
    fn control_plane_runs_are_bit_identical_per_seed() {
        let (dep, ctl) = commissioned(610);
        let run = |dep: &Deployment, ctl: &TpController| {
            let base = Pose::translation(v3(0.0, 0.0, 1.75));
            let mut rail = LinearRail::paper_protocol(base, Vec3::X);
            rail.v0 = 0.2;
            rail.dv = 0.0;
            let cfg = LinkSimConfig {
                control: Some(ControlPlaneConfig::hardened(FaultPlan::stress(17))),
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(dep.clone(), ctl.clone(), rail, cfg);
            let recs = sim.run(3.0);
            (recs, sim.session_stats())
        };
        let (a, sa) = run(&dep, &ctl);
        let (b, sb) = run(&dep, &ctl);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.power_dbm.to_bits(), y.power_dbm.to_bits());
            assert_eq!(x.goodput_gbps.to_bits(), y.goodput_gbps.to_bits());
            assert_eq!(x.link_up, y.link_up);
        }
        assert_eq!(sa.control, sb.control);
        assert_eq!(sa.n_extrapolated, sb.n_extrapolated);
        assert_eq!(sa.n_reacq_steps, sb.n_reacq_steps);
    }

    #[test]
    fn windows_aggregate_correctly() {
        let recs: Vec<SlotRecord> = (0..100)
            .map(|i| SlotRecord {
                t: i as f64 * 1e-3,
                power_dbm: -20.0,
                link_up: i < 50, // second window is a relink window
                goodput_gbps: if i < 50 { 9.4 } else { 0.0 },
                lin_speed: 0.1,
                ang_speed: 0.2,
            })
            .collect();
        let w = windows_50ms(&recs, 1e-3, -25.0);
        assert_eq!(w.len(), 2);
        assert!((w[0].lin - 0.1).abs() < 1e-12);
        assert!((w[0].ang - 0.2).abs() < 1e-12);
        assert!((w[0].goodput - 9.4).abs() < 1e-12);
        assert!((w[0].min_power + 20.0).abs() < 1e-12);
        assert!((w[0].up_frac - 1.0).abs() < 1e-12);
        assert_eq!(w[0].relink_frac, 0.0);
        // Second window: signal present (−20 ≥ −25) but link down → relink.
        assert!((w[1].relink_frac - 1.0).abs() < 1e-12);
        assert_eq!(w[1].up_frac, 0.0);
    }

    #[test]
    fn windows_of_empty_records_are_empty() {
        assert!(windows_50ms(&[], 1e-3, -25.0).is_empty());
    }

    #[test]
    fn windows_drop_trailing_partial_window() {
        // 80 slots at 1 ms = one full 50 ms window + 30 leftover slots: the
        // partial tail must be dropped, not averaged over a short window.
        let recs: Vec<SlotRecord> = (0..80)
            .map(|i| SlotRecord {
                t: i as f64 * 1e-3,
                power_dbm: -20.0,
                link_up: true,
                goodput_gbps: 9.4,
                lin_speed: 0.1,
                ang_speed: 0.2,
            })
            .collect();
        let w = windows_50ms(&recs, 1e-3, -25.0);
        assert_eq!(w.len(), 1);
        // Exactly one full window must also survive intact.
        let w = windows_50ms(&recs[..50], 1e-3, -25.0);
        assert_eq!(w.len(), 1);
        // And fewer slots than one window yields nothing.
        let w = windows_50ms(&recs[..49], 1e-3, -25.0);
        assert!(w.is_empty());
    }
}
