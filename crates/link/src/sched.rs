//! **Shared-TX scheduling** — the venue-scale contention layer.
//!
//! The unscheduled fleet ([`run_fleet`](crate::engine::run_fleet)) gives every session a private clone
//! of the TX pool: N headsets, zero contention. This module makes the pool a
//! shared, scheduled resource: each slot a [`TxScheduler`] assigns TX units
//! to sessions, and a unit steering at session A is dark for session B that
//! slot. Demand comes from the [`traffic`](crate::traffic) layer (bursty
//! viewport frames + playout buffer), so goodput rolls up into a stall-time
//! QoE metric per session.
//!
//! # Determinism and the physics contract
//!
//! Each session still integrates its own full physics — motion, tracking,
//! TP, optics, SFP — against per-session unit replicas, exactly as the
//! unscheduled fleet does and in the same per-session `mix64` streams. The
//! replicas are *counterfactual channel state*: "what would this TX deliver
//! were it steering at this headset". The scheduler is a pure overlay on
//! top: it observes each session's slot observables (active unit, signal,
//! margin, demand) and gates *delivery* — an ungranted session transports
//! nothing that slot no matter what its channel would have carried. The FSO
//! timeline (power, outages, handovers, control) is therefore
//! policy-invariant and bit-identical to [`run_fleet`](crate::engine::run_fleet) for every policy,
//! which is what keeps the engine-digest goldens stable and makes
//! policy ablations apples-to-apples. The scheduled slot loop is serial and
//! RNG-free, so per-seed bit-identity holds at any thread count.
//!
//! # Grant mechanics
//!
//! [`GrantEngine`] owns the slot-clocked mechanics shared by every policy:
//!
//! - **Stickiness**: a grant holds for [`SchedConfig::min_hold_slots`]
//!   before the policy is consulted again, so schedulers cannot thrash.
//! - **Occlusion/handover-aware release**: a grant is revoked early the
//!   moment its session stops being servable — beam occluded, SFP down,
//!   handed over to a different unit, or queue drained — freeing the unit
//!   for reassignment that same slot.
//! - **Retarget penalty**: when a unit switches sessions it spends
//!   [`SchedConfig::retarget_penalty_slots`] re-steering (dark), so
//!   preemption has a price.
//! - **Admission control**: [`TxScheduler::admit`] caps how many sessions
//!   enter service ([`SchedConfig::max_sessions_per_unit`]).
//!
//! Policies only rank: [`StaticPartition`] (sessions pinned to units by
//! index, rotated on a fixed quantum, blind to channel state — the
//! baseline), [`GreedyMaxMargin`] (best instantaneous margin wins —
//! maximizes aggregate goodput, starves the weak), and [`ProportionalFair`]
//! (rate normalized by an EWMA of received service, fairness knob `alpha` —
//! trades a little aggregate goodput for worst-session QoE).

use crate::engine::{
    build_fleet_session, EngineConfigError, EngineSlot, FleetConfig, FleetSummary, SlotSession,
    SlotSums, TxInstallation,
};
use crate::telemetry::TelemetryEvent;
use crate::traffic::{TrafficConfig, TrafficSource};
use cyclops_par::mix64;

/// Floor on the PF throughput average (Gbps) so unserved sessions have
/// finite, comparable scores.
const PF_EPS_GBPS: f64 = 1e-3;

// ---------------------------------------------------------------------------
// Grants
// ---------------------------------------------------------------------------

/// The slot's TX-unit → session assignment. Enforces the core invariant:
/// a unit serves at most one session and a session holds at most one unit.
#[derive(Debug, Clone)]
pub struct GrantSet {
    /// session → unit.
    unit_of: Vec<Option<u32>>,
    /// unit → session.
    session_of: Vec<Option<u32>>,
}

impl GrantSet {
    /// An empty grant set for `n_sessions` sessions over `n_units` units.
    pub fn new(n_sessions: usize, n_units: usize) -> GrantSet {
        GrantSet {
            unit_of: vec![None; n_sessions],
            session_of: vec![None; n_units],
        }
    }

    /// Grants `unit` to `session`. Returns `false` (and changes nothing) if
    /// either side is already taken — a unit cannot serve two sessions in
    /// one slot, and a session cannot hold two beams.
    pub fn grant(&mut self, session: usize, unit: usize) -> bool {
        if self.unit_of[session].is_some() || self.session_of[unit].is_some() {
            return false;
        }
        self.unit_of[session] = Some(unit as u32);
        self.session_of[unit] = Some(session as u32);
        true
    }

    /// Revokes whatever grant `unit` holds.
    pub fn release_unit(&mut self, unit: usize) {
        if let Some(s) = self.session_of[unit].take() {
            self.unit_of[s as usize] = None;
        }
    }

    /// The unit granted to `session`, if any.
    pub fn unit_of(&self, session: usize) -> Option<usize> {
        self.unit_of[session].map(|u| u as usize)
    }

    /// The session holding `unit`, if any.
    pub fn session_of(&self, unit: usize) -> Option<usize> {
        self.session_of[unit].map(|s| s as usize)
    }

    /// Units in the pool.
    pub fn n_units(&self) -> usize {
        self.session_of.len()
    }

    /// Grants currently held.
    pub fn n_granted(&self) -> usize {
        self.session_of.iter().filter(|s| s.is_some()).count()
    }

    /// Debug check of the bidirectional mapping (used by the proptests).
    pub fn is_consistent(&self) -> bool {
        for (u, s) in self.session_of.iter().enumerate() {
            if let Some(s) = s {
                if self.unit_of[*s as usize] != Some(u as u32) {
                    return false;
                }
            }
        }
        for (s, u) in self.unit_of.iter().enumerate() {
            if let Some(u) = u {
                if self.session_of[*u as usize] != Some(s as u32) {
                    return false;
                }
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Scheduler interface
// ---------------------------------------------------------------------------

/// One session's slot observables, as the scheduler sees them. Everything
/// here is derived from the session's own deterministic physics and traffic
/// state — schedulers observe, they never feed the physics.
#[derive(Debug, Clone, Copy)]
pub struct SessionSlotState {
    /// Session index.
    pub session: usize,
    /// Passed admission control at fleet start.
    pub admitted: bool,
    /// The unit the session's tracking/TP stack currently uses.
    pub active_unit: usize,
    /// Received power on the active unit is above SFP sensitivity.
    pub signal: bool,
    /// The FSO link is up (SFP locked, not RF-carried).
    pub link_up: bool,
    /// Link margin over sensitivity on the active unit (dB).
    pub margin_db: f64,
    /// Deliverable rate this slot if granted (Gbps).
    pub rate_gbps: f64,
    /// The sender has queued traffic.
    pub demand: bool,
    /// Bits queued at the sender.
    pub backlog_bits: f64,
    /// The session handed over to a different unit this slot.
    pub handed_over: bool,
    /// EWMA of the service rate actually received (Gbps) — the PF average.
    pub served_ewma_gbps: f64,
    /// The session's playout buffer is currently stalled.
    pub stalled: bool,
}

/// Per-slot scheduling context.
#[derive(Debug)]
pub struct SchedCtx<'a> {
    /// Slot index since fleet start.
    pub slot: u64,
    /// Slot length (seconds).
    pub slot_s: f64,
    /// Units in the shared pool.
    pub n_units: usize,
    /// One entry per session, indexed by session.
    pub sessions: &'a [SessionSlotState],
}

/// Slot-clocked assignment of sessions to the shared TX pool.
///
/// `assign` is consulted once per slot with the grants that survived the
/// [`GrantEngine`] release pass already in place; the policy fills free
/// units. [`GrantSet::grant`] enforces the one-session-per-unit invariant,
/// so a policy cannot double-book no matter how it ranks.
pub trait TxScheduler {
    /// The policy's display name (rollup/ablation tables).
    fn name(&self) -> &'static str;

    /// Admission control, called once per session at fleet start in
    /// session order. `cap` is the pool's admission capacity
    /// (`n_units × max_sessions_per_unit`; 0 = unlimited); `n_admitted`
    /// sessions were admitted before this one. The default admits while
    /// capacity allows.
    fn admit(&mut self, session: usize, n_admitted: usize, cap: usize) -> bool {
        let _ = session;
        cap == 0 || n_admitted < cap
    }

    /// Fills free units in `grants` for this slot.
    fn assign(&mut self, ctx: &SchedCtx<'_>, grants: &mut GrantSet);
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// The baseline: session `i` belongs to unit `i mod M` forever; each unit
/// serves its residents round-robin on a fixed quantum. Blind to occlusion,
/// demand, and where the session's beam actually points — exactly the
/// static partitioning a naive venue deployment would wire up.
#[derive(Debug, Clone, Copy)]
pub struct StaticPartition {
    /// Slots each resident keeps the unit before rotation.
    pub quantum_slots: u64,
}

impl Default for StaticPartition {
    fn default() -> Self {
        StaticPartition { quantum_slots: 64 }
    }
}

impl TxScheduler for StaticPartition {
    fn name(&self) -> &'static str {
        "static_partition"
    }

    fn assign(&mut self, ctx: &SchedCtx<'_>, grants: &mut GrantSet) {
        let m = ctx.n_units;
        let q = self.quantum_slots.max(1);
        for unit in 0..m {
            if grants.session_of(unit).is_some() {
                continue;
            }
            // Residents of this unit, in session order.
            let n_res = ctx
                .sessions
                .iter()
                .filter(|s| s.admitted && s.session % m == unit)
                .count() as u64;
            if n_res == 0 {
                continue;
            }
            let pick = ((ctx.slot / q) % n_res) as usize;
            let s = ctx
                .sessions
                .iter()
                .filter(|s| s.admitted && s.session % m == unit)
                .nth(pick)
                .expect("resident count just computed")
                .session;
            if grants.unit_of(s).is_none() {
                grants.grant(s, unit);
            }
        }
    }
}

/// Greedy max-margin: every slot, hand each free unit to the servable
/// session with the best link margin on it. Maximizes aggregate goodput;
/// persistently weak sessions starve.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMaxMargin;

impl TxScheduler for GreedyMaxMargin {
    fn name(&self) -> &'static str {
        "greedy_max_margin"
    }

    fn assign(&mut self, ctx: &SchedCtx<'_>, grants: &mut GrantSet) {
        assign_by_score(ctx, grants, |s| s.margin_db);
    }
}

/// Proportional-fair: rank by `rate / (eps + ewma)^alpha`, where `ewma` is
/// the service rate the session has actually been receiving. `alpha` is the
/// fairness knob: 0 degenerates to greedy-by-rate, 1 is classic PF, larger
/// values approach max-min.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalFair {
    /// Fairness exponent (≥ 0).
    pub alpha: f64,
}

impl Default for ProportionalFair {
    fn default() -> Self {
        ProportionalFair { alpha: 1.0 }
    }
}

impl TxScheduler for ProportionalFair {
    fn name(&self) -> &'static str {
        "proportional_fair"
    }

    fn assign(&mut self, ctx: &SchedCtx<'_>, grants: &mut GrantSet) {
        let alpha = self.alpha;
        assign_by_score(ctx, grants, move |s| {
            s.rate_gbps / (PF_EPS_GBPS + s.served_ewma_gbps).powf(alpha)
        });
    }
}

/// Shared ranking loop for channel-aware policies: repeatedly grant the
/// best-scoring servable candidate whose active unit is still free.
/// Ties break toward the lower session index ([`f64::total_cmp`], so NaN
/// scores cannot panic and sort below every real score).
fn assign_by_score(
    ctx: &SchedCtx<'_>,
    grants: &mut GrantSet,
    score: impl Fn(&SessionSlotState) -> f64,
) {
    loop {
        let mut best: Option<(f64, usize)> = None;
        for s in ctx.sessions {
            let servable = s.admitted && s.demand && s.signal && s.link_up;
            if !servable
                || grants.unit_of(s.session).is_some()
                || grants.session_of(s.active_unit).is_some()
            {
                continue;
            }
            let sc = score(s);
            let better = match best {
                Some((b, _)) => sc.total_cmp(&b) == std::cmp::Ordering::Greater,
                None => true,
            };
            if better {
                best = Some((sc, s.session));
            }
        }
        match best {
            Some((_, s)) => {
                grants.grant(s, ctx.sessions[s].active_unit);
            }
            None => break,
        }
    }
}

/// The built-in policies, as fleet-config data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedPolicy {
    /// [`StaticPartition`] with the given rotation quantum.
    StaticPartition {
        /// Slots each resident keeps the unit before rotation.
        quantum_slots: u64,
    },
    /// [`GreedyMaxMargin`].
    GreedyMaxMargin,
    /// [`ProportionalFair`] with fairness exponent `alpha`.
    ProportionalFair {
        /// Fairness exponent (≥ 0).
        alpha: f64,
    },
}

impl SchedPolicy {
    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::StaticPartition { .. } => "static_partition",
            SchedPolicy::GreedyMaxMargin => "greedy_max_margin",
            SchedPolicy::ProportionalFair { .. } => "proportional_fair",
        }
    }

    /// Instantiates the scheduler.
    pub fn scheduler(&self) -> Box<dyn TxScheduler> {
        match *self {
            SchedPolicy::StaticPartition { quantum_slots } => {
                Box::new(StaticPartition { quantum_slots })
            }
            SchedPolicy::GreedyMaxMargin => Box::new(GreedyMaxMargin),
            SchedPolicy::ProportionalFair { alpha } => Box::new(ProportionalFair { alpha }),
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling configuration
// ---------------------------------------------------------------------------

/// Configuration of the scheduled fleet: policy, traffic model, and the
/// grant mechanics every policy shares.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// The assignment policy.
    pub policy: SchedPolicy,
    /// Per-session traffic model (each session draws its own stream).
    pub traffic: TrafficConfig,
    /// Admission cap: at most `n_units × max_sessions_per_unit` sessions
    /// are admitted (0 = admit everyone).
    pub max_sessions_per_unit: usize,
    /// Minimum slots a grant holds before the policy may reassign it
    /// (early release still happens when the session stops being servable).
    pub min_hold_slots: u64,
    /// Slots a unit spends re-steering (dark) when it switches sessions.
    pub retarget_penalty_slots: u64,
    /// Time constant of the PF service-rate EWMA (seconds).
    pub ewma_tau_s: f64,
}

impl SchedConfig {
    /// A scheduled-fleet config with the given policy and default
    /// traffic/grant mechanics.
    pub fn new(policy: SchedPolicy) -> SchedConfig {
        SchedConfig {
            policy,
            traffic: TrafficConfig::default(),
            max_sessions_per_unit: 0,
            min_hold_slots: 16,
            retarget_penalty_slots: 1,
            ewma_tau_s: 0.25,
        }
    }

    /// The static-partition baseline.
    pub fn static_partition() -> SchedConfig {
        SchedConfig::new(SchedPolicy::StaticPartition { quantum_slots: 64 })
    }

    /// Greedy max-margin.
    pub fn greedy() -> SchedConfig {
        SchedConfig::new(SchedPolicy::GreedyMaxMargin)
    }

    /// Proportional-fair with fairness exponent `alpha`.
    pub fn proportional_fair(alpha: f64) -> SchedConfig {
        SchedConfig::new(SchedPolicy::ProportionalFair { alpha })
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), EngineConfigError> {
        self.traffic
            .validate()
            .map_err(EngineConfigError::InvalidFleet)?;
        if self.min_hold_slots == 0 {
            return Err(EngineConfigError::InvalidFleet(
                "min_hold_slots must be >= 1",
            ));
        }
        if !(self.ewma_tau_s.is_finite() && self.ewma_tau_s > 0.0) {
            return Err(EngineConfigError::InvalidFleet(
                "ewma_tau_s must be finite and positive",
            ));
        }
        match self.policy {
            SchedPolicy::StaticPartition { quantum_slots } => {
                if quantum_slots == 0 {
                    return Err(EngineConfigError::InvalidFleet(
                        "quantum_slots must be >= 1",
                    ));
                }
            }
            SchedPolicy::ProportionalFair { alpha } => {
                if !(alpha.is_finite() && alpha >= 0.0) {
                    return Err(EngineConfigError::InvalidFleet(
                        "alpha must be finite and >= 0",
                    ));
                }
            }
            SchedPolicy::GreedyMaxMargin => {}
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Grant engine
// ---------------------------------------------------------------------------

/// The slot-clocked grant mechanics shared by every policy: stickiness,
/// occlusion/handover-aware early release, retarget penalties, preemption
/// accounting and the PF service EWMA. Policies only rank candidates.
///
/// The engine is pure bookkeeping over the states the caller passes in —
/// no RNG, no physics — so it is trivially deterministic and directly
/// drivable by the property tests.
#[derive(Debug)]
pub struct GrantEngine {
    n_sessions: usize,
    n_units: usize,
    min_hold_slots: u64,
    retarget_penalty_slots: u64,
    /// Per-slot EWMA blend factor (`slot_s / ewma_tau_s`, clamped to 1).
    beta: f64,
    grants: GrantSet,
    /// Per-unit slots left on the current grant's hold.
    hold_left: Vec<u64>,
    /// Per-unit slots left re-steering (dark while > 0).
    retarget_left: Vec<u64>,
    /// Per-unit last session the beam steered at.
    last_served: Vec<Option<u32>>,
    /// Per-unit dark flag for the current slot.
    dark: Vec<bool>,
    /// Per-session service-rate EWMA (Gbps).
    ewma: Vec<f64>,
    /// Per-session grant at the end of the previous slot.
    prev_grant: Vec<Option<u32>>,
    /// Per-session preempted-this-slot flag.
    preempted: Vec<bool>,
}

impl GrantEngine {
    /// A fresh engine over `n_sessions` sessions and `n_units` units.
    pub fn new(n_sessions: usize, n_units: usize, cfg: &SchedConfig, slot_s: f64) -> GrantEngine {
        GrantEngine {
            n_sessions,
            n_units,
            min_hold_slots: cfg.min_hold_slots.max(1),
            retarget_penalty_slots: cfg.retarget_penalty_slots,
            beta: (slot_s / cfg.ewma_tau_s).min(1.0),
            grants: GrantSet::new(n_sessions, n_units),
            hold_left: vec![0; n_units],
            retarget_left: vec![0; n_units],
            last_served: vec![None; n_units],
            dark: vec![false; n_units],
            ewma: vec![0.0; n_sessions],
            prev_grant: vec![None; n_sessions],
            preempted: vec![false; n_sessions],
        }
    }

    /// One slot of grant maintenance: writes the service EWMAs into
    /// `states`, releases expired/unservable grants, consults `policy` for
    /// the free units, and starts retarget penalties for units that
    /// switched sessions.
    pub fn step(
        &mut self,
        slot: u64,
        slot_s: f64,
        states: &mut [SessionSlotState],
        policy: &mut dyn TxScheduler,
    ) {
        assert_eq!(states.len(), self.n_sessions);
        for (st, e) in states.iter_mut().zip(&self.ewma) {
            st.served_ewma_gbps = *e;
        }
        for (i, p) in self.prev_grant.iter_mut().enumerate() {
            *p = self.grants.unit_of(i).map(|u| u as u32);
        }

        // Release pass: holds tick down; a grant survives only while its
        // session stays servable on that exact unit.
        for unit in 0..self.n_units {
            if let Some(s) = self.grants.session_of(unit) {
                let st = &states[s];
                let servable =
                    st.admitted && st.demand && st.active_unit == unit && st.signal && st.link_up;
                self.hold_left[unit] = self.hold_left[unit].saturating_sub(1);
                if !servable || self.hold_left[unit] == 0 {
                    self.grants.release_unit(unit);
                }
            }
        }

        policy.assign(
            &SchedCtx {
                slot,
                slot_s,
                n_units: self.n_units,
                sessions: states,
            },
            &mut self.grants,
        );

        // Post-assign: fresh holds for new grants, retarget penalties for
        // units whose served session changed, dark flags for the slot.
        for unit in 0..self.n_units {
            match self.grants.session_of(unit) {
                Some(s) => {
                    if self.hold_left[unit] == 0 {
                        self.hold_left[unit] = self.min_hold_slots;
                    }
                    if self.last_served[unit] != Some(s as u32) {
                        self.retarget_left[unit] = self.retarget_penalty_slots;
                        self.last_served[unit] = Some(s as u32);
                    }
                    self.dark[unit] = self.retarget_left[unit] > 0;
                    self.retarget_left[unit] = self.retarget_left[unit].saturating_sub(1);
                }
                None => {
                    self.hold_left[unit] = 0;
                    self.dark[unit] = false;
                }
            }
        }

        for (i, st) in states.iter().enumerate().take(self.n_sessions) {
            self.preempted[i] =
                self.prev_grant[i].is_some() && self.grants.unit_of(i).is_none() && st.demand;
        }
    }

    /// Records the service rate session `i` actually received this slot
    /// (0 when unserved) — feeds the PF average.
    pub fn note_rate(&mut self, session: usize, gbps: f64) {
        let e = &mut self.ewma[session];
        *e += self.beta * (gbps - *e);
    }

    /// The unit granted to `session` this slot.
    pub fn unit_of(&self, session: usize) -> Option<usize> {
        self.grants.unit_of(session)
    }

    /// Whether `unit` is re-steering (dark) this slot.
    pub fn unit_dark(&self, unit: usize) -> bool {
        self.dark[unit]
    }

    /// Whether `session` lost its grant this slot with traffic queued.
    pub fn preempted(&self, session: usize) -> bool {
        self.preempted[session]
    }

    /// Whether `session` can transport bits this slot: granted the unit its
    /// beam actually uses, FSO up, and the unit done re-steering.
    pub fn deliverable(&self, session: usize, st: &SessionSlotState) -> bool {
        match self.grants.unit_of(session) {
            Some(u) => u == st.active_unit && st.link_up && !self.dark[u],
            None => false,
        }
    }

    /// The current grant set (for tests/inspection).
    pub fn grants(&self) -> &GrantSet {
        &self.grants
    }
}

// ---------------------------------------------------------------------------
// Per-session / fleet accounting
// ---------------------------------------------------------------------------

/// Contention, fairness and QoE accounting of one scheduled session
/// ([`SessionReport::sched`](crate::engine::SessionReport::sched); `None` when the fleet ran unscheduled).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedSessionStats {
    /// Passed admission control.
    pub admitted: bool,
    /// Slots holding a TX grant.
    pub granted_slots: u64,
    /// Slots that actually transported bits (granted ∧ FSO up ∧ steered).
    pub served_slots: u64,
    /// Slots with queued traffic but no service.
    pub denied_slots: u64,
    /// Slots lost to the unit re-steering after a switch.
    pub retarget_slots: u64,
    /// Grants revoked with traffic still queued.
    pub preempts: u64,
    /// Service availability: `served_slots / slots`.
    pub availability: f64,
    /// Gigabits delivered to the traffic layer.
    pub delivered_gb: f64,
    /// Mean delivered rate over the run (Gbps).
    pub mean_served_gbps: f64,
    /// Gigabits offered by the traffic source.
    pub offered_gb: f64,
    /// Total playout stall time (seconds).
    pub stall_s: f64,
    /// Stall time as a fraction of the run.
    pub stall_frac: f64,
    /// Stall episodes entered.
    pub stall_events: u64,
    /// Frames generated by the source.
    pub frames_generated: u64,
    /// Frames consumed by the display.
    pub frames_played: u64,
}

/// Fleet-level rollup of the scheduling/QoE accounting
/// ([`FleetRollup::sched`](crate::engine::FleetRollup::sched)).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedRollup {
    /// Sessions admitted.
    pub n_admitted: usize,
    /// Total granted slots.
    pub total_granted: u64,
    /// Total served slots.
    pub total_served: u64,
    /// Total demand-but-no-service slots.
    pub total_denied: u64,
    /// Total preemptions.
    pub total_preempts: u64,
    /// Mean per-session service availability.
    pub mean_availability: f64,
    /// Worst session's service availability.
    pub min_availability: f64,
    /// Aggregate delivered rate (Gbps, sum of per-session means).
    pub sum_served_gbps: f64,
    /// Mean per-session stall fraction.
    pub mean_stall_frac: f64,
    /// Worst session's total stall time (seconds) — the QoE headline.
    pub worst_stall_s: f64,
    /// Total stall episodes.
    pub total_stall_events: u64,
    /// Total frames played.
    pub total_frames_played: u64,
    /// Jain fairness index over the admitted sessions' delivered rates
    /// (1 = perfectly even service).
    pub fairness_jain: f64,
}

// ---------------------------------------------------------------------------
// Scheduled fleet driver
// ---------------------------------------------------------------------------

/// Runs a fleet with the TX pool as a shared, scheduled resource, using the
/// policy named in `sched`. See the module docs for the physics contract.
/// Rejects an empty unit pool or an invalid [`SchedConfig`] with a typed
/// error instead of panicking.
pub fn run_fleet_scheduled(
    units: &[TxInstallation],
    fleet: &FleetConfig,
    sched: &SchedConfig,
) -> Result<FleetSummary, EngineConfigError> {
    let mut policy = sched.policy.scheduler();
    run_fleet_with_scheduler(units, fleet, sched, policy.as_mut())
}

/// [`run_fleet_scheduled`] with a caller-supplied policy (custom
/// [`TxScheduler`] implementations plug in here).
pub fn run_fleet_with_scheduler(
    units: &[TxInstallation],
    fleet: &FleetConfig,
    sched: &SchedConfig,
    policy: &mut dyn TxScheduler,
) -> Result<FleetSummary, EngineConfigError> {
    if units.is_empty() {
        return Err(EngineConfigError::NoUnits);
    }
    sched.validate()?;
    let n = fleet.n_sessions;
    let m = units.len();

    // Build every session exactly as the unscheduled fleet does — same
    // constructor, same per-session streams — so the physics timelines are
    // bit-identical to run_fleet regardless of policy.
    let mut sessions = Vec::with_capacity(n);
    let mut seeds = Vec::with_capacity(n);
    for i in 0..n {
        let (s, seed) = build_fleet_session(units, fleet, i);
        sessions.push(s);
        seeds.push(seed);
    }

    // Admission control, in session order.
    let cap = m * sched.max_sessions_per_unit;
    let mut admitted = vec![false; n];
    let mut n_admitted = 0usize;
    for (i, a) in admitted.iter_mut().enumerate() {
        *a = policy.admit(i, n_admitted, cap);
        n_admitted += *a as usize;
    }

    let slot_s = sessions[0].cfg().slot_s;
    let n_slots = (fleet.duration_s / slot_s).round() as usize;
    let sens = units[0].dep.design.sfp.rx_sensitivity_dbm;
    let collect = fleet.collect_telemetry;

    let mut ge = GrantEngine::new(n, m, sched, slot_s);
    let mut traffic: Vec<TrafficSource> = seeds
        .iter()
        .map(|&s| TrafficSource::new(sched.traffic, mix64(s, 0x7ea_ff1c)))
        .collect();
    let mut sums: Vec<SlotSums> = (0..n).map(|_| SlotSums::new()).collect();
    let mut acc: Vec<SchedSessionStats> = admitted
        .iter()
        .map(|&a| SchedSessionStats {
            admitted: a,
            ..SchedSessionStats::default()
        })
        .collect();
    let mut states: Vec<SessionSlotState> = (0..n)
        .map(|i| SessionSlotState {
            session: i,
            admitted: admitted[i],
            active_unit: 0,
            signal: false,
            link_up: false,
            margin_db: f64::NEG_INFINITY,
            rate_gbps: 0.0,
            demand: false,
            backlog_bits: 0.0,
            handed_over: false,
            served_ewma_gbps: 0.0,
            stalled: false,
        })
        .collect();
    let mut recs: Vec<EngineSlot> = Vec::with_capacity(n);
    let mut prev_active = vec![0usize; n];
    let mut prev_grant: Vec<Option<usize>> = vec![None; n];

    for s in sessions.iter_mut() {
        s.begin_external_run();
    }

    // The slot-synchronous loop: all sessions advance one slot, then the
    // scheduler assigns the pool, then traffic drains over the grants.
    // Serial by design (sessions couple through the pool), and RNG-free
    // outside the per-session physics — deterministic at any thread count.
    for k in 0..n_slots {
        recs.clear();
        for i in 0..n {
            let rec = sessions[i].step_slot(k);
            sums[i].absorb(&rec, sens);
            traffic[i].arrive_until(rec.t);
            let fso_up = rec.link_up && !rec.rf_active;
            states[i] = SessionSlotState {
                session: i,
                admitted: admitted[i],
                active_unit: rec.active,
                signal: rec.power_dbm >= sens,
                link_up: fso_up,
                margin_db: rec.power_dbm - sens,
                rate_gbps: rec.goodput_gbps,
                demand: traffic[i].has_demand(),
                backlog_bits: traffic[i].backlog_bits(),
                handed_over: rec.active != prev_active[i],
                served_ewma_gbps: 0.0, // filled by the grant engine
                stalled: traffic[i].is_stalled(),
            };
            prev_active[i] = rec.active;
            recs.push(rec);
        }

        ge.step(k as u64, slot_s, &mut states, policy);

        for i in 0..n {
            let rec = &recs[i];
            let unit = ge.unit_of(i);
            let fso_served = ge.deliverable(i, &states[i]);
            // RF-carried slots bypass the TX pool entirely (the fallback is
            // broadcast, not steered), so they drain without a grant.
            let capacity_gbps = if rec.rf_active || fso_served {
                rec.goodput_gbps
            } else {
                0.0
            };
            let delivered = if capacity_gbps > 0.0 {
                traffic[i].deliver(capacity_gbps * 1e9 * slot_s)
            } else {
                0.0
            };
            ge.note_rate(i, delivered / (1e9 * slot_s));
            let ps = traffic[i].playout_step(rec.t, slot_s);

            let a = &mut acc[i];
            a.granted_slots += unit.is_some() as u64;
            a.served_slots += fso_served as u64;
            a.denied_slots += (states[i].demand && !fso_served && !rec.rf_active) as u64;
            if let Some(u) = unit {
                a.retarget_slots += ge.unit_dark(u) as u64;
            }
            a.preempts += ge.preempted(i) as u64;
            a.delivered_gb += delivered / 1e9;

            if collect {
                let tele = sessions[i].telemetry_mut();
                if unit != prev_grant[i] {
                    if let Some(u) = unit {
                        tele.emit(&TelemetryEvent::SchedGrant {
                            t: rec.t,
                            unit: u as u64,
                        });
                    } else if ge.preempted(i) {
                        tele.emit(&TelemetryEvent::SchedPreempt {
                            t: rec.t,
                            unit: prev_grant[i].unwrap_or(0) as u64,
                        });
                    }
                }
                if let Some(stall_s) = ps.stall_ended {
                    tele.emit(&TelemetryEvent::PlayoutStall { t: rec.t, stall_s });
                }
            }
            prev_grant[i] = unit;
        }
    }

    // Reports: the physics fields are byte-for-byte what run_fleet folds;
    // the scheduling/QoE accounting rides alongside.
    let mut reports = Vec::with_capacity(n);
    for (i, mut session) in sessions.into_iter().enumerate() {
        session.end_external_run();
        if collect {
            session.telemetry_mut().emit(&TelemetryEvent::SessionEnd {
                session: i as u64,
                slots: sums[i].slots as u64,
            });
        }
        let mut rep = sums[i].report(i, seeds[i], &session);
        let ts = traffic[i].stats();
        let slots = sums[i].slots.max(1) as f64;
        let dur = slots * slot_s;
        let a = &mut acc[i];
        a.availability = a.served_slots as f64 / slots;
        a.mean_served_gbps = a.delivered_gb / dur;
        a.offered_gb = ts.offered_gb;
        a.stall_s = ts.stall_s;
        a.stall_frac = ts.stall_s / dur;
        a.stall_events = ts.stall_events;
        a.frames_generated = ts.frames_generated;
        a.frames_played = ts.frames_played;
        rep.sched = Some(*a);
        reports.push(rep);
    }
    Ok(FleetSummary { sessions: reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fleet;
    use std::sync::OnceLock;

    fn units() -> &'static Vec<TxInstallation> {
        static UNITS: OnceLock<Vec<TxInstallation>> = OnceLock::new();
        UNITS.get_or_init(|| crate::multi_tx::tests::two_units(911))
    }

    /// Synthetic state: always servable on unit `active`, given rate.
    fn state(session: usize, active: usize, rate: f64) -> SessionSlotState {
        SessionSlotState {
            session,
            admitted: true,
            active_unit: active,
            signal: true,
            link_up: true,
            margin_db: rate, // monotone stand-in
            rate_gbps: rate,
            demand: true,
            backlog_bits: 1e9,
            handed_over: false,
            served_ewma_gbps: 0.0,
            stalled: false,
        }
    }

    #[test]
    fn grant_set_rejects_double_booking() {
        let mut g = GrantSet::new(3, 2);
        assert!(g.grant(0, 1));
        assert!(!g.grant(1, 1), "unit 1 already serves session 0");
        assert!(!g.grant(0, 0), "session 0 already holds unit 1");
        assert!(g.grant(2, 0));
        assert_eq!(g.n_granted(), 2);
        assert!(g.is_consistent());
        g.release_unit(1);
        assert_eq!(g.unit_of(0), None);
        assert!(g.grant(1, 1));
        assert!(g.is_consistent());
    }

    #[test]
    fn admission_respects_pool_capacity() {
        let mut p = GreedyMaxMargin;
        let cap = 4; // 2 units × 2
        let mut admitted = 0;
        for i in 0..10 {
            if TxScheduler::admit(&mut p, i, admitted, cap) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4);
        // cap 0 = unlimited
        let mut admitted = 0;
        for i in 0..10 {
            if TxScheduler::admit(&mut p, i, admitted, 0) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }

    /// Drives the grant engine over synthetic always-servable states and
    /// returns per-session served-slot counts.
    fn drive_synthetic(
        policy: &mut dyn TxScheduler,
        cfg: &SchedConfig,
        rates: &[f64],
        n_units: usize,
        slots: u64,
    ) -> Vec<u64> {
        let n = rates.len();
        let slot_s = 1e-3;
        let mut ge = GrantEngine::new(n, n_units, cfg, slot_s);
        let mut served = vec![0u64; n];
        let mut states: Vec<SessionSlotState> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| state(i, i % n_units, r))
            .collect();
        for k in 0..slots {
            ge.step(k, slot_s, &mut states, policy);
            for i in 0..n {
                let ok = ge.deliverable(i, &states[i]);
                served[i] += ok as u64;
                ge.note_rate(i, if ok { states[i].rate_gbps } else { 0.0 });
            }
        }
        served
    }

    #[test]
    fn proportional_fair_shares_a_single_unit_evenly() {
        let cfg = SchedConfig::proportional_fair(1.0);
        let mut p = ProportionalFair { alpha: 1.0 };
        // 4 equal sessions all wanting unit 0.
        let served = drive_synthetic(&mut p, &cfg, &[8.0, 8.0, 8.0, 8.0], 1, 20_000);
        let total: u64 = served.iter().sum();
        for (i, &s) in served.iter().enumerate() {
            let share = s as f64 / total as f64;
            assert!(
                (share - 0.25).abs() < 0.05,
                "session {i} share {share} (served {served:?})"
            );
        }
    }

    #[test]
    fn greedy_starves_the_weak_session() {
        let cfg = SchedConfig::greedy();
        let mut g = GreedyMaxMargin;
        let served = drive_synthetic(&mut g, &cfg, &[8.0, 4.0], 1, 5_000);
        assert!(
            served[0] > 9 * served[1].max(1),
            "greedy should all-but-starve the weak session: {served:?}"
        );
        let cfg = SchedConfig::proportional_fair(1.0);
        let mut p = ProportionalFair { alpha: 1.0 };
        let served_pf = drive_synthetic(&mut p, &cfg, &[8.0, 4.0], 1, 5_000);
        assert!(
            served_pf[1] > served[1] * 10,
            "PF should serve the weak session far more than greedy: pf {served_pf:?} greedy {served:?}"
        );
    }

    #[test]
    fn static_partition_rotates_residents_on_the_quantum() {
        // Hold of 1 and no retarget penalty so the rotation is exactly the
        // quantum pattern (a longer hold beats against the quantum).
        let mut cfg = SchedConfig::static_partition();
        cfg.min_hold_slots = 1;
        cfg.retarget_penalty_slots = 0;
        let mut p = StaticPartition { quantum_slots: 10 };
        // 2 sessions share 1 unit: each should get ~half the slots.
        let served = drive_synthetic(&mut p, &cfg, &[8.0, 8.0], 1, 10_000);
        let total: u64 = served.iter().sum();
        for &s in &served {
            let share = s as f64 / total as f64;
            assert!((share - 0.5).abs() < 0.05, "{served:?}");
        }
    }

    /// The tentpole invariant: scheduling is a pure overlay, so every
    /// physics field of every session report is bit-identical to the
    /// unscheduled (cloned-unit) fleet — for the static-partition baseline
    /// and for every other policy.
    #[test]
    fn scheduled_physics_is_bit_identical_to_cloned_unit_fleet() {
        let units = units();
        let fleet = FleetConfig {
            n_sessions: 3,
            duration_s: 0.5,
            seed: 77,
            collect_telemetry: false,
            ..FleetConfig::default()
        };
        let base = run_fleet(units, &fleet);
        for sched in [
            SchedConfig::static_partition(),
            SchedConfig::greedy(),
            SchedConfig::proportional_fair(1.0),
        ] {
            let got = run_fleet_scheduled(units, &fleet, &sched).unwrap();
            assert_eq!(base.sessions.len(), got.sessions.len());
            for (a, b) in base.sessions.iter().zip(&got.sessions) {
                assert_eq!(a.session, b.session);
                assert_eq!(a.seed, b.seed);
                assert_eq!(a.slots, b.slots);
                assert_eq!(a.up_frac.to_bits(), b.up_frac.to_bits());
                assert_eq!(a.signal_frac.to_bits(), b.signal_frac.to_bits());
                assert_eq!(a.mean_goodput_gbps.to_bits(), b.mean_goodput_gbps.to_bits());
                assert_eq!(a.mean_power_dbm.to_bits(), b.mean_power_dbm.to_bits());
                assert_eq!(a.rf_frac.to_bits(), b.rf_frac.to_bits());
                assert_eq!(a.handovers, b.handovers);
                assert_eq!(a.stats.n_outages, b.stats.n_outages);
                assert_eq!(a.stats.outage_s.to_bits(), b.stats.outage_s.to_bits());
                assert_eq!(a.tp_reports, b.tp_reports);
                assert_eq!(a.tp_failures, b.tp_failures);
                assert!(a.sched.is_none());
                assert!(b.sched.is_some());
            }
        }
    }

    #[test]
    fn scheduled_run_is_deterministic() {
        let units = units();
        let fleet = FleetConfig {
            n_sessions: 4,
            duration_s: 0.4,
            seed: 5,
            ..FleetConfig::default()
        };
        let sched = SchedConfig::proportional_fair(1.0);
        let a = run_fleet_scheduled(units, &fleet, &sched).unwrap();
        let b = run_fleet_scheduled(units, &fleet, &sched).unwrap();
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            let (xs, ys) = (x.sched.unwrap(), y.sched.unwrap());
            assert_eq!(xs.served_slots, ys.served_slots);
            assert_eq!(xs.delivered_gb.to_bits(), ys.delivered_gb.to_bits());
            assert_eq!(xs.stall_s.to_bits(), ys.stall_s.to_bits());
            assert_eq!(xs.preempts, ys.preempts);
        }
    }

    #[test]
    fn contention_caps_aggregate_service() {
        // More sessions than units: total served slots per slot can't
        // exceed the pool size.
        let units = units();
        let fleet = FleetConfig {
            n_sessions: 5,
            duration_s: 0.4,
            seed: 9,
            ..FleetConfig::default()
        };
        let sum = run_fleet_scheduled(units, &fleet, &SchedConfig::greedy()).unwrap();
        let total_served: u64 = sum
            .sessions
            .iter()
            .map(|s| s.sched.unwrap().served_slots)
            .sum();
        let slots = sum.sessions[0].slots as u64;
        assert!(
            total_served <= slots * units.len() as u64,
            "served {total_served} > pool capacity {}",
            slots * units.len() as u64
        );
        // And with demand this heavy at least one unit should be serving
        // most slots (sessions often converge on the same best unit, so
        // the second unit can sit idle).
        assert!(total_served * 2 > slots, "pool nearly idle: {total_served}");
    }

    #[test]
    fn admission_cap_rejects_and_reports() {
        let units = units();
        let fleet = FleetConfig {
            n_sessions: 5,
            duration_s: 0.3,
            seed: 3,
            ..FleetConfig::default()
        };
        let mut sched = SchedConfig::greedy();
        sched.max_sessions_per_unit = 1; // cap = 2 admitted
        let sum = run_fleet_scheduled(units, &fleet, &sched).unwrap();
        let admitted = sum
            .sessions
            .iter()
            .filter(|s| s.sched.unwrap().admitted)
            .count();
        assert_eq!(admitted, 2);
        for s in &sum.sessions {
            let sc = s.sched.unwrap();
            if !sc.admitted {
                assert_eq!(sc.granted_slots, 0, "rejected session was granted");
                assert_eq!(sc.delivered_gb, 0.0);
            }
        }
        let roll = sum.rollup();
        assert_eq!(roll.sched.unwrap().n_admitted, 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Across fleet seeds, the static-partition baseline's physics is
        /// bit-identical to the cloned-unit fleet (the per-case work rides
        /// on the shared `OnceLock` fixture, so cases stay cheap).
        #[test]
        fn prop_static_partition_physics_matches_cloned_fleet(seed in 0u64..1_000) {
            let fleet = FleetConfig {
                n_sessions: 2,
                duration_s: 0.25,
                seed,
                ..FleetConfig::default()
            };
            let base = run_fleet(units(), &fleet);
            let got = run_fleet_scheduled(units(), &fleet, &SchedConfig::static_partition()).unwrap();
            for (a, b) in base.sessions.iter().zip(&got.sessions) {
                proptest::prop_assert_eq!(a.up_frac.to_bits(), b.up_frac.to_bits());
                proptest::prop_assert_eq!(
                    a.mean_goodput_gbps.to_bits(),
                    b.mean_goodput_gbps.to_bits()
                );
                proptest::prop_assert_eq!(a.mean_power_dbm.to_bits(), b.mean_power_dbm.to_bits());
                proptest::prop_assert_eq!(a.handovers, b.handovers);
            }
        }
    }

    #[test]
    fn sched_config_validation() {
        assert!(SchedConfig::greedy().validate().is_ok());
        let mut c = SchedConfig::greedy();
        c.min_hold_slots = 0;
        assert!(c.validate().is_err());
        let mut c = SchedConfig::proportional_fair(f64::NAN);
        assert!(c.validate().is_err());
        c = SchedConfig::new(SchedPolicy::StaticPartition { quantum_slots: 0 });
        assert!(c.validate().is_err());
        let mut c = SchedConfig::greedy();
        c.traffic.fps = -1.0;
        assert!(c.validate().is_err());
    }
}
