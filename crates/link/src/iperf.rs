//! iperf-style throughput measurement.
//!
//! The paper measures "for every 50 ms time window ... the average
//! throughput (using iperf) as well as the linear speed (using VRH-T
//! reports)" (§5.3). [`ThroughputMeter`] reproduces that: feed it per-slot
//! delivered bits and it emits window-averaged Gbps.

/// Windowed goodput meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    /// Window length (seconds); the paper uses 50 ms.
    pub window_s: f64,
    acc_bits: f64,
    acc_t: f64,
    windows: Vec<f64>,
}

impl ThroughputMeter {
    /// Creates a meter with the given window.
    pub fn new(window_s: f64) -> ThroughputMeter {
        assert!(window_s > 0.0);
        ThroughputMeter {
            window_s,
            acc_bits: 0.0,
            acc_t: 0.0,
            windows: Vec::new(),
        }
    }

    /// The paper's 50 ms window.
    pub fn paper_default() -> ThroughputMeter {
        ThroughputMeter::new(0.050)
    }

    /// Records `bits` delivered over a slot of `dt` seconds. A slot longer
    /// than the remaining window is split proportionally across the windows
    /// it covers (uniform delivery within the slot).
    pub fn record(&mut self, mut bits: f64, mut dt: f64) {
        while dt > 0.0 {
            let remaining = self.window_s - self.acc_t;
            if dt < remaining - 1e-12 {
                self.acc_bits += bits;
                self.acc_t += dt;
                return;
            }
            // Fill the current window with the slot's proportional share.
            let share = bits * (remaining / dt).min(1.0);
            self.acc_bits += share;
            bits -= share;
            dt -= remaining;
            let gbps = self.acc_bits / self.window_s / 1e9;
            self.windows.push(gbps);
            self.acc_bits = 0.0;
            self.acc_t = 0.0;
        }
    }

    /// Completed windows so far (Gbps each).
    pub fn windows(&self) -> &[f64] {
        &self.windows
    }

    /// Mean goodput over all completed windows (Gbps).
    pub fn mean_gbps(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.windows.iter().sum::<f64>() / self.windows.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_measures_exactly() {
        let mut m = ThroughputMeter::paper_default();
        // 9.4 Gbps for one second in 1 ms slots.
        for _ in 0..1000 {
            m.record(9.4e9 * 1e-3, 1e-3);
        }
        assert_eq!(m.windows().len(), 20);
        for w in m.windows() {
            assert!((w - 9.4).abs() < 1e-9, "window {w}");
        }
        assert!((m.mean_gbps() - 9.4).abs() < 1e-9);
    }

    #[test]
    fn outage_shows_as_zero_windows() {
        let mut m = ThroughputMeter::paper_default();
        for i in 0..200 {
            let up = !(50..150).contains(&i); // 100 ms outage in the middle
            m.record(if up { 1e9 * 1e-3 } else { 0.0 }, 1e-3);
        }
        let w = m.windows();
        assert_eq!(w.len(), 4);
        assert!(w[0] > 0.9 && w[3] > 0.9);
        assert!(w[1] < 1e-9 && w[2] < 1e-9);
    }

    #[test]
    fn long_slot_spreads_across_windows() {
        // One 120 ms burst at a constant rate covers two full windows and
        // part of a third; bits must spread, not pile into the first.
        let mut m = ThroughputMeter::paper_default();
        m.record(1.2e9 * 0.12, 0.12); // 1.2 Gbps for 120 ms
        assert_eq!(m.windows().len(), 2);
        for w in m.windows() {
            assert!((w - 1.2).abs() < 1e-9, "window {w}");
        }
    }

    #[test]
    fn partial_window_not_emitted() {
        let mut m = ThroughputMeter::paper_default();
        for _ in 0..49 {
            m.record(1e6, 1e-3);
        }
        assert!(m.windows().is_empty());
        m.record(1e6, 1e-3);
        assert_eq!(m.windows().len(), 1);
    }

    #[test]
    fn empty_meter_mean_is_zero() {
        assert_eq!(ThroughputMeter::paper_default().mean_gbps(), 0.0);
    }
}
