//! Received power → bit-error rate → frame loss.
//!
//! An intensity-modulated direct-detection (OOK) receiver in Gaussian noise
//! has `BER = ½·erfc(Q/√2)`, with the Q factor proportional to the received
//! *amplitude*. SFP data sheets specify the sensitivity as the power at
//! which BER reaches 10⁻¹² (`Q ≈ 7.03`); the model anchors there and scales
//! `Q` with received power: `Q = Q_ref · 10^((P − P_sens)/20)` (20, not 10:
//! amplitude, not power).
//!
//! The practical upshot reproduced from the paper: the link is a cliff. A
//! couple of dB above sensitivity the frame loss is immeasurably small; a
//! couple of dB below, nothing gets through — which is why the paper's
//! throughput plots switch between "optimal" and "zero" so sharply.

/// Q factor at the specified sensitivity (BER 10⁻¹²).
pub const Q_AT_SENSITIVITY: f64 = 7.034;

/// Complementary error function (Abramowitz & Stegun 7.1.26-based rational
/// approximation, |error| < 1.5·10⁻⁷, extended by symmetry).
#[inline]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// The power→loss channel for a given transceiver sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct FsoChannel {
    /// Receiver sensitivity (dBm) at which BER = 10⁻¹².
    pub sensitivity_dbm: f64,
    /// Receiver overload threshold (dBm): above this the receiver saturates
    /// and errors grow again.
    pub overload_dbm: f64,
}

impl FsoChannel {
    /// Channel anchored at a transceiver's data-sheet points.
    pub fn new(sensitivity_dbm: f64, overload_dbm: f64) -> FsoChannel {
        FsoChannel {
            sensitivity_dbm,
            overload_dbm,
        }
    }

    /// Q factor at the given received power. Total: NaN and ±∞ inputs map
    /// to `Q = 0` (no usable signal) rather than propagating — a garbage
    /// power report must read as "link dead", never as NaN throughput.
    /// (+∞ is genuinely the overload limit: `Q ∝ 10^(p/20 − p/10) → 0`.)
    #[inline]
    pub fn q_factor(&self, rx_dbm: f64) -> f64 {
        if !rx_dbm.is_finite() {
            return 0.0;
        }
        let mut q = Q_AT_SENSITIVITY * 10f64.powf((rx_dbm - self.sensitivity_dbm) / 20.0);
        if rx_dbm > self.overload_dbm {
            // Saturation: Q degrades with overdrive.
            q *= 10f64.powf(-(rx_dbm - self.overload_dbm) / 10.0);
        }
        if q.is_finite() {
            q
        } else {
            0.0
        }
    }

    /// Bit-error rate at the given received power. Total: always in
    /// `[0, 0.5]`, even for non-finite input.
    #[inline]
    pub fn ber(&self, rx_dbm: f64) -> f64 {
        let q = self.q_factor(rx_dbm);
        let b = 0.5 * erfc(q / std::f64::consts::SQRT_2);
        if b.is_nan() {
            return 0.5;
        }
        b.clamp(0.0, 0.5)
    }

    /// Probability an `n_bits` frame survives (no bit errors). Total:
    /// always in `[0, 1]`.
    #[inline]
    pub fn frame_success_prob(&self, rx_dbm: f64, n_bits: u64) -> f64 {
        let ber = self.ber(rx_dbm);
        if ber <= 1e-15 {
            return 1.0;
        }
        // (1−p)^n via exp(n·ln(1−p)), stable for small p.
        (n_bits as f64 * (1.0 - ber).ln()).exp().clamp(0.0, 1.0)
    }
}

/// mmWave-style RF fallback rates (Gbps), highest modulation first. The
/// values follow the 802.11ad single-carrier MCS ladder shape: each rung
/// down sheds modulation order as SNR drops with distance.
pub const RF_RATE_LADDER_GBPS: [f64; 6] = [2.31, 1.925, 1.54, 1.155, 0.77, 0.385];

/// A low-rate RF side channel used as a fallback while the FSO beam is
/// re-acquiring (hybrid FSO/RF, cf. the RF-assisted-FSO literature).
///
/// Deliberately *not* an optical model: RF needs no pointing, no SFP
/// re-lock, and survives occlusion by diffraction — so its rate is a pure,
/// deterministic function of TX–RX distance and a line-of-sight flag. The
/// rate ladder steps down one rung per `rung_range_m` of distance and
/// `occlusion_rung_penalty` extra rungs when the path is blocked (reduced
/// but nonzero: that is the whole point of the fallback). Beyond
/// `max_range_m` (or for non-finite distance) the rate is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfChannel {
    /// Distance per modulation rung (m): rung `i` covers
    /// `[i·rung_range_m, (i+1)·rung_range_m)`.
    pub rung_range_m: f64,
    /// Extra rungs lost when the direct path is occluded (diffraction loss).
    pub occlusion_rung_penalty: usize,
    /// Hard range limit (m); past this the RF link is unusable too.
    pub max_range_m: f64,
}

impl Default for RfChannel {
    /// Room-scale 60 GHz defaults: full rate within 2 m, one rung per
    /// further 2 m, two rungs of diffraction penalty, 30 m hard range.
    fn default() -> RfChannel {
        RfChannel {
            rung_range_m: 2.0,
            occlusion_rung_penalty: 2,
            max_range_m: 30.0,
        }
    }
}

impl RfChannel {
    /// Ladder rung in use at this distance/occlusion, or `None` when out of
    /// range (non-finite or negative distances are out of range). Total:
    /// never panics on garbage input.
    #[inline]
    pub fn rung(&self, distance_m: f64, occluded: bool) -> Option<usize> {
        if !(distance_m >= 0.0 && distance_m <= self.max_range_m) {
            return None;
        }
        let base = (distance_m / self.rung_range_m) as usize;
        let rung = base.saturating_add(if occluded {
            self.occlusion_rung_penalty
        } else {
            0
        });
        Some(rung.min(RF_RATE_LADDER_GBPS.len() - 1))
    }

    /// Deliverable RF rate (Gbps) at this distance/occlusion; `0.0` when out
    /// of range. No pointing, no lock hysteresis: the rate is available the
    /// instant the policy switches traffic onto the RF link.
    #[inline]
    pub fn rate_gbps(&self, distance_m: f64, occluded: bool) -> f64 {
        match self.rung(distance_m, occluded) {
            Some(r) => RF_RATE_LADDER_GBPS[r],
            None => 0.0,
        }
    }
}

/// Hot-path wrapper over [`FsoChannel::frame_success_prob`] at a fixed frame
/// size, used by the engine's slot loop.
///
/// In the default build it is **bit-identical** to the analytic path; the
/// speed comes from two exact shortcuts:
///
/// 1. *Unity interval.* The analytic path returns exactly `1.0` whenever
///    `ber ≤ 1e-15`. At construction, a bisection against the exact `ber`
///    finds a conservative power interval where `ber ≤ 1e-18` — three orders
///    of magnitude of safety margin, so float wiggle at the edges cannot
///    cross the `1e-15` early-return threshold. Powers inside the interval
///    skip the `powf`/`erfc`/`ln`/`exp` chain entirely.
/// 2. *Exact-input memo.* The last `(rx_dbm bits → result)` pair is kept, so
///    repeated identical inputs (e.g. the −90 dBm power-meter floor during
///    an occlusion) are answered without recomputation.
///
/// Under the opt-in `fast-channel` feature the computation is delegated to
/// the interpolated [`fast::ChannelLut`] instead (error-bounded, see the
/// module docs) — digests may then legitimately differ.
#[derive(Debug, Clone)]
pub struct FrameSuccessCache {
    channel: FsoChannel,
    frame_bits: u64,
    /// Conservative closed interval on which the analytic path provably
    /// returns exactly 1.0. NaN bounds ⇒ no such interval (checks fail).
    unity_lo_dbm: f64,
    unity_hi_dbm: f64,
    last_in_bits: u64,
    last_out: f64,
    #[cfg(feature = "fast-channel")]
    lut: fast::ChannelLut,
}

impl FrameSuccessCache {
    /// Builds the cache for one channel and frame size.
    pub fn new(channel: FsoChannel, frame_bits: u64) -> FrameSuccessCache {
        // ber(p) is decreasing below the overload point and increasing above
        // it, so the sub-target region (if any) is an interval containing
        // the overload power. Bisect each edge against the *exact* ber.
        const TARGET: f64 = 1e-18;
        let o = channel.overload_dbm;
        let (mut lo, mut hi) = (f64::NAN, f64::NAN);
        if channel.ber(o) <= TARGET {
            let (mut a, mut b) = (o - 400.0, o);
            if channel.ber(a) > TARGET {
                for _ in 0..80 {
                    let m = 0.5 * (a + b);
                    if channel.ber(m) <= TARGET {
                        b = m;
                    } else {
                        a = m;
                    }
                }
                lo = b;
            } else {
                lo = a;
            }
            let (mut a2, mut b2) = (o, o + 400.0);
            if channel.ber(b2) > TARGET {
                for _ in 0..80 {
                    let m = 0.5 * (a2 + b2);
                    if channel.ber(m) <= TARGET {
                        a2 = m;
                    } else {
                        b2 = m;
                    }
                }
                hi = a2;
            } else {
                hi = b2;
            }
            // Guard band (in dB) against float wiggle right at the edges.
            lo += 1e-3;
            hi -= 1e-3;
            // NaN-safe: an inverted or NaN band degenerates to "no band".
            if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                lo = f64::NAN;
                hi = f64::NAN;
            }
        }
        #[cfg(feature = "fast-channel")]
        let lut = fast::ChannelLut::new(channel, frame_bits);
        let mut cache = FrameSuccessCache {
            channel,
            frame_bits,
            unity_lo_dbm: lo,
            unity_hi_dbm: hi,
            last_in_bits: 0,
            last_out: 0.0,
            #[cfg(feature = "fast-channel")]
            lut,
        };
        // Seed the memo with the most commonly repeated input: the power
        // floor an occluded meter reads.
        let floor = cyclops_core::deployment::Deployment::POWER_METER_FLOOR_DBM;
        cache.last_in_bits = floor.to_bits();
        cache.last_out = cache.compute(floor);
        cache
    }

    /// The wrapped channel.
    #[inline]
    pub fn channel(&self) -> &FsoChannel {
        &self.channel
    }

    /// The fixed frame size (bits).
    #[inline]
    pub fn frame_bits(&self) -> u64 {
        self.frame_bits
    }

    #[inline]
    fn compute(&self, rx_dbm: f64) -> f64 {
        #[cfg(feature = "fast-channel")]
        {
            self.lut.frame_success_prob(rx_dbm)
        }
        #[cfg(not(feature = "fast-channel"))]
        {
            self.channel.frame_success_prob(rx_dbm, self.frame_bits)
        }
    }

    /// Frame success probability at the cache's frame size — see the type
    /// docs for the exactness contract.
    #[inline]
    pub fn frame_success_prob(&mut self, rx_dbm: f64) -> f64 {
        // NaN rx_dbm fails both comparisons and falls through.
        if rx_dbm >= self.unity_lo_dbm && rx_dbm <= self.unity_hi_dbm {
            return 1.0;
        }
        let bits = rx_dbm.to_bits();
        if bits == self.last_in_bits {
            return self.last_out;
        }
        let out = self.compute(rx_dbm);
        self.last_in_bits = bits;
        self.last_out = out;
        out
    }
}

/// Opt-in interpolated channel math (`fast-channel` feature).
///
/// `q_factor`, `ber` and `frame_success_prob` are tabulated on a dense grid
/// (1/128 dB) spanning `[sensitivity − 15 dB, overload + 15 dB]`, with the
/// overload kink pinned on a grid node, and evaluated by linear
/// interpolation; inputs outside the grid (and non-finite inputs) fall back
/// to the analytic path. Guarantees, enforced by proptests:
///
/// - absolute error vs the analytic path ≤ [`fast::ABS_ERR_BOUND`] (1e-3)
///   for all three functions;
/// - monotonicity in power is preserved: q and frame-success are
///   non-decreasing (ber non-increasing) below the overload power and the
///   reverse above it — the tables are monotonized after sampling, so this
///   holds exactly, not just up to float wiggle.
#[cfg(feature = "fast-channel")]
pub mod fast {
    use super::FsoChannel;

    /// Stated absolute error bound of the interpolated path vs the analytic
    /// one (the measured error is far smaller; see the proptests).
    pub const ABS_ERR_BOUND: f64 = 1e-3;

    /// Grid resolution: points per dB.
    const STEP_PER_DB: f64 = 128.0;
    /// Table range below sensitivity / above overload (dB).
    const RANGE_DB: f64 = 15.0;

    /// Dense lookup tables for one channel + frame size.
    #[derive(Debug, Clone)]
    pub struct ChannelLut {
        channel: FsoChannel,
        frame_bits: u64,
        p0: f64,
        q: Vec<f64>,
        ber: Vec<f64>,
        fsp: Vec<f64>,
    }

    impl ChannelLut {
        /// Samples and monotonizes the tables.
        pub fn new(channel: FsoChannel, frame_bits: u64) -> ChannelLut {
            let h = 1.0 / STEP_PER_DB;
            // Anchor the grid on the overload power so the q kink lands on
            // a node (linear interpolation across a kink would not).
            let n_below = ((channel.overload_dbm - (channel.sensitivity_dbm - RANGE_DB))
                * STEP_PER_DB)
                .ceil()
                .max(1.0) as usize;
            let n_above = (RANGE_DB * STEP_PER_DB) as usize;
            let p0 = channel.overload_dbm - n_below as f64 * h;
            let n = n_below + n_above + 1;
            let p_at = |i: usize| p0 + i as f64 * h;
            let mut q: Vec<f64> = (0..n).map(|i| channel.q_factor(p_at(i))).collect();
            let mut ber: Vec<f64> = (0..n).map(|i| channel.ber(p_at(i))).collect();
            let mut fsp: Vec<f64> = (0..n)
                .map(|i| channel.frame_success_prob(p_at(i), frame_bits))
                .collect();
            // Monotonize each side of the overload node, so the documented
            // monotonicity-in-power holds exactly under interpolation even
            // where the analytic approximations wiggle by an ulp.
            let k = n_below;
            for i in (0..k).rev() {
                q[i] = q[i].min(q[i + 1]);
                ber[i] = ber[i].max(ber[i + 1]);
                fsp[i] = fsp[i].min(fsp[i + 1]);
            }
            for i in k + 1..n {
                q[i] = q[i].min(q[i - 1]);
                ber[i] = ber[i].max(ber[i - 1]);
                fsp[i] = fsp[i].min(fsp[i - 1]);
            }
            ChannelLut {
                channel,
                frame_bits,
                p0,
                q,
                ber,
                fsp,
            }
        }

        #[inline]
        fn interp(&self, table: &[f64], rx_dbm: f64) -> Option<f64> {
            let x = (rx_dbm - self.p0) * STEP_PER_DB;
            // NaN fails the range check and falls back to analytic.
            if !(x >= 0.0 && x <= (table.len() - 1) as f64) {
                return None;
            }
            let i = (x as usize).min(table.len() - 2);
            let f = x - i as f64;
            Some(table[i] + (table[i + 1] - table[i]) * f)
        }

        /// Interpolated [`FsoChannel::q_factor`].
        #[inline]
        pub fn q_factor(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.q, rx_dbm)
                .unwrap_or_else(|| self.channel.q_factor(rx_dbm))
        }

        /// Interpolated [`FsoChannel::ber`].
        #[inline]
        pub fn ber(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.ber, rx_dbm)
                .unwrap_or_else(|| self.channel.ber(rx_dbm))
        }

        /// Interpolated [`FsoChannel::frame_success_prob`] at the frame size
        /// the table was built for.
        #[inline]
        pub fn frame_success_prob(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.fsp, rx_dbm)
                .unwrap_or_else(|| self.channel.frame_success_prob(rx_dbm, self.frame_bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> FsoChannel {
        FsoChannel::new(-25.0, 7.0)
    }

    #[test]
    fn erfc_anchor_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
        assert!(erfc(5.0) < 1.6e-12);
    }

    #[test]
    fn ber_at_sensitivity_is_1e12() {
        let ber = ch().ber(-25.0);
        assert!((1e-13..1e-11).contains(&ber), "BER {ber}");
    }

    #[test]
    fn ber_is_a_cliff() {
        let c = ch();
        // 3 dB above sensitivity: essentially error-free (BER ~1e-22).
        assert!(c.ber(-22.0) < 1e-18);
        // 6 dB below: catastrophic for any packet stream.
        assert!(c.ber(-31.0) > 1e-4, "ber {}", c.ber(-31.0));
        // No signal at all: coin flips.
        assert!((c.ber(f64::NEG_INFINITY) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ber_monotone_in_power_below_overload() {
        let c = ch();
        let mut last = 1.0;
        for p in [-30.0, -27.0, -25.0, -23.0, -20.0, -10.0] {
            let b = c.ber(p);
            assert!(b <= last, "BER must fall with power ({p} dBm: {b})");
            last = b;
        }
    }

    #[test]
    fn channel_is_total_on_garbage_input() {
        let c = ch();
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e308, -1e308] {
            let q = c.q_factor(p);
            assert!(q.is_finite() && q >= 0.0, "q({p}) = {q}");
            let b = c.ber(p);
            assert!((0.0..=0.5).contains(&b), "ber({p}) = {b}");
            let f = c.frame_success_prob(p, 12_000);
            assert!((0.0..=1.0).contains(&f), "fsp({p}) = {f}");
        }
        // Garbage reads as "link dead", not "link fine".
        assert!((c.ber(f64::NAN) - 0.5).abs() < 1e-6);
        assert!(c.frame_success_prob(f64::NAN, 12_000) < 1e-9);
    }

    #[test]
    fn overload_degrades_q() {
        let c = ch();
        assert!(c.q_factor(12.0) < c.q_factor(5.0));
    }

    #[test]
    fn rf_ladder_steps_down_with_distance() {
        let rf = RfChannel::default();
        // Room scale: full rate.
        assert_eq!(rf.rate_gbps(1.75, false), RF_RATE_LADDER_GBPS[0]);
        let mut last = f64::INFINITY;
        for d in [0.5, 2.5, 4.5, 6.5, 8.5, 10.5, 25.0] {
            let r = rf.rate_gbps(d, false);
            assert!(r <= last, "rate must not rise with distance ({d} m: {r})");
            assert!(r > 0.0, "in-range distance must keep a nonzero rate");
            last = r;
        }
        // Past the hard range: dead.
        assert_eq!(rf.rate_gbps(31.0, false), 0.0);
    }

    #[test]
    fn rf_occlusion_degrades_but_does_not_kill() {
        let rf = RfChannel::default();
        let clear = rf.rate_gbps(1.75, false);
        let blocked = rf.rate_gbps(1.75, true);
        assert!(blocked < clear, "occlusion must cost rate");
        assert!(
            blocked > 0.0,
            "RF diffracts: occlusion must not zero the rate"
        );
        assert_eq!(rf.rung(1.75, true), Some(rf.rung(1.75, false).unwrap() + 2));
    }

    #[test]
    fn rf_is_total_on_garbage_input() {
        let rf = RfChannel::default();
        for d in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 1e308] {
            assert_eq!(rf.rate_gbps(d, false), 0.0, "rate({d})");
            assert_eq!(rf.rung(d, true), None, "rung({d})");
        }
        // Deep rungs saturate at the bottom of the ladder, never index OOB.
        let r = rf.rate_gbps(29.9, true);
        assert_eq!(r, RF_RATE_LADDER_GBPS[RF_RATE_LADDER_GBPS.len() - 1]);
    }

    #[test]
    fn frame_success_probability() {
        let c = ch();
        // 1500-byte frame = 12k bits.
        assert!((c.frame_success_prob(-20.0, 12_000) - 1.0).abs() < 1e-9);
        let marginal = c.frame_success_prob(-26.5, 12_000);
        assert!((0.0..1.0).contains(&marginal), "marginal {marginal}");
        assert!(c.frame_success_prob(-35.0, 12_000) < 1e-6);
    }
}
