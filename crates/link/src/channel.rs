//! Received power → bit-error rate → frame loss.
//!
//! An intensity-modulated direct-detection (OOK) receiver in Gaussian noise
//! has `BER = ½·erfc(Q/√2)`, with the Q factor proportional to the received
//! *amplitude*. SFP data sheets specify the sensitivity as the power at
//! which BER reaches 10⁻¹² (`Q ≈ 7.03`); the model anchors there and scales
//! `Q` with received power: `Q = Q_ref · 10^((P − P_sens)/20)` (20, not 10:
//! amplitude, not power).
//!
//! The practical upshot reproduced from the paper: the link is a cliff. A
//! couple of dB above sensitivity the frame loss is immeasurably small; a
//! couple of dB below, nothing gets through — which is why the paper's
//! throughput plots switch between "optimal" and "zero" so sharply.

/// Q factor at the specified sensitivity (BER 10⁻¹²).
pub const Q_AT_SENSITIVITY: f64 = 7.034;

/// Complementary error function (Abramowitz & Stegun 7.1.26-based rational
/// approximation, |error| < 1.5·10⁻⁷, extended by symmetry).
#[inline]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// The power→loss channel for a given transceiver sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct FsoChannel {
    /// Receiver sensitivity (dBm) at which BER = 10⁻¹².
    pub sensitivity_dbm: f64,
    /// Receiver overload threshold (dBm): above this the receiver saturates
    /// and errors grow again.
    pub overload_dbm: f64,
}

impl FsoChannel {
    /// Channel anchored at a transceiver's data-sheet points.
    pub fn new(sensitivity_dbm: f64, overload_dbm: f64) -> FsoChannel {
        FsoChannel {
            sensitivity_dbm,
            overload_dbm,
        }
    }

    /// Q factor at the given received power. Total: NaN and ±∞ inputs map
    /// to `Q = 0` (no usable signal) rather than propagating — a garbage
    /// power report must read as "link dead", never as NaN throughput.
    /// (+∞ is genuinely the overload limit: `Q ∝ 10^(p/20 − p/10) → 0`.)
    #[inline]
    pub fn q_factor(&self, rx_dbm: f64) -> f64 {
        if !rx_dbm.is_finite() {
            return 0.0;
        }
        let mut q = Q_AT_SENSITIVITY * 10f64.powf((rx_dbm - self.sensitivity_dbm) / 20.0);
        if rx_dbm > self.overload_dbm {
            // Saturation: Q degrades with overdrive.
            q *= 10f64.powf(-(rx_dbm - self.overload_dbm) / 10.0);
        }
        if q.is_finite() {
            q
        } else {
            0.0
        }
    }

    /// Bit-error rate at the given received power. Total: always in
    /// `[0, 0.5]`, even for non-finite input.
    #[inline]
    pub fn ber(&self, rx_dbm: f64) -> f64 {
        let q = self.q_factor(rx_dbm);
        let b = 0.5 * erfc(q / std::f64::consts::SQRT_2);
        if b.is_nan() {
            return 0.5;
        }
        b.clamp(0.0, 0.5)
    }

    /// Probability an `n_bits` frame survives (no bit errors). Total:
    /// always in `[0, 1]`.
    #[inline]
    pub fn frame_success_prob(&self, rx_dbm: f64, n_bits: u64) -> f64 {
        let ber = self.ber(rx_dbm);
        if ber <= 1e-15 {
            return 1.0;
        }
        // (1−p)^n via exp(n·ln(1−p)), stable for small p.
        (n_bits as f64 * (1.0 - ber).ln()).exp().clamp(0.0, 1.0)
    }
}

/// mmWave-style RF fallback rates (Gbps), highest modulation first. The
/// values follow the 802.11ad single-carrier MCS ladder shape: each rung
/// down sheds modulation order as SNR drops with distance.
pub const RF_RATE_LADDER_GBPS: [f64; 6] = [2.31, 1.925, 1.54, 1.155, 0.77, 0.385];

/// A low-rate RF side channel used as a fallback while the FSO beam is
/// re-acquiring (hybrid FSO/RF, cf. the RF-assisted-FSO literature).
///
/// Deliberately *not* an optical model: RF needs no pointing, no SFP
/// re-lock, and survives occlusion by diffraction — so its rate is a pure,
/// deterministic function of TX–RX distance and a line-of-sight flag. The
/// rate ladder steps down one rung per `rung_range_m` of distance and
/// `occlusion_rung_penalty` extra rungs when the path is blocked (reduced
/// but nonzero: that is the whole point of the fallback). Beyond
/// `max_range_m` (or for non-finite distance) the rate is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfChannel {
    /// Distance per modulation rung (m): rung `i` covers
    /// `[i·rung_range_m, (i+1)·rung_range_m)`.
    pub rung_range_m: f64,
    /// Extra rungs lost when the direct path is occluded (diffraction loss).
    pub occlusion_rung_penalty: usize,
    /// Hard range limit (m); past this the RF link is unusable too.
    pub max_range_m: f64,
}

impl Default for RfChannel {
    /// Room-scale 60 GHz defaults: full rate within 2 m, one rung per
    /// further 2 m, two rungs of diffraction penalty, 30 m hard range.
    fn default() -> RfChannel {
        RfChannel {
            rung_range_m: 2.0,
            occlusion_rung_penalty: 2,
            max_range_m: 30.0,
        }
    }
}

impl RfChannel {
    /// Ladder rung in use at this distance/occlusion, or `None` when out of
    /// range (non-finite or negative distances are out of range). Total:
    /// never panics on garbage input.
    #[inline]
    pub fn rung(&self, distance_m: f64, occluded: bool) -> Option<usize> {
        if !(distance_m >= 0.0 && distance_m <= self.max_range_m) {
            return None;
        }
        let base = (distance_m / self.rung_range_m) as usize;
        let rung = base.saturating_add(if occluded {
            self.occlusion_rung_penalty
        } else {
            0
        });
        Some(rung.min(RF_RATE_LADDER_GBPS.len() - 1))
    }

    /// Deliverable RF rate (Gbps) at this distance/occlusion; `0.0` when out
    /// of range. No pointing, no lock hysteresis: the rate is available the
    /// instant the policy switches traffic onto the RF link.
    #[inline]
    pub fn rate_gbps(&self, distance_m: f64, occluded: bool) -> f64 {
        match self.rung(distance_m, occluded) {
            Some(r) => RF_RATE_LADDER_GBPS[r],
            None => 0.0,
        }
    }
}

/// Hot-path wrapper over [`FsoChannel::frame_success_prob`] at a fixed frame
/// size, used by the engine's slot loop.
///
/// In the default build it is **bit-identical** to the analytic path; the
/// speed comes from two exact shortcuts:
///
/// 1. *Unity interval.* The analytic path returns exactly `1.0` whenever
///    `ber ≤ 1e-15`. At construction, a bisection against the exact `ber`
///    finds a conservative power interval where `ber ≤ 1e-18` — three orders
///    of magnitude of safety margin, so float wiggle at the edges cannot
///    cross the `1e-15` early-return threshold. Powers inside the interval
///    skip the `powf`/`erfc`/`ln`/`exp` chain entirely.
/// 2. *Exact-input memo.* The last `(rx_dbm bits → result)` pair is kept, so
///    repeated identical inputs (e.g. the −90 dBm power-meter floor during
///    an occlusion) are answered without recomputation.
///
/// Under the opt-in `fast-channel` feature the computation is delegated to
/// the interpolated `fast::ChannelLut` instead (error-bounded, see the
/// module docs) — digests may then legitimately differ.
#[derive(Debug, Clone)]
pub struct FrameSuccessCache {
    channel: FsoChannel,
    frame_bits: u64,
    /// Conservative closed interval on which the analytic path provably
    /// returns exactly 1.0. NaN bounds ⇒ no such interval (checks fail).
    unity_lo_dbm: f64,
    unity_hi_dbm: f64,
    last_in_bits: u64,
    last_out: f64,
    #[cfg(feature = "fast-channel")]
    lut: fast::ChannelLut,
}

impl FrameSuccessCache {
    /// Builds the cache for one channel and frame size.
    pub fn new(channel: FsoChannel, frame_bits: u64) -> FrameSuccessCache {
        // ber(p) is decreasing below the overload point and increasing above
        // it, so the sub-target region (if any) is an interval containing
        // the overload power. Bisect each edge against the *exact* ber.
        const TARGET: f64 = 1e-18;
        let o = channel.overload_dbm;
        let (mut lo, mut hi) = (f64::NAN, f64::NAN);
        if channel.ber(o) <= TARGET {
            let (mut a, mut b) = (o - 400.0, o);
            if channel.ber(a) > TARGET {
                for _ in 0..80 {
                    let m = 0.5 * (a + b);
                    if channel.ber(m) <= TARGET {
                        b = m;
                    } else {
                        a = m;
                    }
                }
                lo = b;
            } else {
                lo = a;
            }
            let (mut a2, mut b2) = (o, o + 400.0);
            if channel.ber(b2) > TARGET {
                for _ in 0..80 {
                    let m = 0.5 * (a2 + b2);
                    if channel.ber(m) <= TARGET {
                        a2 = m;
                    } else {
                        b2 = m;
                    }
                }
                hi = a2;
            } else {
                hi = b2;
            }
            // Guard band (in dB) against float wiggle right at the edges.
            lo += 1e-3;
            hi -= 1e-3;
            // NaN-safe: an inverted or NaN band degenerates to "no band".
            if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
                lo = f64::NAN;
                hi = f64::NAN;
            }
        }
        #[cfg(feature = "fast-channel")]
        let lut = fast::ChannelLut::new(channel, frame_bits);
        let mut cache = FrameSuccessCache {
            channel,
            frame_bits,
            unity_lo_dbm: lo,
            unity_hi_dbm: hi,
            last_in_bits: 0,
            last_out: 0.0,
            #[cfg(feature = "fast-channel")]
            lut,
        };
        // Seed the memo with the most commonly repeated input: the power
        // floor an occluded meter reads.
        let floor = cyclops_core::deployment::Deployment::POWER_METER_FLOOR_DBM;
        cache.last_in_bits = floor.to_bits();
        cache.last_out = cache.compute(floor);
        cache
    }

    /// The wrapped channel.
    #[inline]
    pub fn channel(&self) -> &FsoChannel {
        &self.channel
    }

    /// The fixed frame size (bits).
    #[inline]
    pub fn frame_bits(&self) -> u64 {
        self.frame_bits
    }

    #[inline]
    fn compute(&self, rx_dbm: f64) -> f64 {
        #[cfg(feature = "fast-channel")]
        {
            self.lut.frame_success_prob(rx_dbm)
        }
        #[cfg(not(feature = "fast-channel"))]
        {
            self.channel.frame_success_prob(rx_dbm, self.frame_bits)
        }
    }

    /// Frame success probability at the cache's frame size — see the type
    /// docs for the exactness contract.
    #[inline]
    pub fn frame_success_prob(&mut self, rx_dbm: f64) -> f64 {
        // NaN rx_dbm fails both comparisons and falls through.
        if rx_dbm >= self.unity_lo_dbm && rx_dbm <= self.unity_hi_dbm {
            return 1.0;
        }
        let bits = rx_dbm.to_bits();
        if bits == self.last_in_bits {
            return self.last_out;
        }
        let out = self.compute(rx_dbm);
        self.last_in_bits = bits;
        self.last_out = out;
        out
    }
}

// ---------------------------------------------------------------------------
// Composable environment stages
// ---------------------------------------------------------------------------

/// Converts a `mix64` output to a uniform draw in the half-open unit
/// interval, bounded away from zero so `ln` stays finite.
#[inline]
fn unit_open(x: u64) -> f64 {
    (((x >> 11) + 1) as f64) * (1.0 / ((1u64 << 53) as f64 + 1.0))
}

/// A standard normal deviate derived purely from `(seed, stream)` via two
/// `mix64` draws and Box–Muller — no RNG object, so stages sampling per
/// epoch/event are bit-deterministic and order-independent.
#[inline]
fn gauss_at(seed: u64, stream: u64) -> f64 {
    let u1 = unit_open(cyclops_par::mix64(seed, 2 * stream + 1));
    let u2 = unit_open(cyclops_par::mix64(seed, 2 * stream + 2));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One composable channel-impairment stage: an extra optical loss (dB ≥ 0)
/// applied to the received power each slot, as a pure function of slot time
/// and TX→RX path length.
///
/// Contract (relied on by the engine and enforced by the environment
/// proptests):
///
/// - **loss-only** — the returned attenuation is clamped at ≥ 0 dB by
///   [`Environment::attenuation_db`], so applying a stage is monotone
///   non-increasing in received power;
/// - **bit-deterministic** — any randomness must derive from the stage's
///   seed via per-stream [`cyclops_par::mix64`] keyed by epoch/event index,
///   never from a shared RNG, so stages cannot perturb the engine's
///   deployment/fault streams and replays are bit-identical per seed;
/// - **monotone time** — `attenuation_db` is called once per slot with
///   non-decreasing `t_s` (stages may keep a forward cursor).
pub trait EnvStage: std::fmt::Debug + Send + Sync {
    /// Short stable stage name (telemetry / CLI listings).
    fn name(&self) -> &'static str;

    /// Extra optical loss (dB) during the slot ending at `t_s` over a
    /// TX→RX path of `path_m` metres.
    fn attenuation_db(&mut self, t_s: f64, path_m: f64) -> f64;

    /// Re-keys the stage's random stream (per-session fleet seeding) and
    /// resets any forward cursor. Deterministic stages ignore it.
    fn reseed(&mut self, _stream: u64) {}

    /// Clones the stage behind the object-safe interface.
    fn boxed_clone(&self) -> Box<dyn EnvStage>;
}

impl Clone for Box<dyn EnvStage> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Static fog/smoke extinction via Beer–Lambert: `loss = α · L` with a
/// constant extinction coefficient α (dB/km) from the Kim visibility model.
/// Deterministic — no random stream.
#[derive(Debug, Clone, Copy)]
pub struct FogStage {
    /// Extinction coefficient (dB per km of path).
    pub alpha_db_per_km: f64,
}

impl FogStage {
    /// A fog/smoke stage from a raw extinction coefficient (dB/km).
    pub fn new(alpha_db_per_km: f64) -> Result<FogStage, crate::engine::EngineConfigError> {
        if !(alpha_db_per_km.is_finite() && alpha_db_per_km >= 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "fog extinction must be finite and >= 0 dB/km",
            ));
        }
        Ok(FogStage { alpha_db_per_km })
    }

    /// Kim-model extinction from meteorological visibility: `α =
    /// (3.91/V)·(λ/550 nm)^−q` dB/km with Kim's piecewise size-distribution
    /// exponent `q(V)` (wavelength dependence vanishes below 500 m — dense
    /// fog scatters all bands equally).
    pub fn from_visibility(
        visibility_m: f64,
        wavelength_nm: f64,
    ) -> Result<FogStage, crate::engine::EngineConfigError> {
        if !(visibility_m.is_finite() && visibility_m > 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "visibility must be finite and > 0 m",
            ));
        }
        if !(wavelength_nm.is_finite() && wavelength_nm > 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "wavelength must be finite and > 0 nm",
            ));
        }
        let v_km = visibility_m / 1000.0;
        let q = if v_km > 50.0 {
            1.6
        } else if v_km > 6.0 {
            1.3
        } else if v_km > 1.0 {
            0.16 * v_km + 0.34
        } else if v_km > 0.5 {
            v_km - 0.5
        } else {
            0.0
        };
        let alpha = (3.91 / v_km) * (wavelength_nm / 550.0).powf(-q);
        FogStage::new(alpha)
    }

    /// Indoor haze/smoke density knob for the CLI: `d ∈ [0, 1]` maps
    /// log-linearly from clear air (d = 0, no loss) through light haze to
    /// theatrical-smoke visibility of 1 m at d = 1.
    pub fn from_density(
        density: f64,
        wavelength_nm: f64,
    ) -> Result<FogStage, crate::engine::EngineConfigError> {
        if !(density.is_finite() && (0.0..=1.0).contains(&density)) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "fog density must be in [0, 1]",
            ));
        }
        if density == 0.0 {
            return FogStage::new(0.0);
        }
        // 100 m visibility at d→0+ down to 1 m at d = 1, log scale.
        let visibility_m = 100.0 * 10f64.powf(-2.0 * density);
        FogStage::from_visibility(visibility_m, wavelength_nm)
    }
}

impl EnvStage for FogStage {
    fn name(&self) -> &'static str {
        "fog"
    }

    fn attenuation_db(&mut self, _t_s: f64, path_m: f64) -> f64 {
        self.alpha_db_per_km * path_m * 1e-3
    }

    fn boxed_clone(&self) -> Box<dyn EnvStage> {
        Box::new(*self)
    }
}

/// Rain attenuation via the Carbonneau FSO power law `γ = 1.076·R^0.67`
/// dB/km for rain rate `R` mm/h. Deterministic — no random stream.
#[derive(Debug, Clone, Copy)]
pub struct RainStage {
    /// Rain rate (mm/h).
    pub rate_mm_h: f64,
    /// Specific attenuation (dB/km), precomputed from the rate.
    gamma_db_per_km: f64,
}

impl RainStage {
    /// A rain stage from a rain rate in mm/h (0 = dry).
    pub fn new(rate_mm_h: f64) -> Result<RainStage, crate::engine::EngineConfigError> {
        if !(rate_mm_h.is_finite() && rate_mm_h >= 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "rain rate must be finite and >= 0 mm/h",
            ));
        }
        Ok(RainStage {
            rate_mm_h,
            gamma_db_per_km: 1.076 * rate_mm_h.powf(0.67),
        })
    }
}

impl EnvStage for RainStage {
    fn name(&self) -> &'static str {
        "rain"
    }

    fn attenuation_db(&mut self, _t_s: f64, path_m: f64) -> f64 {
        self.gamma_db_per_km * path_m * 1e-3
    }

    fn boxed_clone(&self) -> Box<dyn EnvStage> {
        Box::new(*self)
    }
}

/// Log-normal scintillation: a zero-mean Gaussian fade (dB) redrawn every
/// coherence interval, clipped to loss-only (enhancements are dropped —
/// conservative, and it keeps the stage monotone non-increasing in power).
/// The fade for epoch `k = ⌊t/τ⌋` is a pure function of `(seed, k)`, so the
/// sequence is bit-deterministic per seed.
#[derive(Debug, Clone, Copy)]
pub struct ScintillationStage {
    /// Fade standard deviation (dB).
    pub sigma_db: f64,
    /// Fade coherence interval τ (seconds).
    pub coherence_s: f64,
    seed: u64,
}

impl ScintillationStage {
    /// A scintillation stage with fade σ (dB), coherence τ (s), and a seed.
    pub fn new(
        sigma_db: f64,
        coherence_s: f64,
        seed: u64,
    ) -> Result<ScintillationStage, crate::engine::EngineConfigError> {
        if !(sigma_db.is_finite() && sigma_db >= 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "scintillation sigma must be finite and >= 0 dB",
            ));
        }
        if !(coherence_s.is_finite() && coherence_s > 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "scintillation coherence must be finite and > 0 s",
            ));
        }
        Ok(ScintillationStage {
            sigma_db,
            coherence_s,
            seed,
        })
    }
}

impl EnvStage for ScintillationStage {
    fn name(&self) -> &'static str {
        "scintillation"
    }

    fn attenuation_db(&mut self, t_s: f64, _path_m: f64) -> f64 {
        let epoch = (t_s / self.coherence_s).floor() as u64;
        (self.sigma_db * gauss_at(self.seed, epoch)).max(0.0)
    }

    fn reseed(&mut self, stream: u64) {
        self.seed = cyclops_par::mix64(self.seed, stream);
    }

    fn boxed_clone(&self) -> Box<dyn EnvStage> {
        Box::new(*self)
    }
}

/// Transient human occluders crossing the beam: a renewal process of
/// blocking episodes — exponential inter-arrival gaps, log-uniform crossing
/// durations around the mean, and a deep body-shadow loss while inside an
/// episode. Every gap/duration is a pure `mix64` function of `(seed, event
/// index)`; the stage keeps only a forward cursor, so identically-seeded
/// replays are bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct HumanOccluderStage {
    /// Mean crossings per minute.
    pub rate_per_min: f64,
    /// Mean crossing duration (seconds).
    pub mean_duration_s: f64,
    /// Loss while a body blocks the beam (dB). A torso at 1550 nm is
    /// opaque; 30+ dB kills any indoor FSO budget.
    pub block_db: f64,
    seed: u64,
    /// Start of the next (or current) crossing.
    next_start_s: f64,
    /// End of the current crossing (valid when `t >= next_start_s`).
    cur_end_s: f64,
    /// Crossing index for the per-event streams.
    k: u64,
    primed: bool,
}

impl HumanOccluderStage {
    /// A crossing stage from a rate (crossings/minute), a mean crossing
    /// duration (s), a body-shadow loss (dB) and a seed.
    pub fn new(
        rate_per_min: f64,
        mean_duration_s: f64,
        block_db: f64,
        seed: u64,
    ) -> Result<HumanOccluderStage, crate::engine::EngineConfigError> {
        if !(rate_per_min.is_finite() && rate_per_min >= 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "crossing rate must be finite and >= 0 per minute",
            ));
        }
        if !(mean_duration_s.is_finite() && mean_duration_s > 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "crossing duration must be finite and > 0 s",
            ));
        }
        if !(block_db.is_finite() && block_db >= 0.0) {
            return Err(crate::engine::EngineConfigError::InvalidEnvironment(
                "body-shadow loss must be finite and >= 0 dB",
            ));
        }
        Ok(HumanOccluderStage {
            rate_per_min,
            mean_duration_s,
            block_db,
            seed,
            next_start_s: 0.0,
            cur_end_s: 0.0,
            k: 0,
            primed: false,
        })
    }

    /// Exponential gap before crossing `k` (seconds).
    fn gap_s(&self, k: u64) -> f64 {
        let mean_gap_s = 60.0 / self.rate_per_min;
        -unit_open(cyclops_par::mix64(self.seed, 3 * k + 1)).ln() * mean_gap_s
    }

    /// Duration of crossing `k`: log-uniform in [½·mean, 2·mean].
    fn duration_s(&self, k: u64) -> f64 {
        let u = unit_open(cyclops_par::mix64(self.seed, 3 * k + 2));
        self.mean_duration_s * 4f64.powf(u) * 0.5
    }

    fn reset_cursor(&mut self) {
        self.k = 0;
        self.primed = false;
        self.next_start_s = 0.0;
        self.cur_end_s = 0.0;
    }
}

impl EnvStage for HumanOccluderStage {
    fn name(&self) -> &'static str {
        "occluders"
    }

    fn attenuation_db(&mut self, t_s: f64, _path_m: f64) -> f64 {
        if self.rate_per_min == 0.0 {
            return 0.0;
        }
        if !self.primed {
            self.primed = true;
            self.next_start_s = self.gap_s(0);
            self.cur_end_s = self.next_start_s + self.duration_s(0);
        }
        // Advance the cursor past finished crossings.
        while t_s > self.cur_end_s {
            self.k += 1;
            self.next_start_s = self.cur_end_s + self.gap_s(self.k);
            self.cur_end_s = self.next_start_s + self.duration_s(self.k);
        }
        if t_s >= self.next_start_s {
            self.block_db
        } else {
            0.0
        }
    }

    fn reseed(&mut self, stream: u64) {
        self.seed = cyclops_par::mix64(self.seed, stream);
        self.reset_cursor();
    }

    fn boxed_clone(&self) -> Box<dyn EnvStage> {
        Box::new(*self)
    }
}

/// A stack of [`EnvStage`]s applied to the received optical power each
/// slot. The empty environment is the engine default and is bit-free: the
/// engine skips the whole path (no world queries, no float ops), so all
/// goldens are preserved exactly; see `DESIGN.md` §15 for the determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    stages: Vec<Box<dyn EnvStage>>,
}

impl Environment {
    /// An empty (clear-air) environment.
    pub fn new() -> Environment {
        Environment::default()
    }

    /// Adds a stage (builder style).
    pub fn stage(mut self, stage: impl EnvStage + 'static) -> Environment {
        self.stages.push(Box::new(stage));
        self
    }

    /// Adds an already-boxed stage.
    pub fn push(&mut self, stage: Box<dyn EnvStage>) {
        self.stages.push(stage);
    }

    /// Whether any stage is attached.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of attached stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Stage names in application order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Total extra loss (dB ≥ 0) for the slot ending at `t_s` over a path
    /// of `path_m` metres. Each stage's contribution is clamped at ≥ 0, so
    /// the environment is monotone non-increasing in received power.
    pub fn attenuation_db(&mut self, t_s: f64, path_m: f64) -> f64 {
        self.stages
            .iter_mut()
            .map(|s| s.attenuation_db(t_s, path_m).max(0.0))
            .sum()
    }

    /// Applies the stack to a received power: `rx_dbm −` total attenuation.
    pub fn apply_dbm(&mut self, t_s: f64, path_m: f64, rx_dbm: f64) -> f64 {
        rx_dbm - self.attenuation_db(t_s, path_m)
    }

    /// A per-session copy with every stage's random stream re-keyed by
    /// `mix64(stream, stage index)` — the fleet drivers use this so each
    /// session sees independent scintillation/crossing streams derived from
    /// its session seed.
    pub fn reseeded(&self, stream: u64) -> Environment {
        let mut env = self.clone();
        for (j, s) in env.stages.iter_mut().enumerate() {
            s.reseed(cyclops_par::mix64(stream, 0xe27 + j as u64));
        }
        env
    }

    /// Wraps a [`ChannelModel`](crate::engine::ChannelModel) so standalone
    /// channel users inherit the stack: the wrapper attenuates the received
    /// power, then delegates to the inner channel's math.
    pub fn wrap(self, inner: FsoChannel) -> EnvChannel {
        EnvChannel { env: self, inner }
    }
}

/// A [`ChannelModel`](crate::engine::ChannelModel) wrapped in an
/// [`Environment`]: every evaluation first applies the stack's attenuation
/// at the given slot time and path, then runs the inner power→BER math —
/// the standalone counterpart of the engine's in-loop application.
#[derive(Debug, Clone)]
pub struct EnvChannel {
    /// The environment stack.
    pub env: Environment,
    /// The wrapped clear-air channel.
    pub inner: FsoChannel,
}

impl EnvChannel {
    /// Q factor after environmental attenuation.
    pub fn q_factor(&mut self, t_s: f64, path_m: f64, rx_dbm: f64) -> f64 {
        let p = self.env.apply_dbm(t_s, path_m, rx_dbm);
        self.inner.q_factor(p)
    }

    /// Bit-error rate after environmental attenuation.
    pub fn ber(&mut self, t_s: f64, path_m: f64, rx_dbm: f64) -> f64 {
        let p = self.env.apply_dbm(t_s, path_m, rx_dbm);
        self.inner.ber(p)
    }

    /// Frame success probability after environmental attenuation.
    pub fn frame_success_prob(&mut self, t_s: f64, path_m: f64, rx_dbm: f64, n_bits: u64) -> f64 {
        let p = self.env.apply_dbm(t_s, path_m, rx_dbm);
        self.inner.frame_success_prob(p, n_bits)
    }
}

/// Opt-in interpolated channel math (`fast-channel` feature).
///
/// `q_factor`, `ber` and `frame_success_prob` are tabulated on a dense grid
/// (1/128 dB) spanning `[sensitivity − 15 dB, overload + 15 dB]`, with the
/// overload kink pinned on a grid node, and evaluated by linear
/// interpolation; inputs outside the grid (and non-finite inputs) fall back
/// to the analytic path. Guarantees, enforced by proptests:
///
/// - absolute error vs the analytic path ≤ [`fast::ABS_ERR_BOUND`] (1e-3)
///   for all three functions;
/// - monotonicity in power is preserved: q and frame-success are
///   non-decreasing (ber non-increasing) below the overload power and the
///   reverse above it — the tables are monotonized after sampling, so this
///   holds exactly, not just up to float wiggle.
#[cfg(feature = "fast-channel")]
pub mod fast {
    use super::FsoChannel;

    /// Stated absolute error bound of the interpolated path vs the analytic
    /// one (the measured error is far smaller; see the proptests).
    pub const ABS_ERR_BOUND: f64 = 1e-3;

    /// Grid resolution: points per dB.
    const STEP_PER_DB: f64 = 128.0;
    /// Table range below sensitivity / above overload (dB).
    const RANGE_DB: f64 = 15.0;

    /// Dense lookup tables for one channel + frame size.
    #[derive(Debug, Clone)]
    pub struct ChannelLut {
        channel: FsoChannel,
        frame_bits: u64,
        p0: f64,
        q: Vec<f64>,
        ber: Vec<f64>,
        fsp: Vec<f64>,
    }

    impl ChannelLut {
        /// Samples and monotonizes the tables.
        pub fn new(channel: FsoChannel, frame_bits: u64) -> ChannelLut {
            let h = 1.0 / STEP_PER_DB;
            // Anchor the grid on the overload power so the q kink lands on
            // a node (linear interpolation across a kink would not).
            let n_below = ((channel.overload_dbm - (channel.sensitivity_dbm - RANGE_DB))
                * STEP_PER_DB)
                .ceil()
                .max(1.0) as usize;
            let n_above = (RANGE_DB * STEP_PER_DB) as usize;
            let p0 = channel.overload_dbm - n_below as f64 * h;
            let n = n_below + n_above + 1;
            let p_at = |i: usize| p0 + i as f64 * h;
            let mut q: Vec<f64> = (0..n).map(|i| channel.q_factor(p_at(i))).collect();
            let mut ber: Vec<f64> = (0..n).map(|i| channel.ber(p_at(i))).collect();
            let mut fsp: Vec<f64> = (0..n)
                .map(|i| channel.frame_success_prob(p_at(i), frame_bits))
                .collect();
            // Monotonize each side of the overload node, so the documented
            // monotonicity-in-power holds exactly under interpolation even
            // where the analytic approximations wiggle by an ulp.
            let k = n_below;
            for i in (0..k).rev() {
                q[i] = q[i].min(q[i + 1]);
                ber[i] = ber[i].max(ber[i + 1]);
                fsp[i] = fsp[i].min(fsp[i + 1]);
            }
            for i in k + 1..n {
                q[i] = q[i].min(q[i - 1]);
                ber[i] = ber[i].max(ber[i - 1]);
                fsp[i] = fsp[i].min(fsp[i - 1]);
            }
            ChannelLut {
                channel,
                frame_bits,
                p0,
                q,
                ber,
                fsp,
            }
        }

        #[inline]
        fn interp(&self, table: &[f64], rx_dbm: f64) -> Option<f64> {
            let x = (rx_dbm - self.p0) * STEP_PER_DB;
            // NaN fails the range check and falls back to analytic.
            if !(x >= 0.0 && x <= (table.len() - 1) as f64) {
                return None;
            }
            let i = (x as usize).min(table.len() - 2);
            let f = x - i as f64;
            Some(table[i] + (table[i + 1] - table[i]) * f)
        }

        /// Interpolated [`FsoChannel::q_factor`].
        #[inline]
        pub fn q_factor(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.q, rx_dbm)
                .unwrap_or_else(|| self.channel.q_factor(rx_dbm))
        }

        /// Interpolated [`FsoChannel::ber`].
        #[inline]
        pub fn ber(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.ber, rx_dbm)
                .unwrap_or_else(|| self.channel.ber(rx_dbm))
        }

        /// Interpolated [`FsoChannel::frame_success_prob`] at the frame size
        /// the table was built for.
        #[inline]
        pub fn frame_success_prob(&self, rx_dbm: f64) -> f64 {
            self.interp(&self.fsp, rx_dbm)
                .unwrap_or_else(|| self.channel.frame_success_prob(rx_dbm, self.frame_bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> FsoChannel {
        FsoChannel::new(-25.0, 7.0)
    }

    #[test]
    fn erfc_anchor_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
        assert!(erfc(5.0) < 1.6e-12);
    }

    #[test]
    fn ber_at_sensitivity_is_1e12() {
        let ber = ch().ber(-25.0);
        assert!((1e-13..1e-11).contains(&ber), "BER {ber}");
    }

    #[test]
    fn ber_is_a_cliff() {
        let c = ch();
        // 3 dB above sensitivity: essentially error-free (BER ~1e-22).
        assert!(c.ber(-22.0) < 1e-18);
        // 6 dB below: catastrophic for any packet stream.
        assert!(c.ber(-31.0) > 1e-4, "ber {}", c.ber(-31.0));
        // No signal at all: coin flips.
        assert!((c.ber(f64::NEG_INFINITY) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ber_monotone_in_power_below_overload() {
        let c = ch();
        let mut last = 1.0;
        for p in [-30.0, -27.0, -25.0, -23.0, -20.0, -10.0] {
            let b = c.ber(p);
            assert!(b <= last, "BER must fall with power ({p} dBm: {b})");
            last = b;
        }
    }

    #[test]
    fn channel_is_total_on_garbage_input() {
        let c = ch();
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e308, -1e308] {
            let q = c.q_factor(p);
            assert!(q.is_finite() && q >= 0.0, "q({p}) = {q}");
            let b = c.ber(p);
            assert!((0.0..=0.5).contains(&b), "ber({p}) = {b}");
            let f = c.frame_success_prob(p, 12_000);
            assert!((0.0..=1.0).contains(&f), "fsp({p}) = {f}");
        }
        // Garbage reads as "link dead", not "link fine".
        assert!((c.ber(f64::NAN) - 0.5).abs() < 1e-6);
        assert!(c.frame_success_prob(f64::NAN, 12_000) < 1e-9);
    }

    #[test]
    fn overload_degrades_q() {
        let c = ch();
        assert!(c.q_factor(12.0) < c.q_factor(5.0));
    }

    #[test]
    fn rf_ladder_steps_down_with_distance() {
        let rf = RfChannel::default();
        // Room scale: full rate.
        assert_eq!(rf.rate_gbps(1.75, false), RF_RATE_LADDER_GBPS[0]);
        let mut last = f64::INFINITY;
        for d in [0.5, 2.5, 4.5, 6.5, 8.5, 10.5, 25.0] {
            let r = rf.rate_gbps(d, false);
            assert!(r <= last, "rate must not rise with distance ({d} m: {r})");
            assert!(r > 0.0, "in-range distance must keep a nonzero rate");
            last = r;
        }
        // Past the hard range: dead.
        assert_eq!(rf.rate_gbps(31.0, false), 0.0);
    }

    #[test]
    fn rf_occlusion_degrades_but_does_not_kill() {
        let rf = RfChannel::default();
        let clear = rf.rate_gbps(1.75, false);
        let blocked = rf.rate_gbps(1.75, true);
        assert!(blocked < clear, "occlusion must cost rate");
        assert!(
            blocked > 0.0,
            "RF diffracts: occlusion must not zero the rate"
        );
        assert_eq!(rf.rung(1.75, true), Some(rf.rung(1.75, false).unwrap() + 2));
    }

    #[test]
    fn rf_is_total_on_garbage_input() {
        let rf = RfChannel::default();
        for d in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 1e308] {
            assert_eq!(rf.rate_gbps(d, false), 0.0, "rate({d})");
            assert_eq!(rf.rung(d, true), None, "rung({d})");
        }
        // Deep rungs saturate at the bottom of the ladder, never index OOB.
        let r = rf.rate_gbps(29.9, true);
        assert_eq!(r, RF_RATE_LADDER_GBPS[RF_RATE_LADDER_GBPS.len() - 1]);
    }

    #[test]
    fn frame_success_probability() {
        let c = ch();
        // 1500-byte frame = 12k bits.
        assert!((c.frame_success_prob(-20.0, 12_000) - 1.0).abs() < 1e-9);
        let marginal = c.frame_success_prob(-26.5, 12_000);
        assert!((0.0..1.0).contains(&marginal), "marginal {marginal}");
        assert!(c.frame_success_prob(-35.0, 12_000) < 1e-6);
    }
}
