//! Received power → bit-error rate → frame loss.
//!
//! An intensity-modulated direct-detection (OOK) receiver in Gaussian noise
//! has `BER = ½·erfc(Q/√2)`, with the Q factor proportional to the received
//! *amplitude*. SFP data sheets specify the sensitivity as the power at
//! which BER reaches 10⁻¹² (`Q ≈ 7.03`); the model anchors there and scales
//! `Q` with received power: `Q = Q_ref · 10^((P − P_sens)/20)` (20, not 10:
//! amplitude, not power).
//!
//! The practical upshot reproduced from the paper: the link is a cliff. A
//! couple of dB above sensitivity the frame loss is immeasurably small; a
//! couple of dB below, nothing gets through — which is why the paper's
//! throughput plots switch between "optimal" and "zero" so sharply.

/// Q factor at the specified sensitivity (BER 10⁻¹²).
pub const Q_AT_SENSITIVITY: f64 = 7.034;

/// Complementary error function (Abramowitz & Stegun 7.1.26-based rational
/// approximation, |error| < 1.5·10⁻⁷, extended by symmetry).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// The power→loss channel for a given transceiver sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct FsoChannel {
    /// Receiver sensitivity (dBm) at which BER = 10⁻¹².
    pub sensitivity_dbm: f64,
    /// Receiver overload threshold (dBm): above this the receiver saturates
    /// and errors grow again.
    pub overload_dbm: f64,
}

impl FsoChannel {
    /// Channel anchored at a transceiver's data-sheet points.
    pub fn new(sensitivity_dbm: f64, overload_dbm: f64) -> FsoChannel {
        FsoChannel {
            sensitivity_dbm,
            overload_dbm,
        }
    }

    /// Q factor at the given received power. Total: NaN and ±∞ inputs map
    /// to `Q = 0` (no usable signal) rather than propagating — a garbage
    /// power report must read as "link dead", never as NaN throughput.
    /// (+∞ is genuinely the overload limit: `Q ∝ 10^(p/20 − p/10) → 0`.)
    pub fn q_factor(&self, rx_dbm: f64) -> f64 {
        if !rx_dbm.is_finite() {
            return 0.0;
        }
        let mut q = Q_AT_SENSITIVITY * 10f64.powf((rx_dbm - self.sensitivity_dbm) / 20.0);
        if rx_dbm > self.overload_dbm {
            // Saturation: Q degrades with overdrive.
            q *= 10f64.powf(-(rx_dbm - self.overload_dbm) / 10.0);
        }
        if q.is_finite() {
            q
        } else {
            0.0
        }
    }

    /// Bit-error rate at the given received power. Total: always in
    /// `[0, 0.5]`, even for non-finite input.
    pub fn ber(&self, rx_dbm: f64) -> f64 {
        let q = self.q_factor(rx_dbm);
        let b = 0.5 * erfc(q / std::f64::consts::SQRT_2);
        if b.is_nan() {
            return 0.5;
        }
        b.clamp(0.0, 0.5)
    }

    /// Probability an `n_bits` frame survives (no bit errors). Total:
    /// always in `[0, 1]`.
    pub fn frame_success_prob(&self, rx_dbm: f64, n_bits: u64) -> f64 {
        let ber = self.ber(rx_dbm);
        if ber <= 1e-15 {
            return 1.0;
        }
        // (1−p)^n via exp(n·ln(1−p)), stable for small p.
        (n_bits as f64 * (1.0 - ber).ln()).exp().clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> FsoChannel {
        FsoChannel::new(-25.0, 7.0)
    }

    #[test]
    fn erfc_anchor_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
        assert!(erfc(5.0) < 1.6e-12);
    }

    #[test]
    fn ber_at_sensitivity_is_1e12() {
        let ber = ch().ber(-25.0);
        assert!((1e-13..1e-11).contains(&ber), "BER {ber}");
    }

    #[test]
    fn ber_is_a_cliff() {
        let c = ch();
        // 3 dB above sensitivity: essentially error-free (BER ~1e-22).
        assert!(c.ber(-22.0) < 1e-18);
        // 6 dB below: catastrophic for any packet stream.
        assert!(c.ber(-31.0) > 1e-4, "ber {}", c.ber(-31.0));
        // No signal at all: coin flips.
        assert!((c.ber(f64::NEG_INFINITY) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ber_monotone_in_power_below_overload() {
        let c = ch();
        let mut last = 1.0;
        for p in [-30.0, -27.0, -25.0, -23.0, -20.0, -10.0] {
            let b = c.ber(p);
            assert!(b <= last, "BER must fall with power ({p} dBm: {b})");
            last = b;
        }
    }

    #[test]
    fn channel_is_total_on_garbage_input() {
        let c = ch();
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e308, -1e308] {
            let q = c.q_factor(p);
            assert!(q.is_finite() && q >= 0.0, "q({p}) = {q}");
            let b = c.ber(p);
            assert!((0.0..=0.5).contains(&b), "ber({p}) = {b}");
            let f = c.frame_success_prob(p, 12_000);
            assert!((0.0..=1.0).contains(&f), "fsp({p}) = {f}");
        }
        // Garbage reads as "link dead", not "link fine".
        assert!((c.ber(f64::NAN) - 0.5).abs() < 1e-6);
        assert!(c.frame_success_prob(f64::NAN, 12_000) < 1e-9);
    }

    #[test]
    fn overload_degrades_q() {
        let c = ch();
        assert!(c.q_factor(12.0) < c.q_factor(5.0));
    }

    #[test]
    fn frame_success_probability() {
        let c = ch();
        // 1500-byte frame = 12k bits.
        assert!((c.frame_success_prob(-20.0, 12_000) - 1.0).abs() < 1e-9);
        let marginal = c.frame_success_prob(-26.5, 12_000);
        assert!((0.0..1.0).contains(&marginal), "marginal {marginal}");
        assert!(c.frame_success_prob(-35.0, 12_000) < 1e-6);
    }
}
