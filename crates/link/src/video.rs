//! VR video bandwidth requirements — the §2.1 motivation, as arithmetic.
//!
//! "Even a 2D uncompressed 8K RGB video at 30 frames per second requires
//! ≈ 24 Gbps; adding the Alpha+depth channels ... would increase the
//! required data rates to as high as 200 Gbps. A recent work \[31\] estimates
//! the bandwidth requirements for a life-like rendered video to be as high
//! as 2.7 to 27 Tbps based on 1800 frames/sec." This module computes those
//! rates from first principles so examples and tests can ask *which content
//! the measured link actually carries*.

/// An uncompressed video format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoFormat {
    /// Descriptive name.
    pub name: &'static str,
    /// Horizontal resolution (pixels).
    pub width: u32,
    /// Vertical resolution (pixels).
    pub height: u32,
    /// Bits per pixel (all channels).
    pub bits_per_pixel: u32,
    /// Frames per second.
    pub fps: f64,
}

impl VideoFormat {
    /// Raw bitrate in Gbps.
    pub fn gbps(&self) -> f64 {
        self.width as f64 * self.height as f64 * self.bits_per_pixel as f64 * self.fps / 1e9
    }

    /// 1080p RGB at 90 fps — a per-eye stream today's tethered headsets use.
    pub fn hd_90() -> VideoFormat {
        VideoFormat {
            name: "1080p RGB @90",
            width: 1920,
            height: 1080,
            bits_per_pixel: 24,
            fps: 90.0,
        }
    }

    /// 4K RGB at 90 fps.
    pub fn uhd4k_90() -> VideoFormat {
        VideoFormat {
            name: "4K RGB @90",
            width: 3840,
            height: 2160,
            bits_per_pixel: 24,
            fps: 90.0,
        }
    }

    /// The paper's anchor: 8K RGB at 30 fps ≈ 24 Gbps.
    pub fn uhd8k_30() -> VideoFormat {
        VideoFormat {
            name: "8K RGB @30",
            width: 7680,
            height: 4320,
            bits_per_pixel: 24,
            fps: 30.0,
        }
    }

    /// 8K with Alpha + 16-bit depth (RGBA-D48) at 60 fps — the "as high as
    /// 200 Gbps" class of §2.1.
    pub fn uhd8k_rgbad_60() -> VideoFormat {
        VideoFormat {
            name: "8K RGBA+depth @60",
            width: 7680,
            height: 4320,
            bits_per_pixel: 48,
            fps: 60.0,
        }
    }

    /// Life-like per \[31\]: 8K-class field at 1800 fps (lower bound of the
    /// 2.7–27 Tbps estimate).
    pub fn life_like_1800() -> VideoFormat {
        VideoFormat {
            name: "life-like @1800 [31]",
            width: 7680,
            height: 4320,
            bits_per_pixel: 45,
            fps: 1800.0,
        }
    }
}

/// Which of the given formats fit in a link of `effective_gbps` goodput.
pub fn supported_formats(effective_gbps: f64, formats: &[VideoFormat]) -> Vec<VideoFormat> {
    formats
        .iter()
        .copied()
        .filter(|f| f.gbps() <= effective_gbps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_8k30_is_about_24_gbps() {
        let g = VideoFormat::uhd8k_30().gbps();
        assert!((22.0..26.0).contains(&g), "8K@30 = {g} Gbps (paper: ≈24)");
    }

    #[test]
    fn depth_alpha_class_reaches_paper_band() {
        let g = VideoFormat::uhd8k_rgbad_60().gbps();
        assert!((90.0..200.0).contains(&g), "8K RGBA+D @60 = {g} Gbps");
    }

    #[test]
    fn life_like_is_terabits() {
        let g = VideoFormat::life_like_1800().gbps();
        assert!(
            (2_000.0..27_000.0).contains(&g),
            "life-like = {g} Gbps (paper: 2.7–27 Tbps)"
        );
    }

    #[test]
    fn what_the_prototypes_carry() {
        // The measured effective goodputs: 9.4 Gbps (10G) and ~23.2 Gbps
        // (25G over the Fig 16 corpus).
        let menu = [
            VideoFormat::hd_90(),
            VideoFormat::uhd4k_90(),
            VideoFormat::uhd8k_30(),
            VideoFormat::uhd8k_rgbad_60(),
        ];
        let on_10g = supported_formats(9.4, &menu);
        let on_25g = supported_formats(23.2, &menu);
        assert_eq!(on_10g.len(), 1, "10G carries 1080p@90 raw: {on_10g:?}");
        // 25G carries up to 4K@90 raw (17.9 Gbps); 8K@30 (23.9) just misses.
        assert_eq!(on_25g.len(), 2, "{on_25g:?}");
        assert!(on_25g.iter().any(|f| f.name.starts_with("4K")));
    }

    #[test]
    fn support_is_monotone_in_bandwidth() {
        let menu = [
            VideoFormat::hd_90(),
            VideoFormat::uhd4k_90(),
            VideoFormat::uhd8k_30(),
        ];
        let a = supported_formats(5.0, &menu).len();
        let b = supported_formats(25.0, &menu).len();
        assert!(a <= b);
    }
}
