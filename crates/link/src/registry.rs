//! Hardware device registry: data-driven capability tables for the SFP
//! stack, the galvo assembly and the headset tracker, behind one trait
//! each, with named presets and a validating [`HardwareProfile`] builder.
//!
//! The paper evaluates one build — 10G ZR optics, one GVS-class galvo,
//! Rift-S tracking. The registry turns each of those axes into a profile so
//! sessions and fleets mix heterogeneous hardware: `cyclops run --headset
//! quest --sfp 25g-lr` resolves names here, and the builder rejects unknown
//! names, out-of-range capability values and incompatible SFP/galvo
//! pairings with a typed [`RegistryError`] instead of panicking.
//!
//! Everything is data: a profile is a plain struct implementing its
//! capability trait ([`SfpProfile`] / [`GalvoProfile`] / [`HeadsetProfile`]),
//! and the preset tables are just `const`-like constructors — downstream
//! code can define custom profiles and feed them through the same builder
//! validation.

use cyclops_core::deployment::DeploymentConfig;
use cyclops_optics::coupling::LinkDesign;
use cyclops_optics::galvo::GalvoSimConfig;
use cyclops_optics::sfp::SfpSpec;
use cyclops_vrh::tracking::TrackerConfig;

/// Typed registry failure: every way resolving or combining profiles can go
/// wrong. CLI input errors surface as one of these, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No profile of `kind` is registered under `name`.
    UnknownProfile {
        /// Profile kind: `"sfp"`, `"galvo"` or `"headset"`.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A capability value is outside its valid range.
    OutOfRange {
        /// Which capability failed validation.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The SFP stack and the galvo assembly cannot be deployed together.
    IncompatiblePair {
        /// SFP profile name.
        sfp: String,
        /// Galvo profile name.
        galvo: String,
        /// Why the pairing is rejected.
        why: &'static str,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownProfile { kind, name } => {
                write!(f, "unknown {kind} profile {name:?}")
            }
            RegistryError::OutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            RegistryError::IncompatiblePair { sfp, galvo, why } => {
                write!(f, "sfp {sfp:?} incompatible with galvo {galvo:?}: {why}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

// ---------------------------------------------------------------------------
// Capability traits
// ---------------------------------------------------------------------------

/// An SFP/optics stack capability: the transceiver + optical design a TX
/// unit is built from, plus deployment constraints the builder validates.
pub trait SfpProfile {
    /// Registry name (e.g. `"25g-lr"`).
    fn name(&self) -> &str;
    /// The full optical link design (transceiver, EDFA, beam, coupling).
    fn link_design(&self) -> LinkDesign;
    /// Minimum galvo slew (deg/s of mirror angle) the stack needs; a WDM
    /// stack with per-lane alignment wants a fast mirror.
    fn min_galvo_slew_deg_s(&self) -> f64 {
        0.0
    }
    /// Number of wavelength lanes (1 = single-λ).
    fn wdm_lanes(&self) -> u32 {
        1
    }
}

/// A galvo assembly capability: the driver non-idealities of the steering
/// mirror pair.
pub trait GalvoProfile {
    /// Registry name (e.g. `"galvo-fast"`).
    fn name(&self) -> &str;
    /// The simulator configuration for this assembly.
    fn galvo(&self) -> GalvoSimConfig;
    /// Large-step slew rate (deg/s of mirror angle).
    fn slew_deg_s(&self) -> f64 {
        self.galvo().slew_rad_per_s.to_degrees()
    }
}

/// A headset capability: the tracking timing/noise model the VRH reports
/// with.
pub trait HeadsetProfile {
    /// Registry name (e.g. `"quest"`).
    fn name(&self) -> &str;
    /// The tracker configuration for this headset class.
    fn tracker(&self) -> TrackerConfig;
}

// ---------------------------------------------------------------------------
// Data-driven profile definitions + preset tables
// ---------------------------------------------------------------------------

/// A concrete, data-driven [`SfpProfile`].
#[derive(Debug, Clone, Copy)]
pub struct SfpProfileDef {
    /// Registry name.
    pub name: &'static str,
    /// The optical link design.
    pub design: LinkDesign,
    /// Minimum galvo slew required (deg/s).
    pub min_galvo_slew_deg_s: f64,
    /// Wavelength lanes.
    pub wdm_lanes: u32,
}

impl SfpProfile for SfpProfileDef {
    fn name(&self) -> &str {
        self.name
    }

    fn link_design(&self) -> LinkDesign {
        self.design
    }

    fn min_galvo_slew_deg_s(&self) -> f64 {
        self.min_galvo_slew_deg_s
    }

    fn wdm_lanes(&self) -> u32 {
        self.wdm_lanes
    }
}

/// A concrete, data-driven [`GalvoProfile`].
#[derive(Debug, Clone, Copy)]
pub struct GalvoProfileDef {
    /// Registry name.
    pub name: &'static str,
    /// Simulator configuration.
    pub cfg: GalvoSimConfig,
}

impl GalvoProfile for GalvoProfileDef {
    fn name(&self) -> &str {
        self.name
    }

    fn galvo(&self) -> GalvoSimConfig {
        self.cfg
    }
}

/// A concrete, data-driven [`HeadsetProfile`].
#[derive(Debug, Clone, Copy)]
pub struct HeadsetProfileDef {
    /// Registry name.
    pub name: &'static str,
    /// Tracker configuration.
    pub tracker: TrackerConfig,
}

impl HeadsetProfile for HeadsetProfileDef {
    fn name(&self) -> &str {
        self.name
    }

    fn tracker(&self) -> TrackerConfig {
        self.tracker
    }
}

/// The registered SFP stacks: the paper's 10G ZR and 25G LR prototypes plus
/// the §6 forward-looking 4×10G CWDM stack (whose mux/demux insertion loss
/// eats ~4 dB of the ZR budget and whose per-lane alignment wants the fast
/// galvo).
pub fn sfp_profiles() -> Vec<SfpProfileDef> {
    let wdm_design = {
        let mut d = LinkDesign::ten_g_diverging(20.0e-3, 1.75);
        d.sfp = SfpSpec {
            name: "4x10G-CWDM-stack",
            line_rate_gbps: 41.25,
            optimal_goodput_gbps: 37.6,
            tx_power_dbm: 2.0,
            rx_sensitivity_dbm: -21.0,
            rx_overload_dbm: 7.0,
            relink_time_s: 2.5,
            wavelength_nm: 1291.0,
        };
        d
    };
    vec![
        SfpProfileDef {
            name: "10g-zr",
            design: LinkDesign::ten_g_diverging(20.0e-3, 1.75),
            min_galvo_slew_deg_s: 0.0,
            wdm_lanes: 1,
        },
        SfpProfileDef {
            name: "25g-lr",
            design: LinkDesign::twenty_five_g(20.0e-3, 1.75),
            min_galvo_slew_deg_s: 0.0,
            wdm_lanes: 1,
        },
        SfpProfileDef {
            name: "40g-wdm",
            design: wdm_design,
            min_galvo_slew_deg_s: 500.0,
            wdm_lanes: 4,
        },
    ]
}

/// The registered galvo assemblies: the paper's GVS-class fast mirror and a
/// slow large-aperture mirror (bigger beam, 10× slower slew, longer
/// settle).
pub fn galvo_profiles() -> Vec<GalvoProfileDef> {
    vec![
        GalvoProfileDef {
            name: "galvo-fast",
            cfg: GalvoSimConfig::default(),
        },
        GalvoProfileDef {
            name: "galvo-slow",
            cfg: GalvoSimConfig {
                small_step_settle_s: 2e-3,
                slew_rad_per_s: 100f64.to_radians(),
                ..GalvoSimConfig::default()
            },
        },
    ]
}

/// The registered headset classes: the paper's Rift S (§5.2 noise
/// measurements) and a Quest-class standalone headset — slower 72 Hz
/// report cadence, more late reports, and roughly 1.5× the inside-out
/// tracking jitter.
pub fn headset_profiles() -> Vec<HeadsetProfileDef> {
    let rift = TrackerConfig::default();
    vec![
        HeadsetProfileDef {
            name: "rift-s",
            tracker: rift,
        },
        HeadsetProfileDef {
            name: "quest",
            tracker: TrackerConfig {
                period_min_s: 0.0136,
                period_max_s: 0.0142,
                late_prob: 0.015,
                late_min_s: 0.016,
                late_max_s: 0.018,
                pos_noise_sigma: rift.pos_noise_sigma * 1.5,
                ang_noise_sigma: rift.ang_noise_sigma * 1.5,
                ..rift
            },
        },
    ]
}

/// Resolves an SFP profile by name.
pub fn sfp_profile(name: &str) -> Result<SfpProfileDef, RegistryError> {
    sfp_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| RegistryError::UnknownProfile {
            kind: "sfp",
            name: name.to_string(),
        })
}

/// Resolves a galvo profile by name.
pub fn galvo_profile(name: &str) -> Result<GalvoProfileDef, RegistryError> {
    galvo_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| RegistryError::UnknownProfile {
            kind: "galvo",
            name: name.to_string(),
        })
}

/// Resolves a headset profile by name.
pub fn headset_profile(name: &str) -> Result<HeadsetProfileDef, RegistryError> {
    headset_profiles()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| RegistryError::UnknownProfile {
            kind: "headset",
            name: name.to_string(),
        })
}

// ---------------------------------------------------------------------------
// Validating hardware-profile builder
// ---------------------------------------------------------------------------

/// One validated hardware build: an SFP stack, a galvo assembly and a
/// headset class that are mutually compatible. Construct through
/// [`HardwareProfile::builder`].
#[derive(Debug, Clone, Copy)]
pub struct HardwareProfile {
    /// The SFP/optics stack.
    pub sfp: SfpProfileDef,
    /// The galvo assembly.
    pub galvo: GalvoProfileDef,
    /// The headset class.
    pub headset: HeadsetProfileDef,
}

impl Default for HardwareProfile {
    /// The paper's build: 10G ZR + fast galvo + Rift S. Infallible by
    /// construction (the presets validate).
    fn default() -> Self {
        HardwareProfile::builder()
            .build()
            .expect("default presets are compatible")
    }
}

impl HardwareProfile {
    /// Starts a builder at the paper's default build (`10g-zr`,
    /// `galvo-fast`, `rift-s`).
    pub fn builder() -> HardwareProfileBuilder {
        HardwareProfileBuilder {
            sfp: Named::Preset("10g-zr"),
            galvo: Named::Preset("galvo-fast"),
            headset: Named::Preset("rift-s"),
        }
    }

    /// Resolves and validates three preset names in one call.
    pub fn named(sfp: &str, galvo: &str, headset: &str) -> Result<HardwareProfile, RegistryError> {
        HardwareProfile::builder()
            .sfp(sfp)
            .galvo(galvo)
            .headset(headset)
            .build()
    }

    /// Display label, e.g. `"25g-lr/galvo-fast/quest"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.sfp.name, self.galvo.name, self.headset.name
        )
    }

    /// The deployment configuration this build commissions from: the
    /// profile's link design and galvo non-idealities over the paper's
    /// assembly tolerances.
    pub fn deployment_config(&self, seed: u64) -> DeploymentConfig {
        DeploymentConfig {
            design: self.sfp.design,
            galvo_cfg: self.galvo.cfg,
            ..DeploymentConfig::paper_10g(seed)
        }
    }

    /// The tracker configuration of the headset class.
    pub fn tracker(&self) -> TrackerConfig {
        self.headset.tracker
    }
}

/// A builder slot: a preset name to resolve, or a custom definition to
/// validate.
#[derive(Debug, Clone)]
enum Named<T> {
    Preset(&'static str),
    Name(String),
    Custom(T),
}

/// Validating builder for [`HardwareProfile`]. Name resolution, capability
/// range checks and pairing checks all happen in
/// [`HardwareProfileBuilder::build`], so errors surface once, typed.
#[derive(Debug, Clone)]
pub struct HardwareProfileBuilder {
    sfp: Named<SfpProfileDef>,
    galvo: Named<GalvoProfileDef>,
    headset: Named<HeadsetProfileDef>,
}

impl HardwareProfileBuilder {
    /// Selects an SFP stack by registry name.
    pub fn sfp(mut self, name: &str) -> Self {
        self.sfp = Named::Name(name.to_string());
        self
    }

    /// Supplies a custom SFP stack definition.
    pub fn sfp_def(mut self, def: SfpProfileDef) -> Self {
        self.sfp = Named::Custom(def);
        self
    }

    /// Selects a galvo assembly by registry name.
    pub fn galvo(mut self, name: &str) -> Self {
        self.galvo = Named::Name(name.to_string());
        self
    }

    /// Supplies a custom galvo definition.
    pub fn galvo_def(mut self, def: GalvoProfileDef) -> Self {
        self.galvo = Named::Custom(def);
        self
    }

    /// Selects a headset class by registry name.
    pub fn headset(mut self, name: &str) -> Self {
        self.headset = Named::Name(name.to_string());
        self
    }

    /// Supplies a custom headset definition.
    pub fn headset_def(mut self, def: HeadsetProfileDef) -> Self {
        self.headset = Named::Custom(def);
        self
    }

    /// Resolves names, validates every capability range and checks the
    /// SFP/galvo pairing.
    pub fn build(self) -> Result<HardwareProfile, RegistryError> {
        let sfp = match self.sfp {
            Named::Preset(n) => sfp_profile(n)?,
            Named::Name(ref n) => sfp_profile(n)?,
            Named::Custom(d) => d,
        };
        let galvo = match self.galvo {
            Named::Preset(n) => galvo_profile(n)?,
            Named::Name(ref n) => galvo_profile(n)?,
            Named::Custom(d) => d,
        };
        let headset = match self.headset {
            Named::Preset(n) => headset_profile(n)?,
            Named::Name(ref n) => headset_profile(n)?,
            Named::Custom(d) => d,
        };
        validate_sfp(&sfp)?;
        validate_galvo(&galvo)?;
        validate_headset(&headset)?;
        let slew = galvo.slew_deg_s();
        if slew < sfp.min_galvo_slew_deg_s {
            return Err(RegistryError::IncompatiblePair {
                sfp: sfp.name.to_string(),
                galvo: galvo.name.to_string(),
                why: "stack needs a faster mirror (per-lane WDM alignment)",
            });
        }
        Ok(HardwareProfile {
            sfp,
            galvo,
            headset,
        })
    }
}

fn out_of_range(what: &'static str, value: f64) -> RegistryError {
    RegistryError::OutOfRange { what, value }
}

fn validate_sfp(p: &SfpProfileDef) -> Result<(), RegistryError> {
    let s = &p.design.sfp;
    if !(s.rx_sensitivity_dbm.is_finite() && s.rx_overload_dbm.is_finite()) {
        return Err(out_of_range("sfp rx thresholds", s.rx_sensitivity_dbm));
    }
    if s.rx_overload_dbm <= s.rx_sensitivity_dbm {
        return Err(out_of_range(
            "sfp rx_overload_dbm (must exceed sensitivity)",
            s.rx_overload_dbm,
        ));
    }
    if !(s.line_rate_gbps.is_finite() && s.line_rate_gbps > 0.0) {
        return Err(out_of_range("sfp line_rate_gbps", s.line_rate_gbps));
    }
    if !(s.optimal_goodput_gbps > 0.0 && s.optimal_goodput_gbps <= s.line_rate_gbps) {
        return Err(out_of_range(
            "sfp optimal_goodput_gbps (must be in (0, line rate])",
            s.optimal_goodput_gbps,
        ));
    }
    if !(s.relink_time_s.is_finite() && s.relink_time_s >= 0.0) {
        return Err(out_of_range("sfp relink_time_s", s.relink_time_s));
    }
    if !(s.wavelength_nm.is_finite() && s.wavelength_nm > 0.0) {
        return Err(out_of_range("sfp wavelength_nm", s.wavelength_nm));
    }
    if !(p.min_galvo_slew_deg_s.is_finite() && p.min_galvo_slew_deg_s >= 0.0) {
        return Err(out_of_range(
            "sfp min_galvo_slew_deg_s",
            p.min_galvo_slew_deg_s,
        ));
    }
    if p.wdm_lanes == 0 {
        return Err(out_of_range("sfp wdm_lanes (must be >= 1)", 0.0));
    }
    Ok(())
}

fn validate_galvo(p: &GalvoProfileDef) -> Result<(), RegistryError> {
    let g = &p.cfg;
    if g.slew_rad_per_s.is_nan() || g.slew_rad_per_s <= 0.0 {
        return Err(out_of_range("galvo slew_rad_per_s", g.slew_rad_per_s));
    }
    if !(g.small_step_settle_s.is_finite() && g.small_step_settle_s >= 0.0) {
        return Err(out_of_range(
            "galvo small_step_settle_s",
            g.small_step_settle_s,
        ));
    }
    if !(g.angle_noise_rad.is_finite() && g.angle_noise_rad >= 0.0) {
        return Err(out_of_range("galvo angle_noise_rad", g.angle_noise_rad));
    }
    if !(g.dac_step_v.is_finite() && g.dac_step_v >= 0.0) {
        return Err(out_of_range("galvo dac_step_v", g.dac_step_v));
    }
    Ok(())
}

fn validate_headset(p: &HeadsetProfileDef) -> Result<(), RegistryError> {
    let t = &p.tracker;
    if !(t.period_min_s.is_finite() && t.period_min_s > 0.0 && t.period_max_s >= t.period_min_s) {
        return Err(out_of_range("headset report period", t.period_min_s));
    }
    if !(0.0..=1.0).contains(&t.late_prob) {
        return Err(out_of_range("headset late_prob", t.late_prob));
    }
    if !(0.0..=1.0).contains(&t.report_loss_prob) {
        return Err(out_of_range("headset report_loss_prob", t.report_loss_prob));
    }
    if !(t.pos_noise_sigma.is_finite() && t.pos_noise_sigma >= 0.0) {
        return Err(out_of_range("headset pos_noise_sigma", t.pos_noise_sigma));
    }
    if !(t.ang_noise_sigma.is_finite() && t.ang_noise_sigma >= 0.0) {
        return Err(out_of_range("headset ang_noise_sigma", t.ang_noise_sigma));
    }
    if !(t.control_channel_latency_s.is_finite() && t.control_channel_latency_s >= 0.0) {
        return Err(out_of_range(
            "headset control_channel_latency_s",
            t.control_channel_latency_s,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for p in sfp_profiles() {
            assert!(sfp_profile(p.name).is_ok());
            assert!(validate_sfp(&p).is_ok(), "{}", p.name);
        }
        for p in galvo_profiles() {
            assert!(galvo_profile(p.name).is_ok());
            assert!(validate_galvo(&p).is_ok(), "{}", p.name);
        }
        for p in headset_profiles() {
            assert!(headset_profile(p.name).is_ok());
            assert!(validate_headset(&p).is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn default_build_is_the_paper_prototype() {
        let hw = HardwareProfile::default();
        assert_eq!(hw.label(), "10g-zr/galvo-fast/rift-s");
        let dc = hw.deployment_config(7);
        let paper = DeploymentConfig::paper_10g(7);
        assert_eq!(
            dc.design.sfp.rx_sensitivity_dbm,
            paper.design.sfp.rx_sensitivity_dbm
        );
        assert_eq!(dc.galvo_cfg.slew_rad_per_s, paper.galvo_cfg.slew_rad_per_s);
        assert_eq!(
            hw.tracker().period_min_s,
            TrackerConfig::default().period_min_s
        );
    }

    #[test]
    fn unknown_names_are_rejected_per_kind() {
        assert!(matches!(
            sfp_profile("400g-zr"),
            Err(RegistryError::UnknownProfile { kind: "sfp", .. })
        ));
        assert!(matches!(
            galvo_profile("warp-drive"),
            Err(RegistryError::UnknownProfile { kind: "galvo", .. })
        ));
        assert!(matches!(
            headset_profile("vision-pro"),
            Err(RegistryError::UnknownProfile {
                kind: "headset",
                ..
            })
        ));
        assert!(HardwareProfile::named("10g-zr", "galvo-fast", "nope").is_err());
    }

    #[test]
    fn out_of_range_capabilities_are_rejected() {
        // SFP: overload below sensitivity.
        let mut bad = sfp_profile("10g-zr").unwrap();
        bad.design.sfp.rx_overload_dbm = bad.design.sfp.rx_sensitivity_dbm - 1.0;
        assert!(matches!(
            HardwareProfile::builder().sfp_def(bad).build(),
            Err(RegistryError::OutOfRange { .. })
        ));
        // SFP: goodput above line rate.
        let mut bad = sfp_profile("25g-lr").unwrap();
        bad.design.sfp.optimal_goodput_gbps = bad.design.sfp.line_rate_gbps * 2.0;
        assert!(matches!(
            HardwareProfile::builder().sfp_def(bad).build(),
            Err(RegistryError::OutOfRange { .. })
        ));
        // Galvo: non-positive slew.
        let mut bad = galvo_profile("galvo-fast").unwrap();
        bad.cfg.slew_rad_per_s = 0.0;
        assert!(matches!(
            HardwareProfile::builder().galvo_def(bad).build(),
            Err(RegistryError::OutOfRange { .. })
        ));
        // Headset: period band inverted.
        let mut bad = headset_profile("rift-s").unwrap();
        bad.tracker.period_max_s = bad.tracker.period_min_s / 2.0;
        assert!(matches!(
            HardwareProfile::builder().headset_def(bad).build(),
            Err(RegistryError::OutOfRange { .. })
        ));
        // Headset: probability outside [0, 1].
        let mut bad = headset_profile("quest").unwrap();
        bad.tracker.late_prob = 1.5;
        assert!(matches!(
            HardwareProfile::builder().headset_def(bad).build(),
            Err(RegistryError::OutOfRange { .. })
        ));
    }

    #[test]
    fn wdm_stack_requires_the_fast_galvo() {
        let err = HardwareProfile::named("40g-wdm", "galvo-slow", "rift-s").unwrap_err();
        assert!(matches!(err, RegistryError::IncompatiblePair { .. }));
        assert!(HardwareProfile::named("40g-wdm", "galvo-fast", "rift-s").is_ok());
        // Single-λ stacks pair with either mirror.
        assert!(HardwareProfile::named("25g-lr", "galvo-slow", "quest").is_ok());
    }

    #[test]
    fn quest_class_is_noisier_and_slower_than_rift() {
        let rift = headset_profile("rift-s").unwrap().tracker;
        let quest = headset_profile("quest").unwrap().tracker;
        assert!(quest.period_min_s > rift.period_min_s);
        assert!(quest.pos_noise_sigma > rift.pos_noise_sigma);
        assert!(quest.ang_noise_sigma > rift.ang_noise_sigma);
        assert!(quest.late_prob > rift.late_prob);
    }

    #[test]
    fn error_display_is_informative() {
        let e = RegistryError::UnknownProfile {
            kind: "sfp",
            name: "x".into(),
        };
        assert!(e.to_string().contains("unknown sfp profile"));
        let e = out_of_range("galvo slew", -1.0);
        assert!(e.to_string().contains("out of range"));
        let e = RegistryError::IncompatiblePair {
            sfp: "40g-wdm".into(),
            galvo: "galvo-slow".into(),
            why: "needs a faster mirror",
        };
        assert!(e.to_string().contains("incompatible"));
    }
}
