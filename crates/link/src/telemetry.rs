//! Deterministic, zero-cost-when-disabled engine observability.
//!
//! The paper's evaluation (§5) lives on per-slot visibility — TP latency
//! breakdowns, re-acquisition timelines, outage/handover causality — and the
//! ROADMAP's fleet-scale north star needs the same visibility at millions of
//! sessions. This module is the telemetry layer threaded through
//! [`crate::engine`]:
//!
//! * [`TelemetryEvent`] — the event taxonomy: slot lifecycle, TP command
//!   issue/apply, control-channel send/deliver/retransmit/drop, SFP
//!   lock/unlock, handover decisions, re-acquisition spiral start/probe/end,
//!   and fleet session start/finish;
//! * [`TelemetrySink`] — where events go: [`NullSink`] (the default),
//!   [`JsonlSink`] (one JSON object per line, hand-rolled — the workspace
//!   builds offline, no serde), or any user type;
//! * [`Histogram`] / [`TelemetryCounters`] / [`SessionTelemetry`] —
//!   fixed-bucket aggregation per session, merged across sessions by
//!   `run_fleet` into a fleet-level rollup;
//! * [`VirtualClock`] / [`ScopedTimer`] — scoped timing on *simulation*
//!   time. Sim paths never read the wall clock (`std::time::Instant` is
//!   confined to `crates/bench` by a CI grep lint), so attaching telemetry
//!   cannot perturb the engine's float streams.
//!
//! **Determinism contract.** Telemetry is pure observation: no random draw,
//! no float computed by the engine, and no control-flow decision depends on
//! whether a sink is attached. The `engine_digest` bin re-runs a workload
//! with telemetry disabled, a [`NullSink`], and a [`JsonlSink`] attached and
//! asserts bit-identical digests in both build configurations.

use std::fmt;
use std::io::{self, Write};

/// Number of equal-width buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 16;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// Where a TP command came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandSource {
    /// A delivered tracking report.
    Report,
    /// A constant-velocity dead-reckoned pose (stale control channel).
    DeadReckoned,
    /// The immediate alignment shot fired on the new unit after a handover.
    HandoverShot,
}

/// Why control-channel frames were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Lost in the channel (original or retransmit).
    ChannelLoss,
    /// The ACK was lost on the reverse path.
    AckLost,
    /// Dropped at the receiver as duplicate or stale.
    Stale,
    /// Abandoned by the sender after the retry budget.
    GaveUp,
}

/// One engine observation. Times are simulation seconds (the slot clock);
/// `k` is the session's global slot index, counted across `run` calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A fleet session began.
    SessionStart {
        /// Session index within the fleet.
        session: u64,
        /// The session's derived seed.
        seed: u64,
    },
    /// A fleet session finished.
    SessionEnd {
        /// Session index within the fleet.
        session: u64,
        /// Slots the session simulated.
        slots: u64,
    },
    /// A slot began.
    SlotStart {
        /// Global slot index.
        k: u64,
        /// Slot end time (s).
        t: f64,
    },
    /// A slot finished; carries the slot's record fields.
    SlotEnd {
        /// Global slot index.
        k: u64,
        /// Slot end time (s).
        t: f64,
        /// Active unit after any handover this slot.
        active: u32,
        /// Received power on the active unit (dBm).
        power_dbm: f64,
        /// Link margin over the SFP sensitivity (dB).
        margin_db: f64,
        /// Whether the link delivers data this slot (SFP up, or the RF
        /// fallback carrying traffic).
        link_up: bool,
        /// Whether the RF fallback carried this slot's traffic.
        rf_active: bool,
        /// Goodput delivered this slot (Gbps).
        goodput_gbps: f64,
    },
    /// The TP issued a pointing command.
    TpCommandIssued {
        /// Issue time (s).
        t: f64,
        /// When the command becomes optically effective (s).
        apply_at: f64,
        /// What triggered it.
        source: CommandSource,
        /// Compute + DAC latency of the command (s).
        latency_s: f64,
        /// Outer pointing-solver iterations spent.
        iters: u64,
        /// Whether the pointing iteration converged.
        converged: bool,
    },
    /// Queued commands reached their apply time and hit the DACs.
    TpApplied {
        /// Slot end time (s).
        t: f64,
        /// Commands applied this slot.
        n: u64,
    },
    /// A report was submitted to the control channel.
    CtrlSent {
        /// Submission time (s).
        t: f64,
    },
    /// A report was delivered to the TP.
    CtrlDelivered {
        /// Arrival time (s).
        t: f64,
        /// Sample-to-delivery age (s) — the latency the TP actually
        /// experiences, ARQ retries included.
        age_s: f64,
    },
    /// ARQ retransmissions were issued.
    CtrlRetransmit {
        /// Slot end time (s).
        t: f64,
        /// Retransmissions this slot.
        n: u64,
    },
    /// Control-channel frames were dropped.
    CtrlDropped {
        /// Slot end time (s).
        t: f64,
        /// Frames dropped this slot.
        n: u64,
        /// Why.
        reason: DropReason,
    },
    /// The SFP link dropped (loss of signal).
    SfpDown {
        /// Slot end time (s).
        t: f64,
    },
    /// The SFP link re-locked after holding signal for the relink time.
    SfpUp {
        /// Slot end time (s).
        t: f64,
        /// Duration of the outage that just ended (s).
        outage_s: f64,
    },
    /// The session handed over to another TX unit.
    Handover {
        /// Slot end time (s).
        t: f64,
        /// Previous active unit.
        from: u32,
        /// New active unit.
        to: u32,
    },
    /// A re-acquisition spiral started.
    ReacqStarted {
        /// Slot end time (s).
        t: f64,
    },
    /// The spiral probed one voltage point.
    ReacqProbe {
        /// Slot end time (s).
        t: f64,
    },
    /// The spiral ended.
    ReacqEnded {
        /// Slot end time (s).
        t: f64,
        /// True when solid signal was recovered; false when the probe
        /// budget was exhausted or a handover abandoned the search.
        recovered: bool,
    },
    /// Traffic failed over from FSO to the RF fallback.
    RfFailover {
        /// Slot end time (s).
        t: f64,
    },
    /// Traffic failed back from the RF fallback onto FSO.
    RfFailback {
        /// Slot end time (s).
        t: f64,
        /// Duration of the RF episode that just ended (s).
        rf_s: f64,
    },
    /// The fleet scheduler granted this session a TX unit (emitted on
    /// acquiring or changing a grant, not every slot).
    SchedGrant {
        /// Slot end time (s).
        t: f64,
        /// Index of the granted TX unit.
        unit: u64,
    },
    /// The fleet scheduler revoked this session's TX grant while it still
    /// had traffic queued.
    SchedPreempt {
        /// Slot end time (s).
        t: f64,
        /// Index of the TX unit that was taken away.
        unit: u64,
    },
    /// A playout-buffer stall (rebuffering episode) ended.
    PlayoutStall {
        /// Slot end time (s).
        t: f64,
        /// Duration of the stall episode that just ended (s).
        stall_s: f64,
    },
}

/// Formats an `f64` as JSON (non-finite values become `null`).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Zero-allocation [`Display`](fmt::Display) form of [`jf`]: formats the
/// float straight into the caller's buffer (same bytes as `jf`).
struct Jf(f64);

impl fmt::Display for Jf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            f.write_str("null")
        }
    }
}

impl TelemetryEvent {
    /// The event's kind tag, as used in the JSONL `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::SessionStart { .. } => "session_start",
            TelemetryEvent::SessionEnd { .. } => "session_end",
            TelemetryEvent::SlotStart { .. } => "slot_start",
            TelemetryEvent::SlotEnd { .. } => "slot_end",
            TelemetryEvent::TpCommandIssued { .. } => "tp_command",
            TelemetryEvent::TpApplied { .. } => "tp_applied",
            TelemetryEvent::CtrlSent { .. } => "ctrl_sent",
            TelemetryEvent::CtrlDelivered { .. } => "ctrl_delivered",
            TelemetryEvent::CtrlRetransmit { .. } => "ctrl_retransmit",
            TelemetryEvent::CtrlDropped { .. } => "ctrl_dropped",
            TelemetryEvent::SfpDown { .. } => "sfp_down",
            TelemetryEvent::SfpUp { .. } => "sfp_up",
            TelemetryEvent::Handover { .. } => "handover",
            TelemetryEvent::ReacqStarted { .. } => "reacq_started",
            TelemetryEvent::ReacqProbe { .. } => "reacq_probe",
            TelemetryEvent::ReacqEnded { .. } => "reacq_ended",
            TelemetryEvent::RfFailover { .. } => "rf_failover",
            TelemetryEvent::RfFailback { .. } => "rf_failback",
            TelemetryEvent::SchedGrant { .. } => "sched_grant",
            TelemetryEvent::SchedPreempt { .. } => "sched_preempt",
            TelemetryEvent::PlayoutStall { .. } => "playout_stall",
        }
    }

    /// One-line JSON rendering (the JSONL wire format).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    /// Appends the one-line JSON rendering to `buf` — same bytes as
    /// [`TelemetryEvent::to_json`], no allocation. [`JsonlSink`] uses this
    /// with a reused line buffer so steady-state event recording is
    /// allocation-free.
    pub fn write_json(&self, buf: &mut String) {
        use fmt::Write as _;
        let kind = self.kind();
        let _ = match *self {
            TelemetryEvent::SessionStart { session, seed } => {
                write!(
                    buf,
                    "{{\"ev\":\"{kind}\",\"session\":{session},\"seed\":{seed}}}"
                )
            }
            TelemetryEvent::SessionEnd { session, slots } => {
                write!(
                    buf,
                    "{{\"ev\":\"{kind}\",\"session\":{session},\"slots\":{slots}}}"
                )
            }
            TelemetryEvent::SlotStart { k, t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"k\":{k},\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::SlotEnd {
                k,
                t,
                active,
                power_dbm,
                margin_db,
                link_up,
                rf_active,
                goodput_gbps,
            } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"k\":{k},\"t\":{},\"active\":{active},\
                 \"power_dbm\":{},\"margin_db\":{},\"link_up\":{link_up},\
                 \"rf_active\":{rf_active},\"goodput_gbps\":{}}}",
                Jf(t),
                Jf(power_dbm),
                Jf(margin_db),
                Jf(goodput_gbps)
            ),
            TelemetryEvent::TpCommandIssued {
                t,
                apply_at,
                source,
                latency_s,
                iters,
                converged,
            } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"apply_at\":{},\"source\":\"{}\",\
                 \"latency_s\":{},\"iters\":{iters},\"converged\":{converged}}}",
                Jf(t),
                Jf(apply_at),
                match source {
                    CommandSource::Report => "report",
                    CommandSource::DeadReckoned => "dead_reckoned",
                    CommandSource::HandoverShot => "handover_shot",
                },
                Jf(latency_s)
            ),
            TelemetryEvent::TpApplied { t, n } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{},\"n\":{n}}}", Jf(t))
            }
            TelemetryEvent::CtrlSent { t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::CtrlDelivered { t, age_s } => {
                write!(
                    buf,
                    "{{\"ev\":\"{kind}\",\"t\":{},\"age_s\":{}}}",
                    Jf(t),
                    Jf(age_s)
                )
            }
            TelemetryEvent::CtrlRetransmit { t, n } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{},\"n\":{n}}}", Jf(t))
            }
            TelemetryEvent::CtrlDropped { t, n, reason } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"n\":{n},\"reason\":\"{}\"}}",
                Jf(t),
                match reason {
                    DropReason::ChannelLoss => "channel_loss",
                    DropReason::AckLost => "ack_lost",
                    DropReason::Stale => "stale",
                    DropReason::GaveUp => "gave_up",
                }
            ),
            TelemetryEvent::SfpDown { t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::SfpUp { t, outage_s } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"outage_s\":{}}}",
                Jf(t),
                Jf(outage_s)
            ),
            TelemetryEvent::Handover { t, from, to } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"from\":{from},\"to\":{to}}}",
                Jf(t)
            ),
            TelemetryEvent::ReacqStarted { t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::ReacqProbe { t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::ReacqEnded { t, recovered } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"recovered\":{recovered}}}",
                Jf(t)
            ),
            TelemetryEvent::RfFailover { t } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{}}}", Jf(t))
            }
            TelemetryEvent::RfFailback { t, rf_s } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"rf_s\":{}}}",
                Jf(t),
                Jf(rf_s)
            ),
            TelemetryEvent::SchedGrant { t, unit } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{},\"unit\":{unit}}}", Jf(t))
            }
            TelemetryEvent::SchedPreempt { t, unit } => {
                write!(buf, "{{\"ev\":\"{kind}\",\"t\":{},\"unit\":{unit}}}", Jf(t))
            }
            TelemetryEvent::PlayoutStall { t, stall_s } => write!(
                buf,
                "{{\"ev\":\"{kind}\",\"t\":{},\"stall_s\":{}}}",
                Jf(t),
                Jf(stall_s)
            ),
        };
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where engine events go. Implementations must be pure observers: a sink
/// must never feed anything back into the simulation (the engine's digest
/// identity with sinks attached is CI-enforced).
pub trait TelemetrySink: fmt::Debug + Send {
    /// Records one event.
    fn record(&mut self, ev: &TelemetryEvent);
    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// The default sink: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&mut self, _ev: &TelemetryEvent) {}
}

/// Writes one JSON object per event, one per line (JSONL). On the first
/// write error the sink latches failed and silently drops further events —
/// a telemetry I/O error must never abort a simulation.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    /// Reused line buffer: one event = one `write_json` into this buffer +
    /// one `write_all`, so steady-state recording allocates nothing.
    line: String,
    events: u64,
    failed: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            line: String::new(),
            events: 0,
            failed: false,
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Whether a write error occurred (subsequent events were dropped).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL file sink.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl JsonlSink<Vec<u8>> {
    /// An in-memory sink (tests, post-run inspection).
    pub fn in_memory() -> Self {
        JsonlSink::new(Vec::new())
    }

    /// The accumulated JSONL text.
    pub fn into_string(self) -> String {
        String::from_utf8(self.out).expect("JSONL output is ASCII")
    }
}

impl<W: Write + Send> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("events", &self.events)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, ev: &TelemetryEvent) {
        if self.failed {
            return;
        }
        self.line.clear();
        ev.write_json(&mut self.line);
        self.line.push('\n');
        if self.out.write_all(self.line.as_bytes()).is_ok() {
            self.events += 1;
        } else {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------------
// Aggregation: histogram, counters, per-session rollup
// ---------------------------------------------------------------------------

/// A fixed-bucket linear histogram over `[lo, hi)` with
/// underflow/overflow rails: [`HIST_BUCKETS`] equal-width buckets, plus
/// finite-sample sum/min/max for the mean. `Copy`, mergeable, and cheap
/// enough to record on every slot.
///
/// Edge semantics (pinned by unit tests): `x == lo` lands in bucket 0;
/// `x == hi` counts as overflow (half-open buckets); `-inf` is underflow;
/// `+inf` and `NaN` are overflow. Non-finite samples never touch
/// sum/min/max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: [u64; HIST_BUCKETS],
    underflow: u64,
    overflow: u64,
    n_finite: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)`. Both edges must be finite with
    /// `lo < hi`.
    pub fn new(lo: f64, hi: f64) -> Histogram {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "histogram needs finite lo < hi (got [{lo}, {hi}))"
        );
        Histogram {
            lo,
            hi,
            counts: [0; HIST_BUCKETS],
            underflow: 0,
            overflow: 0,
            n_finite: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.overflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * HIST_BUCKETS as f64) as usize).min(HIST_BUCKETS - 1);
            self.counts[idx] += 1;
        }
        if x.is_finite() {
            self.n_finite += 1;
            self.sum += x;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Adds another histogram's contents. Panics when the bucket edges
    /// differ — merging histograms of different quantities is a bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo.to_bits() == other.lo.to_bits() && self.hi.to_bits() == other.hi.to_bits(),
            "cannot merge histograms with different edges: [{}, {}) vs [{}, {})",
            self.lo,
            self.hi,
            other.lo,
            other.hi
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.n_finite += other.n_finite;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Lower edge.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Samples below `lo` (includes `-inf`).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi` (includes `+inf` and `NaN`).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (buckets + rails).
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Finite samples (the population behind mean/min/max).
    pub fn samples(&self) -> u64 {
        self.n_finite
    }

    /// Mean of the finite samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n_finite == 0 {
            0.0
        } else {
            self.sum / self.n_finite as f64
        }
    }

    /// Minimum finite sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n_finite > 0).then_some(self.min)
    }

    /// Maximum finite sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.n_finite > 0).then_some(self.max)
    }

    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"lo\":{},\"hi\":{},\"counts\":[{}],\"underflow\":{},\"overflow\":{},\
             \"samples\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
            jf(self.lo),
            jf(self.hi),
            counts.join(","),
            self.underflow,
            self.overflow,
            self.n_finite,
            jf(self.mean()),
            self.min().map_or("null".into(), jf),
            self.max().map_or("null".into(), jf)
        )
    }
}

/// Event-class counters (one `u64` per taxonomy class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Fleet sessions started.
    pub sessions: u64,
    /// Slots completed.
    pub slots: u64,
    /// TP commands issued (all sources).
    pub tp_commands: u64,
    /// Of which dead-reckoned.
    pub tp_dead_reckoned: u64,
    /// Of which post-handover alignment shots.
    pub tp_handover_shots: u64,
    /// Commands that reached the DACs.
    pub tp_applied: u64,
    /// Reports submitted to the control channel.
    pub ctrl_sent: u64,
    /// Reports delivered to the TP.
    pub ctrl_delivered: u64,
    /// ARQ retransmissions.
    pub ctrl_retransmits: u64,
    /// Control frames dropped (all reasons).
    pub ctrl_dropped: u64,
    /// SFP link-down transitions.
    pub sfp_downs: u64,
    /// SFP re-locks.
    pub sfp_ups: u64,
    /// Handovers performed.
    pub handovers: u64,
    /// Re-acquisition spirals started.
    pub reacq_started: u64,
    /// Spiral probes taken.
    pub reacq_probes: u64,
    /// Spirals that recovered solid signal.
    pub reacq_recovered: u64,
    /// Spirals abandoned (budget exhausted or handover).
    pub reacq_abandoned: u64,
    /// FSO → RF failovers.
    pub rf_failovers: u64,
    /// RF → FSO failbacks.
    pub rf_failbacks: u64,
    /// Slots carried by the RF fallback.
    pub rf_slots: u64,
    /// Scheduler TX grants acquired (grant start or unit change).
    pub sched_grants: u64,
    /// Scheduler TX grants revoked with traffic still queued.
    pub sched_preempts: u64,
    /// Playout-buffer stall episodes ended.
    pub playout_stalls: u64,
}

impl TelemetryCounters {
    /// Adds another counter set.
    pub fn merge(&mut self, o: &TelemetryCounters) {
        self.sessions += o.sessions;
        self.slots += o.slots;
        self.tp_commands += o.tp_commands;
        self.tp_dead_reckoned += o.tp_dead_reckoned;
        self.tp_handover_shots += o.tp_handover_shots;
        self.tp_applied += o.tp_applied;
        self.ctrl_sent += o.ctrl_sent;
        self.ctrl_delivered += o.ctrl_delivered;
        self.ctrl_retransmits += o.ctrl_retransmits;
        self.ctrl_dropped += o.ctrl_dropped;
        self.sfp_downs += o.sfp_downs;
        self.sfp_ups += o.sfp_ups;
        self.handovers += o.handovers;
        self.reacq_started += o.reacq_started;
        self.reacq_probes += o.reacq_probes;
        self.reacq_recovered += o.reacq_recovered;
        self.reacq_abandoned += o.reacq_abandoned;
        self.rf_failovers += o.rf_failovers;
        self.rf_failbacks += o.rf_failbacks;
        self.rf_slots += o.rf_slots;
        self.sched_grants += o.sched_grants;
        self.sched_preempts += o.sched_preempts;
        self.playout_stalls += o.playout_stalls;
    }

    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"slots\":{},\"tp_commands\":{},\"tp_dead_reckoned\":{},\
             \"tp_handover_shots\":{},\"tp_applied\":{},\"ctrl_sent\":{},\
             \"ctrl_delivered\":{},\"ctrl_retransmits\":{},\"ctrl_dropped\":{},\
             \"sfp_downs\":{},\"sfp_ups\":{},\"handovers\":{},\"reacq_started\":{},\
             \"reacq_probes\":{},\"reacq_recovered\":{},\"reacq_abandoned\":{},\
             \"rf_failovers\":{},\"rf_failbacks\":{},\"rf_slots\":{},\
             \"sched_grants\":{},\"sched_preempts\":{},\"playout_stalls\":{}}}",
            self.sessions,
            self.slots,
            self.tp_commands,
            self.tp_dead_reckoned,
            self.tp_handover_shots,
            self.tp_applied,
            self.ctrl_sent,
            self.ctrl_delivered,
            self.ctrl_retransmits,
            self.ctrl_dropped,
            self.sfp_downs,
            self.sfp_ups,
            self.handovers,
            self.reacq_started,
            self.reacq_probes,
            self.reacq_recovered,
            self.reacq_abandoned,
            self.rf_failovers,
            self.rf_failbacks,
            self.rf_slots,
            self.sched_grants,
            self.sched_preempts,
            self.playout_stalls
        )
    }
}

/// Per-session aggregation: event counters plus fixed-bucket histograms of
/// the quantities §5 evaluates (power, margin, goodput, TP latency and
/// solver iterations, control delivery age — the ARQ-RTT equivalent the TP
/// experiences — and outage durations). Merged by `run_fleet` into the
/// fleet rollup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionTelemetry {
    /// Event-class counters.
    pub events: TelemetryCounters,
    /// Per-slot received power on the active unit (dBm), over `[-60, 0)`.
    pub power_dbm: Histogram,
    /// Per-slot link margin over sensitivity (dB), over `[-40, 24)`.
    pub margin_db: Histogram,
    /// Per-slot goodput (Gbps), over `[0, 32)`.
    pub goodput_gbps: Histogram,
    /// TP command latency (ms), over `[0, 4)`.
    pub tp_latency_ms: Histogram,
    /// Outer solver iterations per TP command, over `[0, 16)`.
    pub tp_iters: Histogram,
    /// Control-channel sample-to-delivery age (ms), over `[0, 40)`.
    pub ctrl_age_ms: Histogram,
    /// Outage durations (s), over `[0, 8)`.
    pub outage_s: Histogram,
    /// RF-fallback episode durations (s), over `[0, 8)`.
    pub rf_s: Histogram,
    /// Playout-stall episode durations (s), over `[0, 8)`.
    pub stall_s: Histogram,
}

impl Default for SessionTelemetry {
    fn default() -> Self {
        SessionTelemetry {
            events: TelemetryCounters::default(),
            power_dbm: Histogram::new(-60.0, 0.0),
            margin_db: Histogram::new(-40.0, 24.0),
            goodput_gbps: Histogram::new(0.0, 32.0),
            tp_latency_ms: Histogram::new(0.0, 4.0),
            tp_iters: Histogram::new(0.0, 16.0),
            ctrl_age_ms: Histogram::new(0.0, 40.0),
            outage_s: Histogram::new(0.0, 8.0),
            rf_s: Histogram::new(0.0, 8.0),
            stall_s: Histogram::new(0.0, 8.0),
        }
    }
}

impl SessionTelemetry {
    /// Folds one event into the counters and histograms.
    pub fn observe(&mut self, ev: &TelemetryEvent) {
        let c = &mut self.events;
        match *ev {
            TelemetryEvent::SessionStart { .. } => c.sessions += 1,
            TelemetryEvent::SessionEnd { .. } => {}
            TelemetryEvent::SlotStart { .. } => {}
            TelemetryEvent::SlotEnd {
                power_dbm,
                margin_db,
                rf_active,
                goodput_gbps,
                ..
            } => {
                c.slots += 1;
                c.rf_slots += rf_active as u64;
                self.power_dbm.record(power_dbm);
                self.margin_db.record(margin_db);
                self.goodput_gbps.record(goodput_gbps);
            }
            TelemetryEvent::TpCommandIssued {
                source,
                latency_s,
                iters,
                ..
            } => {
                c.tp_commands += 1;
                match source {
                    CommandSource::Report => {}
                    CommandSource::DeadReckoned => c.tp_dead_reckoned += 1,
                    CommandSource::HandoverShot => c.tp_handover_shots += 1,
                }
                self.tp_latency_ms.record(latency_s * 1e3);
                self.tp_iters.record(iters as f64);
            }
            TelemetryEvent::TpApplied { n, .. } => c.tp_applied += n,
            TelemetryEvent::CtrlSent { .. } => c.ctrl_sent += 1,
            TelemetryEvent::CtrlDelivered { age_s, .. } => {
                c.ctrl_delivered += 1;
                self.ctrl_age_ms.record(age_s * 1e3);
            }
            TelemetryEvent::CtrlRetransmit { n, .. } => c.ctrl_retransmits += n,
            TelemetryEvent::CtrlDropped { n, .. } => c.ctrl_dropped += n,
            TelemetryEvent::SfpDown { .. } => c.sfp_downs += 1,
            TelemetryEvent::SfpUp { outage_s, .. } => {
                c.sfp_ups += 1;
                self.outage_s.record(outage_s);
            }
            TelemetryEvent::Handover { .. } => c.handovers += 1,
            TelemetryEvent::ReacqStarted { .. } => c.reacq_started += 1,
            TelemetryEvent::ReacqProbe { .. } => c.reacq_probes += 1,
            TelemetryEvent::ReacqEnded { recovered, .. } => {
                if recovered {
                    c.reacq_recovered += 1;
                } else {
                    c.reacq_abandoned += 1;
                }
            }
            TelemetryEvent::RfFailover { .. } => c.rf_failovers += 1,
            TelemetryEvent::RfFailback { rf_s, .. } => {
                c.rf_failbacks += 1;
                self.rf_s.record(rf_s);
            }
            TelemetryEvent::SchedGrant { .. } => c.sched_grants += 1,
            TelemetryEvent::SchedPreempt { .. } => c.sched_preempts += 1,
            TelemetryEvent::PlayoutStall { stall_s, .. } => {
                c.playout_stalls += 1;
                self.stall_s.record(stall_s);
            }
        }
    }

    /// Adds another session's aggregation (the fleet roll-up operation).
    pub fn merge(&mut self, o: &SessionTelemetry) {
        self.events.merge(&o.events);
        self.power_dbm.merge(&o.power_dbm);
        self.margin_db.merge(&o.margin_db);
        self.goodput_gbps.merge(&o.goodput_gbps);
        self.tp_latency_ms.merge(&o.tp_latency_ms);
        self.tp_iters.merge(&o.tp_iters);
        self.ctrl_age_ms.merge(&o.ctrl_age_ms);
        self.outage_s.merge(&o.outage_s);
        self.rf_s.merge(&o.rf_s);
        self.stall_s.merge(&o.stall_s);
    }

    /// One-line JSON rendering (counters + histograms).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"power_dbm\":{},\"margin_db\":{},\"goodput_gbps\":{},\
             \"tp_latency_ms\":{},\"tp_iters\":{},\"ctrl_age_ms\":{},\"outage_s\":{},\
             \"rf_s\":{},\"stall_s\":{}}}",
            self.events.to_json(),
            self.power_dbm.to_json(),
            self.margin_db.to_json(),
            self.goodput_gbps.to_json(),
            self.tp_latency_ms.to_json(),
            self.tp_iters.to_json(),
            self.ctrl_age_ms.to_json(),
            self.outage_s.to_json(),
            self.rf_s.to_json(),
            self.stall_s.to_json()
        )
    }
}

impl TelemetrySink for SessionTelemetry {
    fn record(&mut self, ev: &TelemetryEvent) {
        self.observe(ev);
    }
}

// ---------------------------------------------------------------------------
// Virtual clock (sim-time scoped timing)
// ---------------------------------------------------------------------------

/// A monotonic clock on *simulation* time. The engine advances it once per
/// slot; durations measured against it are deterministic and identical with
/// telemetry on or off. Sim paths must use this (never
/// `std::time::Instant`, which is confined to `crates/bench` by a CI lint).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// Advances the clock.
    pub fn advance(&mut self, dt_s: f64) {
        self.now_s += dt_s;
    }

    /// Current simulation time (s).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Starts a scoped timer at the current time.
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer { t0_s: self.now_s }
    }
}

/// A timer scoped to a [`VirtualClock`] — measures elapsed simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopedTimer {
    t0_s: f64,
}

impl ScopedTimer {
    /// Simulation time elapsed since [`VirtualClock::start`].
    pub fn elapsed(&self, clock: &VirtualClock) -> f64 {
        clock.now_s - self.t0_s
    }
}

// ---------------------------------------------------------------------------
// Session attachment
// ---------------------------------------------------------------------------

/// A session's telemetry attachment: an optional event sink plus optional
/// in-session aggregation. The default ([`Telemetry::off`]) costs one
/// branch per slot; with neither sink nor counters attached no event is
/// even constructed.
#[derive(Debug, Default)]
pub struct Telemetry {
    sink: Option<Box<dyn TelemetrySink>>,
    counters: Option<Box<SessionTelemetry>>,
}

impl Telemetry {
    /// No telemetry (the default).
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// In-session counter/histogram aggregation, no event sink.
    pub fn counters() -> Telemetry {
        Telemetry {
            sink: None,
            counters: Some(Box::default()),
        }
    }

    /// An event sink, no aggregation.
    pub fn with_sink(sink: Box<dyn TelemetrySink>) -> Telemetry {
        Telemetry {
            sink: Some(sink),
            counters: None,
        }
    }

    /// Both an event sink and in-session aggregation.
    pub fn with_sink_and_counters(sink: Box<dyn TelemetrySink>) -> Telemetry {
        Telemetry {
            sink: Some(sink),
            counters: Some(Box::default()),
        }
    }

    /// Whether any observer is attached (the engine's per-slot gate).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.sink.is_some() || self.counters.is_some()
    }

    /// Dispatches one event to the attached observers.
    #[inline]
    pub fn emit(&mut self, ev: &TelemetryEvent) {
        if let Some(c) = self.counters.as_mut() {
            c.observe(ev);
        }
        if let Some(s) = self.sink.as_mut() {
            s.record(ev);
        }
    }

    /// The aggregated counters, when enabled.
    pub fn counters_ref(&self) -> Option<&SessionTelemetry> {
        self.counters.as_deref()
    }

    /// Detaches and returns the sink (e.g. to recover an in-memory
    /// [`JsonlSink`] after a run).
    pub fn take_sink(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.sink.take()
    }

    /// Flushes the sink, if any.
    pub fn flush(&mut self) {
        if let Some(s) = self.sink.as_mut() {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges_are_half_open() {
        let mut h = Histogram::new(0.0, 16.0);
        h.record(0.0); // == lo → bucket 0
        h.record(15.999_999); // just below hi → last bucket
        h.record(16.0); // == hi → overflow
        h.record(-1e-12); // below lo → underflow
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[HIST_BUCKETS - 1], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_nonfinite_samples_hit_the_rails_only() {
        let mut h = Histogram::new(0.0, 1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 2, "NaN and +inf overflow");
        assert_eq!(h.underflow(), 1, "-inf underflows");
        assert_eq!(h.samples(), 0, "no finite sample recorded");
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn histogram_mean_min_max_cover_finite_samples() {
        let mut h = Histogram::new(0.0, 10.0);
        for x in [1.0, 2.0, 9.0] {
            h.record(x);
        }
        assert_eq!(h.samples(), 3);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(9.0));
    }

    #[test]
    fn histogram_empty_merge_is_identity() {
        let mut a = Histogram::new(0.0, 10.0);
        a.record(3.0);
        let before = a;
        a.merge(&Histogram::new(0.0, 10.0));
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        // And merging into an empty one yields the source.
        let mut empty = Histogram::new(0.0, 10.0);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Histogram::new(0.0, 10.0);
        let mut b = Histogram::new(0.0, 10.0);
        a.record(1.0);
        a.record(-5.0);
        b.record(9.5);
        b.record(42.0);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.samples(), 4);
        assert_eq!(a.min(), Some(-5.0));
        assert_eq!(a.max(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(0.0, 10.0);
        a.merge(&Histogram::new(0.0, 20.0));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::in_memory();
        sink.record(&TelemetryEvent::SlotStart { k: 0, t: 1e-3 });
        sink.record(&TelemetryEvent::SfpUp {
            t: 0.5,
            outage_s: 0.25,
        });
        sink.record(&TelemetryEvent::Handover {
            t: 0.6,
            from: 0,
            to: 1,
        });
        assert_eq!(sink.events_written(), 3);
        assert!(!sink.failed());
        let text = sink.into_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "not JSON: {l}");
        }
        assert!(lines[0].contains("\"ev\":\"slot_start\""));
        assert!(lines[1].contains("\"outage_s\":0.25"));
        assert!(lines[2].contains("\"from\":0,\"to\":1"));
    }

    #[test]
    fn jsonl_sink_buffer_reuse_matches_per_event_to_json() {
        // One representative of every event variant (including non-finite
        // floats): the sink's reused-line-buffer path must produce exactly
        // `to_json() + "\n"` per event, byte for byte.
        let events = vec![
            TelemetryEvent::SessionStart {
                session: 3,
                seed: 99,
            },
            TelemetryEvent::SessionEnd {
                session: 3,
                slots: 4000,
            },
            TelemetryEvent::SlotStart { k: 7, t: 7e-3 },
            TelemetryEvent::SlotEnd {
                k: 7,
                t: 7e-3,
                active: 1,
                power_dbm: -21.25,
                margin_db: f64::NAN,
                link_up: true,
                rf_active: false,
                goodput_gbps: 9.6,
            },
            TelemetryEvent::TpCommandIssued {
                t: 0.01,
                apply_at: 0.012,
                source: CommandSource::Report,
                latency_s: 2e-3,
                iters: 4,
                converged: true,
            },
            TelemetryEvent::TpApplied { t: 0.012, n: 5 },
            TelemetryEvent::CtrlSent { t: 0.02 },
            TelemetryEvent::CtrlDelivered {
                t: 0.021,
                age_s: 1e-3,
            },
            TelemetryEvent::CtrlRetransmit { t: 0.022, n: 2 },
            TelemetryEvent::CtrlDropped {
                t: 0.023,
                n: 3,
                reason: DropReason::AckLost,
            },
            TelemetryEvent::SfpDown { t: 0.5 },
            TelemetryEvent::SfpUp {
                t: 0.75,
                outage_s: 0.25,
            },
            TelemetryEvent::Handover {
                t: 0.8,
                from: 0,
                to: 1,
            },
            TelemetryEvent::ReacqStarted { t: 0.9 },
            TelemetryEvent::ReacqProbe { t: f64::INFINITY },
            TelemetryEvent::ReacqEnded {
                t: 0.95,
                recovered: false,
            },
            TelemetryEvent::RfFailover { t: 0.96 },
            TelemetryEvent::RfFailback { t: 1.2, rf_s: 0.24 },
        ];
        let mut sink = JsonlSink::in_memory();
        let mut expected = String::new();
        for ev in &events {
            sink.record(ev);
            expected.push_str(&ev.to_json());
            expected.push('\n');
        }
        assert_eq!(sink.events_written(), events.len() as u64);
        assert_eq!(sink.into_string(), expected);
    }

    #[test]
    fn event_json_maps_nonfinite_to_null() {
        let ev = TelemetryEvent::SlotEnd {
            k: 1,
            t: 1e-3,
            active: 0,
            power_dbm: f64::NEG_INFINITY,
            margin_db: f64::NAN,
            link_up: false,
            rf_active: false,
            goodput_gbps: 0.0,
        };
        let j = ev.to_json();
        assert!(j.contains("\"power_dbm\":null"));
        assert!(j.contains("\"margin_db\":null"));
    }

    #[test]
    fn session_telemetry_observes_and_merges() {
        let mut a = SessionTelemetry::default();
        a.observe(&TelemetryEvent::SlotEnd {
            k: 0,
            t: 1e-3,
            active: 0,
            power_dbm: -20.0,
            margin_db: 5.0,
            link_up: true,
            rf_active: true,
            goodput_gbps: 9.4,
        });
        a.observe(&TelemetryEvent::TpCommandIssued {
            t: 1e-3,
            apply_at: 2e-3,
            source: CommandSource::DeadReckoned,
            latency_s: 1.4e-3,
            iters: 3,
            converged: true,
        });
        a.observe(&TelemetryEvent::ReacqEnded {
            t: 0.1,
            recovered: false,
        });
        a.observe(&TelemetryEvent::RfFailover { t: 0.2 });
        a.observe(&TelemetryEvent::RfFailback { t: 0.5, rf_s: 0.3 });
        assert_eq!(a.events.slots, 1);
        assert_eq!(a.events.rf_slots, 1);
        assert_eq!(a.events.tp_commands, 1);
        assert_eq!(a.events.tp_dead_reckoned, 1);
        assert_eq!(a.events.reacq_abandoned, 1);
        assert_eq!(a.events.rf_failovers, 1);
        assert_eq!(a.events.rf_failbacks, 1);
        assert_eq!(a.rf_s.samples(), 1);
        assert_eq!(a.power_dbm.samples(), 1);
        assert!((a.tp_latency_ms.mean() - 1.4).abs() < 1e-12);
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.events.slots, 2);
        assert_eq!(b.events.tp_dead_reckoned, 2);
        assert_eq!(b.power_dbm.samples(), 2);
    }

    #[test]
    fn virtual_clock_scoped_timer_measures_sim_time() {
        let mut clock = VirtualClock::default();
        clock.advance(1e-3);
        let timer = clock.start();
        for _ in 0..250 {
            clock.advance(1e-3);
        }
        assert!((timer.elapsed(&clock) - 0.25).abs() < 1e-12);
        assert!((clock.now_s() - 0.251).abs() < 1e-12);
    }

    #[test]
    fn telemetry_off_is_inactive_and_emit_is_a_no_op() {
        let mut t = Telemetry::off();
        assert!(!t.is_active());
        t.emit(&TelemetryEvent::SfpDown { t: 0.0 });
        assert!(t.counters_ref().is_none());
        assert!(t.take_sink().is_none());
    }

    #[test]
    fn telemetry_counters_aggregate_emitted_events() {
        let mut t = Telemetry::counters();
        assert!(t.is_active());
        t.emit(&TelemetryEvent::SfpDown { t: 0.1 });
        t.emit(&TelemetryEvent::SfpUp {
            t: 0.3,
            outage_s: 0.2,
        });
        let c = t.counters_ref().expect("counters enabled");
        assert_eq!(c.events.sfp_downs, 1);
        assert_eq!(c.events.sfp_ups, 1);
        assert_eq!(c.outage_s.samples(), 1);
    }

    #[test]
    fn telemetry_sink_and_counters_both_observe() {
        let mut t = Telemetry::with_sink_and_counters(Box::new(JsonlSink::in_memory()));
        t.emit(&TelemetryEvent::CtrlSent { t: 0.0 });
        assert_eq!(t.counters_ref().unwrap().events.ctrl_sent, 1);
        let sink = t.take_sink().unwrap();
        let dbg = format!("{sink:?}");
        assert!(dbg.contains("events: 1"), "{dbg}");
    }
}
