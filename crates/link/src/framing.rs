//! Minimal framing for the video stream: sequence number + payload + CRC-32.
//!
//! The renderer→VRH stream is unidirectional raw video (§2.1); the frame
//! format here is deliberately simple — a 16-byte header and a trailing
//! CRC — just enough for the loss accounting and corruption detection used
//! by the examples and the channel tests.

use crate::crc::crc32;

/// Frame header magic.
pub const MAGIC: u32 = 0xC1C1_0050;

/// A data frame on the FSO link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Payload bytes (a video-slice in the real system).
    pub payload: Vec<u8>,
}

/// Errors from [`Frame::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than a minimal frame.
    Truncated,
    /// Header magic mismatch.
    BadMagic,
    /// Declared length inconsistent with the buffer.
    BadLength,
    /// CRC mismatch (corrupted in flight).
    BadCrc,
}

impl Frame {
    /// Creates a frame.
    pub fn new(seq: u64, payload: Vec<u8>) -> Frame {
        Frame { seq, payload }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.payload.len() + 4
    }

    /// Serializes: `magic(4) | seq(8) | len(4) | payload | crc32(4)`,
    /// all little-endian; the CRC covers everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let c = crc32(&out);
        out.extend_from_slice(&c.to_le_bytes());
        out
    }

    /// Parses and validates an encoded frame.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < 20 {
            return Err(FrameError::Truncated);
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        // Compare against `buf.len() - 20` (guarded non-negative above)
        // instead of `20 + len`: an adversarial length field close to
        // u32::MAX would overflow `20 + len` on 32-bit targets and could
        // alias a valid buffer size.
        if buf.len() - 20 != len {
            return Err(FrameError::BadLength);
        }
        let crc_expect = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        if crc32(&buf[..buf.len() - 4]) != crc_expect {
            return Err(FrameError::BadCrc);
        }
        Ok(Frame {
            seq,
            payload: buf[16..16 + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Frame::new(42, vec![1, 2, 3, 4, 5]);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let dec = Frame::decode(&enc).unwrap();
        assert_eq!(dec, f);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::new(0, vec![]);
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn corruption_detected() {
        let enc = Frame::new(7, vec![0xAA; 64]).encode();
        for pos in [0usize, 5, 13, 30, enc.len() - 1] {
            let mut bad = enc.clone();
            bad[pos] ^= 0x40;
            let err = Frame::decode(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::BadCrc | FrameError::BadMagic | FrameError::BadLength
                ),
                "pos {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let enc = Frame::new(7, vec![1, 2, 3]).encode();
        assert_eq!(Frame::decode(&enc[..10]), Err(FrameError::Truncated));
        assert_eq!(
            Frame::decode(&enc[..enc.len() - 1]),
            Err(FrameError::BadLength)
        );
    }

    #[test]
    fn large_frame() {
        let f = Frame::new(u64::MAX, vec![0x5A; 9000]); // jumbo
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn adversarial_length_field_is_rejected_not_misparsed() {
        // A length field near u32::MAX must read as BadLength — on 32-bit
        // targets the old `20 + len` comparison overflowed for these.
        for evil_len in [u32::MAX, u32::MAX - 19, u32::MAX - 20, 1 << 31] {
            let mut buf = Frame::new(3, vec![9; 8]).encode();
            buf[12..16].copy_from_slice(&evil_len.to_le_bytes());
            assert_eq!(
                Frame::decode(&buf),
                Err(FrameError::BadLength),
                "len {evil_len}"
            );
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// Decode is total: truncated, corrupted, and oversized-length
        /// buffers all return an error (or a valid frame), never panic —
        /// and a valid frame is only returned when the bytes round-trip.
        #[test]
        fn decode_never_panics(
            payload in prop::collection::vec(any::<u8>(), 0..256),
            seq in any::<u64>(),
            cut in 0usize..300,
            flip_pos in 0usize..300,
            flip_mask in any::<u8>(),
            evil_len in any::<u32>(),
        ) {
            let enc = Frame::new(seq, payload).encode();
            // Truncation at every prefix length.
            let cut = cut.min(enc.len());
            let _ = Frame::decode(&enc[..cut]);
            // Single-byte corruption anywhere, including the length field.
            let mut bad = enc.clone();
            let pos = flip_pos.min(bad.len() - 1);
            bad[pos] ^= flip_mask;
            if let Ok(f) = Frame::decode(&bad) {
                // Only an identity flip may still decode.
                prop_assert_eq!(f.encode(), bad);
            }
            // Adversarial declared length over an otherwise valid buffer.
            let mut evil = enc;
            evil[12..16].copy_from_slice(&evil_len.to_le_bytes());
            if let Ok(f) = Frame::decode(&evil) {
                prop_assert_eq!(f.encode(), evil);
            }
        }
    }
}
