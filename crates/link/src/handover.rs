//! Multi-TX handover — the §3 occlusion/coverage extension.
//!
//! "To circumvent occasional occlusions and/or limited field-of-view
//! coverage of the GMs, we can use multiple TXs on the ceiling with
//! appropriate handover techniques." The paper does not build this; we
//! implement the natural design: several ceiling TX units, a line-of-sight
//! occlusion model (a sphere — e.g. a raised arm — wandering through the
//! room), and a controller that re-points to the best unoccluded TX, paying
//! a switch penalty (steering + SFP re-lock on the new unit).
//!
//! Since the engine refactor the selection state machine lives in
//! [`crate::engine::MarginSelector`]; [`HandoverSystem`] binds it to a set
//! of [`TxUnit`]s and an occlusion model.
//!
//! **Deprecation note.** This geometric model is kept for the coverage
//! studies; full-physics multi-TX work should build a
//! [`crate::engine::LinkSession`] via
//! [`LinkSession::builder`](crate::engine::LinkSession::builder) with
//! `.units(..)` and a [`crate::engine::TxSelector`], which also carries the
//! [`crate::telemetry`] layer (handover events, outage histograms).

use crate::engine::{aligned_margin_db, MarginSelector};
use cyclops_geom::vec3::Vec3;
use cyclops_optics::coupling::LinkDesign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ceiling transmitter unit.
#[derive(Debug, Clone, Copy)]
pub struct TxUnit {
    /// Position of the unit's aperture (world, metres).
    pub pos: Vec3,
}

/// A spherical occluder moving on a random walk (an arm, another person).
#[derive(Debug, Clone)]
pub struct Occluder {
    /// Current centre.
    pub center: Vec3,
    /// Radius (metres).
    pub radius: f64,
    /// RMS walk speed (m/s).
    pub speed: f64,
    rng: StdRng,
}

impl Occluder {
    /// Creates an occluder at a position with a seeded walk.
    pub fn new(center: Vec3, radius: f64, speed: f64, seed: u64) -> Occluder {
        Occluder {
            center,
            radius,
            speed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Advances the random walk by `dt` seconds (no-op for a static
    /// occluder).
    pub fn step(&mut self, dt: f64) {
        let s = self.speed * dt;
        if s <= 0.0 {
            return;
        }
        self.center += Vec3::new(
            self.rng.gen_range(-s..s),
            self.rng.gen_range(-s..s),
            self.rng.gen_range(-s..s),
        );
    }

    /// True if the segment `a → b` passes through the occluder.
    pub fn blocks(&self, a: Vec3, b: Vec3) -> bool {
        let ab = b - a;
        let len = ab.norm();
        if len < 1e-12 {
            return a.distance(self.center) < self.radius;
        }
        let t = ((self.center - a).dot(ab) / (len * len)).clamp(0.0, 1.0);
        let closest = a + ab * t;
        closest.distance(self.center) < self.radius
    }
}

/// Handover controller state.
#[derive(Debug, Clone)]
pub struct HandoverSystem {
    /// The ceiling units.
    pub txs: Vec<TxUnit>,
    /// Link design shared by all units.
    pub design: LinkDesign,
    /// Time to switch to another TX (re-steer + re-lock), seconds.
    pub switch_time_s: f64,
    active: usize,
    selector: MarginSelector,
}

impl HandoverSystem {
    /// Creates the system, active on unit 0.
    pub fn new(txs: Vec<TxUnit>, design: LinkDesign, switch_time_s: f64) -> HandoverSystem {
        assert!(!txs.is_empty());
        HandoverSystem {
            txs,
            design,
            switch_time_s,
            active: 0,
            selector: MarginSelector::new(switch_time_s),
        }
    }

    /// Currently active unit index.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Greedy-upgrade hysteresis: with `Some(h)` the system also switches
    /// away from a *working* unit once a sibling's margin beats the active
    /// unit's by strictly more than `h` dB (a tie never switches). `None`
    /// (the default) only switches when the active unit is unusable.
    pub fn set_hysteresis_db(&mut self, h: Option<f64>) {
        self.selector.hysteresis_db = h;
    }

    /// Aligned link margin (dB) unit `i` would give at the RX position:
    /// the design's margin re-evaluated at that unit's actual range. Units
    /// further away than the design closes for return negative margin.
    pub fn unit_margin_db(&self, i: usize, rx_pos: Vec3) -> f64 {
        aligned_margin_db(&self.design, self.txs[i].pos, rx_pos)
    }

    /// Advances one step: given the RX position and the occluders, decide
    /// whether the active unit still has line of sight and closes its link;
    /// if not, hand over to the visible unit with the best link margin.
    /// Returns whether the link delivers data this step (false while
    /// blocked, out of margin, or mid-switch).
    pub fn step(&mut self, rx_pos: Vec3, occluders: &[Occluder], dt: f64) -> bool {
        self.selector.switch_time_s = self.switch_time_s;
        let txs = &self.txs;
        let design = &self.design;
        let margin = |i: usize| {
            if occluders.iter().any(|o| o.blocks(txs[i].pos, rx_pos)) {
                f64::NEG_INFINITY
            } else {
                aligned_margin_db(design, txs[i].pos, rx_pos)
            }
        };
        let (delivering, active) = self.selector.step(self.active, txs.len(), margin, dt);
        self.active = active;
        delivering
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    fn two_tx_system(switch_s: f64) -> HandoverSystem {
        HandoverSystem::new(
            vec![
                TxUnit {
                    pos: v3(-0.8, 2.0, 0.0),
                },
                TxUnit {
                    pos: v3(0.8, 2.0, 0.0),
                },
            ],
            LinkDesign::ten_g_diverging(20e-3, 2.0),
            switch_s,
        )
    }

    #[test]
    fn occluder_blocks_geometry() {
        let o = Occluder::new(v3(0.0, 1.0, 0.0), 0.15, 0.0, 1);
        assert!(o.blocks(v3(0.0, 2.0, 0.0), v3(0.0, 0.0, 0.0)));
        assert!(!o.blocks(v3(1.0, 2.0, 0.0), v3(1.0, 0.0, 0.0)));
        // Segment ending before the sphere.
        assert!(!o.blocks(v3(0.0, 3.0, 0.0), v3(0.0, 2.0, 0.0)));
    }

    #[test]
    fn unobstructed_link_stays_on_unit0() {
        let mut hs = two_tx_system(0.05);
        let rx = v3(0.0, 0.0, 0.0);
        for _ in 0..100 {
            assert!(hs.step(rx, &[], 1e-3));
        }
        assert_eq!(hs.active(), 0);
    }

    #[test]
    fn blocking_unit0_hands_over_to_unit1() {
        let mut hs = two_tx_system(0.05);
        let rx = v3(0.0, 0.0, 0.0);
        // Occluder square on the unit-0 path.
        let occ = [Occluder::new(v3(-0.4, 1.0, 0.0), 0.2, 0.0, 2)];
        let mut delivered = 0;
        let mut outage = 0;
        for _ in 0..200 {
            if hs.step(rx, &occ, 1e-3) {
                delivered += 1;
            } else {
                outage += 1;
            }
        }
        assert_eq!(hs.active(), 1);
        // 50 ms switch ≈ 50 slots of outage, then delivery resumes.
        assert!((45..60).contains(&outage), "outage {outage}");
        assert!(delivered > 130);
    }

    #[test]
    fn out_of_range_unit_is_not_selected() {
        // A visible unit whose link cannot close at the RX distance must not
        // be handed over to.
        let mut hs = HandoverSystem::new(
            vec![
                TxUnit {
                    pos: v3(-0.8, 2.0, 0.0),
                },
                TxUnit {
                    pos: v3(40.0, 2.0, 0.0),
                }, // visible but 40 m away
            ],
            LinkDesign::ten_g_diverging(20e-3, 2.0),
            0.01,
        );
        let rx = v3(0.0, 0.0, 0.0);
        assert!(
            hs.unit_margin_db(1, rx) < 0.0,
            "far unit must be out of margin"
        );
        let occ = [Occluder::new(v3(-0.4, 1.0, 0.0), 0.2, 0.0, 5)];
        for _ in 0..100 {
            assert!(!hs.step(rx, &occ, 1e-3), "no usable unit -> no delivery");
        }
        assert_eq!(hs.active(), 0, "must not switch to the out-of-range unit");
    }

    #[test]
    fn all_blocked_means_no_delivery() {
        let mut hs = two_tx_system(0.01);
        let rx = v3(0.0, 0.0, 0.0);
        let occ = [
            Occluder::new(v3(-0.4, 1.0, 0.0), 0.3, 0.0, 3),
            Occluder::new(v3(0.4, 1.0, 0.0), 0.3, 0.0, 4),
        ];
        for _ in 0..50 {
            assert!(!hs.step(rx, &occ, 1e-3));
        }
    }

    #[test]
    fn multi_tx_beats_single_tx_under_roaming_occlusion() {
        // Availability comparison — the quantitative case for the §3 idea.
        let rx = v3(0.0, 0.0, 0.0);
        let run = |n_tx: usize| -> f64 {
            let txs: Vec<TxUnit> = (0..n_tx)
                .map(|i| TxUnit {
                    pos: v3(-0.8 + 1.6 * i as f64 / (n_tx.max(2) - 1) as f64, 2.0, 0.0),
                })
                .collect();
            let mut hs = HandoverSystem::new(txs, LinkDesign::ten_g_diverging(20e-3, 2.0), 0.05);
            let mut occ = Occluder::new(v3(-0.4, 1.0, 0.0), 0.25, 1.5, 7);
            let mut ok = 0usize;
            const N: usize = 20_000;
            for _ in 0..N {
                occ.step(1e-3);
                if hs.step(rx, std::slice::from_ref(&occ), 1e-3) {
                    ok += 1;
                }
            }
            ok as f64 / N as f64
        };
        let single = run(1);
        let dual = run(2);
        assert!(dual > single, "dual {dual} vs single {single}");
    }

    #[test]
    fn hysteresis_upgrades_to_a_much_better_unit() {
        // RX parked far off-centre: unit 1 is much closer (higher margin)
        // but unit 0 still closes. Without hysteresis the system never
        // leaves unit 0; with it, it upgrades after the switch delay.
        let rx = v3(0.7, 0.0, 0.0);
        let mut plain = two_tx_system(0.01);
        for _ in 0..100 {
            plain.step(rx, &[], 1e-3);
        }
        assert_eq!(plain.active(), 0, "no hysteresis: never upgrade");
        let mut greedy = two_tx_system(0.01);
        greedy.set_hysteresis_db(Some(0.5));
        for _ in 0..100 {
            greedy.step(rx, &[], 1e-3);
        }
        assert_eq!(greedy.active(), 1, "hysteresis: upgrade to better unit");
    }
}
